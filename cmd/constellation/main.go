// Command constellation inspects the simulated LSN topology: satellite
// positions, coverage statistics, eclipse cycles, ISL geometry and
// ground-site visibility — useful for validating the substrate before
// running experiments.
//
// Usage:
//
//	constellation [-scale small|medium|full] [-slot N] [-site "lat,lon"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spacebooking"
	"spacebooking/internal/buildinfo"
	"spacebooking/internal/geo"
	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "small", "scale: small, medium or full")
	slot := flag.Int("slot", 0, "time slot to inspect")
	siteSpec := flag.String("site", "40.7,-74.0", "ground site as \"lat,lon\" for visibility report")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("constellation"))
		return 0
	}

	scale, err := spacebooking.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	lat, lon, err := parseSite(*siteSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	start := time.Now()
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	prov := env.Provider
	if *slot < 0 || *slot >= prov.Horizon() {
		fmt.Fprintf(os.Stderr, "slot %d outside horizon [0,%d)\n", *slot, prov.Horizon())
		return 1
	}
	cfg := prov.Config()

	fmt.Printf("constellation: %d planes x %d satellites = %d total\n",
		cfg.Walker.Planes, cfg.Walker.SatsPerPlane, prov.NumSats())
	fmt.Printf("orbit: %.0f km altitude, %.0f deg inclination, period %.1f min\n",
		cfg.Walker.AltitudeKm, cfg.Walker.InclinationDeg,
		prov.Satellites()[0].Elements.PeriodSeconds()/60)
	fmt.Printf("links: ISL %.0f Mbps, USL %.0f Mbps, elevation mask %.0f deg\n",
		cfg.ISLCapacityMbps, cfg.USLCapacityMbps, cfg.MinElevationDeg)
	fmt.Printf("horizon: %d slots x %.0f s; %d ground sites; %d EO satellites\n\n",
		prov.Horizon(), cfg.SlotSeconds, prov.NumSites(), prov.NumEO())

	// Eclipse statistics at the chosen slot.
	lit := 0
	for sat := 0; sat < prov.NumSats(); sat++ {
		if prov.Sunlit(*slot, sat) {
			lit++
		}
	}
	fmt.Printf("slot %d: %d/%d satellites sunlit (%.1f%%)\n",
		*slot, lit, prov.NumSats(), 100*float64(lit)/float64(prov.NumSats()))

	// ISL length statistics.
	minLen, maxLen, sum, count := 1e18, 0.0, 0.0, 0
	for sat := 0; sat < prov.NumSats(); sat++ {
		for _, n := range prov.ISLNeighbors(sat) {
			if n < sat {
				continue
			}
			d := prov.SatPosECI(*slot, sat).DistanceTo(prov.SatPosECI(*slot, n))
			if d < minLen {
				minLen = d
			}
			if d > maxLen {
				maxLen = d
			}
			sum += d
			count++
		}
	}
	fmt.Printf("ISLs: %d undirected, length min/mean/max = %.0f/%.0f/%.0f km\n",
		count, minLen, sum/float64(count), maxLen)

	// Visibility from the requested ground point over the horizon.
	tmpSite := grid.Site{ID: 0, LatDeg: lat, LonDeg: lon}
	visProv, err := topology.NewProvider(cfg, []grid.Site{tmpSite}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ep := topology.Endpoint{Kind: topology.EndpointGround, Index: 0}
	covered, total, best := 0, 0, 0
	for t := 0; t < visProv.Horizon(); t++ {
		vis, err := visProv.VisibleSats(ep, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		total++
		if len(vis) > 0 {
			covered++
		}
		if len(vis) > best {
			best = len(vis)
		}
	}
	fmt.Printf("\nsite (%.2f, %.2f): covered %d/%d slots (%.1f%%), max %d satellites in view\n",
		lat, lon, covered, total, 100*float64(covered)/float64(total), best)

	vis, err := visProv.VisibleSats(ep, *slot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	obs := geo.LLAToECEF(geo.LLA{LatDeg: lat, LonDeg: lon})
	fmt.Printf("slot %d: %d satellites visible\n", *slot, len(vis))
	for _, sat := range vis {
		pos := visProv.SatPosECEF(*slot, sat)
		fmt.Printf("  sat %4d  elevation %5.1f deg  range %6.0f km  sunlit %v\n",
			sat, geo.ElevationDeg(obs, pos), obs.DistanceTo(pos), visProv.Sunlit(*slot, sat))
	}

	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

func parseSite(spec string) (lat, lon float64, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad site %q, want \"lat,lon\"", spec)
	}
	lat, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad latitude: %w", err)
	}
	lon, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad longitude: %w", err)
	}
	if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
		return 0, 0, fmt.Errorf("site (%v,%v) out of range", lat, lon)
	}
	return lat, lon, nil
}
