// Command obsdiff compares two machine-readable run reports (written by
// `cearsim -report` or `spacebench -report`) and prints per-metric
// deltas: result metrics, counters, histogram quantiles, phase
// wall-times, and final time-series values. It applies lower-is-better
// regression thresholds to the wall-time quantities (and any extra
// -gate keys) and exits non-zero when the new report regresses, so it
// can stand as a CI perf gate:
//
//	cearsim -scale small -report old.json
//	... change code ...
//	cearsim -scale small -report new.json
//	obsdiff -max-regress 5% old.json new.json
//
// Usage:
//
//	obsdiff [-max-regress 5%] [-gate KEY=PCT]... old.json new.json
//
// -max-regress gates every wall-time quantity: histograms whose name
// contains "seconds" (mean and p95), every phase's total_seconds, and
// metrics whose key contains "seconds". An empty -max-regress disables
// the default gates. -gate adds explicit lower-is-better gates; KEY
// addresses one value as metrics.K, counters.K,
// histograms.NAME.{count,sum,min,max,mean,p50,p95,p99,p999},
// phases.NAME.{total_seconds,count}, timeseries.NAME.{last,total} or
// hotspots.NAME.total (a bare KEY means metrics.KEY).
//
// Exit status: 0 when no gated value regresses, 1 on regression, 2 on
// usage or load errors (including mixed report versions).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// gate is one lower-is-better threshold on a dotted key.
type gate struct {
	key string
	pct float64
}

// gateFlags collects repeatable -gate KEY=PCT flags.
type gateFlags []gate

func (g *gateFlags) String() string { return fmt.Sprintf("%v", []gate(*g)) }

func (g *gateFlags) Set(s string) error {
	key, pct, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return fmt.Errorf("want KEY=PCT, got %q", s)
	}
	frac, err := parsePct(pct)
	if err != nil {
		return err
	}
	*g = append(*g, gate{key: key, pct: frac})
	return nil
}

// parsePct reads "5%" or "0.05" as the fraction 0.05.
func parsePct(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || math.IsNaN(v) || v < 0 {
		return 0, fmt.Errorf("invalid threshold %q (want e.g. 5%% or 0.05)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegress := fs.String("max-regress", "5%", "regression threshold on wall-time quantities (empty disables)")
	quiet := fs.Bool("q", false, "print regressions only, not the full delta listing")
	var gates gateFlags
	fs.Var(&gates, "gate", "extra lower-is-better gate KEY=PCT (repeatable)")
	showVersion := fs.Bool("version", false, "print version and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: obsdiff [-max-regress 5%%] [-gate KEY=PCT]... old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Line("obsdiff"))
		return 0
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldRep, err := obs.ReadReportFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	newRep, err := obs.ReadReportFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if !*quiet {
		printDiff(stdout, oldRep, newRep)
	}

	allGates := gates
	if *maxRegress != "" {
		frac, err := parsePct(*maxRegress)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		allGates = append(allGates, defaultTimeGates(oldRep, newRep, frac)...)
	}
	regressions := checkGates(oldRep, newRep, allGates)
	for _, r := range regressions {
		fmt.Fprintln(stdout, r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stdout, "obsdiff: %d regression(s)\n", len(regressions))
		return 1
	}
	fmt.Fprintf(stdout, "obsdiff: ok (%d gate(s) checked)\n", len(allGates))
	return 0
}

// lookup resolves a dotted gate key against a report. A bare key is
// tried as metrics.KEY.
func lookup(rep *obs.Report, key string) (float64, bool) {
	section, rest, ok := strings.Cut(key, ".")
	if !ok {
		section, rest = "metrics", key
	}
	switch section {
	case "metrics":
		v, ok := rep.Metrics[rest]
		return v, ok
	case "counters":
		v, ok := rep.Observability.Counters[rest]
		return float64(v), ok
	case "histograms":
		name, field, ok := cutLast(rest)
		if !ok {
			return 0, false
		}
		h, exists := rep.Observability.Histograms[name]
		if !exists {
			return 0, false
		}
		switch field {
		case "count":
			return float64(h.Count), true
		case "sum":
			return h.Sum, true
		case "min":
			return h.Min, true
		case "max":
			return h.Max, true
		case "mean":
			return h.Mean, true
		case "p50":
			return h.P50, true
		case "p95":
			return h.P95, true
		case "p99":
			return h.P99, true
		case "p999":
			return h.P999, true
		}
		return 0, false
	case "phases":
		name, field, ok := cutLast(rest)
		if !ok {
			return 0, false
		}
		for _, p := range rep.Observability.Phases {
			if p.Name != name {
				continue
			}
			switch field {
			case "total_seconds":
				return p.TotalSeconds, true
			case "count":
				return float64(p.Count), true
			}
			return 0, false
		}
		return 0, false
	case "timeseries":
		name, field, ok := cutLast(rest)
		if !ok {
			return 0, false
		}
		ts, exists := rep.TimeSeries[name]
		if !exists {
			return 0, false
		}
		switch field {
		case "last":
			return ts.Last(), true
		case "total":
			return float64(ts.Total), true
		}
		return 0, false
	case "hotspots":
		name, field, ok := cutLast(rest)
		if !ok {
			return 0, false
		}
		tk, exists := rep.Hotspots[name]
		if !exists {
			return 0, false
		}
		if field == "total" {
			return tk.Total, true
		}
		return 0, false
	}
	// Unknown section: treat the whole key as a metric name (metric keys
	// like "rejected.no-path" contain dots themselves).
	v, ok := rep.Metrics[key]
	return v, ok
}

// cutLast splits "a.b.c" into ("a.b", "c").
func cutLast(s string) (string, string, bool) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// timeLike reports whether an instrument name denotes wall time.
func timeLike(name string) bool { return strings.Contains(name, "seconds") }

// defaultTimeGates builds the -max-regress gates over every wall-time
// quantity present in both reports.
func defaultTimeGates(oldRep, newRep *obs.Report, frac float64) []gate {
	var gates []gate
	add := func(key string) {
		if _, ok := lookup(oldRep, key); !ok {
			return
		}
		if _, ok := lookup(newRep, key); !ok {
			return
		}
		gates = append(gates, gate{key: key, pct: frac})
	}
	for name := range oldRep.Observability.Histograms {
		if timeLike(name) {
			add("histograms." + name + ".mean")
			add("histograms." + name + ".p95")
		}
	}
	for _, p := range oldRep.Observability.Phases {
		add("phases." + p.Name + ".total_seconds")
	}
	for key := range oldRep.Metrics {
		if timeLike(key) {
			add("metrics." + key)
		}
	}
	sort.Slice(gates, func(i, j int) bool { return gates[i].key < gates[j].key })
	return gates
}

// regression describes one gated value that got worse.
type regression struct {
	key      string
	old, new float64
	pct      float64 // allowed fraction
}

func (r regression) String() string {
	return fmt.Sprintf("REGRESSION %s: %s -> %s (%+.1f%% > %.1f%% allowed)",
		r.key, fmtVal(r.old), fmtVal(r.new), 100*relDelta(r.old, r.new), 100*r.pct)
}

// relDelta returns (newV-oldV)/oldV, or 0 when oldV is not positive.
func relDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// checkGates evaluates every gate (lower is better) and returns the
// values whose relative growth exceeds the allowance.
func checkGates(oldRep, newRep *obs.Report, gates []gate) []regression {
	var out []regression
	for _, g := range gates {
		oldV, okOld := lookup(oldRep, g.key)
		newV, okNew := lookup(newRep, g.key)
		if !okOld || !okNew {
			continue
		}
		if relDelta(oldV, newV) > g.pct {
			out = append(out, regression{key: g.key, old: oldV, new: newV, pct: g.pct})
		}
	}
	return out
}

// fmtVal renders a value compactly.
func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// printDiff writes the full delta listing, section by section, union of
// both reports' keys in lexical order.
func printDiff(w io.Writer, oldRep, newRep *obs.Report) {
	fmt.Fprintf(w, "old: %s (version %d)\n", oldRep.Tool, oldRep.Version)
	fmt.Fprintf(w, "new: %s (version %d)\n", newRep.Tool, newRep.Version)
	for _, key := range unionKeys(oldRep.Config, newRep.Config) {
		ov, on := oldRep.Config[key], newRep.Config[key]
		if fmt.Sprint(ov) != fmt.Sprint(on) {
			fmt.Fprintf(w, "config differs: %s: %v -> %v\n", key, ov, on)
		}
	}

	printSection(w, "metrics", oldRep.Metrics, newRep.Metrics)

	oldC := make(map[string]float64, len(oldRep.Observability.Counters))
	for k, v := range oldRep.Observability.Counters {
		oldC[k] = float64(v)
	}
	newC := make(map[string]float64, len(newRep.Observability.Counters))
	for k, v := range newRep.Observability.Counters {
		newC[k] = float64(v)
	}
	printSection(w, "counters", oldC, newC)

	histRows := func(rep *obs.Report) map[string]float64 {
		out := make(map[string]float64)
		for name, h := range rep.Observability.Histograms {
			out[name+".mean"] = h.Mean
			out[name+".p50"] = h.P50
			out[name+".p95"] = h.P95
			out[name+".p99"] = h.P99
			out[name+".p999"] = h.P999
		}
		return out
	}
	printSection(w, "histogram quantiles", histRows(oldRep), histRows(newRep))

	phaseRows := func(rep *obs.Report) map[string]float64 {
		out := make(map[string]float64)
		for _, p := range rep.Observability.Phases {
			out[p.Name+".total_seconds"] = p.TotalSeconds
		}
		return out
	}
	printSection(w, "phases", phaseRows(oldRep), phaseRows(newRep))

	tsRows := func(rep *obs.Report) map[string]float64 {
		out := make(map[string]float64)
		for name, ts := range rep.TimeSeries {
			out[name+".last"] = ts.Last()
		}
		return out
	}
	printSection(w, "timeseries final values", tsRows(oldRep), tsRows(newRep))

	hotRows := func(rep *obs.Report) map[string]float64 {
		out := make(map[string]float64)
		for name, tk := range rep.Hotspots {
			out[name+".total"] = tk.Total
		}
		return out
	}
	printSection(w, "hotspot totals", hotRows(oldRep), hotRows(newRep))
}

// printSection prints one aligned old -> new listing.
func printSection(w io.Writer, title string, oldVals, newVals map[string]float64) {
	keys := unionKeys(oldVals, newVals)
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	for _, key := range keys {
		ov, okOld := oldVals[key]
		nv, okNew := newVals[key]
		switch {
		case !okOld:
			fmt.Fprintf(w, "  %-40s (new) %s\n", key, fmtVal(nv))
		case !okNew:
			fmt.Fprintf(w, "  %-40s %s (gone)\n", key, fmtVal(ov))
		case ov == nv:
			fmt.Fprintf(w, "  %-40s %s\n", key, fmtVal(ov))
		default:
			fmt.Fprintf(w, "  %-40s %s -> %s (%+.1f%%)\n", key, fmtVal(ov), fmtVal(nv), 100*relDelta(ov, nv))
		}
	}
}

// unionKeys merges two maps' keys in lexical order.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
