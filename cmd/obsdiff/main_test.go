package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"spacebooking/internal/obs"
)

// sampleReport builds a report shaped like a real cearsim run, with the
// slot wall-time histogram mean scaled by slowdown (1.0 = baseline).
func sampleReport(slowdown float64) *obs.Report {
	rep := obs.NewReport("cearsim")
	rep.SetConfig("scale", "small")
	rep.SetConfig("algorithm", "CEAR")
	rep.SetMetric("welfare_ratio", 0.84)
	rep.SetMetric("requests_total", 192)
	rep.SetMetric("elapsed_seconds", 1.0*slowdown)
	rep.Observability = obs.RegistrySnapshot{
		Counters: map[string]int64{"graph.dijkstra.heap_pops": 1000},
		Histograms: map[string]obs.HistogramSnapshot{
			"sim.slot_seconds": {
				Count: 96, Sum: 0.96 * slowdown,
				Min: 0.005 * slowdown, Max: 0.02 * slowdown,
				Mean: 0.01 * slowdown, P50: 0.01 * slowdown,
				P95: 0.018 * slowdown, P99: 0.02 * slowdown,
			},
		},
		Phases: []obs.PhaseSnapshot{
			{Name: "admission", Count: 1, TotalSeconds: 0.5 * slowdown},
		},
	}
	rep.TimeSeries = map[string]obs.SeriesSnapshot{
		"slot.revenue_cum": {Capacity: 96, Total: 96, Slots: []int64{94, 95}, Values: []float64{10, 12}},
	}
	return rep
}

func writeReport(t *testing.T, name string, rep *obs.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := obs.WriteReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfCompareExitsZero(t *testing.T) {
	path := writeReport(t, "run.json", sampleReport(1))
	var out, errOut bytes.Buffer
	if code := run([]string{path, path}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare exit = %d, stderr %q, stdout:\n%s", code, errOut.String(), out.String())
	}
	for _, want := range []string{
		"metrics:", "welfare_ratio", "counters:", "graph.dijkstra.heap_pops",
		"histogram quantiles:", "sim.slot_seconds.p95", "phases:",
		"timeseries final values:", "slot.revenue_cum.last",
		"obsdiff: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSlotTimeRegressionExitsNonZero is the acceptance check: a +10%
// slot wall-time regression must fail the default 5% gate.
func TestSlotTimeRegressionExitsNonZero(t *testing.T) {
	oldPath := writeReport(t, "old.json", sampleReport(1))
	newPath := writeReport(t, "new.json", sampleReport(1.10))
	var out, errOut bytes.Buffer
	code := run([]string{oldPath, newPath}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION histograms.sim.slot_seconds.mean") {
		t.Errorf("output does not name the regressed histogram:\n%s", out.String())
	}
	// The same pair passes with a looser threshold...
	out.Reset()
	if code := run([]string{"-max-regress", "15%", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("15%% threshold exit = %d, want 0:\n%s", code, out.String())
	}
	// ...and with default gates disabled.
	out.Reset()
	if code := run([]string{"-max-regress", "", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("disabled gates exit = %d, want 0:\n%s", code, out.String())
	}
	// Faster is never a regression.
	out.Reset()
	if code := run([]string{newPath, oldPath}, &out, &errOut); code != 0 {
		t.Fatalf("improvement exit = %d, want 0:\n%s", code, out.String())
	}
}

func TestExplicitGates(t *testing.T) {
	oldRep := sampleReport(1)
	newRep := sampleReport(1)
	newRep.TimeSeries["slot.revenue_cum"] = obs.SeriesSnapshot{
		Capacity: 96, Total: 96, Slots: []int64{95}, Values: []float64{20},
	}
	oldPath := writeReport(t, "old.json", oldRep)
	newPath := writeReport(t, "new.json", newRep)
	var out, errOut bytes.Buffer
	// Gate final cumulative revenue as lower-is-better: +66% trips it.
	code := run([]string{"-q", "-max-regress", "", "-gate", "timeseries.slot.revenue_cum.last=10%", oldPath, newPath}, &out, &errOut)
	if code != 1 || !strings.Contains(out.String(), "timeseries.slot.revenue_cum.last") {
		t.Fatalf("gate exit = %d, output:\n%s", code, out.String())
	}
	// Bare keys address metrics; an untripped gate passes.
	out.Reset()
	code = run([]string{"-q", "-max-regress", "", "-gate", "welfare_ratio=1%", oldPath, newPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("metric gate exit = %d, output:\n%s", code, out.String())
	}
	// Malformed gate specs are usage errors.
	if code := run([]string{"-gate", "nonsense", oldPath, newPath}, &out, &errOut); code != 2 {
		t.Fatalf("malformed gate exit = %d, want 2", code)
	}
}

func TestLoadErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"missing-a.json", "missing-b.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing files exit = %d, want 2", code)
	}
	if code := run([]string{}, &out, &errOut); code != 2 {
		t.Fatalf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"-max-regress", "bogus",
		writeReport(t, "a.json", sampleReport(1)), writeReport(t, "b.json", sampleReport(1))}, &out, &errOut); code != 2 {
		t.Fatalf("bad threshold exit = %d, want 2", code)
	}
}

func TestParsePct(t *testing.T) {
	for in, want := range map[string]float64{"5%": 0.05, "0.05": 0.05, "12.5%": 0.125, "0": 0} {
		got, err := parsePct(in)
		if err != nil || got != want {
			t.Errorf("parsePct(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5%"} {
		if _, err := parsePct(bad); err == nil {
			t.Errorf("parsePct(%q) should error", bad)
		}
	}
}

func TestLookupPaths(t *testing.T) {
	rep := sampleReport(1)
	for key, want := range map[string]float64{
		"welfare_ratio":                     0.84,
		"metrics.welfare_ratio":             0.84,
		"counters.graph.dijkstra.heap_pops": 1000,
		"histograms.sim.slot_seconds.p99":   0.02,
		"phases.admission.total_seconds":    0.5,
		"timeseries.slot.revenue_cum.last":  12,
		"timeseries.slot.revenue_cum.total": 96,
	} {
		got, ok := lookup(rep, key)
		if !ok || got != want {
			t.Errorf("lookup(%q) = %v, %v; want %v", key, got, ok, want)
		}
	}
	for _, bad := range []string{"histograms.sim.slot_seconds.bogus", "phases.absent.count", "nope"} {
		if _, ok := lookup(rep, bad); ok {
			t.Errorf("lookup(%q) should miss", bad)
		}
	}
}
