// Command auditstat validates and summarises a spaced admission audit
// log (the JSONL stream written by spaced -audit-log).
//
// It checks that every line parses as one audit record — a truncated or
// interleaved line fails the run, which is what makes it useful as the
// CI gate behind `make trace-smoke` — then prints per-outcome counts,
// sampling coverage, and a per-phase duration table aggregated over the
// sampled records. With -by shard it adds a per-shard breakdown
// (records, outcomes, cross-shard count) for logs written by a sharded
// daemon; without the flag the output is unchanged, and logs without
// shard fields aggregate under shard 0.
//
// Usage:
//
//	auditstat audit.jsonl
//	auditstat -min 1 audit.jsonl       # fail unless at least 1 record
//	auditstat -json audit.jsonl       # machine-readable summary
//	auditstat -by shard audit.jsonl   # per-shard breakdown
//	cat audit.jsonl | auditstat -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	minRecords := flag.Int("min", 1, "fail unless the log holds at least this many records")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON (same content as the human output)")
	by := flag.String("by", "", "extra breakdown dimension; only \"shard\" is supported")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("auditstat"))
		return 0
	}
	if *by != "" && *by != "shard" {
		fmt.Fprintf(os.Stderr, "auditstat: -by %q not supported (want shard)\n", *by)
		return 2
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: auditstat [-min N] [-json] [-by shard] <audit.jsonl | ->")
		return 2
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "auditstat: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	} else {
		name = "stdin"
	}

	sum, err := summarize(name, in, *by == "shard")
	if err != nil {
		fmt.Fprintf(os.Stderr, "auditstat: %v\n", err)
		return 1
	}
	if sum.Records < *minRecords {
		fmt.Fprintf(os.Stderr, "auditstat: %s: %d records, need at least %d\n", name, sum.Records, *minRecords)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "auditstat: %v\n", err)
			return 1
		}
		return 0
	}
	printHuman(os.Stdout, sum)
	return 0
}

// summarize aggregates one audit stream. byShard additionally buckets
// records by their shard field (absent fields — pre-cluster logs and
// single-shard daemons — land on shard 0).
func summarize(name string, in io.Reader, byShard bool) (*summary, error) {
	outcomes := map[string]int{}
	phases := map[string]*phaseAgg{}
	shards := map[int]*shardAgg{}
	var order []string
	records, sampled, lineNo := 0, 0, 0

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec server.AuditRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("%s:%d: invalid record: %v", name, lineNo, err)
		}
		if rec.Outcome == "" {
			return nil, fmt.Errorf("%s:%d: record without outcome", name, lineNo)
		}
		records++
		outcomes[rec.Outcome]++
		if byShard {
			sa := shards[rec.Shard]
			if sa == nil {
				sa = &shardAgg{outcomes: map[string]int{}}
				shards[rec.Shard] = sa
			}
			sa.records++
			sa.outcomes[rec.Outcome]++
			if rec.CrossShard {
				sa.cross++
			}
		}
		if !rec.Sampled {
			continue
		}
		sampled++
		for _, sp := range rec.Phases {
			agg := phases[sp.Name]
			if agg == nil {
				agg = &phaseAgg{}
				phases[sp.Name] = agg
				order = append(order, sp.Name)
			}
			agg.add(sp.DurNs())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %v", name, err)
	}

	sort.Slice(order, func(i, j int) bool { return phases[order[i]].totalNs > phases[order[j]].totalNs })

	sum := &summary{
		Source:   name,
		Records:  records,
		Sampled:  sampled,
		Outcomes: outcomes,
	}
	for _, nameKey := range order {
		a := phases[nameKey]
		sum.Phases = append(sum.Phases, phaseSummary{
			Name:   nameKey,
			MeanMs: a.meanMs(),
			MaxMs:  float64(a.maxNs) / 1e6,
			Spans:  a.count,
		})
	}
	if byShard {
		ids := make([]int, 0, len(shards))
		for id := range shards {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			sa := shards[id]
			sum.Shards = append(sum.Shards, shardSummary{
				Shard:      id,
				Records:    sa.records,
				Outcomes:   sa.outcomes,
				CrossShard: sa.cross,
			})
		}
	}
	return sum, nil
}

// printHuman renders the summary. The layout without -by shard is
// frozen: the shard table only appends when the breakdown was requested.
func printHuman(w io.Writer, sum *summary) {
	fmt.Fprintf(w, "%s: %d records, %d sampled\n", sum.Source, sum.Records, sum.Sampled)
	keys := make([]string, 0, len(sum.Outcomes))
	for k := range sum.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-12s %d\n", k, sum.Outcomes[k])
	}
	if len(sum.Phases) > 0 {
		fmt.Fprintf(w, "phases (over sampled records):\n")
		fmt.Fprintf(w, "  %-16s %10s %10s %8s\n", "phase", "mean_ms", "max_ms", "spans")
		for _, p := range sum.Phases {
			fmt.Fprintf(w, "  %-16s %10.3f %10.3f %8d\n", p.Name, p.MeanMs, p.MaxMs, p.Spans)
		}
	}
	if len(sum.Shards) > 0 {
		fmt.Fprintf(w, "by shard:\n")
		fmt.Fprintf(w, "  %-6s %8s %9s %9s %12s\n", "shard", "records", "accepted", "rejected", "cross_shard")
		for _, sh := range sum.Shards {
			fmt.Fprintf(w, "  %-6d %8d %9d %9d %12d\n",
				sh.Shard, sh.Records, sh.Outcomes[server.StatusAccepted], sh.Outcomes[server.StatusRejected], sh.CrossShard)
		}
	}
}

// summary is the -json output: the same content as the human summary,
// one object per run.
type summary struct {
	Source   string         `json:"source"`
	Records  int            `json:"records"`
	Sampled  int            `json:"sampled"`
	Outcomes map[string]int `json:"outcomes"`
	Phases   []phaseSummary `json:"phases,omitempty"`
	Shards   []shardSummary `json:"shards,omitempty"`
}

type phaseSummary struct {
	Name   string  `json:"name"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	Spans  int64   `json:"spans"`
}

// shardSummary is one shard's row of the -by shard breakdown.
type shardSummary struct {
	Shard      int            `json:"shard"`
	Records    int            `json:"records"`
	Outcomes   map[string]int `json:"outcomes"`
	CrossShard int            `json:"cross_shard"`
}

type shardAgg struct {
	records  int
	outcomes map[string]int
	cross    int
}

type phaseAgg struct {
	totalNs int64
	maxNs   int64
	count   int64
}

func (a *phaseAgg) add(ns int64) {
	a.totalNs += ns
	a.count++
	if ns > a.maxNs {
		a.maxNs = ns
	}
}

func (a *phaseAgg) meanMs() float64 {
	if a.count == 0 {
		return 0
	}
	return float64(a.totalNs) / float64(a.count) / 1e6
}
