// Command auditstat validates and summarises a spaced admission audit
// log (the JSONL stream written by spaced -audit-log).
//
// It checks that every line parses as one audit record — a truncated or
// interleaved line fails the run, which is what makes it useful as the
// CI gate behind `make trace-smoke` — then prints per-outcome counts,
// sampling coverage, and a per-phase duration table aggregated over the
// sampled records.
//
// Usage:
//
//	auditstat audit.jsonl
//	auditstat -min 1 audit.jsonl   # fail unless at least 1 record
//	auditstat -json audit.jsonl    # machine-readable summary
//	cat audit.jsonl | auditstat -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	minRecords := flag.Int("min", 1, "fail unless the log holds at least this many records")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON (same content as the human output)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("auditstat"))
		return 0
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: auditstat [-min N] [-json] <audit.jsonl | ->")
		return 2
	}

	var in io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "auditstat: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	} else {
		name = "stdin"
	}

	outcomes := map[string]int{}
	phases := map[string]*phaseAgg{}
	var order []string
	records, sampled, lineNo := 0, 0, 0

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec server.AuditRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			fmt.Fprintf(os.Stderr, "auditstat: %s:%d: invalid record: %v\n", name, lineNo, err)
			return 1
		}
		if rec.Outcome == "" {
			fmt.Fprintf(os.Stderr, "auditstat: %s:%d: record without outcome\n", name, lineNo)
			return 1
		}
		records++
		outcomes[rec.Outcome]++
		if !rec.Sampled {
			continue
		}
		sampled++
		for _, sp := range rec.Phases {
			agg := phases[sp.Name]
			if agg == nil {
				agg = &phaseAgg{}
				phases[sp.Name] = agg
				order = append(order, sp.Name)
			}
			agg.add(sp.DurNs())
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "auditstat: reading %s: %v\n", name, err)
		return 1
	}
	if records < *minRecords {
		fmt.Fprintf(os.Stderr, "auditstat: %s: %d records, need at least %d\n", name, records, *minRecords)
		return 1
	}

	sort.Slice(order, func(i, j int) bool { return phases[order[i]].totalNs > phases[order[j]].totalNs })

	if *jsonOut {
		sum := summary{
			Source:   name,
			Records:  records,
			Sampled:  sampled,
			Outcomes: outcomes,
		}
		for _, nameKey := range order {
			a := phases[nameKey]
			sum.Phases = append(sum.Phases, phaseSummary{
				Name:   nameKey,
				MeanMs: a.meanMs(),
				MaxMs:  float64(a.maxNs) / 1e6,
				Spans:  a.count,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "auditstat: %v\n", err)
			return 1
		}
		return 0
	}

	fmt.Printf("%s: %d records, %d sampled\n", name, records, sampled)
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s %d\n", k, outcomes[k])
	}
	if len(order) > 0 {
		fmt.Printf("phases (over sampled records):\n")
		fmt.Printf("  %-16s %10s %10s %8s\n", "phase", "mean_ms", "max_ms", "spans")
		for _, nameKey := range order {
			a := phases[nameKey]
			fmt.Printf("  %-16s %10.3f %10.3f %8d\n", nameKey, a.meanMs(), float64(a.maxNs)/1e6, a.count)
		}
	}
	return 0
}

// summary is the -json output: the same content as the human summary,
// one object per run.
type summary struct {
	Source   string         `json:"source"`
	Records  int            `json:"records"`
	Sampled  int            `json:"sampled"`
	Outcomes map[string]int `json:"outcomes"`
	Phases   []phaseSummary `json:"phases,omitempty"`
}

type phaseSummary struct {
	Name   string  `json:"name"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	Spans  int64   `json:"spans"`
}

type phaseAgg struct {
	totalNs int64
	maxNs   int64
	count   int64
}

func (a *phaseAgg) add(ns int64) {
	a.totalNs += ns
	a.count++
	if ns > a.maxNs {
		a.maxNs = ns
	}
}

func (a *phaseAgg) meanMs() float64 {
	if a.count == 0 {
		return 0
	}
	return float64(a.totalNs) / float64(a.count) / 1e6
}
