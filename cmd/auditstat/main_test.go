package main

import (
	"strings"
	"testing"
)

const sampleLog = `{"id":1,"ts_unix_ns":1,"outcome":"accepted","arrival_slot":0,"start_slot":0,"end_slot":0,"searches":1,"pruned_labels":0,"heap_pops":3,"deficit_walks":1,"total_ns":1000,"sampled":false}
{"id":2,"ts_unix_ns":2,"outcome":"rejected","reason":"priced-out","arrival_slot":0,"start_slot":0,"end_slot":0,"searches":1,"pruned_labels":0,"heap_pops":3,"deficit_walks":1,"total_ns":2000,"sampled":true,"phases":[{"name":"queue.wait","start_ns":0,"end_ns":500}]}
{"id":3,"ts_unix_ns":3,"outcome":"accepted","shard":1,"cross_shard":true,"arrival_slot":1,"start_slot":1,"end_slot":1,"searches":1,"pruned_labels":0,"heap_pops":3,"deficit_walks":1,"total_ns":1500,"sampled":false}
`

func TestSummarizeWithoutShardBreakdown(t *testing.T) {
	sum, err := summarize("test", strings.NewReader(sampleLog), false)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 3 || sum.Sampled != 1 {
		t.Fatalf("records=%d sampled=%d, want 3/1", sum.Records, sum.Sampled)
	}
	if sum.Outcomes["accepted"] != 2 || sum.Outcomes["rejected"] != 1 {
		t.Fatalf("outcomes = %v", sum.Outcomes)
	}
	if sum.Shards != nil {
		t.Fatalf("shard breakdown present without -by shard: %v", sum.Shards)
	}
	// The default human output must not change when shard fields appear
	// in the log: no shard table, and nothing shard-specific above it.
	var b strings.Builder
	printHuman(&b, sum)
	if strings.Contains(b.String(), "shard") {
		t.Fatalf("default output mentions shards:\n%s", b.String())
	}
}

func TestSummarizeByShard(t *testing.T) {
	sum, err := summarize("test", strings.NewReader(sampleLog), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(sum.Shards))
	}
	// Records without a shard field (pre-cluster logs) land on shard 0.
	s0, s1 := sum.Shards[0], sum.Shards[1]
	if s0.Shard != 0 || s0.Records != 2 || s0.CrossShard != 0 {
		t.Fatalf("shard 0 row = %+v", s0)
	}
	if s1.Shard != 1 || s1.Records != 1 || s1.CrossShard != 1 {
		t.Fatalf("shard 1 row = %+v", s1)
	}
	if s1.Outcomes["accepted"] != 1 {
		t.Fatalf("shard 1 outcomes = %v", s1.Outcomes)
	}
	var b strings.Builder
	printHuman(&b, sum)
	if !strings.Contains(b.String(), "by shard:") {
		t.Fatalf("missing shard table:\n%s", b.String())
	}
}

func TestSummarizeRejectsBadRecords(t *testing.T) {
	if _, err := summarize("test", strings.NewReader("{\"id\":1}\n"), false); err == nil {
		t.Fatal("record without outcome accepted")
	}
	if _, err := summarize("test", strings.NewReader("not json\n"), false); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}
