// Command spaced is the long-running booking daemon: it builds an
// experiment environment once, keeps the admission engine resident, and
// serves the online booking API over HTTP until it is told to drain.
//
// The daemon advances a slot clock at -clock-rate simulated slots per
// wall second (a paper slot is one simulated minute), admits bookings in
// arrival order through the same engine code path the batch simulator
// uses, and sheds load explicitly when the ingress queue fills. SIGINT
// or SIGTERM triggers a graceful drain: intake stops (healthz flips to
// 503), queued bookings are still decided, then the engine runs its
// final metrics sweep and the process exits.
//
// Usage:
//
//	spaced [-addr 127.0.0.1:8080] [-scale small|medium|full]
//	       [-alg CEAR|SSP|ECARS|ERU|ERA|CEAR-NE|CEAR-AA|CEAR-LIN|CEAR-AD]
//	       [-clock-rate R] [-queue-depth N] [-batch-size B]
//	       [-shards N] [-router round-robin|least-loaded|affinity]
//	       [-shard-rate R] [-shard-burst B]
//	       [-valuation V] [-f1 F] [-f2 F]
//	       [-trace] [-trace-sample P] [-slow-ms D] [-audit-log FILE]
//	       [-hotspots=true|false] [-hotspot-k K]
//	       [-drain-timeout D] [-report run.json]
//
// With -shards N > 1 the daemon runs N single-writer admission engines
// partitioned by orbital plane behind the -router policy; bookings
// whose paths cross shard ownership run a two-phase prepare/commit
// against every owning shard. -shard-rate/-shard-burst add a per-shard
// token bucket that sheds with HTTP 429 and reason "overloaded_shard".
//
// Tracing is off by default and free when off. Any of -trace,
// -trace-sample > 0 or -audit-log enables it: every admission decision
// then produces an audit record (queryable at /v1/requests/{id}/trace
// and /debug/traces.json, streamed to -audit-log as JSONL), and sampled
// records — head-sampled at -trace-sample, plus every shed, rejected,
// errored or slower-than -slow-ms request — carry the full per-phase
// timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spacebooking"
	"spacebooking/internal/buildinfo"
	"spacebooking/internal/cluster"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/server"
	"spacebooking/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the booking API and debug endpoints")
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or full")
	algName := flag.String("alg", "CEAR", "algorithm: CEAR, SSP, ECARS, ERU, ERA, CEAR-NE, CEAR-AA, CEAR-LIN, CEAR-AD")
	clockRate := flag.Float64("clock-rate", 1, "simulated slots per wall second (0 = as fast as requests arrive)")
	queueDepth := flag.Int("queue-depth", 256, "ingress queue bound; a full queue sheds with 'overloaded'")
	batchSize := flag.Int("batch-size", 32, "max queued bookings admitted per engine pass")
	shards := flag.Int("shards", 1, "admission-engine shard count (partitioned by orbital plane)")
	routerName := flag.String("router", "round-robin", "shard routing policy: round-robin, least-loaded or affinity")
	shardRate := flag.Float64("shard-rate", 0, "per-shard token-bucket admission rate in requests/s (0 = disabled)")
	shardBurst := flag.Float64("shard-burst", 0, "per-shard token-bucket burst (0 = same as -shard-rate)")
	valuation := flag.Float64("valuation", 0, "default request valuation ρ (0 = scale default)")
	f1 := flag.Float64("f1", 1, "bandwidth conservativeness parameter F1")
	f2 := flag.Float64("f2", 1, "energy conservativeness parameter F2")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain queued bookings on shutdown")
	reportFile := flag.String("report", "", "write a machine-readable JSON run report after the drain")
	traceOn := flag.Bool("trace", false, "enable request tracing even with no sampling and no audit log")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling probability [0,1] for full phase timelines (also enables tracing)")
	slowMs := flag.Float64("slow-ms", 25, "latency SLO objective; slower traced requests are always sampled")
	auditLog := flag.String("audit-log", "", "stream one JSON audit record per admission decision to this file (also enables tracing)")
	hotspots := flag.Bool("hotspots", true, "track per-entity hot spots (links, batteries, source cells) behind /v1/hotspots and /debug/dash")
	hotspotK := flag.Int("hotspot-k", 32, "entries per hot-spot tracker (bounded cardinality)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("spaced"))
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := spacebooking.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	alg, err := sim.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// A daemon is always observed: the registry feeds /metrics,
	// /timeseries.json and the shutdown report.
	reg := obs.New()

	fmt.Printf("building %s environment...\n", scale)
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *valuation == 0 {
		*valuation = env.DefaultValuation()
	}
	wl := env.WorkloadConfig(env.DefaultArrivalRate(), 101)
	wl.Valuation = *valuation
	rc, err := env.RunConfig(alg, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rc.Obs = reg
	if *hotspots {
		if *hotspotK < 1 {
			fmt.Fprintf(os.Stderr, "spaced: -hotspot-k %d must be positive\n", *hotspotK)
			return 1
		}
		rc.HotspotK = *hotspotK
	}
	rc.Pricing, err = pricing.Derive(*f1, *f2, 20, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *traceSample < 0 || *traceSample > 1 {
		fmt.Fprintf(os.Stderr, "spaced: -trace-sample %g outside [0,1]\n", *traceSample)
		return 1
	}
	routerPolicy, err := cluster.ParsePolicy(*routerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	slowThreshold := time.Duration(*slowMs * float64(time.Millisecond))
	srv, err := server.New(server.Config{
		Provider:        env.Provider,
		Run:             rc,
		ClockRate:       *clockRate,
		QueueDepth:      *queueDepth,
		BatchSize:       *batchSize,
		Shards:          *shards,
		Router:          routerPolicy,
		ShardTokenRate:  *shardRate,
		ShardTokenBurst: *shardBurst,
		Trace: server.TraceConfig{
			Enabled:       *traceOn,
			SampleRate:    *traceSample,
			SlowThreshold: slowThreshold,
			AuditPath:     *auditLog,
		},
		SLO: server.SLOConfig{LatencyObjective: slowThreshold},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// One listener carries the booking API and the obs debug surface
	// (/debug/pprof/, /metrics, /metrics.json, /timeseries.json).
	mux := obs.NewDebugMux(reg)
	srv.Register(mux)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(lis) }()

	clockDesc := "as fast as requests arrive"
	if *clockRate > 0 {
		clockDesc = fmt.Sprintf("%.3g slots/s", *clockRate)
	}
	fmt.Printf("spaced listening on http://%s/\n", lis.Addr())
	fmt.Printf("  algorithm   %s\n", srv.Algorithm())
	fmt.Printf("  scale       %s (%d satellites, horizon %d slots)\n", scale, env.Provider.NumSats(), srv.Horizon())
	fmt.Printf("  slot clock  %s\n", clockDesc)
	fmt.Printf("  ingress     queue %d, batch %d\n", *queueDepth, *batchSize)
	if *shards > 1 {
		bucketDesc := "no token bucket"
		if *shardRate > 0 {
			bucketDesc = fmt.Sprintf("bucket %.3g req/s", *shardRate)
		}
		fmt.Printf("  cluster     %d shards, %s router, %s\n", *shards, routerPolicy, bucketDesc)
	}
	if *traceOn || *traceSample > 0 || *auditLog != "" {
		auditDesc := "in-memory only"
		if *auditLog != "" {
			auditDesc = *auditLog
		}
		fmt.Printf("  tracing     sample %.3g, slow %.3gms, audit %s\n", *traceSample, *slowMs, auditDesc)
	}
	if *hotspots {
		fmt.Printf("  hotspots    top-%d trackers at /v1/hotspots, dashboard at /debug/dash\n", *hotspotK)
	}
	fmt.Printf("send SIGINT or SIGTERM to drain and stop\n")

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "spaced: http server: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	fmt.Printf("draining (up to %v)...\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	// The engine is drained (or timed out); now stop taking connections.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	_ = httpSrv.Shutdown(httpCtx)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "spaced: %v\n", drainErr)
		return 1
	}

	res, err := srv.Result()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	st := srv.StatsSnapshot()
	fmt.Printf("drained: %d bookings (%d accepted, %d rejected, %d shed), revenue %.4g, welfare ratio %.4f\n",
		st.Total, st.Accepted, st.Rejected, st.Shed, res.Revenue, res.WelfareRatio)
	if *hotspots {
		server.SummarizeHotspots(srv.HotspotsSnapshot(), os.Stdout)
	}

	if *reportFile != "" {
		rep := obs.NewReport("spaced")
		rep.SetConfig("scale", scale.String())
		rep.SetConfig("algorithm", srv.Algorithm())
		rep.SetConfig("clock_rate", *clockRate)
		rep.SetConfig("queue_depth", *queueDepth)
		rep.SetConfig("batch_size", *batchSize)
		rep.SetConfig("shards", *shards)
		rep.SetConfig("router", routerPolicy.String())
		rep.SetConfig("valuation", *valuation)
		rep.SetConfig("horizon_slots", srv.Horizon())
		rep.SetConfig("trace_sample", *traceSample)
		rep.SetConfig("slow_ms", *slowMs)
		rep.SetConfig("audit_log", *auditLog)
		rep.SetConfig("hotspot_k", rc.HotspotK)
		rep.SetMetric("requests_total", float64(st.Total))
		rep.SetMetric("requests_accepted", float64(st.Accepted))
		rep.SetMetric("requests_rejected", float64(st.Rejected))
		rep.SetMetric("requests_shed", float64(st.Shed))
		rep.SetMetric("queue_high_water", float64(st.QueueHighWater))
		rep.SetMetric("revenue", res.Revenue)
		rep.SetMetric("welfare_ratio", res.WelfareRatio)
		if st.Trace != nil {
			rep.SetMetric("trace_records", float64(st.Trace.Records))
			rep.SetMetric("trace_sampled", float64(st.Trace.Sampled))
			rep.SetMetric("trace_dropped", float64(st.Trace.Dropped))
		}
		rep.SetSLO(srv.SLOSnapshots())
		rep.Finish(reg)
		if err := obs.WriteReportFile(*reportFile, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("report written to %s\n", *reportFile)
	}
	return 0
}
