// Command tracestat summarises a JSON-lines decision trace produced by
// `cearsim -trace` (or any sim run with a trace writer): acceptance
// counts, revenue, rejection breakdown, price quantiles, and the
// depletion/congestion time series.
//
// Usage:
//
//	tracestat <trace.jsonl>
//	cearsim -scale small -trace - | tracestat -
//
// The argument "-" reads the trace from standard input.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/metrics"
	"spacebooking/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 1 && args[0] == "-version" {
		fmt.Fprintln(stdout, buildinfo.Line("tracestat"))
		return 0
	}
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: tracestat <trace.jsonl | ->")
		return 2
	}
	var in io.Reader
	name := args[0]
	if name == "-" {
		in = stdin
		name = "<stdin>"
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		in = f
	}

	records, err := trace.Read(in)
	if err != nil {
		// A malformed line mid-stream is a data error, not a usage
		// error: name the input and pass the line-numbered cause on.
		fmt.Fprintf(stderr, "tracestat: %s: %v\n", name, err)
		return 1
	}
	if len(records) == 0 {
		fmt.Fprintln(stdout, "empty trace")
		return 0
	}

	if records[0].Kind == trace.KindRunInfo {
		info := records[0]
		fmt.Fprintf(stdout, "run: %s, rate %.3g req/min, seed %d\n", info.Algorithm, info.Rate, info.Seed)
	}

	summary := trace.Summarize(records)
	fmt.Fprintf(stdout, "requests: %d total, %d accepted (%.1f%%), %d rejected\n",
		summary.Total, summary.Accepted,
		100*float64(summary.Accepted)/float64(maxInt(1, summary.Total)), summary.Rejected)
	fmt.Fprintf(stdout, "revenue:  %.4g\n", summary.Revenue)

	if len(summary.ByReason) > 0 {
		fmt.Fprintln(stdout, "rejections by reason:")
		reasons := make([]string, 0, len(summary.ByReason))
		for r := range summary.ByReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(stdout, "  %-50.50s %d\n", r, summary.ByReason[r])
		}
	}

	// Price quantiles over accepted requests.
	var prices []float64
	var hops []float64
	var depleted, congested []int
	maxSlot := 0
	for _, r := range records {
		switch r.Kind {
		case trace.KindDecision:
			if r.Accepted {
				prices = append(prices, r.Price)
				hops = append(hops, float64(r.TotalHops))
			}
		case trace.KindSnapshot:
			if r.Slot > maxSlot {
				maxSlot = r.Slot
			}
			depleted = append(depleted, r.Depleted)
			congested = append(congested, r.Congested)
		}
	}
	if len(prices) > 0 {
		fmt.Fprintf(stdout, "accepted price quantiles: p25 %s  p50 %s  p90 %s  max %s\n",
			metrics.FormatFloat(metrics.Quantile(prices, 0.25)),
			metrics.FormatFloat(metrics.Quantile(prices, 0.5)),
			metrics.FormatFloat(metrics.Quantile(prices, 0.9)),
			metrics.FormatFloat(metrics.Quantile(prices, 1)))
		mean, _ := metrics.MeanStd(hops)
		fmt.Fprintf(stdout, "mean plan hops: %s\n", metrics.FormatFloat(mean))
	}
	if len(depleted) > 0 {
		fmt.Fprintf(stdout, "depleted satellites over time:\n%s\n", metrics.Sparkline(depleted, 96))
		fmt.Fprintf(stdout, "congested links over time:\n%s\n", metrics.Sparkline(congested, 96))
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
