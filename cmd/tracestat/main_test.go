package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodTrace = `{"kind":"run_info","algorithm":"CEAR","scale":"small","rate":0.5,"seed":7}
{"kind":"decision","request_id":1,"accepted":true,"price":3.5,"total_hops":4}
{"kind":"decision","request_id":2,"accepted":false,"reason":"no-path"}
{"kind":"snapshot","slot":1,"depleted":2,"congested":1}
`

func runTracestat(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestSummarizesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(goodTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runTracestat(t, []string{path}, "")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut)
	}
	for _, want := range []string{
		"run: CEAR", "2 total, 1 accepted", "no-path", "price quantiles", "depleted satellites",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReadsStdinWithDash(t *testing.T) {
	code, out, errOut := runTracestat(t, []string{"-"}, goodTrace)
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "2 total, 1 accepted") {
		t.Errorf("stdin trace not summarised:\n%s", out)
	}
}

// A malformed line mid-stream must surface the parse error — input name
// and line number — rather than the usage string.
func TestMidStreamParseErrorIsReported(t *testing.T) {
	bad := goodTrace + "{not json\n"
	code, _, errOut := runTracestat(t, []string{"-"}, bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(errOut, "usage:") {
		t.Errorf("parse failure printed usage instead of the error: %q", errOut)
	}
	for _, want := range []string{"<stdin>", "line 5"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q: %q", want, errOut)
		}
	}
}

func TestEmptyTraceAndUsage(t *testing.T) {
	if code, out, _ := runTracestat(t, []string{"-"}, ""); code != 0 || !strings.Contains(out, "empty trace") {
		t.Errorf("empty stdin: exit %d, out %q", code, out)
	}
	if code, _, errOut := runTracestat(t, nil, ""); code != 2 || !strings.Contains(errOut, "usage:") {
		t.Errorf("no args: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runTracestat(t, []string{"does-not-exist.jsonl"}, ""); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
