// Command spaceload drives a running spaced daemon with synthetic
// booking load and reports client-observed admission latency.
//
// It discovers the server's bookable pairs and workload defaults from
// GET /v1/config, synthesises a request mix with internal/workload (the
// paper's truncated-exponential demand and uniform durations), and
// replays it either open loop (-rate requests/second, arrivals paced
// regardless of responses) or closed loop (-concurrency workers, each
// waiting for its response before sending the next). Every response is
// classified — accepted, rejected, shed ("overloaded"), draining, or
// error — and latencies feed an obs histogram.
//
// The run ends after -n requests, after -duration, or on Ctrl-C,
// whichever comes first, and prints a human summary plus one
// machine-parseable line:
//
//	SUMMARY req_per_sec=... p50_ms=... p99_ms=... accepted=... rejected=... shed=... draining=... errors=...
//
// With -report the same numbers are written as an obs JSON report,
// diffable with obsdiff.
//
// Usage:
//
//	spaceload [-addr http://127.0.0.1:8080] [-mode closed|open]
//	          [-rate R] [-concurrency C] [-n N] [-duration D]
//	          [-seed S] [-spec scenario.json] [-report load.json]
//
// With -spec the request mix comes from a declarative scenario spec
// (internal/scenario) bound to the server's advertised pairs and
// horizon instead of the flat paper workload; the spec name and event
// timeline are carried into the SUMMARY line and the -report JSON so
// every run is attributable to a spec version.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/obs"
	"spacebooking/internal/scenario"
	"spacebooking/internal/server"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the spaced daemon")
	mode := flag.String("mode", "closed", "load mode: closed (workers wait for responses) or open (paced arrivals)")
	rate := flag.Float64("rate", 10, "open-loop arrival rate in requests/second")
	concurrency := flag.Int("concurrency", 4, "closed-loop worker count (also the open-loop in-flight cap)")
	n := flag.Int("n", 0, "stop after this many requests (0 = unbounded)")
	duration := flag.Duration("duration", 10*time.Second, "stop after this wall time (0 = unbounded)")
	seed := flag.Int64("seed", 1, "request-mix random seed")
	specFile := flag.String("spec", "", "build the request mix from this scenario spec instead of the flat workload")
	reportFile := flag.String("report", "", "write a machine-readable JSON report of the run")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("spaceload"))
		return 0
	}
	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(os.Stderr, "spaceload: unknown mode %q (want closed or open)\n", *mode)
		return 1
	}
	if *concurrency < 1 {
		fmt.Fprintf(os.Stderr, "spaceload: concurrency %d must be positive\n", *concurrency)
		return 1
	}
	if *n == 0 && *duration == 0 {
		fmt.Fprintln(os.Stderr, "spaceload: need -n or -duration to bound the run")
		return 1
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	cfg, err := fetchConfig(client, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var mix []server.BookRequest
	var specName string
	var specEvents []string
	if *specFile != "" {
		spec, err := scenario.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		spec.Seed = *seed
		mix, err = buildSpecMix(spec, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		specName = spec.Name
		specEvents = spec.EventTimeline()
	} else if mix, err = buildMix(cfg.Workload, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("target %s: %s over %d slots, %d pairs, %d-request mix\n",
		*addr, cfg.Algorithm, cfg.Horizon, len(cfg.Pairs), len(mix))
	if specName != "" {
		fmt.Printf("scenario %s", specName)
		if len(specEvents) > 0 {
			fmt.Printf(" (events: %s)", strings.Join(specEvents, " "))
		}
		fmt.Println()
	}

	lg := &loadGen{
		client:   client,
		url:      *addr + "/v1/book",
		mix:      mix,
		idPrefix: fmt.Sprintf("spaceload-%d", os.Getpid()),
		reg:      obs.New(),
	}
	lg.hist = lg.reg.Histogram("client.latency", nil)

	start := time.Now()
	if *mode == "closed" {
		lg.runClosed(ctx, *concurrency, *n)
	} else {
		lg.runOpen(ctx, *rate, *concurrency, *n)
	}
	elapsed := time.Since(start)

	snap := lg.hist.Snapshot()
	completed := lg.accepted.Load() + lg.rejected.Load() + lg.shed.Load() + lg.draining.Load() + lg.errors.Load()
	reqPerSec := float64(completed) / elapsed.Seconds()
	fmt.Printf("\n%d requests in %v (%.1f req/s)\n", completed, elapsed.Round(time.Millisecond), reqPerSec)
	fmt.Printf("  accepted  %d\n", lg.accepted.Load())
	fmt.Printf("  rejected  %d\n", lg.rejected.Load())
	fmt.Printf("  shed      %d (overloaded)\n", lg.shed.Load())
	fmt.Printf("  draining  %d\n", lg.draining.Load())
	fmt.Printf("  errors    %d\n", lg.errors.Load())
	fmt.Printf("latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
		1e3*snap.P50, 1e3*snap.P95, 1e3*snap.P99, 1e3*snap.Max)

	// Server-side view: join this run's audit records (matched by our
	// request-id prefix) into a per-phase breakdown. Silently absent
	// when the server runs without tracing.
	breakdown := fetchPhaseBreakdown(client, *addr, lg.idPrefix)
	if breakdown != nil {
		fmt.Printf("\nserver-side phases (%d audit records, %d with timelines):\n",
			breakdown.records, breakdown.sampled)
		for _, ph := range breakdown.phases {
			fmt.Printf("  %-16s mean %8.3f ms  max %8.3f ms  (%d spans)\n",
				ph.name, 1e3*ph.meanSec(), 1e3*ph.maxSec, ph.count)
		}
	}

	summaryLine := fmt.Sprintf("SUMMARY req_per_sec=%.2f p50_ms=%.3f p99_ms=%.3f accepted=%d rejected=%d shed=%d draining=%d errors=%d",
		reqPerSec, 1e3*snap.P50, 1e3*snap.P99,
		lg.accepted.Load(), lg.rejected.Load(), lg.shed.Load(), lg.draining.Load(), lg.errors.Load())
	if specName != "" {
		// Keep the line machine-parseable: space-free values only.
		summaryLine += " spec=" + specName
		if len(specEvents) > 0 {
			summaryLine += " events=" + strings.Join(specEvents, ",")
		}
	}
	fmt.Println(summaryLine)

	if *reportFile != "" {
		rep := obs.NewReport("spaceload")
		rep.SetConfig("addr", *addr)
		rep.SetConfig("mode", *mode)
		rep.SetConfig("rate_per_sec", *rate)
		rep.SetConfig("concurrency", *concurrency)
		rep.SetConfig("seed", *seed)
		rep.SetConfig("server_algorithm", cfg.Algorithm)
		rep.SetConfig("server_horizon", cfg.Horizon)
		if specName != "" {
			rep.SetConfig("spec", specName)
			rep.SetConfig("spec_events", strings.Join(specEvents, " "))
		}
		rep.SetMetric("req_per_sec", reqPerSec)
		rep.SetMetric("p50_ms", 1e3*snap.P50)
		rep.SetMetric("p95_ms", 1e3*snap.P95)
		rep.SetMetric("p99_ms", 1e3*snap.P99)
		rep.SetMetric("accepted", float64(lg.accepted.Load()))
		rep.SetMetric("rejected", float64(lg.rejected.Load()))
		rep.SetMetric("shed", float64(lg.shed.Load()))
		rep.SetMetric("draining", float64(lg.draining.Load()))
		rep.SetMetric("errors", float64(lg.errors.Load()))
		if breakdown != nil {
			rep.SetMetric("server_audit_records", float64(breakdown.records))
			rep.SetMetric("server_audit_sampled", float64(breakdown.sampled))
			for _, ph := range breakdown.phases {
				rep.SetMetric("server_phase_"+ph.name+"_mean_ms", 1e3*ph.meanSec())
			}
		}
		rep.Finish(lg.reg)
		if err := obs.WriteReportFile(*reportFile, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("report written to %s\n", *reportFile)
	}
	if lg.errors.Load() > 0 && completed == lg.errors.Load() {
		return 1 // nothing but errors: the target is down
	}
	return 0
}

// phaseAgg accumulates one phase's spans across audit records.
type phaseAgg struct {
	name    string
	totalNs int64
	maxSec  float64
	count   int64
}

func (p *phaseAgg) meanSec() float64 {
	if p.count == 0 {
		return 0
	}
	return float64(p.totalNs) / float64(p.count) / 1e9
}

// traceBreakdown is the server-side view of this run.
type traceBreakdown struct {
	records int64
	sampled int64
	phases  []*phaseAgg
}

// fetchPhaseBreakdown pulls the server's recent audit records and
// aggregates the ones this run produced (client ids carrying prefix)
// into per-phase means. Returns nil when the server has tracing off, is
// unreachable, or retained none of our records.
func fetchPhaseBreakdown(client *http.Client, addr, prefix string) *traceBreakdown {
	resp, err := client.Get(addr + "/debug/traces.json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var payload struct {
		Records []server.AuditRecord `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	bd := &traceBreakdown{}
	byName := map[string]*phaseAgg{}
	for _, rec := range payload.Records {
		if !strings.HasPrefix(rec.ClientID, prefix) {
			continue
		}
		bd.records++
		if !rec.Sampled {
			continue
		}
		bd.sampled++
		for _, sp := range rec.Phases {
			dur := sp.DurNs()
			agg := byName[sp.Name]
			if agg == nil {
				agg = &phaseAgg{name: sp.Name}
				byName[sp.Name] = agg
				bd.phases = append(bd.phases, agg)
			}
			agg.totalNs += dur
			agg.count++
			if sec := float64(dur) / 1e9; sec > agg.maxSec {
				agg.maxSec = sec
			}
		}
	}
	if bd.records == 0 {
		return nil
	}
	sort.Slice(bd.phases, func(i, j int) bool { return bd.phases[i].totalNs > bd.phases[j].totalNs })
	return bd
}

// fetchConfig asks the daemon what is bookable.
func fetchConfig(client *http.Client, addr string) (server.ConfigResponse, error) {
	var cfg server.ConfigResponse
	resp, err := client.Get(addr + "/v1/config")
	if err != nil {
		return cfg, fmt.Errorf("spaceload: fetching %s/v1/config: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cfg, fmt.Errorf("spaceload: %s/v1/config: HTTP %d", addr, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("spaceload: decoding /v1/config: %w", err)
	}
	if len(cfg.Workload.Pairs) == 0 {
		return cfg, fmt.Errorf("spaceload: server advertises no bookable pairs")
	}
	return cfg, nil
}

// buildMix synthesises the request pool: the server's own workload
// distribution (demand, durations, valuation) re-seeded for this run.
// Arrival timing is discarded — the load mode paces arrivals.
func buildMix(wcfg workload.Config, seed int64) ([]server.BookRequest, error) {
	wcfg.Seed = seed
	if wcfg.ArrivalRatePerSlot <= 0 {
		wcfg.ArrivalRatePerSlot = 10
	}
	reqs, err := workload.Generate(wcfg)
	if err != nil {
		return nil, fmt.Errorf("spaceload: generating request mix: %w", err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("spaceload: empty request mix (horizon %d, rate %g)", wcfg.Horizon, wcfg.ArrivalRatePerSlot)
	}
	mix := make([]server.BookRequest, len(reqs))
	for i, r := range reqs {
		mix[i] = server.BookRequest{
			Src:           wireEndpoint(r.Src),
			Dst:           wireEndpoint(r.Dst),
			RateMbps:      r.RateMbps,
			DurationSlots: r.DurationSlots(),
			Valuation:     r.Valuation,
		}
	}
	return mix, nil
}

// buildSpecMix synthesises the request pool from a scenario spec bound
// to the server's advertised pairs, horizon and default valuation.
// Sites do not travel over the wire, so specs needing them (solar-phased
// diurnals, regional outages) must run through cearsim instead; the
// generator rejects them with a clear error. Arrival timing is
// discarded — the load mode paces arrivals.
func buildSpecMix(spec scenario.Spec, cfg server.ConfigResponse) ([]server.BookRequest, error) {
	b := scenario.Binding{
		Horizon:          cfg.Horizon,
		Pairs:            cfg.Workload.Pairs,
		DefaultValuation: cfg.Workload.Valuation,
	}
	reqs, err := scenario.Generate(spec, b)
	if err != nil {
		return nil, fmt.Errorf("spaceload: generating spec mix: %w", err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("spaceload: spec %q generated no requests over horizon %d", spec.Name, cfg.Horizon)
	}
	mix := make([]server.BookRequest, len(reqs))
	for i, r := range reqs {
		mix[i] = server.BookRequest{
			Src:           wireEndpoint(r.Src),
			Dst:           wireEndpoint(r.Dst),
			RateMbps:      r.RateMbps,
			DurationSlots: r.DurationSlots(),
			Valuation:     r.Valuation,
		}
	}
	return mix, nil
}

// wireEndpoint converts a topology endpoint to its API form.
func wireEndpoint(e topology.Endpoint) server.EndpointRef {
	kind := "ground"
	if e.Kind == topology.EndpointSpace {
		kind = "space"
	}
	return server.EndpointRef{Kind: kind, Index: e.Index}
}

// loadGen is the shared state of the load workers.
type loadGen struct {
	client *http.Client
	url    string
	mix    []server.BookRequest
	next   atomic.Int64 // round-robin cursor into mix
	// idPrefix prefixes the client-assigned request id of every request
	// ("<prefix>-<seq>"), joining server-side audit records to this run.
	idPrefix string

	reg  *obs.Registry
	hist *obs.Histogram

	accepted atomic.Int64
	rejected atomic.Int64
	shed     atomic.Int64
	draining atomic.Int64
	errors   atomic.Int64
}

// runClosed runs workers that each wait for a response before sending
// the next request — throughput is whatever the server sustains.
func (lg *loadGen) runClosed(ctx context.Context, workers, limit int) {
	var sent atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if limit > 0 && sent.Add(1) > int64(limit) {
					return
				}
				lg.sendOne(ctx)
			}
		}()
	}
	wg.Wait()
}

// runOpen paces arrivals at the target rate regardless of responses,
// capped at inflight concurrent requests (beyond the cap an arrival is
// counted as a client-side error: the server was too slow to matter).
func (lg *loadGen) runOpen(ctx context.Context, rate float64, inflight, limit int) {
	if rate <= 0 {
		fmt.Fprintln(os.Stderr, "spaceload: open mode needs -rate > 0")
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	sent := 0
	for ctx.Err() == nil && (limit == 0 || sent < limit) {
		select {
		case <-ctx.Done():
		case <-tick.C:
			sent++
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					lg.sendOne(ctx)
				}()
			default:
				lg.errors.Add(1)
			}
		}
	}
	wg.Wait()
}

// sendOne posts the next request of the mix and classifies the outcome.
func (lg *loadGen) sendOne(ctx context.Context) {
	seq := lg.next.Add(1) - 1
	br := lg.mix[int(seq)%len(lg.mix)]
	br.RequestID = fmt.Sprintf("%s-%d", lg.idPrefix, seq)
	body, err := json.Marshal(br)
	if err != nil {
		lg.errors.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, lg.url, bytes.NewReader(body))
	if err != nil {
		lg.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := lg.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			lg.errors.Add(1)
		}
		return
	}
	lg.hist.Observe(time.Since(start).Seconds())
	var out server.BookResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&out)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if decodeErr != nil {
		lg.errors.Add(1)
		return
	}
	switch out.Status {
	case server.StatusAccepted:
		lg.accepted.Add(1)
	case server.StatusRejected:
		lg.rejected.Add(1)
	case server.StatusOverloaded:
		lg.shed.Add(1)
	case server.StatusDraining:
		lg.draining.Add(1)
	default:
		lg.errors.Add(1)
	}
}
