// Command cearsim runs a single LSN simulation with one admission
// algorithm and prints the full result: welfare, revenue, rejection
// breakdown, and compact textual time series of the Fig. 7/8 metrics.
//
// Usage:
//
//	cearsim [-scale small|medium|full]
//	        [-alg CEAR|SSP|ECARS|ERU|ERA|CEAR-NE|CEAR-AA|CEAR-LIN|CEAR-AD]
//	        [-rate R] [-seed N] [-valuation V] [-f1 F] [-f2 F]
//	        [-spec scenario.json] [-record] [-replay recorded.jsonl]
//	        [-trace decisions.jsonl] [-report run.json]
//	        [-debug-addr 127.0.0.1:6060]
//
// -spec drives the run from a declarative scenario spec instead of the
// flat paper workload. -record (with -trace) writes every admitted
// request into the trace, making it a complete recording; -replay runs
// such a recording back through the engine, reproducing every decision,
// price and Result byte-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"spacebooking"
	"spacebooking/internal/buildinfo"
	"spacebooking/internal/metrics"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/scenario"
	"spacebooking/internal/sim"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or full")
	algName := flag.String("alg", "CEAR", "algorithm: CEAR, SSP, ECARS, ERU, ERA, CEAR-NE, CEAR-AA, CEAR-LIN, CEAR-AD")
	rate := flag.Float64("rate", 0, "request arrival rate per minute (0 = scale default)")
	seed := flag.Int64("seed", 101, "workload random seed")
	valuation := flag.Float64("valuation", 0, "request valuation ρ (0 = scale default)")
	f1 := flag.Float64("f1", 1, "bandwidth conservativeness parameter F1")
	f2 := flag.Float64("f2", 1, "energy conservativeness parameter F2")
	specFile := flag.String("spec", "", "drive the run from this scenario spec (JSON)")
	record := flag.Bool("record", false, "record every admitted request into the trace (requires -trace)")
	replayFile := flag.String("replay", "", "replay a recorded trace instead of generating a workload")
	traceFile := flag.String("trace", "", "write a JSON-lines decision trace to this file")
	reportFile := flag.String("report", "", "write a machine-readable JSON run report to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /metrics.json on this address (e.g. 127.0.0.1:6060)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("cearsim"))
		return 0
	}
	if *specFile != "" && *replayFile != "" {
		fmt.Fprintln(os.Stderr, "cearsim: -spec and -replay are mutually exclusive")
		return 1
	}
	if *record && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "cearsim: -record requires -trace")
		return 1
	}

	// Ctrl-C / SIGTERM cancels the run between requests instead of
	// letting it play out to the horizon.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale, err := spacebooking.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	alg, err := sim.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Instrumentation is opt-in: the registry exists only when a flag
	// asks for its output, so plain runs keep the no-op fast path.
	var reg *obs.Registry
	if *reportFile != "" || *debugAddr != "" {
		reg = obs.New()
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/ (pprof, metrics.json)\n", srv.Addr())
	}

	start := time.Now()
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	env.Obs = reg
	if *rate == 0 {
		*rate = env.DefaultArrivalRate()
	}
	if *valuation == 0 {
		*valuation = env.DefaultValuation()
	}

	wl := env.WorkloadConfig(*rate, *seed)
	wl.Valuation = *valuation
	rc, err := env.RunConfig(alg, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rc.Pricing, err = pricing.Derive(*f1, *f2, 20, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Workload source: the flat paper workload by default, a scenario
	// spec's generated stream, or a recorded trace played back.
	var specName string
	var eventTimeline []string
	var sourceReqs []workload.Request
	switch {
	case *specFile != "":
		spec, err := scenario.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		gen, err := scenario.NewGenerator(spec, env.ScenarioBinding())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rc.Source = gen
		rc.SpecName = spec.Name
		specName = spec.Name
		eventTimeline = spec.EventTimeline()
		// A second, independent generation for the assumptions check —
		// byte-identical to the stream the run drains.
		sourceReqs, err = scenario.Generate(spec, env.ScenarioBinding())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *replayFile != "":
		f, err := os.Open(*replayFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		records, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		reqs, name, err := scenario.RequestsFromTrace(records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rc.Source = workload.NewSliceSource(reqs)
		rc.SpecName = name
		specName = name
		sourceReqs = reqs
	}
	rc.RecordRequests = *record

	var tw *trace.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		tw = trace.NewWriter(f)
		rc.Trace = tw
	}

	res, err := env.RunContext(ctx, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, context.Canceled) {
			return 130
		}
		return 1
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	// Diagnostic: how far this workload strays from §V's assumptions.
	reqs := sourceReqs
	if reqs == nil {
		if reqs, err = workload.Generate(wl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	assumptions, err := sim.CheckAssumptions(env.Provider, rc.Pricing, rc.Energy, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("algorithm        %s\n", res.Algorithm)
	if specName != "" {
		mode := "spec"
		if *replayFile != "" {
			mode = "replayed spec"
		}
		fmt.Printf("scenario         %s (%s)\n", specName, mode)
	} else if *replayFile != "" {
		fmt.Printf("scenario         replayed trace %s\n", *replayFile)
	}
	if len(eventTimeline) > 0 {
		fmt.Printf("events           %s\n", strings.Join(eventTimeline, " "))
	}
	fmt.Printf("scale            %s (%d satellites, horizon %d min)\n", scale, env.Provider.NumSats(), env.Provider.Horizon())
	fmt.Printf("arrival rate     %.3g req/min, seed %d, valuation %.3g\n", *rate, *seed, *valuation)
	fmt.Printf("requests         %d total, %d accepted (%.1f%%)\n",
		res.TotalRequests, res.Accepted, 100*float64(res.Accepted)/float64(max(1, res.TotalRequests)))
	fmt.Printf("welfare ratio    %.4f\n", res.WelfareRatio)
	fmt.Printf("operator revenue %.4g\n", res.Revenue)
	fmt.Printf("avg path hops    %.2f (one-way latency %.1f ms)\n", res.AvgAcceptedHops, res.AvgAcceptedLatencyMs)
	fmt.Printf("assumptions 1-2  %s\n", assumptions)
	if len(res.Rejections) > 0 {
		fmt.Printf("rejections:\n")
		reasons := make([]string, 0, len(res.Rejections))
		for reason := range res.Rejections {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Printf("  %-18s %d\n", reason, res.Rejections[reason])
		}
	}
	fmt.Printf("mean depleted satellites  %.2f (peak %d)\n", res.MeanDepleted(), maxInt(res.DepletedPerSlot))
	fmt.Printf("mean congested links      %.2f (peak %d)\n", res.MeanCongested(), maxInt(res.CongestedPerSlot))
	fmt.Printf("\ndepleted satellites over time:\n%s\n", metrics.Sparkline(res.DepletedPerSlot, 96))
	fmt.Printf("congested links over time:\n%s\n", metrics.Sparkline(res.CongestedPerSlot, 96))
	fmt.Printf("cumulative welfare ratio over time:\n%s\n", metrics.SparklineFloat(res.CumulativeWelfareRatio, 96))
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))

	if *reportFile != "" {
		rep := buildReport(scale, env, rc, res, *rate, *seed, *valuation, *f1, *f2, specName, eventTimeline, reg)
		if err := obs.WriteReportFile(*reportFile, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("report written to %s\n", *reportFile)
	}
	return 0
}

// buildReport assembles the machine-readable run report: the effective
// configuration, the §VI-A result metrics, and the instrumentation
// snapshot.
func buildReport(scale spacebooking.Scale, env *spacebooking.Environment, rc sim.RunConfig,
	res *sim.Result, rate float64, seed int64, valuation, f1, f2 float64,
	specName string, eventTimeline []string, reg *obs.Registry) *obs.Report {
	rep := obs.NewReport("cearsim")
	rep.SetConfig("scale", scale.String())
	if specName != "" {
		rep.SetConfig("spec", specName)
	}
	if len(eventTimeline) > 0 {
		rep.SetConfig("spec_events", strings.Join(eventTimeline, " "))
	}
	rep.SetConfig("algorithm", res.Algorithm)
	rep.SetConfig("rate_per_min", rate)
	rep.SetConfig("seed", seed)
	rep.SetConfig("valuation", valuation)
	rep.SetConfig("f1", f1)
	rep.SetConfig("f2", f2)
	rep.SetConfig("satellites", env.Provider.NumSats())
	rep.SetConfig("horizon_min", env.Provider.Horizon())
	rep.SetConfig("max_hops", rc.MaxHops)

	rep.SetMetric("requests_total", float64(res.TotalRequests))
	rep.SetMetric("requests_accepted", float64(res.Accepted))
	rep.SetMetric("welfare_ratio", res.WelfareRatio)
	rep.SetMetric("revenue", res.Revenue)
	rep.SetMetric("avg_accepted_hops", res.AvgAcceptedHops)
	rep.SetMetric("avg_accepted_latency_ms", res.AvgAcceptedLatencyMs)
	rep.SetMetric("mean_depleted_sats", res.MeanDepleted())
	rep.SetMetric("peak_depleted_sats", float64(maxInt(res.DepletedPerSlot)))
	rep.SetMetric("mean_congested_links", res.MeanCongested())
	rep.SetMetric("peak_congested_links", float64(maxInt(res.CongestedPerSlot)))
	for reason, n := range res.Rejections {
		rep.SetMetric("rejected."+reason, float64(n))
	}
	rep.Finish(reg)
	return rep
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
