// Command spacebench regenerates the figures of the paper's evaluation
// section (§VI). Each subcommand reproduces one figure; "all" runs the
// whole evaluation.
//
// Usage:
//
//	spacebench [-scale small|medium|full] [-seed N] [-quiet] <figure>
//
// where <figure> is one of: fig6, fig7, fig8, fig9, ablate, adaptive,
// competitive, all. The extra "scenario" figure runs a declarative
// workload spec (-spec FILE, see internal/scenario) through the paper's
// five algorithms and tabulates welfare, acceptance and revenue.
//
// The default scale is "medium" — shape-preserving and minutes-fast. Use
// -scale full for the paper's exact §VI-A setting (1584 satellites,
// 384 minutes, 1761 ground sites, 223 EO satellites); expect a long run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spacebooking"
	"spacebooking/internal/buildinfo"
	"spacebooking/internal/metrics"
	"spacebooking/internal/obs"
	"spacebooking/internal/scenario"
	"spacebooking/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium or full")
	parallel := flag.Int("parallel", 0, "max concurrent simulation runs per figure (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 101, "base random seed for single-run figures")
	numSeeds := flag.Int("seeds", len(spacebooking.DefaultSeeds), "number of seeds for the Fig. 6 error bars (1-5)")
	csvDir := flag.String("csv", "", "directory for per-figure CSV exports (optional)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	specFile := flag.String("spec", "", "scenario spec file for the \"scenario\" figure")
	reportFile := flag.String("report", "", "write a machine-readable JSON run report to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /metrics.json on this address (e.g. 127.0.0.1:6060)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spacebench [flags] <fig6|fig7|fig8|fig9|ablate|adaptive|competitive|scenario|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("spacebench"))
		return 0
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	figure := flag.Arg(0)

	scale, err := spacebooking.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Instrumentation is opt-in: the registry exists only when a flag
	// asks for its output, so plain runs keep the no-op fast path.
	var reg *obs.Registry
	if *reportFile != "" || *debugAddr != "" {
		reg = obs.New()
	}
	var srv *obs.DebugServer
	if *debugAddr != "" {
		srv, err = obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s/ (pprof, metrics.json)\n", srv.Addr())
	}

	start := time.Now()
	fmt.Printf("building %s-scale environment...\n", scale)
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	env.Obs = reg
	env.Parallelism = *parallel
	if srv != nil {
		// Each run gets its own registry; keep the live debug endpoints
		// pointed at the most recently completed run.
		env.ObsSink = srv.SetRegistry
	}
	if !*quiet {
		env.Logf = func(format string, args ...interface{}) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}
	fmt.Printf("environment ready in %v: %d satellites, %d sites, %d EO, %d pairs, horizon %d min\n\n",
		time.Since(start).Round(time.Millisecond),
		env.Provider.NumSats(), len(env.Sites), len(env.EOFleet), len(env.Pairs), env.Provider.Horizon())

	if *numSeeds < 1 {
		*numSeeds = 1
	}
	if *numSeeds > len(spacebooking.DefaultSeeds) {
		*numSeeds = len(spacebooking.DefaultSeeds)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	opts := runOpts{seed: *seed, seeds: spacebooking.DefaultSeeds[:*numSeeds], csvDir: *csvDir, spec: *specFile}

	runners := map[string]func(*spacebooking.Environment, runOpts) error{
		"fig6":        runFig6,
		"fig7":        runFig7,
		"fig8":        runFig8,
		"fig9":        runFig9,
		"ablate":      runAblate,
		"adaptive":    runAdaptive,
		"competitive": runCompetitive,
		"scenario":    runScenario,
	}
	if figure == "all" {
		for _, name := range []string{"fig6", "fig7", "fig8", "fig9", "ablate", "adaptive", "competitive"} {
			if err := runners[name](env, opts); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				return 1
			}
		}
		fmt.Printf("\nall figures reproduced in %v\n", time.Since(start).Round(time.Second))
		return writeReport(*reportFile, figure, scale, opts, time.Since(start), *parallel, env, reg)
	}
	runner, ok := runners[figure]
	if !ok {
		flag.Usage()
		return 2
	}
	if err := runner(env, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return writeReport(*reportFile, figure, scale, opts, time.Since(start), *parallel, env, reg)
}

// writeReport emits the machine-readable run report when -report is set:
// the effective configuration, wall time, and the instrumentation
// snapshot of the figure's last run (in matrix order).
func writeReport(path, figure string, scale spacebooking.Scale, opts runOpts, elapsed time.Duration, parallel int, env *spacebooking.Environment, reg *obs.Registry) int {
	if path == "" {
		return 0
	}
	rep := obs.NewReport("spacebench")
	rep.SetConfig("figure", figure)
	rep.SetConfig("scale", scale.String())
	rep.SetConfig("seed", opts.seed)
	rep.SetConfig("num_seeds", len(opts.seeds))
	rep.SetConfig("parallel", parallel)
	// Every run collects into its own registry; the snapshot below is
	// the figure's last run in matrix order, matching the retired
	// reset-per-run behaviour.
	rep.SetConfig("obs_scope", "last_run")
	rep.SetMetric("elapsed_seconds", elapsed.Seconds())
	if last := env.LastObs(); last != nil {
		reg = last
	}
	rep.Finish(reg)
	if err := obs.WriteReportFile(path, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("report written to %s\n", path)
	return 0
}

// runOpts carries the seed and export settings to the figure runners.
type runOpts struct {
	seed   int64
	seeds  []int64
	csvDir string
	spec   string
}

// writeCSV writes one export file when -csv is set.
func (o runOpts) writeCSV(name string, headers []string, rows [][]float64) error {
	if o.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(o.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteCSV(f, headers, rows)
}

func runFig6(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunFig6(spacebooking.Fig6Config{Seeds: opts.seeds})
	if err != nil {
		return err
	}
	fmt.Println()
	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	algs := []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"}
	headers := []string{"rate"}
	for _, a := range algs {
		headers = append(headers, a+"_mean", a+"_std")
	}
	rows := make([][]float64, len(res.Rates))
	for i, rate := range res.Rates {
		row := []float64{rate}
		for _, a := range algs {
			p := res.Points[a][i]
			row = append(row, p.Mean, p.Std)
		}
		rows[i] = row
	}
	return opts.writeCSV("fig6.csv", headers, rows)
}

func runFig7(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunFig7(spacebooking.Fig7Config{Seed: opts.seed})
	if err != nil {
		return err
	}
	dep, cong := res.Tables()
	fmt.Println()
	if err := dep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := cong.Render(os.Stdout); err != nil {
		return err
	}
	algs := []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"}
	headers := append([]string{"slot"}, algs...)
	buildRows := func(series map[string][]int) [][]float64 {
		rows := make([][]float64, res.Horizon)
		for t := 0; t < res.Horizon; t++ {
			row := []float64{float64(t)}
			for _, a := range algs {
				row = append(row, float64(series[a][t]))
			}
			rows[t] = row
		}
		return rows
	}
	if err := opts.writeCSV("fig7_depleted.csv", headers, buildRows(res.DepletedSeries)); err != nil {
		return err
	}
	return opts.writeCSV("fig7_congested.csv", headers, buildRows(res.CongestedSeries))
}

func runFig8(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunFig8(spacebooking.Fig8Config{Seed: opts.seed})
	if err != nil {
		return err
	}
	fmt.Println()
	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	algs := []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"}
	headers := append([]string{"slot"}, algs...)
	rows := make([][]float64, res.Horizon)
	for t := 0; t < res.Horizon; t++ {
		row := []float64{float64(t)}
		for _, a := range algs {
			row = append(row, res.Series[a][t])
		}
		rows[t] = row
	}
	if err := opts.writeCSV("fig8.csv", headers, rows); err != nil {
		return err
	}
	fmt.Println("\ncumulative welfare ratio over time:")
	var series []metrics.Series
	for _, a := range algs {
		series = append(series, metrics.Series{Name: a, Values: res.Series[a]})
	}
	fmt.Print(metrics.MultiSeriesPlot(series, 88))
	return nil
}

func runFig9(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunFig9(spacebooking.Fig9Config{Seeds: []int64{opts.seed}})
	if err != nil {
		return err
	}
	valT, f2T := res.Tables()
	fmt.Println()
	if err := valT.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := f2T.Render(os.Stdout); err != nil {
		return err
	}
	toRows := func(points []spacebooking.SweepPoint) [][]float64 {
		rows := make([][]float64, len(points))
		for i, p := range points {
			rows[i] = []float64{p.X, p.Mean, p.Std}
		}
		return rows
	}
	if err := opts.writeCSV("fig9_valuation.csv", []string{"valuation", "mean", "std"}, toRows(res.ValuationSweep)); err != nil {
		return err
	}
	return opts.writeCSV("fig9_f2.csv", []string{"f2", "mean", "std"}, toRows(res.F2Sweep))
}

func runAblate(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunAblations(opts.seed)
	if err != nil {
		return err
	}
	fmt.Println()
	return res.Table().Render(os.Stdout)
}

func runAdaptive(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunAdaptiveComparison(opts.seed)
	if err != nil {
		return err
	}
	fmt.Println()
	return res.Table().Render(os.Stdout)
}

// runScenario drives a declarative workload spec through the paper's
// five algorithms. Every run rebuilds the streaming generator from the
// same spec and seed, so all algorithms see the identical request
// sequence — the comparison isolates admission policy, not workload
// noise.
func runScenario(env *spacebooking.Environment, opts runOpts) error {
	if opts.spec == "" {
		return fmt.Errorf("the scenario figure needs -spec FILE")
	}
	spec, err := scenario.Load(opts.spec)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d classes", spec.Name, len(spec.Classes))
	if tl := spec.EventTimeline(); len(tl) > 0 {
		fmt.Printf(", events %s", strings.Join(tl, " "))
	}
	fmt.Println()

	t := metrics.NewTable(fmt.Sprintf("Scenario %q — algorithm comparison", spec.Name),
		"algorithm", "accepted", "total", "welfare", "revenue")
	rows := make([][]float64, 0, 5)
	for _, alg := range []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgECARS, sim.AlgERU, sim.AlgERA} {
		gen, err := scenario.NewGenerator(spec, env.ScenarioBinding())
		if err != nil {
			return err
		}
		wl := env.WorkloadConfig(env.DefaultArrivalRate(), spec.Seed)
		rc, err := env.RunConfig(alg, wl)
		if err != nil {
			return err
		}
		rc.Source = gen
		rc.SpecName = spec.Name
		res, err := env.Run(rc)
		if err != nil {
			return err
		}
		t.AddRow(alg.String(),
			fmt.Sprintf("%d", res.Accepted), fmt.Sprintf("%d", res.TotalRequests),
			fmt.Sprintf("%.4f", res.WelfareRatio), fmt.Sprintf("%.3g", res.Revenue))
		rows = append(rows, []float64{float64(alg), float64(res.Accepted), float64(res.TotalRequests), res.WelfareRatio, res.Revenue})
	}
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return opts.writeCSV("scenario.csv", []string{"alg", "accepted", "total", "welfare", "revenue"}, rows)
}

func runCompetitive(env *spacebooking.Environment, opts runOpts) error {
	res, err := env.RunCompetitive(0, opts.seed)
	if err != nil {
		return err
	}
	fmt.Println()
	return res.Table().Render(os.Stdout)
}
