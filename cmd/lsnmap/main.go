// Command lsnmap renders a snapshot of the simulated LSN as a standalone
// SVG: satellite sub-points (coloured by battery health after an
// optional simulated load), ground sites, the +Grid ISL fabric, and the
// min-price path of a sample request.
//
// Usage:
//
//	lsnmap [-scale small|medium|full] [-slot N] [-load R] [-o out.svg]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spacebooking"
	"spacebooking/internal/buildinfo"
	"spacebooking/internal/core"
	"spacebooking/internal/geo"
	"spacebooking/internal/netstate"
	"spacebooking/internal/sim"
	"spacebooking/internal/viz"
	"spacebooking/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "small", "scale: small, medium or full")
	slot := flag.Int("slot", 30, "time slot to snapshot")
	load := flag.Float64("load", 0, "requests/min of simulated load before the snapshot (0 = pristine)")
	out := flag.String("o", "lsnmap.svg", "output SVG file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("lsnmap"))
		return 0
	}

	scale, err := spacebooking.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	start := time.Now()
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	prov := env.Provider
	if *slot < 0 || *slot >= prov.Horizon() {
		fmt.Fprintf(os.Stderr, "slot %d outside horizon [0,%d)\n", *slot, prov.Horizon())
		return 1
	}

	// Optionally drive load through CEAR so battery colours mean something.
	state, err := netstate.New(prov, spacebooking.PaperEnergyConfig(), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	params, err := spacebooking.PaperPricing()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *load > 0 {
		reqs, err := workload.Generate(env.WorkloadConfig(*load, 101))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		accepted := 0
		for _, r := range reqs {
			d, err := cear.Handle(r)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if d.Accepted {
				accepted++
			}
		}
		fmt.Printf("simulated load: %d/%d requests accepted\n", accepted, len(reqs))
	}

	m := viz.NewMap(fmt.Sprintf("LSN snapshot — %s scale, slot %d (%s %s)",
		scale, *slot, sim.AlgCEAR, "pricing state"))

	// ISLs first (underneath), for a subset to keep full scale legible.
	stride := 1
	if prov.NumSats() > 400 {
		stride = 4
	}
	subpoint := func(sat int) (float64, float64) {
		lla := geo.ECEFToLLA(prov.SatPosECEF(*slot, sat))
		return lla.LatDeg, lla.LonDeg
	}
	for sat := 0; sat < prov.NumSats(); sat += stride {
		la1, lo1 := subpoint(sat)
		for _, n := range prov.ISLNeighbors(sat) {
			if n < sat {
				continue
			}
			la2, lo2 := subpoint(n)
			m.AddLink(la1, lo1, la2, lo2, "#233057", 0.3)
		}
	}

	// Satellites coloured by battery depletion at the snapshot slot.
	for sat := 0; sat < prov.NumSats(); sat++ {
		la, lo := subpoint(sat)
		depletion := state.Battery(sat).UtilizationAt(*slot)
		m.AddSatellite(la, lo, prov.Sunlit(*slot, sat), viz.HeatRamp(depletion))
	}

	// Ground sites.
	for _, s := range env.Sites {
		m.AddSite(s.LatDeg, s.LonDeg, "#2e8b57")
	}

	// One sample request path at the snapshot slot.
	pair := env.Pairs[0]
	req := workload.Request{
		ID: 1 << 20, Src: pair.Src, Dst: pair.Dst,
		StartSlot: *slot, EndSlot: *slot,
		RateMbps: 1000, Valuation: env.DefaultValuation(),
	}
	d, err := cear.Handle(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if d.Accepted {
		path := d.Plan.Paths[0].Path
		src := env.Sites[pair.Src.Index]
		dst := env.Sites[pair.Dst.Index]
		prevLat, prevLon := src.LatDeg, src.LonDeg
		for _, n := range path.Nodes[1 : len(path.Nodes)-1] {
			la, lo := subpoint(n)
			m.AddLink(prevLat, prevLon, la, lo, "#ffd24d", 1.2)
			prevLat, prevLon = la, lo
		}
		m.AddLink(prevLat, prevLon, dst.LatDeg, dst.LonDeg, "#ffd24d", 1.2)
		m.AddLabel(src.LatDeg, src.LonDeg, "src", "#ffd24d")
		m.AddLabel(dst.LatDeg, dst.LonDeg, "dst", "#ffd24d")
		fmt.Printf("sample request routed over %d hops at price %.4g\n", path.Hops(), d.Price)
	} else {
		fmt.Printf("sample request rejected: %s\n", d.Reason)
	}

	svg := m.Render([]viz.Legend{
		{Color: "#2e8b57", Text: "ground site"},
		{Color: viz.HeatRamp(0), Text: "satellite (full battery)"},
		{Color: viz.HeatRamp(1), Text: "satellite (depleted)"},
		{Color: "#444466", Text: "in umbra"},
		{Color: "#ffd24d", Text: "sample reserved path"},
	})
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("wrote %s (%d elements) in %v\n", *out, m.NumElements(), time.Since(start).Round(time.Millisecond))
	return 0
}
