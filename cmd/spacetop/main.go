// Command spacetop is a top(1)-style terminal viewer for a running
// spaced daemon: it polls GET /v1/hotspots and renders the ranked hot
// ISLs, batteries and source cells, with per-interval deltas so a
// moving hot spot stands out from a historically hot one.
//
// Usage:
//
//	spacetop [-addr http://127.0.0.1:8080] [-interval 2s] [-n 10] [-once]
//
// -once prints a single snapshot without clearing the screen (usable in
// scripts and CI). Otherwise the screen redraws every -interval using
// ANSI clear codes, until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/obs"
	"spacebooking/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the spaced daemon")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	topN := flag.Int("n", 10, "rows per table")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("spacetop"))
		return 0
	}
	if *topN < 1 {
		fmt.Fprintf(os.Stderr, "spacetop: -n %d must be positive\n", *topN)
		return 1
	}
	if *interval <= 0 {
		fmt.Fprintf(os.Stderr, "spacetop: -interval %v must be positive\n", *interval)
		return 1
	}

	client := &http.Client{Timeout: 10 * time.Second}
	url := strings.TrimRight(*addr, "/") + "/v1/hotspots"

	cur, err := fetch(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spacetop: %v\n", err)
		return 1
	}
	if *once {
		render(os.Stdout, cur, nil, *topN, false)
		return 0
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	render(os.Stdout, cur, nil, *topN, true)
	prev := cur
	for {
		select {
		case <-sig:
			fmt.Println()
			return 0
		case <-ticker.C:
			next, err := fetch(client, url)
			if err != nil {
				// A draining/restarting daemon is normal; keep the last
				// frame and note the error below it.
				fmt.Printf("\nspacetop: %v (retrying)\n", err)
				continue
			}
			render(os.Stdout, next, prev, *topN, true)
			prev = next
		}
	}
}

// fetch pulls and decodes one hot-spot snapshot.
func fetch(client *http.Client, url string) (*server.HotspotsResponse, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var h server.HotspotsResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return &h, nil
}

// valuesByKey indexes a tracker snapshot for the delta column.
func valuesByKey(tk obs.TopKSnapshot) map[uint64]float64 {
	m := make(map[uint64]float64, len(tk.Entries))
	for _, e := range tk.Entries {
		m[e.Key] = e.Value
	}
	return m
}

// render paints one frame. prev, when non-nil, supplies the previous
// frame so each row shows its delta over the poll interval.
func render(out io.Writer, h, prev *server.HotspotsResponse, topN int, clear bool) {
	if clear {
		// ANSI: home cursor + clear screen, so unchanged rows repaint in
		// place instead of scrolling.
		fmt.Fprint(out, "\x1b[H\x1b[2J")
	}
	fmt.Fprintf(out, "spacetop — slot %d, uptime %.0fs", h.Slot, h.UptimeSeconds)
	if !h.Enabled {
		fmt.Fprint(out, "  [hot-spot tracking DISABLED on the daemon]")
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "rejections: congested %d (per-link total %.0f), depleted %d (per-battery total %.0f)\n\n",
		h.RejectedCongested, h.Links.Total, h.RejectedDepleted, h.Batteries.Total)

	sections := []struct {
		title  string
		cur    obs.TopKSnapshot
		prev   obs.TopKSnapshot
		valFmt string
	}{
		{"HOT LINKS (congestion rejections)", h.Links, prevOr(prev).Links, "%.0f"},
		{"LINK UTILIZATION (max committed)", h.LinkUtilization, prevOr(prev).LinkUtilization, "%.3f"},
		{"HOT BATTERIES (depletion rejections)", h.Batteries, prevOr(prev).Batteries, "%.0f"},
		{"BATTERY DEPTH-OF-DISCHARGE (max committed)", h.BatteryDoD, prevOr(prev).BatteryDoD, "%.3f"},
		{"SOURCE CELLS (rejected)", h.SrcRejected, prevOr(prev).SrcRejected, "%.0f"},
		{"SOURCE CELLS (accepted)", h.SrcAccepted, prevOr(prev).SrcAccepted, "%.0f"},
	}
	for _, sec := range sections {
		var prevVals map[uint64]float64
		if prev != nil {
			prevVals = valuesByKey(sec.prev)
		}
		table(out, sec.title, sec.cur, prevVals, topN, sec.valFmt)
	}
}

// prevOr turns a nil previous frame into a zero one so section wiring
// stays declarative.
func prevOr(prev *server.HotspotsResponse) *server.HotspotsResponse {
	if prev == nil {
		return &server.HotspotsResponse{}
	}
	return prev
}

// table prints one ranked tracker with a delta column.
func table(out io.Writer, title string, tk obs.TopKSnapshot, prevVals map[uint64]float64, topN int, valFmt string) {
	fmt.Fprintf(out, "%s  (total %.0f)\n", title, tk.Total)
	if len(tk.Entries) == 0 {
		fmt.Fprintln(out, "  (no entries yet)")
		fmt.Fprintln(out)
		return
	}
	fmt.Fprintf(out, "  %-18s %12s %10s\n", "entity", "value", "delta")
	n := len(tk.Entries)
	if n > topN {
		n = topN
	}
	for i := 0; i < n; i++ {
		e := tk.Entries[i]
		label := e.Label
		if label == "" {
			label = fmt.Sprint(e.Key)
		}
		delta := ""
		if prevVals != nil {
			if d := e.Value - prevVals[e.Key]; d > 0 {
				delta = "+" + fmt.Sprintf(valFmt, d)
			} else if d < 0 {
				delta = fmt.Sprintf(valFmt, d)
			}
		}
		fmt.Fprintf(out, "  %-18s %12s %10s\n", label, fmt.Sprintf(valFmt, e.Value), delta)
	}
	fmt.Fprintln(out)
}
