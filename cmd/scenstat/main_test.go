package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodSpec = `{
  "version": 1,
  "name": "unit",
  "seed": 7,
  "horizon": 2000,
  "classes": [{
    "name": "calls",
    "arrival": {"process": "poisson", "rate_per_slot": 5},
    "mix": {"min_duration_slots": 1, "max_duration_slots": 3,
            "min_rate_mbps": 500, "max_rate_mbps": 2000, "mean_rate_mbps": 1250,
            "valuation": 1e8}
  }]
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizeValidSpec(t *testing.T) {
	path := writeSpec(t, goodSpec)
	if err := summarize(path, 0, 0, false); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := summarize(path, 0, 0, true); err != nil {
		t.Fatalf("json mode: %v", err)
	}
}

func TestSummarizeInvalidSpec(t *testing.T) {
	path := writeSpec(t, `{"version": 9, "name": "bad", "classes": []}`)
	if err := summarize(path, 0, 0, false); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if err := summarize(filepath.Join(t.TempDir(), "missing.json"), 0, 0, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSummarizeErlangB(t *testing.T) {
	path := writeSpec(t, goodSpec)
	// λ=5, mean hold 2 → 10 erlangs on 12 servers: the generator's
	// measured blocking must land inside the documented tolerance.
	if err := summarize(path, 12, 0, false); err != nil {
		t.Fatalf("erlang-b validation failed: %v", err)
	}
}

func TestSummarizeErlangBNeedsHorizon(t *testing.T) {
	noHorizon := strings.Replace(goodSpec, `"horizon": 2000,`, "", 1)
	path := writeSpec(t, noHorizon)
	err := summarize(path, 12, 0, false)
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("horizon-free erlang-b run: %v", err)
	}
	if err := summarize(path, 12, 2000, false); err != nil {
		t.Fatalf("-horizon override failed: %v", err)
	}
}

func TestSummarizeErlangBRejectsNonStationary(t *testing.T) {
	withEvent := strings.Replace(goodSpec, `"classes"`, `"events": [{"kind": "flash_crowd", "start_slot": 1, "end_slot": 5, "factor": 2}], "classes"`, 1)
	path := writeSpec(t, withEvent)
	if err := summarize(path, 12, 0, false); err == nil {
		t.Fatal("non-stationary spec accepted for erlang-b validation")
	}
	// Without -servers the same spec is fine.
	if err := summarize(path, 0, 0, false); err != nil {
		t.Fatalf("summary-only run failed: %v", err)
	}
}
