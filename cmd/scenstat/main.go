// Command scenstat validates and summarises scenario spec files: the
// versioned schema check, a per-class table (arrival process, rates,
// request mix), and the event timeline. An invalid spec fails the run,
// which is what makes it the first gate of `make scenario-smoke`.
//
// With -servers it additionally runs the Erlang-B analytical twin on a
// stationary single-bottleneck spec: the closed-form blocking
// probability, the measured blocking of the generator-driven loss
// simulation, and a PASS/FAIL verdict within the documented tolerance.
//
// Usage:
//
//	scenstat spec.json...
//	scenstat -json spec.json              # machine-readable summary
//	scenstat -servers 12 spec.json       # Erlang-B validation
//	scenstat -servers 12 -horizon 4000 spec.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/scenario"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	servers := flag.Int("servers", 0, "validate Erlang-B blocking against an m-server loss simulation (0 = skip)")
	horizon := flag.Int("horizon", 0, "horizon in slots for the Erlang-B loss simulation (0 = the spec's, which must then be set)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Line("scenstat"))
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scenstat [-json] [-servers M [-horizon H]] <spec.json>...")
		return 2
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := summarize(path, *servers, *horizon, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "scenstat: %v\n", err)
			exit = 1
		}
	}
	return exit
}

// summary is the machine-readable form of one spec's report.
type summary struct {
	Path     string                  `json:"path"`
	Name     string                  `json:"name"`
	Version  int                     `json:"version"`
	Seed     int64                   `json:"seed"`
	Horizon  int                     `json:"horizon,omitempty"`
	Classes  []classSummary          `json:"classes"`
	Events   []string                `json:"events,omitempty"`
	Rate     float64                 `json:"total_rate_per_slot"`
	ErlangB  *scenario.ErlangBReport `json:"erlang_b,omitempty"`
	Stations bool                    `json:"stationary"`
}

type classSummary struct {
	Name        string  `json:"name"`
	Process     string  `json:"process"`
	RatePerSlot float64 `json:"rate_per_slot"`
	Shape       float64 `json:"shape,omitempty"`
	MinDur      int     `json:"min_duration_slots"`
	MaxDur      int     `json:"max_duration_slots"`
	MeanRate    float64 `json:"mean_rate_mbps"`
	Valuation   float64 `json:"valuation,omitempty"`
	Pairs       []int   `json:"pairs,omitempty"`
	Diurnal     string  `json:"diurnal,omitempty"`
}

func summarize(path string, servers, horizon int, jsonOut bool) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	s := summary{
		Path: path, Name: spec.Name, Version: spec.Version,
		Seed: spec.Seed, Horizon: spec.Horizon,
		Events:   spec.EventTimeline(),
		Stations: len(spec.Events) == 0,
	}
	for _, c := range spec.Classes {
		cs := classSummary{
			Name: c.Name, Process: c.Arrival.Process,
			RatePerSlot: c.Arrival.RatePerSlot, Shape: c.Arrival.Shape,
			MinDur: c.Mix.MinDurationSlots, MaxDur: c.Mix.MaxDurationSlots,
			MeanRate: c.Mix.MeanRateMbps, Valuation: c.Mix.Valuation,
			Pairs: c.Pairs,
		}
		if d := c.Diurnal; d != nil {
			cs.Diurnal = fmt.Sprintf("period %d amplitude %g", d.PeriodSlots, d.Amplitude)
			if d.SolarPhase {
				cs.Diurnal += " solar-phased"
			}
			s.Stations = false
		}
		s.Rate += c.Arrival.RatePerSlot
		s.Classes = append(s.Classes, cs)
	}

	if servers > 0 {
		rep, err := validateErlangB(spec, servers, horizon)
		if err != nil {
			return err
		}
		s.ErlangB = &rep
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			return err
		}
	} else {
		printHuman(s)
	}
	if s.ErlangB != nil && !s.ErlangB.Pass {
		return fmt.Errorf("%s: erlang-b validation failed: %s", path, s.ErlangB)
	}
	return nil
}

// validateErlangB runs the analytical twin on a synthetic one-pair
// binding: pair identity never influences blocking, only the arrival
// process and holding times do.
func validateErlangB(spec scenario.Spec, servers, horizon int) (scenario.ErlangBReport, error) {
	b := scenario.Binding{
		Horizon: horizon,
		Pairs: []workload.Pair{{
			Src: topology.Endpoint{Kind: topology.EndpointGround, Index: 0},
			Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: 1},
		}},
		DefaultValuation: 1,
	}
	if b.Horizon == 0 {
		b.Horizon = spec.Horizon
	}
	if b.Horizon == 0 {
		return scenario.ErlangBReport{}, fmt.Errorf("erlang-b validation needs a horizon (spec has none; pass -horizon)")
	}
	return scenario.ValidateErlangB(spec, b, servers)
}

func printHuman(s summary) {
	fmt.Printf("spec %s (version %d, seed %d", s.Name, s.Version, s.Seed)
	if s.Horizon > 0 {
		fmt.Printf(", horizon %d", s.Horizon)
	}
	fmt.Printf(")\n")
	fmt.Printf("  total arrival rate %.4g/slot, %d classes\n", s.Rate, len(s.Classes))
	for _, c := range s.Classes {
		line := fmt.Sprintf("  class %-12s %s", c.Name, c.Process)
		if c.Shape > 0 && c.Process != scenario.ProcessPoisson {
			line += fmt.Sprintf("(k=%g)", c.Shape)
		}
		line += fmt.Sprintf(" rate %.4g/slot, dur [%d,%d], mean %.4g Mbps", c.RatePerSlot, c.MinDur, c.MaxDur, c.MeanRate)
		if c.Valuation > 0 {
			line += fmt.Sprintf(", valuation %.3g", c.Valuation)
		}
		if len(c.Pairs) > 0 {
			line += fmt.Sprintf(", pairs %v", c.Pairs)
		}
		if c.Diurnal != "" {
			line += ", diurnal " + c.Diurnal
		}
		fmt.Println(line)
	}
	if len(s.Events) > 0 {
		fmt.Printf("  events: %s\n", strings.Join(s.Events, " "))
	}
	if s.ErlangB != nil {
		fmt.Printf("  %s\n", s.ErlangB)
	}
}
