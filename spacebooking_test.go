package spacebooking

import (
	"math"
	"strings"
	"sync"
	"testing"

	"spacebooking/internal/sim"
)

// The small environment is expensive enough to share across tests.
var (
	envOnce sync.Once
	envInst *Environment
	envErr  error
)

func smallEnv(t *testing.T) *Environment {
	t.Helper()
	envOnce.Do(func() {
		envInst, envErr = NewEnvironment(EnvConfig{Scale: ScaleSmall})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envInst
}

func TestScaleStringAndParse(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScaleFull} {
		parsed, err := ParseScale(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if parsed != s {
			t.Errorf("round trip %v -> %v", s, parsed)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale should error")
	}
	if got := Scale(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown scale string %q", got)
	}
}

func TestNewEnvironmentErrors(t *testing.T) {
	if _, err := NewEnvironment(EnvConfig{}); err == nil {
		t.Error("zero scale should error")
	}
}

func TestSmallEnvironmentShape(t *testing.T) {
	env := smallEnv(t)
	if env.Provider.NumSats() != 96 {
		t.Errorf("sats = %d", env.Provider.NumSats())
	}
	if env.Provider.Horizon() != 96 {
		t.Errorf("horizon = %d", env.Provider.Horizon())
	}
	if len(env.Sites) != 60 {
		t.Errorf("sites = %d", len(env.Sites))
	}
	if len(env.Pairs) != 4 {
		t.Errorf("pairs = %d", len(env.Pairs))
	}
	if env.Scale() != ScaleSmall {
		t.Errorf("scale = %v", env.Scale())
	}
	if env.DefaultArrivalRate() != 2 {
		t.Errorf("rate = %v", env.DefaultArrivalRate())
	}
	// All pair endpoints must be within the covered latitude band.
	maxLat := env.Provider.Config().Walker.InclinationDeg - 1
	for _, p := range env.Pairs {
		for _, ep := range []int{p.Src.Index, p.Dst.Index} {
			if math.Abs(env.Sites[ep].LatDeg) > maxLat {
				t.Errorf("pair endpoint site %d at lat %v outside coverage", ep, env.Sites[ep].LatDeg)
			}
		}
	}
}

func TestEnvironmentPairsDeterministic(t *testing.T) {
	a, err := NewEnvironment(EnvConfig{Scale: ScaleSmall, PairSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnvironment(EnvConfig{Scale: ScaleSmall, PairSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs across identical environments", i)
		}
	}
}

func TestWorkloadConfig(t *testing.T) {
	env := smallEnv(t)
	wl := env.WorkloadConfig(7, 3)
	if wl.ArrivalRatePerSlot != 7 || wl.Seed != 3 {
		t.Errorf("workload = %+v", wl)
	}
	if wl.Horizon != env.Provider.Horizon() {
		t.Errorf("horizon = %d", wl.Horizon)
	}
	if len(wl.Pairs) != len(env.Pairs) {
		t.Errorf("pairs = %d", len(wl.Pairs))
	}
}

func TestSweepRates(t *testing.T) {
	env := smallEnv(t)
	rates := env.SweepRates()
	want := []float64{1, 2, 3, 4, 5}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v", rates)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Errorf("rates = %v, want %v", rates, want)
		}
	}
}

func TestRunFig6Smoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunFig6(Fig6Config{
		Rates:      []float64{2},
		Seeds:      []int64{1, 2},
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CEAR", "SSP"} {
		points := res.Points[name]
		if len(points) != 1 {
			t.Fatalf("%s points = %d", name, len(points))
		}
		if points[0].Mean < 0 || points[0].Mean > 1 {
			t.Errorf("%s welfare = %v", name, points[0].Mean)
		}
		if points[0].Std < 0 {
			t.Errorf("%s std = %v", name, points[0].Std)
		}
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CEAR") || !strings.Contains(b.String(), "rate=2") {
		t.Errorf("table output:\n%s", b.String())
	}
}

func TestRunFig7Smoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunFig7(Fig7Config{
		EnergyRate:     2,
		CongestionRate: 5,
		Seed:           1,
		Algorithms:     []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DepletedSeries["CEAR"]) != env.Provider.Horizon() {
		t.Errorf("depleted series length %d", len(res.DepletedSeries["CEAR"]))
	}
	if len(res.CongestedSeries["SSP"]) != env.Provider.Horizon() {
		t.Errorf("congested series length %d", len(res.CongestedSeries["SSP"]))
	}
	dep, cong := res.Tables()
	var b strings.Builder
	if err := dep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := cong.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "energy-depleted") || !strings.Contains(b.String(), "congested links") {
		t.Errorf("tables:\n%s", b.String())
	}
}

func TestRunFig8Smoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunFig8(Fig8Config{
		Rate:       2,
		Seed:       1,
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR},
	})
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series["CEAR"]
	if len(series) != env.Provider.Horizon() {
		t.Fatalf("series length %d", len(series))
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cumulative") {
		t.Errorf("table:\n%s", b.String())
	}
}

func TestRunFig9Smoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunFig9(Fig9Config{
		Valuations: []float64{1e6, 2.3e9},
		F2Values:   []float64{1, 4},
		Rate:       3,
		Seeds:      []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValuationSweep) != 2 || len(res.F2Sweep) != 2 {
		t.Fatalf("sweep sizes %d/%d", len(res.ValuationSweep), len(res.F2Sweep))
	}
	// Higher valuation can only help welfare (requests priced out less).
	if res.ValuationSweep[1].Mean+1e-9 < res.ValuationSweep[0].Mean {
		t.Errorf("welfare decreased with valuation: %v -> %v",
			res.ValuationSweep[0].Mean, res.ValuationSweep[1].Mean)
	}
	valT, f2T := res.Tables()
	var b strings.Builder
	if err := valT.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := f2T.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "valuation") || !strings.Contains(b.String(), "F2") {
		t.Errorf("tables:\n%s", b.String())
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunAblations(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("variants = %d", len(res.Rows))
	}
	for name, row := range res.Rows {
		if row.WelfareRatio < 0 || row.WelfareRatio > 1 {
			t.Errorf("%s welfare = %v", name, row.WelfareRatio)
		}
	}
	// Only price-charging variants can have revenue.
	if res.Rows["CEAR-AA"].Revenue < 0 {
		t.Error("negative revenue")
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CEAR-NE") {
		t.Errorf("table:\n%s", b.String())
	}
}

func TestRunCompetitiveSmoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunCompetitive(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineAccepted == 0 {
		t.Fatal("online accepted nothing")
	}
	if res.TheoreticalBound < 35 || res.TheoreticalBound > 36 {
		t.Errorf("bound = %v, want ~35.6", res.TheoreticalBound)
	}
	// The empirical ratio must be far below the worst-case bound, and the
	// offline greedy (which sees everything) should not be beaten by more
	// than noise... it CAN be beaten since greedy is not optimal, so only
	// sanity-check positivity.
	if res.EmpiricalRatio <= 0 {
		t.Errorf("empirical ratio = %v", res.EmpiricalRatio)
	}
	if res.EmpiricalRatio > res.TheoreticalBound {
		t.Errorf("empirical ratio %v exceeds the theoretical bound %v", res.EmpiricalRatio, res.TheoreticalBound)
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empirical ratio") {
		t.Errorf("table:\n%s", b.String())
	}
}

func TestPaperConstants(t *testing.T) {
	params, err := PaperPricing()
	if err != nil {
		t.Fatal(err)
	}
	if params.Mu1 != 402 || params.Mu2 != 402 {
		t.Errorf("μ = %v/%v", params.Mu1, params.Mu2)
	}
	ecfg := PaperEnergyConfig()
	if ecfg.BatteryCapacityJ != 117000 || ecfg.PanelWatts != 20 {
		t.Errorf("energy config = %+v", ecfg)
	}
}

func TestRunAdaptiveComparisonSmoke(t *testing.T) {
	env := smallEnv(t)
	res, err := env.RunAdaptiveComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range map[string]float64{"static": res.StaticWelfare, "adaptive": res.AdaptiveWelfare} {
		if w < 0 || w > 1 {
			t.Errorf("%s welfare = %v", name, w)
		}
	}
	var b strings.Builder
	if err := res.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CEAR-AD") {
		t.Errorf("table:\n%s", b.String())
	}
}
