module spacebooking

go 1.22
