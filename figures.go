package spacebooking

import (
	"fmt"

	"spacebooking/internal/experiment"
	"spacebooking/internal/metrics"
	"spacebooking/internal/offline"
	"spacebooking/internal/pricing"
	"spacebooking/internal/sim"
	"spacebooking/internal/workload"
)

// DefaultSeeds are the five seeds behind the paper's error bars.
var DefaultSeeds = []int64{101, 202, 303, 404, 505}

// SweepRates returns the arrival-rate sweep of Fig. 6, scaled around the
// environment's default rate: ×{0.5, 1, 1.5, 2, 2.5}. At ScaleFull with
// the paper default of 10/min this is exactly {5, 10, 15, 20, 25}.
func (e *Environment) SweepRates() []float64 {
	base := e.arrivalRate
	return []float64{0.5 * base, base, 1.5 * base, 2 * base, 2.5 * base}
}

// SweepPoint is one (x, mean, std) sample of a sweep.
type SweepPoint struct {
	X    float64
	Mean float64
	Std  float64
}

// Fig6Config parameterises the Fig. 6 reproduction.
type Fig6Config struct {
	// Rates overrides the arrival-rate sweep (default: SweepRates()).
	Rates []float64
	// Seeds overrides the random seeds (default: DefaultSeeds).
	Seeds []int64
	// Algorithms overrides the algorithm set (default: the paper's five).
	Algorithms []sim.AlgorithmKind
}

// Fig6Result holds the social-welfare-ratio sweep of Fig. 6.
type Fig6Result struct {
	Rates []float64
	// Points[alg name][i] is the welfare ratio at Rates[i].
	Points map[string][]SweepPoint
}

// RunFig6 reproduces Fig. 6: social welfare ratio for every algorithm
// under the default setting and an arrival-rate sweep, averaged over
// seeds with standard deviations.
func (e *Environment) RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = e.SweepRates()
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = sim.PaperAlgorithms()
	}

	jobs := experiment.Matrix{Algorithms: algs, Rates: rates, Seeds: seeds}.Jobs()
	results, err := e.runMatrix(jobs, func(_ int, j experiment.Job) (sim.RunConfig, error) {
		return e.RunConfig(j.Algorithm, e.WorkloadConfig(j.Rate, j.Seed))
	})
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}

	// Matrix order is algorithm-major, so results group back into
	// (alg, rate) points exactly like the sequential triple loop did.
	out := &Fig6Result{Rates: rates, Points: make(map[string][]SweepPoint, len(algs))}
	idx := 0
	for _, alg := range algs {
		points := make([]SweepPoint, 0, len(rates))
		for _, rate := range rates {
			ratios := make([]float64, 0, len(seeds))
			for range seeds {
				ratios = append(ratios, results[idx].Res.WelfareRatio)
				idx++
			}
			mean, std := metrics.MeanStd(ratios)
			points = append(points, SweepPoint{X: rate, Mean: mean, Std: std})
			e.logf("fig6 %-8s rate %-6.3g welfare %.3f ± %.3f", alg, rate, mean, std)
		}
		out.Points[alg.String()] = points
	}
	return out, nil
}

// Table renders the Fig. 6 result as "algorithm × arrival rate".
func (r *Fig6Result) Table() *metrics.Table {
	cols := make([]string, 0, len(r.Rates)+1)
	cols = append(cols, "algorithm")
	for _, rate := range r.Rates {
		cols = append(cols, fmt.Sprintf("rate=%s", metrics.FormatFloat(rate)))
	}
	t := metrics.NewTable("Fig. 6 — social welfare ratio vs request arrival rate (mean ± std over seeds)", cols...)
	for _, name := range []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"} {
		points, ok := r.Points[name]
		if !ok {
			continue
		}
		cells := make([]string, 0, len(points)+1)
		cells = append(cells, name)
		for _, p := range points {
			cells = append(cells, fmt.Sprintf("%.3f±%.3f", p.Mean, p.Std))
		}
		t.AddRow(cells...)
	}
	// Any non-paper algorithms (ablations) go after.
	for name, points := range r.Points {
		switch name {
		case "CEAR", "SSP", "ECARS", "ERU", "ERA":
			continue
		}
		cells := make([]string, 0, len(points)+1)
		cells = append(cells, name)
		for _, p := range points {
			cells = append(cells, fmt.Sprintf("%.3f±%.3f", p.Mean, p.Std))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig7Config parameterises the Fig. 7 reproduction.
type Fig7Config struct {
	// EnergyRate is the arrival rate of the depleted-satellites subplot
	// (paper: default rate).
	EnergyRate float64
	// CongestionRate is the rate of the congested-links subplot
	// (paper: 25/min — 2.5× the default).
	CongestionRate float64
	Seed           int64
	Algorithms     []sim.AlgorithmKind
}

// Fig7Result holds the two time-series families of Fig. 7.
type Fig7Result struct {
	// DepletedSeries[alg][t]: satellites below 20% battery at slot t.
	DepletedSeries map[string][]int
	// CongestedSeries[alg][t]: links below 10% residual at slot t.
	CongestedSeries map[string][]int
	Horizon         int
}

// RunFig7 reproduces Fig. 7: the evolution of energy-depleted satellites
// (at the default rate) and congested links (at 2.5× the default rate)
// over the simulation horizon.
func (e *Environment) RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.EnergyRate == 0 {
		cfg.EnergyRate = e.arrivalRate
	}
	if cfg.CongestionRate == 0 {
		cfg.CongestionRate = 2.5 * e.arrivalRate
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeeds[0]
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = sim.PaperAlgorithms()
	}
	out := &Fig7Result{
		DepletedSeries:  make(map[string][]int, len(algs)),
		CongestedSeries: make(map[string][]int, len(algs)),
		Horizon:         e.Provider.Horizon(),
	}
	jobs := make([]experiment.Job, 0, 2*len(algs))
	for _, alg := range algs {
		jobs = append(jobs,
			experiment.Job{Algorithm: alg, Rate: cfg.EnergyRate, Seed: cfg.Seed, Key: "energy"},
			experiment.Job{Algorithm: alg, Rate: cfg.CongestionRate, Seed: cfg.Seed, Key: "congestion"})
	}
	results, err := e.runMatrix(jobs, func(_ int, j experiment.Job) (sim.RunConfig, error) {
		return e.RunConfig(j.Algorithm, e.WorkloadConfig(j.Rate, j.Seed))
	})
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	for _, r := range results {
		switch r.Job.Key {
		case "energy":
			out.DepletedSeries[r.Job.Algorithm.String()] = r.Res.DepletedPerSlot
		case "congestion":
			out.CongestedSeries[r.Job.Algorithm.String()] = r.Res.CongestedPerSlot
		}
	}
	for _, alg := range algs {
		e.logf("fig7 %-8s mean depleted %.2f, mean congested %.2f",
			alg, meanInts(out.DepletedSeries[alg.String()]), meanInts(out.CongestedSeries[alg.String()]))
	}
	return out, nil
}

func meanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

func maxInts(xs []int) int {
	max := 0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Tables renders Fig. 7 as two summary tables (mean and peak per
// algorithm) — the textual equivalent of the paper's two subplots.
func (r *Fig7Result) Tables() (depleted, congested *metrics.Table) {
	depleted = metrics.NewTable("Fig. 7 (left) — energy-depleted satellites over time",
		"algorithm", "mean", "peak", "final")
	congested = metrics.NewTable("Fig. 7 (right) — congested links over time (high rate)",
		"algorithm", "mean", "peak", "final")
	for _, name := range []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"} {
		if s, ok := r.DepletedSeries[name]; ok {
			depleted.AddRow(name,
				metrics.FormatFloat(meanInts(s)),
				fmt.Sprintf("%d", maxInts(s)),
				fmt.Sprintf("%d", s[len(s)-1]))
		}
		if s, ok := r.CongestedSeries[name]; ok {
			congested.AddRow(name,
				metrics.FormatFloat(meanInts(s)),
				fmt.Sprintf("%d", maxInts(s)),
				fmt.Sprintf("%d", s[len(s)-1]))
		}
	}
	return depleted, congested
}

// Fig8Config parameterises the Fig. 8 reproduction.
type Fig8Config struct {
	Rate       float64
	Seed       int64
	Algorithms []sim.AlgorithmKind
}

// Fig8Result holds the cumulative social-welfare-ratio series of Fig. 8.
type Fig8Result struct {
	Series  map[string][]float64
	Horizon int
}

// RunFig8 reproduces Fig. 8: the social welfare ratio over time under
// the default setting.
func (e *Environment) RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.Rate == 0 {
		cfg.Rate = e.arrivalRate
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeeds[0]
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = sim.PaperAlgorithms()
	}
	out := &Fig8Result{Series: make(map[string][]float64, len(algs)), Horizon: e.Provider.Horizon()}
	jobs := experiment.Matrix{Algorithms: algs, Rates: []float64{cfg.Rate}, Seeds: []int64{cfg.Seed}}.Jobs()
	results, err := e.runMatrix(jobs, func(_ int, j experiment.Job) (sim.RunConfig, error) {
		return e.RunConfig(j.Algorithm, e.WorkloadConfig(j.Rate, j.Seed))
	})
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	for _, r := range results {
		out.Series[r.Job.Algorithm.String()] = r.Res.CumulativeWelfareRatio
		e.logf("fig8 %-8s final cumulative welfare %.3f", r.Job.Algorithm, r.Res.WelfareRatio)
	}
	return out, nil
}

// Table renders Fig. 8 as welfare-ratio checkpoints at quarter marks of
// the horizon.
func (r *Fig8Result) Table() *metrics.Table {
	marks := []int{r.Horizon / 4, r.Horizon / 2, 3 * r.Horizon / 4, r.Horizon - 1}
	t := metrics.NewTable("Fig. 8 — cumulative social welfare ratio over time",
		"algorithm",
		fmt.Sprintf("t=%d", marks[0]),
		fmt.Sprintf("t=%d", marks[1]),
		fmt.Sprintf("t=%d", marks[2]),
		fmt.Sprintf("t=%d (final)", marks[3]))
	for _, name := range []string{"CEAR", "SSP", "ECARS", "ERU", "ERA"} {
		s, ok := r.Series[name]
		if !ok {
			continue
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", s[marks[0]]),
			fmt.Sprintf("%.3f", s[marks[1]]),
			fmt.Sprintf("%.3f", s[marks[2]]),
			fmt.Sprintf("%.3f", s[marks[3]]))
	}
	return t
}

// Fig9Config parameterises the Fig. 9 reproduction (CEAR only).
type Fig9Config struct {
	// Valuations sweeps ρ. The default mirrors the paper's
	// {0.1, 0.5, 1, 2.3, 5, 10}×1e9 as the same multiples of the
	// environment's default valuation (which IS 2.3e9 at ScaleFull).
	Valuations []float64
	// F2Values sweeps the energy conservativeness parameter
	// (default {0.5, 1, 2, 4, 8}).
	F2Values []float64
	Rate     float64
	Seeds    []int64
}

// Fig9Result holds the valuation and F2 sweeps of Fig. 9.
type Fig9Result struct {
	ValuationSweep []SweepPoint
	F2Sweep        []SweepPoint
}

// RunFig9 reproduces Fig. 9: CEAR's social welfare ratio under different
// request valuations and under different conservativeness parameters F2.
func (e *Environment) RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	if len(cfg.Valuations) == 0 {
		base := e.valuation
		for _, m := range []float64{0.1 / 2.3, 0.5 / 2.3, 1 / 2.3, 1, 5 / 2.3, 10 / 2.3} {
			cfg.Valuations = append(cfg.Valuations, m*base)
		}
	}
	if len(cfg.F2Values) == 0 {
		cfg.F2Values = []float64{0.5, 1, 2, 4, 8}
	}
	if cfg.Rate == 0 {
		cfg.Rate = e.arrivalRate
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds[:2]
	}

	// Both sweeps share one job list so the scheduler can overlap them.
	// The sweep value is not expressible as Job.Rate, so the builder
	// recovers it from the job index: valuation jobs come first, F2 jobs
	// after, each seed-minor like Matrix.Jobs.
	f2Params := make([]pricing.Params, len(cfg.F2Values))
	for i, f2 := range cfg.F2Values {
		params, err := pricing.Derive(1, f2, 20, 10)
		if err != nil {
			return nil, err
		}
		f2Params[i] = params
	}
	numValJobs := len(cfg.Valuations) * len(seeds)
	jobs := make([]experiment.Job, 0, numValJobs+len(cfg.F2Values)*len(seeds))
	for _, v := range cfg.Valuations {
		for _, seed := range seeds {
			jobs = append(jobs, experiment.Job{
				Algorithm: sim.AlgCEAR, Rate: cfg.Rate, Seed: seed,
				Key: fmt.Sprintf("valuation=%g", v),
			})
		}
	}
	for _, f2 := range cfg.F2Values {
		for _, seed := range seeds {
			jobs = append(jobs, experiment.Job{
				Algorithm: sim.AlgCEAR, Rate: cfg.Rate, Seed: seed,
				Key: fmt.Sprintf("F2=%g", f2),
			})
		}
	}
	results, err := e.runMatrix(jobs, func(i int, j experiment.Job) (sim.RunConfig, error) {
		wl := e.WorkloadConfig(j.Rate, j.Seed)
		if i < numValJobs {
			wl.Valuation = cfg.Valuations[i/len(seeds)]
		}
		rc, err := e.RunConfig(sim.AlgCEAR, wl)
		if err != nil {
			return sim.RunConfig{}, err
		}
		if i >= numValJobs {
			rc.Pricing = f2Params[(i-numValJobs)/len(seeds)]
		}
		return rc, nil
	})
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}

	out := &Fig9Result{}
	idx := 0
	for _, valuation := range cfg.Valuations {
		ratios := make([]float64, 0, len(seeds))
		for range seeds {
			ratios = append(ratios, results[idx].Res.WelfareRatio)
			idx++
		}
		mean, std := metrics.MeanStd(ratios)
		out.ValuationSweep = append(out.ValuationSweep, SweepPoint{X: valuation, Mean: mean, Std: std})
		e.logf("fig9 valuation %-8.3g welfare %.3f ± %.3f", valuation, mean, std)
	}
	for _, f2 := range cfg.F2Values {
		ratios := make([]float64, 0, len(seeds))
		for range seeds {
			ratios = append(ratios, results[idx].Res.WelfareRatio)
			idx++
		}
		mean, std := metrics.MeanStd(ratios)
		out.F2Sweep = append(out.F2Sweep, SweepPoint{X: f2, Mean: mean, Std: std})
		e.logf("fig9 F2 %-6.3g welfare %.3f ± %.3f", f2, mean, std)
	}
	return out, nil
}

// Tables renders the two sweeps of Fig. 9.
func (r *Fig9Result) Tables() (valuation, f2 *metrics.Table) {
	valuation = metrics.NewTable("Fig. 9 (left) — CEAR welfare ratio vs valuation",
		"valuation", "welfare", "std")
	for _, p := range r.ValuationSweep {
		valuation.AddFloatRow(metrics.FormatFloat(p.X), p.Mean, p.Std)
	}
	f2 = metrics.NewTable("Fig. 9 (right) — CEAR welfare ratio vs F2",
		"F2", "welfare", "std")
	for _, p := range r.F2Sweep {
		f2.AddFloatRow(metrics.FormatFloat(p.X), p.Mean, p.Std)
	}
	return valuation, f2
}

// AblationResult compares CEAR against its ablated variants.
type AblationResult struct {
	// Rows, keyed by variant name: welfare ratio, mean depleted, mean
	// congested, operator revenue.
	Rows map[string]AblationRow
}

// AblationRow is one variant's outcome.
type AblationRow struct {
	WelfareRatio  float64
	MeanDepleted  float64
	MeanCongested float64
	Revenue       float64
}

// RunAblations compares full CEAR with CEAR-NE (no energy pricing),
// CEAR-AA (no admission control) and CEAR-LIN (linear pricing) at the
// environment's default rate — the design-choice ablations called out in
// DESIGN.md.
func (e *Environment) RunAblations(seed int64) (*AblationResult, error) {
	if seed == 0 {
		seed = DefaultSeeds[0]
	}
	variants := []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgCEARNoEnergy, sim.AlgCEARNoAdmission, sim.AlgCEARLinear, sim.AlgCEARAdaptive}
	jobs := experiment.Matrix{Algorithms: variants, Rates: []float64{2 * e.arrivalRate}, Seeds: []int64{seed}}.Jobs()
	results, err := e.runMatrix(jobs, func(_ int, j experiment.Job) (sim.RunConfig, error) {
		return e.RunConfig(j.Algorithm, e.WorkloadConfig(j.Rate, j.Seed))
	})
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	out := &AblationResult{Rows: make(map[string]AblationRow, len(variants))}
	for _, r := range results {
		res := r.Res
		out.Rows[r.Job.Algorithm.String()] = AblationRow{
			WelfareRatio:  res.WelfareRatio,
			MeanDepleted:  res.MeanDepleted(),
			MeanCongested: res.MeanCongested(),
			Revenue:       res.Revenue,
		}
		e.logf("ablation %-9s welfare %.3f depleted %.2f congested %.2f",
			r.Job.Algorithm, res.WelfareRatio, res.MeanDepleted(), res.MeanCongested())
	}
	return out, nil
}

// Table renders the ablation comparison.
func (r *AblationResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablations — CEAR design choices (2× default load)",
		"variant", "welfare", "mean depleted", "mean congested", "revenue")
	for _, name := range []string{"CEAR", "CEAR-NE", "CEAR-AA", "CEAR-LIN", "CEAR-AD"} {
		row, ok := r.Rows[name]
		if !ok {
			continue
		}
		t.AddFloatRow(name, row.WelfareRatio, row.MeanDepleted, row.MeanCongested, row.Revenue)
	}
	return t
}

// CompetitiveResult reports the empirical competitive ratio of CEAR
// against the offline greedy estimate, plus a certified bandwidth-cut
// upper bound on OPT so the true ratio is bracketed.
type CompetitiveResult struct {
	OnlineWelfare    float64
	OfflineWelfare   float64
	UpperBound       float64
	EmpiricalRatio   float64
	WorstCaseRatio   float64 // UpperBound / OnlineWelfare
	TheoreticalBound float64
	OnlineAccepted   int
	OfflineAccepted  int
}

// RunCompetitive runs CEAR online and the offline greedy on the same
// workload and reports the welfare ratio between them, next to the
// theoretical bound 2·log2(μ1μ2)+1 of Theorem 1. Note the offline greedy
// under-estimates OPT, so the empirical ratio is an optimistic lower
// bound (see DESIGN.md substitution #4).
func (e *Environment) RunCompetitive(rate float64, seed int64) (*CompetitiveResult, error) {
	if rate == 0 {
		rate = 2 * e.arrivalRate
	}
	if seed == 0 {
		seed = DefaultSeeds[0]
	}
	wl := e.WorkloadConfig(rate, seed)
	rc, err := e.RunConfig(sim.AlgCEAR, wl)
	if err != nil {
		return nil, err
	}
	online, err := e.Run(rc)
	if err != nil {
		return nil, err
	}
	reqs, err := workload.Generate(wl)
	if err != nil {
		return nil, err
	}
	off, err := offline.Greedy(e.Provider, rc.Energy, reqs)
	if err != nil {
		return nil, err
	}
	ub, err := offline.CutUpperBound(e.Provider, reqs)
	if err != nil {
		return nil, err
	}
	res := &CompetitiveResult{
		OnlineWelfare:    online.AcceptedValuation,
		OfflineWelfare:   off.Welfare,
		UpperBound:       ub,
		TheoreticalBound: rc.Pricing.CompetitiveRatio(),
		OnlineAccepted:   online.Accepted,
		OfflineAccepted:  off.Accepted,
	}
	if online.AcceptedValuation > 0 {
		res.EmpiricalRatio = off.Welfare / online.AcceptedValuation
		res.WorstCaseRatio = ub / online.AcceptedValuation
	}
	e.logf("competitive: online %d accepted, offline %d, ratio %.3f (<= %.3f certified, bound %.1f)",
		res.OnlineAccepted, res.OfflineAccepted, res.EmpiricalRatio, res.WorstCaseRatio, res.TheoreticalBound)
	return res, nil
}

// Table renders the competitive-ratio comparison.
func (r *CompetitiveResult) Table() *metrics.Table {
	t := metrics.NewTable("Empirical competitive ratio (offline greedy estimate vs CEAR)",
		"metric", "value")
	t.AddRow("online accepted", fmt.Sprintf("%d", r.OnlineAccepted))
	t.AddRow("offline accepted", fmt.Sprintf("%d", r.OfflineAccepted))
	t.AddFloatRow("online welfare", r.OnlineWelfare)
	t.AddFloatRow("offline welfare (greedy est.)", r.OfflineWelfare)
	t.AddFloatRow("certified OPT upper bound", r.UpperBound)
	t.AddFloatRow("empirical ratio (vs greedy)", r.EmpiricalRatio)
	t.AddFloatRow("worst-case ratio (vs UB)", r.WorstCaseRatio)
	t.AddFloatRow("theoretical bound (Thm. 1)", r.TheoreticalBound)
	return t
}

// AdaptiveResult compares static CEAR with the §V-B adaptive controller
// under a strongly time-varying (diurnal) load.
type AdaptiveResult struct {
	StaticWelfare    float64
	AdaptiveWelfare  float64
	StaticDepleted   float64
	AdaptiveDepleted float64
}

// RunAdaptiveComparison runs CEAR and CEAR-AD on the same diurnal
// workload (sinusoidal arrival modulation, ±80% around 2× the default
// rate) — the scenario §V-B's dynamic F1/F2 adjustment targets.
func (e *Environment) RunAdaptiveComparison(seed int64) (*AdaptiveResult, error) {
	if seed == 0 {
		seed = DefaultSeeds[0]
	}
	profile, err := workload.DiurnalProfile(e.Provider.Horizon()/2, 0.8)
	if err != nil {
		return nil, err
	}
	jobs := experiment.Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgCEARAdaptive},
		Rates:      []float64{2 * e.arrivalRate},
		Seeds:      []int64{seed},
	}.Jobs()
	results, err := e.runMatrix(jobs, func(_ int, j experiment.Job) (sim.RunConfig, error) {
		wl := e.WorkloadConfig(j.Rate, j.Seed)
		wl.RateProfile = profile
		return e.RunConfig(j.Algorithm, wl)
	})
	if err != nil {
		return nil, fmt.Errorf("adaptive comparison: %w", err)
	}
	static, adaptiveRes := results[0].Res, results[1].Res
	out := &AdaptiveResult{
		StaticWelfare:    static.WelfareRatio,
		AdaptiveWelfare:  adaptiveRes.WelfareRatio,
		StaticDepleted:   static.MeanDepleted(),
		AdaptiveDepleted: adaptiveRes.MeanDepleted(),
	}
	e.logf("adaptive: static %.3f vs adaptive %.3f welfare", out.StaticWelfare, out.AdaptiveWelfare)
	return out, nil
}

// Table renders the adaptive comparison.
func (r *AdaptiveResult) Table() *metrics.Table {
	t := metrics.NewTable("Adaptive parameter setting (§V-B) under diurnal load",
		"variant", "welfare", "mean depleted")
	t.AddFloatRow("CEAR (static F)", r.StaticWelfare, r.StaticDepleted)
	t.AddFloatRow("CEAR-AD (adaptive F)", r.AdaptiveWelfare, r.AdaptiveDepleted)
	return t
}
