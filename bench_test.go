package spacebooking

// The benchmark harness regenerates every figure of the paper's
// evaluation section (§VI). Each BenchmarkFigN runs the corresponding
// experiment and prints the reproduced rows/series once. The default
// scale is "small" so `go test -bench=.` finishes in minutes; run the
// paper-scale experiments with
//
//	go test -bench=. -benchtime=1x -timeout=0 -spacebench.scale=full
//
// or via `go run ./cmd/spacebench -scale full <figure>`.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var benchScale = flag.String("spacebench.scale", "small",
	"experiment scale for the figure benchmarks: small, medium or full")

var (
	benchEnvOnce sync.Once
	benchEnv     *Environment
	benchEnvErr  error
)

func benchEnvironment(b *testing.B) *Environment {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale, err := ParseScale(*benchScale)
		if err != nil {
			benchEnvErr = err
			return
		}
		benchEnv, benchEnvErr = NewEnvironment(EnvConfig{Scale: scale})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// printOnce guards the one-time table output of each figure bench.
var printOnce sync.Map

func printFigure(name string, render func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n==== %s ====\n", name)
		render()
	}
}

// BenchmarkFig6 regenerates Fig. 6: social welfare ratio per algorithm
// under the default setting and the arrival-rate sweep.
func BenchmarkFig6(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig6(Fig6Config{})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 6", func() {
			if err := res.Table().Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig7Energy regenerates the left subplot of Fig. 7:
// energy-depleted satellites over time at the default rate.
func BenchmarkFig7Energy(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig7(Fig7Config{CongestionRate: env.DefaultArrivalRate()})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 7 (left)", func() {
			dep, _ := res.Tables()
			if err := dep.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig7Congestion regenerates the right subplot of Fig. 7:
// congested links over time at 2.5x the default rate.
func BenchmarkFig7Congestion(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig7(Fig7Config{EnergyRate: env.DefaultArrivalRate()})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 7 (right)", func() {
			_, cong := res.Tables()
			if err := cong.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig8 regenerates Fig. 8: cumulative social welfare ratio over
// time per algorithm.
func BenchmarkFig8(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig8(Fig8Config{})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 8", func() {
			if err := res.Table().Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig9Valuation regenerates the left subplot of Fig. 9: CEAR's
// welfare ratio across request valuations.
func BenchmarkFig9Valuation(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig9(Fig9Config{F2Values: []float64{1}})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 9 (left)", func() {
			valT, _ := res.Tables()
			if err := valT.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig9F2 regenerates the right subplot of Fig. 9: CEAR's welfare
// ratio across the conservativeness parameter F2.
func BenchmarkFig9F2(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunFig9(Fig9Config{Valuations: []float64{env.DefaultValuation()}})
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Fig. 9 (right)", func() {
			_, f2T := res.Tables()
			if err := f2T.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblations runs the CEAR design-choice ablations (exponential
// vs linear pricing, energy pricing, admission control).
func BenchmarkAblations(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunAblations(DefaultSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Ablations", func() {
			if err := res.Table().Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCompetitive compares CEAR's online welfare against the
// offline greedy estimate and Theorem 1's bound.
func BenchmarkCompetitive(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunCompetitive(0, DefaultSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Competitive ratio", func() {
			if err := res.Table().Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Micro-benchmarks on the hot paths -------------------------------

// benchCEARHandle drives full simulation runs with the given search
// configuration; the per-iteration numbers are dominated by per-request
// Handle work once the provider is warm. hotspotK > 0 turns on the
// per-entity attribution layer (with the obs registry it requires).
func benchCEARHandle(b *testing.B, generic, prune bool, hotspotK int) {
	b.Helper()
	env := benchEnvironment(b)
	rc, err := env.RunConfig(sim.AlgCEAR, env.WorkloadConfig(env.DefaultArrivalRate(), 1))
	if err != nil {
		b.Fatal(err)
	}
	rc.GenericSearch = generic
	rc.PruneBudget = prune
	if hotspotK > 0 {
		rc.Obs = obs.New()
		rc.HotspotK = hotspotK
	}
	if !generic {
		// Mirror the experiment scheduler: one pooled scratch serves
		// every run on this goroutine.
		rc.Scratch = netstate.NewSearchScratch()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Run(rc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCEARHandle measures the per-request cost of Algorithm 1 on a
// warm network, using the production configuration: the flat CSR fast
// path with a reused search scratch.
func BenchmarkCEARHandle(b *testing.B) { benchCEARHandle(b, false, false, 0) }

// BenchmarkCEARHandleGeneric is the reference-path twin of
// BenchmarkCEARHandle: Adjacency-interface views and the generic graph
// searches. The gap between the two is the fast path's win.
func BenchmarkCEARHandleGeneric(b *testing.B) { benchCEARHandle(b, true, false, 0) }

// BenchmarkCEARHandlePruned adds budget pruning on top of the fast path:
// searches abandon plans that already exceed the request's valuation.
func BenchmarkCEARHandlePruned(b *testing.B) { benchCEARHandle(b, false, true, 0) }

// BenchmarkCEARHandleHotspots layers top-32 per-entity attribution onto
// the production fast path: blame capture per rejection, commit-time
// level observation per accept. Its gap over BenchmarkCEARHandle is the
// full cost of hot-spot tracking.
func BenchmarkCEARHandleHotspots(b *testing.B) { benchCEARHandle(b, false, false, 32) }

// BenchmarkViewDijkstra measures one min-price path search over the
// generic LSN view, the innermost loop of every algorithm on the
// reference path.
func BenchmarkViewDijkstra(b *testing.B) {
	env := benchEnvironment(b)
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		b.Fatal(err)
	}
	pair := env.Pairs[0]
	slot := findBenchSlot(b, env, pair)
	unit := func(netstate.LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 }
	view, err := netstate.NewView(state, slot, pair.Src, pair.Dst, 1000, unit)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := graph.ShortestPath(view, view.SrcNode(), view.DstNode(), nil); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkFlatViewSearch is the fast-path twin of BenchmarkViewDijkstra,
// including the per-slot view build (stamping the destination visibility
// table) that production pays on every slot of every request.
func BenchmarkFlatViewSearch(b *testing.B) {
	env := benchEnvironment(b)
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		b.Fatal(err)
	}
	pair := env.Pairs[0]
	slot := findBenchSlot(b, env, pair)
	unit := func(netstate.LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 }
	sc := netstate.NewSearchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view, err := sc.BuildView(state, slot, pair.Src, pair.Dst, 1000, unit)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok, _ := view.Search(nil, 0, 0, math.Inf(1)); !ok {
			b.Fatal("no path")
		}
	}
}

func findBenchSlot(b *testing.B, env *Environment, pair workload.Pair) int {
	b.Helper()
	for slot := 0; slot < env.Provider.Horizon(); slot++ {
		sv, err := env.Provider.VisibleSats(pair.Src, slot)
		if err != nil {
			b.Fatal(err)
		}
		dv, err := env.Provider.VisibleSats(pair.Dst, slot)
		if err != nil {
			b.Fatal(err)
		}
		if len(sv) > 0 && len(dv) > 0 {
			return slot
		}
	}
	b.Skip("no routable slot")
	return -1
}

// BenchmarkDeficitVisit measures the deficit-profile walk used in energy
// pricing.
func BenchmarkDeficitVisit(b *testing.B) {
	env := benchEnvironment(b)
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		b.Fatal(err)
	}
	bat := state.Battery(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		bat.VisitDeficit(0, 50000, func(t int, out float64) bool {
			total += out
			return true
		})
		_ = total
	}
}

// BenchmarkProviderConstruction measures topology propagation (per-slot
// positions, eclipse flags, +Grid) at small scale.
func BenchmarkProviderConstruction(b *testing.B) {
	cfg := topology.DefaultConfig(DefaultEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 96
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.NewProvider(cfg, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveDiurnal compares static CEAR with the §V-B adaptive
// controller under a diurnal load profile.
func BenchmarkAdaptiveDiurnal(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.RunAdaptiveComparison(DefaultSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Adaptive (diurnal)", func() {
			if err := res.Table().Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}
