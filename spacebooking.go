// Package spacebooking is the public entry point of the Space Booking /
// CEAR reproduction: a complete Go implementation of the paper
// "Space Booking: Enabling Performance-Critical Applications in Broadband
// Satellite Networks" (ICDCS 2025).
//
// The package wires the simulation substrates (orbital mechanics, dynamic
// topology, energy ledgers, workload generation) into ready-to-run
// experiment environments, and exposes one runner per figure of the
// paper's evaluation section. Typical use:
//
//	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: spacebooking.ScaleSmall})
//	...
//	fig6, err := env.RunFig6(spacebooking.Fig6Config{})
//	fig6.Table().Render(os.Stdout)
package spacebooking

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"spacebooking/internal/experiment"
	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/orbit"
	"spacebooking/internal/pricing"
	"spacebooking/internal/scenario"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// Scale selects the size of the simulated system. The paper's evaluation
// runs at ScaleFull; the smaller presets preserve the experiment shape at
// a fraction of the cost and are the default for `go test -bench`.
type Scale int

const (
	// ScaleSmall is an 8×12 shell (96 satellites) over 96 minutes.
	ScaleSmall Scale = iota + 1
	// ScaleMedium is a 12×24 shell (288 satellites) over 192 minutes.
	ScaleMedium
	// ScaleFull is Starlink Shell I (22×72 = 1584 satellites) over
	// 384 minutes with 1761 GDP-filtered ground sites and a 223-satellite
	// EO fleet — the paper's §VI-A setting.
	ScaleFull
)

// String returns the scale's name.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a name ("small", "medium", "full") into a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("spacebooking: unknown scale %q (want small, medium or full)", name)
	}
}

// EnvConfig configures an experiment environment.
type EnvConfig struct {
	// Scale selects the constellation/site preset. Required.
	Scale Scale
	// Epoch is the simulation start time; a fixed default keeps runs
	// reproducible when zero.
	Epoch time.Time
	// NumPairs is the number of source-destination pairs (paper: 10).
	// Zero picks the scale default.
	NumPairs int
	// PairSeed drives the random pair selection.
	PairSeed int64
	// IncludeEOFleet adds the 223-satellite synthetic EO fleet (always
	// on at ScaleFull; optional below to keep small runs fast).
	IncludeEOFleet bool
	// DefaultArrivalRate overrides the scale's default requests/minute
	// when positive.
	DefaultArrivalRate float64
}

// Environment is a reusable experiment setup: the expensive topology
// propagation is done once and shared by every run and figure.
type Environment struct {
	Provider *topology.Provider
	Sites    []grid.Site
	EOFleet  []orbit.Satellite
	Pairs    []workload.Pair

	scale       Scale
	arrivalRate float64
	valuation   float64
	// Logf, when non-nil, receives progress lines from the long runners.
	Logf func(format string, args ...interface{})
	// Obs enables observability. When non-nil, every run launched
	// through a figure runner gets its *own* fresh registry (so parallel
	// runs never share counters); a single Run with a nil RunConfig.Obs
	// inherits this registry directly. Use LastObs to retrieve the
	// registry of the most recent run in matrix order.
	Obs *obs.Registry
	// Parallelism bounds how many simulation runs the figure runners
	// execute concurrently; <= 0 means GOMAXPROCS. Per-cell results are
	// identical to a sequential sweep — each run owns its State, RNG and
	// registry, and the shared Provider's visibility tables are frozen
	// for the request pairs at construction time.
	Parallelism int
	// ObsSink, when non-nil, receives each completed run's registry (in
	// completion order, serialised). spacebench uses it to repoint the
	// live debug server at the freshest run.
	ObsSink func(*obs.Registry)
	// ResetObsPerRun is retired and ignored.
	//
	// Deprecated: figure runners now give every run its own registry, so
	// snapshots never accumulate across runs; use LastObs for the
	// last-run view the reset used to provide.
	ResetObsPerRun bool

	lastObsMu sync.Mutex
	lastObs   *obs.Registry
}

// DefaultEpoch is the fixed simulation start used when EnvConfig.Epoch
// is zero.
var DefaultEpoch = time.Date(2026, time.March, 20, 12, 0, 0, 0, time.UTC)

// PaperLiteralValuation is the paper's §VI-A valuation constant, in the
// paper's (unspecified) cost units. In this implementation's cost units
// it sits near the 95th percentile of the full-scale plan-price
// distribution, where admission control barely binds; the scale presets
// therefore default to a calibrated operating point instead (see
// EXPERIMENTS.md, Fig. 6 section).
const PaperLiteralValuation = 2.3e9

// scalePreset holds the per-scale defaults.
type scaleDefaults struct {
	topo      topology.Config
	sites     int
	pairs     int
	rate      float64
	valuation float64
}

// scalePreset returns the topology config and workload defaults of a
// scale. The default valuation is the admission operating point: at
// ScaleFull it is the paper's 2.3e9; the reduced scales use values
// calibrated (see EXPERIMENTS.md) so that CEAR's plan-price distribution
// crosses the valuation at the same relative point it does in the
// paper's Fig. 9 — without that calibration the admission control never
// binds and CEAR degenerates to pricing-only routing.
func scalePreset(s Scale, epoch time.Time) (scaleDefaults, error) {
	cfg := topology.DefaultConfig(epoch)
	switch s {
	case ScaleSmall:
		cfg.Walker.Planes = 8
		cfg.Walker.SatsPerPlane = 12
		cfg.Walker.PhasingF = 3
		cfg.Horizon = 96
		// A 96-satellite shell cannot sustain the paper's 25° elevation
		// mask; 10° restores near-continuous coverage so that resource
		// contention — not visibility gaps — differentiates algorithms.
		cfg.MinElevationDeg = 10
		return scaleDefaults{topo: cfg, sites: 60, pairs: 4, rate: 2, valuation: 1e8}, nil
	case ScaleMedium:
		cfg.Walker.Planes = 12
		cfg.Walker.SatsPerPlane = 24
		cfg.Walker.PhasingF = 5
		cfg.Horizon = 192
		cfg.MinElevationDeg = 15
		return scaleDefaults{topo: cfg, sites: 200, pairs: 6, rate: 4, valuation: 1e8}, nil
	case ScaleFull:
		// Starlink Shell I with the paper's horizon and constants. The
		// default valuation is the calibrated operating point (the
		// paper's ρ=2.3e9 *in its own cost units* corresponds to ~3e8 in
		// ours by price-distribution matching — see EXPERIMENTS.md; use
		// PaperLiteralValuation to reproduce the literal constant).
		return scaleDefaults{topo: cfg, sites: 1761, pairs: 10, rate: 10, valuation: 3e8}, nil
	default:
		return scaleDefaults{}, fmt.Errorf("spacebooking: invalid scale %d", int(s))
	}
}

// NewEnvironment builds the environment: constellation propagation,
// ground-site selection (GDP-filtered triangular tiling), optional EO
// fleet, and request pair selection.
func NewEnvironment(cfg EnvConfig) (*Environment, error) {
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = DefaultEpoch
	}
	defaults, err := scalePreset(cfg.Scale, epoch)
	if err != nil {
		return nil, err
	}
	topoCfg := defaults.topo

	subdivisions := 4
	if cfg.Scale == ScaleFull {
		subdivisions = 5
	}
	allSites, err := grid.TriangularSites(subdivisions)
	if err != nil {
		return nil, err
	}
	sites, err := grid.FilterByGDP(allSites, defaults.sites)
	if err != nil {
		return nil, err
	}

	var eo []orbit.Satellite
	if cfg.IncludeEOFleet || cfg.Scale == ScaleFull {
		eo, err = orbit.SyntheticEOFleet(orbit.DefaultEOFleetConfig(epoch))
		if err != nil {
			return nil, err
		}
	}

	prov, err := topology.NewProvider(topoCfg, sites, eo)
	if err != nil {
		return nil, err
	}

	numPairs := cfg.NumPairs
	if numPairs == 0 {
		numPairs = defaults.pairs
	}
	pairs, err := selectCoveredPairs(prov, sites, numPairs, cfg.PairSeed)
	if err != nil {
		return nil, err
	}

	// Freeze the visibility tables of every request endpoint: the hot
	// path (NewView, twice per request per slot) then reads precomputed
	// slices with no locking, which is what makes parallel runs over the
	// shared provider scale. Non-pair endpoints keep the lazy memoised
	// path — freezing all 1761 sites at ScaleFull would cost far more
	// than any figure ever queries.
	seenEp := make(map[topology.Endpoint]bool, 2*len(pairs))
	eps := make([]topology.Endpoint, 0, 2*len(pairs))
	for _, p := range pairs {
		for _, ep := range []topology.Endpoint{p.Src, p.Dst} {
			if !seenEp[ep] {
				seenEp[ep] = true
				eps = append(eps, ep)
			}
		}
	}
	if err := prov.Freeze(0, eps...); err != nil {
		return nil, err
	}

	rate := defaults.rate
	if cfg.DefaultArrivalRate > 0 {
		rate = cfg.DefaultArrivalRate
	}
	return &Environment{
		Provider:    prov,
		Sites:       sites,
		EOFleet:     eo,
		Pairs:       pairs,
		scale:       cfg.Scale,
		arrivalRate: rate,
		valuation:   defaults.valuation,
	}, nil
}

// Scale returns the environment's scale preset.
func (e *Environment) Scale() Scale { return e.scale }

// DefaultArrivalRate returns the environment's default requests/minute.
func (e *Environment) DefaultArrivalRate() float64 { return e.arrivalRate }

// DefaultValuation returns the environment's default request valuation —
// the admission operating point (2.3e9 at ScaleFull, per the paper).
func (e *Environment) DefaultValuation() float64 { return e.valuation }

// logf forwards to Logf when set.
func (e *Environment) logf(format string, args ...interface{}) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// selectCoveredPairs picks distinct ground pairs among sites that the
// inclined shell actually covers (|lat| within the inclination minus a
// margin), so that requests are not dead on arrival for every algorithm.
func selectCoveredPairs(prov *topology.Provider, sites []grid.Site, count int, seed int64) ([]workload.Pair, error) {
	maxLat := prov.Config().Walker.InclinationDeg - 1
	var covered []int
	for i, s := range sites {
		if math.Abs(s.LatDeg) <= maxLat {
			covered = append(covered, i)
		}
	}
	if len(covered) < 2 {
		return nil, fmt.Errorf("spacebooking: only %d sites covered by the shell", len(covered))
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool, count)
	pairs := make([]workload.Pair, 0, count)
	for attempts := 0; len(pairs) < count; attempts++ {
		if attempts > 1000*count {
			return nil, fmt.Errorf("spacebooking: could not find %d distinct covered pairs", count)
		}
		a := covered[rng.Intn(len(covered))]
		b := covered[rng.Intn(len(covered))]
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		pairs = append(pairs, workload.Pair{
			Src: topology.Endpoint{Kind: topology.EndpointGround, Index: a},
			Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: b},
		})
	}
	return pairs, nil
}

// WorkloadConfig builds the paper's workload over this environment's
// pairs with the given arrival rate and seed.
func (e *Environment) WorkloadConfig(ratePerMin float64, seed int64) workload.Config {
	cfg := workload.DefaultConfig(e.Provider.Horizon(), e.Pairs, seed)
	cfg.ArrivalRatePerSlot = ratePerMin
	cfg.Valuation = e.valuation
	return cfg
}

// RunConfig assembles a sim.RunConfig with the paper's defaults for the
// given algorithm and workload.
func (e *Environment) RunConfig(alg sim.AlgorithmKind, wl workload.Config) (sim.RunConfig, error) {
	return sim.DefaultRunConfig(alg, wl)
}

// Run executes a single simulation run. When the environment carries an
// observability registry and the config does not, the run inherits it.
func (e *Environment) Run(rc sim.RunConfig) (*sim.Result, error) {
	return e.RunContext(context.Background(), rc)
}

// RunContext is Run with cooperative cancellation: the admission loop
// stops between requests as soon as ctx is cancelled (see
// sim.RunContext).
func (e *Environment) RunContext(ctx context.Context, rc sim.RunConfig) (*sim.Result, error) {
	if rc.Obs == nil {
		rc.Obs = e.Obs
	}
	res, err := sim.RunContext(ctx, e.Provider, rc)
	if err == nil && rc.Obs != nil {
		e.setLastObs(rc.Obs)
	}
	return res, err
}

// LastObs returns the registry of the most recent successful run — for
// matrix runners, the last observed run in matrix order. Nil until an
// observed run completes.
func (e *Environment) LastObs() *obs.Registry {
	e.lastObsMu.Lock()
	defer e.lastObsMu.Unlock()
	return e.lastObs
}

func (e *Environment) setLastObs(reg *obs.Registry) {
	e.lastObsMu.Lock()
	e.lastObs = reg
	e.lastObsMu.Unlock()
}

// runMatrix fans the jobs over the experiment scheduler with the
// environment's parallelism and observability settings, returning
// results in matrix order. Each observed job gets its own registry.
func (e *Environment) runMatrix(jobs []experiment.Job, build func(i int, j experiment.Job) (sim.RunConfig, error)) ([]experiment.Result, error) {
	results, err := experiment.Run(e.Provider, jobs, experiment.Config{
		Parallelism:  e.Parallelism,
		Observe:      e.Obs != nil,
		NewRunConfig: build,
		OnResult: func(r experiment.Result) {
			if r.Err == nil && r.Obs != nil && e.ObsSink != nil {
				e.ObsSink(r.Obs)
			}
		},
	})
	for i := len(results) - 1; i >= 0; i-- {
		if results[i].Err == nil && results[i].Obs != nil {
			e.setLastObs(results[i].Obs)
			break
		}
	}
	return results, err
}

// ScenarioBinding grounds scenario specs in this environment: its
// horizon, its request pairs, the GDP-filtered site table (for
// solar-phased diurnals and regional outages), and its calibrated
// valuation as the per-class default.
func (e *Environment) ScenarioBinding() scenario.Binding {
	return scenario.Binding{
		Horizon:          e.Provider.Horizon(),
		Pairs:            e.Pairs,
		Sites:            e.Sites,
		DefaultValuation: e.valuation,
	}
}

// PaperPricing returns the paper's pricing parameters (n=20, 𝕋=10,
// F1=F2=1 ⇒ μ1=μ2=402).
func PaperPricing() (pricing.Params, error) {
	return pricing.Derive(1, 1, 20, 10)
}

// PaperEnergyConfig returns the paper's power-model constants.
func PaperEnergyConfig() netstate.EnergyConfig {
	return netstate.DefaultEnergyConfig()
}
