package spacebooking_test

import (
	"fmt"

	"spacebooking"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/workload"
)

// Build a small environment, create CEAR over a fresh resource state,
// and submit one reserved-bandwidth request — the library's core loop.
func Example() {
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: spacebooking.ScaleSmall})
	if err != nil {
		panic(err)
	}
	state, err := netstate.New(env.Provider, spacebooking.PaperEnergyConfig(), false)
	if err != nil {
		panic(err)
	}
	params, err := spacebooking.PaperPricing()
	if err != nil {
		panic(err)
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		panic(err)
	}

	decision, err := cear.Handle(workload.Request{
		ID:  1,
		Src: env.Pairs[0].Src, Dst: env.Pairs[0].Dst,
		StartSlot: 10, EndSlot: 14,
		RateMbps:  1250,
		Valuation: env.DefaultValuation(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("satellites: %d, horizon: %d min\n", env.Provider.NumSats(), env.Provider.Horizon())
	fmt.Printf("accepted: %v, slot paths: %d\n", decision.Accepted, len(decision.Plan.Paths))
	// Output:
	// satellites: 96, horizon: 96 min
	// accepted: true, slot paths: 5
}
