# Development targets. `make check` is the pre-PR gate: vet, build,
# race-enabled unit tests, and a one-iteration benchmark smoke pass.

GO ?= go

.PHONY: check build test vet race bench-smoke

check: vet build race bench-smoke
	@echo "check: all gates passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
