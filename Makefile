# Development targets. `make check` is the pre-PR gate: vet, build,
# race-enabled unit tests, and a one-iteration benchmark smoke pass.

GO ?= go

.PHONY: check check-race build test vet race bench-smoke obsdiff-smoke

check: vet build race bench-smoke
	@echo "check: all gates passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Full-module race gate, including the root-package integration tests
# (parallel figure runners over the shared provider).
check-race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Produce a tiny-run report and diff it against itself: exercises the
# report pipeline end to end and must exit 0 (the CI smoke for the
# obsdiff perf gate).
obsdiff-smoke:
	$(GO) run ./cmd/cearsim -scale small -report /tmp/obsdiff-smoke.json >/dev/null
	$(GO) run ./cmd/obsdiff /tmp/obsdiff-smoke.json /tmp/obsdiff-smoke.json
	@rm -f /tmp/obsdiff-smoke.json
