# Development targets. `make check` is the pre-PR gate: vet, build,
# race-enabled unit tests, and a one-iteration benchmark smoke pass.

GO ?= go

.PHONY: check check-race build test vet fmt-check race bench bench-smoke obsdiff-smoke smoke-spaced trace-smoke scenario-smoke

check: fmt-check vet build race bench-smoke
	@echo "check: all gates passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Full-module race gate, including the root-package integration tests
# (parallel figure runners over the shared provider) and the
# internal/cluster seeded multi-shard closed-loop run (concurrent shard
# loops coordinating two-phase commits under the race detector).
check-race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full fast-path benchmark suite plus the serving-layer closed-loop
# measurements (baseline, traced, hot-spot tracked, and the -shards
# {1,2,4,8} scaling sweep); writes BENCH_8.json (see EXPERIMENTS.md for
# the schema and scripts/bench.sh for knobs).
bench:
	./scripts/bench.sh

# End-to-end serving smoke: build spaced + spaceload, run a short burst
# against a live daemon, assert accepts, probe the hot-spot telemetry
# endpoints, and require a clean SIGTERM drain; then repeat against a
# two-shard cluster (stats shard section, cross-shard bookings, the
# cluster.* report counters).
smoke-spaced:
	./scripts/smoke_spaced.sh

# End-to-end scenario smoke: validate the checked-in example specs,
# record a spec-driven cearsim run, replay it, assert the two traces
# are byte-identical, then run the Erlang-B analytical twin (must
# PASS within tolerance).
scenario-smoke:
	./scripts/scenario_smoke.sh

# End-to-end tracing smoke: boot spaced with -trace-sample 1 and an
# audit log, fire spaceload, assert /debug/traces.json answers with
# records, the drained audit log is valid JSONL (auditstat), and the
# report's server.trace.* counters are live (obsdiff gates).
trace-smoke:
	./scripts/trace_smoke.sh

# Produce a tiny-run report and diff it against itself: exercises the
# report pipeline end to end and must exit 0 (the CI smoke for the
# obsdiff perf gate). Also gates the routing fast path: the report must
# carry the fast-path counters, and the searches/reuses counts must be
# live (a zero means a regression silently fell back to the generic
# path or stopped reusing the scratch).
obsdiff-smoke:
	$(GO) run ./cmd/cearsim -scale small -report /tmp/obsdiff-smoke.json >/dev/null
	$(GO) run ./cmd/obsdiff /tmp/obsdiff-smoke.json /tmp/obsdiff-smoke.json
	@grep -q '"graph.fastpath.pruned_labels"' /tmp/obsdiff-smoke.json || \
		{ echo "obsdiff-smoke: graph.fastpath.pruned_labels missing from run report"; exit 1; }
	@grep -Eq '"graph.fastpath.searches": *[1-9]' /tmp/obsdiff-smoke.json || \
		{ echo "obsdiff-smoke: graph.fastpath.searches is zero or missing — fast path not live"; exit 1; }
	@grep -Eq '"netstate.scratch.reuses": *[1-9]' /tmp/obsdiff-smoke.json || \
		{ echo "obsdiff-smoke: netstate.scratch.reuses is zero or missing — scratch not reused"; exit 1; }
	@rm -f /tmp/obsdiff-smoke.json
