// Disaster monitoring: the paper's motivating Earth-observation
// scenario (Fig. 1). A wildfire-monitoring EO satellite must downlink
// imagery to a ground analytics centre in near-real time, relayed
// through the broadband LSN. The example books reserved capacity for
// repeated downlink windows as the EO satellite orbits, and shows how
// CEAR's pricing steers each window onto healthy relays.
package main

import (
	"fmt"
	"log"

	"spacebooking"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Include the synthetic sun-synchronous EO fleet (the stand-in for
	// Planet Labs' 223 imaging satellites).
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{
		Scale:          spacebooking.ScaleSmall,
		IncludeEOFleet: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("LSN: %d broadband satellites; EO fleet: %d imaging satellites\n",
		env.Provider.NumSats(), len(env.EOFleet))

	state, err := netstate.New(env.Provider, spacebooking.PaperEnergyConfig(), false)
	if err != nil {
		return err
	}
	params, err := spacebooking.PaperPricing()
	if err != nil {
		return err
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		return err
	}

	// The wildfire team's analytics centre is the highest-GDP covered
	// site; the imaging satellite is EO-7.
	groundIdx := 0
	eoIdx := 7
	eo := topology.Endpoint{Kind: topology.EndpointSpace, Index: eoIdx}
	ground := topology.Endpoint{Kind: topology.EndpointGround, Index: groundIdx}
	fmt.Printf("downlink: %s -> analytics centre at (%.1f, %.1f)\n\n",
		env.EOFleet[eoIdx].Name, env.Sites[groundIdx].LatDeg, env.Sites[groundIdx].LonDeg)

	// Contact windows: maximal runs of slots where the EO satellite can
	// reach the LSN at all. Imagery downlinks are booked at the start of
	// each window.
	windows, err := env.Provider.ContactWindows(eo)
	if err != nil {
		return err
	}
	coverage, err := env.Provider.CoverageFraction(eo)
	if err != nil {
		return err
	}
	fmt.Printf("EO satellite has %d contact windows covering %.0f%% of the horizon\n",
		len(windows), 100*coverage)
	if len(windows) == 0 {
		fmt.Println("no contact windows in this horizon; try a longer run")
		return nil
	}

	accepted, rejected := 0, 0
	booked := 0
	for _, w := range windows {
		if booked >= 12 {
			break
		}
		start := w.StartSlot
		// A 500 Mbps imagery dump for up to 3 minutes (truncated to the
		// contact window if it closes earlier).
		end := start + 2
		if end > w.EndSlot {
			end = w.EndSlot
		}
		req := workload.Request{
			ID:        booked,
			Src:       eo,
			Dst:       ground,
			StartSlot: start,
			EndSlot:   end,
			RateMbps:  500,
			Valuation: 2.3e9,
		}
		booked++
		d, err := cear.Handle(req)
		if err != nil {
			return err
		}
		if d.Accepted {
			accepted++
			hops := d.Plan.Paths[0].Path.Hops()
			fmt.Printf("window t=%3d..%3d: BOOKED  price %10.4g, first-slot path %d hops\n",
				start, end, d.Price, hops)
		} else {
			rejected++
			fmt.Printf("window t=%3d..%3d: DENIED  %s\n", start, end, d.Reason)
		}
	}

	fmt.Printf("\n%d windows booked, %d denied\n", accepted, rejected)
	fmt.Printf("relay batteries below 20%% at final slot: %d\n",
		state.DepletedSatCount(env.Provider.Horizon()-1, 0.2))
	return nil
}
