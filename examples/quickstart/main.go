// Quickstart: build a small LSN environment, submit a handful of
// reserved-bandwidth requests through CEAR, and inspect the decisions —
// the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"spacebooking"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the environment: a small Walker shell (96 satellites),
	// GDP-filtered ground sites, and the per-slot dynamic topology.
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: spacebooking.ScaleSmall})
	if err != nil {
		return err
	}
	fmt.Printf("constellation: %d satellites, horizon %d minutes, %d candidate sites\n",
		env.Provider.NumSats(), env.Provider.Horizon(), len(env.Sites))

	// 2. Create the resource state (link ledgers + per-satellite battery
	// ledgers with solar input from the eclipse model) and the CEAR
	// algorithm with the paper's pricing parameters (μ1 = μ2 = 402).
	state, err := netstate.New(env.Provider, spacebooking.PaperEnergyConfig(), false)
	if err != nil {
		return err
	}
	params, err := spacebooking.PaperPricing()
	if err != nil {
		return err
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		return err
	}
	fmt.Printf("CEAR ready: competitive ratio bound %.1f\n\n", params.CompetitiveRatio())

	// 3. Submit online requests between the environment's first
	// source-destination pair and watch the pricing respond to load.
	pair := env.Pairs[0]
	src := env.Sites[pair.Src.Index]
	dst := env.Sites[pair.Dst.Index]
	fmt.Printf("requesting reserved 1.25 Gbps sessions from (%.1f, %.1f) to (%.1f, %.1f):\n\n",
		src.LatDeg, src.LonDeg, dst.LatDeg, dst.LonDeg)

	for i := 0; i < 8; i++ {
		req := workload.Request{
			ID:        i,
			Src:       pair.Src,
			Dst:       pair.Dst,
			StartSlot: 10,
			EndSlot:   14, // five reserved minutes
			RateMbps:  1250,
			Valuation: 2.3e9,
		}
		decision, err := cear.Handle(req)
		if err != nil {
			return err
		}
		if decision.Accepted {
			fmt.Printf("request %d: ACCEPTED  price %12.4g  (%d slot-paths, %d total hops)\n",
				i, decision.Price, len(decision.Plan.Paths), decision.Plan.TotalHops())
		} else {
			fmt.Printf("request %d: REJECTED  %s\n", i, decision.Reason)
		}
	}

	// 4. Inspect what the reservations did to the network.
	fmt.Printf("\nnetwork state after admission:\n")
	fmt.Printf("  active links:        %d\n", state.NumActiveLinks())
	fmt.Printf("  congested links @12: %d (residual < 10%% of capacity)\n", state.CongestedLinkCount(12, 0.1))
	fmt.Printf("  depleted sats  @12:  %d (battery < 20%%)\n", state.DepletedSatCount(12, 0.2))
	return nil
}
