// Teleconference: reserved ground-to-ground sessions with predictable
// quality — the paper's remote-collaboration scenario. Two offices hold
// a recurring video conference over the LSN; each meeting needs a
// guaranteed 50 Mbps for its whole duration. The example contrasts CEAR
// with best-effort SSP under background load: CEAR keeps quoting
// admissible prices and placing meetings on uncongested, energy-healthy
// routes, while SSP silently burns out the shortest path.
package main

import (
	"fmt"
	"log"

	"spacebooking"
	"spacebooking/internal/baselines"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/router"
	"spacebooking/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := spacebooking.NewEnvironment(spacebooking.EnvConfig{Scale: spacebooking.ScaleSmall})
	if err != nil {
		return err
	}

	// Two algorithms, two independent copies of the same network.
	mkCEAR := func() (router.Algorithm, *netstate.State, error) {
		state, err := netstate.New(env.Provider, spacebooking.PaperEnergyConfig(), false)
		if err != nil {
			return nil, nil, err
		}
		params, err := spacebooking.PaperPricing()
		if err != nil {
			return nil, nil, err
		}
		alg, err := core.New(state, core.Options{Pricing: params})
		return alg, state, err
	}
	mkSSP := func() (router.Algorithm, *netstate.State, error) {
		state, err := netstate.New(env.Provider, spacebooking.PaperEnergyConfig(), false)
		if err != nil {
			return nil, nil, err
		}
		alg, err := baselines.NewSSP(state)
		return alg, state, err
	}

	offices := env.Pairs[0]
	background := env.Pairs[1:]

	// The workload: a 30-minute meeting every 40 minutes at 50 Mbps,
	// plus heavy 1-10 minute background transfers on other pairs.
	buildRequests := func() []workload.Request {
		var reqs []workload.Request
		id := 0
		for start := 5; start+29 < env.Provider.Horizon(); start += 40 {
			reqs = append(reqs, workload.Request{
				ID: id, Src: offices.Src, Dst: offices.Dst,
				ArrivalSlot: start, StartSlot: start, EndSlot: start + 29,
				RateMbps: 50, Valuation: 2.3e9,
			})
			id++
		}
		bg, err := workload.Generate(workload.Config{
			ArrivalRatePerSlot: 2,
			MinDurationSlots:   1, MaxDurationSlots: 10,
			MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 1250,
			Valuation: 2.3e9, Horizon: env.Provider.Horizon(),
			Pairs: background, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range bg {
			r.ID = id
			id++
			reqs = append(reqs, r)
		}
		// Interleave by arrival: meetings were appended first, re-sort.
		for i := 1; i < len(reqs); i++ {
			for j := i; j > 0 && reqs[j].ArrivalSlot < reqs[j-1].ArrivalSlot; j-- {
				reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
			}
		}
		return reqs
	}

	type outcome struct {
		meetingsOK, meetingsDenied int
		bgAccepted                 int
		depleted                   int
	}
	runAlg := func(alg router.Algorithm, state *netstate.State) (outcome, error) {
		var o outcome
		for _, req := range buildRequests() {
			d, err := alg.Handle(req)
			if err != nil {
				return o, err
			}
			isMeeting := req.RateMbps == 50
			switch {
			case isMeeting && d.Accepted:
				o.meetingsOK++
			case isMeeting:
				o.meetingsDenied++
			case d.Accepted:
				o.bgAccepted++
			}
		}
		o.depleted = state.DepletedSatCount(env.Provider.Horizon()-1, 0.2)
		return o, nil
	}

	cear, cearState, err := mkCEAR()
	if err != nil {
		return err
	}
	ssp, sspState, err := mkSSP()
	if err != nil {
		return err
	}
	cearOut, err := runAlg(cear, cearState)
	if err != nil {
		return err
	}
	sspOut, err := runAlg(ssp, sspState)
	if err != nil {
		return err
	}

	fmt.Printf("recurring 30-min meetings @50 Mbps with heavy background transfers\n\n")
	fmt.Printf("%-8s %-12s %-14s %-12s %-18s\n", "alg", "meetings ok", "meetings lost", "bg accepted", "depleted sats (end)")
	fmt.Printf("%-8s %-12d %-14d %-12d %-18d\n", "CEAR", cearOut.meetingsOK, cearOut.meetingsDenied, cearOut.bgAccepted, cearOut.depleted)
	fmt.Printf("%-8s %-12d %-14d %-12d %-18d\n", "SSP", sspOut.meetingsOK, sspOut.meetingsDenied, sspOut.bgAccepted, sspOut.depleted)
	fmt.Printf("\nCEAR books long low-rate sessions cheaply (they barely move any λ),\n")
	fmt.Printf("while pricing the bulky background transfers according to the\n")
	fmt.Printf("congestion and battery deficits they would cause.\n")
	return nil
}
