package spacebooking

// Fast-path cross-checks: the flat CSR search path must be a drop-in
// replacement for the generic Adjacency-interface path, and budget
// pruning must never change an admission outcome. Both properties are
// asserted at the Decision level (accepted flag, quoted price, full
// plan) rather than on aggregate metrics, so any divergence in
// floating-point evaluation order or tie-breaking shows up immediately.

import (
	"reflect"
	"testing"

	"spacebooking/internal/baselines"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/router"
	"spacebooking/internal/sim"
	"spacebooking/internal/workload"
)

// equivCase is one algorithm configuration exercised by the equivalence
// sweep. MaxHops > 0 switches CEAR onto the hop-limited search, covering
// both flat search kernels.
type equivCase struct {
	name    string
	kind    sim.AlgorithmKind
	maxHops int
}

func equivCases() []equivCase {
	return []equivCase{
		{name: "CEAR", kind: sim.AlgCEAR},
		{name: "CEAR-hop6", kind: sim.AlgCEAR, maxHops: 6},
		{name: "SSP", kind: sim.AlgSSP},
		{name: "ECARS", kind: sim.AlgECARS},
		{name: "ERU", kind: sim.AlgERU},
		{name: "ERA", kind: sim.AlgERA},
	}
}

// newSearchAlgorithm mirrors sim.buildAlgorithm's wiring for the kinds
// under test, with explicit control over the search implementation and
// budget pruning. Each call builds a fresh strict-battery state so the
// two sides of a comparison never share reservations.
func newSearchAlgorithm(t *testing.T, env *Environment, ec equivCase, rc sim.RunConfig, generic, prune bool) router.Algorithm {
	t.Helper()
	state, err := netstate.New(env.Provider, rc.Energy, false)
	if err != nil {
		t.Fatal(err)
	}
	switch ec.kind {
	case sim.AlgCEAR:
		alg, err := core.New(state, core.Options{
			Pricing:          rc.Pricing,
			MaxHops:          ec.maxHops,
			UseGenericSearch: generic,
			PruneBudget:      prune,
		})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	case sim.AlgSSP, sim.AlgECARS, sim.AlgERU, sim.AlgERA:
		var (
			alg *baselines.Baseline
		)
		switch ec.kind {
		case sim.AlgSSP:
			alg, err = baselines.NewSSP(state)
		case sim.AlgECARS:
			alg, err = baselines.NewECARS(state, rc.Weights)
		case sim.AlgERU:
			alg, err = baselines.NewERU(state, rc.Weights)
		default:
			alg, err = baselines.NewERA(state, rc.Weights)
		}
		if err != nil {
			t.Fatal(err)
		}
		alg.SetGenericSearch(generic)
		return alg
	default:
		t.Fatalf("unsupported kind %v", ec.kind)
		return nil
	}
}

// TestFlatSearchMatchesGenericSearch replays identical workloads through
// the generic reference path and the flat CSR fast path and requires
// byte-identical decisions for CEAR (Dijkstra and hop-limited) and every
// baseline. Load is set above the default rate so congested (+Inf) edges,
// energy-infeasible trials and rejections are all exercised.
func TestFlatSearchMatchesGenericSearch(t *testing.T) {
	env := smallEnv(t)
	for _, ec := range equivCases() {
		for _, seed := range []int64{1, 7, 23} {
			wl := env.WorkloadConfig(2*env.DefaultArrivalRate(), seed)
			rc, err := env.RunConfig(ec.kind, wl)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := workload.Generate(wl)
			if err != nil {
				t.Fatal(err)
			}
			genericAlg := newSearchAlgorithm(t, env, ec, rc, true, false)
			flatAlg := newSearchAlgorithm(t, env, ec, rc, false, false)
			for i, req := range reqs {
				dg, err := genericAlg.Handle(req)
				if err != nil {
					t.Fatalf("%s seed %d: generic Handle(%d): %v", ec.name, seed, i, err)
				}
				df, err := flatAlg.Handle(req)
				if err != nil {
					t.Fatalf("%s seed %d: flat Handle(%d): %v", ec.name, seed, i, err)
				}
				if !reflect.DeepEqual(dg, df) {
					t.Fatalf("%s seed %d request %d: decisions diverge\ngeneric: %+v\nflat:    %+v",
						ec.name, seed, i, dg, df)
				}
			}
		}
	}
}

// TestBudgetPruningPreservesOutcomes runs CEAR with and without budget
// pruning over identical workloads whose valuation is squeezed low
// enough that a healthy fraction of requests is priced out. Pruning may
// abandon a search early, so rejection *reasons* can differ (an
// early-pruned plan reads "exceeds valuation" where the exhaustive
// search might discover "no feasible path" at a later slot) — but the
// accepted set, the quoted prices of accepted plans, the plans
// themselves, and the committed network state must match exactly.
func TestBudgetPruningPreservesOutcomes(t *testing.T) {
	env := smallEnv(t)
	horizon := env.Provider.Horizon()
	for _, seed := range []int64{3, 11} {
		wl := env.WorkloadConfig(2*env.DefaultArrivalRate(), seed)
		wl.Valuation = env.DefaultValuation() / 1e4
		rc, err := env.RunConfig(sim.AlgCEAR, wl)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(wl)
		if err != nil {
			t.Fatal(err)
		}

		reg := obs.New()
		statePlain, err := netstate.New(env.Provider, rc.Energy, false)
		if err != nil {
			t.Fatal(err)
		}
		statePruned, err := netstate.New(env.Provider, rc.Energy, false)
		if err != nil {
			t.Fatal(err)
		}
		statePruned.SetObs(reg)
		plain, err := core.New(statePlain, core.Options{Pricing: rc.Pricing})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := core.New(statePruned, core.Options{Pricing: rc.Pricing, PruneBudget: true})
		if err != nil {
			t.Fatal(err)
		}

		accepted, rejected := 0, 0
		for i, req := range reqs {
			dp, err := plain.Handle(req)
			if err != nil {
				t.Fatalf("seed %d: plain Handle(%d): %v", seed, i, err)
			}
			dq, err := pruned.Handle(req)
			if err != nil {
				t.Fatalf("seed %d: pruned Handle(%d): %v", seed, i, err)
			}
			if dp.Accepted != dq.Accepted {
				t.Fatalf("seed %d request %d: accepted %v (plain) vs %v (pruned); reasons %q vs %q",
					seed, i, dp.Accepted, dq.Accepted, dp.Reason, dq.Reason)
			}
			if dp.Accepted {
				accepted++
				// Accepted decisions must be fully identical, reason
				// included (it is empty on accept).
				if !reflect.DeepEqual(dp, dq) {
					t.Fatalf("seed %d request %d: accepted decisions diverge\nplain:  %+v\npruned: %+v",
						seed, i, dp, dq)
				}
			} else {
				rejected++
			}
		}
		if accepted == 0 || rejected == 0 {
			t.Fatalf("seed %d: degenerate workload (accepted=%d rejected=%d); pruning not exercised both ways",
				seed, accepted, rejected)
		}
		if n := reg.Counter("graph.fastpath.pruned_labels").Value(); n == 0 {
			t.Fatalf("seed %d: budget pruning never fired; cross-check is vacuous", seed)
		}

		// Committed state must be indistinguishable: same congestion and
		// depletion profile, same residual energy deficit, slot by slot.
		// (The raw ledger footprint is NOT compared: a rolled-back
		// reservation leaves a zero-usage ledger entry behind, and the
		// pruned run abandons doomed searches before ever touching those
		// links — a difference in bookkeeping residue, not in state.)
		for slot := 0; slot < horizon; slot++ {
			if a, b := statePlain.CongestedLinkCount(slot, 0.1), statePruned.CongestedLinkCount(slot, 0.1); a != b {
				t.Fatalf("seed %d slot %d: congested links %d vs %d", seed, slot, a, b)
			}
			if a, b := statePlain.DepletedSatCount(slot, 0.2), statePruned.DepletedSatCount(slot, 0.2); a != b {
				t.Fatalf("seed %d slot %d: depleted sats %d vs %d", seed, slot, a, b)
			}
			if a, b := statePlain.EnergyDeficitJ(slot), statePruned.EnergyDeficitJ(slot); a != b {
				t.Fatalf("seed %d slot %d: energy deficit %v vs %v", seed, slot, a, b)
			}
		}
	}
}

// TestScratchReuseAcrossRequests checks the pooling story end to end: a
// single SearchScratch threaded through a full simulation run is reused
// (not rebuilt) across slots and requests, and sharing one scratch
// across sequential runs still produces decisions identical to a
// scratch-per-run setup.
func TestScratchReuseAcrossRequests(t *testing.T) {
	env := smallEnv(t)
	// Leave the shared environment pristine for tests that assert on
	// LastObs ordering.
	defer env.setLastObs(nil)
	wl := env.WorkloadConfig(env.DefaultArrivalRate(), 5)
	rc, err := env.RunConfig(sim.AlgCEAR, wl)
	if err != nil {
		t.Fatal(err)
	}
	rc.Scratch = netstate.NewSearchScratch()
	rc.Obs = obs.New()
	res1, err := env.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if n := rc.Obs.Counter("netstate.scratch.reuses").Value(); n == 0 {
		t.Fatal("scratch was never reused across view builds")
	}
	if n := rc.Obs.Counter("graph.fastpath.searches").Value(); n == 0 {
		t.Fatal("fast-path search counter never incremented")
	}

	// The same (now warm) scratch must not leak state between runs.
	rc2 := rc
	rc2.Obs = obs.New()
	res2, err := env.Run(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("warm-scratch rerun diverged:\nfirst:  %+v\nsecond: %+v", res1, res2)
	}
}
