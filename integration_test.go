package spacebooking

// Integration tests: cross-module invariants that only surface when the
// whole stack (topology → energy → pricing → admission → metrics) runs
// together.

import (
	"math"
	"testing"

	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/offline"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// runFull drives one algorithm over a workload and returns both the
// result and the final state for invariant inspection.
func runFullWithState(t *testing.T, env *Environment, alg sim.AlgorithmKind, rate float64, seed int64) (*sim.Result, workload.Config) {
	t.Helper()
	wl := env.WorkloadConfig(rate, seed)
	rc, err := env.RunConfig(alg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	return res, wl
}

// TestLemma1StyleInvariants: after a full CEAR run, replaying the
// accepted plans must never over-subscribe a link or drive a battery
// negative. The sim enforces this internally (ReserveLink and strict
// batteries error out), so the integration assertion is that heavy runs
// complete without internal errors AND leave consistent metrics.
func TestLemma1StyleInvariants(t *testing.T) {
	env := smallEnv(t)
	for _, alg := range []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgERU} {
		res, _ := runFullWithState(t, env, alg, 2*env.DefaultArrivalRate(), 17)
		if res.Accepted+sumValues(res.Rejections) != res.TotalRequests {
			t.Errorf("%s: request accounting broken", alg)
		}
		for slot, n := range res.DepletedPerSlot {
			if n < 0 || n > env.Provider.NumSats() {
				t.Fatalf("%s: depleted count %d at slot %d out of range", alg, n, slot)
			}
		}
	}
}

func sumValues(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// TestPaperOrderingAtLoad asserts the paper's headline Fig. 6 ordering
// at 2x the default rate: CEAR >= each baseline, and ERU last.
func TestPaperOrderingAtLoad(t *testing.T) {
	env := smallEnv(t)
	rate := 2 * env.DefaultArrivalRate()
	welfare := map[sim.AlgorithmKind]float64{}
	for _, alg := range sim.PaperAlgorithms() {
		res, _ := runFullWithState(t, env, alg, rate, 31)
		welfare[alg] = res.WelfareRatio
	}
	for _, alg := range []sim.AlgorithmKind{sim.AlgSSP, sim.AlgECARS, sim.AlgERA} {
		if welfare[sim.AlgCEAR] < welfare[alg]-0.03 {
			t.Errorf("CEAR welfare %.3f below %s %.3f", welfare[sim.AlgCEAR], alg, welfare[alg])
		}
	}
	for _, alg := range []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgECARS, sim.AlgERA} {
		if welfare[sim.AlgERU] > welfare[alg] {
			t.Errorf("ERU welfare %.3f not the worst (vs %s %.3f)", welfare[sim.AlgERU], alg, welfare[alg])
		}
	}
}

// TestCEARBeatsBaselinesOnEnergyHealth asserts the Fig. 7 ordering:
// CEAR keeps fewer satellites depleted than every baseline except
// (possibly) ERU, whose aggressive pruning under-uses the network.
func TestCEARBeatsBaselinesOnEnergyHealth(t *testing.T) {
	env := smallEnv(t)
	rate := 2 * env.DefaultArrivalRate()
	depleted := map[sim.AlgorithmKind]float64{}
	for _, alg := range sim.PaperAlgorithms() {
		res, _ := runFullWithState(t, env, alg, rate, 43)
		depleted[alg] = res.MeanDepleted()
	}
	for _, alg := range []sim.AlgorithmKind{sim.AlgSSP, sim.AlgECARS, sim.AlgERA} {
		if depleted[sim.AlgCEAR] > depleted[alg]+1 {
			t.Errorf("CEAR mean depleted %.2f worse than %s %.2f", depleted[sim.AlgCEAR], alg, depleted[alg])
		}
	}
}

// TestEmpiricalCompetitiveRatioWithinBound runs CEAR against the offline
// greedy on several workloads, including an adversarial one, and checks
// the empirical ratio stays far inside Theorem 1's bound.
func TestEmpiricalCompetitiveRatioWithinBound(t *testing.T) {
	env := smallEnv(t)
	for _, rate := range []float64{1, 3, 5} {
		res, err := env.RunCompetitive(rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.EmpiricalRatio > res.TheoreticalBound {
			t.Errorf("rate %v: empirical ratio %.2f exceeds bound %.2f", rate, res.EmpiricalRatio, res.TheoreticalBound)
		}
	}
}

// TestAdversarialSequence: a burst of huge, long requests followed by
// many small ones. A greedy algorithm fills up on the burst; CEAR's
// pricing must keep it within the competitive band of the offline greedy
// that knows the small requests are coming.
func TestAdversarialSequence(t *testing.T) {
	env := smallEnv(t)
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	params, err := PaperPricing()
	if err != nil {
		t.Fatal(err)
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		t.Fatal(err)
	}

	pair := env.Pairs[0]
	var reqs []workload.Request
	id := 0
	// Burst: 20 maximal requests at slot 5.
	for i := 0; i < 20; i++ {
		reqs = append(reqs, workload.Request{
			ID: id, Src: pair.Src, Dst: pair.Dst,
			ArrivalSlot: 5, StartSlot: 5, EndSlot: 14,
			RateMbps: 2000, Valuation: env.DefaultValuation(),
		})
		id++
	}
	// Tail: 60 small requests spread over later slots.
	for i := 0; i < 60; i++ {
		slot := 20 + i%40
		reqs = append(reqs, workload.Request{
			ID: id, Src: pair.Src, Dst: pair.Dst,
			ArrivalSlot: slot, StartSlot: slot, EndSlot: slot + 1,
			RateMbps: 500, Valuation: env.DefaultValuation(),
		})
		id++
	}

	online := 0.0
	for _, r := range reqs {
		d, err := cear.Handle(r)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			online += r.Valuation
		}
	}
	off, err := offline.Greedy(env.Provider, PaperEnergyConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if online <= 0 {
		t.Fatal("CEAR earned nothing on the adversarial sequence")
	}
	ratio := off.Welfare / online
	if ratio > params.CompetitiveRatio() {
		t.Errorf("adversarial ratio %.2f exceeds bound %.2f", ratio, params.CompetitiveRatio())
	}
	t.Logf("adversarial: online %.3g, offline %.3g, ratio %.2f (bound %.1f)",
		online, off.Welfare, ratio, params.CompetitiveRatio())
}

// TestEnergyConservation: total energy drawn from the system (solar used
// + battery deficits outstanding) must equal the energy implied by the
// accepted plans, for a single-request scenario where it can be computed
// exactly.
func TestEnergyConservation(t *testing.T) {
	env := smallEnv(t)
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	params, err := PaperPricing()
	if err != nil {
		t.Fatal(err)
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		t.Fatal(err)
	}

	pair := env.Pairs[0]
	req := workload.Request{
		ID: 1, Src: pair.Src, Dst: pair.Dst,
		StartSlot: 10, EndSlot: 12, RateMbps: 1000,
		Valuation: env.DefaultValuation(),
	}
	d, err := cear.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Skipf("request rejected: %s", d.Reason)
	}

	// Expected total energy: per Eq. (1), each slot-path transits
	// satellites with role-dependent draw.
	cfg := PaperEnergyConfig()
	slotSec := env.Provider.Config().SlotSeconds
	expected := 0.0
	for _, sp := range d.Plan.Paths {
		for i := 1; i < len(sp.Path.Nodes)-1; i++ {
			expected += cfg.TransitEnergyJ(sp.Path.Edges[i-1].Class, sp.Path.Edges[i].Class, req.RateMbps, slotSec)
		}
	}

	// Observed: solar consumed plus outstanding deficits, summed over
	// all satellites. Solar consumed = initial input - remaining.
	observed := 0.0
	for sat := 0; sat < env.Provider.NumSats(); sat++ {
		b := state.Battery(sat)
		for slot := 0; slot < env.Provider.Horizon(); slot++ {
			initial := 0.0
			if env.Provider.Sunlit(slot, sat) {
				initial = cfg.PanelWatts * slotSec
			}
			observed += initial - b.SolarRemainingAt(slot)
		}
		// The deficit at the final slot is energy still owed to the
		// batteries; deficits absorbed earlier were covered by solar,
		// which the loop above already counted.
		observed += b.DeficitAt(env.Provider.Horizon() - 1)
	}
	if math.Abs(observed-expected) > 1e-6*(1+expected) {
		t.Errorf("energy books do not balance: observed %.3f J, expected %.3f J", observed, expected)
	}
}

// TestEndpointKindsInterop: space-user requests (EO -> ground) flow
// through the same admission machinery.
func TestEndpointKindsInterop(t *testing.T) {
	env, err := NewEnvironment(EnvConfig{Scale: ScaleSmall, IncludeEOFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	state, err := netstate.New(env.Provider, PaperEnergyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	params, err := PaperPricing()
	if err != nil {
		t.Fatal(err)
	}
	cear, err := core.New(state, core.Options{Pricing: params})
	if err != nil {
		t.Fatal(err)
	}
	eo := topology.Endpoint{Kind: topology.EndpointSpace, Index: 3}
	windows, err := env.Provider.ContactWindows(eo)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) == 0 {
		t.Skip("EO-3 has no contact in this horizon")
	}
	w := windows[0]
	req := workload.Request{
		ID: 1, Src: eo, Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: 0},
		StartSlot: w.StartSlot, EndSlot: w.StartSlot,
		RateMbps: 500, Valuation: env.DefaultValuation(),
	}
	d, err := cear.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("EO downlink accepted=%v reason=%q price=%.3g", d.Accepted, d.Reason, d.Price)
}

// TestAdaptiveControllerEndToEnd: the §V-B adaptive variant completes a
// full run and lands within the clamp band.
func TestAdaptiveControllerEndToEnd(t *testing.T) {
	env := smallEnv(t)
	res, _ := runFullWithState(t, env, sim.AlgCEARAdaptive, 2*env.DefaultArrivalRate(), 3)
	if res.Algorithm != "CEAR-AD" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	if res.Accepted == 0 {
		t.Error("adaptive CEAR accepted nothing")
	}
}

// TestEnvironmentLastObs: figure runners give every run its own
// registry; LastObs must return the final run's registry (matrix order),
// and its snapshot must describe that run alone — no accumulation of
// counters or per-slot time series across the figure's runs.
func TestEnvironmentLastObs(t *testing.T) {
	env := smallEnv(t)
	env.Obs = obs.New()
	var sunk []*obs.Registry
	env.ObsSink = func(r *obs.Registry) { sunk = append(sunk, r) }
	defer func() {
		env.Obs = nil
		env.ObsSink = nil
	}()

	if env.LastObs() != nil {
		t.Fatal("LastObs non-nil before any run")
	}
	if _, err := env.RunFig8(Fig8Config{
		Seed:       7,
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
	}); err != nil {
		t.Fatal(err)
	}

	last := env.LastObs()
	if last == nil {
		t.Fatal("LastObs nil after an observed figure")
	}
	if last == env.Obs {
		t.Fatal("LastObs returned the shared environment registry; runs must get their own")
	}
	snap := last.Snapshot()
	if snap.Counters["sim.requests.total"] == 0 {
		t.Fatal("instrumented runs recorded nothing")
	}
	horizon := int64(env.Provider.Horizon())
	if got := snap.TimeSeries["slot.accepted"].Total; got != horizon {
		t.Errorf("slot.accepted has %d samples, want %d (another run bled in)", got, horizon)
	}
	if len(sunk) != 2 {
		t.Fatalf("ObsSink saw %d registries, want 2", len(sunk))
	}
	if sunk[0] == sunk[1] {
		t.Fatal("ObsSink received the same registry twice")
	}
	// LastObs is the last run in *matrix* order, whatever the
	// completion order was.
	if last != sunk[0] && last != sunk[1] {
		t.Fatal("LastObs is not one of the run registries")
	}
}

// TestParallelFiguresDeterministic: a figure swept with Parallelism 1
// and Parallelism 8 must produce identical per-cell values — each run
// owns its state and RNG, so scheduling order cannot leak into results.
func TestParallelFiguresDeterministic(t *testing.T) {
	env := smallEnv(t)
	cfg := Fig6Config{
		Rates:      []float64{env.DefaultArrivalRate()},
		Seeds:      []int64{7, 42},
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgECARS},
	}
	env.Parallelism = 1
	seq, err := env.RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.Parallelism = 8
	defer func() { env.Parallelism = 0 }()
	par, err := env.RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range cfg.Algorithms {
		name := alg.String()
		for i := range seq.Points[name] {
			s, p := seq.Points[name][i], par.Points[name][i]
			if s != p {
				t.Errorf("%s point %d: sequential %+v vs parallel %+v", name, i, s, p)
			}
		}
	}
}

// TestAdaptiveUnderDiurnalLoad exercises the §V-B controller where it is
// meant to shine: a strongly time-varying load. The assertion is soft
// (within a small margin of static CEAR) because adaptivity is a
// heuristic; the run itself exercises the full predictor/adjustment path.
func TestAdaptiveUnderDiurnalLoad(t *testing.T) {
	env := smallEnv(t)
	profile, err := workload.DiurnalProfile(48, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg sim.AlgorithmKind) float64 {
		wl := env.WorkloadConfig(2*env.DefaultArrivalRate(), 23)
		wl.RateProfile = profile
		rc, err := env.RunConfig(alg, wl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.WelfareRatio
	}
	static := run(sim.AlgCEAR)
	adaptiveW := run(sim.AlgCEARAdaptive)
	t.Logf("diurnal load: static CEAR %.3f, adaptive CEAR-AD %.3f", static, adaptiveW)
	if adaptiveW < static-0.08 {
		t.Errorf("adaptive welfare %.3f collapsed versus static %.3f", adaptiveW, static)
	}
}
