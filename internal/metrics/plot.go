package metrics

import (
	"fmt"
	"strings"
)

// sparkBars are the block characters used by Sparkline, lowest first.
var sparkBars = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders an integer series as a compact unicode bar strip,
// downsampling to at most maxWidth columns. Used by the CLIs to show the
// Fig. 7/8 time series inline.
func Sparkline(xs []int, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 80
	}
	if len(xs) == 0 {
		return "(empty)"
	}
	max := 0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	step := 1
	if len(xs) > maxWidth {
		step = (len(xs) + maxWidth - 1) / maxWidth
	}
	var b strings.Builder
	for i := 0; i < len(xs); i += step {
		if max == 0 {
			b.WriteRune(sparkBars[0])
			continue
		}
		level := xs[i] * (len(sparkBars) - 1) / max
		b.WriteRune(sparkBars[level])
	}
	fmt.Fprintf(&b, "  (max %d)", max)
	return b.String()
}

// SparklineFloat renders a float series the same way, normalised to its
// own maximum.
func SparklineFloat(xs []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 80
	}
	if len(xs) == 0 {
		return "(empty)"
	}
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	step := 1
	if len(xs) > maxWidth {
		step = (len(xs) + maxWidth - 1) / maxWidth
	}
	var b strings.Builder
	for i := 0; i < len(xs); i += step {
		if max <= 0 {
			b.WriteRune(sparkBars[0])
			continue
		}
		level := int(xs[i] / max * float64(len(sparkBars)-1))
		if level < 0 {
			level = 0
		}
		if level >= len(sparkBars) {
			level = len(sparkBars) - 1
		}
		b.WriteRune(sparkBars[level])
	}
	fmt.Fprintf(&b, "  (max %s)", FormatFloat(max))
	return b.String()
}

// MultiSeriesPlot renders several float series as rows of sparklines
// with aligned labels — the textual analogue of the paper's multi-line
// figures.
func MultiSeriesPlot(series []Series, maxWidth int) string {
	labelWidth := 0
	for _, s := range series {
		if len(s.Name) > labelWidth {
			labelWidth = len(s.Name)
		}
	}
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%-*s %s\n", labelWidth, s.Name, SparklineFloat(s.Values, maxWidth))
	}
	return b.String()
}
