package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		wantMean float64
		wantStd  float64
	}{
		{"pair", []float64{1, 3}, 2, math.Sqrt2},
		{"constant", []float64{5, 5, 5}, 5, 0},
		{"single", []float64{7}, 7, 0},
		{"classic", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, math.Sqrt(32.0 / 7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, s := MeanStd(tt.xs)
			if math.Abs(m-tt.wantMean) > 1e-12 || math.Abs(s-tt.wantStd) > 1e-12 {
				t.Errorf("MeanStd = (%v, %v), want (%v, %v)", m, s, tt.wantMean, tt.wantStd)
			}
		})
	}
	if m, s := MeanStd(nil); !math.IsNaN(m) || !math.IsNaN(s) {
		t.Error("empty input should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	xs := []float64{7}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := Quantile(xs, q); got != 7 {
			t.Errorf("Quantile(single, %v) = %v, want 7", q, got)
		}
	}
}

func TestQuantileExactlyOnSamplePoint(t *testing.T) {
	// With 5 elements, q = k/4 lands exactly on sorted[k]: the
	// interpolation fraction is zero and the sample itself must come
	// back, not a blend with its neighbour.
	xs := []float64{50, 10, 40, 20, 30} // sorted: 10 20 30 40 50
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want exactly %v", tt.q, got, tt.want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "x", Values: []float64{1, 2, 3, 4, 5, 6, 7}}
	d := s.Downsample(3)
	want := []float64{1, 4, 7}
	if len(d.Values) != len(want) {
		t.Fatalf("downsampled to %v", d.Values)
	}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Errorf("value %d = %v", i, d.Values[i])
		}
	}
	if got := s.Downsample(1); len(got.Values) != 7 {
		t.Error("k=1 should be identity")
	}
	if got := s.Mean(); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Max(); got != 7 {
		t.Errorf("Max = %v", got)
	}
	empty := Series{}
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Max()) {
		t.Error("empty series stats should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Fig X", "alg", "ratio", "depleted")
	tab.AddRow("CEAR", "0.91", "3")
	tab.AddFloatRow("SSP", 0.52341, 17)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "alg", "CEAR", "0.5234", "17", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "overflow-dropped")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "overflow") {
		t.Error("overflow cell should be dropped")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"rate", "welfare"}, [][]float64{{5, 0.9}, {10, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	want := "rate,welfare\n5,0.9\n10,0.75\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{math.NaN(), "nan"},
		{1234567, "1.235e+06"},
		{0.00012345, "0.0001234"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.v); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
