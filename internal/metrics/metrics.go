// Package metrics provides the small statistics and reporting toolkit the
// benchmark harness uses: mean/std aggregation across seeds, time series,
// fixed-width result tables and CSV export.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// MeanStd returns the sample mean and standard deviation (n-1 in the
// denominator, matching the paper's error bars over 5 seeded runs).
// Empty input returns (NaN, NaN); a single sample has zero deviation.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n == 1 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series is a named per-slot time series.
type Series struct {
	Name   string
	Values []float64
}

// Downsample keeps every k-th point (first point always kept), for
// compact textual plots of long horizons.
func (s Series) Downsample(k int) Series {
	if k <= 1 {
		return s
	}
	out := Series{Name: s.Name, Values: make([]float64, 0, len(s.Values)/k+1)}
	for i := 0; i < len(s.Values); i += k {
		out.Values = append(out.Values, s.Values[i])
	}
	return out
}

// Mean returns the average of the series values (NaN if empty).
func (s Series) Mean() float64 {
	m, _ := MeanStd(s.Values)
	return m
}

// Max returns the maximum value (NaN if empty).
func (s Series) Max() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	max := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Table is a fixed-width text table for bench output: the harness prints
// one table per reproduced figure, with the same rows/series the paper
// reports.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloatRow formats a label plus float cells with 4 significant digits.
func (t *Table) AddFloatRow(label string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, FormatFloat(v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table in aligned fixed-width form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes headers and numeric rows as CSV (plain encoding; cells
// contain no commas by construction).
func WriteCSV(w io.Writer, headers []string, rows [][]float64) error {
	if _, err := io.WriteString(w, strings.Join(headers, ",")+"\n"); err != nil {
		return err
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = FormatFloat(v)
		}
		if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a float compactly with 4 significant digits.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
