package metrics

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	out := Sparkline([]int{0, 1, 2, 4, 8}, 80)
	if !strings.Contains(out, "(max 8)") {
		t.Errorf("missing max annotation: %q", out)
	}
	// First rune is the empty bar, last data rune is the full block.
	runes := []rune(out)
	if runes[0] != ' ' {
		t.Errorf("zero renders as %q", runes[0])
	}
	if runes[4] != '█' {
		t.Errorf("max renders as %q", runes[4])
	}
}

func TestSparklineDownsamples(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	out := Sparkline(xs, 50)
	bars := strings.Split(out, "  (max")[0]
	if n := utf8.RuneCountInString(bars); n > 50 {
		t.Errorf("rendered %d columns, want <= 50", n)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if got := Sparkline(nil, 10); got != "(empty)" {
		t.Errorf("empty = %q", got)
	}
	out := Sparkline([]int{0, 0, 0}, 10)
	if !strings.Contains(out, "(max 0)") {
		t.Errorf("all-zero = %q", out)
	}
	// Zero width falls back to a default rather than dividing by zero.
	if got := Sparkline([]int{1, 2}, 0); got == "" {
		t.Error("zero width produced nothing")
	}
}

func TestSparklineFloat(t *testing.T) {
	out := SparklineFloat([]float64{0, 0.5, 1.0}, 10)
	if !strings.Contains(out, "(max 1)") {
		t.Errorf("missing max: %q", out)
	}
	if got := SparklineFloat(nil, 10); got != "(empty)" {
		t.Errorf("empty = %q", got)
	}
	// Negative values clamp to the lowest bar instead of panicking.
	out = SparklineFloat([]float64{-5, 1}, 10)
	if !strings.HasPrefix(out, " ") {
		t.Errorf("negative value rendered as %q", out)
	}
}

func TestMultiSeriesPlot(t *testing.T) {
	out := MultiSeriesPlot([]Series{
		{Name: "CEAR", Values: []float64{1, 2, 3}},
		{Name: "SSP-long-name", Values: []float64{3, 2, 1}},
	}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "CEAR ") {
		t.Errorf("label misaligned: %q", lines[0])
	}
	// Labels are padded to the longest name.
	if idx0, idx1 := strings.IndexRune(lines[0], '('), strings.IndexRune(lines[1], '('); idx0 < 0 || idx1 < 0 {
		t.Error("missing annotations")
	}
}
