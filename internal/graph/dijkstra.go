package graph

import (
	"math"
)

// item is a priority-queue entry over (node, incoming-class) states.
type item struct {
	state int
	dist  float64
}

// searchHeap is a typed binary min-heap over items, ordered by dist.
// It replaces container/heap: pushes and pops move concrete structs (no
// interface{} boxing, so no per-push allocation), and the backing slice
// is preallocated once per search — and reused across the many spur
// searches of one Yen call.
type searchHeap struct {
	items []item
}

// heapSizeHint bounds the initial heap allocation: enough for every
// (node, in-class) state of small graphs, capped so huge graphs do not
// pay for capacity the search never uses (append grows it on demand).
func heapSizeHint(n int) int {
	const maxHint = 4096
	if h := n * numClasses; h < maxHint {
		return h
	}
	return maxHint
}

func (h *searchHeap) reset() { h.items = h.items[:0] }

func (h *searchHeap) empty() bool { return len(h.items) == 0 }

func (h *searchHeap) push(it item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *searchHeap) pop() item {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.items[r].dist < h.items[l].dist {
			child = r
		}
		if h.items[i].dist <= h.items[child].dist {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}

// predLink records how a search state was reached.
type predLink struct {
	state int
	edge  Edge
}

// ShortestPath runs Dijkstra from src to dst over any Adjacency.
//
// When transit is nil it is plain Dijkstra over edge costs. When transit
// is non-nil the search runs over (node, incoming-edge-class) states and
// charges transit(node, in, out) each time the search leaves a node —
// this is how CEAR folds Eq. (1)'s role-dependent satellite energy cost
// into path search: the role of a satellite (relay, ingress gateway,
// egress gateway) is exactly the pair of its incoming and outgoing link
// classes.
//
// Edges with +Inf cost and node transits with +Inf cost are skipped.
// The second return value is false when dst is unreachable.
func ShortestPath(g Adjacency, src, dst int, transit TransitCostFunc) (Path, bool) {
	return ShortestPathWith(g, src, dst, transit, nil)
}

// ShortestPathWith is ShortestPath with caller-owned working memory: the
// scratch's heap, dist and prev arrays are reused instead of allocated
// per call. A nil scratch allocates a fresh one (the reference
// behaviour); results are identical either way.
func ShortestPathWith(g Adjacency, src, dst int, transit TransitCostFunc, sc *Scratch) (Path, bool) {
	n := g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	if sc == nil {
		sc = NewScratch()
	}
	in := instrumentsOf(g)
	defer in.searchTimerEnd(in.searchTimerStart())
	var pops int64

	// State encoding: node*numClasses + int(inClass).
	numStates := n * numClasses
	sc.ensureDijkstra(numStates)
	dist, prev := sc.dist, sc.prev

	start := src*numClasses + int(ClassNone)
	dist[start] = 0
	pq := &sc.heap
	if cap(pq.items) == 0 {
		pq.items = make([]item, 0, heapSizeHint(n))
	}
	pq.reset()
	pq.push(item{state: start, dist: 0})

	// The relax callback is built once and fed per-pop state through the
	// captured locals below: VisitNeighbors takes a func value, so a
	// closure literal inside the pop loop would escape (and allocate) on
	// every settled state.
	var (
		curItem    item
		curNode    int
		curInClass EdgeClass
	)
	relax := func(e Edge) bool {
		in.relax()
		w := e.Cost
		if math.IsInf(w, 1) {
			return true
		}
		if transit != nil && curNode != src {
			tc := transit(curNode, curInClass, e.Class)
			if math.IsInf(tc, 1) {
				return true
			}
			w += tc
		}
		nextState := e.To*numClasses + int(e.Class)
		if nd := curItem.dist + w; nd < dist[nextState] {
			dist[nextState] = nd
			prev[nextState] = predLink{state: curItem.state, edge: e}
			pq.push(item{state: nextState, dist: nd})
		}
		return true
	}

	for !pq.empty() {
		cur := pq.pop()
		pops++
		if cur.dist > dist[cur.state] {
			continue // stale entry
		}
		node := cur.state / numClasses
		inClass := EdgeClass(cur.state % numClasses)
		if node == dst {
			// First settle of the destination is optimal over all
			// incoming classes (dst pays no transit).
			in.searchDone(pops)
			return reconstruct(prev, cur.state, cur.dist, sc), true
		}

		curItem, curNode, curInClass = cur, node, inClass
		g.VisitNeighbors(node, relax)
	}
	in.searchDone(pops)
	return Path{}, false
}

// ShortestPath runs Dijkstra on an explicit graph; see the package-level
// ShortestPath for semantics.
func (g *Graph) ShortestPath(src, dst int, transit TransitCostFunc) (Path, bool) {
	return ShortestPath(g, src, dst, transit)
}

// reconstruct walks predecessor links back to the source, reversing
// through the scratch buffers; only the returned Path slices allocate.
func reconstruct(prev []predLink, dstState int, cost float64, sc *Scratch) Path {
	sc.nodesRev = sc.nodesRev[:0]
	sc.edgesRev = sc.edgesRev[:0]
	s := dstState
	for {
		sc.nodesRev = append(sc.nodesRev, s/numClasses)
		p := prev[s]
		if p.state < 0 {
			break
		}
		sc.edgesRev = append(sc.edgesRev, p.edge)
		s = p.state
	}
	return sc.buildPath(cost)
}

// ShortestPathHopLimited finds the cheapest src->dst path using at most
// maxHops edges, via a hop-indexed Bellman-Ford DP over (node, in-class)
// states. It supports the same transit cost semantics as ShortestPath.
// Complexity O(maxHops * E * numClasses).
func ShortestPathHopLimited(g Adjacency, src, dst, maxHops int, transit TransitCostFunc) (Path, bool) {
	return ShortestPathHopLimitedWith(g, src, dst, maxHops, transit, nil)
}

// ShortestPathHopLimitedWith is ShortestPathHopLimited with caller-owned
// working memory: the cur/next cost ladders and the hop-indexed
// predecessor table — previously a fresh []pred per hop per call — come
// from the scratch. A nil scratch allocates a fresh one; results are
// identical either way.
func ShortestPathHopLimitedWith(g Adjacency, src, dst, maxHops int, transit TransitCostFunc, sc *Scratch) (Path, bool) {
	n := g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n || maxHops < 0 {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	if sc == nil {
		sc = NewScratch()
	}
	in := instrumentsOf(g)
	defer in.searchTimerEnd(in.searchTimerStart())

	numStates := n * numClasses
	const inf = math.MaxFloat64
	sc.ensureHopLadders(numStates, maxHops)
	cur, next := sc.cur, sc.next
	for i := range cur {
		cur[i] = inf
		next[i] = inf
	}
	// prevAt(h, state): how state was reached with exactly h hops; row h
	// lives at sc.preds[h*numStates : (h+1)*numStates].
	preds := sc.preds

	startState := src*numClasses + int(ClassNone)
	cur[startState] = 0

	bestCost := inf
	bestHop, bestState := -1, -1

	// One callback serves every (hop, node, class) visit; creating the
	// literal inside the loops would allocate a closure per visited
	// state (it escapes through the VisitNeighbors func parameter). The
	// captured next/row track the per-hop swaps automatically.
	var (
		row      []hopPred
		curHop   int
		curNode  int
		curClass int
		curState int
		curDist  float64
	)
	relax := func(e Edge) bool {
		in.relax()
		w := e.Cost
		if math.IsInf(w, 1) {
			return true
		}
		if transit != nil && curNode != src {
			tc := transit(curNode, EdgeClass(curClass), e.Class)
			if math.IsInf(tc, 1) {
				return true
			}
			w += tc
		}
		ns := e.To*numClasses + int(e.Class)
		if nd := curDist + w; nd < next[ns] {
			next[ns] = nd
			row[ns] = hopPred{hop: curHop - 1, state: curState, edge: e}
		}
		return true
	}

	for h := 1; h <= maxHops; h++ {
		for i := range next {
			next[i] = inf
		}
		row = preds[h*numStates : (h+1)*numStates]
		for i := range row {
			row[i] = hopPred{state: -1}
		}
		curHop = h
		for node := 0; node < n; node++ {
			for c := 0; c < numClasses; c++ {
				st := node*numClasses + c
				d := cur[st]
				if d == inf {
					continue
				}
				curNode, curClass, curState, curDist = node, c, st, d
				g.VisitNeighbors(node, relax)
			}
		}
		cur, next = next, cur
		for c := 0; c < numClasses; c++ {
			st := dst*numClasses + c
			if cur[st] < bestCost {
				bestCost = cur[st]
				bestHop, bestState = h, st
			}
		}
		// No early exit: a longer path can still be cheaper.
	}

	if bestState < 0 {
		return Path{}, false
	}

	// Reconstruct through the hop-indexed predecessors.
	sc.nodesRev = append(sc.nodesRev[:0], bestState/numClasses)
	sc.edgesRev = sc.edgesRev[:0]
	h, st := bestHop, bestState
	for h > 0 {
		p := preds[h*numStates+st]
		if p.state < 0 {
			break
		}
		sc.edgesRev = append(sc.edgesRev, p.edge)
		sc.nodesRev = append(sc.nodesRev, p.state/numClasses)
		h, st = p.hop, p.state
	}
	return sc.buildPath(bestCost), true
}

// ShortestPathHopLimited is the explicit-graph form of the package-level
// function.
func (g *Graph) ShortestPathHopLimited(src, dst, maxHops int, transit TransitCostFunc) (Path, bool) {
	return ShortestPathHopLimited(g, src, dst, maxHops, transit)
}

// MinHopPath returns a path with the fewest edges from src to dst via
// breadth-first search, ignoring costs. Edges with +Inf cost are treated
// as absent (so capacity-infeasible links can be masked the same way as
// in the weighted searches).
func MinHopPath(g Adjacency, src, dst int) (Path, bool) {
	n := g.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	prev := make([]predLink, n)
	for i := range prev {
		prev[i].state = -1
	}
	visited := make([]bool, n)
	visited[src] = true
	queue := []int{src}
	found := false
	for len(queue) > 0 && !found {
		node := queue[0]
		queue = queue[1:]
		g.VisitNeighbors(node, func(e Edge) bool {
			if math.IsInf(e.Cost, 1) || visited[e.To] {
				return true
			}
			visited[e.To] = true
			prev[e.To] = predLink{state: node, edge: e}
			if e.To == dst {
				found = true
				return false
			}
			queue = append(queue, e.To)
			return true
		})
	}
	if !visited[dst] {
		return Path{}, false
	}
	var nodesRev []int
	var edgesRev []Edge
	cost := 0.0
	for at := dst; ; {
		nodesRev = append(nodesRev, at)
		p := prev[at]
		if p.state < 0 {
			break
		}
		edgesRev = append(edgesRev, p.edge)
		cost += p.edge.Cost
		at = p.state
	}
	nodes := make([]int, len(nodesRev))
	for i := range nodesRev {
		nodes[i] = nodesRev[len(nodesRev)-1-i]
	}
	edges := make([]Edge, len(edgesRev))
	for i := range edgesRev {
		edges[i] = edgesRev[len(edgesRev)-1-i]
	}
	return Path{Nodes: nodes, Edges: edges, Cost: cost}, true
}

// MinHopPath is the explicit-graph form of the package-level function.
func (g *Graph) MinHopPath(src, dst int) (Path, bool) {
	return MinHopPath(g, src, dst)
}
