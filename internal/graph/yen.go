package graph

import (
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst
// in ascending cost order, using Yen's algorithm on top of Dijkstra.
// Transit costs are supported with the same semantics as ShortestPath.
//
// The simulator's ablation experiments use this to study whether giving
// CEAR a diversity of candidate paths (rather than the single min-price
// path of Algorithm 1) changes the welfare outcome.
func KShortestPaths(g Adjacency, src, dst, k int, transit TransitCostFunc) []Path {
	if k <= 0 {
		return nil
	}
	in := instrumentsOf(g)
	// One scratch (heap, dist/prev arrays) serves the initial search and
	// every spur search below.
	sc := NewScratch()
	first, ok := ShortestPathWith(g, src, dst, transit, sc)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	var spurs int64

	for len(paths) < k {
		lastPath := paths[len(paths)-1]
		// For each node in the last accepted path except the final one,
		// consider it a spur node.
		for spurIdx := 0; spurIdx < len(lastPath.Nodes)-1; spurIdx++ {
			spurs++
			spurNode := lastPath.Nodes[spurIdx]
			rootNodes := lastPath.Nodes[:spurIdx+1]
			rootEdges := lastPath.Edges[:spurIdx]

			// Ban edges that would recreate an already-found path with
			// the same root, and ban root nodes (except the spur) to keep
			// paths loopless.
			mask := newMask(g)
			for _, p := range paths {
				if len(p.Nodes) > spurIdx && equalPrefix(p.Nodes, rootNodes) {
					e := p.Edges[spurIdx]
					mask.banEdge(spurNode, e.To, e.Payload)
				}
			}
			for _, n := range rootNodes[:len(rootNodes)-1] {
				mask.banNode(n)
			}

			spurPath, ok := ShortestPathWith(mask, spurNode, dst, transit, sc)
			if !ok {
				continue
			}

			total := joinPaths(rootNodes, rootEdges, spurPath, transit)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Cost < candidates[j].Cost })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	in.spurDone(spurs)
	return paths
}

// KShortestPaths is the explicit-graph form of the package-level function.
func (g *Graph) KShortestPaths(src, dst, k int, transit TransitCostFunc) []Path {
	return KShortestPaths(g, src, dst, k, transit)
}

// maskedAdjacency overlays node and edge bans on an underlying adjacency.
type maskedAdjacency struct {
	base        Adjacency
	bannedNodes map[int]bool
	bannedEdges map[[2]int]map[int32]bool
}

func newMask(base Adjacency) *maskedAdjacency {
	return &maskedAdjacency{
		base:        base,
		bannedNodes: make(map[int]bool),
		bannedEdges: make(map[[2]int]map[int32]bool),
	}
}

func (m *maskedAdjacency) banNode(n int) { m.bannedNodes[n] = true }

func (m *maskedAdjacency) banEdge(from, to int, payload int32) {
	key := [2]int{from, to}
	if m.bannedEdges[key] == nil {
		m.bannedEdges[key] = make(map[int32]bool)
	}
	m.bannedEdges[key][payload] = true
}

func (m *maskedAdjacency) N() int { return m.base.N() }

// Instruments forwards the base adjacency's instruments, so spur
// searches over the mask count into the same handle as the outer search.
func (m *maskedAdjacency) Instruments() *Instruments { return instrumentsOf(m.base) }

func (m *maskedAdjacency) VisitNeighbors(node int, fn func(Edge) bool) {
	if m.bannedNodes[node] {
		return
	}
	m.base.VisitNeighbors(node, func(e Edge) bool {
		if m.bannedNodes[e.To] {
			return true
		}
		if pl := m.bannedEdges[[2]int{node, e.To}]; pl != nil && pl[e.Payload] {
			return true
		}
		return fn(e)
	})
}

// joinPaths splices root (nodes+edges) with the spur path and recomputes
// the total cost including transit charges across the junction.
func joinPaths(rootNodes []int, rootEdges []Edge, spur Path, transit TransitCostFunc) Path {
	nodes := make([]int, 0, len(rootNodes)+len(spur.Nodes)-1)
	nodes = append(nodes, rootNodes...)
	nodes = append(nodes, spur.Nodes[1:]...)
	edges := make([]Edge, 0, len(rootEdges)+len(spur.Edges))
	edges = append(edges, rootEdges...)
	edges = append(edges, spur.Edges...)
	return Path{Nodes: nodes, Edges: edges, Cost: PathCost(nodes, edges, transit)}
}

// PathCost recomputes the full cost of a path (edge costs plus transit
// charges at intermediate nodes), matching the accounting used by
// ShortestPath. Returns +Inf for structurally invalid paths.
func PathCost(nodes []int, edges []Edge, transit TransitCostFunc) float64 {
	if len(edges) != len(nodes)-1 {
		return math.Inf(1)
	}
	total := 0.0
	for i, e := range edges {
		total += e.Cost
		if transit != nil && i > 0 {
			total += transit(nodes[i], edges[i-1].Class, e.Class)
		}
	}
	return total
}

func equalPrefix(nodes, prefix []int) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

// containsPath compares by node sequence AND edge payloads, so parallel
// edges between the same nodes yield distinct paths.
func containsPath(paths []Path, p Path) bool {
	for _, q := range paths {
		if equalNodes(q.Nodes, p.Nodes) && equalPayloads(q.Edges, p.Edges) {
			return true
		}
	}
	return false
}

func equalPayloads(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Payload != b[i].Payload {
			return false
		}
	}
	return true
}

func equalNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
