package graph

import (
	"math"
	"math/rand"
	"testing"
)

// buildDiamond constructs:
//
//	0 --1--> 1 --1--> 3
//	0 --1--> 2 --5--> 3
//
// so the shortest 0->3 path is via node 1 with cost 2.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 1, 1)
	mustAdd(t, g, 0, 2, ClassISL, 2, 1)
	mustAdd(t, g, 1, 3, ClassISL, 3, 1)
	mustAdd(t, g, 2, 3, ClassISL, 4, 5)
	return g
}

func mustAdd(t *testing.T, g *Graph, from, to int, class EdgeClass, payload int32, cost float64) {
	t.Helper()
	if err := g.AddEdge(from, to, class, payload, cost); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	tests := []struct {
		name     string
		from, to int
		cost     float64
	}{
		{"from out of range", -1, 0, 1},
		{"to out of range", 0, 2, 1},
		{"negative cost", 0, 1, -1},
		{"NaN cost", 0, 1, math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.from, tt.to, ClassISL, 0, tt.cost); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestShortestPathBasic(t *testing.T) {
	g := buildDiamond(t)
	p, ok := g.ShortestPath(0, 3, nil)
	if !ok {
		t.Fatal("no path found")
	}
	if p.Cost != 2 {
		t.Errorf("cost = %v, want 2", p.Cost)
	}
	wantNodes := []int{0, 1, 3}
	if !equalNodes(p.Nodes, wantNodes) {
		t.Errorf("nodes = %v, want %v", p.Nodes, wantNodes)
	}
	if p.Hops() != 2 {
		t.Errorf("hops = %d, want 2", p.Hops())
	}
	if len(p.Edges) != 2 || p.Edges[0].Payload != 1 || p.Edges[1].Payload != 3 {
		t.Errorf("edges = %+v", p.Edges)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	if _, ok := g.ShortestPath(0, 2, nil); ok {
		t.Error("expected no path to isolated node")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := New(2)
	p, ok := g.ShortestPath(1, 1, nil)
	if !ok || len(p.Nodes) != 1 || p.Cost != 0 {
		t.Errorf("self path = %+v, ok=%v", p, ok)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	g := New(2)
	if _, ok := g.ShortestPath(-1, 1, nil); ok {
		t.Error("negative src should fail")
	}
	if _, ok := g.ShortestPath(0, 5, nil); ok {
		t.Error("out-of-range dst should fail")
	}
}

func TestShortestPathSkipsInfEdges(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, ClassISL, 0, math.Inf(1))
	mustAdd(t, g, 0, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 1, ClassISL, 0, 1)
	p, ok := g.ShortestPath(0, 1, nil)
	if !ok {
		t.Fatal("no path")
	}
	if !equalNodes(p.Nodes, []int{0, 2, 1}) {
		t.Errorf("path = %v, should avoid the +Inf edge", p.Nodes)
	}
}

func TestShortestPathWithTransitCosts(t *testing.T) {
	// Two parallel relays: node 1 charges a high transit cost, node 2 a
	// low one; edge costs alone would prefer node 1.
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 3, ClassISL, 0, 1)
	mustAdd(t, g, 0, 2, ClassISL, 0, 2)
	mustAdd(t, g, 2, 3, ClassISL, 0, 2)
	transit := func(node int, in, out EdgeClass) float64 {
		if node == 1 {
			return 100
		}
		return 1
	}
	p, ok := g.ShortestPath(0, 3, transit)
	if !ok {
		t.Fatal("no path")
	}
	if !equalNodes(p.Nodes, []int{0, 2, 3}) {
		t.Errorf("path = %v, want detour through node 2", p.Nodes)
	}
	if p.Cost != 5 { // 2 + 2 edges + 1 transit
		t.Errorf("cost = %v, want 5", p.Cost)
	}
}

func TestShortestPathTransitInfBlocksNode(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 3, ClassISL, 0, 1)
	mustAdd(t, g, 0, 2, ClassISL, 0, 10)
	mustAdd(t, g, 2, 3, ClassISL, 0, 10)
	transit := func(node int, in, out EdgeClass) float64 {
		if node == 1 {
			return math.Inf(1) // battery-infeasible satellite
		}
		return 0
	}
	p, ok := g.ShortestPath(0, 3, transit)
	if !ok {
		t.Fatal("no path")
	}
	if !equalNodes(p.Nodes, []int{0, 2, 3}) {
		t.Errorf("path = %v, want route around blocked node", p.Nodes)
	}
}

func TestShortestPathClassDependentTransit(t *testing.T) {
	// Gateway role pricing: node 1 is entered via USL from the source and
	// must pay an ingress-gateway charge; entering it via ISL would be
	// cheaper, mirroring Eq. (1)'s role distinction.
	g := New(4)
	mustAdd(t, g, 0, 1, ClassUSL, 0, 0) // src -> gateway
	mustAdd(t, g, 1, 2, ClassISL, 0, 0)
	mustAdd(t, g, 2, 3, ClassUSL, 0, 0) // egress -> dst
	var seen [][2]EdgeClass
	transit := func(node int, in, out EdgeClass) float64 {
		seen = append(seen, [2]EdgeClass{in, out})
		return 0
	}
	p, ok := g.ShortestPath(0, 3, transit)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 3 {
		t.Fatalf("hops = %d", p.Hops())
	}
	// Node 1 must have been charged with in=USL,out=ISL and node 2 with
	// in=ISL,out=USL.
	want := map[[2]EdgeClass]bool{
		{ClassUSL, ClassISL}: false,
		{ClassISL, ClassUSL}: false,
	}
	for _, s := range seen {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for k, v := range want {
		if !v {
			t.Errorf("transit was never consulted with classes %v", k)
		}
	}
}

func TestShortestPathSourceNotCharged(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 2, ClassISL, 0, 1)
	charged := map[int]bool{}
	transit := func(node int, in, out EdgeClass) float64 {
		charged[node] = true
		return 0
	}
	if _, ok := g.ShortestPath(0, 2, transit); !ok {
		t.Fatal("no path")
	}
	if charged[0] {
		t.Error("source node was charged a transit cost")
	}
	if charged[2] {
		t.Error("destination node was charged a transit cost")
	}
	if !charged[1] {
		t.Error("intermediate node was not charged")
	}
}

func TestHopLimitedMatchesDijkstraWhenLoose(t *testing.T) {
	// Random graphs: with a generous hop budget the hop-limited DP must
	// find the same optimal cost as Dijkstra.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 12
		g := New(n)
		for i := 0; i < 40; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			mustAdd(t, g, from, to, ClassISL, int32(i), 1+rng.Float64()*9)
		}
		src, dst := 0, n-1
		pd, okD := g.ShortestPath(src, dst, nil)
		ph, okH := g.ShortestPathHopLimited(src, dst, n, nil)
		if okD != okH {
			t.Fatalf("trial %d: reachability disagreement dijkstra=%v hoplimited=%v", trial, okD, okH)
		}
		if okD && math.Abs(pd.Cost-ph.Cost) > 1e-9 {
			t.Fatalf("trial %d: cost disagreement %v vs %v", trial, pd.Cost, ph.Cost)
		}
	}
}

func TestHopLimitedRespectsLimit(t *testing.T) {
	// Cheap long path (3 hops, cost 3) vs expensive short path (1 hop, cost 10).
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 3, ClassISL, 0, 1)
	mustAdd(t, g, 0, 3, ClassISL, 0, 10)

	p, ok := g.ShortestPathHopLimited(0, 3, 3, nil)
	if !ok || p.Cost != 3 {
		t.Errorf("loose limit: cost = %v, ok=%v, want 3", p.Cost, ok)
	}
	p, ok = g.ShortestPathHopLimited(0, 3, 2, nil)
	if !ok || p.Cost != 10 {
		t.Errorf("tight limit: cost = %v, ok=%v, want 10 via direct edge", p.Cost, ok)
	}
	if _, ok := g.ShortestPathHopLimited(0, 3, 0, nil); ok {
		t.Error("zero hops should fail for distinct nodes")
	}
}

func TestHopLimitedWithTransit(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 3, ClassISL, 0, 1)
	mustAdd(t, g, 0, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 3, ClassISL, 0, 1)
	transit := func(node int, in, out EdgeClass) float64 {
		if node == 1 {
			return 50
		}
		return 0
	}
	p, ok := g.ShortestPathHopLimited(0, 3, 5, transit)
	if !ok {
		t.Fatal("no path")
	}
	if !equalNodes(p.Nodes, []int{0, 2, 3}) {
		t.Errorf("path = %v, want around expensive node", p.Nodes)
	}
}

func TestMinHopPath(t *testing.T) {
	// Min-hop ignores costs entirely.
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 100)
	mustAdd(t, g, 1, 3, ClassISL, 0, 100)
	mustAdd(t, g, 0, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 1, ClassISL, 0, 1)
	mustAdd(t, g, 0, 3, ClassISL, 7, 1000)

	p, ok := g.MinHopPath(0, 3)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 1 {
		t.Errorf("hops = %d, want 1 (direct edge)", p.Hops())
	}
	if p.Edges[0].Payload != 7 {
		t.Errorf("payload = %d, want 7", p.Edges[0].Payload)
	}
	if p.Cost != 1000 {
		t.Errorf("cost = %v, want 1000", p.Cost)
	}
}

func TestMinHopPathSkipsInfEdges(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 2, ClassISL, 0, math.Inf(1))
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 2, ClassISL, 0, 1)
	p, ok := g.MinHopPath(0, 2)
	if !ok || p.Hops() != 2 {
		t.Errorf("path = %+v ok=%v, want 2-hop detour", p, ok)
	}
}

func TestMinHopPathUnreachableAndSelf(t *testing.T) {
	g := New(3)
	if _, ok := g.MinHopPath(0, 2); ok {
		t.Error("unreachable should fail")
	}
	if p, ok := g.MinHopPath(2, 2); !ok || len(p.Nodes) != 1 {
		t.Error("self path should be trivial")
	}
}

func TestGraphCounts(t *testing.T) {
	g := buildDiamond(t)
	if g.N() != 4 {
		t.Errorf("N = %d", g.N())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if len(g.Neighbors(0)) != 2 {
		t.Errorf("neighbors of 0 = %d", len(g.Neighbors(0)))
	}
}

// Property: on random graphs, Dijkstra's result cost equals PathCost
// recomputation, and is no worse than any single direct edge.
func TestShortestPathCostConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 10
		g := New(n)
		for i := 0; i < 30; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			mustAdd(t, g, from, to, ClassISL, 0, rng.Float64()*10)
		}
		p, ok := g.ShortestPath(0, n-1, nil)
		if !ok {
			continue
		}
		recomputed := PathCost(p.Nodes, p.Edges, nil)
		if math.Abs(recomputed-p.Cost) > 1e-9 {
			t.Fatalf("trial %d: PathCost %v != search cost %v", trial, recomputed, p.Cost)
		}
		for _, e := range g.Neighbors(0) {
			if e.To == n-1 && e.Cost < p.Cost-1e-9 {
				t.Fatalf("trial %d: direct edge cheaper than shortest path", trial)
			}
		}
	}
}
