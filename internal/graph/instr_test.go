package graph

import (
	"testing"

	"spacebooking/internal/obs"
)

// lineGraph builds 0 -> 1 -> ... -> n-1 with unit ISL edges.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1, ClassISL, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSearchInstruments(t *testing.T) {
	reg := obs.New()
	pops := reg.Counter("graph.dijkstra.heap_pops")
	relax := reg.Counter("graph.dijkstra.edge_relaxations")
	spurs := reg.Counter("graph.yen.spur_iterations")

	g := lineGraph(t, 6)
	g.Instrument(&Instruments{HeapPops: pops, EdgeRelaxations: relax, YenSpurIterations: spurs})
	if _, ok := g.ShortestPath(0, 5, nil); !ok {
		t.Fatal("path not found")
	}
	if pops.Value() == 0 || relax.Value() == 0 {
		t.Fatalf("dijkstra counters not advanced: pops=%d relax=%d", pops.Value(), relax.Value())
	}

	before := relax.Value()
	if _, ok := g.ShortestPathHopLimited(0, 5, 8, nil); !ok {
		t.Fatal("hop-limited path not found")
	}
	if relax.Value() <= before {
		t.Fatal("hop-limited search did not count relaxations")
	}

	if got := g.KShortestPaths(0, 5, 2, nil); len(got) == 0 {
		t.Fatal("yen found no paths")
	}
	if spurs.Value() == 0 {
		t.Fatal("yen spur counter not advanced")
	}
}

// TestInstrumentsAreHandleLocal verifies the concurrency contract of the
// explicit-handle design: searches over a graph advance only the handle
// that graph carries, so two graphs wired to different registries never
// cross-count — and a detached graph counts nothing.
func TestInstrumentsAreHandleLocal(t *testing.T) {
	regA, regB := obs.New(), obs.New()
	a := lineGraph(t, 6)
	a.Instrument(&Instruments{HeapPops: regA.Counter("pops")})
	b := lineGraph(t, 6)
	b.Instrument(&Instruments{HeapPops: regB.Counter("pops")})
	plain := lineGraph(t, 6)

	if _, ok := a.ShortestPath(0, 5, nil); !ok {
		t.Fatal("path not found")
	}
	if _, ok := plain.ShortestPath(0, 5, nil); !ok {
		t.Fatal("path not found")
	}
	if got := regA.Counter("pops").Value(); got == 0 {
		t.Fatal("instrumented graph did not count")
	}
	if got := regB.Counter("pops").Value(); got != 0 {
		t.Fatalf("graph B's registry advanced by %d from another graph's search", got)
	}
}

// TestInstrumentedSearchAllocParity verifies the acceptance criterion
// that instrumentation adds no allocations to the search hot path: the
// per-search allocation count is identical with instruments detached
// (the nil fast path) and attached.
func TestInstrumentedSearchAllocParity(t *testing.T) {
	g := lineGraph(t, 16)
	search := func() {
		if _, ok := g.ShortestPath(0, 15, nil); !ok {
			t.Fatal("path not found")
		}
	}

	g.Instrument(nil)
	detached := testing.AllocsPerRun(200, search)
	reg := obs.New()
	g.Instrument(&Instruments{
		HeapPops:          reg.Counter("pops"),
		EdgeRelaxations:   reg.Counter("relax"),
		YenSpurIterations: reg.Counter("spurs"),
	})
	attached := testing.AllocsPerRun(200, search)

	if detached != attached {
		t.Fatalf("allocs per search: detached=%v attached=%v, want identical", detached, attached)
	}
}
