package graph

import "math"

// Scratch holds the reusable working memory of the path searches: the
// Dijkstra dist/prev arrays and priority queue, the hop-limited DP's
// cur/next cost ladders and its hop-indexed predecessor table, and the
// reversal buffers of path reconstruction. One Scratch serves any number
// of sequential searches over graphs of any size (arrays grow on demand
// and are retained at high-water mark), so a caller that owns one — an
// admission algorithm, a Yen run — pays zero search allocations after
// warm-up beyond the returned Path itself.
//
// A Scratch is single-owner: two concurrent searches must use two
// Scratches.
type Scratch struct {
	heap searchHeap
	dist []float64
	prev []predLink

	// Hop-limited DP ladders: cur/next cost rows and the flattened
	// prevAt table, row h at preds[h*numStates : (h+1)*numStates].
	cur   []float64
	next  []float64
	preds []hopPred

	// Path-reconstruction reversal buffers.
	nodesRev []int
	edgesRev []Edge
}

// hopPred records how a hop-limited DP state was reached: from which
// (hop, state) and over which edge.
type hopPred struct {
	hop   int
	state int
	edge  Edge
}

// NewScratch returns an empty scratch; arrays are sized lazily by the
// first search that uses them.
func NewScratch() *Scratch { return &Scratch{} }

// ensureDijkstra sizes and re-initialises the Dijkstra arrays for a
// search over numStates states: dist all +Inf, prev all absent.
func (sc *Scratch) ensureDijkstra(numStates int) {
	if cap(sc.dist) < numStates {
		sc.dist = make([]float64, numStates)
		sc.prev = make([]predLink, numStates)
	}
	sc.dist = sc.dist[:numStates]
	sc.prev = sc.prev[:numStates]
	inf := math.Inf(1)
	for i := range sc.dist {
		sc.dist[i] = inf
		sc.prev[i] = predLink{state: -1}
	}
}

// ensureHopLadders sizes the hop-limited DP rows: cur/next over
// numStates and maxHops+1 predecessor rows. Rows are (re-)initialised by
// the DP itself, hop by hop.
func (sc *Scratch) ensureHopLadders(numStates, maxHops int) {
	if cap(sc.cur) < numStates {
		sc.cur = make([]float64, numStates)
		sc.next = make([]float64, numStates)
	}
	sc.cur = sc.cur[:numStates]
	sc.next = sc.next[:numStates]
	total := (maxHops + 1) * numStates
	if cap(sc.preds) < total {
		sc.preds = make([]hopPred, total)
	}
	sc.preds = sc.preds[:total]
}

// buildPath materialises a path from reversal buffers filled back to
// front: only the two returned slices are allocated.
func (sc *Scratch) buildPath(cost float64) Path {
	nodes := make([]int, len(sc.nodesRev))
	for i := range sc.nodesRev {
		nodes[i] = sc.nodesRev[len(sc.nodesRev)-1-i]
	}
	edges := make([]Edge, len(sc.edgesRev))
	for i := range sc.edgesRev {
		edges[i] = sc.edgesRev[len(sc.edgesRev)-1-i]
	}
	return Path{Nodes: nodes, Edges: edges, Cost: cost}
}
