package graph

import (
	"math/rand"
	"testing"
)

// benchGraph builds a dense-ish random digraph big enough that the
// search arrays dominate allocation, with a sure src->dst route.
func benchGraph(n int) *Graph {
	rng := rand.New(rand.NewSource(9))
	g := New(n)
	for i := 0; i < n-1; i++ {
		// Backbone guarantees reachability.
		_ = g.AddEdge(i, i+1, ClassISL, int32(i), 1+rng.Float64())
	}
	for i := 0; i < 4*n; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		_ = g.AddEdge(from, to, ClassISL, int32(i), rng.Float64()*10)
	}
	return g
}

// BenchmarkShortestPath measures the allocate-per-call Dijkstra.
func BenchmarkShortestPath(b *testing.B) {
	g := benchGraph(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ShortestPath(g, 0, 255, nil); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkShortestPathScratch reuses one Scratch across calls — the
// configuration every hot caller uses via the netstate fast path.
func BenchmarkShortestPathScratch(b *testing.B) {
	g := benchGraph(256)
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ShortestPathWith(g, 0, 255, nil, sc); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkHopLimited measures the allocate-per-call hop-limited DP,
// whose per-hop predecessor ladders used to be the dominant allocation
// churn of hop-capped searches.
func BenchmarkHopLimited(b *testing.B) {
	g := benchGraph(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ShortestPathHopLimited(g, 0, 255, 12, nil); !ok {
			b.Fatal("no path")
		}
	}
}

// BenchmarkHopLimitedScratch reuses one Scratch (dist rows and the
// hop-indexed predecessor ladder) across calls.
func BenchmarkHopLimitedScratch(b *testing.B) {
	g := benchGraph(256)
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ShortestPathHopLimitedWith(g, 0, 255, 12, nil, sc); !ok {
			b.Fatal("no path")
		}
	}
}
