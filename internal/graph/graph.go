// Package graph provides the hand-rolled graph algorithms the simulator
// needs: a compact adjacency-list digraph, Dijkstra shortest paths with
// optional per-node *transit* costs that depend on the classes of the
// incoming and outgoing edges (how CEAR prices satellite energy per
// Eq. (1) of the paper), a hop-limited Bellman-Ford variant, BFS min-hop
// search, and Yen's K-shortest-paths.
package graph

import (
	"fmt"
	"math"
)

// EdgeClass tags an edge with a small integer class. CEAR uses classes to
// distinguish inter-satellite links from user-satellite links, because a
// satellite's energy draw depends on the classes of the links it receives
// on and transmits on.
type EdgeClass int8

// Edge classes used by the LSN topology. Start at 1 so the zero value is
// recognisably "unset"; ClassNone marks the virtual state of a path
// source (no incoming edge).
const (
	ClassNone EdgeClass = 0
	ClassISL  EdgeClass = 1
	ClassUSL  EdgeClass = 2

	numClasses = 3
)

// NumClasses is the size of the edge-class value space (including
// ClassNone). Specialised searches outside this package — the routing
// fast path over netstate's flat slot views — use it to replicate the
// (node, incoming-class) state encoding node*NumClasses + int(class).
const NumClasses = numClasses

// Edge is a directed edge.
type Edge struct {
	To      int
	Class   EdgeClass
	Payload int32   // caller-defined identifier (e.g. link-ledger index)
	Cost    float64 // non-negative base cost; +Inf edges are skipped
}

// Adjacency is the graph abstraction the searches run over. Implicit
// graphs (like the simulator's per-slot LSN view, which combines a static
// ISL grid with per-request user links and computes congestion-priced
// edge costs on the fly) implement it without materialising edge lists.
type Adjacency interface {
	// N returns the number of nodes; valid node indices are 0..N()-1.
	N() int
	// VisitNeighbors calls fn for every outgoing edge of node. Returning
	// false stops the enumeration early.
	VisitNeighbors(node int, fn func(Edge) bool)
}

// Graph is a directed graph over nodes 0..N-1 with explicit adjacency
// lists. It implements Adjacency.
type Graph struct {
	adj   [][]Edge
	instr *Instruments
}

var _ Adjacency = (*Graph)(nil)

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Instrument attaches (or with nil, detaches) the counters that searches
// over this graph advance. Plain field write: attach before sharing the
// graph across goroutines.
func (g *Graph) Instrument(in *Instruments) { g.instr = in }

// Instruments implements Instrumented.
func (g *Graph) Instruments() *Instruments { return g.instr }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// AddEdge appends a directed edge. Costs must be non-negative (Dijkstra);
// an edge with +Inf cost is stored but never traversed.
func (g *Graph) AddEdge(from, to int, class EdgeClass, payload int32, cost float64) error {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		return fmt.Errorf("graph: edge %d->%d outside node range [0,%d)", from, to, len(g.adj))
	}
	if cost < 0 || math.IsNaN(cost) {
		return fmt.Errorf("graph: edge %d->%d has invalid cost %v", from, to, cost)
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Class: class, Payload: payload, Cost: cost})
	return nil
}

// Neighbors returns the adjacency list of a node. Callers must not
// modify the returned slice.
func (g *Graph) Neighbors(node int) []Edge {
	return g.adj[node]
}

// VisitNeighbors implements Adjacency.
func (g *Graph) VisitNeighbors(node int, fn func(Edge) bool) {
	for _, e := range g.adj[node] {
		if !fn(e) {
			return
		}
	}
}

// Path is the result of a path search.
type Path struct {
	// Nodes lists the path vertices from source to destination inclusive.
	Nodes []int
	// Edges lists the traversed edges; len(Edges) == len(Nodes)-1.
	Edges []Edge
	// Cost is the total path cost including transit costs.
	Cost float64
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int { return len(p.Edges) }

// TransitCostFunc prices passing *through* a node: the cost incurred at
// `node` when it is entered via an edge of class in and left via an edge
// of class out. Source and destination nodes are not charged. Returning
// +Inf makes the node untraversable for that class pair.
type TransitCostFunc func(node int, in, out EdgeClass) float64
