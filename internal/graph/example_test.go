package graph_test

import (
	"fmt"

	"spacebooking/internal/graph"
)

// Role-dependent transit costs: a satellite's energy price depends on
// whether it is entered and left via inter-satellite links or user
// links, so the search runs over (node, incoming-class) states.
func ExampleShortestPath() {
	g := graph.New(4)
	// src(0) -> gateway(1) -> relay(2) -> dst(3)
	_ = g.AddEdge(0, 1, graph.ClassUSL, 0, 1)
	_ = g.AddEdge(1, 2, graph.ClassISL, 0, 1)
	_ = g.AddEdge(2, 3, graph.ClassUSL, 0, 1)

	transit := func(node int, in, out graph.EdgeClass) float64 {
		if in == graph.ClassUSL || out == graph.ClassUSL {
			return 10 // gateways pay the user-link energy premium
		}
		return 1 // relays are cheap
	}
	p, ok := graph.ShortestPath(g, 0, 3, transit)
	fmt.Println(ok, p.Nodes, p.Cost)
	// Output:
	// true [0 1 2 3] 23
}

// Yen's algorithm enumerates alternatives in cost order.
func ExampleKShortestPaths() {
	g := graph.New(4)
	_ = g.AddEdge(0, 1, graph.ClassISL, 0, 1)
	_ = g.AddEdge(1, 3, graph.ClassISL, 0, 1)
	_ = g.AddEdge(0, 2, graph.ClassISL, 0, 2)
	_ = g.AddEdge(2, 3, graph.ClassISL, 0, 2)

	for _, p := range graph.KShortestPaths(g, 0, 3, 2, nil) {
		fmt.Println(p.Nodes, p.Cost)
	}
	// Output:
	// [0 1 3] 2
	// [0 2 3] 4
}
