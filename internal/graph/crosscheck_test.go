package graph

import (
	"math"
	"math/rand"
	"testing"
)

// enumerateSimplePaths lists every loopless path from src to dst by DFS —
// exponential, fine for the tiny graphs used here.
func enumerateSimplePaths(g *Graph, src, dst int, transit TransitCostFunc) []Path {
	var out []Path
	visited := make([]bool, g.N())
	var nodes []int
	var edges []Edge

	var dfs func(at int)
	dfs = func(at int) {
		if at == dst {
			cost := PathCost(append([]int(nil), nodes...), append([]Edge(nil), edges...), transit)
			if !math.IsInf(cost, 1) {
				out = append(out, Path{
					Nodes: append([]int(nil), nodes...),
					Edges: append([]Edge(nil), edges...),
					Cost:  cost,
				})
			}
			return
		}
		for _, e := range g.Neighbors(at) {
			if visited[e.To] || math.IsInf(e.Cost, 1) {
				continue
			}
			visited[e.To] = true
			nodes = append(nodes, e.To)
			edges = append(edges, e)
			dfs(e.To)
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
			visited[e.To] = false
		}
	}
	visited[src] = true
	nodes = append(nodes, src)
	dfs(src)
	return out
}

// TestDijkstraMatchesBruteForce cross-checks the state-space Dijkstra
// against exhaustive enumeration on random small graphs, with and
// without transit costs.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 7
		g := New(n)
		for i := 0; i < 16; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			class := ClassISL
			if rng.Intn(3) == 0 {
				class = ClassUSL
			}
			mustAdd(t, g, from, to, class, int32(i), rng.Float64()*10)
		}
		var transit TransitCostFunc
		if trial%2 == 1 {
			costs := make([]float64, n)
			for i := range costs {
				costs[i] = rng.Float64() * 5
			}
			transit = func(node int, in, out EdgeClass) float64 {
				c := costs[node]
				if in == ClassUSL {
					c *= 2 // class-dependent, exercising the state space
				}
				return c
			}
		}

		all := enumerateSimplePaths(g, 0, n-1, transit)
		got, ok := ShortestPath(g, 0, n-1, transit)
		if len(all) == 0 {
			// Brute force enumerates only simple paths; Dijkstra's state
			// space could still find a walk, but with non-negative costs
			// an optimal walk implies an equal-or-better simple path
			// EXCEPT when class-dependent transit makes revisits useful.
			// Plain reachability must still agree when transit is nil.
			if transit == nil && ok {
				t.Fatalf("trial %d: dijkstra found a path, brute force none", trial)
			}
			continue
		}
		best := math.Inf(1)
		for _, p := range all {
			if p.Cost < best {
				best = p.Cost
			}
		}
		if !ok {
			t.Fatalf("trial %d: brute force found cost %v, dijkstra nothing", trial, best)
		}
		// Dijkstra may use a node twice via different classes, so it can
		// only ever be <= the best simple path.
		if got.Cost > best+1e-9 {
			t.Fatalf("trial %d: dijkstra %v worse than brute force %v", trial, got.Cost, best)
		}
	}
}

// TestYenMatchesBruteForce verifies Yen's K shortest paths against the
// sorted exhaustive enumeration.
func TestYenMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		n := 6
		g := New(n)
		for i := 0; i < 12; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			mustAdd(t, g, from, to, ClassISL, int32(i), 0.5+rng.Float64()*9)
		}
		all := enumerateSimplePaths(g, 0, n-1, nil)
		if len(all) == 0 {
			continue
		}
		// Sort enumeration by cost.
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[j].Cost < all[i].Cost {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		k := 4
		got := KShortestPaths(g, 0, n-1, k, nil)
		wantCount := k
		if len(all) < k {
			wantCount = len(all)
		}
		if len(got) != wantCount {
			t.Fatalf("trial %d: yen returned %d paths, want %d", trial, len(got), wantCount)
		}
		for i := range got {
			if math.Abs(got[i].Cost-all[i].Cost) > 1e-9 {
				t.Fatalf("trial %d: path %d cost %v, brute force %v", trial, i, got[i].Cost, all[i].Cost)
			}
		}
	}
}

// TestHopLimitedMatchesBruteForceUnderCap verifies the hop-limited DP
// against enumeration filtered by hop count.
func TestHopLimitedMatchesBruteForceUnderCap(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 7
		g := New(n)
		for i := 0; i < 14; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			mustAdd(t, g, from, to, ClassISL, int32(i), rng.Float64()*10)
		}
		for _, cap := range []int{1, 2, 3} {
			all := enumerateSimplePaths(g, 0, n-1, nil)
			best := math.Inf(1)
			for _, p := range all {
				if p.Hops() <= cap && p.Cost < best {
					best = p.Cost
				}
			}
			got, ok := ShortestPathHopLimited(g, 0, n-1, cap, nil)
			if math.IsInf(best, 1) {
				// A capped walk cannot beat simple paths under a hop cap
				// this small unless it revisits... which costs more edges.
				// DP may still find nothing; both must agree.
				if ok && got.Hops() <= cap && got.Cost < best {
					continue // found a walk cheaper than any simple path: impossible with cap<=3 and nonneg costs
				}
				if ok {
					t.Fatalf("trial %d cap %d: DP found %v, brute force none", trial, cap, got.Cost)
				}
				continue
			}
			if !ok {
				t.Fatalf("trial %d cap %d: brute force %v, DP nothing", trial, cap, best)
			}
			if math.Abs(got.Cost-best) > 1e-9 {
				t.Fatalf("trial %d cap %d: DP %v != brute force %v", trial, cap, got.Cost, best)
			}
		}
	}
}
