package graph

import (
	"time"

	"spacebooking/internal/obs"
)

// Instruments holds the package's observability counters. There is no
// package-global attachment point: each run threads its own handle, so
// concurrent searches over different states never write each other's
// counters. Explicit graphs carry a handle via (*Graph).Instrument;
// implicit adjacencies (like netstate.View) expose one through the
// optional Instrumented interface, which the searches probe at entry.
type Instruments struct {
	// HeapPops counts priority-queue pops in Dijkstra searches.
	HeapPops *obs.Counter
	// EdgeRelaxations counts edges examined across all searches
	// (Dijkstra and the hop-limited DP).
	EdgeRelaxations *obs.Counter
	// YenSpurIterations counts spur-node iterations in KShortestPaths.
	YenSpurIterations *obs.Counter
	// FastPathSearches counts searches served by the devirtualized flat
	// (CSR) routing fast path rather than the generic Adjacency path.
	FastPathSearches *obs.Counter
	// PrunedLabels counts search labels discarded by budget pruning:
	// states whose accumulated plan price already exceeded the request's
	// valuation, so admission would reject any completion through them.
	PrunedLabels *obs.Counter
	// SearchNanos accumulates wall nanoseconds spent inside path
	// searches. Nil unless trace detail is enabled (netstate
	// EnableTraceDetail): the serving layer's per-request phase
	// breakdown needs it, batch runs and benchmarks never pay the two
	// clock reads per search. Search time includes the transit-cost
	// callbacks, so it overlaps PricingNanos; consumers subtract.
	SearchNanos *obs.Counter
	// PricingNanos accumulates wall nanoseconds spent in the
	// deficit-pricing walks invoked from inside searches. It lives here
	// (not on energy.Instruments) because this struct is the per-State
	// handle the pricing loop already carries; nil unless trace detail
	// is enabled.
	PricingNanos *obs.Counter
}

// Instrumented is the optional interface an Adjacency implements to
// route search counters somewhere. A nil return keeps the searches on
// their no-op branches.
type Instrumented interface {
	Instruments() *Instruments
}

// instrumentsOf extracts the adjacency's instruments, if it carries
// any. One interface type-assertion per search call, never per pop.
func instrumentsOf(g Adjacency) *Instruments {
	if h, ok := g.(Instrumented); ok {
		return h.Instruments()
	}
	return nil
}

// searchDone flushes one search's locally accumulated pop count.
// Searches tally pops into a stack int and flush once per call, so the
// enabled path costs one atomic add per search rather than one per pop.
func (in *Instruments) searchDone(pops int64) {
	if in == nil {
		return
	}
	in.HeapPops.Add(pops)
}

// relax counts one examined edge. Called inside the neighbor-visit
// closures, which capture `in` read-only — a by-value capture, so the
// disabled path stays a single branch with no added allocation.
func (in *Instruments) relax() {
	if in == nil {
		return
	}
	in.EdgeRelaxations.Inc()
}

// spurDone flushes one KShortestPaths call's spur-iteration count.
func (in *Instruments) spurDone(spurs int64) {
	if in == nil {
		return
	}
	in.YenSpurIterations.Add(spurs)
}

// searchTimerStart returns the wall clock when search timing is
// attached, or the zero time — no clock read, no accumulation — when it
// is not. Pair with a deferred searchTimerEnd.
func (in *Instruments) searchTimerStart() time.Time {
	if in == nil || in.SearchNanos == nil {
		return time.Time{}
	}
	return time.Now()
}

// searchTimerEnd accumulates the elapsed search time for a non-zero
// start.
func (in *Instruments) searchTimerEnd(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	in.SearchNanos.Add(time.Since(t0).Nanoseconds())
}
