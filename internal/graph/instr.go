package graph

import (
	"sync/atomic"

	"spacebooking/internal/obs"
)

// Instruments holds the package's observability counters. The search
// functions are package-level (no receiver to hang a registry on) and
// sit at the bottom of every admission decision, so instruments attach
// globally: sim wires them when a run carries a registry, and they
// count across all callers (CEAR, baselines, Yen) until replaced.
type Instruments struct {
	// HeapPops counts priority-queue pops in Dijkstra searches.
	HeapPops *obs.Counter
	// EdgeRelaxations counts edges examined across all searches
	// (Dijkstra and the hop-limited DP).
	EdgeRelaxations *obs.Counter
	// YenSpurIterations counts spur-node iterations in KShortestPaths.
	YenSpurIterations *obs.Counter
}

// instruments is read per search call (one atomic load), never per pop.
var instruments atomic.Pointer[Instruments]

// SetInstruments attaches (or with nil, detaches) the package counters.
// Safe to call concurrently with running searches: in-flight searches
// finish counting into whichever instruments they loaded at entry.
func SetInstruments(in *Instruments) { instruments.Store(in) }

// searchDone flushes one search's locally accumulated pop count.
// Searches tally pops into a stack int and flush once per call, so the
// enabled path costs one atomic add per search rather than one per pop.
func (in *Instruments) searchDone(pops int64) {
	if in == nil {
		return
	}
	in.HeapPops.Add(pops)
}

// relax counts one examined edge. Called inside the neighbor-visit
// closures, which capture `in` read-only — a by-value capture, so the
// disabled path stays a single branch with no added allocation.
func (in *Instruments) relax() {
	if in == nil {
		return
	}
	in.EdgeRelaxations.Inc()
}

// spurDone flushes one KShortestPaths call's spur-iteration count.
func (in *Instruments) spurDone(spurs int64) {
	if in == nil {
		return
	}
	in.YenSpurIterations.Add(spurs)
}
