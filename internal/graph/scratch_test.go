package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestScratchReuseMatchesFreshAllocation hammers one shared Scratch
// across many searches on different random graphs and both kernels, and
// requires results identical to the allocate-per-call path. This is the
// guard against stale-state bleed: a stamp or ladder not reset between
// calls would change some path on some trial.
func TestScratchReuseMatchesFreshAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sc := NewScratch()
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(6)
		g := New(n)
		edges := 2 * n
		for i := 0; i < edges; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			class := ClassISL
			if rng.Intn(4) == 0 {
				class = ClassUSL
			}
			mustAdd(t, g, from, to, class, int32(i), rng.Float64()*10)
		}
		var transit TransitCostFunc
		if trial%3 == 1 {
			costs := make([]float64, n)
			for i := range costs {
				costs[i] = rng.Float64() * 4
			}
			transit = func(node int, in, out EdgeClass) float64 {
				c := costs[node]
				if in == ClassUSL {
					c *= 2
				}
				return c
			}
		}
		src, dst := rng.Intn(n), rng.Intn(n)

		pWant, okWant := ShortestPath(g, src, dst, transit)
		pGot, okGot := ShortestPathWith(g, src, dst, transit, sc)
		if okWant != okGot || !reflect.DeepEqual(pWant, pGot) {
			t.Fatalf("trial %d: dijkstra diverged with scratch\nfresh:   ok=%v %+v\nscratch: ok=%v %+v",
				trial, okWant, pWant, okGot, pGot)
		}

		maxHops := 1 + rng.Intn(4)
		hWant, okWant := ShortestPathHopLimited(g, src, dst, maxHops, transit)
		hGot, okGot := ShortestPathHopLimitedWith(g, src, dst, maxHops, transit, sc)
		if okWant != okGot || !reflect.DeepEqual(hWant, hGot) {
			t.Fatalf("trial %d: hop-limited (cap %d) diverged with scratch\nfresh:   ok=%v %+v\nscratch: ok=%v %+v",
				trial, maxHops, okWant, hWant, okGot, hGot)
		}
	}
}
