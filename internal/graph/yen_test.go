package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestKShortestPathsBasic(t *testing.T) {
	// Classic example: three distinct routes of costs 5, 7, 8.
	g := New(6)
	mustAdd(t, g, 0, 1, ClassISL, 0, 3)
	mustAdd(t, g, 1, 5, ClassISL, 0, 2) // 0-1-5: 5
	mustAdd(t, g, 0, 2, ClassISL, 0, 2)
	mustAdd(t, g, 2, 5, ClassISL, 0, 5) // 0-2-5: 7
	mustAdd(t, g, 0, 3, ClassISL, 0, 4)
	mustAdd(t, g, 3, 4, ClassISL, 0, 2)
	mustAdd(t, g, 4, 5, ClassISL, 0, 2) // 0-3-4-5: 8

	paths := g.KShortestPaths(0, 5, 3, nil)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wantCosts := []float64{5, 7, 8}
	for i, p := range paths {
		if math.Abs(p.Cost-wantCosts[i]) > 1e-9 {
			t.Errorf("path %d cost = %v, want %v", i, p.Cost, wantCosts[i])
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	g := New(5)
	// Dense-ish graph with a cycle 1->2->3->1.
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 3, ClassISL, 0, 1)
	mustAdd(t, g, 3, 1, ClassISL, 0, 1)
	mustAdd(t, g, 3, 4, ClassISL, 0, 1)
	mustAdd(t, g, 2, 4, ClassISL, 0, 5)

	paths := g.KShortestPaths(0, 4, 5, nil)
	for _, p := range paths {
		seen := make(map[int]bool)
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("path %v revisits node %d", p.Nodes, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsSortedAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(12)
	for i := 0; i < 60; i++ {
		from, to := rng.Intn(12), rng.Intn(12)
		if from == to {
			continue
		}
		mustAdd(t, g, from, to, ClassISL, int32(i), 1+rng.Float64()*5)
	}
	paths := g.KShortestPaths(0, 11, 6, nil)
	if len(paths) == 0 {
		t.Skip("random graph disconnected")
	}
	if !sort.SliceIsSorted(paths, func(i, j int) bool { return paths[i].Cost < paths[j].Cost }) {
		t.Error("paths not sorted by cost")
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			// Parallel edges make same-node paths legitimate; identity
			// includes the traversed edge payloads.
			if equalNodes(paths[i].Nodes, paths[j].Nodes) && equalPayloads(paths[i].Edges, paths[j].Edges) {
				t.Errorf("paths %d and %d identical: %v", i, j, paths[i].Nodes)
			}
		}
	}
	// First path must equal the Dijkstra optimum.
	best, _ := g.ShortestPath(0, 11, nil)
	if math.Abs(paths[0].Cost-best.Cost) > 1e-9 {
		t.Errorf("first path cost %v != dijkstra %v", paths[0].Cost, best.Cost)
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	if got := g.KShortestPaths(0, 2, 3, nil); got != nil {
		t.Errorf("unreachable: got %v, want nil", got)
	}
	if got := g.KShortestPaths(0, 1, 0, nil); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	// Only one simple path exists; asking for more returns just it.
	got := g.KShortestPaths(0, 1, 5, nil)
	if len(got) != 1 {
		t.Errorf("got %d paths, want 1", len(got))
	}
}

func TestKShortestPathsWithTransit(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, ClassISL, 0, 1)
	mustAdd(t, g, 1, 3, ClassISL, 0, 1)
	mustAdd(t, g, 0, 2, ClassISL, 0, 1)
	mustAdd(t, g, 2, 3, ClassISL, 0, 1)
	transit := func(node int, in, out EdgeClass) float64 {
		if node == 1 {
			return 10
		}
		return 0
	}
	paths := g.KShortestPaths(0, 3, 2, transit)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if !equalNodes(paths[0].Nodes, []int{0, 2, 3}) {
		t.Errorf("first path = %v, want cheap-transit route", paths[0].Nodes)
	}
	if math.Abs(paths[0].Cost-2) > 1e-9 || math.Abs(paths[1].Cost-12) > 1e-9 {
		t.Errorf("costs = %v, %v, want 2 and 12", paths[0].Cost, paths[1].Cost)
	}
}

func TestPathCostInvalid(t *testing.T) {
	if c := PathCost([]int{0, 1}, nil, nil); !math.IsInf(c, 1) {
		t.Errorf("mismatched nodes/edges should be +Inf, got %v", c)
	}
}
