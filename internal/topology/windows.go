package topology

import "fmt"

// ContactWindow is a maximal run of consecutive slots during which an
// endpoint can reach at least one broadband satellite. Earth-observation
// operators book downlinks against these windows (see the
// disaster-monitoring example and §II-A of the paper).
type ContactWindow struct {
	// StartSlot and EndSlot delimit the window, inclusive.
	StartSlot int
	EndSlot   int
	// MaxVisible is the largest number of simultaneously visible
	// satellites during the window.
	MaxVisible int
}

// Slots returns the window length in slots.
func (w ContactWindow) Slots() int { return w.EndSlot - w.StartSlot + 1 }

// ContactWindows scans the horizon and returns the endpoint's contact
// windows in chronological order.
func (p *Provider) ContactWindows(e Endpoint) ([]ContactWindow, error) {
	var windows []ContactWindow
	open := false
	var cur ContactWindow
	for slot := 0; slot < p.cfg.Horizon; slot++ {
		vis, err := p.VisibleSats(e, slot)
		if err != nil {
			return nil, fmt.Errorf("topology: contact windows: %w", err)
		}
		if len(vis) > 0 {
			if !open {
				open = true
				cur = ContactWindow{StartSlot: slot, EndSlot: slot, MaxVisible: len(vis)}
			} else {
				cur.EndSlot = slot
				if len(vis) > cur.MaxVisible {
					cur.MaxVisible = len(vis)
				}
			}
		} else if open {
			windows = append(windows, cur)
			open = false
		}
	}
	if open {
		windows = append(windows, cur)
	}
	return windows, nil
}

// CoverageFraction returns the fraction of the horizon during which the
// endpoint has at least one satellite in view.
func (p *Provider) CoverageFraction(e Endpoint) (float64, error) {
	windows, err := p.ContactWindows(e)
	if err != nil {
		return 0, err
	}
	covered := 0
	for _, w := range windows {
		covered += w.Slots()
	}
	return float64(covered) / float64(p.cfg.Horizon), nil
}
