package topology

import (
	"math"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/geo"
	"spacebooking/internal/grid"
	"spacebooking/internal/orbit"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

// smallConfig is an 8-plane x 12-satellite shell, enough structure for
// every topological property while staying fast.
func smallConfig() Config {
	cfg := DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 30
	return cfg
}

func newSmallProvider(t *testing.T, sites []grid.Site, eo []orbit.Satellite) *Provider {
	t.Helper()
	p, err := NewProvider(smallConfig(), sites, eo)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad walker", func(c *Config) { c.Walker.Planes = 0 }},
		{"zero slot", func(c *Config) { c.SlotSeconds = 0 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"zero ISL capacity", func(c *Config) { c.ISLCapacityMbps = 0 }},
		{"zero USL capacity", func(c *Config) { c.USLCapacityMbps = 0 }},
		{"elevation 90", func(c *Config) { c.MinElevationDeg = 90 }},
		{"negative elevation", func(c *Config) { c.MinElevationDeg = -1 }},
		{"zero EO range", func(c *Config) { c.MaxEORangeKm = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := smallConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestProviderBasicCounts(t *testing.T) {
	sites := []grid.Site{{ID: 0, LatDeg: 40.7, LonDeg: -74.0}}
	eo, err := orbit.SyntheticEOFleet(orbit.EOFleetConfig{
		Count: 5, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 1, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newSmallProvider(t, sites, eo)
	if p.NumSats() != 96 {
		t.Errorf("NumSats = %d, want 96", p.NumSats())
	}
	if p.NumSites() != 1 || p.NumEO() != 5 {
		t.Errorf("sites/EO = %d/%d", p.NumSites(), p.NumEO())
	}
	if p.Horizon() != 30 {
		t.Errorf("Horizon = %d", p.Horizon())
	}
	if p.TotalNodes() != 96+1+5 {
		t.Errorf("TotalNodes = %d", p.TotalNodes())
	}
}

func TestPlusGridNeighborStructure(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	w := p.Config().Walker
	for sat := 0; sat < p.NumSats(); sat++ {
		neighbors := p.ISLNeighbors(sat)
		if len(neighbors) != 4 {
			t.Fatalf("satellite %d has %d neighbors, want 4", sat, len(neighbors))
		}
		plane, idx := sat/w.SatsPerPlane, sat%w.SatsPerPlane
		want := map[int]bool{
			plane*w.SatsPerPlane + (idx+1)%w.SatsPerPlane:                true,
			plane*w.SatsPerPlane + (idx-1+w.SatsPerPlane)%w.SatsPerPlane: true,
			((plane+1)%w.Planes)*w.SatsPerPlane + idx:                    true,
			((plane-1+w.Planes)%w.Planes)*w.SatsPerPlane + idx:           true,
		}
		for _, n := range neighbors {
			if !want[n] {
				t.Fatalf("satellite %d has unexpected neighbor %d", sat, n)
			}
		}
	}
}

func TestPlusGridSymmetric(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	for sat := 0; sat < p.NumSats(); sat++ {
		for _, n := range p.ISLNeighbors(sat) {
			found := false
			for _, back := range p.ISLNeighbors(n) {
				if back == sat {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("ISL %d->%d not symmetric", sat, n)
			}
		}
	}
}

func TestPlusGridDegenerateShells(t *testing.T) {
	cfg := smallConfig()
	cfg.Walker.Planes = 2
	cfg.Walker.SatsPerPlane = 2
	cfg.Walker.PhasingF = 0
	p, err := NewProvider(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With 2 planes and 2 sats per plane there must be no duplicate
	// neighbor entries (next == prev collapses).
	for sat := 0; sat < p.NumSats(); sat++ {
		seen := map[int]bool{}
		for _, n := range p.ISLNeighbors(sat) {
			if n == sat {
				t.Fatalf("satellite %d is its own neighbor", sat)
			}
			if seen[n] {
				t.Fatalf("satellite %d lists neighbor %d twice", sat, n)
			}
			seen[n] = true
		}
	}
}

func TestNeighborDistancesBounded(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	// Intra-plane neighbours are 360/12=30 degrees apart; the chord at
	// a+550 km is ~3586 km. Cross-plane neighbours in planes 45° of RAAN
	// apart (plus Walker phasing) can reach ~55° of central angle near
	// the equator, so bound at the chord of 70° — still far from
	// antipodal, which is what this test guards against.
	a := geo.EarthRadiusKm + 550
	maxChord := 2 * a * math.Sin(geo.DegToRad(70/2.0))
	for slot := 0; slot < p.Horizon(); slot += 7 {
		for sat := 0; sat < p.NumSats(); sat++ {
			for _, n := range p.ISLNeighbors(sat) {
				d := p.SatPosECI(slot, sat).DistanceTo(p.SatPosECI(slot, n))
				if d > maxChord {
					t.Fatalf("slot %d: ISL %d-%d length %v exceeds %v", slot, sat, n, d, maxChord)
				}
				if d < 1 {
					t.Fatalf("slot %d: ISL %d-%d co-located", slot, sat, n)
				}
			}
		}
	}
}

func TestSunlitFractionReasonable(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	lit, total := 0, 0
	for slot := 0; slot < p.Horizon(); slot++ {
		for sat := 0; sat < p.NumSats(); sat++ {
			total++
			if p.Sunlit(slot, sat) {
				lit++
			}
		}
	}
	frac := float64(lit) / float64(total)
	// For a 550 km shell roughly 58-70% of satellites are sunlit at any
	// time (umbra fraction <= asin(Re/r)/pi ~ 0.37 in the worst plane).
	if frac < 0.55 || frac > 0.95 {
		t.Errorf("sunlit fraction = %v, expected within [0.55,0.95]", frac)
	}
}

func TestSunlitVectorMatchesPointQueries(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	for _, sat := range []int{0, 13, 95} {
		vec := p.SunlitVector(sat)
		if len(vec) != p.Horizon() {
			t.Fatalf("vector length %d", len(vec))
		}
		for slot, v := range vec {
			if v != p.Sunlit(slot, sat) {
				t.Fatalf("sat %d slot %d mismatch", sat, slot)
			}
		}
	}
}

func TestSatellitesCycleThroughUmbra(t *testing.T) {
	// Over a full orbital period (96 slots at 1 min), a satellite in a
	// 53-degree orbit should experience both sunlight and umbra.
	cfg := smallConfig()
	cfg.Horizon = 96
	p, err := NewProvider(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sawLit, sawDark := false, false
	for slot := 0; slot < p.Horizon(); slot++ {
		if p.Sunlit(slot, 0) {
			sawLit = true
		} else {
			sawDark = true
		}
	}
	if !sawLit || !sawDark {
		t.Errorf("satellite 0 never cycled: lit=%v dark=%v", sawLit, sawDark)
	}
}

func TestVisibleSatsGround(t *testing.T) {
	sites := []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0}, // New York: covered by 53° shell
		{ID: 1, LatDeg: 89.0, LonDeg: 0},     // near north pole: outside 53° coverage
	}
	p := newSmallProvider(t, sites, nil)

	nySeen := 0
	for slot := 0; slot < p.Horizon(); slot++ {
		vis, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: 0}, slot)
		if err != nil {
			t.Fatal(err)
		}
		nySeen += len(vis)
		// Every reported satellite must actually satisfy the elevation bound.
		obs := geo.LLAToECEF(sites[0].LLA())
		for _, sat := range vis {
			el := geo.ElevationDeg(obs, p.SatPosECEF(slot, sat))
			if el < p.Config().MinElevationDeg-1e-9 {
				t.Fatalf("slot %d sat %d elevation %v below minimum", slot, sat, el)
			}
		}
	}
	if nySeen == 0 {
		t.Error("New York never saw any satellite; visibility is broken")
	}

	poleSeen := 0
	for slot := 0; slot < p.Horizon(); slot++ {
		vis, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: 1}, slot)
		if err != nil {
			t.Fatal(err)
		}
		poleSeen += len(vis)
	}
	if poleSeen > 0 {
		t.Errorf("north pole saw %d satellite-slots from a 53-degree shell", poleSeen)
	}
}

func TestVisibleSatsSpace(t *testing.T) {
	eo, err := orbit.SyntheticEOFleet(orbit.EOFleetConfig{
		Count: 10, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 3, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newSmallProvider(t, nil, eo)
	total := 0
	for slot := 0; slot < p.Horizon(); slot++ {
		for i := range eo {
			vis, err := p.VisibleSats(Endpoint{Kind: EndpointSpace, Index: i}, slot)
			if err != nil {
				t.Fatal(err)
			}
			total += len(vis)
			for _, sat := range vis {
				d := p.eoECEF[slot][i].DistanceTo(p.SatPosECEF(slot, sat))
				if d > p.Config().MaxEORangeKm {
					t.Fatalf("EO %d slot %d: reported sat %d at range %v", i, slot, sat, d)
				}
			}
		}
	}
	if total == 0 {
		t.Error("no EO satellite ever saw a broadband satellite")
	}
}

func TestVisibleSatsErrors(t *testing.T) {
	p := newSmallProvider(t, []grid.Site{{ID: 0}}, nil)
	tests := []struct {
		name string
		e    Endpoint
		slot int
	}{
		{"bad slot", Endpoint{Kind: EndpointGround, Index: 0}, -1},
		{"slot beyond horizon", Endpoint{Kind: EndpointGround, Index: 0}, 999},
		{"site out of range", Endpoint{Kind: EndpointGround, Index: 5}, 0},
		{"eo without fleet", Endpoint{Kind: EndpointSpace, Index: 0}, 0},
		{"unknown kind", Endpoint{Kind: 0, Index: 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := p.VisibleSats(tt.e, tt.slot); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestVisibleSatsMemoised(t *testing.T) {
	p := newSmallProvider(t, []grid.Site{{ID: 0, LatDeg: 35, LonDeg: 139}}, nil)
	e := Endpoint{Kind: EndpointGround, Index: 0}
	a, err := p.VisibleSats(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.VisibleSats(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("memoised result differs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("memoised result differs at %d", i)
		}
	}
}

func TestGlobalIDs(t *testing.T) {
	sites := []grid.Site{{ID: 0}, {ID: 1}}
	eo, err := orbit.SyntheticEOFleet(orbit.EOFleetConfig{
		Count: 3, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 1, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newSmallProvider(t, sites, eo)
	s := p.NumSats()
	if got := p.GlobalID(Endpoint{Kind: EndpointGround, Index: 1}); got != s+1 {
		t.Errorf("ground 1 global ID = %d, want %d", got, s+1)
	}
	if got := p.GlobalID(Endpoint{Kind: EndpointSpace, Index: 2}); got != s+2+2 {
		t.Errorf("EO 2 global ID = %d, want %d", got, s+4)
	}
	if got := p.GlobalID(Endpoint{Kind: 0}); got != -1 {
		t.Errorf("unknown kind global ID = %d, want -1", got)
	}
}

func TestMaxSlantRange(t *testing.T) {
	// At 25° elevation and 550 km altitude the slant range is ~1123 km
	// (standard LEO geometry).
	got := maxSlantRangeKm(550, 25)
	if math.Abs(got-1123) > 15 {
		t.Errorf("slant range = %v, want ~1123", got)
	}
	// At zenith-only (89.9°) it approaches the altitude.
	if got := maxSlantRangeKm(550, 89.9); math.Abs(got-550) > 1 {
		t.Errorf("zenith slant = %v, want ~550", got)
	}
}

func TestPositionsConsistentECIECEF(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	// Norms must agree (rotation preserves length).
	for slot := 0; slot < p.Horizon(); slot += 11 {
		for sat := 0; sat < p.NumSats(); sat += 17 {
			eci := p.SatPosECI(slot, sat).Norm()
			ecef := p.SatPosECEF(slot, sat).Norm()
			if math.Abs(eci-ecef) > 1e-6 {
				t.Fatalf("slot %d sat %d: |ECI| %v != |ECEF| %v", slot, sat, eci, ecef)
			}
		}
	}
}

func TestVisibleSatsConcurrentAccess(t *testing.T) {
	// The visibility cache must be safe for concurrent readers (bench
	// harnesses share one provider across runs).
	p := newSmallProvider(t, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for slot := 0; slot < p.Horizon(); slot++ {
				for site := 0; site < 2; site++ {
					if _, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: site}, slot); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFreezeMatchesLazy verifies the frozen fast path returns exactly
// what the lazy memoised path computes, for both endpoint kinds, across
// every slot.
func TestFreezeMatchesLazy(t *testing.T) {
	sites := []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 89.0, LonDeg: 0}, // out of coverage: empty lists
	}
	eo, err := orbit.SyntheticEOFleet(orbit.EOFleetConfig{
		Count: 4, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 3, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	lazy := newSmallProvider(t, sites, eo)
	frozen := newSmallProvider(t, sites, eo)
	if err := frozen.Freeze(3); err != nil {
		t.Fatal(err)
	}

	endpoints := []Endpoint{
		{Kind: EndpointGround, Index: 0},
		{Kind: EndpointGround, Index: 1},
		{Kind: EndpointSpace, Index: 0},
		{Kind: EndpointSpace, Index: 3},
	}
	for _, e := range endpoints {
		if !frozen.Precomputed(e) {
			t.Fatalf("endpoint %+v not precomputed after full Freeze", e)
		}
		if lazy.Precomputed(e) {
			t.Fatalf("endpoint %+v reports precomputed on the lazy provider", e)
		}
		for slot := 0; slot < frozen.Horizon(); slot++ {
			want, err := lazy.VisibleSats(e, slot)
			if err != nil {
				t.Fatal(err)
			}
			got, err := frozen.VisibleSats(e, slot)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("endpoint %+v slot %d: frozen %v, lazy %v", e, slot, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("endpoint %+v slot %d differs at %d", e, slot, i)
				}
			}
		}
	}
}

// TestFreezeSubsetKeepsLazyFallback: freezing only some endpoints must
// leave the rest on the (still correct) memoised path.
func TestFreezeSubsetKeepsLazyFallback(t *testing.T) {
	sites := []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}
	p := newSmallProvider(t, sites, nil)
	hot := Endpoint{Kind: EndpointGround, Index: 0}
	cold := Endpoint{Kind: EndpointGround, Index: 1}
	if err := p.Freeze(2, hot); err != nil {
		t.Fatal(err)
	}
	if !p.Precomputed(hot) || p.Precomputed(cold) {
		t.Fatalf("precomputed flags: hot=%v cold=%v", p.Precomputed(hot), p.Precomputed(cold))
	}
	for _, e := range []Endpoint{hot, cold} {
		if _, err := p.VisibleSats(e, 5); err != nil {
			t.Fatalf("endpoint %+v: %v", e, err)
		}
	}
	// Idempotent: re-freezing an already-frozen endpoint is a no-op.
	if err := p.Freeze(2, hot); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeErrors(t *testing.T) {
	p := newSmallProvider(t, []grid.Site{{ID: 0}}, nil)
	if err := p.Freeze(1, Endpoint{Kind: EndpointGround, Index: 9}); err == nil {
		t.Error("out-of-range site should error")
	}
	if err := p.Freeze(1, Endpoint{Kind: EndpointSpace, Index: 0}); err == nil {
		t.Error("EO endpoint without a fleet should error")
	}
	if err := p.Freeze(1, Endpoint{Kind: 0, Index: 0}); err == nil {
		t.Error("unknown kind should error")
	}
}

// TestPrecomputeVisibilityConfig: the construction-time flag freezes
// every endpoint.
func TestPrecomputeVisibilityConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.PrecomputeVisibility = true
	p, err := NewProvider(cfg, []grid.Site{{ID: 0, LatDeg: 35, LonDeg: 139}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Precomputed(Endpoint{Kind: EndpointGround, Index: 0}) {
		t.Fatal("PrecomputeVisibility did not freeze the site")
	}
	if _, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: 0}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenProviderConcurrentAccess mirrors the lazy-path concurrency
// test on the lock-free frozen tables (meaningful under -race).
func TestFrozenProviderConcurrentAccess(t *testing.T) {
	p := newSmallProvider(t, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	if err := p.Freeze(4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := 0; slot < p.Horizon(); slot++ {
				for site := 0; site < 2; site++ {
					if _, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: site}, slot); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMultiShellProvider(t *testing.T) {
	cfg := smallConfig()
	second := cfg.Walker
	second.Planes = 4
	second.SatsPerPlane = 6
	second.AltitudeKm = 1100
	second.InclinationDeg = 70
	second.PhasingF = 1
	cfg.ExtraShells = []orbit.WalkerConfig{second}

	p, err := NewProvider(cfg, []grid.Site{{ID: 0, LatDeg: 40.7, LonDeg: -74.0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSats := 96 + 24
	if p.NumSats() != wantSats {
		t.Fatalf("NumSats = %d, want %d", p.NumSats(), wantSats)
	}
	// Satellite IDs dense across shells.
	for i, s := range p.Satellites() {
		if s.ID != i {
			t.Fatalf("satellite %d has ID %d", i, s.ID)
		}
	}
	// ISLs never cross shells: shell-1 sats (0-95) only neighbour 0-95,
	// shell-2 sats (96-119) only 96-119.
	for sat := 0; sat < wantSats; sat++ {
		for _, n := range p.ISLNeighbors(sat) {
			if (sat < 96) != (n < 96) {
				t.Fatalf("ISL %d-%d crosses shells", sat, n)
			}
		}
	}
	// Shell-2 satellites orbit at their own altitude.
	alt := p.SatPosECI(0, 96).Norm() - geo.EarthRadiusKm
	if math.Abs(alt-1100) > 1 {
		t.Errorf("shell-2 altitude = %v, want 1100", alt)
	}
	// Ground visibility can reach the higher shell (pre-filter must use
	// the tallest shell's slant range).
	seenHigh := false
	for slot := 0; slot < p.Horizon() && !seenHigh; slot++ {
		vis, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: 0}, slot)
		if err != nil {
			t.Fatal(err)
		}
		for _, sat := range vis {
			if sat >= 96 {
				seenHigh = true
			}
		}
	}
	if !seenHigh {
		t.Error("the 70-degree 1100 km shell is never visible from New York; slant pre-filter too tight?")
	}
}

func TestMultiShellValidation(t *testing.T) {
	cfg := smallConfig()
	bad := cfg.Walker
	bad.Planes = 0
	cfg.ExtraShells = []orbit.WalkerConfig{bad}
	if _, err := NewProvider(cfg, nil, nil); err == nil {
		t.Error("invalid extra shell should error")
	}
}
