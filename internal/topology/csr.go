package topology

import "spacebooking/internal/graph"

// CSR is a compressed-sparse-row flattening of the static +Grid ISL
// fabric: all directed ISL edges live in contiguous arrays indexed by
// per-node offsets, so a search can iterate a satellite's neighbours as
// one slice scan with no interface dispatch and no per-node slice header
// chasing. The fabric is time-invariant (only USL visibility changes per
// slot), so the CSR is built once at provider construction and shared,
// read-only, by every run — it is the static half of the routing fast
// path; Freeze supplies the dynamic half (per-slot USL visibility).
//
// Edge i of node s occupies an index in [Offsets[s], Offsets[s+1]); the
// edge order matches ISLNeighbors(s), which the flat and generic views
// rely on for identical search tie-breaking.
type CSR struct {
	// Offsets has NumSats+1 entries; node s's edges span
	// [Offsets[s], Offsets[s+1]).
	Offsets []int32
	// To[i] is the destination satellite of edge i.
	To []int32
	// Class[i] is the edge's link class (ClassISL for the whole +Grid
	// fabric today; kept per-edge so a future mixed static fabric needs
	// no format change).
	Class []graph.EdgeClass
	// Cost[i] is the static base cost of the edge. The +Grid fabric is
	// unpriced at rest (zero); per-slot congestion prices are layered on
	// top by the slot views.
	Cost []float64
	// Payload[i] is the dense edge index itself (== i), usable as a key
	// into per-edge side tables (cost caches, ledger indices).
	Payload []int32
}

// NumEdges returns the number of directed ISL edges.
func (c *CSR) NumEdges() int { return len(c.To) }

// buildISLCSR flattens the per-satellite neighbour lists.
func buildISLCSR(islNeighbors [][]int) *CSR {
	total := 0
	for _, ns := range islNeighbors {
		total += len(ns)
	}
	c := &CSR{
		Offsets: make([]int32, len(islNeighbors)+1),
		To:      make([]int32, 0, total),
		Class:   make([]graph.EdgeClass, 0, total),
		Cost:    make([]float64, 0, total),
		Payload: make([]int32, 0, total),
	}
	for s, ns := range islNeighbors {
		c.Offsets[s] = int32(len(c.To))
		for _, n := range ns {
			c.Payload = append(c.Payload, int32(len(c.To)))
			c.To = append(c.To, int32(n))
			c.Class = append(c.Class, graph.ClassISL)
			c.Cost = append(c.Cost, 0)
		}
	}
	c.Offsets[len(islNeighbors)] = int32(len(c.To))
	return c
}

// ISLCSR returns the CSR flattening of the static ISL grid. The returned
// structure is immutable and shared; callers must not modify it.
func (p *Provider) ISLCSR() *CSR { return p.islCSR }
