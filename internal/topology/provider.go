// Package topology builds the time-slotted view of the LSN that the
// paper's system model (§III-A) prescribes: per-slot satellite positions,
// sunlit/umbra flags, the static +Grid inter-satellite link fabric, and
// per-slot user-satellite link (USL) visibility for both ground users and
// space users (Earth-observation satellites).
package topology

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"spacebooking/internal/geo"
	"spacebooking/internal/grid"
	"spacebooking/internal/orbit"
)

// Config parameterises the dynamic-topology provider. Defaults mirroring
// the paper's §VI-A are available via DefaultConfig.
type Config struct {
	Walker orbit.WalkerConfig
	// ExtraShells adds further Walker shells (real constellations deploy
	// several, e.g. Starlink's 53.2°/70°/97.6° shells). Each shell gets
	// its own +Grid ISL fabric; there are no inter-shell ISLs — traffic
	// crosses shells only via the ground segment, matching deployed
	// systems. Satellite IDs are assigned shell-major.
	ExtraShells []orbit.WalkerConfig
	// SlotSeconds is the length of one time slot (60 s in the paper).
	SlotSeconds float64
	// Horizon is the number of slots simulated (384 = 4 orbital periods).
	Horizon int
	// ISLCapacityMbps and USLCapacityMbps are per-direction link
	// capacities (20 Gbps and 4 Gbps in the paper).
	ISLCapacityMbps float64
	USLCapacityMbps float64
	// MinElevationDeg is the minimum elevation for a ground USL
	// (Starlink terminals use 25°).
	MinElevationDeg float64
	// MaxEORangeKm is the maximum slant range for a space-user USL
	// between an EO satellite and a broadband satellite.
	MaxEORangeKm float64
	// PrecomputeVisibility eagerly freezes USL visibility for every
	// endpoint at construction (see Freeze), removing the visibility
	// cache mutex from the hot loop. Costs O(endpoints × horizon × sats)
	// up front — callers with many endpoints but few active pairs should
	// instead Freeze just the endpoints they will query.
	PrecomputeVisibility bool
}

// DefaultConfig returns the paper's evaluation parameters on the
// Starlink Shell-I constellation.
func DefaultConfig(epoch time.Time) Config {
	return Config{
		Walker:          orbit.StarlinkShell1(epoch),
		SlotSeconds:     60,
		Horizon:         96 * 4,
		ISLCapacityMbps: 20000,
		USLCapacityMbps: 4000,
		MinElevationDeg: 25,
		MaxEORangeKm:    1500,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Walker.Validate(); err != nil {
		return err
	}
	for i, shell := range c.ExtraShells {
		if err := shell.Validate(); err != nil {
			return fmt.Errorf("topology: extra shell %d: %w", i, err)
		}
	}
	switch {
	case c.SlotSeconds <= 0:
		return fmt.Errorf("topology: slot length must be positive, got %v", c.SlotSeconds)
	case c.Horizon <= 0:
		return fmt.Errorf("topology: horizon must be positive, got %d", c.Horizon)
	case c.ISLCapacityMbps <= 0 || c.USLCapacityMbps <= 0:
		return fmt.Errorf("topology: link capacities must be positive (ISL %v, USL %v)",
			c.ISLCapacityMbps, c.USLCapacityMbps)
	case c.MinElevationDeg < 0 || c.MinElevationDeg >= 90:
		return fmt.Errorf("topology: min elevation %v outside [0,90)", c.MinElevationDeg)
	case c.MaxEORangeKm <= 0:
		return fmt.Errorf("topology: max EO range must be positive, got %v", c.MaxEORangeKm)
	}
	return nil
}

// EndpointKind distinguishes ground users from space users.
type EndpointKind int

const (
	// EndpointGround is a terrestrial user at a tiling site.
	EndpointGround EndpointKind = iota + 1
	// EndpointSpace is an Earth-observation satellite acting as a user.
	EndpointSpace
)

// Endpoint identifies a request source or destination: a ground site
// (index into the provider's site list) or an EO satellite (index into
// the provider's EO fleet).
type Endpoint struct {
	Kind  EndpointKind
	Index int
}

// Provider precomputes and serves the per-slot state of the LSN.
// It is safe for concurrent read use after construction.
type Provider struct {
	cfg   Config
	sats  []orbit.Satellite
	sites []grid.Site
	eo    []orbit.Satellite

	// satECEF[slot][sat] and eoECEF[slot][eo] are Earth-fixed positions;
	// satECI[slot][sat] is used for eclipse tests.
	satECI  [][]geo.Vec3
	satECEF [][]geo.Vec3
	eoECEF  [][]geo.Vec3
	sunlit  [][]bool

	siteECEF []geo.Vec3

	islNeighbors [][]int
	islCSR       *CSR
	maxSlantKm   float64

	// visGround[site] and visSpace[eo] are frozen per-slot visibility
	// tables (see Freeze): non-nil means every slot for that endpoint is
	// precomputed and VisibleSats reads it lock-free. Endpoints that were
	// never frozen fall back to the mutex-guarded memo cache below.
	visGround [][][]int
	visSpace  [][][]int

	visMu    sync.RWMutex
	visCache map[visKey][]int
}

// emptyVis marks a frozen slot with no visible satellites: a non-nil
// sentinel, so the lock-free read path can distinguish "computed empty"
// from "not precomputed".
var emptyVis = []int{}

type visKey struct {
	kind  EndpointKind
	index int
	slot  int
}

// NewProvider builds the provider, propagating every satellite (and EO
// satellite) across all slots and precomputing sunlit flags and the +Grid
// ISL fabric. sites and eoFleet may be empty if the workload does not use
// the corresponding endpoint kind.
func NewProvider(cfg Config, sites []grid.Site, eoFleet []orbit.Satellite) (*Provider, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shells := append([]orbit.WalkerConfig{cfg.Walker}, cfg.ExtraShells...)
	var sats []orbit.Satellite
	var islNeighbors [][]int
	for _, shell := range shells {
		shellSats, err := orbit.WalkerDelta(shell)
		if err != nil {
			return nil, err
		}
		offset := len(sats)
		grid := buildPlusGrid(shell)
		for i := range shellSats {
			shellSats[i].ID += offset
			neighbors := make([]int, len(grid[i]))
			for j, n := range grid[i] {
				neighbors[j] = n + offset
			}
			islNeighbors = append(islNeighbors, neighbors)
		}
		sats = append(sats, shellSats...)
	}

	p := &Provider{
		cfg:      cfg,
		sats:     sats,
		sites:    append([]grid.Site(nil), sites...),
		eo:       append([]orbit.Satellite(nil), eoFleet...),
		visCache: make(map[visKey][]int),
	}

	p.siteECEF = make([]geo.Vec3, len(p.sites))
	for i, s := range p.sites {
		p.siteECEF[i] = geo.LLAToECEF(s.LLA())
	}

	p.satECI = make([][]geo.Vec3, cfg.Horizon)
	p.satECEF = make([][]geo.Vec3, cfg.Horizon)
	p.eoECEF = make([][]geo.Vec3, cfg.Horizon)
	p.sunlit = make([][]bool, cfg.Horizon)
	epoch := cfg.Walker.Epoch
	for t := 0; t < cfg.Horizon; t++ {
		at := epoch.Add(time.Duration(float64(t) * cfg.SlotSeconds * float64(time.Second)))
		gmst := geo.GMST(at)
		sunDir := geo.SunDirectionECI(at)

		eci := make([]geo.Vec3, len(sats))
		ecef := make([]geo.Vec3, len(sats))
		lit := make([]bool, len(sats))
		for i, s := range sats {
			pos := s.Elements.PositionECI(at)
			eci[i] = pos
			ecef[i] = geo.ECIToECEF(pos, gmst)
			lit[i] = !geo.InUmbra(pos, sunDir)
		}
		p.satECI[t] = eci
		p.satECEF[t] = ecef
		p.sunlit[t] = lit

		eoPos := make([]geo.Vec3, len(p.eo))
		for i, s := range p.eo {
			eoPos[i] = geo.ECIToECEF(s.Elements.PositionECI(at), gmst)
		}
		p.eoECEF[t] = eoPos
	}

	p.islNeighbors = islNeighbors
	p.islCSR = buildISLCSR(islNeighbors)
	maxAlt := cfg.Walker.AltitudeKm
	for _, shell := range cfg.ExtraShells {
		if shell.AltitudeKm > maxAlt {
			maxAlt = shell.AltitudeKm
		}
	}
	p.maxSlantKm = maxSlantRangeKm(maxAlt, cfg.MinElevationDeg)
	if cfg.PrecomputeVisibility {
		if err := p.Freeze(0); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// buildPlusGrid returns, for each satellite, its +Grid neighbours: the
// previous/next satellite in the same plane and the same-index satellite
// in the two adjacent planes (including across the seam).
func buildPlusGrid(w orbit.WalkerConfig) [][]int {
	id := func(plane, idx int) int {
		return ((plane+w.Planes)%w.Planes)*w.SatsPerPlane + (idx+w.SatsPerPlane)%w.SatsPerPlane
	}
	out := make([][]int, w.Total())
	for plane := 0; plane < w.Planes; plane++ {
		for idx := 0; idx < w.SatsPerPlane; idx++ {
			self := id(plane, idx)
			neighbors := make([]int, 0, 4)
			if w.SatsPerPlane > 1 {
				neighbors = append(neighbors, id(plane, idx+1))
				if w.SatsPerPlane > 2 {
					neighbors = append(neighbors, id(plane, idx-1))
				}
			}
			if w.Planes > 1 {
				neighbors = append(neighbors, id(plane+1, idx))
				if w.Planes > 2 {
					neighbors = append(neighbors, id(plane-1, idx))
				}
			}
			out[self] = neighbors
		}
	}
	return out
}

// maxSlantRangeKm returns the slant range from a ground observer to a
// satellite at the given altitude seen exactly at the minimum elevation.
func maxSlantRangeKm(altKm, minElevDeg float64) float64 {
	re := geo.EarthRadiusKm
	el := geo.DegToRad(minElevDeg)
	// Law of cosines in the Earth-centre/observer/satellite triangle.
	return -re*math.Sin(el) + math.Sqrt(re*re*math.Sin(el)*math.Sin(el)+2*re*altKm+altKm*altKm)
}

// Config returns the provider's configuration.
func (p *Provider) Config() Config { return p.cfg }

// NumSats returns the number of broadband satellites.
func (p *Provider) NumSats() int { return len(p.sats) }

// NumSites returns the number of registered ground sites.
func (p *Provider) NumSites() int { return len(p.sites) }

// NumEO returns the number of space users (EO satellites).
func (p *Provider) NumEO() int { return len(p.eo) }

// Horizon returns the number of simulated slots.
func (p *Provider) Horizon() int { return p.cfg.Horizon }

// Satellites returns the broadband satellite list (do not modify).
func (p *Provider) Satellites() []orbit.Satellite { return p.sats }

// Sites returns the ground-site list (do not modify).
func (p *Provider) Sites() []grid.Site { return p.sites }

// SatPosECI returns the ECI position of a satellite in a slot.
func (p *Provider) SatPosECI(slot, sat int) geo.Vec3 { return p.satECI[slot][sat] }

// SatPosECEF returns the Earth-fixed position of a satellite in a slot.
func (p *Provider) SatPosECEF(slot, sat int) geo.Vec3 { return p.satECEF[slot][sat] }

// Sunlit reports whether a satellite is in sunlight during a slot.
func (p *Provider) Sunlit(slot, sat int) bool { return p.sunlit[slot][sat] }

// SiteECEF returns the Earth-fixed position of a registered ground site.
func (p *Provider) SiteECEF(site int) geo.Vec3 { return p.siteECEF[site] }

// EOPosECEF returns the Earth-fixed position of an EO satellite in a slot.
func (p *Provider) EOPosECEF(slot, eo int) geo.Vec3 { return p.eoECEF[slot][eo] }

// EndpointECEF returns the Earth-fixed position of an endpoint in a slot.
func (p *Provider) EndpointECEF(e Endpoint, slot int) (geo.Vec3, error) {
	switch e.Kind {
	case EndpointGround:
		if e.Index < 0 || e.Index >= len(p.sites) {
			return geo.Vec3{}, fmt.Errorf("topology: ground site %d outside [0,%d)", e.Index, len(p.sites))
		}
		return p.siteECEF[e.Index], nil
	case EndpointSpace:
		if e.Index < 0 || e.Index >= len(p.eo) {
			return geo.Vec3{}, fmt.Errorf("topology: EO index %d outside [0,%d)", e.Index, len(p.eo))
		}
		return p.eoECEF[slot][e.Index], nil
	default:
		return geo.Vec3{}, fmt.Errorf("topology: unknown endpoint kind %d", e.Kind)
	}
}

// SunlitVector returns the satellite's sunlit flags across all slots.
func (p *Provider) SunlitVector(sat int) []bool {
	out := make([]bool, p.cfg.Horizon)
	for t := 0; t < p.cfg.Horizon; t++ {
		out[t] = p.sunlit[t][sat]
	}
	return out
}

// ISLNeighbors returns the static +Grid neighbours of a satellite.
// Callers must not modify the returned slice.
func (p *Provider) ISLNeighbors(sat int) []int { return p.islNeighbors[sat] }

// VisibleSats returns the broadband satellites that endpoint e can reach
// with a USL in the given slot: above the minimum elevation for ground
// users, or within MaxEORangeKm with clear line of sight for space
// users. Frozen endpoints (see Freeze) are served lock-free from the
// precomputed tables; other endpoints are memoised under a mutex.
// Callers must not modify the returned slice.
func (p *Provider) VisibleSats(e Endpoint, slot int) ([]int, error) {
	if slot < 0 || slot >= p.cfg.Horizon {
		return nil, fmt.Errorf("topology: slot %d outside horizon [0,%d)", slot, p.cfg.Horizon)
	}
	switch e.Kind {
	case EndpointGround:
		if e.Index < 0 || e.Index >= len(p.sites) {
			return nil, fmt.Errorf("topology: ground site %d outside [0,%d)", e.Index, len(p.sites))
		}
		if p.visGround != nil && p.visGround[e.Index] != nil {
			return p.visGround[e.Index][slot], nil
		}
	case EndpointSpace:
		if e.Index < 0 || e.Index >= len(p.eo) {
			return nil, fmt.Errorf("topology: EO index %d outside [0,%d)", e.Index, len(p.eo))
		}
		if p.visSpace != nil && p.visSpace[e.Index] != nil {
			return p.visSpace[e.Index][slot], nil
		}
	default:
		return nil, fmt.Errorf("topology: unknown endpoint kind %d", e.Kind)
	}

	key := visKey{kind: e.Kind, index: e.Index, slot: slot}
	p.visMu.RLock()
	cached, ok := p.visCache[key]
	p.visMu.RUnlock()
	if ok {
		return cached, nil
	}

	visible := p.computeVisible(e, slot)

	p.visMu.Lock()
	p.visCache[key] = visible
	p.visMu.Unlock()
	return visible, nil
}

// computeVisible is the pure visibility computation behind VisibleSats
// and Freeze. Endpoint and slot must already be validated.
func (p *Provider) computeVisible(e Endpoint, slot int) []int {
	var visible []int
	if e.Kind == EndpointGround {
		obs := p.siteECEF[e.Index]
		maxSq := p.maxSlantKm * p.maxSlantKm
		for sat, pos := range p.satECEF[slot] {
			if pos.Sub(obs).NormSq() > maxSq {
				continue
			}
			if geo.ElevationDeg(obs, pos) >= p.cfg.MinElevationDeg {
				visible = append(visible, sat)
			}
		}
	} else {
		obs := p.eoECEF[slot][e.Index]
		maxSq := p.cfg.MaxEORangeKm * p.cfg.MaxEORangeKm
		for sat, pos := range p.satECEF[slot] {
			if pos.Sub(obs).NormSq() > maxSq {
				continue
			}
			if geo.LineOfSightClear(obs, pos, 0) {
				visible = append(visible, sat)
			}
		}
	}
	return visible
}

// Freeze precomputes the per-slot visibility of the given endpoints
// (every site and EO satellite when none are named), fanning the slots
// out over a worker pool (workers <= 0 picks GOMAXPROCS). Frozen
// endpoints are immutable afterwards and VisibleSats serves them without
// taking a lock — the hot-loop synchronization point disappears for
// every endpoint the workload actually routes between. Endpoints not
// frozen keep the lazy mutex-guarded cache, which stays correct (if
// slower) under concurrency.
//
// Freeze is part of construction: call it before the provider is shared
// across goroutines. Already-frozen endpoints are skipped, so repeated
// calls with overlapping endpoint sets are cheap.
//
// Together with the CSR flattening of the static ISL grid (ISLCSR,
// built at NewProvider), frozen visibility tables are what the routing
// fast path (netstate.FlatView) consumes: the CSR supplies the static
// edges as contiguous arrays and the frozen tables supply the per-slot
// USL endpoint edges, both readable without locks or interface calls.
func (p *Provider) Freeze(workers int, endpoints ...Endpoint) error {
	if len(endpoints) == 0 {
		endpoints = make([]Endpoint, 0, len(p.sites)+len(p.eo))
		for i := range p.sites {
			endpoints = append(endpoints, Endpoint{Kind: EndpointGround, Index: i})
		}
		for i := range p.eo {
			endpoints = append(endpoints, Endpoint{Kind: EndpointSpace, Index: i})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p.visGround == nil {
		p.visGround = make([][][]int, len(p.sites))
	}
	if p.visSpace == nil {
		p.visSpace = make([][][]int, len(p.eo))
	}
	todo := make([]Endpoint, 0, len(endpoints))
	for _, e := range endpoints {
		switch e.Kind {
		case EndpointGround:
			if e.Index < 0 || e.Index >= len(p.sites) {
				return fmt.Errorf("topology: freeze: ground site %d outside [0,%d)", e.Index, len(p.sites))
			}
			if p.visGround[e.Index] == nil {
				p.visGround[e.Index] = make([][]int, p.cfg.Horizon)
				todo = append(todo, e)
			}
		case EndpointSpace:
			if e.Index < 0 || e.Index >= len(p.eo) {
				return fmt.Errorf("topology: freeze: EO index %d outside [0,%d)", e.Index, len(p.eo))
			}
			if p.visSpace[e.Index] == nil {
				p.visSpace[e.Index] = make([][]int, p.cfg.Horizon)
				todo = append(todo, e)
			}
		default:
			return fmt.Errorf("topology: freeze: unknown endpoint kind %d", e.Kind)
		}
	}
	if len(todo) == 0 {
		return nil
	}

	// Fan out across slots: each (endpoint, slot) cell is written by
	// exactly one worker, into tables allocated above — no locking.
	slotCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for slot := range slotCh {
				for _, e := range todo {
					vis := p.computeVisible(e, slot)
					if vis == nil {
						vis = emptyVis
					}
					if e.Kind == EndpointGround {
						p.visGround[e.Index][slot] = vis
					} else {
						p.visSpace[e.Index][slot] = vis
					}
				}
			}
		}()
	}
	for t := 0; t < p.cfg.Horizon; t++ {
		slotCh <- t
	}
	close(slotCh)
	wg.Wait()
	return nil
}

// Precomputed reports whether an endpoint's visibility was frozen. Out
// of range endpoints report false.
func (p *Provider) Precomputed(e Endpoint) bool {
	switch e.Kind {
	case EndpointGround:
		return p.visGround != nil && e.Index >= 0 && e.Index < len(p.visGround) && p.visGround[e.Index] != nil
	case EndpointSpace:
		return p.visSpace != nil && e.Index >= 0 && e.Index < len(p.visSpace) && p.visSpace[e.Index] != nil
	default:
		return false
	}
}

// GlobalID maps endpoints into a single dense node-ID space shared with
// satellites: satellites occupy [0, NumSats), ground sites
// [NumSats, NumSats+NumSites), EO satellites after that. Link ledgers key
// on these IDs so reservations are stable across slots.
func (p *Provider) GlobalID(e Endpoint) int {
	switch e.Kind {
	case EndpointGround:
		return len(p.sats) + e.Index
	case EndpointSpace:
		return len(p.sats) + len(p.sites) + e.Index
	default:
		return -1
	}
}

// TotalNodes returns the size of the global node-ID space.
func (p *Provider) TotalNodes() int {
	return len(p.sats) + len(p.sites) + len(p.eo)
}
