package topology

import (
	"testing"

	"spacebooking/internal/grid"
	"spacebooking/internal/orbit"
)

func TestContactWindowsStructure(t *testing.T) {
	sites := []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0}, // covered intermittently
		{ID: 1, LatDeg: 89.0, LonDeg: 0},     // never covered by a 53° shell
	}
	p := newSmallProvider(t, sites, nil)

	windows, err := p.ContactWindows(Endpoint{Kind: EndpointGround, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Windows must be chronological, non-overlapping, and match the raw
	// visibility predicate exactly.
	inWindow := make([]bool, p.Horizon())
	lastEnd := -1
	for _, w := range windows {
		if w.StartSlot <= lastEnd {
			t.Fatalf("window %+v overlaps or is out of order (lastEnd %d)", w, lastEnd)
		}
		if w.EndSlot < w.StartSlot || w.EndSlot >= p.Horizon() {
			t.Fatalf("window %+v out of range", w)
		}
		if w.Slots() != w.EndSlot-w.StartSlot+1 {
			t.Fatalf("Slots() inconsistent for %+v", w)
		}
		if w.MaxVisible < 1 {
			t.Fatalf("window %+v has no visible satellites", w)
		}
		for s := w.StartSlot; s <= w.EndSlot; s++ {
			inWindow[s] = true
		}
		lastEnd = w.EndSlot
	}
	for slot := 0; slot < p.Horizon(); slot++ {
		vis, err := p.VisibleSats(Endpoint{Kind: EndpointGround, Index: 0}, slot)
		if err != nil {
			t.Fatal(err)
		}
		if (len(vis) > 0) != inWindow[slot] {
			t.Fatalf("slot %d: visibility %v but window coverage %v", slot, len(vis) > 0, inWindow[slot])
		}
	}

	// The polar site has no windows at all.
	polar, err := p.ContactWindows(Endpoint{Kind: EndpointGround, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(polar) != 0 {
		t.Errorf("polar site has %d windows, want 0", len(polar))
	}
}

func TestContactWindowsErrors(t *testing.T) {
	p := newSmallProvider(t, nil, nil)
	if _, err := p.ContactWindows(Endpoint{Kind: EndpointGround, Index: 0}); err == nil {
		t.Error("expected error with no registered sites")
	}
}

func TestCoverageFraction(t *testing.T) {
	sites := []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 89.0, LonDeg: 0},
	}
	p := newSmallProvider(t, sites, nil)
	ny, err := p.CoverageFraction(Endpoint{Kind: EndpointGround, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ny <= 0 || ny > 1 {
		t.Errorf("NY coverage = %v", ny)
	}
	pole, err := p.CoverageFraction(Endpoint{Kind: EndpointGround, Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pole != 0 {
		t.Errorf("polar coverage = %v, want 0", pole)
	}
}

func TestContactWindowsEO(t *testing.T) {
	eo, err := orbit.SyntheticEOFleet(orbit.EOFleetConfig{
		Count: 3, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 2, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newSmallProvider(t, nil, eo)
	totalWindows := 0
	for i := range eo {
		ws, err := p.ContactWindows(Endpoint{Kind: EndpointSpace, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		totalWindows += len(ws)
		frac, err := p.CoverageFraction(Endpoint{Kind: EndpointSpace, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		if frac < 0 || frac > 1 {
			t.Fatalf("EO %d coverage %v", i, frac)
		}
	}
	if totalWindows == 0 {
		t.Skip("no EO contact in this short horizon")
	}
}
