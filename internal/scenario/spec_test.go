package scenario

import (
	"strings"
	"testing"
)

// validSpec returns a minimal spec that passes validation.
func validSpec() Spec {
	return Spec{
		Version: SpecVersion,
		Name:    "test",
		Seed:    7,
		Classes: []Class{{
			Name:    "web",
			Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSlot: 2},
			Mix: MixSpec{
				MinDurationSlots: 1, MaxDurationSlots: 5,
				MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 1250,
				Valuation: 1e8,
			},
		}},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"bad version", func(s *Spec) { s.Version = 2 }, "version"},
		{"no name", func(s *Spec) { s.Name = "" }, "no name"},
		{"no classes", func(s *Spec) { s.Classes = nil }, "no classes"},
		{"negative horizon", func(s *Spec) { s.Horizon = -1 }, "horizon"},
		{"dup class", func(s *Spec) { s.Classes = append(s.Classes, s.Classes[0]) }, "duplicate"},
		{"bad process", func(s *Spec) { s.Classes[0].Arrival.Process = "uniform" }, "unknown arrival process"},
		{"gamma no shape", func(s *Spec) {
			s.Classes[0].Arrival = ArrivalSpec{Process: ProcessGamma, RatePerSlot: 1}
		}, "shape"},
		{"zero rate", func(s *Spec) { s.Classes[0].Arrival.RatePerSlot = 0 }, "rate"},
		{"bad durations", func(s *Spec) { s.Classes[0].Mix.MaxDurationSlots = 0 }, "duration"},
		{"mean outside range", func(s *Spec) { s.Classes[0].Mix.MeanRateMbps = 9999 }, "mean rate"},
		{"bad diurnal amplitude", func(s *Spec) {
			s.Classes[0].Diurnal = &DiurnalSpec{PeriodSlots: 96, Amplitude: 1.5}
		}, "amplitude"},
		{"bad event kind", func(s *Spec) {
			s.Events = []Event{{Kind: "meteor_shower", StartSlot: 0, EndSlot: 1, Factor: 2}}
		}, "unknown event kind"},
		{"flash factor zero", func(s *Spec) {
			s.Events = []Event{{Kind: EventFlashCrowd, StartSlot: 0, EndSlot: 1}}
		}, "factor"},
		{"outage no radius", func(s *Spec) {
			s.Events = []Event{{Kind: EventRegionalOutage, StartSlot: 0, EndSlot: 1}}
		}, "radius"},
		{"event bad window", func(s *Spec) {
			s.Events = []Event{{Kind: EventFlashCrowd, StartSlot: 5, EndSlot: 2, Factor: 2}}
		}, "window"},
		{"event unknown class", func(s *Spec) {
			s.Events = []Event{{Kind: EventFlashCrowd, StartSlot: 0, EndSlot: 1, Factor: 2, Classes: []string{"nope"}}}
		}, "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutated spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version":1,"name":"x","clases":[]}`))
	if err == nil {
		t.Fatal("typo'd key accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	data := []byte(`{
		"version": 1,
		"name": "smoke",
		"seed": 42,
		"classes": [{
			"name": "bulk",
			"arrival": {"process": "gamma", "rate_per_slot": 1.5, "shape": 2},
			"mix": {"min_duration_slots": 2, "max_duration_slots": 8,
			        "min_rate_mbps": 500, "max_rate_mbps": 2000, "mean_rate_mbps": 1000,
			        "valuation": 2e8}
		}],
		"events": [{"kind": "flash_crowd", "start_slot": 10, "end_slot": 20, "factor": 3}]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "smoke" || s.Seed != 42 || len(s.Classes) != 1 || len(s.Events) != 1 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if s.Classes[0].Arrival.Shape != 2 {
		t.Fatalf("shape lost: %+v", s.Classes[0].Arrival)
	}
}

func TestEventTimeline(t *testing.T) {
	s := validSpec()
	s.Events = []Event{
		{Kind: EventFlashCrowd, StartSlot: 40, EndSlot: 60, Factor: 3, Classes: []string{"web"}},
		{Kind: EventRegionalOutage, StartSlot: 10, EndSlot: 20, CenterLatDeg: 40.7, CenterLonDeg: -74, RadiusKm: 500},
	}
	tl := s.EventTimeline()
	if len(tl) != 2 {
		t.Fatalf("timeline %v", tl)
	}
	if tl[0] != "flash_crowd[40-60]x3(web)" {
		t.Fatalf("flash line %q", tl[0])
	}
	if !strings.HasPrefix(tl[1], "regional_outage[10-20]@") {
		t.Fatalf("outage line %q", tl[1])
	}
}
