package scenario

import (
	"fmt"

	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

// RequestsFromTrace reconstructs the exact request stream a recorded
// run admitted, from the KindRequest records a trace written with
// sim.RunConfig.RecordRequests carries. Replaying it through sim.Run or
// the serving path reproduces every decision, price and Result
// byte-identically: the engine is deterministic given its inputs, and
// the records preserve those inputs exactly (IDs included — float64
// fields survive the JSON round trip because Go marshals the shortest
// representation that parses back to the same value).
//
// The second return is the spec name recorded in the run_info line
// (empty for flat-workload recordings), so a replay can echo it and
// keep recorded and replayed traces byte-identical end to end.
func RequestsFromTrace(records []trace.Record) ([]workload.Request, string, error) {
	var reqs []workload.Request
	specName := ""
	for i, r := range records {
		switch r.Kind {
		case trace.KindRunInfo:
			specName = r.Spec
		case trace.KindRequest:
			src, err := endpointFromTrace(r.SrcKind, r.SrcIndex)
			if err != nil {
				return nil, "", fmt.Errorf("scenario: record %d src: %w", i, err)
			}
			dst, err := endpointFromTrace(r.DstKind, r.DstIndex)
			if err != nil {
				return nil, "", fmt.Errorf("scenario: record %d dst: %w", i, err)
			}
			reqs = append(reqs, workload.Request{
				ID:          r.RequestID,
				Src:         src,
				Dst:         dst,
				ArrivalSlot: r.Arrival,
				StartSlot:   r.Start,
				EndSlot:     r.End,
				RateMbps:    r.RateMbps,
				Valuation:   r.Valuation,
				Class:       r.Class,
			})
		}
	}
	if len(reqs) == 0 {
		return nil, "", fmt.Errorf("scenario: trace has no request records (recorded without request recording?)")
	}
	return reqs, specName, nil
}

// endpointFromTrace inverts the sim engine's endpoint-kind naming.
func endpointFromTrace(kind string, index int) (topology.Endpoint, error) {
	if index < 0 {
		return topology.Endpoint{}, fmt.Errorf("negative endpoint index %d", index)
	}
	switch kind {
	case "ground":
		return topology.Endpoint{Kind: topology.EndpointGround, Index: index}, nil
	case "space":
		return topology.Endpoint{Kind: topology.EndpointSpace, Index: index}, nil
	default:
		return topology.Endpoint{}, fmt.Errorf("unknown endpoint kind %q", kind)
	}
}
