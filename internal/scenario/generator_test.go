package scenario

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// testBinding builds a synthetic binding: three ground pairs over four
// sites spread in longitude, plus one EO downlink pair.
func testBinding(horizon int) Binding {
	g := func(i int) topology.Endpoint { return topology.Endpoint{Kind: topology.EndpointGround, Index: i} }
	return Binding{
		Horizon: horizon,
		Pairs: []workload.Pair{
			{Src: g(0), Dst: g(1)},
			{Src: g(2), Dst: g(3)},
			{Src: topology.Endpoint{Kind: topology.EndpointSpace, Index: 0}, Dst: g(1)},
		},
		Sites: []grid.Site{
			{ID: 0, LatDeg: 40.7, LonDeg: -74},    // New York
			{ID: 1, LatDeg: 51.5, LonDeg: -0.1},   // London
			{ID: 2, LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
			{ID: 3, LatDeg: -33.9, LonDeg: 151.2}, // Sydney
		},
		DefaultValuation: 1e8,
	}
}

func multiClassSpec() Spec {
	s := validSpec()
	s.Classes[0].Pairs = []int{0, 1}
	s.Classes = append(s.Classes,
		Class{
			Name:    "bulk",
			Arrival: ArrivalSpec{Process: ProcessGamma, RatePerSlot: 1, Shape: 2},
			Mix: MixSpec{
				MinDurationSlots: 3, MaxDurationSlots: 10,
				MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 900,
			},
			Diurnal: &DiurnalSpec{PeriodSlots: 96, Amplitude: 0.5, SolarPhase: true},
		},
		Class{
			Name:    "eo",
			Arrival: ArrivalSpec{Process: ProcessWeibull, RatePerSlot: 0.5, Shape: 0.8},
			Mix: MixSpec{
				MinDurationSlots: 1, MaxDurationSlots: 2,
				MinRateMbps: 800, MaxRateMbps: 1600, MeanRateMbps: 1100,
			},
			Pairs: []int{2},
		},
	)
	return s
}

func TestGenerateMatchesStreaming(t *testing.T) {
	spec := multiClassSpec()
	b := testBinding(200)
	batch, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("empty workload")
	}
	gen, err := NewGenerator(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []workload.Request
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		streamed = append(streamed, req)
	}
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatal("batch and streamed sequences differ")
	}
}

// TestGeneratorSeedSweptAcrossGOMAXPROCS extends the PR 5 streaming
// determinism gate to the scenario engine: for every seed, the batch
// sequence over all request-mix classes (Poisson, Gamma and Weibull
// arrivals with distinct mixes) is the reference, and concurrent
// streaming drains under several GOMAXPROCS settings must reproduce it
// byte-identically — the sequence is a pure function of (spec, binding).
func TestGeneratorSeedSweptAcrossGOMAXPROCS(t *testing.T) {
	b := testBinding(200)
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, seed := range []int64{1, 7, 42, 1001} {
		spec := multiClassSpec()
		spec.Seed = seed
		reference, err := Generate(spec, b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(reference) == 0 {
			t.Fatalf("seed %d: empty workload", seed)
		}
		classes := map[string]bool{}
		for _, r := range reference {
			classes[r.Class] = true
		}
		for _, c := range spec.Classes {
			if !classes[c.Name] {
				t.Fatalf("seed %d: class %q produced no arrivals; the sweep must cover every mix", seed, c.Name)
			}
		}
		for _, procs := range []int{1, 2, max(4, orig)} {
			runtime.GOMAXPROCS(procs)
			const workers = 4
			results := make([][]workload.Request, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gen, err := NewGenerator(spec, b)
					if err != nil {
						return // nil result caught below
					}
					var out []workload.Request
					for {
						req, ok := gen.Next()
						if !ok {
							break
						}
						out = append(out, req)
					}
					results[w] = out
				}(w)
			}
			wg.Wait()
			for w, got := range results {
				if got == nil {
					t.Fatalf("seed %d GOMAXPROCS=%d worker %d: generator construction failed", seed, procs, w)
				}
				if !reflect.DeepEqual(got, reference) {
					t.Fatalf("seed %d GOMAXPROCS=%d worker %d: stream diverges from batch", seed, procs, w)
				}
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := multiClassSpec()
	b := testBinding(200)
	first, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same seed produced different sequences")
	}
	spec.Seed++
	third, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, third) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGeneratorOrderingAndBounds(t *testing.T) {
	spec := multiClassSpec()
	b := testBinding(150)
	gen, err := NewGenerator(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	lastTime := math.Inf(-1)
	lastSlot := -1
	wantID := 0
	classes := make(map[string]int)
	for {
		a, ok := gen.NextArrival()
		if !ok {
			break
		}
		req := a.Req
		if a.Time < lastTime {
			t.Fatalf("request %d time %v precedes %v", req.ID, a.Time, lastTime)
		}
		lastTime = a.Time
		if req.ArrivalSlot != int(a.Time) {
			t.Fatalf("request %d slot %d != floor(%v)", req.ID, req.ArrivalSlot, a.Time)
		}
		if req.ArrivalSlot < lastSlot {
			t.Fatalf("request %d slot %d precedes %d", req.ID, req.ArrivalSlot, lastSlot)
		}
		lastSlot = req.ArrivalSlot
		if req.ID != wantID {
			t.Fatalf("request ID %d, want %d", req.ID, wantID)
		}
		wantID++
		if err := req.Validate(150); err != nil {
			t.Fatal(err)
		}
		if req.Valuation != 1e8 {
			t.Fatalf("request %d valuation %v, want binding default", req.ID, req.Valuation)
		}
		if a.HoldSlots < 1 {
			t.Fatalf("request %d hold %v < 1", req.ID, a.HoldSlots)
		}
		classes[req.Class]++
	}
	if wantID == 0 {
		t.Fatal("no arrivals")
	}
	for _, name := range []string{"web", "bulk", "eo"} {
		if classes[name] == 0 {
			t.Fatalf("class %q generated no requests (got %v)", name, classes)
		}
	}
}

// TestClassPairRestriction checks per-class pair subsets are honoured:
// the "eo" class above may only use pair 2 (the EO downlink pair).
func TestClassPairRestriction(t *testing.T) {
	spec := multiClassSpec()
	b := testBinding(200)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Class == "eo" && r.Src.Kind != topology.EndpointSpace {
			t.Fatalf("eo request %d uses non-space source %+v", r.ID, r.Src)
		}
		if r.Class == "web" && r.Src.Kind != topology.EndpointGround {
			t.Fatalf("web request %d uses space source", r.ID)
		}
	}
}

// TestFlashCrowdBoostsWindow: with factor 4 over a quarter of the
// horizon, the in-window arrival rate should be clearly elevated.
func TestFlashCrowdBoostsWindow(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Arrival.RatePerSlot = 4
	spec.Events = []Event{{Kind: EventFlashCrowd, StartSlot: 100, EndSlot: 199, Factor: 4}}
	b := testBinding(400)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for _, r := range reqs {
		if r.ArrivalSlot >= 100 && r.ArrivalSlot <= 199 {
			in++
		} else {
			out++
		}
	}
	inRate := float64(in) / 100
	outRate := float64(out) / 300
	if inRate < 2.5*outRate {
		t.Fatalf("flash crowd too weak: in-window rate %v vs baseline %v", inRate, outRate)
	}
}

// TestRegionalOutageSilencesRegion: an outage centred on New York with
// factor 0 must stop pair-0 (NY-sourced) arrivals inside the window
// while pair 1 (Tokyo-sourced) keeps flowing.
func TestRegionalOutageSilencesRegion(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Arrival.RatePerSlot = 4
	spec.Events = []Event{{
		Kind: EventRegionalOutage, StartSlot: 50, EndSlot: 150,
		CenterLatDeg: 40.7, CenterLonDeg: -74, RadiusKm: 500,
	}}
	b := testBinding(200)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	nyIn, tokyoIn := 0, 0
	for _, r := range reqs {
		if r.ArrivalSlot < 50 || r.ArrivalSlot > 150 || r.Src.Kind != topology.EndpointGround {
			continue
		}
		switch r.Src.Index {
		case 0:
			nyIn++
		case 2:
			tokyoIn++
		}
	}
	if nyIn != 0 {
		t.Fatalf("outage leaked: %d NY-sourced arrivals inside the window", nyIn)
	}
	if tokyoIn == 0 {
		t.Fatal("outage silenced the unaffected region too")
	}
}

// TestEOBurstShiftsMixTowardSpacePairs: a strong EO burst should raise
// the share of space-sourced arrivals inside its window.
func TestEOBurstShiftsMixTowardSpacePairs(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Arrival.RatePerSlot = 4
	spec.Classes[0].Pairs = nil // all pairs, space one included
	spec.Events = []Event{{Kind: EventEOBurst, StartSlot: 100, EndSlot: 200, Factor: 10}}
	b := testBinding(400)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	var inSpace, inAll, outSpace, outAll float64
	for _, r := range reqs {
		space := r.Src.Kind == topology.EndpointSpace
		if r.ArrivalSlot >= 100 && r.ArrivalSlot <= 200 {
			inAll++
			if space {
				inSpace++
			}
		} else {
			outAll++
			if space {
				outSpace++
			}
		}
	}
	if inAll == 0 || outAll == 0 {
		t.Fatal("windows empty")
	}
	if inSpace/inAll < 2*(outSpace/outAll) {
		t.Fatalf("EO burst too weak: in-window space share %v vs baseline %v",
			inSpace/inAll, outSpace/outAll)
	}
}

func TestSolarPhaseRequiresSites(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Diurnal = &DiurnalSpec{PeriodSlots: 96, Amplitude: 0.4, SolarPhase: true}
	b := testBinding(96)
	b.Sites = nil
	if _, err := NewGenerator(spec, b); err == nil {
		t.Fatal("solar-phased spec accepted without sites")
	}
}

func TestSpecHorizonOverride(t *testing.T) {
	spec := validSpec()
	spec.Horizon = 50
	b := testBinding(200)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.ArrivalSlot >= 50 {
			t.Fatalf("arrival at slot %d past spec horizon 50", r.ArrivalSlot)
		}
	}
	spec.Horizon = 500
	if _, err := NewGenerator(spec, b); err == nil {
		t.Fatal("spec horizon beyond binding accepted")
	}
}

func TestGeneratorRejectsBadBinding(t *testing.T) {
	spec := validSpec()
	if _, err := NewGenerator(spec, Binding{Horizon: 0, Pairs: testBinding(10).Pairs}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NewGenerator(spec, Binding{Horizon: 10}); err == nil {
		t.Fatal("empty pairs accepted")
	}
	spec.Classes[0].Pairs = []int{99}
	if _, err := NewGenerator(spec, testBinding(10)); err == nil {
		t.Fatal("out-of-range pair index accepted")
	}
	spec = validSpec()
	spec.Classes[0].Mix.Valuation = 0
	b := testBinding(10)
	b.DefaultValuation = 0
	if _, err := NewGenerator(spec, b); err == nil {
		t.Fatal("missing valuation accepted")
	}
}

// TestPoissonClassMatchesDeclaredRate: the realised arrival count of a
// flat poisson class should match rate × horizon within noise.
func TestPoissonClassMatchesDeclaredRate(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Arrival.RatePerSlot = 3
	horizon := 2000
	b := testBinding(horizon)
	reqs, err := Generate(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 * float64(horizon)
	got := float64(len(reqs))
	// 4 sigma for a Poisson count.
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("realised %v arrivals, want %v ± %v", got, want, 4*math.Sqrt(want))
	}
}
