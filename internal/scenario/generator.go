package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"spacebooking/internal/geo"
	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// Binding grounds a spec in an environment: the pairs requests travel
// between, the sites those pairs' endpoints live on (needed for
// solar-phased diurnal cycles and regional outages), the horizon, and
// the default valuation for classes that do not set their own.
type Binding struct {
	// Horizon is the number of slots arrivals may occur in.
	Horizon int
	// Pairs are the candidate source-destination pairs, indexed by the
	// spec's per-class pair lists.
	Pairs []workload.Pair
	// Sites maps ground endpoint indices to grid sites. Optional; specs
	// using solar-phased diurnals or regional outages require it.
	Sites []grid.Site
	// DefaultValuation backs classes with Mix.Valuation == 0.
	DefaultValuation float64
}

// Arrival is one generated request with its continuous arrival time —
// the extra precision the Erlang-B loss simulator needs (slots quantise
// it away).
type Arrival struct {
	Req workload.Request
	// Time is the arrival instant in continuous slot units
	// (Req.ArrivalSlot == floor(Time)).
	Time float64
	// HoldSlots is the sampled holding time before horizon truncation —
	// what a pure loss system would occupy a server for.
	HoldSlots float64
}

// Generator streams the merged request sequence of a bound spec, one
// arrival at a time in non-decreasing time order. It implements
// workload.Source, so it plugs directly into sim.RunConfig.Source and
// the serving path's load generator.
//
// Determinism: each class stream owns its RNG (seeded from the spec
// seed and the class index) and samples all of an arrival's attributes
// at generation time, so the cross-class merge order never affects any
// RNG's state. The merged sequence is a pure function of (spec,
// binding) — independent of GOMAXPROCS, wall clock, and batch vs
// streaming drain. Generate is a drained Generator, so the two modes
// are byte-identical by construction.
//
// A Generator is single-goroutine, like workload.Generator.
type Generator struct {
	spec    Spec
	horizon int
	streams []*classStream
	nextID  int
}

// classStream generates one class's arrivals by time-rescaling
// unit-mean renewal work through the piecewise-constant per-slot rate
// λ(slot) = RatePerSlot × mean(pair weights) × flash(slot), where a
// pair's weight is its diurnal multiplier times any outage/EO-burst
// event factors. For Poisson interarrivals this is exactly an
// inhomogeneous Poisson process.
type classStream struct {
	idx   int
	cls   Class
	rng   *rand.Rand
	inter interarrival
	rates workload.RateSampler
	val   float64

	pairs   []int     // indices into the binding's pairs
	phase   []float64 // per-pair diurnal phase (radians)
	eoPair  []bool    // per-pair: source is space-borne
	outaged [][]bool  // per-event, per-pair: source inside the region
	events  []Event   // events that apply to this class
	binding *Binding
	horizon int

	t        float64 // current continuous time (slots)
	curSlot  int     // slot the cached weights are for (-1: none)
	weights  []float64
	weightsW float64 // sum of cached weights
	lambda   float64 // cached per-slot rate

	next    Arrival
	hasNext bool
	done    bool
}

// NewGenerator validates the spec against the binding and positions
// every class stream before its first arrival.
func NewGenerator(spec Spec, b Binding) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if b.Horizon <= 0 {
		return nil, fmt.Errorf("scenario: binding horizon must be positive, got %d", b.Horizon)
	}
	if len(b.Pairs) == 0 {
		return nil, fmt.Errorf("scenario: binding has no pairs")
	}
	horizon := b.Horizon
	if spec.Horizon > 0 {
		if spec.Horizon > b.Horizon {
			return nil, fmt.Errorf("scenario: spec horizon %d exceeds binding horizon %d", spec.Horizon, b.Horizon)
		}
		horizon = spec.Horizon
	}
	needSites := false
	for _, ev := range spec.Events {
		if ev.Kind == EventRegionalOutage {
			needSites = true
		}
	}
	for _, c := range spec.Classes {
		if c.Diurnal != nil && c.Diurnal.SolarPhase {
			needSites = true
		}
	}
	if needSites && len(b.Sites) == 0 {
		return nil, fmt.Errorf("scenario: spec %q uses solar-phased diurnals or regional outages but the binding has no sites", spec.Name)
	}
	g := &Generator{spec: spec, horizon: horizon}
	for i, c := range spec.Classes {
		cs, err := newClassStream(i, c, spec, &b, horizon)
		if err != nil {
			return nil, err
		}
		cs.advance()
		g.streams = append(g.streams, cs)
	}
	return g, nil
}

func newClassStream(idx int, c Class, spec Spec, b *Binding, horizon int) (*classStream, error) {
	inter, err := newInterarrival(c.Arrival)
	if err != nil {
		return nil, err
	}
	rates, err := workload.NewRateSampler(c.Mix.MinRateMbps, c.Mix.MaxRateMbps, c.Mix.MeanRateMbps)
	if err != nil {
		return nil, fmt.Errorf("scenario: class %q: %w", c.Name, err)
	}
	val := c.Mix.Valuation
	if val == 0 {
		val = b.DefaultValuation
	}
	if val <= 0 {
		return nil, fmt.Errorf("scenario: class %q has no valuation and the binding has no default", c.Name)
	}
	pairs := c.Pairs
	if len(pairs) == 0 {
		pairs = make([]int, len(b.Pairs))
		for i := range pairs {
			pairs[i] = i
		}
	}
	for _, p := range pairs {
		if p >= len(b.Pairs) {
			return nil, fmt.Errorf("scenario: class %q pair index %d out of range (binding has %d pairs)",
				c.Name, p, len(b.Pairs))
		}
	}
	cs := &classStream{
		idx: idx, cls: c, inter: inter, rates: rates, val: val,
		pairs: pairs, binding: b, horizon: horizon, curSlot: -1,
		// Distinct large seed offsets per class keep streams independent
		// while remaining a pure function of (seed, class index).
		rng: rand.New(rand.NewSource(spec.Seed + int64(idx+1)*0x9E3779B9)),
	}
	cs.phase = make([]float64, len(pairs))
	cs.eoPair = make([]bool, len(pairs))
	for i, p := range pairs {
		pair := b.Pairs[p]
		cs.eoPair[i] = pair.Src.Kind == topology.EndpointSpace
		if c.Diurnal != nil && c.Diurnal.SolarPhase && !cs.eoPair[i] {
			if pair.Src.Index >= len(b.Sites) {
				return nil, fmt.Errorf("scenario: class %q pair %d source site %d outside binding sites (%d)",
					c.Name, p, pair.Src.Index, len(b.Sites))
			}
			// Slot 0 is 00:00 UTC; local solar time leads UTC by
			// lon/360 of a day, and intensity peaks at local noon:
			// 1 + A·sin(2π·(slot/period + lon/360) − π/2).
			cs.phase[i] = 2*math.Pi*b.Sites[pair.Src.Index].LonDeg/360 - math.Pi/2
		}
	}
	for _, ev := range spec.Events {
		if !ev.appliesTo(c.Name) {
			continue
		}
		cs.events = append(cs.events, ev)
		member := make([]bool, len(pairs))
		if ev.Kind == EventRegionalOutage {
			center := geo.LLA{LatDeg: ev.CenterLatDeg, LonDeg: ev.CenterLonDeg}
			for i, p := range pairs {
				pair := b.Pairs[p]
				if pair.Src.Kind != topology.EndpointGround || pair.Src.Index >= len(b.Sites) {
					continue
				}
				site := b.Sites[pair.Src.Index]
				member[i] = geo.GreatCircleKm(site.LLA(), center) <= ev.RadiusKm
			}
		}
		cs.outaged = append(cs.outaged, member)
	}
	cs.weights = make([]float64, len(pairs))
	return cs, nil
}

// refreshSlot recomputes the per-pair weights and the effective rate
// for a slot. Weights and rate are piecewise constant per slot.
func (cs *classStream) refreshSlot(slot int) {
	if slot == cs.curSlot {
		return
	}
	cs.curSlot = slot
	total := 0.0
	for i := range cs.weights {
		w := 1.0
		if d := cs.cls.Diurnal; d != nil {
			w *= 1 + d.Amplitude*math.Sin(2*math.Pi*float64(slot)/float64(d.PeriodSlots)+cs.phase[i])
		}
		for e, ev := range cs.events {
			if !ev.active(slot) {
				continue
			}
			switch ev.Kind {
			case EventRegionalOutage:
				if cs.outaged[e][i] {
					w *= ev.Factor
				}
			case EventEOBurst:
				if cs.eoPair[i] {
					w *= ev.Factor
				}
			}
		}
		cs.weights[i] = w
		total += w
	}
	cs.weightsW = total
	lam := cs.cls.Arrival.RatePerSlot * total / float64(len(cs.weights))
	for _, ev := range cs.events {
		if ev.Kind == EventFlashCrowd && ev.active(slot) {
			lam *= ev.Factor
		}
	}
	cs.lambda = lam
}

// advance stages the stream's next arrival (hasNext false at horizon
// end). One unit-mean work sample is integrated through λ(slot).
func (cs *classStream) advance() {
	cs.hasNext = false
	if cs.done {
		return
	}
	work := cs.inter.sample(cs.rng)
	for {
		slot := int(cs.t)
		if slot >= cs.horizon {
			cs.done = true
			return
		}
		cs.refreshSlot(slot)
		if cs.lambda <= 0 {
			cs.t = float64(slot + 1)
			continue
		}
		capacity := (float64(slot+1) - cs.t) * cs.lambda
		if work > capacity {
			work -= capacity
			cs.t = float64(slot + 1)
			continue
		}
		cs.t += work / cs.lambda
		// Guard against landing exactly on the boundary: the arrival
		// belongs to the slot whose capacity absorbed the work.
		if cs.t >= float64(slot+1) {
			cs.t = math.Nextafter(float64(slot+1), 0)
		}
		cs.emit(slot)
		return
	}
}

// emit samples the arrival's attributes (pair by weight, duration,
// demand) with the class's own RNG and stages it.
func (cs *classStream) emit(slot int) {
	// Fall back to the last pair if accumulated rounding keeps u above
	// every partial sum.
	pick := len(cs.weights) - 1
	u := cs.rng.Float64() * cs.weightsW
	acc := 0.0
	for i, w := range cs.weights {
		acc += w
		if u < acc {
			pick = i
			break
		}
	}
	pair := cs.binding.Pairs[cs.pairs[pick]]
	dur := cs.cls.Mix.MinDurationSlots +
		cs.rng.Intn(cs.cls.Mix.MaxDurationSlots-cs.cls.Mix.MinDurationSlots+1)
	end := slot + dur - 1
	if end >= cs.horizon {
		end = cs.horizon - 1
	}
	cs.next = Arrival{
		Req: workload.Request{
			Src:         pair.Src,
			Dst:         pair.Dst,
			ArrivalSlot: slot,
			StartSlot:   slot,
			EndSlot:     end,
			RateMbps:    cs.rates.Sample(cs.rng),
			Valuation:   cs.val,
			Class:       cs.cls.Name,
		},
		Time:      cs.t,
		HoldSlots: float64(dur),
	}
	cs.hasNext = true
}

// NextArrival returns the next arrival across all classes in
// non-decreasing time order (ties broken by class index), with request
// IDs assigned sequentially at emission.
func (g *Generator) NextArrival() (Arrival, bool) {
	best := -1
	for i, cs := range g.streams {
		if !cs.hasNext {
			continue
		}
		if best < 0 || cs.next.Time < g.streams[best].next.Time {
			best = i
		}
	}
	if best < 0 {
		return Arrival{}, false
	}
	cs := g.streams[best]
	a := cs.next
	a.Req.ID = g.nextID
	g.nextID++
	cs.advance()
	return a, true
}

// Next implements workload.Source.
func (g *Generator) Next() (workload.Request, bool) {
	a, ok := g.NextArrival()
	return a.Req, ok
}

// Horizon returns the effective horizon the generator emits within.
func (g *Generator) Horizon() int { return g.horizon }

// Generate materialises the whole sequence — a drained Generator, so
// batch and streaming modes cannot diverge.
func Generate(spec Spec, b Binding) ([]workload.Request, error) {
	g, err := NewGenerator(spec, b)
	if err != nil {
		return nil, err
	}
	var out []workload.Request
	for {
		req, ok := g.Next()
		if !ok {
			return out, nil
		}
		out = append(out, req)
	}
}
