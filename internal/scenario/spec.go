// Package scenario is the declarative workload layer over
// internal/workload: versioned JSON specs describe multiple client
// classes (Poisson/Gamma/Weibull interarrivals, per-class request
// mixes), diurnal intensity cycles keyed to the GDP grid, and timed
// events (flash crowds, regional outages, EO-fleet downlink bursts)
// that modulate rates mid-run. A spec plus a Binding (horizon, pairs,
// sites) yields a deterministic request stream that plugs into both the
// batch simulator and the serving path, and the package's Erlang-B
// analytical twin gives closed-form blocking probabilities to validate
// the simulator against on single-bottleneck scenarios.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// SpecVersion is the schema version this package reads and writes.
const SpecVersion = 1

// Arrival process names.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
)

// Event kinds.
const (
	// EventFlashCrowd multiplies the arrival rate of the affected
	// classes by Factor during the window.
	EventFlashCrowd = "flash_crowd"
	// EventRegionalOutage scales the weight of pairs whose source site
	// lies within RadiusKm of the centre by Factor (default 0: the
	// region goes dark) during the window.
	EventRegionalOutage = "regional_outage"
	// EventEOBurst multiplies the weight of pairs with a space-borne
	// source (EO downlink pairs) by Factor during the window — a fleet
	// dumping imagery after a pass.
	EventEOBurst = "eo_burst"
)

// Spec is a declarative workload: what arrives, when, and how intensely.
// It is deliberately environment-free — pairs, sites and the default
// horizon come from a Binding at generation time, so the same spec file
// drives the small CI preset and the full-scale constellation alike.
type Spec struct {
	// Version must equal SpecVersion.
	Version int `json:"version"`
	// Name identifies the spec in traces, reports and SUMMARY lines.
	Name string `json:"name"`
	// Seed drives every random draw; two runs of the same spec and
	// binding with the same seed are byte-identical.
	Seed int64 `json:"seed"`
	// Horizon optionally overrides the binding's horizon (it must not
	// exceed it). Zero means "use the binding's".
	Horizon int `json:"horizon,omitempty"`
	// Classes are the client classes whose arrival streams superpose.
	Classes []Class `json:"classes"`
	// Events modulate rates mid-run.
	Events []Event `json:"events,omitempty"`
}

// Class is one client population with its own arrival process and
// request mix.
type Class struct {
	Name    string      `json:"name"`
	Arrival ArrivalSpec `json:"arrival"`
	Mix     MixSpec     `json:"mix"`
	// Diurnal optionally modulates the class's intensity on a daily
	// cycle.
	Diurnal *DiurnalSpec `json:"diurnal,omitempty"`
	// Pairs optionally restricts the class to a subset of the binding's
	// pairs, by index. Empty means all pairs.
	Pairs []int `json:"pairs,omitempty"`
}

// ArrivalSpec selects the interarrival-time distribution of a class.
// The process is a renewal process with the given mean rate; under
// rate modulation (diurnal cycles, events) interarrival "work" is
// rescaled through the piecewise-constant per-slot rate, which for the
// Poisson process is exactly an inhomogeneous Poisson process.
type ArrivalSpec struct {
	// Process is one of poisson, gamma, weibull.
	Process string `json:"process"`
	// RatePerSlot is the mean arrival rate per slot (requests/minute at
	// 1-minute slots) before modulation.
	RatePerSlot float64 `json:"rate_per_slot"`
	// Shape is the gamma/weibull shape parameter k (> 0): k = 1
	// recovers the exponential; k > 1 is smoother than Poisson
	// (CV < 1), k < 1 burstier. Ignored for poisson.
	Shape float64 `json:"shape,omitempty"`
}

// MixSpec is the per-class request mix: durations uniform in slots,
// demands from the paper's calibrated truncated exponential.
type MixSpec struct {
	MinDurationSlots int     `json:"min_duration_slots"`
	MaxDurationSlots int     `json:"max_duration_slots"`
	MinRateMbps      float64 `json:"min_rate_mbps"`
	MaxRateMbps      float64 `json:"max_rate_mbps"`
	MeanRateMbps     float64 `json:"mean_rate_mbps"`
	// Valuation is ρ_i for this class's requests; zero means the
	// binding's default (the environment's calibrated operating point).
	Valuation float64 `json:"valuation,omitempty"`
}

// DiurnalSpec is a sinusoidal daily intensity cycle: multiplier
// 1 + Amplitude·sin(2π·slot/PeriodSlots + φ).
type DiurnalSpec struct {
	// PeriodSlots is the cycle length (1440 at 1-minute slots).
	PeriodSlots int `json:"period_slots"`
	// Amplitude is the relative swing, in [0, 1).
	Amplitude float64 `json:"amplitude"`
	// SolarPhase keys each pair's phase to its source site's longitude
	// (slot 0 = 00:00 UTC): intensity peaks at local solar noon and
	// troughs at local midnight, so demand follows the sun across the
	// GDP grid. Requires the binding to carry sites; space-borne
	// sources use longitude 0.
	SolarPhase bool `json:"solar_phase,omitempty"`
}

// Event is a timed rate modulation, active on slots in
// [StartSlot, EndSlot] inclusive.
type Event struct {
	Kind      string `json:"kind"`
	StartSlot int    `json:"start_slot"`
	EndSlot   int    `json:"end_slot"`
	// Factor is the rate multiplier (flash_crowd, eo_burst: required,
	// > 0) or the residual weight of the darkened region
	// (regional_outage: default 0).
	Factor float64 `json:"factor,omitempty"`
	// CenterLatDeg/CenterLonDeg/RadiusKm locate a regional outage.
	CenterLatDeg float64 `json:"center_lat_deg,omitempty"`
	CenterLonDeg float64 `json:"center_lon_deg,omitempty"`
	RadiusKm     float64 `json:"radius_km,omitempty"`
	// Classes optionally restricts the event to the named classes;
	// empty means all.
	Classes []string `json:"classes,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields are rejected so a
// typo'd key fails loudly instead of silently dropping a modulation.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		// Parse errors already carry the "scenario:" prefix; add the path.
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks everything checkable without a binding (pair indices
// are range-checked when the spec is bound to an environment).
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: spec version %d (this build reads version %d)", s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.Horizon < 0 {
		return fmt.Errorf("scenario: negative horizon %d", s.Horizon)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("scenario: spec %q has no classes", s.Name)
	}
	names := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("scenario: class %d has no name", i)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: duplicate class name %q", c.Name)
		}
		names[c.Name] = true
		if err := c.validate(); err != nil {
			return fmt.Errorf("scenario: class %q: %w", c.Name, err)
		}
	}
	for i, ev := range s.Events {
		if err := ev.validate(names); err != nil {
			return fmt.Errorf("scenario: event %d: %w", i, err)
		}
	}
	return nil
}

func (c Class) validate() error {
	a := c.Arrival
	switch a.Process {
	case ProcessPoisson:
	case ProcessGamma, ProcessWeibull:
		if a.Shape <= 0 || math.IsNaN(a.Shape) {
			return fmt.Errorf("%s shape must be positive, got %v", a.Process, a.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival process %q (want %s, %s or %s)",
			a.Process, ProcessPoisson, ProcessGamma, ProcessWeibull)
	}
	if a.RatePerSlot <= 0 || math.IsNaN(a.RatePerSlot) {
		return fmt.Errorf("arrival rate must be positive, got %v", a.RatePerSlot)
	}
	m := c.Mix
	switch {
	case m.MinDurationSlots <= 0 || m.MaxDurationSlots < m.MinDurationSlots:
		return fmt.Errorf("bad duration range [%d,%d]", m.MinDurationSlots, m.MaxDurationSlots)
	case m.MinRateMbps <= 0 || m.MaxRateMbps < m.MinRateMbps:
		return fmt.Errorf("bad rate range [%v,%v]", m.MinRateMbps, m.MaxRateMbps)
	case m.MeanRateMbps < m.MinRateMbps || m.MeanRateMbps > m.MaxRateMbps:
		return fmt.Errorf("mean rate %v outside [%v,%v]", m.MeanRateMbps, m.MinRateMbps, m.MaxRateMbps)
	case m.Valuation < 0:
		return fmt.Errorf("negative valuation %v", m.Valuation)
	}
	if d := c.Diurnal; d != nil {
		if d.PeriodSlots <= 0 {
			return fmt.Errorf("diurnal period must be positive, got %d", d.PeriodSlots)
		}
		if d.Amplitude < 0 || d.Amplitude >= 1 {
			return fmt.Errorf("diurnal amplitude %v outside [0,1)", d.Amplitude)
		}
	}
	for _, p := range c.Pairs {
		if p < 0 {
			return fmt.Errorf("negative pair index %d", p)
		}
	}
	return nil
}

func (ev Event) validate(classNames map[string]bool) error {
	if ev.StartSlot < 0 || ev.EndSlot < ev.StartSlot {
		return fmt.Errorf("bad window [%d,%d]", ev.StartSlot, ev.EndSlot)
	}
	switch ev.Kind {
	case EventFlashCrowd, EventEOBurst:
		if ev.Factor <= 0 || math.IsNaN(ev.Factor) {
			return fmt.Errorf("%s factor must be positive, got %v", ev.Kind, ev.Factor)
		}
	case EventRegionalOutage:
		if ev.RadiusKm <= 0 {
			return fmt.Errorf("outage radius must be positive, got %v", ev.RadiusKm)
		}
		if ev.Factor < 0 || ev.Factor >= 1 || math.IsNaN(ev.Factor) {
			return fmt.Errorf("outage factor %v outside [0,1)", ev.Factor)
		}
	default:
		return fmt.Errorf("unknown event kind %q (want %s, %s or %s)",
			ev.Kind, EventFlashCrowd, EventRegionalOutage, EventEOBurst)
	}
	for _, name := range ev.Classes {
		if !classNames[name] {
			return fmt.Errorf("references unknown class %q", name)
		}
	}
	return nil
}

// appliesTo reports whether the event modulates the named class.
func (ev Event) appliesTo(class string) bool {
	if len(ev.Classes) == 0 {
		return true
	}
	for _, name := range ev.Classes {
		if name == class {
			return true
		}
	}
	return false
}

// active reports whether the event covers the slot.
func (ev Event) active(slot int) bool {
	return slot >= ev.StartSlot && slot <= ev.EndSlot
}

// EventTimeline renders the events compactly for SUMMARY lines and
// reports: "flash_crowd[40-60]x3(web)".
func (s Spec) EventTimeline() []string {
	out := make([]string, 0, len(s.Events))
	for _, ev := range s.Events {
		line := fmt.Sprintf("%s[%d-%d]", ev.Kind, ev.StartSlot, ev.EndSlot)
		switch ev.Kind {
		case EventRegionalOutage:
			line += fmt.Sprintf("@(%.1f,%.1f)r%.0fkm", ev.CenterLatDeg, ev.CenterLonDeg, ev.RadiusKm)
			if ev.Factor > 0 {
				line += fmt.Sprintf("x%g", ev.Factor)
			}
		default:
			line += fmt.Sprintf("x%g", ev.Factor)
		}
		if len(ev.Classes) > 0 {
			line += "(" + strings.Join(ev.Classes, ",") + ")"
		}
		out = append(out, line)
	}
	return out
}
