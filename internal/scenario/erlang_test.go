package scenario

import (
	"math"
	"strings"
	"testing"
)

// erlangBRecurrence is the textbook recurrence
// B(0) = 1, B(k) = E·B(k−1) / (k + E·B(k−1)) — an independent
// cross-check of the log-space form.
func erlangBRecurrence(servers int, erlangs float64) float64 {
	b := 1.0
	for k := 1; k <= servers; k++ {
		b = erlangs * b / (float64(k) + erlangs*b)
	}
	return b
}

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		servers int
		erlangs float64
		want    float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{2, 2, 0.4},
		{5, 3, 0.11005},
	}
	for _, tc := range cases {
		got := ErlangB(tc.servers, tc.erlangs)
		if math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("ErlangB(%d, %v) = %v, want %v", tc.servers, tc.erlangs, got, tc.want)
		}
	}
}

func TestErlangBMatchesRecurrence(t *testing.T) {
	for _, servers := range []int{1, 10, 50, 200, 500} {
		for _, erlangs := range []float64{0.5, 5, 50, 300} {
			got := ErlangB(servers, erlangs)
			want := erlangBRecurrence(servers, erlangs)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("ErlangB(%d, %v) = %v, recurrence %v", servers, erlangs, got, want)
			}
			if got < 0 || got > 1 || math.IsNaN(got) {
				t.Errorf("ErlangB(%d, %v) = %v outside [0,1]", servers, erlangs, got)
			}
		}
	}
}

func TestErlangBEdgeCases(t *testing.T) {
	if got := ErlangB(0, 5); got != 1 {
		t.Errorf("zero servers: %v, want 1", got)
	}
	if got := ErlangB(5, 0); got != 0 {
		t.Errorf("zero load: %v, want 0", got)
	}
}

// singleBottleneckSpec is a stationary Poisson spec suitable for
// Erlang-B validation: λ = 5/slot, holds uniform on [1,3] slots
// (mean 2), so the offered load is 10 erlangs.
func singleBottleneckSpec(horizon int) Spec {
	return Spec{
		Version: SpecVersion,
		Name:    "erlangb",
		Seed:    3,
		Horizon: horizon,
		Classes: []Class{{
			Name:    "calls",
			Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSlot: 5},
			Mix: MixSpec{
				MinDurationSlots: 1, MaxDurationSlots: 3,
				MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 1250,
				Valuation: 1e8,
			},
		}},
	}
}

// TestValidateErlangBConverges is the acceptance-criteria check: the
// measured blocking of the generator-driven loss simulation lands
// inside the documented tolerance of the closed form, across seeds.
func TestValidateErlangBConverges(t *testing.T) {
	b := testBinding(4000)
	for seed := int64(1); seed <= 3; seed++ {
		spec := singleBottleneckSpec(4000)
		spec.Seed = seed
		rep, err := ValidateErlangB(spec, b, 12)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OfferedErlangs != 10 {
			t.Fatalf("offered %v erlangs, want 10", rep.OfferedErlangs)
		}
		want := erlangBRecurrence(12, 10)
		if math.Abs(rep.Analytic-want) > 1e-9 {
			t.Fatalf("analytic %v, want %v", rep.Analytic, want)
		}
		if !rep.Pass {
			t.Fatalf("seed %d: measured %v vs analytic %v exceeds tolerance %v (n=%d)",
				seed, rep.Measured, rep.Analytic, rep.Tolerance, rep.Arrivals)
		}
	}
}

// TestValidateErlangBInsensitivity: with a different holding range of
// the same mean, the blocking must not move (M/G/m/m insensitivity) —
// this is what justifies comparing uniform holds to the formula.
func TestValidateErlangBInsensitivity(t *testing.T) {
	b := testBinding(4000)
	spec := singleBottleneckSpec(4000)
	spec.Classes[0].Mix.MinDurationSlots = 2
	spec.Classes[0].Mix.MaxDurationSlots = 2
	rep, err := ValidateErlangB(spec, b, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OfferedErlangs != 10 || !rep.Pass {
		t.Fatalf("deterministic holds: %+v", rep)
	}
}

func TestValidateErlangBRejectsNonStationary(t *testing.T) {
	b := testBinding(500)

	spec := singleBottleneckSpec(500)
	spec.Classes[0].Arrival = ArrivalSpec{Process: ProcessGamma, RatePerSlot: 5, Shape: 2}
	if _, err := ValidateErlangB(spec, b, 10); err == nil || !strings.Contains(err.Error(), "poisson") {
		t.Fatalf("gamma arrivals accepted: %v", err)
	}

	spec = singleBottleneckSpec(500)
	spec.Classes[0].Diurnal = &DiurnalSpec{PeriodSlots: 96, Amplitude: 0.3}
	if _, err := ValidateErlangB(spec, b, 10); err == nil || !strings.Contains(err.Error(), "diurnal") {
		t.Fatalf("diurnal accepted: %v", err)
	}

	spec = singleBottleneckSpec(500)
	spec.Events = []Event{{Kind: EventFlashCrowd, StartSlot: 10, EndSlot: 20, Factor: 2}}
	if _, err := ValidateErlangB(spec, b, 10); err == nil || !strings.Contains(err.Error(), "events") {
		t.Fatalf("events accepted: %v", err)
	}

	if _, err := ValidateErlangB(singleBottleneckSpec(500), b, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestErlangBReportString(t *testing.T) {
	rep := ErlangBReport{Servers: 12, OfferedErlangs: 10, Analytic: 0.12, Measured: 0.118,
		Arrivals: 18000, Tolerance: 0.015, Pass: true}
	s := rep.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "servers=12") {
		t.Fatalf("report string %q", s)
	}
}

func TestBusyHeap(t *testing.T) {
	var h busyHeap
	for _, v := range []float64{5, 1, 4, 2, 3} {
		h.push(v)
	}
	for want := 1.0; want <= 5; want++ {
		if got := h.pop(); got != want {
			t.Fatalf("pop %v, want %v", got, want)
		}
	}
}
