package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// interarrival samples unit-mean interarrival "work". The generator
// rescales the work through the piecewise-constant per-slot rate λ(t):
// for the exponential sampler this is exactly an inhomogeneous Poisson
// process (time-rescaling theorem); for gamma/weibull it is the
// corresponding rate-modulated renewal process.
type interarrival interface {
	sample(rng *rand.Rand) float64
}

// newInterarrival builds the unit-mean sampler for an arrival spec.
func newInterarrival(a ArrivalSpec) (interarrival, error) {
	switch a.Process {
	case ProcessPoisson:
		return expInterarrival{}, nil
	case ProcessGamma:
		return gammaInterarrival{shape: a.Shape}, nil
	case ProcessWeibull:
		// Unit mean requires scale 1/Γ(1 + 1/k).
		return weibullInterarrival{shape: a.Shape, scale: 1 / math.Gamma(1+1/a.Shape)}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown arrival process %q", a.Process)
	}
}

// expInterarrival is Exp(1): the Poisson process.
type expInterarrival struct{}

func (expInterarrival) sample(rng *rand.Rand) float64 { return rng.ExpFloat64() }

// gammaInterarrival is Gamma(k, 1/k): unit mean, CV 1/√k.
type gammaInterarrival struct{ shape float64 }

func (g gammaInterarrival) sample(rng *rand.Rand) float64 {
	return gammaVariate(rng, g.shape) / g.shape
}

// gammaVariate samples Gamma(k, 1) via Marsaglia-Tsang squeeze
// (k >= 1), boosted for k < 1 with Gamma(k) = Gamma(k+1)·U^{1/k}.
func gammaVariate(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaVariate(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullInterarrival is Weibull(k, scale) by inverse CDF: unit mean
// when scale = 1/Γ(1+1/k).
type weibullInterarrival struct{ shape, scale float64 }

func (w weibullInterarrival) sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	// -ln(1-u) with u in [0,1) is finite and >= 0.
	return w.scale * math.Pow(-math.Log1p(-u), 1/w.shape)
}
