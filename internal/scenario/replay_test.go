package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
)

// TestRequestsFromTraceRoundTrip: a generated request stream written as
// KindRequest records (through the real JSONL writer) must come back
// equal after a parse — including float fields, which survive because
// Go marshals the shortest representation that parses back exactly.
func TestRequestsFromTraceRoundTrip(t *testing.T) {
	spec := multiClassSpec()
	reqs, err := Generate(spec, testBinding(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("empty workload")
	}

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.Emit(trace.Record{Kind: trace.KindRunInfo, Algorithm: "CEAR", Seed: spec.Seed, Spec: spec.Name}); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		rec := trace.Record{
			Kind:      trace.KindRequest,
			RequestID: r.ID,
			Arrival:   r.ArrivalSlot,
			Start:     r.StartSlot,
			End:       r.EndSlot,
			RateMbps:  r.RateMbps,
			Valuation: r.Valuation,
			SrcKind:   kindName(r.Src.Kind == topology.EndpointSpace),
			SrcIndex:  r.Src.Index,
			DstKind:   kindName(r.Dst.Kind == topology.EndpointSpace),
			DstIndex:  r.Dst.Index,
			Class:     r.Class,
		}
		if err := w.Emit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, specName, err := RequestsFromTrace(records)
	if err != nil {
		t.Fatal(err)
	}
	if specName != spec.Name {
		t.Fatalf("spec name %q, want %q", specName, spec.Name)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("round-tripped requests differ from originals")
	}
}

func kindName(space bool) string {
	if space {
		return "space"
	}
	return "ground"
}

func TestRequestsFromTraceErrors(t *testing.T) {
	if _, _, err := RequestsFromTrace([]trace.Record{{Kind: trace.KindRunInfo}}); err == nil {
		t.Fatal("request-free trace accepted")
	}
	bad := []trace.Record{{Kind: trace.KindRequest, SrcKind: "sea", DstKind: "ground"}}
	if _, _, err := RequestsFromTrace(bad); err == nil {
		t.Fatal("unknown endpoint kind accepted")
	}
	neg := []trace.Record{{Kind: trace.KindRequest, SrcKind: "ground", SrcIndex: -1, DstKind: "ground"}}
	if _, _, err := RequestsFromTrace(neg); err == nil {
		t.Fatal("negative index accepted")
	}
}
