package scenario

import (
	"fmt"
	"math"
)

// ErlangB returns the Erlang-B blocking probability B(m, E) of an
// M/G/m/m loss system offered E erlangs: the probability an arrival
// finds all m servers busy. Computed in log space —
// m·ln E − ln m!  minus the logsumexp of the denominator series — so it
// stays finite for hundreds of servers where E^m and m! overflow.
//
// By M/G/m/m insensitivity the result depends on the holding-time
// distribution only through its mean, which is what lets the validation
// harness use the generator's uniform integer durations directly.
func ErlangB(servers int, erlangs float64) float64 {
	if servers <= 0 {
		return 1
	}
	if erlangs <= 0 {
		return 0
	}
	logE := math.Log(erlangs)
	terms := make([]float64, servers+1)
	maxT := math.Inf(-1)
	for k := 0; k <= servers; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		terms[k] = float64(k)*logE - lg
		if terms[k] > maxT {
			maxT = terms[k]
		}
	}
	sum := 0.0
	for _, t := range terms {
		sum += math.Exp(t - maxT)
	}
	return math.Exp(terms[servers] - (maxT + math.Log(sum)))
}

// ErlangBReport is the outcome of validating the generator's measured
// blocking against the Erlang-B prediction on a single-bottleneck
// scenario.
type ErlangBReport struct {
	Servers        int     `json:"servers"`
	LambdaPerSlot  float64 `json:"lambda_per_slot"`
	MeanHoldSlots  float64 `json:"mean_hold_slots"`
	OfferedErlangs float64 `json:"offered_erlangs"`
	// Analytic is B(m, E).
	Analytic float64 `json:"analytic"`
	// Arrivals and Blocked count post-warmup arrivals in the loss
	// simulation; Measured = Blocked/Arrivals.
	Arrivals int     `json:"arrivals"`
	Blocked  int     `json:"blocked"`
	Measured float64 `json:"measured"`
	// Tolerance is the acceptance band: max(0.015, 4·stderr) with
	// stderr the binomial standard error at the analytic rate. The
	// absolute floor absorbs the residual bias of a finite, initially
	// empty system; the stderr term scales the band to the sample size.
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
}

func (r ErlangBReport) String() string {
	verdict := "FAIL"
	if r.Pass {
		verdict = "PASS"
	}
	return fmt.Sprintf("erlang_b servers=%d offered=%.3fE analytic=%.4f measured=%.4f (n=%d) tol=%.4f %s",
		r.Servers, r.OfferedErlangs, r.Analytic, r.Measured, r.Arrivals, r.Tolerance, verdict)
}

// ValidateErlangB runs the spec's arrival stream through an exact
// continuous-time m-server loss simulation and compares the measured
// blocking probability against the Erlang-B closed form. It is the
// correctness evidence no seed sweep gives: an agreeing pair means the
// generator's arrival process really is the Poisson process the spec
// declares, at the declared rate, with the declared holding times.
//
// The formula requires stationary Poisson arrivals, so the spec must
// use only poisson classes and no diurnal cycles or events; anything
// else is rejected. The first 10% of the horizon is treated as warmup:
// those arrivals occupy servers but are not scored, removing the
// empty-system transient.
func ValidateErlangB(spec Spec, b Binding, servers int) (ErlangBReport, error) {
	if servers <= 0 {
		return ErlangBReport{}, fmt.Errorf("scenario: erlang-b servers must be positive, got %d", servers)
	}
	lambda := 0.0
	weightedHold := 0.0
	for _, c := range spec.Classes {
		if c.Arrival.Process != ProcessPoisson {
			return ErlangBReport{}, fmt.Errorf("scenario: erlang-b validation requires poisson arrivals, class %q uses %s",
				c.Name, c.Arrival.Process)
		}
		if c.Diurnal != nil {
			return ErlangBReport{}, fmt.Errorf("scenario: erlang-b validation requires a stationary rate, class %q has a diurnal cycle", c.Name)
		}
		lambda += c.Arrival.RatePerSlot
		weightedHold += c.Arrival.RatePerSlot *
			(float64(c.Mix.MinDurationSlots+c.Mix.MaxDurationSlots) / 2)
	}
	if len(spec.Events) > 0 {
		return ErlangBReport{}, fmt.Errorf("scenario: erlang-b validation requires a stationary rate, spec has %d events", len(spec.Events))
	}
	gen, err := NewGenerator(spec, b)
	if err != nil {
		return ErlangBReport{}, err
	}
	meanHold := weightedHold / lambda
	offered := lambda * meanHold
	analytic := ErlangB(servers, offered)

	warmupT := float64(gen.Horizon()) / 10
	var busy busyHeap
	arrivals, blocked := 0, 0
	for {
		a, ok := gen.NextArrival()
		if !ok {
			break
		}
		for len(busy) > 0 && busy[0] <= a.Time {
			busy.pop()
		}
		scored := a.Time >= warmupT
		if scored {
			arrivals++
		}
		if len(busy) < servers {
			busy.push(a.Time + a.HoldSlots)
		} else if scored {
			blocked++
		}
	}
	if arrivals == 0 {
		return ErlangBReport{}, fmt.Errorf("scenario: erlang-b validation saw no post-warmup arrivals (horizon %d too short?)", gen.Horizon())
	}
	measured := float64(blocked) / float64(arrivals)
	stderr := math.Sqrt(analytic * (1 - analytic) / float64(arrivals))
	tol := math.Max(0.015, 4*stderr)
	return ErlangBReport{
		Servers:        servers,
		LambdaPerSlot:  lambda,
		MeanHoldSlots:  meanHold,
		OfferedErlangs: offered,
		Analytic:       analytic,
		Arrivals:       arrivals,
		Blocked:        blocked,
		Measured:       measured,
		Tolerance:      tol,
		Pass:           math.Abs(measured-analytic) <= tol,
	}, nil
}

// busyHeap is a min-heap of departure times for the loss simulation.
type busyHeap []float64

func (h *busyHeap) push(t float64) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *busyHeap) pop() float64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s[l] < s[smallest] {
			smallest = l
		}
		if r < n && s[r] < s[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	*h = s
	return top
}
