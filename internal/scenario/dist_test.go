package scenario

import (
	"math"
	"math/rand"
	"testing"
)

// TestInterarrivalUnitMean verifies every process/shape combination
// actually has unit mean — the invariant the time-rescaling generator
// relies on for its rates to come out as declared.
func TestInterarrivalUnitMean(t *testing.T) {
	cases := []ArrivalSpec{
		{Process: ProcessPoisson, RatePerSlot: 1},
		{Process: ProcessGamma, RatePerSlot: 1, Shape: 0.5},
		{Process: ProcessGamma, RatePerSlot: 1, Shape: 1},
		{Process: ProcessGamma, RatePerSlot: 1, Shape: 4},
		{Process: ProcessWeibull, RatePerSlot: 1, Shape: 0.7},
		{Process: ProcessWeibull, RatePerSlot: 1, Shape: 1},
		{Process: ProcessWeibull, RatePerSlot: 1, Shape: 2.5},
	}
	for _, a := range cases {
		s, err := newInterarrival(a)
		if err != nil {
			t.Fatalf("%s/%v: %v", a.Process, a.Shape, err)
		}
		rng := rand.New(rand.NewSource(11))
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := s.sample(rng)
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s/%v: bad sample %v", a.Process, a.Shape, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("%s shape %v: mean %v, want 1±0.02", a.Process, a.Shape, mean)
		}
	}
}

// TestGammaShapeControlsVariance checks the dispersion ordering the
// spec documents: shape > 1 is smoother than Poisson, shape < 1
// burstier.
func TestGammaShapeControlsVariance(t *testing.T) {
	variance := func(shape float64) float64 {
		s, err := newInterarrival(ArrivalSpec{Process: ProcessGamma, RatePerSlot: 1, Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := s.sample(rng)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	smooth, bursty := variance(4), variance(0.5)
	if !(smooth < 0.5 && bursty > 1.5) {
		t.Fatalf("variance ordering wrong: shape 4 -> %v (want < 0.5), shape 0.5 -> %v (want > 1.5)",
			smooth, bursty)
	}
}

func TestInterarrivalDeterministic(t *testing.T) {
	for _, a := range []ArrivalSpec{
		{Process: ProcessGamma, RatePerSlot: 1, Shape: 2},
		{Process: ProcessWeibull, RatePerSlot: 1, Shape: 1.5},
	} {
		s, err := newInterarrival(a)
		if err != nil {
			t.Fatal(err)
		}
		r1 := rand.New(rand.NewSource(3))
		r2 := rand.New(rand.NewSource(3))
		for i := 0; i < 1000; i++ {
			if x, y := s.sample(r1), s.sample(r2); x != y {
				t.Fatalf("%s: sample %d diverged: %v vs %v", a.Process, i, x, y)
			}
		}
	}
}
