package pricing_test

import (
	"fmt"

	"spacebooking/internal/pricing"
)

// The paper's §VI-A parameters: n=20 hops, 𝕋=10 slots, F1=F2=1 give the
// base price factors μ1=μ2=402 and a competitive ratio of ~35.6.
func ExampleDerive() {
	params, err := pricing.Derive(1, 1, 20, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mu1=%.0f mu2=%.0f\n", params.Mu1, params.Mu2)
	fmt.Printf("competitive ratio %.1f\n", params.CompetitiveRatio())
	fmt.Printf("idle price %.0f, half-utilised %.1f, saturated %.0f\n",
		params.CongestionUnitCost(0),
		params.CongestionUnitCost(0.5),
		params.CongestionUnitCost(1))
	// Output:
	// mu1=402 mu2=402
	// competitive ratio 35.6
	// idle price 0, half-utilised 19.0, saturated 401
}
