package pricing

import (
	"math"
	"testing"
)

func TestFastPricerMatchesExact(t *testing.T) {
	p := paperParams(t)
	f := p.Fast()
	for i := 0; i <= 100000; i++ {
		lambda := float64(i) / 100000
		exact := p.CongestionUnitCost(lambda)
		fast := f.CongestionUnitCost(lambda)
		tol := 1e-7 * (1 + exact)
		if math.Abs(exact-fast) > tol {
			t.Fatalf("congestion at λ=%v: fast %v vs exact %v", lambda, fast, exact)
		}
		exactE := p.EnergyUnitCost(lambda)
		fastE := f.EnergyUnitCost(lambda)
		if math.Abs(exactE-fastE) > 1e-7*(1+exactE) {
			t.Fatalf("energy at λ=%v: fast %v vs exact %v", lambda, fastE, exactE)
		}
	}
}

func TestFastPricerClamps(t *testing.T) {
	p := paperParams(t)
	f := p.Fast()
	if got := f.EnergyUnitCost(-0.5); got != 0 {
		t.Errorf("negative λ = %v, want 0", got)
	}
	if got := f.EnergyUnitCost(2); math.Abs(got-401) > 1e-6 {
		t.Errorf("λ>1 = %v, want 401", got)
	}
	if got := f.CongestionUnitCost(0); got != 0 {
		t.Errorf("λ=0 = %v, want exactly 0", got)
	}
}

func BenchmarkExactEnergyUnitCost(b *testing.B) {
	p, err := Derive(1, 1, 20, 10)
	if err != nil {
		b.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += p.EnergyUnitCost(float64(i%1000) / 1000)
	}
	_ = sum
}

func BenchmarkFastEnergyUnitCost(b *testing.B) {
	p, err := Derive(1, 1, 20, 10)
	if err != nil {
		b.Fatal(err)
	}
	f := p.Fast()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += f.EnergyUnitCost(float64(i%1000) / 1000)
	}
	_ = sum
}
