package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func paperParams(t *testing.T) Params {
	t.Helper()
	p, err := Derive(1, 1, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDerivePaperValues(t *testing.T) {
	p := paperParams(t)
	// §VI-A: n=20, 𝕋=10, F1=F2=1 → μ = 2(200+1) = 402.
	if p.Mu1 != 402 || p.Mu2 != 402 {
		t.Errorf("μ1=%v μ2=%v, want 402 each", p.Mu1, p.Mu2)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveErrors(t *testing.T) {
	tests := []struct {
		name           string
		f1, f2         float64
		hops, duration int
	}{
		{"zero F1", 0, 1, 20, 10},
		{"negative F2", 1, -1, 20, 10},
		{"zero hops", 1, 1, 0, 10},
		{"zero duration", 1, 1, 20, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Derive(tt.f1, tt.f2, tt.hops, tt.duration); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestValidateRejectsDegenerateMu(t *testing.T) {
	if err := (Params{Mu1: 1, Mu2: 402}).Validate(); err == nil {
		t.Error("μ1=1 should be invalid")
	}
	if err := (Params{Mu1: 402, Mu2: 0.5}).Validate(); err == nil {
		t.Error("μ2<1 should be invalid")
	}
}

func TestCostEndpoints(t *testing.T) {
	p := paperParams(t)
	// Zero utilization → zero price (idle resources are free, so the
	// first request takes a shortest path).
	if got := p.CongestionUnitCost(0); got != 0 {
		t.Errorf("unit cost at λ=0: %v", got)
	}
	if got := p.EnergyUnitCost(0); got != 0 {
		t.Errorf("energy unit cost at λ=0: %v", got)
	}
	// Full utilization → μ−1.
	if got := p.CongestionUnitCost(1); math.Abs(got-401) > 1e-9 {
		t.Errorf("unit cost at λ=1: %v, want 401", got)
	}
	if got := p.EnergyCost(117000, 1); math.Abs(got-117000*401) > 1e-6 {
		t.Errorf("energy cost at λ=1: %v", got)
	}
	if got := p.CongestionCost(20000, 0.5); math.Abs(got-20000*(math.Sqrt(402)-1)) > 1e-6 {
		t.Errorf("congestion cost at λ=0.5: %v", got)
	}
}

func TestCostMonotoneAndConvex(t *testing.T) {
	p := paperParams(t)
	prev := -1.0
	prevDelta := 0.0
	for i := 0; i <= 100; i++ {
		l := float64(i) / 100
		c := p.CongestionUnitCost(l)
		if c <= prev {
			t.Fatalf("cost not strictly increasing at λ=%v", l)
		}
		if i > 0 {
			delta := c - prev
			if i > 1 && delta < prevDelta {
				t.Fatalf("cost not convex at λ=%v", l)
			}
			prevDelta = delta
		}
		prev = c
	}
}

func TestCostClampsUtilization(t *testing.T) {
	p := paperParams(t)
	if got := p.CongestionUnitCost(-0.5); got != 0 {
		t.Errorf("negative λ cost = %v, want 0", got)
	}
	if got := p.CongestionUnitCost(1.5); math.Abs(got-401) > 1e-9 {
		t.Errorf("λ>1 cost = %v, want clamp at 401", got)
	}
}

func TestCompetitiveRatio(t *testing.T) {
	p := paperParams(t)
	want := 2*math.Log2(402*402) + 1
	if got := p.CompetitiveRatio(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ratio = %v, want %v", got, want)
	}
	// ~35.6 for the paper's parameters.
	if got := p.CompetitiveRatio(); got < 35 || got > 36 {
		t.Errorf("ratio = %v, expected ~35.6", got)
	}
}

func TestAssumptionBounds(t *testing.T) {
	p := paperParams(t)
	if got := p.MaxValuation(); got != 400 {
		t.Errorf("max valuation = %v, want 400 (n𝕋F1 + n𝕋F2)", got)
	}
	// Assumption 2: δ ≤ c_min / log2(μ1).
	want := 4000 / math.Log2(402)
	if got := p.DemandBound(4000); math.Abs(got-want) > 1e-9 {
		t.Errorf("demand bound = %v, want %v", got, want)
	}
	wantE := 117000 / math.Log2(402)
	if got := p.EnergyBound(117000); math.Abs(got-wantE) > 1e-9 {
		t.Errorf("energy bound = %v, want %v", got, wantE)
	}
}

// Property: raising F raises μ and therefore every non-trivial price
// (more conservative pricing).
func TestConservativenessMonotone(t *testing.T) {
	f := func(rawF float64, rawLambda float64) bool {
		f2 := 0.5 + math.Mod(math.Abs(rawF), 8)
		lambda := math.Mod(math.Abs(rawLambda), 1)
		if math.IsNaN(f2) || math.IsNaN(lambda) || lambda == 0 {
			return true
		}
		base, err := Derive(1, f2, 20, 10)
		if err != nil {
			return false
		}
		higher, err := Derive(1, f2*2, 20, 10)
		if err != nil {
			return false
		}
		return higher.EnergyUnitCost(lambda) > base.EnergyUnitCost(lambda)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
