package pricing

import (
	"math"

	"spacebooking/internal/obs"
)

// lutSize is the resolution of the price lookup table. With 8192 bins
// over λ ∈ [0,1] and linear interpolation, the relative error against
// math.Pow is below 1e-8 for the μ values used in practice — far finer
// than any behavioural difference in the simulator.
const lutSize = 8192

// lut tabulates f(λ) = μ^λ − 1 on a uniform grid over [0,1].
type lut struct {
	vals [lutSize + 1]float64
}

func newLUT(mu float64) lut {
	var l lut
	logMu := math.Log(mu)
	for i := 0; i <= lutSize; i++ {
		l.vals[i] = math.Exp(logMu*float64(i)/lutSize) - 1
	}
	return l
}

// at evaluates the table with clamping and linear interpolation.
func (l *lut) at(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda >= 1 {
		return l.vals[lutSize]
	}
	pos := lambda * lutSize
	idx := int(pos)
	frac := pos - float64(idx)
	return l.vals[idx]*(1-frac) + l.vals[idx+1]*frac
}

// FastPricer evaluates the exponential unit prices of Eqs. (10)–(11)
// via precomputed tables. The deficit-pricing inner loop of CEAR calls
// these once per (satellite, persisted slot); with math.Pow that single
// call dominates whole-simulation CPU time, so the table is what makes
// paper-scale runs tractable on one core.
type FastPricer struct {
	congestion lut
	energy     lut
	// lookups, when instrumented, counts table evaluations — the
	// innermost operation of admission pricing. Nil (a single branch)
	// unless a registry is attached.
	lookups *obs.Counter
}

// Instrument attaches a lookup counter (nil detaches). Not safe to call
// concurrently with pricing; wire it at algorithm construction.
func (f *FastPricer) Instrument(c *obs.Counter) { f.lookups = c }

// Fast precomputes a FastPricer for these parameters.
func (p Params) Fast() *FastPricer {
	return &FastPricer{
		congestion: newLUT(p.Mu1),
		energy:     newLUT(p.Mu2),
	}
}

// CongestionUnitCost is the table-backed equivalent of
// Params.CongestionUnitCost: μ1^λ − 1.
func (f *FastPricer) CongestionUnitCost(lambda float64) float64 {
	f.lookups.Inc()
	return f.congestion.at(lambda)
}

// EnergyUnitCost is the table-backed equivalent of
// Params.EnergyUnitCost: μ2^λ − 1.
func (f *FastPricer) EnergyUnitCost(lambda float64) float64 {
	f.lookups.Inc()
	return f.energy.at(lambda)
}
