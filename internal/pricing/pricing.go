// Package pricing implements the exponential resource-pricing scheme at
// the heart of CEAR (§IV-B of the paper): congestion and energy costs
// that grow exponentially with utilization (Eqs. (10)–(11)), the
// derivation of the base price factors μ1 = 2(n𝕋F1 + 1) and
// μ2 = 2(n𝕋F2 + 1) from the conservativeness parameters, and the
// competitive ratio 2·log2(μ1·μ2) + 1 of Theorem 1.
package pricing

import (
	"fmt"
	"math"
)

// Params holds the pricing-scheme parameters.
type Params struct {
	// Mu1 and Mu2 are the base price factors for bandwidth and energy.
	Mu1 float64
	Mu2 float64
	// F1 and F2 are the conservativeness parameters of §V.
	F1 float64
	F2 float64
	// MaxHops is n, the maximum number of hops in any path.
	MaxHops int
	// MaxDurationSlots is 𝕋, the maximum request duration in slots.
	MaxDurationSlots int
}

// Derive computes the base price factors from the conservativeness
// parameters per §V: μ = 2(n𝕋F + 1).
func Derive(f1, f2 float64, maxHops, maxDurationSlots int) (Params, error) {
	switch {
	case f1 <= 0 || f2 <= 0:
		return Params{}, fmt.Errorf("pricing: conservativeness parameters must be positive (F1=%v, F2=%v)", f1, f2)
	case maxHops <= 0:
		return Params{}, fmt.Errorf("pricing: max hops must be positive, got %d", maxHops)
	case maxDurationSlots <= 0:
		return Params{}, fmt.Errorf("pricing: max duration must be positive, got %d", maxDurationSlots)
	}
	nt := float64(maxHops) * float64(maxDurationSlots)
	return Params{
		Mu1:              2 * (nt*f1 + 1),
		Mu2:              2 * (nt*f2 + 1),
		F1:               f1,
		F2:               f2,
		MaxHops:          maxHops,
		MaxDurationSlots: maxDurationSlots,
	}, nil
}

// Validate reports whether the parameters are usable for pricing.
func (p Params) Validate() error {
	if p.Mu1 <= 1 || p.Mu2 <= 1 {
		return fmt.Errorf("pricing: base factors must exceed 1 (μ1=%v, μ2=%v)", p.Mu1, p.Mu2)
	}
	return nil
}

// CongestionCost returns σ_e(T) = c_e(T)·(μ1^λ − 1), Eq. (10).
func (p Params) CongestionCost(capacity, lambda float64) float64 {
	return capacity * p.CongestionUnitCost(lambda)
}

// CongestionUnitCost returns σ_e(T)/c_e(T) = μ1^λ − 1, the congestion
// price per unit of reserved bandwidth, as used in the first term of the
// plan cost (Eq. (12)).
func (p Params) CongestionUnitCost(lambda float64) float64 {
	return math.Pow(p.Mu1, clamp01(lambda)) - 1
}

// EnergyCost returns σ_s(T) = ϖ_s·(μ2^λ − 1), Eq. (11).
func (p Params) EnergyCost(batteryCapacity, lambda float64) float64 {
	return batteryCapacity * p.EnergyUnitCost(lambda)
}

// EnergyUnitCost returns σ_s(T)/ϖ_s = μ2^λ − 1, the energy price per
// joule of battery deficit, as used in the second term of Eq. (12).
func (p Params) EnergyUnitCost(lambda float64) float64 {
	return math.Pow(p.Mu2, clamp01(lambda)) - 1
}

// CompetitiveRatio returns the bound of Theorem 1: 2·log2(μ1·μ2) + 1.
func (p Params) CompetitiveRatio() float64 {
	return 2*math.Log2(p.Mu1*p.Mu2) + 1
}

// MaxValuation returns the upper valuation bound of Assumption 1,
// n𝕋F1 + n𝕋F2, above which the worst-case analysis no longer applies.
func (p Params) MaxValuation() float64 {
	nt := float64(p.MaxHops) * float64(p.MaxDurationSlots)
	return nt*p.F1 + nt*p.F2
}

// DemandBound returns Assumption 2's per-slot demand cap for a link of
// the given capacity: c_min / log2(μ1).
func (p Params) DemandBound(minLinkCapacity float64) float64 {
	return minLinkCapacity / math.Log2(p.Mu1)
}

// EnergyBound returns Assumption 2's per-request battery-deficit cap for
// a battery of the given capacity: ϖ_min / log2(μ2).
func (p Params) EnergyBound(minBatteryCapacity float64) float64 {
	return minBatteryCapacity / math.Log2(p.Mu2)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
