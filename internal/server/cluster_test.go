package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"spacebooking/internal/cluster"
	"spacebooking/internal/obs"
	"spacebooking/internal/workload"
)

// TestShardedServerEndToEnd drives a two-shard daemon through the HTTP
// surface: bookings decide, /v1/stats grows a shard section, the drain
// is graceful, and the prepare ledger reconciles.
func TestShardedServerEndToEnd(t *testing.T) {
	rc := testRunConfig(t, 3, 99)
	rc.Obs = obs.New()
	s, hs := newTestServer(t, Config{
		Run:    rc,
		Shards: 2,
		Router: cluster.RoundRobin,
	})
	if s.NumShards() != 2 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}

	reqs, err := workload.Generate(rc.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 10 {
		t.Fatalf("workload too small: %d requests", len(reqs))
	}
	decided := 0
	for i, req := range reqs {
		arrival, start, end := req.ArrivalSlot, req.StartSlot, req.EndSlot
		code, out := postBook(t, hs.URL, BookRequest{
			Src:         refOf(req.Src),
			Dst:         refOf(req.Dst),
			RateMbps:    req.RateMbps,
			Valuation:   req.Valuation,
			ArrivalSlot: &arrival,
			StartSlot:   &start,
			EndSlot:     &end,
		})
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d (%+v)", i, code, out)
		}
		if st := out.Reservation.Status; st != StatusAccepted && st != StatusRejected {
			t.Fatalf("request %d: non-terminal status %q", i, st)
		}
		decided++
	}

	st := s.StatsSnapshot()
	if len(st.Shards) != 2 {
		t.Fatalf("stats shard section has %d rows, want 2", len(st.Shards))
	}
	if st.Router != "round-robin" {
		t.Errorf("router = %q", st.Router)
	}
	var submitted, prepared, committed, aborted int64
	for _, row := range st.Shards {
		submitted += row.Submitted
		prepared += row.Prepared
		committed += row.Committed
		aborted += row.Aborted
		if row.Submitted == 0 {
			t.Errorf("shard %d received no bookings under round-robin", row.ID)
		}
	}
	if submitted != int64(decided) {
		t.Errorf("shards saw %d bookings, served %d", submitted, decided)
	}
	if st.Accepted > 0 && prepared == 0 {
		t.Error("accepted bookings but no prepares in two-shard mode")
	}
	if prepared != committed+aborted {
		t.Errorf("prepared %d != committed %d + aborted %d", prepared, committed, aborted)
	}

	// Graceful drain: Shutdown completes and the merged result is
	// available with no prepare-ledger leak surfacing as an error.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.TotalRequests != decided {
		t.Errorf("merged result total = %d, want %d", res.TotalRequests, decided)
	}
	// The cluster-wide obs counters reconcile with the shard stats.
	reg := rc.Obs
	if got := reg.Counter("cluster.prepared.total").Value(); got != prepared {
		t.Errorf("cluster.prepared.total = %d, shard stats sum %d", got, prepared)
	}
	if got := reg.Counter("cluster.aborted.total").Value(); got != aborted {
		t.Errorf("cluster.aborted.total = %d, shard stats sum %d", got, aborted)
	}
}

// TestShardTokenBucketSheds429 freezes the wall clock so the per-shard
// buckets never refill: once both shards' single tokens are spent every
// booking must shed with HTTP 429 and reason "overloaded_shard".
func TestShardTokenBucketSheds429(t *testing.T) {
	rc := testRunConfig(t, 1, 5)
	frozen := testEpoch
	s, hs := newTestServer(t, Config{
		Run:             rc,
		Shards:          2,
		Router:          cluster.RoundRobin,
		ShardTokenRate:  1,
		ShardTokenBurst: 1,
		Now:             func() time.Time { return frozen },
	})
	_ = s
	book := func() (int, BookResponse) {
		arrival, start, end := 0, 0, 0
		return postBook(t, hs.URL, BookRequest{
			Src:         EndpointRef{Kind: "ground", Index: 0},
			Dst:         EndpointRef{Kind: "ground", Index: 1},
			RateMbps:    100,
			Valuation:   1e8,
			ArrivalSlot: &arrival,
			StartSlot:   &start,
			EndSlot:     &end,
		})
	}
	for i := 0; i < 2; i++ {
		if code, out := book(); code != http.StatusOK {
			t.Fatalf("booking %d within burst: HTTP %d (%+v)", i, code, out)
		}
	}
	for i := 0; i < 3; i++ {
		code, out := book()
		if code != http.StatusTooManyRequests {
			t.Fatalf("booking past burst: HTTP %d, want 429 (%+v)", code, out)
		}
		if out.Status != StatusOverloaded || out.Reason != "overloaded_shard" {
			t.Fatalf("shed response = %+v, want overloaded/overloaded_shard", out)
		}
		if out.Reservation != nil {
			t.Fatalf("shed booking got a reservation: %+v", out.Reservation)
		}
	}
}
