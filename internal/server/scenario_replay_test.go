package server

import (
	"bytes"
	"context"
	"net/http"
	"reflect"
	"testing"
	"time"

	"spacebooking/internal/scenario"
	"spacebooking/internal/sim"
	"spacebooking/internal/trace"
)

// TestScenarioReplayThroughServer is the serving-path half of the
// record/replay acceptance gate: a scenario-driven batch run recorded
// to a request trace, replayed one booking at a time through the HTTP
// front end, must reproduce every decision, price, rejection reason and
// hop count, and the drained server's final Result must equal the batch
// Result exactly.
func TestScenarioReplayThroughServer(t *testing.T) {
	prov := testProvider(t)
	rc := testRunConfig(t, 3, 4242)

	spec := scenario.Spec{
		Version: scenario.SpecVersion,
		Name:    "served-replay",
		Seed:    4242,
		Classes: []scenario.Class{
			{
				Name:    "interactive",
				Arrival: scenario.ArrivalSpec{Process: scenario.ProcessPoisson, RatePerSlot: 2},
				Mix: scenario.MixSpec{MinDurationSlots: 1, MaxDurationSlots: 5,
					MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 1250},
			},
			{
				Name:    "transfer",
				Arrival: scenario.ArrivalSpec{Process: scenario.ProcessGamma, RatePerSlot: 1, Shape: 3},
				Mix: scenario.MixSpec{MinDurationSlots: 3, MaxDurationSlots: 10,
					MinRateMbps: 1000, MaxRateMbps: 4000, MeanRateMbps: 2000},
			},
		},
	}
	gen, err := scenario.NewGenerator(spec, scenario.Binding{
		Horizon: 48, Pairs: testPairs(), DefaultValuation: 1e8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Record: the batch path drains the generator with request recording.
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	batchRC := rc
	batchRC.Trace = tw
	batchRC.RecordRequests = true
	batchRC.SpecName = spec.Name
	batchRC.Source = gen
	batchRes, err := sim.Run(prov, batchRC)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reqs, name, err := scenario.RequestsFromTrace(records)
	if err != nil {
		t.Fatal(err)
	}
	if name != spec.Name {
		t.Fatalf("trace carries spec %q, want %q", name, spec.Name)
	}
	var decisions []trace.Record
	for _, r := range records {
		if r.Kind == trace.KindDecision {
			decisions = append(decisions, r)
		}
	}
	if len(decisions) == 0 || len(decisions) != len(reqs) {
		t.Fatalf("trace has %d decisions for %d requests", len(decisions), len(reqs))
	}

	// Replay: the same stream over HTTP with pinned slots.
	srv, hs := newTestServer(t, Config{Provider: prov, Run: rc, BatchSize: 1, QueueDepth: 4})
	for i, req := range reqs {
		arrival, start, end := req.ArrivalSlot, req.StartSlot, req.EndSlot
		code, out := postBook(t, hs.URL, BookRequest{
			Src:         refOf(req.Src),
			Dst:         refOf(req.Dst),
			RateMbps:    req.RateMbps,
			Valuation:   req.Valuation,
			ArrivalSlot: &arrival,
			StartSlot:   &start,
			EndSlot:     &end,
		})
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d (%+v)", i, code, out)
		}
		want := decisions[i]
		got := out.Reservation
		if got == nil {
			t.Fatalf("request %d: no reservation in response", i)
		}
		if accepted := got.Status == StatusAccepted; accepted != want.Accepted {
			t.Fatalf("request %d: served accepted=%v, recorded accepted=%v", i, accepted, want.Accepted)
		}
		if got.Price != want.Price {
			t.Fatalf("request %d: served price %v, recorded price %v", i, got.Price, want.Price)
		}
		if got.Status == StatusRejected && got.Reason != want.Reason {
			t.Fatalf("request %d: served reason %q, recorded reason %q", i, got.Reason, want.Reason)
		}
		if got.TotalHops != want.TotalHops {
			t.Fatalf("request %d: served hops %d, recorded hops %d", i, got.TotalHops, want.TotalHops)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	servedRes, err := srv.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchRes, servedRes) {
		t.Fatalf("served result diverges from recorded batch result:\nbatch:  %+v\nserved: %+v", batchRes, servedRes)
	}
}
