package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

// sharedProvider is built once: provider construction dominates test time.
var (
	provOnce   sync.Once
	sharedProv *topology.Provider
	provErr    error
)

func testProvider(t *testing.T) *topology.Provider {
	t.Helper()
	provOnce.Do(func() {
		cfg := topology.DefaultConfig(testEpoch)
		cfg.Walker.Planes = 8
		cfg.Walker.SatsPerPlane = 12
		cfg.Walker.PhasingF = 3
		cfg.Horizon = 48
		sharedProv, provErr = topology.NewProvider(cfg, testSites(), nil)
	})
	if provErr != nil {
		t.Fatal(provErr)
	}
	return sharedProv
}

func testSites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
		{ID: 2, LatDeg: 51.5, LonDeg: -0.1},   // London
		{ID: 3, LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
	}
}

func testPairs() []workload.Pair {
	ep := func(i int) topology.Endpoint {
		return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
	}
	return []workload.Pair{
		{Src: ep(0), Dst: ep(1)},
		{Src: ep(2), Dst: ep(3)},
		{Src: ep(0), Dst: ep(3)},
	}
}

func testRunConfig(t *testing.T, rate float64, seed int64) sim.RunConfig {
	t.Helper()
	wl := workload.DefaultConfig(48, testPairs(), seed)
	wl.ArrivalRatePerSlot = rate
	wl.Valuation = 1e8
	rc, err := sim.DefaultRunConfig(sim.AlgCEAR, wl)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Provider == nil {
		cfg.Provider = testProvider(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	s.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

// postBook sends one booking and decodes the response.
func postBook(t *testing.T, url string, br BookRequest) (int, BookResponse) {
	t.Helper()
	body, err := json.Marshal(br)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/book", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BookResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /v1/book response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServedStreamMatchesBatchRun is the acceptance gate of the serving
// layer: an httptest-hosted server (clock at max speed, batch size 1)
// admitting the workload stream of sim.Run must produce byte-identical
// accept/reject decisions, prices, and committed state — proving the
// batch and serving paths share one engine.
func TestServedStreamMatchesBatchRun(t *testing.T) {
	prov := testProvider(t)
	rc := testRunConfig(t, 3, 1234)

	// Batch path: sim.Run with a decision trace.
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	batchRC := rc
	batchRC.Trace = tw
	batchRes, err := sim.Run(prov, batchRC)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var batchDecisions []trace.Record
	for _, r := range records {
		if r.Kind == trace.KindDecision {
			batchDecisions = append(batchDecisions, r)
		}
	}
	if len(batchDecisions) == 0 {
		t.Fatal("batch run produced no decisions; raise the arrival rate")
	}

	// Serving path: same stream over HTTP, one request at a time.
	srv, hs := newTestServer(t, Config{Provider: prov, Run: rc, BatchSize: 1, QueueDepth: 4})
	reqs, err := workload.Generate(rc.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != len(batchDecisions) {
		t.Fatalf("workload has %d requests, batch trace %d decisions", len(reqs), len(batchDecisions))
	}
	for i, req := range reqs {
		arrival, start, end := req.ArrivalSlot, req.StartSlot, req.EndSlot
		code, out := postBook(t, hs.URL, BookRequest{
			Src:         refOf(req.Src),
			Dst:         refOf(req.Dst),
			RateMbps:    req.RateMbps,
			Valuation:   req.Valuation,
			ArrivalSlot: &arrival,
			StartSlot:   &start,
			EndSlot:     &end,
		})
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d (%+v)", i, code, out)
		}
		want := batchDecisions[i]
		got := out.Reservation
		if got == nil {
			t.Fatalf("request %d: no reservation in response", i)
		}
		if accepted := got.Status == StatusAccepted; accepted != want.Accepted {
			t.Fatalf("request %d: served accepted=%v, batch accepted=%v", i, accepted, want.Accepted)
		}
		if got.Price != want.Price {
			t.Fatalf("request %d: served price %v, batch price %v", i, got.Price, want.Price)
		}
		if got.Status == StatusRejected && got.Reason != want.Reason {
			t.Fatalf("request %d: served reason %q, batch reason %q", i, got.Reason, want.Reason)
		}
		if got.TotalHops != want.TotalHops {
			t.Fatalf("request %d: served hops %d, batch hops %d", i, got.TotalHops, want.TotalHops)
		}
	}

	// Committed state: the drained server's final Result must equal the
	// batch Result exactly (same welfare, revenue, per-slot depletion
	// and congestion sweeps over the committed reservations).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	servedRes, err := srv.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchRes, servedRes) {
		t.Fatalf("served result diverges from batch result:\nbatch:  %+v\nserved: %+v", batchRes, servedRes)
	}
}

// TestOverloadSheds verifies explicit backpressure: with the engine
// stalled and the ingress queue full, further bookings get an immediate
// StatusOverloaded response (HTTP 429), the server.shed counter matches
// the client-observed sheds, and nothing blocks.
func TestOverloadSheds(t *testing.T) {
	rc := testRunConfig(t, 2, 7)
	reg := obs.New()
	rc.Obs = reg
	gate := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Run: rc, BatchSize: 1, QueueDepth: 2, testGate: gate,
	})

	br := func() BookRequest {
		return BookRequest{
			Src:      EndpointRef{Kind: "ground", Index: 0},
			Dst:      EndpointRef{Kind: "ground", Index: 1},
			RateMbps: 600,
		}
	}

	// First booking: consumed by the engine goroutine, which stalls on
	// the gate mid-batch. Its response arrives later, so post it from a
	// goroutine.
	firstDone := make(chan BookResponse, 1)
	go func() {
		_, out := postBook(t, hs.URL, br())
		firstDone <- out
	}()
	// The engine parks on the gate having popped the first booking;
	// wait until the queue is observably drained of it.
	waitFor(t, func() bool { return s.cl.QueuedTotal() == 0 && s.ctrBatches.Value() == 0 })

	// Fill the queue to capacity; these must enqueue without shedding.
	resps := make([]chan BookResponse, 2)
	for i := range resps {
		resps[i] = make(chan BookResponse, 1)
		ch := resps[i]
		go func() {
			_, out := postBook(t, hs.URL, br())
			ch <- out
		}()
	}
	waitFor(t, func() bool { return s.cl.QueuedTotal() == 2 })

	// Queue full: the next bookings shed immediately.
	const sheds = 3
	for i := 0; i < sheds; i++ {
		code, out := postBook(t, hs.URL, br())
		if code != http.StatusTooManyRequests {
			t.Fatalf("shed %d: HTTP %d, want 429", i, code)
		}
		if out.Status != StatusOverloaded {
			t.Fatalf("shed %d: status %q, want %q", i, out.Status, StatusOverloaded)
		}
		if out.Reservation != nil {
			t.Fatalf("shed %d: shed response carries a reservation", i)
		}
	}
	if got := reg.Counter("server.shed").Value(); got != sheds {
		t.Errorf("server.shed = %d, want %d (must match client-observed sheds)", got, sheds)
	}

	// Open the gate: every queued booking settles.
	close(gate)
	for i, ch := range append([]chan BookResponse{firstDone}, resps...) {
		select {
		case out := <-ch:
			if out.Status != StatusAccepted && out.Status != StatusRejected {
				t.Errorf("queued booking %d settled as %q", i, out.Status)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("queued booking %d never settled", i)
		}
	}
}

// TestGracefulDrain verifies drain-then-stop: Shutdown stops intake
// (healthz 503, bookings refused with StatusDraining) but every already
// queued request is still decided before Shutdown returns.
func TestGracefulDrain(t *testing.T) {
	rc := testRunConfig(t, 2, 8)
	gate := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Run: rc, BatchSize: 1, QueueDepth: 4, testGate: gate,
	})

	br := BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 2},
		Dst:      EndpointRef{Kind: "ground", Index: 3},
		RateMbps: 700,
	}
	// Queue two bookings behind the stalled engine.
	out1, out2 := make(chan BookResponse, 1), make(chan BookResponse, 1)
	for _, ch := range []chan BookResponse{out1, out2} {
		ch := ch
		go func() {
			_, out := postBook(t, hs.URL, br)
			ch <- out
		}()
	}
	waitFor(t, func() bool { return s.cl.QueuedTotal() >= 1 && s.ctrBatches.Value() == 0 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Draining: new intake refused, health reports it.
	waitFor(t, func() bool {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	code, out := postBook(t, hs.URL, br)
	if code != http.StatusServiceUnavailable || out.Status != StatusDraining {
		t.Fatalf("booking while draining: HTTP %d status %q, want 503 %q", code, out.Status, StatusDraining)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i, ch := range []chan BookResponse{out1, out2} {
		select {
		case got := <-ch:
			if got.Status != StatusAccepted && got.Status != StatusRejected {
				t.Errorf("in-flight booking %d settled as %q, want a decision", i, got.Status)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("in-flight booking %d lost during drain", i)
		}
	}
	if res, err := s.Result(); err != nil || res == nil {
		t.Fatalf("Result after drain: %v, %v", res, err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestRealtimeClockExpiry drives a real-time clock with a fake time
// source: requests whose declared window has wholly passed are rejected
// as expired without touching the engine, and arrivals past the horizon
// are rejected as horizon-exhausted.
func TestRealtimeClockExpiry(t *testing.T) {
	rc := testRunConfig(t, 2, 9)
	reg := obs.New()
	rc.Obs = reg
	var mu sync.Mutex
	now := testEpoch
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	_, hs := newTestServer(t, Config{
		Run:       rc,
		ClockRate: 1, // one slot per second
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})

	// Clock at slot 10: a window declared as [2,5] has expired.
	advance(10 * time.Second)
	start, end := 2, 5
	code, out := postBook(t, hs.URL, BookRequest{
		Src:       EndpointRef{Kind: "ground", Index: 0},
		Dst:       EndpointRef{Kind: "ground", Index: 1},
		RateMbps:  600,
		StartSlot: &start, EndSlot: &end,
	})
	if code != http.StatusOK {
		t.Fatalf("expired booking: HTTP %d", code)
	}
	if out.Status != StatusRejected || out.Reservation.Reason != ReasonExpired {
		t.Fatalf("expired booking: %+v, want rejected/%s", out, ReasonExpired)
	}
	if out.Reservation.ArrivalSlot != 10 {
		t.Errorf("expired booking arrival slot = %d, want 10", out.Reservation.ArrivalSlot)
	}
	if got := reg.Counter("server.expired").Value(); got != 1 {
		t.Errorf("server.expired = %d, want 1", got)
	}

	// A fresh booking at slot 10 reaches the engine and gets a real
	// decision.
	code, out = postBook(t, hs.URL, BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 0},
		Dst:      EndpointRef{Kind: "ground", Index: 1},
		RateMbps: 600, DurationSlots: 3,
	})
	if code != http.StatusOK || (out.Status != StatusAccepted && out.Status != StatusRejected) {
		t.Fatalf("live booking: HTTP %d %+v", code, out)
	}
	if out.Status == StatusAccepted && out.Reservation.Price <= 0 {
		t.Errorf("accepted booking has price %v, want > 0", out.Reservation.Price)
	}

	// Clock past the horizon: bookings are horizon-exhausted.
	advance(time.Duration(48) * time.Second)
	code, out = postBook(t, hs.URL, BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 0},
		Dst:      EndpointRef{Kind: "ground", Index: 1},
		RateMbps: 600,
	})
	if code != http.StatusOK {
		t.Fatalf("post-horizon booking: HTTP %d", code)
	}
	if out.Status != StatusRejected || out.Reservation.Reason != ReasonHorizonExhausted {
		t.Fatalf("post-horizon booking: %+v, want rejected/%s", out, ReasonHorizonExhausted)
	}
}

// TestAPIEndpoints covers the read-side API: reservations round-trip,
// stats fields, config echo, validation failures.
func TestAPIEndpoints(t *testing.T) {
	rc := testRunConfig(t, 2, 10)
	reg := obs.New()
	rc.Obs = reg
	s, hs := newTestServer(t, Config{Run: rc, QueueDepth: 8})

	// Validation failures are 400 with an error body.
	for name, br := range map[string]BookRequest{
		"bad kind":  {Src: EndpointRef{Kind: "lunar", Index: 0}, Dst: EndpointRef{Kind: "ground", Index: 1}, RateMbps: 1},
		"bad index": {Src: EndpointRef{Kind: "ground", Index: 99}, Dst: EndpointRef{Kind: "ground", Index: 1}, RateMbps: 1},
		"same src":  {Src: EndpointRef{Kind: "ground", Index: 1}, Dst: EndpointRef{Kind: "ground", Index: 1}, RateMbps: 1},
		"zero rate": {Src: EndpointRef{Kind: "ground", Index: 0}, Dst: EndpointRef{Kind: "ground", Index: 1}},
		"neg dur":   {Src: EndpointRef{Kind: "ground", Index: 0}, Dst: EndpointRef{Kind: "ground", Index: 1}, RateMbps: 1, DurationSlots: -2},
	} {
		if code, _ := postBook(t, hs.URL, br); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/book", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}

	// A real booking is retrievable by id.
	code, out := postBook(t, hs.URL, BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 0},
		Dst:      EndpointRef{Kind: "ground", Index: 3},
		RateMbps: 800, DurationSlots: 2,
	})
	if code != http.StatusOK {
		t.Fatalf("booking: HTTP %d", code)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/reservations/%d", hs.URL, out.Reservation.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got Reservation
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(got, *out.Reservation) {
		t.Errorf("reservation lookup = %+v, want %+v", got, *out.Reservation)
	}

	// Unknown and malformed ids.
	for _, path := range []string{"/v1/reservations/424242", "/v1/reservations/abc"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: HTTP %d, want 404/400", path, resp.StatusCode)
		}
	}

	// Stats reflect the decided booking.
	resp, err = http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Total != 1 || st.Algorithm != s.Algorithm() || st.Horizon != 48 || st.QueueCapacity != 8 {
		t.Errorf("stats = %+v", st)
	}

	// Config exposes the bookable pairs and workload defaults.
	resp, err = http.Get(hs.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	var cfgOut ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&cfgOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cfgOut.Pairs) != len(testPairs()) || cfgOut.Horizon != 48 {
		t.Errorf("config = %+v", cfgOut)
	}
	if cfgOut.Workload.Valuation != rc.Workload.Valuation {
		t.Errorf("config valuation = %v, want %v", cfgOut.Workload.Valuation, rc.Workload.Valuation)
	}

	// The admit-latency histogram saw the decided booking.
	if got := reg.Histogram("server.admit_latency", nil).Count(); got < 1 {
		t.Errorf("server.admit_latency count = %d, want >= 1", got)
	}
}

// TestSlotClock pins both clock modes.
func TestSlotClock(t *testing.T) {
	base := testEpoch
	rt := newSlotClock(2, base) // two slots per second
	if !rt.realtime() {
		t.Fatal("rate 2 should be a real-time clock")
	}
	for _, tc := range []struct {
		after time.Duration
		want  int
	}{
		{0, 0}, {499 * time.Millisecond, 0}, {500 * time.Millisecond, 1},
		{3 * time.Second, 6}, {-time.Second, 0},
	} {
		if got := rt.now(base.Add(tc.after)); got != tc.want {
			t.Errorf("realtime now(+%v) = %d, want %d", tc.after, got, tc.want)
		}
	}
	rt.observe(99) // must be ignored
	if got := rt.now(base); got != 0 {
		t.Errorf("realtime clock moved on observe: %d", got)
	}

	mx := newSlotClock(0, base)
	if mx.realtime() {
		t.Fatal("rate 0 should be arrival-driven")
	}
	if got := mx.now(base.Add(time.Hour)); got != 0 {
		t.Errorf("arrival-driven clock advanced with wall time: %d", got)
	}
	mx.observe(7)
	mx.observe(3) // never backwards
	if got := mx.now(base); got != 7 {
		t.Errorf("arrival-driven now = %d, want 7", got)
	}
}

// waitFor polls cond until true or the deadline trips.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
