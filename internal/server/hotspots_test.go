package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/obs"
)

// hotTestServer builds a server with per-entity tracking enabled and a
// few decided bookings behind it.
func hotTestServer(t *testing.T, k int) (*Server, string) {
	t.Helper()
	rc := testRunConfig(t, 2, 21)
	rc.Obs = obs.New()
	rc.HotspotK = k
	s, hs := newTestServer(t, Config{Run: rc, QueueDepth: 8})
	for i := 0; i < 6; i++ {
		code, _ := postBook(t, hs.URL, BookRequest{
			Src:      EndpointRef{Kind: "ground", Index: i % 4},
			Dst:      EndpointRef{Kind: "ground", Index: (i + 1) % 4},
			RateMbps: 900, DurationSlots: 3,
		})
		if code != http.StatusOK {
			t.Fatalf("booking %d: HTTP %d", i, code)
		}
	}
	return s, hs.URL
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestHotspotsEndpoint(t *testing.T) {
	_, base := hotTestServer(t, 16)
	var h HotspotsResponse
	getJSON(t, base+"/v1/hotspots", &h)
	if !h.Enabled {
		t.Fatal("tracking configured but response says disabled")
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", h.UptimeSeconds)
	}
	// Every decision lands in exactly one source-cell tracker.
	if h.SrcAccepted.Total+h.SrcRejected.Total != 6 {
		t.Errorf("src trackers account for %v+%v decisions, want 6",
			h.SrcAccepted.Total, h.SrcRejected.Total)
	}
	// The aggregate counters and the per-entity totals reconcile exactly.
	if h.Links.Total != float64(h.RejectedCongested) {
		t.Errorf("per-link total %v != rejected_congested %d", h.Links.Total, h.RejectedCongested)
	}
	if h.Batteries.Total != float64(h.RejectedDepleted) {
		t.Errorf("per-battery total %v != rejected_depleted %d", h.Batteries.Total, h.RejectedDepleted)
	}
	for _, tk := range []obs.TopKSnapshot{h.Links, h.Batteries, h.SrcAccepted, h.SrcRejected} {
		if tk.K != 16 {
			t.Errorf("tracker K = %d, want 16", tk.K)
		}
		if tk.Mode != "sum" {
			t.Errorf("tracker mode = %q, want sum", tk.Mode)
		}
	}
	if h.LinkUtilization.Mode != "max" || h.BatteryDoD.Mode != "max" {
		t.Errorf("level trackers mode = %q/%q, want max", h.LinkUtilization.Mode, h.BatteryDoD.Mode)
	}
	// Accepted traffic committed onto links: utilization was observed.
	if h.SrcAccepted.Total > 0 && len(h.LinkUtilization.Entries) == 0 {
		t.Error("accepted bookings but no link utilization observed")
	}
}

func TestHotspotsEndpointDisabled(t *testing.T) {
	rc := testRunConfig(t, 2, 22)
	_, hs := newTestServer(t, Config{Run: rc, QueueDepth: 8})
	var h HotspotsResponse
	getJSON(t, hs.URL+"/v1/hotspots", &h)
	if h.Enabled {
		t.Fatal("tracking not configured but response says enabled")
	}
	if h.Links.Total != 0 || len(h.Links.Entries) != 0 {
		t.Errorf("disabled response carries tracker data: %+v", h.Links)
	}
}

func TestConstellationEndpoint(t *testing.T) {
	s, base := hotTestServer(t, 16)
	var c ConstellationResponse
	getJSON(t, base+"/debug/constellation.json", &c)
	if !c.Enabled || c.Horizon != 48 {
		t.Fatalf("header = enabled %v horizon %d", c.Enabled, c.Horizon)
	}
	if c.Slot < 0 || c.Slot >= c.Horizon {
		t.Fatalf("slot %d outside [0,%d)", c.Slot, c.Horizon)
	}
	numSats := s.cfg.Provider.NumSats()
	if len(c.Satellites) != numSats {
		t.Fatalf("satellites = %d, want %d", len(c.Satellites), numSats)
	}
	for _, sat := range c.Satellites {
		if sat.LatDeg < -90 || sat.LatDeg > 90 || sat.LonDeg < -180 || sat.LonDeg > 180 {
			t.Fatalf("sat %d at (%v,%v), outside geodetic range", sat.ID, sat.LatDeg, sat.LonDeg)
		}
		if sat.DoD < -1 || sat.DoD > 1 {
			t.Fatalf("sat %d DoD = %v, want [-1,1]", sat.ID, sat.DoD)
		}
	}
	if len(c.Sites) != len(testSites()) {
		t.Fatalf("sites = %d, want %d", len(c.Sites), len(testSites()))
	}
	for _, l := range c.HotLinks {
		if l.From >= numSats || l.To >= numSats {
			t.Fatalf("hot link %d->%d is not an ISL", l.From, l.To)
		}
		if l.Util < 0 || l.Util > 1 {
			t.Fatalf("hot link %d->%d util = %v", l.From, l.To, l.Util)
		}
	}
}

func TestMapSVGAndDashEndpoints(t *testing.T) {
	_, base := hotTestServer(t, 16)

	resp, err := http.Get(base + "/debug/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/svg+xml" {
		t.Fatalf("map.svg: HTTP %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "<svg") || !strings.Contains(body, "</svg>") {
		t.Fatalf("map.svg is not a complete SVG document:\n%.200s", body)
	}
	// One circle per satellite plus legend markers.
	if got := strings.Count(body, "<circle"); got < 96 {
		t.Errorf("map.svg has %d circles, want >= 96 satellites", got)
	}
	if !strings.Contains(body, "spaced live constellation") {
		t.Error("map.svg missing its title")
	}

	resp, err = http.Get(base + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	dash := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dash: HTTP %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"/v1/hotspots", "/debug/map.svg", "setInterval"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dash HTML missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestStatsUptimeAndVersion pins the /v1/stats additions: a build
// version string and an uptime that follows the server's clock.
func TestStatsUptimeAndVersion(t *testing.T) {
	rc := testRunConfig(t, 2, 23)
	var mu sync.Mutex
	now := testEpoch
	_, hs := newTestServer(t, Config{
		Run: rc, QueueDepth: 8,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	var st Stats
	getJSON(t, hs.URL+"/v1/stats", &st)
	if st.Version == "" {
		t.Error("stats version is empty")
	}
	if st.UptimeSeconds != 0 {
		t.Errorf("uptime at birth = %v, want 0", st.UptimeSeconds)
	}
	mu.Lock()
	now = now.Add(90 * time.Second)
	mu.Unlock()
	getJSON(t, hs.URL+"/v1/stats", &st)
	if st.UptimeSeconds != 90 {
		t.Errorf("uptime after 90s = %v, want 90", st.UptimeSeconds)
	}
}

func TestSummarizeHotspots(t *testing.T) {
	var b strings.Builder
	SummarizeHotspots(HotspotsResponse{}, &b)
	if got := strings.TrimSpace(b.String()); got != "hotspots: disabled" {
		t.Fatalf("disabled summary = %q", got)
	}
	b.Reset()
	SummarizeHotspots(HotspotsResponse{
		Enabled: true,
		Links: obs.TopKSnapshot{Total: 3, Entries: []obs.TopKEntry{
			{Key: 1, Label: "12->13", Value: 2}, {Key: 2, Value: 1},
		}},
	}, &b)
	out := b.String()
	for _, want := range []string{"link_rejections total=3", "12->13=2", "battery_rejections total=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
}
