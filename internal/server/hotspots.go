package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"spacebooking/internal/geo"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/viz"
)

// Hot-spot telemetry endpoints. Everything served here derives from
// three thread-safe sources only: the mutex-guarded top-K trackers in
// the obs registry, the frozen topology provider's geometry, and the
// server's atomic stat mirrors. The engine's mutable state (link
// ledgers, batteries) is owned by the single-writer engine goroutine
// and is never touched from an HTTP handler.

// Tracker names the serving layer reads back out of the registry. They
// must match what netstate.EnableHotspots and sim.NewEngine register.
const (
	trackerLinkRejections    = "netstate.hotspots.link_rejections"
	trackerLinkUtil          = "netstate.hotspots.link_util"
	trackerBatteryRejections = "energy.hotspots.battery_rejections"
	trackerBatteryDoD        = "energy.hotspots.battery_dod"
	trackerSrcAccepted       = "sim.hotspots.src_accepted"
	trackerSrcRejected       = "sim.hotspots.src_rejected"
)

// HotspotsResponse is the body of GET /v1/hotspots: the ranked hot
// entities plus the aggregate rejection counters the per-entity counts
// reconcile against.
type HotspotsResponse struct {
	Enabled       bool    `json:"enabled"`
	Slot          int     `json:"slot"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RejectedCongested / RejectedDepleted are the aggregate counters;
	// the totals of Links / Batteries sum exactly to them.
	RejectedCongested int64            `json:"rejected_congested"`
	RejectedDepleted  int64            `json:"rejected_depleted"`
	Links             obs.TopKSnapshot `json:"links"`
	LinkUtilization   obs.TopKSnapshot `json:"link_utilization"`
	Batteries         obs.TopKSnapshot `json:"batteries"`
	BatteryDoD        obs.TopKSnapshot `json:"battery_dod"`
	SrcAccepted       obs.TopKSnapshot `json:"src_accepted"`
	SrcRejected       obs.TopKSnapshot `json:"src_rejected"`
}

// hotspotsEnabled reports whether the run was configured with
// per-entity tracking.
func (s *Server) hotspotsEnabled() bool {
	return s.cfg.Run.HotspotK > 0 && s.cfg.Run.Obs != nil
}

// HotspotsSnapshot assembles the response from one registry snapshot.
// Exported for spaced's drain-time summary.
func (s *Server) HotspotsSnapshot() HotspotsResponse {
	snap := s.cfg.Run.Obs.Snapshot()
	return HotspotsResponse{
		Enabled:           s.hotspotsEnabled(),
		Slot:              int(s.statSlot.Load()),
		UptimeSeconds:     s.now().Sub(s.started).Seconds(),
		RejectedCongested: snap.Counters["sim.requests.rejected_congested"],
		RejectedDepleted:  snap.Counters["sim.requests.rejected_depleted"],
		Links:             snap.TopK[trackerLinkRejections],
		LinkUtilization:   snap.TopK[trackerLinkUtil],
		Batteries:         snap.TopK[trackerBatteryRejections],
		BatteryDoD:        snap.TopK[trackerBatteryDoD],
		SrcAccepted:       snap.TopK[trackerSrcAccepted],
		SrcRejected:       snap.TopK[trackerSrcRejected],
	}
}

// handleHotspots serves GET /v1/hotspots.
func (s *Server) handleHotspots(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.HotspotsSnapshot())
}

// ConstellationSat is one satellite sub-point with its tracked heat.
type ConstellationSat struct {
	ID     int     `json:"id"`
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	Sunlit bool    `json:"sunlit"`
	// DoD is the tracked depth-of-discharge in [0,1], or -1 when the
	// battery is not among the top-K tracked entries.
	DoD float64 `json:"dod"`
}

// ConstellationLink is one tracked hot link with endpoint geometry.
type ConstellationLink struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Util       float64 `json:"util"`
	Rejections float64 `json:"rejections"`
	// Endpoint sub-points at the snapshot slot; ISLs only (a -1 From/To
	// latitude pair never happens — non-ISL entries are filtered out).
	FromLatDeg float64 `json:"from_lat_deg"`
	FromLonDeg float64 `json:"from_lon_deg"`
	ToLatDeg   float64 `json:"to_lat_deg"`
	ToLonDeg   float64 `json:"to_lon_deg"`
}

// ConstellationSite is one ground site of the tiling.
type ConstellationSite struct {
	ID     int     `json:"id"`
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	Weight float64 `json:"weight"`
}

// ConstellationResponse is the body of GET /debug/constellation.json:
// the whole scene a dashboard needs to paint heat onto the map.
type ConstellationResponse struct {
	Enabled    bool                `json:"enabled"`
	Slot       int                 `json:"slot"`
	Horizon    int                 `json:"horizon"`
	Satellites []ConstellationSat  `json:"satellites"`
	HotLinks   []ConstellationLink `json:"hot_links"`
	Sites      []ConstellationSite `json:"sites"`
}

// snapshotSlot clamps the engine's last-admitted slot into the
// provider's horizon for geometry lookups (-1 before the first
// admission maps to slot 0).
func (s *Server) snapshotSlot() int {
	slot := int(s.statSlot.Load())
	if slot < 0 {
		slot = 0
	}
	if slot >= s.horizon {
		slot = s.horizon - 1
	}
	return slot
}

// constellationSnapshot builds the dashboard scene.
func (s *Server) constellationSnapshot() ConstellationResponse {
	prov := s.cfg.Provider
	slot := s.snapshotSlot()
	snap := s.cfg.Run.Obs.Snapshot()

	resp := ConstellationResponse{
		Enabled: s.hotspotsEnabled(),
		Slot:    slot,
		Horizon: s.horizon,
	}

	dod := make(map[int]float64, len(snap.TopK[trackerBatteryDoD].Entries))
	for _, e := range snap.TopK[trackerBatteryDoD].Entries {
		dod[int(e.Key)] = e.Value
	}
	numSats := prov.NumSats()
	resp.Satellites = make([]ConstellationSat, numSats)
	for sat := 0; sat < numSats; sat++ {
		lla := geo.ECEFToLLA(prov.SatPosECEF(slot, sat))
		cs := ConstellationSat{
			ID:     sat,
			LatDeg: lla.LatDeg,
			LonDeg: lla.LonDeg,
			Sunlit: prov.Sunlit(slot, sat),
			DoD:    -1,
		}
		if v, ok := dod[sat]; ok {
			cs.DoD = v
		}
		resp.Satellites[sat] = cs
	}

	rejByLink := make(map[uint64]float64, len(snap.TopK[trackerLinkRejections].Entries))
	for _, e := range snap.TopK[trackerLinkRejections].Entries {
		rejByLink[e.Key] = e.Value
	}
	for _, e := range snap.TopK[trackerLinkUtil].Entries {
		key := netstate.LinkKey(e.Key)
		from, to := key.From(), key.To()
		if from >= numSats || to >= numSats {
			continue // USL: one end is not a satellite, no stable geometry
		}
		fl := resp.Satellites[from]
		tl := resp.Satellites[to]
		resp.HotLinks = append(resp.HotLinks, ConstellationLink{
			From:       from,
			To:         to,
			Util:       e.Value,
			Rejections: rejByLink[e.Key],
			FromLatDeg: fl.LatDeg,
			FromLonDeg: fl.LonDeg,
			ToLatDeg:   tl.LatDeg,
			ToLonDeg:   tl.LonDeg,
		})
	}

	sites := prov.Sites()
	resp.Sites = make([]ConstellationSite, len(sites))
	for i, site := range sites {
		resp.Sites[i] = ConstellationSite{
			ID:     site.ID,
			LatDeg: site.LatDeg,
			LonDeg: site.LonDeg,
			Weight: site.Weight,
		}
	}
	return resp
}

// handleConstellation serves GET /debug/constellation.json.
func (s *Server) handleConstellation(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.constellationSnapshot())
}

// handleMapSVG serves GET /debug/map.svg: the live constellation scene
// rendered with internal/viz — sites, satellite sub-points (heat ramp
// by tracked depth-of-discharge), and the tracked hot links (heat ramp
// and stroke width by utilization).
func (s *Server) handleMapSVG(w http.ResponseWriter, r *http.Request) {
	c := s.constellationSnapshot()
	m := viz.NewMap(fmt.Sprintf("spaced live constellation — slot %d/%d, alg %s",
		c.Slot, c.Horizon, s.cl.Algorithm()))
	for _, site := range c.Sites {
		m.AddSite(site.LatDeg, site.LonDeg, "#2e8b57")
	}
	for _, l := range c.HotLinks {
		m.AddLink(l.FromLatDeg, l.FromLonDeg, l.ToLatDeg, l.ToLonDeg,
			viz.HeatRamp(l.Util), 0.6+1.8*l.Util)
	}
	for _, sat := range c.Satellites {
		color := "#7f8cff"
		if sat.DoD >= 0 {
			color = viz.HeatRamp(sat.DoD)
		}
		m.AddSatellite(sat.LatDeg, sat.LonDeg, sat.Sunlit, color)
	}
	legends := []viz.Legend{
		{Color: "#2e8b57", Text: "ground site"},
		{Color: "#7f8cff", Text: "satellite (untracked)"},
		{Color: viz.HeatRamp(1), Text: "hot (DoD / utilization)"},
	}
	body := m.Render(legends)
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = io.WriteString(w, body)
}

// handleDash serves GET /debug/dash: a self-refreshing HTML view that
// re-fetches the live map and hot-spot rankings every two seconds. All
// rendering happens client-side against /debug/map.svg and
// /v1/hotspots; the page itself is static.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, dashHTML)
}

const dashHTML = `<!DOCTYPE html>
<html><head><title>spaced dashboard</title>
<style>
body { background:#0b1026; color:#c8c8e8; font-family:monospace; margin:12px; }
h1 { font-size:14px; color:#e8e8ff; }
table { border-collapse:collapse; margin:6px 0 14px; }
td, th { padding:2px 10px; text-align:left; font-size:12px; border-bottom:1px solid #1c2447; }
th { color:#8f9cff; }
.cols { display:flex; gap:24px; flex-wrap:wrap; align-items:flex-start; }
img { width:720px; max-width:100%; border:1px solid #1c2447; }
#meta { font-size:12px; color:#8f9cff; }
</style></head><body>
<h1>spaced live constellation dashboard</h1>
<div id="meta">loading&hellip;</div>
<img id="map" src="/debug/map.svg" alt="constellation map"/>
<div class="cols">
  <div><h1>hot links (rejections)</h1><table id="links"></table></div>
  <div><h1>hot batteries (rejections)</h1><table id="batteries"></table></div>
  <div><h1>hot source cells (rejected)</h1><table id="cells"></table></div>
</div>
<script>
function fill(id, entries, valHeader) {
  var t = document.getElementById(id);
  var html = '<tr><th>entity</th><th>' + valHeader + '</th></tr>';
  (entries || []).slice(0, 10).forEach(function (e) {
    html += '<tr><td>' + (e.label || e.key) + '</td><td>' + e.value.toFixed(2) + '</td></tr>';
  });
  t.innerHTML = html;
}
function refresh() {
  fetch('/v1/hotspots').then(function (r) { return r.json(); }).then(function (h) {
    document.getElementById('meta').textContent =
      'slot ' + h.slot + ' · uptime ' + h.uptime_seconds.toFixed(0) + 's' +
      ' · rejected congested ' + h.rejected_congested +
      ' · rejected depleted ' + h.rejected_depleted +
      (h.enabled ? '' : ' · hot-spot tracking DISABLED');
    fill('links', h.links.entries, 'rejections');
    fill('batteries', h.batteries.entries, 'rejections');
    fill('cells', h.src_rejected.entries, 'rejected');
  });
  document.getElementById('map').src = '/debug/map.svg?t=' + Date.now();
}
refresh();
setInterval(refresh, 2000);
</script>
</body></html>
`

// SummarizeHotspots prints a compact drain-time digest of the ranked
// trackers (top five per table), for spaced's shutdown log.
func SummarizeHotspots(h HotspotsResponse, out io.Writer) {
	if !h.Enabled {
		fmt.Fprintln(out, "hotspots: disabled")
		return
	}
	line := func(name string, tk obs.TopKSnapshot) {
		var b strings.Builder
		for i, e := range tk.Entries {
			if i >= 5 {
				break
			}
			if i > 0 {
				b.WriteString(", ")
			}
			label := e.Label
			if label == "" {
				label = fmt.Sprint(e.Key)
			}
			fmt.Fprintf(&b, "%s=%.0f", label, e.Value)
		}
		fmt.Fprintf(out, "hotspots: %s total=%.0f top=[%s]\n", name, tk.Total, b.String())
	}
	line("link_rejections", h.Links)
	line("battery_rejections", h.Batteries)
	line("src_rejected", h.SrcRejected)
}
