package server

import (
	"sync/atomic"
	"time"
)

// slotClock maps wall-clock time to simulated slots.
//
// Two modes:
//
//   - Real time (perSlot > 0): slot = elapsed/perSlot since Start. One
//     paper slot is one simulated minute; a clock rate of R slots/second
//     compresses a minute of simulated time into 1/R seconds of wall
//     time. The clock never goes backwards and keeps counting past the
//     horizon (callers decide what an out-of-horizon slot means).
//
//   - As fast as possible (perSlot == 0): the clock is arrival-driven.
//     It stays at the high-water arrival slot observed so far, so a
//     replayed request stream runs at whatever speed the engine can
//     sustain while slots still advance monotonically. This is the
//     benchmarking mode, and the mode under which a served request
//     stream is bit-identical to a batch sim.Run of the same stream.
type slotClock struct {
	perSlot time.Duration // 0 = arrival-driven
	start   time.Time
	high    atomic.Int64 // arrival-driven high-water slot
}

// newSlotClock builds a clock advancing at rate simulated slots per
// wall second; rate <= 0 selects the arrival-driven mode.
func newSlotClock(rate float64, now time.Time) *slotClock {
	c := &slotClock{start: now}
	if rate > 0 {
		c.perSlot = time.Duration(float64(time.Second) / rate)
	}
	return c
}

// realtime reports whether the clock advances with wall time.
func (c *slotClock) realtime() bool { return c.perSlot > 0 }

// now returns the current simulated slot.
func (c *slotClock) now(t time.Time) int {
	if c.perSlot == 0 {
		return int(c.high.Load())
	}
	elapsed := t.Sub(c.start)
	if elapsed < 0 {
		return 0
	}
	return int(elapsed / c.perSlot)
}

// observe ratchets an arrival-driven clock up to slot; no-op in real
// time mode (wall time is the only authority there).
func (c *slotClock) observe(slot int) {
	if c.perSlot != 0 {
		return
	}
	for {
		cur := c.high.Load()
		if int64(slot) <= cur || c.high.CompareAndSwap(cur, int64(slot)) {
			return
		}
	}
}
