// Package server is the online booking service of the reproduction: it
// keeps one admission engine (sim.Engine) resident, advances a slot
// clock in (scaled) real time, and admits booking requests as they
// arrive instead of replaying a precomputed workload. The paper's CEAR
// mechanism is defined online — requests are priced and accepted
// irrevocably one at a time — and this package is the layer that serves
// that loop to network clients.
//
// Architecture:
//
//	HTTP handlers ──► router ──► per-shard ingress queue ──► shard loop
//	   (many)        (policy +     (backpressure: full =     (single
//	                  token          shed "overloaded")       writer per
//	                  bucket)                                 sim.Engine)
//
// Admission runs on per-shard engine goroutines (internal/cluster),
// preserving the paper's sequential online model and each engine's
// single-writer contract; the HTTP layer's only job is to route, queue,
// wait, and shed. With one shard (the default) the cluster is a
// passthrough and the engine is the same code path sim.Run uses, so a
// served request stream (clock at max speed, batch size 1) is
// bit-identical to a batch simulation of the same stream. With more
// shards, bookings whose plans cross shard ownership run the two-phase
// prepare/commit protocol.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spacebooking/internal/buildinfo"
	"spacebooking/internal/cluster"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// Reservation statuses. A reservation is created "queued" and settles
// into exactly one terminal status.
const (
	StatusQueued   = "queued"
	StatusAccepted = "accepted"
	StatusRejected = "rejected"
	StatusError    = "error"
	// StatusOverloaded and StatusDraining are response-only statuses:
	// shed requests never get a reservation.
	StatusOverloaded = "overloaded"
	StatusDraining   = "draining"
)

// Rejection reasons produced by the serving layer itself (the engine's
// own reasons — "no-path", "priced-out", … — pass through unchanged).
const (
	// ReasonExpired marks a request whose active window had already
	// passed when the engine got to it (deadline expiry under a
	// real-time clock).
	ReasonExpired = "expired"
	// ReasonHorizonExhausted marks a request arriving after the slot
	// clock passed the topology horizon.
	ReasonHorizonExhausted = "horizon-exhausted"
)

// Config parameterises the booking service.
type Config struct {
	// Provider is the frozen topology the engine runs on. Required.
	Provider *topology.Provider
	// Run selects the algorithm, pricing and thresholds. Run.Workload is
	// never used to generate requests — it only configures the algorithm
	// (adaptive predictor rate) and supplies booking defaults (valuation,
	// rate bounds) echoed at /v1/config.
	Run sim.RunConfig
	// ClockRate is the slot-clock speed in simulated slots per wall
	// second (a paper slot is one simulated minute, so ClockRate 60
	// compresses an hour into a minute). <= 0 means as fast as possible:
	// the clock follows request arrival slots, the benchmarking and
	// replay mode.
	ClockRate float64
	// QueueDepth bounds the ingress queue; a full queue sheds with
	// StatusOverloaded instead of blocking. Default 256.
	QueueDepth int
	// BatchSize caps how many queued requests one engine pass admits
	// back-to-back (amortising scratch reuse across the batch).
	// Default 32.
	BatchSize int
	// Now is the wall clock, for tests. Default time.Now.
	Now func() time.Time
	// Shards is the admission-engine count (default 1). With more than
	// one shard, requests are routed to per-shard single-writer engine
	// loops and cross-shard bookings run the two-phase prepare/commit
	// protocol; with one shard the service is byte-identical to the
	// pre-cluster single-engine path.
	Shards int
	// Router selects the shard routing policy (round-robin,
	// least-loaded, affinity).
	Router cluster.Policy
	// ShardTokenRate/ShardTokenBurst configure per-shard token-bucket
	// admission (requests per second); zero rate disables it. Exhausted
	// buckets shed with HTTP 429 and reason "overloaded_shard".
	ShardTokenRate  float64
	ShardTokenBurst float64
	// Trace configures request-scoped tracing and the admission audit
	// stream. The zero value disables tracing entirely.
	Trace TraceConfig
	// SLO configures per-class SLO tracking (always on; the zero value
	// applies the documented defaults).
	SLO SLOConfig
	// testGate, when non-nil, stalls the engine goroutine before every
	// batch until a value (or close) arrives — deterministic
	// backpressure and drain tests only.
	testGate chan struct{}
}

// Reservation is the materialised outcome of one booking request. Once
// the status is terminal the struct is immutable; handlers receive
// copies, never shared pointers into server state.
type Reservation struct {
	ID          int64   `json:"id"`
	Status      string  `json:"status"`
	Src         string  `json:"src"`
	Dst         string  `json:"dst"`
	ArrivalSlot int     `json:"arrival_slot"`
	StartSlot   int     `json:"start_slot"`
	EndSlot     int     `json:"end_slot"`
	RateMbps    float64 `json:"rate_mbps"`
	Valuation   float64 `json:"valuation"`
	Price       float64 `json:"price"`
	Reason      string  `json:"reason,omitempty"`
	TotalHops   int     `json:"total_hops"`
	// ClientRequestID echoes the client-assigned request_id, joining
	// reservations to client-side logs and audit records.
	ClientRequestID string `json:"client_request_id,omitempty"`
}

// pending.emitState values: the handler and the engine agree via CAS on
// who finalises (and emits the audit record for) a traced request, so
// every decision is audited exactly once.
const (
	emitWaiting   int32 = iota // handler still waiting on done
	emitDecided                // engine decided; handler finalises after responding
	emitAbandoned              // handler's client left; engine finalises
)

// pending is one ingress-queue entry: the normalised booking plus the
// completion signal its HTTP handler waits on.
type pending struct {
	id  int64
	src topology.Endpoint
	dst topology.Endpoint
	// explicit window from the client (nil = derive from the slot clock
	// at admission time).
	arrival *int
	start   *int
	end     *int
	dur     int
	rate    float64
	val     float64

	enqueued time.Time
	resv     Reservation
	done     chan struct{}
	// shard is the routed shard id; cross marks a booking that ran the
	// cross-shard two-phase protocol. Both feed the audit record.
	shard int
	cross bool

	// Tracing state (zero-valued when tracing is disabled).
	clientID    string
	rec         *obs.TraceRec
	qwSpan      int // queue.wait span index
	bwSpan      int // batch.wait span index
	eaSpan      int // engine.admit span index
	headSampled bool
	stats       probeSample
	// emitState arbitrates the handler/engine emit handoff; written
	// before close(done), so the handler's post-done reads are ordered.
	emitState atomic.Int32
}

// Server is the long-running booking service.
type Server struct {
	cfg     Config
	cl      *cluster.Cluster
	clock   *slotClock
	horizon int
	now     func() time.Time
	started time.Time

	// lifeMu guards draining and the cluster intake close: enqueues
	// hold it shared, Shutdown exclusively, so close never races a send.
	lifeMu     sync.RWMutex
	draining   bool
	engineDone chan struct{}
	result     *sim.Result
	resultErr  error

	resvMu sync.RWMutex
	resvs  map[int64]Reservation
	nextID atomic.Int64

	// Instruments (nil-safe when Run.Obs is nil).
	gQueue     *obs.Gauge
	gQueueHW   *obs.Gauge
	ctrShed    *obs.Counter
	ctrExpired *obs.Counter
	ctrBatches *obs.Counter
	histAdmit  *obs.Histogram

	// SLO classes (always maintained; gauges are nil-safe).
	sloLatency *obs.SLOClass
	sloAvail   *obs.SLOClass

	// Tracing (all nil/zero when cfg.Trace is disabled).
	tracing   bool
	tracePool *obs.TracePool
	policy    obs.SamplePolicy
	sink      *auditSink
	probes    []engineProbe // one per shard, over that shard's registry
	// auditWG counts traced requests whose audit record has not been
	// emitted yet; Shutdown waits on it before flushing the sink so a
	// graceful drain never truncates the audit stream.
	auditWG sync.WaitGroup

	// Stats mirrors maintained by the engine goroutine so /v1/stats
	// never touches engine internals from another goroutine.
	statSlot     atomic.Int64
	statTotal    atomic.Int64
	statAccepted atomic.Int64
	statRejected atomic.Int64
	statRevenue  atomic.Uint64 // math.Float64bits
	statQueueHW  atomic.Int64
}

// New builds the engine and starts the engine goroutine and slot clock.
// The server is accepting bookings when New returns.
func New(cfg Config) (*Server, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("server: nil provider")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 256
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: queue depth %d must be positive", cfg.QueueDepth)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("server: batch size %d must be positive", cfg.BatchSize)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.SLO.LatencyObjective == 0 {
		cfg.SLO.LatencyObjective = 25 * time.Millisecond
	}
	if cfg.SLO.LatencyTarget == 0 {
		cfg.SLO.LatencyTarget = 0.99
	}
	if cfg.SLO.AvailabilityTarget == 0 {
		cfg.SLO.AvailabilityTarget = 0.999
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	reg := cfg.Run.Obs
	s := &Server{
		cfg:        cfg,
		clock:      newSlotClock(cfg.ClockRate, cfg.Now()),
		horizon:    cfg.Provider.Horizon(),
		now:        cfg.Now,
		started:    cfg.Now(),
		engineDone: make(chan struct{}),
		resvs:      make(map[int64]Reservation),
		gQueue:     reg.Gauge("server.queue_depth"),
		gQueueHW:   reg.Gauge("server.queue_high_water"),
		ctrShed:    reg.Counter("server.shed"),
		ctrExpired: reg.Counter("server.expired"),
		ctrBatches: reg.Counter("server.batches"),
		histAdmit:  reg.Histogram("server.admit_latency", nil),
		sloLatency: obs.NewSLOClass(reg, "latency", cfg.SLO.LatencyObjective.Seconds(), cfg.SLO.LatencyTarget),
		sloAvail:   obs.NewSLOClass(reg, "availability", 0, cfg.SLO.AvailabilityTarget),
	}
	cl, err := cluster.New(cfg.Provider, cluster.Config{
		Shards:     cfg.Shards,
		Policy:     cfg.Router,
		Run:        cfg.Run,
		QueueDepth: cfg.QueueDepth,
		BatchSize:  cfg.BatchSize,
		TokenRate:  cfg.ShardTokenRate,
		TokenBurst: cfg.ShardTokenBurst,
		Now:        cfg.Now,
		RunBatch:   s.runBatch,
		TestGate:   cfg.testGate,
	})
	if err != nil {
		return nil, err
	}
	s.cl = cl
	if cfg.Trace.enabled() {
		sink, err := newAuditSink(cfg.Trace, reg)
		if err != nil {
			return nil, err
		}
		s.tracing = true
		s.tracePool = obs.NewTracePool()
		s.policy = obs.SamplePolicy{
			Rate:   cfg.Trace.SampleRate,
			SlowNs: cfg.Trace.SlowThreshold.Nanoseconds(),
		}
		s.sink = sink
		for i := 0; i < cl.NumShards(); i++ {
			sh := cl.Shard(i)
			s.probes = append(s.probes, newEngineProbe(sh.Registry()))
			sh.Engine().EnableTraceDetail()
		}
	}
	s.statSlot.Store(-1)
	cl.Start()
	go s.finishWhenDrained()
	return s, nil
}

// finishWhenDrained waits for the shard loops to drain, runs the
// engines' final sweeps and publishes the merged result. A
// prepare-ledger leak is an invariant violation the serving layer logs
// (tests reach it through sim/cluster Finish, which fail loudly); the
// merged result survives it.
func (s *Server) finishWhenDrained() {
	defer close(s.engineDone)
	<-s.cl.Done()
	res, err := s.cl.Finish()
	if err != nil && errors.Is(err, netstate.ErrPreparedLeak) && res != nil {
		log.Printf("server: prepare-ledger leak at drain: %v", err)
		err = nil
	}
	s.result, s.resultErr = res, err
}

// Algorithm returns the engine's algorithm display name.
func (s *Server) Algorithm() string { return s.cl.Algorithm() }

// NumShards returns the admission-engine shard count.
func (s *Server) NumShards() int { return s.cl.NumShards() }

// Horizon returns the number of slots served.
func (s *Server) Horizon() int { return s.horizon }

// Slot returns the current slot of the service clock.
func (s *Server) Slot() int { return s.clock.now(s.now()) }

// errShed and errDraining are the enqueue outcomes the HTTP layer maps
// to StatusOverloaded and StatusDraining.
var (
	errShed     = fmt.Errorf("server: ingress queue full")
	errDraining = fmt.Errorf("server: draining")
	// errOverloadedShard is a routed shard's token bucket running dry:
	// HTTP 429 with reason "overloaded_shard".
	errOverloadedShard = fmt.Errorf("server: shard overloaded")
)

// enqueue routes one pending booking to a shard and hands it to that
// shard's loop without ever blocking: a full queue (or a dry shard
// token bucket) sheds immediately (backpressure), a draining server
// refuses.
func (s *Server) enqueue(p *pending) error {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if s.draining {
		return errDraining
	}
	sh, err := s.cl.Route(p.src)
	if err != nil {
		s.ctrShed.Inc()
		return errOverloadedShard
	}
	p.shard = sh.ID()
	if err := sh.Submit(p); err != nil {
		s.ctrShed.Inc()
		return errShed
	}
	depth := int64(s.cl.QueuedTotal())
	s.gQueue.Set(float64(depth))
	for {
		hw := s.statQueueHW.Load()
		if depth <= hw {
			break
		}
		if s.statQueueHW.CompareAndSwap(hw, depth) {
			s.gQueueHW.Set(float64(depth))
			break
		}
	}
	return nil
}

// Shutdown stops intake and drains: queued requests are still admitted,
// then the engine finishes (final metrics sweep) and the goroutine
// exits. Blocks until the drain completes or ctx expires. Safe to call
// more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	if !s.draining {
		s.draining = true
		s.cl.CloseIntake()
	}
	s.lifeMu.Unlock()
	select {
	case <-s.engineDone:
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
	if s.tracing {
		// The engine has drained; wait for handler-side finalisation of
		// every traced request, then drain and flush the audit sink so
		// the JSONL file is complete (no truncated records).
		flushed := make(chan struct{})
		go func() {
			s.auditWG.Wait()
			close(flushed)
		}()
		select {
		case <-flushed:
		case <-ctx.Done():
			return fmt.Errorf("server: shutdown: audit flush: %w", ctx.Err())
		}
		if err := s.sink.Close(); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
	}
	return nil
}

// Result returns the engine's final simulation result. Only available
// after Shutdown has drained.
func (s *Server) Result() (*sim.Result, error) {
	select {
	case <-s.engineDone:
		return s.result, s.resultErr
	default:
		return nil, fmt.Errorf("server: still serving (Result is available after Shutdown)")
	}
}

// runBatch is the shard loop body (cluster.Config.RunBatch): it runs on
// the shard's goroutine with a batch of queued requests and admits them
// in arrival order through that shard's engine. Engine errors are
// recorded on the reservation (StatusError) rather than crashing the
// daemon — they indicate bugs, and the obs counters make them visible.
func (s *Server) runBatch(sh *cluster.Shard, items []any) {
	s.gQueue.Set(float64(s.cl.QueuedTotal()))
	s.ctrBatches.Inc()
	if s.tracing {
		now := s.now()
		for _, it := range items {
			q := it.(*pending)
			q.rec.End(q.qwSpan, now)
			q.bwSpan = q.rec.Begin(PhaseBatchWait, now)
		}
	}
	for _, it := range items {
		s.admitOne(sh, it.(*pending))
	}
}

// admitOne is one request's turn on its shard's goroutine.
func (s *Server) admitOne(sh *cluster.Shard, p *pending) {
	defer close(p.done)
	eng := sh.Engine()

	if s.tracing {
		now := s.now()
		p.rec.End(p.bwSpan, now)
		p.eaSpan = p.rec.Begin(PhaseEngineAdmit, now)
		probe := &s.probes[sh.ID()]
		// Deferred so every settle path (horizon, expired, error,
		// decision) gets the same finalisation; defers run LIFO, so this
		// completes the trace before close(p.done) releases the handler.
		defer s.finishEngineTrace(p, probe, probe.read(), p.rec.SinceNs(now))
	}

	// Resolve the arrival slot: the clock's current slot, or — in
	// arrival-driven (max speed) mode — the client's declared slot,
	// which ratchets the clock forward. The engine requires arrivals to
	// be non-decreasing, so a stale declared slot clamps up to the
	// engine's current slot rather than erroring.
	arrival := s.clock.now(s.now())
	if !s.clock.realtime() && p.arrival != nil {
		arrival = *p.arrival
	}
	if cur := eng.CurrentSlot(); arrival < cur {
		arrival = cur
	}
	s.clock.observe(arrival)
	s.statSlot.Store(int64(arrival))

	start := arrival
	if p.start != nil && *p.start > arrival {
		start = *p.start
	}
	end := start + p.dur - 1
	if p.end != nil {
		end = *p.end
	}
	if end >= s.horizon {
		end = s.horizon - 1
	}

	p.resv.ArrivalSlot, p.resv.StartSlot, p.resv.EndSlot = arrival, start, end

	switch {
	case arrival >= s.horizon:
		s.finishRejected(p, ReasonHorizonExhausted)
		return
	case end < start:
		// The declared deadline passed before the request reached the
		// engine: the whole active window is in the past.
		s.ctrExpired.Inc()
		s.finishRejected(p, ReasonExpired)
		return
	}

	d, err := eng.Admit(workload.Request{
		ID:          int(p.id),
		Src:         p.src,
		Dst:         p.dst,
		ArrivalSlot: arrival,
		StartSlot:   start,
		EndSlot:     end,
		RateMbps:    p.rate,
		Valuation:   p.val,
	})
	p.cross = sh.TakeCrossShard()
	if err != nil {
		p.resv.Status = StatusError
		p.resv.Reason = err.Error()
		s.store(p)
		return
	}
	s.statTotal.Add(1)
	sh.NoteDecision(d.Accepted)
	if d.Accepted {
		p.resv.Status = StatusAccepted
		p.resv.Price = d.Price
		p.resv.TotalHops = d.Plan.TotalHops()
		s.statAccepted.Add(1)
		s.addRevenue(d.Price)
	} else {
		p.resv.Status = StatusRejected
		p.resv.Reason = d.Reason
		s.statRejected.Add(1)
	}
	s.store(p)
}

// finishRejected settles a serving-layer rejection (never shown to the
// engine).
func (s *Server) finishRejected(p *pending, reason string) {
	p.resv.Status = StatusRejected
	p.resv.Reason = reason
	s.statTotal.Add(1)
	s.statRejected.Add(1)
	s.store(p)
}

// store publishes the settled reservation, records admit latency and
// feeds the SLO classes.
func (s *Server) store(p *pending) {
	lat := s.now().Sub(p.enqueued).Seconds()
	s.histAdmit.Observe(lat)
	s.sloLatency.ObserveLatency(lat)
	// Availability counts engine errors as bad; a rejection is the
	// mechanism working, not an outage. Shed requests are observed at
	// the refusal site (they never reach store).
	s.sloAvail.Observe(p.resv.Status != StatusError)
	s.resvMu.Lock()
	s.resvs[p.id] = p.resv
	s.resvMu.Unlock()
}

// finishEngineTrace closes the engine.admit span, attributes the
// admission's counter deltas, and settles who emits the audit record:
// normally the handler (after it writes the response), or the engine
// itself when the handler's client abandoned the wait.
func (s *Server) finishEngineTrace(p *pending, probe *engineProbe, before probeSample, admitStartNs int64) {
	now := s.now()
	p.rec.End(p.eaSpan, now)
	d := probe.read().sub(before)
	p.stats = d
	// The search timers include the pricing callbacks they invoke;
	// report disjoint sub-phases by subtracting.
	searchNs := d.searchNs - d.pricingNs
	if searchNs < 0 {
		searchNs = 0
	}
	p.rec.Add(PhaseEngineSearch, admitStartNs, searchNs)
	p.rec.Add(PhaseEnginePricing, admitStartNs, d.pricingNs)
	p.rec.Add(PhaseEngineCommit, admitStartNs, d.commitNs)
	if !p.emitState.CompareAndSwap(emitWaiting, emitDecided) {
		// The handler marked the request abandoned: no respond phase
		// will happen, emit here.
		s.emitDecided(p, now)
	}
}

// emitDecided builds and emits the audit record for a settled request
// and returns the trace recorder to the pool. Called exactly once per
// traced decided request — by the handler after responding, or by
// finishEngineTrace when the handler abandoned.
func (s *Server) emitDecided(p *pending, now time.Time) {
	defer s.auditWG.Done()
	totalNs := p.rec.SinceNs(now)
	rec := &AuditRecord{
		ID:           p.id,
		ClientID:     p.clientID,
		TSUnixNs:     p.rec.Epoch().UnixNano(),
		Outcome:      p.resv.Status,
		Reason:       p.resv.Reason,
		Price:        p.resv.Price,
		Hops:         p.resv.TotalHops,
		ArrivalSlot:  p.resv.ArrivalSlot,
		StartSlot:    p.resv.StartSlot,
		EndSlot:      p.resv.EndSlot,
		Shard:        p.shard,
		CrossShard:   p.cross,
		Searches:     p.stats.searches,
		PrunedLabels: p.stats.pruned,
		HeapPops:     p.stats.heapPops,
		DeficitWalks: p.stats.walks,
		TotalNs:      totalNs,
	}
	// Tail sampling: anything that went wrong (or slow) always carries
	// its full phase timeline; otherwise head sampling decides.
	rec.Sampled = p.headSampled || p.resv.Status != StatusAccepted || s.policy.Slow(totalNs)
	if rec.Sampled {
		rec.Phases = p.rec.CopySpans()
	}
	s.tracePool.Put(p.rec)
	p.rec = nil
	s.sink.emit(rec)
}

// emitRefused audits a request the serving layer refused before it
// reached the queue (shed or draining). Refusals are always sampled.
func (s *Server) emitRefused(p *pending, outcome string) {
	now := s.now()
	p.rec.End(p.qwSpan, now)
	rec := &AuditRecord{
		ID:       p.id,
		ClientID: p.clientID,
		TSUnixNs: p.rec.Epoch().UnixNano(),
		Outcome:  outcome,
		TotalNs:  p.rec.SinceNs(now),
		Sampled:  true,
		Phases:   p.rec.CopySpans(),
	}
	s.tracePool.Put(p.rec)
	p.rec = nil
	s.sink.emit(rec)
}

// reservation returns a copy of the reservation, if known.
func (s *Server) reservation(id int64) (Reservation, bool) {
	s.resvMu.RLock()
	defer s.resvMu.RUnlock()
	r, ok := s.resvs[id]
	return r, ok
}

// TraceStats is the audit-pipeline section of /v1/stats (present only
// when tracing is enabled).
type TraceStats struct {
	Records int64 `json:"records"`
	Sampled int64 `json:"sampled"`
	Dropped int64 `json:"dropped"`
}

// Stats is the live service snapshot behind GET /v1/stats.
type Stats struct {
	Algorithm      string            `json:"algorithm"`
	Version        string            `json:"version"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Slot           int               `json:"slot"`
	Horizon        int               `json:"horizon"`
	ClockRate      float64           `json:"clock_rate"`
	QueueDepth     int               `json:"queue_depth"`
	QueueHighWater int64             `json:"queue_high_water"`
	QueueCapacity  int               `json:"queue_capacity"`
	BatchSize      int               `json:"batch_size"`
	Total          int64             `json:"requests_total"`
	Accepted       int64             `json:"requests_accepted"`
	Rejected       int64             `json:"requests_rejected"`
	Shed           int64             `json:"requests_shed"`
	Revenue        float64           `json:"revenue"`
	Draining       bool              `json:"draining"`
	SLO            []obs.SLOSnapshot `json:"slo"`
	Trace          *TraceStats       `json:"trace,omitempty"`
	// Shards is the per-shard cluster section, present only when the
	// service runs more than one shard (single-shard output is unchanged).
	Shards []cluster.ShardStats `json:"shards,omitempty"`
	Router string               `json:"router,omitempty"`
}

// SLOSnapshots returns the current state of every SLO class, for
// /v1/stats and the run report.
func (s *Server) SLOSnapshots() []obs.SLOSnapshot {
	return []obs.SLOSnapshot{s.sloLatency.Snapshot(), s.sloAvail.Snapshot()}
}

// StatsSnapshot assembles the live counters.
func (s *Server) StatsSnapshot() Stats {
	s.lifeMu.RLock()
	draining := s.draining
	s.lifeMu.RUnlock()
	st := Stats{
		Algorithm:      s.cl.Algorithm(),
		Version:        buildinfo.Read().Version,
		UptimeSeconds:  s.now().Sub(s.started).Seconds(),
		Slot:           s.Slot(),
		Horizon:        s.horizon,
		ClockRate:      s.cfg.ClockRate,
		QueueDepth:     s.cl.QueuedTotal(),
		QueueHighWater: s.statQueueHW.Load(),
		QueueCapacity:  s.cfg.QueueDepth,
		BatchSize:      s.cfg.BatchSize,
		Total:          s.statTotal.Load(),
		Accepted:       s.statAccepted.Load(),
		Rejected:       s.statRejected.Load(),
		Shed:           s.ctrShed.Value(),
		Revenue:        s.revenue(),
		Draining:       draining,
		SLO:            s.SLOSnapshots(),
	}
	if s.tracing {
		st.Trace = &TraceStats{
			Records: s.sink.ctrRecords.Value(),
			Sampled: s.sink.ctrSampled.Value(),
			Dropped: s.sink.ctrDropped.Value(),
		}
	}
	if s.cl.NumShards() > 1 {
		st.Shards = s.cl.Stats()
		st.Router = s.cfg.Router.String()
	}
	return st
}

// addRevenue accumulates an accepted booking's price into the stats
// mirror. With one shard the adds happen in engine order, so the float
// sum is bit-identical to the engine's own Revenue accumulator; with
// several shards the CAS loop makes concurrent adds safe (summation
// order, and hence the last few ulps, then depend on interleaving).
func (s *Server) addRevenue(price float64) {
	for {
		old := s.statRevenue.Load()
		next := math.Float64bits(math.Float64frombits(old) + price)
		if s.statRevenue.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *Server) revenue() float64 { return math.Float64frombits(s.statRevenue.Load()) }
