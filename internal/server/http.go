package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"spacebooking/internal/obs"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// EndpointRef is the wire form of a request endpoint.
type EndpointRef struct {
	// Kind is "ground" (tiling-site index) or "space" (EO-fleet index).
	Kind  string `json:"kind"`
	Index int    `json:"index"`
}

// String renders the compact "kind/index" form used in reservations.
func (e EndpointRef) String() string { return fmt.Sprintf("%s/%d", e.Kind, e.Index) }

// endpoint resolves the reference against the provider's index spaces.
func (s *Server) endpoint(e EndpointRef) (topology.Endpoint, error) {
	var kind topology.EndpointKind
	var limit int
	switch e.Kind {
	case "ground":
		kind, limit = topology.EndpointGround, s.cfg.Provider.NumSites()
	case "space":
		kind, limit = topology.EndpointSpace, s.cfg.Provider.NumEO()
	default:
		return topology.Endpoint{}, fmt.Errorf("unknown endpoint kind %q (want ground or space)", e.Kind)
	}
	if e.Index < 0 || e.Index >= limit {
		return topology.Endpoint{}, fmt.Errorf("%s index %d outside [0,%d)", e.Kind, e.Index, limit)
	}
	return topology.Endpoint{Kind: kind, Index: e.Index}, nil
}

// BookRequest is the body of POST /v1/book. DurationSlots sizes the
// active window from the arrival slot; the three explicit slot fields
// override it for replay against an arrival-driven (max speed) clock.
type BookRequest struct {
	Src           EndpointRef `json:"src"`
	Dst           EndpointRef `json:"dst"`
	RateMbps      float64     `json:"rate_mbps"`
	DurationSlots int         `json:"duration_slots,omitempty"`
	// Valuation defaults to the server's configured workload valuation
	// when zero.
	Valuation float64 `json:"valuation,omitempty"`
	// ArrivalSlot/StartSlot/EndSlot pin the window explicitly (replay
	// mode). Nil fields derive from the slot clock at admission time.
	ArrivalSlot *int `json:"arrival_slot,omitempty"`
	StartSlot   *int `json:"start_slot,omitempty"`
	EndSlot     *int `json:"end_slot,omitempty"`
	// RequestID is an optional client-assigned id echoed on the
	// reservation and audit record, joining server-side traces to
	// client-side logs (GET /v1/requests/{id}/trace accepts it too).
	RequestID string `json:"request_id,omitempty"`
}

// BookResponse is the body of POST /v1/book: the settled reservation,
// or the shed/draining status with no reservation attached.
type BookResponse struct {
	Status      string       `json:"status"`
	Reservation *Reservation `json:"reservation,omitempty"`
	// Reason qualifies a shed response: "overloaded_shard" marks a dry
	// per-shard token bucket (vs a full ingress queue, no reason).
	Reason string `json:"reason,omitempty"`
}

// ConfigResponse is the body of GET /v1/config: what a load generator
// needs to synthesise a valid workload against this server.
type ConfigResponse struct {
	Algorithm string          `json:"algorithm"`
	Horizon   int             `json:"horizon"`
	ClockRate float64         `json:"clock_rate"`
	Pairs     []PairRef       `json:"pairs"`
	Workload  workload.Config `json:"workload"`
}

// PairRef is one bookable source–destination pair in wire form.
type PairRef struct {
	Src EndpointRef `json:"src"`
	Dst EndpointRef `json:"dst"`
}

// refOf converts a topology endpoint back to wire form.
func refOf(e topology.Endpoint) EndpointRef {
	kind := "ground"
	if e.Kind == topology.EndpointSpace {
		kind = "space"
	}
	return EndpointRef{Kind: kind, Index: e.Index}
}

// writeJSON writes one JSON response; encode errors past the header are
// logged into the void (the client is gone).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON writes the uniform error envelope.
func errorJSON(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// Register mounts the booking API on mux. The caller typically passes
// obs.NewDebugMux's mux so /v1/* rides alongside /debug/pprof/,
// /metrics and /timeseries.json on one listener.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/book", s.handleBook)
	mux.HandleFunc("GET /v1/reservations/{id}", s.handleReservation)
	mux.HandleFunc("GET /v1/requests/{id}/trace", s.handleRequestTrace)
	mux.HandleFunc("GET /debug/traces.json", s.handleRecentTraces)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/config", s.handleConfig)
	mux.HandleFunc("GET /v1/hotspots", s.handleHotspots)
	mux.HandleFunc("GET /debug/constellation.json", s.handleConstellation)
	mux.HandleFunc("GET /debug/map.svg", s.handleMapSVG)
	mux.HandleFunc("GET /debug/dash", s.handleDash)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// handleBook admits one booking synchronously: enqueue, wait for the
// engine's decision, respond. A full queue responds immediately with
// StatusOverloaded (HTTP 429) — explicit load shedding, never blocking.
func (s *Server) handleBook(w http.ResponseWriter, r *http.Request) {
	var rec *obs.TraceRec
	var parseSpan int
	if s.tracing {
		rec = s.tracePool.Get(s.now())
		parseSpan = rec.Begin(PhaseIngressParse, s.now())
	}
	var br BookRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		s.tracePool.Put(rec)
		errorJSON(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	p, err := s.newPending(br)
	if err != nil {
		s.tracePool.Put(rec)
		errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	if rec != nil {
		now := s.now()
		rec.End(parseSpan, now)
		p.rec = rec
		p.headSampled = s.policy.SampleHead(uint64(p.id))
		// The queue.wait span must open — and the audit debt register —
		// before enqueue: the engine may touch p the instant the send
		// lands.
		p.qwSpan = rec.Begin(PhaseQueueWait, now)
		s.auditWG.Add(1)
	}
	switch err := s.enqueue(p); err {
	case nil:
	case errShed:
		s.sloAvail.Observe(false)
		if s.tracing {
			s.emitRefused(p, StatusOverloaded)
			s.auditWG.Done()
		}
		writeJSON(w, http.StatusTooManyRequests, BookResponse{Status: StatusOverloaded})
		return
	case errOverloadedShard:
		s.sloAvail.Observe(false)
		if s.tracing {
			s.emitRefused(p, StatusOverloaded)
			s.auditWG.Done()
		}
		writeJSON(w, http.StatusTooManyRequests, BookResponse{Status: StatusOverloaded, Reason: "overloaded_shard"})
		return
	case errDraining:
		if s.tracing {
			s.emitRefused(p, StatusDraining)
			s.auditWG.Done()
		}
		writeJSON(w, http.StatusServiceUnavailable, BookResponse{Status: StatusDraining})
		return
	default:
		if s.tracing {
			s.emitRefused(p, StatusError)
			s.auditWG.Done()
		}
		errorJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	select {
	case <-p.done:
	case <-r.Context().Done():
		// The client gave up; the decision is still made (admission is
		// irrevocable) and stays queryable at /v1/reservations/{id}.
		// For traced requests, hand audit emission to the engine — or,
		// if it already decided, fall through to the normal path.
		if !s.tracing || p.emitState.CompareAndSwap(emitWaiting, emitAbandoned) {
			writeJSON(w, http.StatusAccepted, BookResponse{
				Status:      StatusQueued,
				Reservation: &Reservation{ID: p.id, Status: StatusQueued},
			})
			return
		}
		<-p.done
	}
	resv := p.resv
	code := http.StatusOK
	if resv.Status == StatusError {
		code = http.StatusInternalServerError
	}
	if s.tracing {
		respondSpan := p.rec.Begin(PhaseRespond, s.now())
		writeJSON(w, code, BookResponse{Status: resv.Status, Reservation: &resv})
		p.rec.End(respondSpan, s.now())
		s.emitDecided(p, s.now())
		return
	}
	writeJSON(w, code, BookResponse{Status: resv.Status, Reservation: &resv})
}

// newPending validates and normalises one booking into a queue entry.
func (s *Server) newPending(br BookRequest) (*pending, error) {
	src, err := s.endpoint(br.Src)
	if err != nil {
		return nil, fmt.Errorf("src: %w", err)
	}
	dst, err := s.endpoint(br.Dst)
	if err != nil {
		return nil, fmt.Errorf("dst: %w", err)
	}
	if src == dst {
		return nil, fmt.Errorf("src and dst are the same endpoint")
	}
	if br.RateMbps <= 0 {
		return nil, fmt.Errorf("rate_mbps must be positive, got %v", br.RateMbps)
	}
	val := br.Valuation
	if val == 0 {
		val = s.cfg.Run.Workload.Valuation
	}
	if val <= 0 {
		return nil, fmt.Errorf("valuation must be positive, got %v", val)
	}
	dur := br.DurationSlots
	if dur < 0 {
		return nil, fmt.Errorf("duration_slots must be positive, got %d", br.DurationSlots)
	}
	if dur == 0 && br.EndSlot == nil {
		dur = 1 // default: a single-slot booking starting now
	}
	for name, v := range map[string]*int{
		"arrival_slot": br.ArrivalSlot, "start_slot": br.StartSlot, "end_slot": br.EndSlot,
	} {
		if v != nil && *v < 0 {
			return nil, fmt.Errorf("%s must be non-negative, got %d", name, *v)
		}
	}
	p := &pending{
		id:       s.nextID.Add(1),
		src:      src,
		dst:      dst,
		arrival:  br.ArrivalSlot,
		start:    br.StartSlot,
		end:      br.EndSlot,
		dur:      dur,
		rate:     br.RateMbps,
		val:      val,
		enqueued: s.now(),
		done:     make(chan struct{}),
		clientID: br.RequestID,
	}
	p.resv = Reservation{
		ID:              p.id,
		Status:          StatusQueued,
		Src:             br.Src.String(),
		Dst:             br.Dst.String(),
		RateMbps:        br.RateMbps,
		Valuation:       val,
		ClientRequestID: br.RequestID,
	}
	return p, nil
}

// handleReservation serves GET /v1/reservations/{id}.
func (s *Server) handleReservation(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "invalid reservation id")
		return
	}
	resv, ok := s.reservation(id)
	if !ok {
		errorJSON(w, http.StatusNotFound, fmt.Sprintf("no reservation %d", id))
		return
	}
	writeJSON(w, http.StatusOK, resv)
}

// handleRequestTrace serves GET /v1/requests/{id}/trace: the audit
// record for one request, addressed by server id (numeric) or by the
// client-assigned request_id. Only records still in the recent buffer
// resolve; this is a debugging window, not a durable store (the JSONL
// audit log is the durable stream).
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	if !s.tracing {
		errorJSON(w, http.StatusNotFound, "tracing disabled (start spaced with -trace-sample, -audit-log or -trace)")
		return
	}
	idStr := r.PathValue("id")
	var rec *AuditRecord
	if id, err := strconv.ParseInt(idStr, 10, 64); err == nil {
		rec = s.sink.find(func(a *AuditRecord) bool { return a.ID == id })
	} else {
		rec = s.sink.find(func(a *AuditRecord) bool { return a.ClientID == idStr })
	}
	if rec == nil {
		errorJSON(w, http.StatusNotFound,
			fmt.Sprintf("no audit record for request %q (still in flight, or evicted from the recent buffer)", idStr))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleRecentTraces serves GET /debug/traces.json: the most recent
// audit records, newest first. ?n= bounds the count.
func (s *Server) handleRecentTraces(w http.ResponseWriter, r *http.Request) {
	if !s.tracing {
		errorJSON(w, http.StatusNotFound, "tracing disabled (start spaced with -trace-sample, -audit-log or -trace)")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			errorJSON(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	recs := s.sink.Recent(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(recs),
		"records": recs,
	})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// handleConfig serves GET /v1/config.
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	pairs := make([]PairRef, 0, len(s.cfg.Run.Workload.Pairs))
	for _, p := range s.cfg.Run.Workload.Pairs {
		pairs = append(pairs, PairRef{Src: refOf(p.Src), Dst: refOf(p.Dst)})
	}
	writeJSON(w, http.StatusOK, ConfigResponse{
		Algorithm: s.cl.Algorithm(),
		Horizon:   s.horizon,
		ClockRate: s.cfg.ClockRate,
		Pairs:     pairs,
		Workload:  s.cfg.Run.Workload,
	})
}

// handleHealthz serves GET /healthz: 200 while accepting, 503 once
// draining (so load balancers and smoke tests see the drain).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.lifeMu.RLock()
	draining := s.draining
	s.lifeMu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": StatusDraining})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
