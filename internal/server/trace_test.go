package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/obs"
)

// auditLines parses a JSONL audit file, failing on any malformed line —
// the graceful-drain guarantee is that the file is never truncated
// mid-record.
func auditLines(t *testing.T, path string) []AuditRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []AuditRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var rec AuditRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("audit line %d not a complete record: %v (%q)", line, err, sc.Text())
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// phaseSet indexes a record's phases by name.
func phaseSet(rec AuditRecord) map[string]bool {
	out := make(map[string]bool, len(rec.Phases))
	for _, sp := range rec.Phases {
		out[sp.Name] = true
	}
	return out
}

// TestStatsQueueHighWaterAndShed pins the new /v1/stats fields: the
// queue-depth high-water mark sticks at its maximum and the cumulative
// shed count is exposed alongside it.
func TestStatsQueueHighWaterAndShed(t *testing.T) {
	rc := testRunConfig(t, 2, 11)
	rc.Obs = obs.New()
	gate := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Run: rc, BatchSize: 1, QueueDepth: 2, testGate: gate,
	})
	br := BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 0},
		Dst:      EndpointRef{Kind: "ground", Index: 1},
		RateMbps: 500,
	}

	getStats := func() Stats {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := getStats(); st.QueueHighWater != 0 || st.Shed != 0 {
		t.Fatalf("pristine stats: high water %d, shed %d, want 0/0", st.QueueHighWater, st.Shed)
	}

	// Stall the engine on the first booking, then fill the queue.
	pending := make([]chan BookResponse, 3)
	for i := range pending {
		pending[i] = make(chan BookResponse, 1)
		ch := pending[i]
		go func() {
			_, out := postBook(t, hs.URL, br)
			ch <- out
		}()
		if i == 0 {
			waitFor(t, func() bool { return s.ctrBatches.Value() == 0 && s.cl.QueuedTotal() == 0 })
		}
	}
	waitFor(t, func() bool { return s.cl.QueuedTotal() == 2 })

	// Queue full: one more sheds.
	if code, _ := postBook(t, hs.URL, br); code != http.StatusTooManyRequests {
		t.Fatalf("shed booking: HTTP %d, want 429", code)
	}

	st := getStats()
	if st.QueueHighWater != 2 {
		t.Errorf("queue_high_water = %d, want 2", st.QueueHighWater)
	}
	if st.Shed != 1 {
		t.Errorf("requests_shed = %d, want 1", st.Shed)
	}
	if len(st.SLO) != 2 {
		t.Errorf("stats carries %d SLO classes, want 2: %+v", len(st.SLO), st.SLO)
	}

	close(gate)
	for _, ch := range pending {
		<-ch
	}
	// The high-water mark sticks after the queue drains.
	waitFor(t, func() bool { return s.cl.QueuedTotal() == 0 })
	if st := getStats(); st.QueueHighWater != 2 {
		t.Errorf("queue_high_water after drain = %d, want 2 (must be sticky)", st.QueueHighWater)
	}
}

// TestGracefulDrainFlushesAudit extends the drain guarantee to the
// audit pipeline: Shutdown with traced requests still queued must flush
// every record completely into the JSONL file — exactly one parseable
// line per decision, nothing truncated.
func TestGracefulDrainFlushesAudit(t *testing.T) {
	rc := testRunConfig(t, 2, 12)
	gate := make(chan struct{})
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	const queued = 3
	s, hs := newTestServer(t, Config{
		Run: rc, BatchSize: 1, QueueDepth: queued + 1, testGate: gate,
		Trace: TraceConfig{SampleRate: 1, AuditPath: auditPath},
	})

	br := BookRequest{
		Src:      EndpointRef{Kind: "ground", Index: 2},
		Dst:      EndpointRef{Kind: "ground", Index: 3},
		RateMbps: 600,
	}
	chans := make([]chan BookResponse, queued)
	for i := range chans {
		chans[i] = make(chan BookResponse, 1)
		ch := chans[i]
		id := fmt.Sprintf("drain-%d", i)
		go func() {
			req := br
			req.RequestID = id
			_, out := postBook(t, hs.URL, req)
			ch <- out
		}()
	}
	waitFor(t, func() bool { return s.cl.QueuedTotal() >= queued-1 && s.ctrBatches.Value() == 0 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool {
		s.lifeMu.RLock()
		defer s.lifeMu.RUnlock()
		return s.draining
	})
	// A refusal during the drain is audited too (before the sink closes:
	// the engine is still parked on the gate).
	refused := br
	refused.RequestID = "drain-refused"
	if code, _ := postBook(t, hs.URL, refused); code != http.StatusServiceUnavailable {
		t.Fatalf("booking while draining: HTTP %d, want 503", code)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i, ch := range chans {
		select {
		case out := <-ch:
			if out.Status != StatusAccepted && out.Status != StatusRejected {
				t.Errorf("queued booking %d settled as %q", i, out.Status)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued booking %d lost during drain", i)
		}
	}

	recs := auditLines(t, auditPath)
	if len(recs) != queued+1 {
		t.Fatalf("audit log holds %d records, want %d (every queued decision plus the draining refusal)", len(recs), queued+1)
	}
	seen := map[string]int{}
	for _, rec := range recs {
		seen[rec.ClientID]++
		if !rec.Sampled || len(rec.Phases) == 0 {
			t.Errorf("record %s (outcome %s): sampled=%v phases=%d, want full timeline at sample rate 1",
				rec.ClientID, rec.Outcome, rec.Sampled, len(rec.Phases))
		}
	}
	for i := 0; i < queued; i++ {
		if id := fmt.Sprintf("drain-%d", i); seen[id] != 1 {
			t.Errorf("client id %s has %d audit records, want 1", id, seen[id])
		}
	}
	if seen["drain-refused"] != 1 {
		t.Errorf("draining refusal has %d audit records, want 1", seen["drain-refused"])
	}
	if st := s.StatsSnapshot(); st.Trace == nil || st.Trace.Dropped != 0 {
		t.Errorf("trace stats = %+v, want present with 0 dropped", st.Trace)
	}
}

// TestAuditExactlyOnce is the end-to-end acceptance gate: under
// concurrent load with client-assigned request ids, every request —
// decided or refused — resolves to exactly one audit record, and every
// rejected or shed request is always sampled with a complete phase
// timeline even at head-sample rate 0.
func TestAuditExactlyOnce(t *testing.T) {
	rc := testRunConfig(t, 2, 13)
	rc.Obs = obs.New()
	gate := make(chan struct{})
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	s, hs := newTestServer(t, Config{
		Run: rc, BatchSize: 4, QueueDepth: 2, testGate: gate,
		Trace: TraceConfig{Enabled: true, AuditPath: auditPath}, // head rate 0: tail sampling only
	})
	br := func(id string) BookRequest {
		return BookRequest{
			Src:       EndpointRef{Kind: "ground", Index: 0},
			Dst:       EndpointRef{Kind: "ground", Index: 3},
			RateMbps:  700,
			RequestID: id,
		}
	}
	// London→Tokyo at slot 8 is feasible in the test constellation, so
	// the burst mixes real accepts with capacity rejections.
	brFeasible := func(id string) BookRequest {
		arrival := 8
		return BookRequest{
			Src:         EndpointRef{Kind: "ground", Index: 2},
			Dst:         EndpointRef{Kind: "ground", Index: 3},
			RateMbps:    700,
			ArrivalSlot: &arrival,
			RequestID:   id,
		}
	}

	// Phase 1 — deterministic sheds: park the engine, fill the queue,
	// overflow it.
	parked := make(chan BookResponse, 1)
	go func() {
		_, out := postBook(t, hs.URL, br("req-parked"))
		parked <- out
	}()
	waitFor(t, func() bool { return s.ctrBatches.Value() == 0 && s.cl.QueuedTotal() == 0 })
	queued := make([]chan BookResponse, 2)
	for i := range queued {
		queued[i] = make(chan BookResponse, 1)
		ch := queued[i]
		id := fmt.Sprintf("req-queued-%d", i)
		go func() {
			_, out := postBook(t, hs.URL, br(id))
			ch <- out
		}()
	}
	waitFor(t, func() bool { return s.cl.QueuedTotal() == 2 })
	shedIDs := []string{"req-shed-0", "req-shed-1"}
	for _, id := range shedIDs {
		if code, _ := postBook(t, hs.URL, br(id)); code != http.StatusTooManyRequests {
			t.Fatalf("%s: HTTP %d, want 429", id, code)
		}
	}
	gate <- struct{}{} // release exactly one batch
	<-parked
	for _, ch := range queued {
		<-ch
	}

	// Phase 2 — concurrent decided load (accepts and engine rejections).
	const burst = 24
	var wg sync.WaitGroup
	decided := make([]BookResponse, burst)
	close(gate) // engine free-runs from here on
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out := postBook(t, hs.URL, brFeasible(fmt.Sprintf("req-burst-%d", i)))
			decided[i] = out
		}(i)
	}
	wg.Wait()
	for i, out := range decided {
		// A burst request may still shed against the depth-2 queue;
		// shed, accepted and rejected are all audited outcomes.
		if out.Status != StatusAccepted && out.Status != StatusRejected && out.Status != StatusOverloaded {
			t.Fatalf("burst request %d settled as %q", i, out.Status)
		}
	}

	// Every client id resolves through the trace endpoint before drain.
	for _, id := range []string{"req-parked", "req-shed-0"} {
		resp, err := http.Get(hs.URL + "/v1/requests/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		var rec AuditRecord
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rec.ClientID != id {
			t.Fatalf("GET /v1/requests/%s/trace: HTTP %d, client id %q", id, resp.StatusCode, rec.ClientID)
		}
		// The same record resolves by numeric server id.
		resp, err = http.Get(fmt.Sprintf("%s/v1/requests/%d/trace", hs.URL, rec.ID))
		if err != nil {
			t.Fatal(err)
		}
		var byNum AuditRecord
		if err := json.NewDecoder(resp.Body).Decode(&byNum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if byNum.ClientID != id {
			t.Fatalf("trace by server id %d resolved client %q, want %q", rec.ID, byNum.ClientID, id)
		}
	}

	// /debug/traces.json serves the recent buffer.
	resp, err := http.Get(hs.URL + "/debug/traces.json?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var recent struct {
		Count   int           `json:"count"`
		Records []AuditRecord `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || recent.Count == 0 || len(recent.Records) != recent.Count {
		t.Fatalf("/debug/traces.json: HTTP %d count %d records %d", resp.StatusCode, recent.Count, len(recent.Records))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	recs := auditLines(t, auditPath)
	wantIDs := map[string]bool{"req-parked": true, "req-queued-0": true, "req-queued-1": true,
		"req-shed-0": true, "req-shed-1": true}
	for i := 0; i < burst; i++ {
		wantIDs[fmt.Sprintf("req-burst-%d", i)] = true
	}
	counts := map[string]int{}
	for _, rec := range recs {
		counts[rec.ClientID]++
	}
	if len(recs) != len(wantIDs) {
		t.Errorf("audit log holds %d records, want %d", len(recs), len(wantIDs))
	}
	for id := range wantIDs {
		if counts[id] != 1 {
			t.Errorf("request id %s has %d audit records, want exactly 1", id, counts[id])
		}
	}

	// Tail-sampling invariants at head rate 0.
	for _, rec := range recs {
		phases := phaseSet(rec)
		switch rec.Outcome {
		case StatusOverloaded:
			if !rec.Sampled || !phases[PhaseIngressParse] || !phases[PhaseQueueWait] {
				t.Errorf("shed record %s: sampled=%v phases=%v, want sampled with parse+queue timeline",
					rec.ClientID, rec.Sampled, phases)
			}
		case StatusRejected, StatusError:
			for _, want := range []string{PhaseIngressParse, PhaseQueueWait, PhaseBatchWait, PhaseEngineAdmit,
				PhaseEngineSearch, PhaseEnginePricing, PhaseEngineCommit} {
				if !phases[want] {
					t.Errorf("%s record %s: missing phase %s (got %v)", rec.Outcome, rec.ClientID, want, phases)
				}
			}
			if !rec.Sampled {
				t.Errorf("%s record %s not sampled; rejections must always carry their timeline", rec.Outcome, rec.ClientID)
			}
		case StatusAccepted:
			if rec.Sampled {
				t.Errorf("accepted record %s sampled at head rate 0 with no slow threshold", rec.ClientID)
			}
			if rec.Price <= 0 || rec.Hops <= 0 {
				t.Errorf("accepted record %s: price %v hops %d, want positive", rec.ClientID, rec.Price, rec.Hops)
			}
		default:
			t.Errorf("unexpected outcome %q for %s", rec.Outcome, rec.ClientID)
		}
		if rec.TotalNs < 0 {
			t.Errorf("record %s: negative total %d", rec.ClientID, rec.TotalNs)
		}
	}

	// At least one decided record shows engine work (searches happen on
	// any admission that reaches the engine).
	sawWork := false
	for _, rec := range recs {
		if rec.Outcome == StatusAccepted && rec.Searches > 0 {
			sawWork = true
			break
		}
	}
	if !sawWork {
		t.Error("no accepted record carries engine search counts")
	}
}

// TestTraceEndpointsDisabled pins the disabled-tracing surface: both
// endpoints 404, stats carry no trace section, and bookings work.
func TestTraceEndpointsDisabled(t *testing.T) {
	rc := testRunConfig(t, 2, 14)
	_, hs := newTestServer(t, Config{Run: rc})
	code, out := postBook(t, hs.URL, BookRequest{
		Src: EndpointRef{Kind: "ground", Index: 0}, Dst: EndpointRef{Kind: "ground", Index: 1},
		RateMbps: 500, RequestID: "untraced",
	})
	if code != http.StatusOK {
		t.Fatalf("booking: HTTP %d", code)
	}
	if out.Reservation.ClientRequestID != "untraced" {
		t.Errorf("client request id %q not echoed", out.Reservation.ClientRequestID)
	}
	for _, path := range []string{"/v1/requests/untraced/trace", "/debug/traces.json"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Trace != nil {
		t.Errorf("stats trace section present with tracing disabled: %+v", st.Trace)
	}
}
