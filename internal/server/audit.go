package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"spacebooking/internal/obs"
)

// Per-request phase names recorded by the serving layer's trace
// recorder. The engine.* sub-phases are duration aggregates
// reconstructed from instrument counter deltas around the admission:
// search includes the pricing callbacks it invokes, so the reported
// engine.search span is search-minus-pricing and the three sub-phases
// are disjoint.
const (
	PhaseIngressParse  = "ingress.parse"
	PhaseQueueWait     = "queue.wait"
	PhaseBatchWait     = "batch.wait"
	PhaseEngineAdmit   = "engine.admit"
	PhaseEngineSearch  = "engine.search"
	PhaseEnginePricing = "engine.pricing"
	PhaseEngineCommit  = "engine.commit"
	PhaseRespond       = "respond"
)

// TraceConfig parameterises request-scoped tracing and the admission
// audit stream. Tracing is enabled when any of SampleRate, AuditPath or
// Enabled is set; disabled tracing costs the hot path nothing.
type TraceConfig struct {
	// SampleRate is the head-sampling probability in [0, 1] for
	// attaching the full phase timeline to an audit record. Shed,
	// rejected, errored and slow requests are always sampled.
	SampleRate float64
	// SlowThreshold forces sampling of any request whose total latency
	// reaches it. 0 disables slow-sampling.
	SlowThreshold time.Duration
	// AuditPath, when non-empty, appends one JSON line per admission
	// decision to this file (created/truncated at startup).
	AuditPath string
	// RecentN bounds the in-memory recent-record buffer behind
	// /debug/traces.json and /v1/requests/{id}/trace. Default 256.
	RecentN int
	// RingDepth bounds the async sink channel between deciders and the
	// single writer goroutine; a full ring drops records (counted on
	// server.trace.dropped) rather than blocking admission. Default 1024.
	RingDepth int
	// Enabled force-enables tracing even with a zero sample rate and no
	// audit file (records still reach the recent buffer).
	Enabled bool
}

// enabled reports whether any tracing surface is requested.
func (tc TraceConfig) enabled() bool {
	return tc.Enabled || tc.SampleRate > 0 || tc.AuditPath != ""
}

// SLOConfig parameterises the serving layer's per-class SLO tracking.
type SLOConfig struct {
	// LatencyObjective is the admit-latency objective (enqueue to
	// decision). Default 25ms.
	LatencyObjective time.Duration
	// LatencyTarget is the required fraction of requests meeting the
	// objective. Default 0.99.
	LatencyTarget float64
	// AvailabilityTarget is the required fraction of requests that are
	// not shed or errored. Default 0.999.
	AvailabilityTarget float64
}

// AuditRecord is one admission decision in the audit stream: the
// decision itself, the engine work it took (instrument counter deltas,
// exact because the engine is single-writer), and — when sampled — the
// request's full phase timeline. Records are immutable once emitted.
type AuditRecord struct {
	ID       int64  `json:"id"`
	ClientID string `json:"client_id,omitempty"`
	// TSUnixNs is the wall time the request entered the server.
	TSUnixNs int64   `json:"ts_unix_ns"`
	Outcome  string  `json:"outcome"` // accepted|rejected|error|overloaded|draining
	Reason   string  `json:"reason,omitempty"`
	Price    float64 `json:"price,omitempty"`
	Hops     int     `json:"hops,omitempty"`

	ArrivalSlot int `json:"arrival_slot"`
	StartSlot   int `json:"start_slot"`
	EndSlot     int `json:"end_slot"`

	// Shard is the admitting shard; CrossShard marks a booking that ran
	// the two-phase protocol. Both are omitted in single-shard runs, so
	// single-shard audit output is byte-identical to the pre-cluster
	// stream.
	Shard      int  `json:"shard,omitempty"`
	CrossShard bool `json:"cross_shard,omitempty"`

	// Engine work attributable to this request.
	Searches     int64 `json:"searches"`
	PrunedLabels int64 `json:"pruned_labels"`
	HeapPops     int64 `json:"heap_pops"`
	DeficitWalks int64 `json:"deficit_walks"`

	// TotalNs is ingress to emission; per-phase nanos live in Phases.
	TotalNs int64 `json:"total_ns"`
	// Sampled marks records carrying the phase timeline.
	Sampled bool            `json:"sampled"`
	Phases  []obs.TraceSpan `json:"phases,omitempty"`
}

// engineProbe holds the instrument counters the engine goroutine reads
// as before/after deltas around each admission. All handles are
// nil-safe: without a registry every delta is zero but tracing still
// produces records and wall-clock phases.
type engineProbe struct {
	searches  *obs.Counter
	pruned    *obs.Counter
	heapPops  *obs.Counter
	walks     *obs.Counter
	searchNs  *obs.Counter
	pricingNs *obs.Counter
	commitNs  *obs.Counter
}

// newEngineProbe resolves the counter handles by name; these are the
// same counters the state's instruments write (same registry, same
// name), so deltas around Admit are exact on the single-writer engine
// goroutine.
func newEngineProbe(reg *obs.Registry) engineProbe {
	return engineProbe{
		searches:  reg.Counter("core.slot_searches"),
		pruned:    reg.Counter("graph.fastpath.pruned_labels"),
		heapPops:  reg.Counter("graph.dijkstra.heap_pops"),
		walks:     reg.Counter("energy.deficit_walks"),
		searchNs:  reg.Counter("graph.search.nanos"),
		pricingNs: reg.Counter("energy.pricing.nanos"),
		commitNs:  reg.Counter("netstate.commit.nanos"),
	}
}

// probeSample is one reading of the probed counters.
type probeSample struct {
	searches, pruned, heapPops, walks int64
	searchNs, pricingNs, commitNs     int64
}

func (p engineProbe) read() probeSample {
	return probeSample{
		searches:  p.searches.Value(),
		pruned:    p.pruned.Value(),
		heapPops:  p.heapPops.Value(),
		walks:     p.walks.Value(),
		searchNs:  p.searchNs.Value(),
		pricingNs: p.pricingNs.Value(),
		commitNs:  p.commitNs.Value(),
	}
}

// sub returns the per-request delta a - b.
func (a probeSample) sub(b probeSample) probeSample {
	return probeSample{
		searches:  a.searches - b.searches,
		pruned:    a.pruned - b.pruned,
		heapPops:  a.heapPops - b.heapPops,
		walks:     a.walks - b.walks,
		searchNs:  a.searchNs - b.searchNs,
		pricingNs: a.pricingNs - b.pricingNs,
		commitNs:  a.commitNs - b.commitNs,
	}
}

// auditSink is the bounded async record pipeline: deciders emit without
// blocking into a ring channel, one writer goroutine appends to the
// JSONL file (if configured) and the in-memory recent buffer. Close
// drains the channel and flushes the file, so a graceful drain never
// truncates records.
type auditSink struct {
	ch   chan *AuditRecord
	done chan struct{}

	// mu guards closed against emit's channel send, so Close can close
	// the channel without racing a sender.
	mu     sync.RWMutex
	closed bool

	f  *os.File
	bw *bufio.Writer
	// writeErr is set by the writer goroutine and read after done.
	writeErr error

	recentMu sync.RWMutex
	recent   []*AuditRecord // ring of the last cap(recent) records
	next     int
	filled   bool

	ctrRecords *obs.Counter
	ctrSampled *obs.Counter
	ctrDropped *obs.Counter
}

// newAuditSink opens the audit file (if any) and starts the writer.
func newAuditSink(tc TraceConfig, reg *obs.Registry) (*auditSink, error) {
	ring := tc.RingDepth
	if ring <= 0 {
		ring = 1024
	}
	recentN := tc.RecentN
	if recentN <= 0 {
		recentN = 256
	}
	a := &auditSink{
		ch:         make(chan *AuditRecord, ring),
		done:       make(chan struct{}),
		recent:     make([]*AuditRecord, recentN),
		ctrRecords: reg.Counter("server.trace.records"),
		ctrSampled: reg.Counter("server.trace.sampled"),
		ctrDropped: reg.Counter("server.trace.dropped"),
	}
	if tc.AuditPath != "" {
		f, err := os.Create(tc.AuditPath)
		if err != nil {
			return nil, fmt.Errorf("server: audit log: %w", err)
		}
		a.f = f
		a.bw = bufio.NewWriter(f)
	}
	go a.loop()
	return a, nil
}

// emit hands one record to the writer without ever blocking admission:
// a full ring (or a closed sink) drops the record and counts the drop.
func (a *auditSink) emit(rec *AuditRecord) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.ctrDropped.Inc()
		return
	}
	select {
	case a.ch <- rec:
	default:
		a.ctrDropped.Inc()
	}
}

// loop is the single writer: recent buffer, then JSONL.
func (a *auditSink) loop() {
	defer close(a.done)
	var enc *json.Encoder
	if a.bw != nil {
		enc = json.NewEncoder(a.bw)
	}
	for rec := range a.ch {
		a.ctrRecords.Inc()
		if rec.Sampled {
			a.ctrSampled.Inc()
		}
		a.remember(rec)
		if enc != nil && a.writeErr == nil {
			if err := enc.Encode(rec); err != nil {
				a.writeErr = fmt.Errorf("server: audit log write: %w", err)
			}
		}
	}
}

// remember inserts the record into the recent ring.
func (a *auditSink) remember(rec *AuditRecord) {
	a.recentMu.Lock()
	a.recent[a.next] = rec
	a.next++
	if a.next == len(a.recent) {
		a.next = 0
		a.filled = true
	}
	a.recentMu.Unlock()
}

// Recent returns up to n records, newest first.
func (a *auditSink) Recent(n int) []*AuditRecord {
	a.recentMu.RLock()
	defer a.recentMu.RUnlock()
	size := a.next
	if a.filled {
		size = len(a.recent)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*AuditRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, a.recent[(a.next-i+len(a.recent))%len(a.recent)])
	}
	return out
}

// find returns the newest record matching the predicate.
func (a *auditSink) find(match func(*AuditRecord) bool) *AuditRecord {
	a.recentMu.RLock()
	defer a.recentMu.RUnlock()
	size := a.next
	if a.filled {
		size = len(a.recent)
	}
	for i := 1; i <= size; i++ {
		if rec := a.recent[(a.next-i+len(a.recent))%len(a.recent)]; match(rec) {
			return rec
		}
	}
	return nil
}

// Close stops intake, drains the ring, flushes and closes the file.
// Idempotent; later emits are dropped (and counted), not lost silently.
func (a *auditSink) Close() error {
	a.mu.Lock()
	alreadyClosed := a.closed
	a.closed = true
	a.mu.Unlock()
	if !alreadyClosed {
		close(a.ch)
	}
	<-a.done
	if !alreadyClosed && a.bw != nil {
		if err := a.bw.Flush(); err != nil && a.writeErr == nil {
			a.writeErr = fmt.Errorf("server: audit log flush: %w", err)
		}
		if err := a.f.Close(); err != nil && a.writeErr == nil {
			a.writeErr = fmt.Errorf("server: audit log close: %w", err)
		}
	}
	return a.writeErr
}
