// Package router defines the contract shared by every request-admission
// algorithm in the simulator — CEAR and the four baselines (SSP, ECARS,
// ERU, ERA). An algorithm receives online requests one at a time and
// must immediately accept (reserving resources) or reject, per §IV-A.
package router

import (
	"spacebooking/internal/graph"
	"spacebooking/internal/workload"
)

// SlotPath is the route chosen for one active slot of a request.
type SlotPath struct {
	Slot int
	// Path is expressed in the search space of netstate.View: satellite
	// indices, with the two virtual endpoint nodes first and last.
	Path graph.Path
}

// Plan is the routing and reservation plan ψ_i of an accepted request:
// one path per active slot.
type Plan struct {
	Paths []SlotPath
}

// TotalHops returns the summed hop count across all slots (a proxy for
// resource footprint used in reporting).
func (p Plan) TotalHops() int {
	total := 0
	for _, sp := range p.Paths {
		total += sp.Path.Hops()
	}
	return total
}

// Decision is the outcome of handling one request.
type Decision struct {
	Accepted bool
	// Price is the total resource price σ(ψ_i*) quoted for the plan.
	// For CEAR this is the payment π_i; baselines quote zero.
	Price float64
	// Reason is a short explanation for rejections ("" when accepted).
	Reason string
	Plan   Plan
}

// Algorithm is an online request-admission and routing algorithm.
// Implementations own their resource state and mutate it on accept.
type Algorithm interface {
	// Name returns the display name used in result tables.
	Name() string
	// Handle processes one online request. Errors indicate internal
	// failures (bugs, inconsistent state), not rejections.
	Handle(req workload.Request) (Decision, error)
}
