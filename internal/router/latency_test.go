package router

import (
	"math"
	"testing"
	"time"

	"spacebooking/internal/graph"
	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

func TestPlanLatencyMs(t *testing.T) {
	cfg := topology.DefaultConfig(time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC))
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 20
	cfg.MinElevationDeg = 10
	prov, err := topology.NewProvider(cfg, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := topology.Endpoint{Kind: topology.EndpointGround, Index: 0}
	dst := topology.Endpoint{Kind: topology.EndpointGround, Index: 1}

	// Find a slot with visibility and build a 1-satellite path by hand.
	for slot := 0; slot < prov.Horizon(); slot++ {
		sv, err := prov.VisibleSats(src, slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(sv) == 0 {
			continue
		}
		sat := sv[0]
		numSats := prov.NumSats()
		plan := Plan{Paths: []SlotPath{{
			Slot: slot,
			Path: graph.Path{
				Nodes: []int{numSats, sat, numSats + 1},
				Edges: make([]graph.Edge, 2),
			},
		}}}
		req := workload.Request{Src: src, Dst: dst, StartSlot: slot, EndSlot: slot, RateMbps: 1}
		got, err := PlanLatencyMs(prov, req, plan)
		if err != nil {
			t.Fatal(err)
		}
		// Expected: (|src-sat| + |sat-dst|) / c.
		srcPos, _ := prov.EndpointECEF(src, slot)
		dstPos, _ := prov.EndpointECEF(dst, slot)
		satPos := prov.SatPosECEF(slot, sat)
		wantKm := srcPos.DistanceTo(satPos) + satPos.DistanceTo(dstPos)
		want := wantKm / 299.792458
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("latency = %v ms, want %v", got, want)
		}
		if got < 1.8 { // at least the 550 km up-leg twice
			t.Fatalf("latency %v ms implausibly small", got)
		}
		return
	}
	t.Skip("no visibility in horizon")
}

func TestPlanLatencyErrors(t *testing.T) {
	if _, err := PlanLatencyMs(nil, workload.Request{}, Plan{}); err == nil {
		t.Error("empty plan should error")
	}
}

func TestPlanTotalHops(t *testing.T) {
	p := Plan{Paths: []SlotPath{
		{Path: graph.Path{Nodes: []int{0, 1, 2}, Edges: make([]graph.Edge, 2)}},
		{Path: graph.Path{Nodes: []int{0, 3}, Edges: make([]graph.Edge, 1)}},
	}}
	if got := p.TotalHops(); got != 3 {
		t.Errorf("TotalHops = %d, want 3", got)
	}
}
