package router

import (
	"fmt"

	"spacebooking/internal/geo"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// speedOfLightKmPerMs is the propagation speed over free-space links.
const speedOfLightKmPerMs = 299792.458 / 1000

// PlanLatencyMs computes the one-way propagation latency (milliseconds)
// of each slot-path of a plan and returns the mean — the end-to-end
// figure the paper's motivating applications (teleconferencing,
// disaster response) care about. Processing and queueing delays are out
// of scope; with reserved bandwidth the propagation term dominates.
func PlanLatencyMs(prov *topology.Provider, req workload.Request, plan Plan) (float64, error) {
	if len(plan.Paths) == 0 {
		return 0, fmt.Errorf("router: empty plan")
	}
	numSats := prov.NumSats()
	total := 0.0
	for _, sp := range plan.Paths {
		srcPos, err := prov.EndpointECEF(req.Src, sp.Slot)
		if err != nil {
			return 0, err
		}
		dstPos, err := prov.EndpointECEF(req.Dst, sp.Slot)
		if err != nil {
			return 0, err
		}
		pos := func(node int) (geo.Vec3, error) {
			switch {
			case node < numSats:
				return prov.SatPosECEF(sp.Slot, node), nil
			case node == numSats:
				return srcPos, nil
			case node == numSats+1:
				return dstPos, nil
			default:
				return geo.Vec3{}, fmt.Errorf("router: node %d outside search space", node)
			}
		}
		km := 0.0
		for i := 0; i < len(sp.Path.Nodes)-1; i++ {
			a, err := pos(sp.Path.Nodes[i])
			if err != nil {
				return 0, err
			}
			b, err := pos(sp.Path.Nodes[i+1])
			if err != nil {
				return 0, err
			}
			km += a.DistanceTo(b)
		}
		total += km / speedOfLightKmPerMs
	}
	return total / float64(len(plan.Paths)), nil
}
