package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format served at /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes the registry snapshot in the Prometheus text
// exposition format (0.0.4): counters and gauges as scalar families,
// histograms with cumulative le-labelled buckets plus _sum/_count,
// phases as seconds/spans counters labelled by phase name, and each
// time series' most recent sample as a gauge. Families are emitted in
// lexical name order so output is directly diffable. A nil registry
// writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	return writeProm(w, r.Snapshot())
}

func writeProm(w io.Writer, snap RegistrySnapshot) error {
	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		pn := PromName(name)
		fmt.Fprintf(&b, "# HELP %s Monotonic counter %q.\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := PromName(name)
		fmt.Fprintf(&b, "# HELP %s Gauge %q.\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := PromName(name)
		fmt.Fprintf(&b, "# HELP %s Summary of histogram %q (fixed-bucket quantile estimates).\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}, {"0.999", h.P999}} {
			fmt.Fprintf(&b, "%s{quantile=%q} %s\n", pn, q.label, promFloat(q.v))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	if len(snap.Phases) > 0 {
		fmt.Fprintf(&b, "# HELP phase_seconds_total Accumulated wall time per run phase.\n")
		fmt.Fprintf(&b, "# TYPE phase_seconds_total counter\n")
		for _, p := range snap.Phases {
			fmt.Fprintf(&b, "phase_seconds_total{phase=%q} %s\n", p.Name, promFloat(p.TotalSeconds))
		}
		fmt.Fprintf(&b, "# HELP phase_spans_total Finished spans per run phase.\n")
		fmt.Fprintf(&b, "# TYPE phase_spans_total counter\n")
		for _, p := range snap.Phases {
			fmt.Fprintf(&b, "phase_spans_total{phase=%q} %d\n", p.Name, p.Count)
		}
	}
	for _, name := range sortedKeys(snap.TimeSeries) {
		ts := snap.TimeSeries[name]
		pn := PromName(name)
		fmt.Fprintf(&b, "# HELP %s Latest sample of time series %q.\n", pn, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(ts.Last()))
	}
	for _, name := range sortedKeys(snap.TopK) {
		tk := snap.TopK[name]
		pn := PromName(name)
		fmt.Fprintf(&b, "# HELP %s Top-%d entries of tracker %q (mode %s).\n", pn, tk.K, name, tk.Mode)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		for _, e := range tk.Entries {
			label := e.Label
			if label == "" {
				label = strconv.FormatUint(e.Key, 10)
			}
			fmt.Fprintf(&b, "%s{entity=%q} %s\n", pn, label, promFloat(e.Value))
		}
		fmt.Fprintf(&b, "%s_total %s\n", pn, promFloat(tk.Total))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PromName sanitizes an instrument name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (and any other illegal rune)
// become underscores; a leading digit gains an underscore prefix.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
