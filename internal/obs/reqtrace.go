package obs

import (
	"sync"
	"time"
)

// MaxTraceSpans bounds the spans one request can record. The serving
// layer uses eight named phases; the headroom absorbs future phases
// without reallocating — a full recorder drops further Begin calls
// rather than growing.
const MaxTraceSpans = 12

// TraceSpan is one named interval of a request's lifetime, in
// nanoseconds relative to the recorder's epoch (the wall time the
// request entered the system). An open span has EndNs -1.
type TraceSpan struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// DurNs returns the span's duration, or 0 while it is still open.
func (s TraceSpan) DurNs() int64 {
	if s.EndNs < s.StartNs {
		return 0
	}
	return s.EndNs - s.StartNs
}

// TraceRec is an allocation-free per-request span recorder: a fixed
// array of spans plus an epoch, pooled via TracePool so the steady
// state allocates nothing per request. It is single-writer by design —
// ownership moves with the request (handler → engine goroutine →
// handler), each handoff synchronised by the channel or completion
// signal that moves the request itself. All methods are nil-safe so
// call sites need no "tracing enabled?" branches of their own.
type TraceRec struct {
	epoch time.Time
	n     int
	spans [MaxTraceSpans]TraceSpan
}

// Reset re-arms the recorder for a new request starting at now.
func (r *TraceRec) Reset(now time.Time) {
	if r == nil {
		return
	}
	r.epoch = now
	r.n = 0
}

// Epoch returns the request's start wall time.
func (r *TraceRec) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// SinceNs returns now relative to the epoch in nanoseconds, clamped to
// be non-negative (fake test clocks may not advance).
func (r *TraceRec) SinceNs(now time.Time) int64 {
	if r == nil {
		return 0
	}
	ns := now.Sub(r.epoch).Nanoseconds()
	if ns < 0 {
		return 0
	}
	return ns
}

// Begin opens a named span at now and returns its index for End. A nil
// or full recorder returns -1, which End ignores.
func (r *TraceRec) Begin(name string, now time.Time) int {
	if r == nil || r.n >= MaxTraceSpans {
		return -1
	}
	i := r.n
	r.n++
	r.spans[i] = TraceSpan{Name: name, StartNs: r.SinceNs(now), EndNs: -1}
	return i
}

// End closes the span opened by Begin. Ignores idx -1.
func (r *TraceRec) End(idx int, now time.Time) {
	if r == nil || idx < 0 || idx >= r.n {
		return
	}
	r.spans[idx].EndNs = r.SinceNs(now)
}

// Add records an already-measured interval (used for sub-phase
// durations reconstructed from instrument counter deltas). Dropped
// when the recorder is nil or full.
func (r *TraceRec) Add(name string, startNs, durNs int64) {
	if r == nil || r.n >= MaxTraceSpans {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	r.spans[r.n] = TraceSpan{Name: name, StartNs: startNs, EndNs: startNs + durNs}
	r.n++
}

// Spans returns the recorded spans as a view into the recorder; valid
// only until the recorder is reset or returned to its pool.
func (r *TraceRec) Spans() []TraceSpan {
	if r == nil {
		return nil
	}
	return r.spans[:r.n]
}

// CopySpans returns an owned copy of the recorded spans, for attaching
// to an audit record that outlives the pooled recorder.
func (r *TraceRec) CopySpans() []TraceSpan {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]TraceSpan, r.n)
	copy(out, r.spans[:r.n])
	return out
}

// TracePool recycles TraceRecs so tracing costs no steady-state
// allocation per request.
type TracePool struct {
	pool sync.Pool
}

// NewTracePool builds an empty pool.
func NewTracePool() *TracePool {
	tp := &TracePool{}
	tp.pool.New = func() any { return new(TraceRec) }
	return tp
}

// Get returns a recorder reset to the given epoch.
func (tp *TracePool) Get(now time.Time) *TraceRec {
	if tp == nil {
		return nil
	}
	r := tp.pool.Get().(*TraceRec)
	r.Reset(now)
	return r
}

// Put returns a recorder to the pool. Nil recorders are ignored so
// callers can Put unconditionally.
func (tp *TracePool) Put(r *TraceRec) {
	if tp == nil || r == nil {
		return
	}
	tp.pool.Put(r)
}

// SamplePolicy decides which requests get their phase timeline attached
// to the audit stream: a deterministic head-sampling rate by request
// id, plus a slow-request threshold. Shed, rejected and errored
// requests are always sampled by the caller regardless of the policy —
// the policy only thins the uninteresting accepted majority.
type SamplePolicy struct {
	// Rate is the head-sampling probability in [0, 1]. Sampling is a
	// deterministic hash of the request id, so a replayed id stream
	// samples the same requests.
	Rate float64
	// SlowNs forces sampling for any request whose total latency
	// reaches the threshold. 0 disables slow sampling.
	SlowNs int64
}

// SampleHead reports whether the id falls inside the head-sampled
// fraction.
func (p SamplePolicy) SampleHead(id uint64) bool {
	if p.Rate >= 1 {
		return true
	}
	if p.Rate <= 0 {
		return false
	}
	// Threshold compare in hash space: Rate scaled to the full uint64
	// range. splitmix64 decorrelates sequential ids.
	threshold := uint64(p.Rate * float64(1<<63) * 2)
	return splitmix64(id) < threshold
}

// Slow reports whether a total latency trips the always-sample
// threshold.
func (p SamplePolicy) Slow(totalNs int64) bool {
	return p.SlowNs > 0 && totalNs >= p.SlowNs
}

// splitmix64 is the finalizer of the SplitMix64 PRNG: a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
