package obs

import (
	"sort"
	"sync"
)

// TopKMode selects how a TopK combines repeated observations of the
// same key.
type TopKMode uint8

const (
	// TopKSum accumulates per-key sums with the space-saving sketch:
	// when the tracker is full, the minimum entry is evicted and the
	// incoming key inherits its count. Individual entries can therefore
	// overestimate, but the total across all entries is exactly the sum
	// of every Add — eviction transfers mass, it never duplicates or
	// drops it. That invariant is what lets per-entity rejection counts
	// reconcile exactly against the aggregate rejection counters.
	TopKSum TopKMode = iota
	// TopKMax keeps the per-key maximum and evicts the smallest entry
	// when full. Approximate (an evicted key's history is forgotten),
	// intended for level-style heat such as link utilization or battery
	// depth-of-discharge.
	TopKMax
)

func (m TopKMode) String() string {
	if m == TopKMax {
		return "max"
	}
	return "sum"
}

type topkEntry struct {
	key uint64
	val float64
}

// TopK is a bounded-cardinality heavy-hitter tracker: a fixed-capacity
// set of (key, value) pairs updated by linear scan. No map, no
// per-update allocation — the entry array is allocated once at
// construction, so the hot path is allocation-free regardless of key
// churn. With K around 32 the scan is a few cache lines, negligible
// next to a routing search.
//
// A nil *TopK is a valid no-op instrument, matching the other obs
// handles. Updates and snapshots are mutex-guarded; the single-writer
// engine goroutine is the only updater in practice, with HTTP snapshot
// readers on the other side of the lock.
type TopK struct {
	mu      sync.Mutex
	mode    TopKMode
	total   float64
	entries []topkEntry // unsorted; len grows to cap, never beyond
	label   func(key uint64) string
}

// NewTopK creates a tracker holding at most k entries. k < 1 is
// clamped to 1.
func NewTopK(k int, mode TopKMode) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{mode: mode, entries: make([]topkEntry, 0, k)}
}

// SetLabeler installs a key-to-label function used when snapshotting
// (e.g. rendering a packed link key as "12->13"). No-op on nil.
func (t *TopK) SetLabeler(f func(key uint64) string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = f
	t.mu.Unlock()
}

// Add accumulates delta onto key (sum mode). On a full tracker the
// minimum entry is evicted and key inherits its count plus delta, so
// the sum over all entries always equals the sum of all Adds. No-op on
// nil or in max mode.
func (t *TopK) Add(key uint64, delta float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.mode == TopKSum {
		t.total += delta
		if i := t.find(key); i >= 0 {
			t.entries[i].val += delta
		} else if len(t.entries) < cap(t.entries) {
			t.entries = append(t.entries, topkEntry{key: key, val: delta})
		} else {
			m := t.minIndex()
			t.entries[m] = topkEntry{key: key, val: t.entries[m].val + delta}
		}
	}
	t.mu.Unlock()
}

// Observe records a level observation for key (max mode): the entry
// keeps the largest value seen. On a full tracker the smallest entry
// is evicted only if v beats it. No-op on nil or in sum mode.
func (t *TopK) Observe(key uint64, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.mode == TopKMax {
		t.total++
		if i := t.find(key); i >= 0 {
			if v > t.entries[i].val {
				t.entries[i].val = v
			}
		} else if len(t.entries) < cap(t.entries) {
			t.entries = append(t.entries, topkEntry{key: key, val: v})
		} else if m := t.minIndex(); v > t.entries[m].val {
			t.entries[m] = topkEntry{key: key, val: v}
		}
	}
	t.mu.Unlock()
}

// find returns the index of key, or -1. Caller holds t.mu.
func (t *TopK) find(key uint64) int {
	for i := range t.entries {
		if t.entries[i].key == key {
			return i
		}
	}
	return -1
}

// minIndex returns the index of the smallest entry. Caller holds t.mu
// and guarantees len(t.entries) > 0.
func (t *TopK) minIndex() int {
	m := 0
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].val < t.entries[m].val {
			m = i
		}
	}
	return m
}

// Total returns the exact sum of all Adds (sum mode) or the number of
// observations (max mode). Zero on nil.
func (t *TopK) Total() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TopKEntry is one ranked entry in a TopKSnapshot.
type TopKEntry struct {
	Key   uint64  `json:"key"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

// TopKSnapshot is a point-in-time ranking, entries sorted by value
// descending (ties broken by key for determinism).
type TopKSnapshot struct {
	K       int         `json:"k"`
	Mode    string      `json:"mode"`
	Total   float64     `json:"total"`
	Entries []TopKEntry `json:"entries,omitempty"`
}

// Snapshot returns the current ranking. The zero snapshot on nil.
func (t *TopK) Snapshot() TopKSnapshot {
	if t == nil {
		return TopKSnapshot{}
	}
	t.mu.Lock()
	snap := TopKSnapshot{K: cap(t.entries), Mode: t.mode.String(), Total: t.total}
	if len(t.entries) > 0 {
		snap.Entries = make([]TopKEntry, len(t.entries))
		for i, e := range t.entries {
			snap.Entries[i] = TopKEntry{Key: e.key, Value: e.val}
			if t.label != nil {
				snap.Entries[i].Label = t.label(e.key)
			}
		}
	}
	t.mu.Unlock()
	sort.Slice(snap.Entries, func(i, j int) bool {
		if snap.Entries[i].Value != snap.Entries[j].Value {
			return snap.Entries[i].Value > snap.Entries[j].Value
		}
		return snap.Entries[i].Key < snap.Entries[j].Key
	})
	return snap
}

// reset clears entries and total in place. Caller holds t.mu's
// registry lock; takes t.mu itself.
func (t *TopK) reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.entries = t.entries[:0]
	t.total = 0
	t.mu.Unlock()
}

// TopK returns the named tracker, creating it with the given capacity
// and mode on first use (later calls reuse the existing tracker and
// ignore the arguments). Returns nil (a no-op tracker) on a nil
// registry.
func (r *Registry) TopK(name string, k int, mode TopKMode) *TopK {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.topks[name]
	if !ok {
		t = NewTopK(k, mode)
		r.topks[name] = t
	}
	return t
}
