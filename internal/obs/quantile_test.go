package obs

import (
	"math"
	"testing"
)

// TestQuantileGuards locks the satellite fix: empty and nil histograms
// must report 0 from Quantile/P999, never NaN or a bucket bound.
func TestQuantileGuards(t *testing.T) {
	var nilHist *Histogram
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
	if got := nilHist.P999(); got != 0 {
		t.Errorf("nil P999 = %v, want 0", got)
	}

	empty := newHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := empty.Quantile(q); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := empty.P999(); got != 0 {
		t.Errorf("empty P999 = %v, want 0", got)
	}
	// The snapshot path shares the guard.
	if s := empty.Snapshot(); s.P999 != 0 || s.P50 != 0 {
		t.Errorf("empty snapshot quantiles = %+v", s)
	}
}

func TestQuantileValues(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(0.010)
	// A single observation reports itself at every quantile.
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got := h.Quantile(q); math.Abs(got-0.010) > 1e-12 {
			t.Errorf("single-value Quantile(%v) = %v, want 0.010", q, got)
		}
	}

	// Out-of-range q clamps instead of misbehaving.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want clamp to %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want clamp to %v", got, h.Quantile(1))
	}
	if got := h.Quantile(math.NaN()); math.IsNaN(got) {
		t.Error("Quantile(NaN) is NaN")
	}

	// With a wide spread, p999 must sit in the max's bucket, above p50.
	h2 := newHistogram(nil)
	for i := 0; i < 990; i++ {
		h2.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1.0)
	}
	p50, p999 := h2.Quantile(0.5), h2.P999()
	if p999 <= p50 {
		t.Errorf("p999 %v <= p50 %v", p999, p50)
	}
	if p999 > 1.0 || p999 < 0.5 {
		t.Errorf("p999 = %v, want within the top observation's bucket", p999)
	}
	snap := h2.Snapshot()
	if math.Abs(snap.P999-p999) > 1e-9 {
		t.Errorf("snapshot P999 %v != Quantile(0.999) %v", snap.P999, p999)
	}
}
