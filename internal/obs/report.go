package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReportVersion is bumped whenever the report schema changes
// incompatibly, so downstream diff tooling (cmd/obsdiff) can refuse
// mixed versions. Version 2 added the top-level timeseries section;
// version 3 added the slo section and the p999 histogram quantile;
// version 4 added the hotspots section (top-K entity trackers).
const ReportVersion = 4

// Report is the machine-readable end-of-run artifact written by
// `cearsim -report run.json` (and spacebench): the run's configuration
// echo, its final result metrics, and the full observability snapshot
// (per-phase wall-times, counters, histograms). Two reports from the
// same config are directly diffable; benchmark trajectories become
// artifacts instead of scrollback.
type Report struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Config echoes the run's effective configuration (scale, algorithm,
	// rate, seed, pricing parameters, ...). Values are JSON scalars.
	Config map[string]any `json:"config,omitempty"`
	// Metrics holds the final scalar results (welfare ratio, revenue,
	// accepted counts, rejection counts by reason, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// TimeSeries holds the run's per-slot telemetry (accepted/rejected
	// counts, cumulative revenue, depletion/congestion levels, slot wall
	// time) — enough to redraw a Fig. 7-style trajectory without a trace.
	TimeSeries map[string]SeriesSnapshot `json:"timeseries,omitempty"`
	// SLO holds the per-class service-level snapshots (latency
	// objective attainment and error-budget burn) for tools that track
	// them, like the spaced serving daemon. Schema v3.
	SLO []SLOSnapshot `json:"slo,omitempty"`
	// Hotspots holds the end-of-run top-K entity trackers (hot ISLs,
	// depleted batteries, source grid cells) keyed by tracker name.
	// Schema v4.
	Hotspots map[string]TopKSnapshot `json:"hotspots,omitempty"`
	// Observability is the registry snapshot at the end of the run
	// (time series excluded: they live in the TimeSeries section).
	Observability RegistrySnapshot `json:"observability"`
}

// NewReport creates an empty report for the named tool.
func NewReport(tool string) *Report {
	return &Report{
		Version: ReportVersion,
		Tool:    tool,
		Config:  make(map[string]any),
		Metrics: make(map[string]float64),
	}
}

// SetConfig records one configuration key.
func (rep *Report) SetConfig(key string, value any) { rep.Config[key] = value }

// SetMetric records one scalar result.
func (rep *Report) SetMetric(key string, value float64) { rep.Metrics[key] = value }

// SetSLO records the per-class service-level snapshots.
func (rep *Report) SetSLO(classes []SLOSnapshot) { rep.SLO = classes }

// Finish captures the registry into the report: the per-slot telemetry
// becomes the timeseries section, the top-K trackers the hotspots
// section, and everything else the observability section. A nil
// registry leaves them empty.
func (rep *Report) Finish(r *Registry) {
	snap := r.Snapshot()
	rep.TimeSeries = snap.TimeSeries
	snap.TimeSeries = nil
	rep.Hotspots = snap.TopK
	snap.TopK = nil
	rep.Observability = snap
}

// WriteReport writes the report as indented JSON.
func WriteReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("obs: encode report: %w", err)
	}
	return nil
}

// ReadReport parses a report written by WriteReport.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decode report: %w", err)
	}
	if rep.Version != ReportVersion {
		return nil, fmt.Errorf("obs: report version %d, this tool reads %d", rep.Version, ReportVersion)
	}
	return &rep, nil
}

// WriteReportFile writes the report to path, failing on any write or
// close error.
func WriteReportFile(path string, rep *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := WriteReport(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close report: %w", err)
	}
	return nil
}

// ReadReportFile reads a report from path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return ReadReport(f)
}
