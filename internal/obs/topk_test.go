package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestTopKSumExactTotal pins the space-saving invariant the rejection
// attribution relies on: however many evictions happen, the sum over
// the retained entries equals the sum of every Add exactly.
func TestTopKSumExactTotal(t *testing.T) {
	tk := NewTopK(4, TopKSum)
	var want float64
	// 16 distinct keys into 4 slots forces repeated evictions; key 3
	// is the heavy hitter and must survive them.
	for round := 0; round < 8; round++ {
		for key := uint64(0); key < 16; key++ {
			delta := 1.0
			if key == 3 {
				delta = 10
			}
			tk.Add(key, delta)
			want += delta
		}
	}
	if got := tk.Total(); got != want {
		t.Fatalf("Total() = %v, want %v", got, want)
	}
	snap := tk.Snapshot()
	if len(snap.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(snap.Entries))
	}
	var sum float64
	for _, e := range snap.Entries {
		sum += e.Value
	}
	if sum != want {
		t.Fatalf("entry sum %v != total added %v (eviction lost or duplicated mass)", sum, want)
	}
	if snap.Entries[0].Key != 3 {
		t.Fatalf("heavy hitter evicted: top entry is key %d (%v)", snap.Entries[0].Key, snap.Entries)
	}
	if snap.K != 4 || snap.Mode != "sum" || snap.Total != want {
		t.Fatalf("snapshot header = %+v", snap)
	}
}

func TestTopKMaxMode(t *testing.T) {
	tk := NewTopK(2, TopKMax)
	tk.Observe(1, 0.5)
	tk.Observe(1, 0.2) // lower observation must not shrink the max
	tk.Observe(2, 0.8)
	tk.Observe(3, 0.1) // full and below the min: dropped
	tk.Observe(4, 0.6) // full and above the min: evicts key 1
	snap := tk.Snapshot()
	if snap.Mode != "max" || snap.Total != 5 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Entries) != 2 || snap.Entries[0].Key != 2 || snap.Entries[0].Value != 0.8 ||
		snap.Entries[1].Key != 4 || snap.Entries[1].Value != 0.6 {
		t.Fatalf("entries = %+v", snap.Entries)
	}
	// Mode mismatch calls are no-ops.
	tk.Add(9, 100)
	if got := tk.Snapshot(); len(got.Entries) != 2 || got.Total != 5 {
		t.Fatalf("Add on a max tracker mutated it: %+v", got)
	}
	sum := NewTopK(2, TopKSum)
	sum.Observe(1, 7)
	if got := sum.Snapshot(); len(got.Entries) != 0 || got.Total != 0 {
		t.Fatalf("Observe on a sum tracker mutated it: %+v", got)
	}
}

func TestTopKSnapshotOrderingAndLabeler(t *testing.T) {
	tk := NewTopK(4, TopKSum)
	tk.Add(7, 2)
	tk.Add(5, 2) // ties with 7: lower key first
	tk.Add(9, 5)
	tk.SetLabeler(func(key uint64) string {
		if key == 9 {
			return "hot"
		}
		return ""
	})
	snap := tk.Snapshot()
	wantKeys := []uint64{9, 5, 7}
	for i, w := range wantKeys {
		if snap.Entries[i].Key != w {
			t.Fatalf("order = %+v, want keys %v", snap.Entries, wantKeys)
		}
	}
	if snap.Entries[0].Label != "hot" || snap.Entries[1].Label != "" {
		t.Fatalf("labels = %+v", snap.Entries)
	}
}

func TestNilTopK(t *testing.T) {
	var tk *TopK
	tk.Add(1, 1)
	tk.Observe(1, 1)
	tk.SetLabeler(func(uint64) string { return "x" })
	if tk.Total() != 0 {
		t.Fatal("nil tracker total must be 0")
	}
	if snap := tk.Snapshot(); snap.K != 0 || len(snap.Entries) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var r *Registry
	if r.TopK("x", 4, TopKSum) != nil {
		t.Fatal("nil registry must hand out a nil tracker")
	}
}

func TestTopKRegistryCreateAndReset(t *testing.T) {
	r := New()
	tk := r.TopK("hot.links", 8, TopKSum)
	if r.TopK("hot.links", 999, TopKMax) != tk {
		t.Fatal("same name must return the same tracker")
	}
	tk.Add(1, 3)
	r.Reset()
	if tk.Total() != 0 || len(tk.Snapshot().Entries) != 0 {
		t.Fatalf("tracker survived Reset: %+v", tk.Snapshot())
	}
	// The handle stays live and keeps its capacity.
	tk.Add(2, 1)
	snap := tk.Snapshot()
	if snap.K != 8 || snap.Total != 1 || len(snap.Entries) != 1 {
		t.Fatalf("tracker dead after Reset: %+v", snap)
	}
}

func TestTopKCapacityClamp(t *testing.T) {
	tk := NewTopK(0, TopKSum)
	tk.Add(1, 1)
	tk.Add(2, 1)
	snap := tk.Snapshot()
	if snap.K != 1 || len(snap.Entries) != 1 || snap.Total != 2 {
		t.Fatalf("k<1 must clamp to one entry: %+v", snap)
	}
}

// TestTopKAddAllocs is the acceptance check that per-rejection
// attribution is allocation-free on the hot path (and free when nil).
func TestTopKAddAllocs(t *testing.T) {
	tk := NewTopK(32, TopKSum)
	key := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tk.Add(key%64, 1) // steady churn through twice the capacity
		key++
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %v times per op, want 0", allocs)
	}
	var nilTK *TopK
	if a := testing.AllocsPerRun(1000, func() { nilTK.Add(1, 1) }); a != 0 {
		t.Fatalf("nil Add allocated %v times per op", a)
	}
	mx := NewTopK(32, TopKMax)
	v := 0.0
	if a := testing.AllocsPerRun(1000, func() { mx.Observe(uint64(v)%64, v); v++ }); a != 0 {
		t.Fatalf("Observe allocated %v times per op", a)
	}
}

func TestRegistrySnapshotAndPromIncludeTopK(t *testing.T) {
	r := New()
	tk := r.TopK("netstate.hotspots.link_rejections", 4, TopKSum)
	tk.SetLabeler(func(key uint64) string { return "link" })
	tk.Add(12, 3)

	snap := r.Snapshot()
	got, ok := snap.TopK["netstate.hotspots.link_rejections"]
	if !ok || got.Total != 3 || got.Entries[0].Label != "link" {
		t.Fatalf("registry snapshot topk = %+v", snap.TopK)
	}
	if New().Snapshot().TopK != nil {
		t.Fatal("registry without trackers must snapshot nil topk")
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE netstate_hotspots_link_rejections gauge",
		`netstate_hotspots_link_rejections{entity="link"} 3`,
		"netstate_hotspots_link_rejections_total 3",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output missing %q in:\n%s", want, prom)
		}
	}
}

func TestReportCarriesHotspots(t *testing.T) {
	r := New()
	r.TopK("sim.hotspots.src_rejected", 4, TopKSum).Add(42, 2)
	rep := NewReport("test")
	rep.Finish(r)
	if rep.Version != 4 {
		t.Fatalf("report version = %d, want 4", rep.Version)
	}
	tk, ok := rep.Hotspots["sim.hotspots.src_rejected"]
	if !ok || tk.Total != 2 {
		t.Fatalf("report hotspots = %+v", rep.Hotspots)
	}
	if rep.Observability.TopK != nil {
		t.Fatal("trackers must move to the hotspots section, not stay in observability")
	}

	// Round-trips through the writer/reader pair.
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hotspots["sim.hotspots.src_rejected"].Total != 2 {
		t.Fatalf("round-tripped hotspots = %+v", back.Hotspots)
	}
}

func TestDebugMuxHotspotsEndpoint(t *testing.T) {
	r := New()
	r.TopK("hot", 4, TopKSum).Add(1, 5)
	rec := get(t, NewDebugMux(r), "/hotspots.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var tks map[string]TopKSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &tks); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if tks["hot"].Total != 5 {
		t.Fatalf("hotspots body = %+v", tks)
	}
	// A registry without trackers serves an empty object, not null.
	rec = get(t, NewDebugMux(New()), "/hotspots.json")
	if got := strings.TrimSpace(rec.Body.String()); got != "{}" {
		t.Fatalf("empty registry body = %q, want {}", got)
	}
}
