// Package obs is the runtime observability layer of the simulator: a
// dependency-free registry of atomic counters, gauges, fixed-bucket
// latency histograms and span-style phase timers, threaded through the
// hot layers (sim, core, pricing, graph, netstate, energy).
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. Every instrument handle is nil-safe:
//     a nil *Counter, *Gauge or *Histogram turns its methods into a
//     single predictable branch, and a nil *Registry hands out nil
//     handles. Hot paths therefore instrument unconditionally and pay
//     nothing (no allocations, no atomics, no time.Now calls) until a
//     registry is attached.
//  2. Race-safe. Instruments are plain atomics; the registry's name maps
//     are mutex-guarded but only touched at handle-creation time, never
//     on the hot path. `go test -race` must stay clean with concurrent
//     writers and snapshot readers.
//  3. Machine-readable. Registry.WriteJSON emits an expvar-style JSON
//     snapshot (served live at /metrics.json by the debug server), and
//     Report packages a whole run — config echo, phase wall-times,
//     counters, histograms, result metrics — as a diffable artifact.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level. The zero value is ready
// to use; a nil *Gauge is a valid no-op instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (zero for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry names and owns a run's instruments. The zero value is not
// usable; construct with New. A nil *Registry is a valid disabled
// registry: every lookup returns a nil (no-op) instrument and every
// phase span is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   map[string]*Phase
	topks    map[string]*TopK
	sampler  *Sampler
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		phases:   make(map[string]*Phase),
		topks:    make(map[string]*TopK),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// buckets and ignore the argument). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, boundaries []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(boundaries)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument in place: counters, gauges, histogram
// buckets, phase records, and time series are cleared, but every handle
// already handed out stays valid and attached. Callers running several
// experiments on one registry (e.g. spacebench's per-algorithm runs)
// reset between runs so one run's instruments do not bleed into the
// next run's snapshot. Concurrent writers are not corrupted (all stores
// are atomic or lock-guarded), but samples landing mid-reset may survive
// it; reset between runs, not during one. No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, p := range r.phases {
		p.count.Store(0)
		p.totalNs.Store(0)
	}
	for _, t := range r.topks {
		t.reset()
	}
	r.sampler.reset()
}

// sortedKeys returns map keys in lexical order for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
