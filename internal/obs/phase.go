package obs

import (
	"sync/atomic"
	"time"
)

// Phase accumulates wall-time over the spans of one named run phase
// (e.g. "workload", "admission", "sweep"). A nil *Phase is a valid
// no-op instrument.
type Phase struct {
	count   atomic.Int64
	totalNs atomic.Int64
}

// add records one finished span.
func (p *Phase) add(d time.Duration) {
	if p == nil {
		return
	}
	p.count.Add(1)
	p.totalNs.Add(int64(d))
}

// Span is one in-flight phase timing. The zero Span (from a nil
// registry) is a no-op and its End costs a single branch.
type Span struct {
	p     *Phase
	start time.Time
}

// End closes the span, adding its elapsed wall-time to the phase.
func (s Span) End() {
	if s.p == nil {
		return
	}
	s.p.add(time.Since(s.start))
}

// Phase returns the named phase accumulator, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Phase(name string) *Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.phases[name]
	if !ok {
		p = &Phase{}
		r.phases[name] = p
	}
	return p
}

// StartPhase opens a span on the named phase. On a nil registry it
// returns the zero Span without reading the clock.
func (r *Registry) StartPhase(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{p: r.Phase(name), start: time.Now()}
}

// PhaseSnapshot is the JSON form of one phase's accumulated timings.
type PhaseSnapshot struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}
