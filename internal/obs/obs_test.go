package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("sim.requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sim.requests") != c {
		t.Fatal("same name should return the same counter")
	}
	g := r.Gauge("sim.load")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	r.StartPhase("p").End()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Phases) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestDisabledPathAllocsAndCost is the acceptance check that the
// disabled (nil-registry) fast path adds no allocations to hot paths.
func TestDisabledPathAllocsAndCost(t *testing.T) {
	var r *Registry
	c := r.Counter("hot")
	h := r.Histogram("hist", nil)
	g := r.Gauge("gauge")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(2.5)
		r.StartPhase("phase").End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %v times per op, want 0", allocs)
	}
}

func TestEnabledCounterAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	h := r.Histogram("hist", []float64{1, 2, 4})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("enabled counter/histogram allocated %v times per op, want 0", allocs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 2, 4, 8, 16})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v) / 10) // 0.1 .. 10.0
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Sum-505.0) > 1e-9 {
		t.Fatalf("sum = %v, want 505", s.Sum)
	}
	if s.Min != 0.1 || s.Max != 10.0 {
		t.Fatalf("min/max = %v/%v, want 0.1/10", s.Min, s.Max)
	}
	// True quantiles: p50 = ~5.0, p95 = ~9.5, p99 = ~9.9. Bucketed
	// estimates interpolate, so allow one bucket of slack.
	if s.P50 < 4 || s.P50 > 6 {
		t.Fatalf("p50 = %v, want ~5", s.P50)
	}
	if s.P95 < 8 || s.P95 > 10 {
		t.Fatalf("p95 = %v, want ~9.5", s.P95)
	}
	if s.P99 < 8 || s.P99 > 10 {
		t.Fatalf("p99 = %v, want ~9.9", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	r := New()
	h := r.Histogram("one", nil)
	h.Observe(0.125)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0.125 || s.Max != 0.125 {
		t.Fatalf("snapshot = %+v", s)
	}
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q != 0.125 {
			t.Fatalf("single-value quantile = %v, want 0.125", q)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := New()
	h := r.Histogram("over", []float64{1})
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if s.P99 < 100 || s.P99 > 200 {
		t.Fatalf("overflow p99 = %v, want within [100, 200]", s.P99)
	}
}

func TestPhases(t *testing.T) {
	r := New()
	sp := r.StartPhase("work")
	time.Sleep(time.Millisecond)
	sp.End()
	r.StartPhase("work").End()
	snap := r.Snapshot()
	if len(snap.Phases) != 1 {
		t.Fatalf("phases = %+v, want one", snap.Phases)
	}
	p := snap.Phases[0]
	if p.Name != "work" || p.Count != 2 {
		t.Fatalf("phase = %+v", p)
	}
	if p.TotalSeconds <= 0 {
		t.Fatalf("phase total = %v, want > 0", p.TotalSeconds)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.StartPhase("p").End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.b"] != 7 || snap.Gauges["g"] != 2.5 {
		t.Fatalf("snapshot round-trip = %+v", snap)
	}
	if snap.Histograms["h"].Count != 1 || len(snap.Phases) != 1 {
		t.Fatalf("snapshot round-trip = %+v", snap)
	}
}

// TestConcurrentUse exercises every instrument from many goroutines
// with snapshots racing against updates; run under -race.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", nil)
			g := r.Gauge("gauge")
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-4)
				g.Set(float64(j))
				sp := r.StartPhase("loop")
				sp.End()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Snapshot()
				r.WriteJSON(io.Discard) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("hist", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestDebugServer(t *testing.T) {
	r := New()
	r.Counter("live").Add(42)
	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap RegistrySnapshot
	if err := json.Unmarshal(get("/metrics.json"), &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if snap.Counters["live"] != 42 {
		t.Fatalf("metrics.json counters = %+v", snap.Counters)
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("pprof")) {
		t.Fatalf("pprof index unexpected: %.100s", body)
	}
}
