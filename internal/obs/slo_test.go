package obs

import (
	"math"
	"testing"
)

func TestSLOClassBurnRate(t *testing.T) {
	reg := New()
	c := NewSLOClass(reg, "latency", 0.025, 0.99)

	// No events: no budget spent.
	s := c.Snapshot()
	if s.BurnRate != 0 || s.GoodFraction != 1 {
		t.Fatalf("empty class snapshot = %+v", s)
	}

	for i := 0; i < 99; i++ {
		c.ObserveLatency(0.001)
	}
	c.ObserveLatency(0.100)

	s = c.Snapshot()
	if s.Good != 99 || s.Bad != 1 {
		t.Fatalf("good/bad = %d/%d", s.Good, s.Bad)
	}
	// 1% bad against a 1% allowance: burning exactly at budget.
	if math.Abs(s.BurnRate-1.0) > 1e-9 {
		t.Errorf("burn rate = %v, want 1.0", s.BurnRate)
	}
	if math.Abs(s.GoodFraction-0.99) > 1e-9 {
		t.Errorf("good fraction = %v", s.GoodFraction)
	}

	// The gauges mirror the counts.
	snap := reg.Snapshot()
	if snap.Gauges["slo.latency.good"] != 99 || snap.Gauges["slo.latency.bad"] != 1 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if math.Abs(snap.Gauges["slo.latency.burn_rate"]-1.0) > 1e-9 {
		t.Errorf("burn gauge = %v", snap.Gauges["slo.latency.burn_rate"])
	}
}

func TestSLOClassClampsTarget(t *testing.T) {
	c := NewSLOClass(nil, "avail", 0, 1.0) // target 1 would divide by zero
	c.Observe(false)
	s := c.Snapshot()
	if math.IsInf(s.BurnRate, 0) || math.IsNaN(s.BurnRate) {
		t.Fatalf("burn rate not finite: %v", s.BurnRate)
	}
	if s.Bad != 1 {
		t.Fatalf("bad = %d", s.Bad)
	}
}

func TestSLOClassNil(t *testing.T) {
	var c *SLOClass
	c.Observe(true) // must not panic
	c.ObserveLatency(1)
	if s := c.Snapshot(); s != (SLOSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
	if c.Name() != "" {
		t.Error("nil name")
	}
}
