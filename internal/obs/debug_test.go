package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// newTestMux serves a small populated registry through the debug mux.
func newTestMux() *http.ServeMux {
	r := New()
	r.Counter("live").Add(42)
	r.Sampler(8).Series("slot.accepted").Record(0, 3)
	return NewDebugMux(r)
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestDebugMuxMetricsJSONContentType(t *testing.T) {
	rec := get(t, newTestMux(), "/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if snap.Counters["live"] != 42 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.TimeSeries["slot.accepted"].Last() != 3 {
		t.Fatalf("timeseries = %+v", snap.TimeSeries)
	}
}

func TestDebugMuxPrometheusEndpoint(t *testing.T) {
	rec := get(t, newTestMux(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q, want %q", ct, PromContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE live counter", "live 42", "# TYPE slot_accepted gauge"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestDebugMuxTimeseriesEndpoint(t *testing.T) {
	rec := get(t, newTestMux(), "/timeseries.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var ts map[string]SeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	s, ok := ts["slot.accepted"]
	if !ok || s.Total != 1 || s.Last() != 3 {
		t.Fatalf("timeseries = %+v", ts)
	}

	// A registry with no series serves an empty object, not null.
	rec = get(t, NewDebugMux(New()), "/timeseries.json")
	if got := strings.TrimSpace(rec.Body.String()); got != "{}" {
		t.Fatalf("empty registry body = %q, want {}", got)
	}
}

// TestDebugMuxTimeseriesExactlyFull serves a ring at exactly its
// capacity through the endpoint: all samples present, zero dropped.
func TestDebugMuxTimeseriesExactlyFull(t *testing.T) {
	r := New()
	s := r.Sampler(3).Series("slot.accepted")
	for i := 0; i < 3; i++ {
		s.Record(int64(i), float64(i))
	}
	rec := get(t, NewDebugMux(r), "/timeseries.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var ts map[string]SeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	snap := ts["slot.accepted"]
	if snap.Capacity != 3 || snap.Total != 3 || len(snap.Slots) != 3 {
		t.Fatalf("exactly-full endpoint snapshot = %+v", snap)
	}
	if snap.Slots[0] != 0 || snap.Slots[2] != 2 || snap.Last() != 2 {
		t.Fatalf("sample order = %+v", snap)
	}
}

func TestDebugMuxIndexAndNotFound(t *testing.T) {
	rec := get(t, newTestMux(), "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("index status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("index content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	for _, want := range []string{"/metrics", "/metrics.json", "/timeseries.json", "/hotspots.json", "/debug/pprof/"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
	if rec := get(t, newTestMux(), "/no/such/path"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", rec.Code)
	}
}

// TestDebugMuxContentLength pins the buffered-response contract: every
// debug endpoint declares an exact Content-Length matching its body, so
// a render failure can never truncate a response mid-stream.
func TestDebugMuxContentLength(t *testing.T) {
	mux := newTestMux()
	for _, path := range []string{"/", "/metrics", "/metrics.json", "/timeseries.json", "/hotspots.json"} {
		rec := get(t, mux, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
		cl := rec.Header().Get("Content-Length")
		if want := strconv.Itoa(rec.Body.Len()); cl != want {
			t.Errorf("%s Content-Length = %q, body is %s bytes", path, cl, want)
		}
	}
}

// TestServeBufferedRenderFailure verifies a failing renderer produces a
// clean 500 with the error as the whole body — no half-written 200.
func TestServeBufferedRenderFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	serveBuffered(rec, "application/json", func(w io.Writer) error {
		io.WriteString(w, `{"partial":`) // must never reach the client
		return errors.New("render exploded")
	})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if strings.Contains(body, "partial") {
		t.Fatalf("partial render leaked into the response: %q", body)
	}
	if !strings.Contains(body, "render exploded") {
		t.Fatalf("error message missing from body: %q", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("error content type = %q", ct)
	}
}

// TestDebugMuxNoRegistry pins the detached-registry path: 503, not a
// panic, when no registry is attached yet.
func TestDebugMuxNoRegistry(t *testing.T) {
	mux := NewDebugMux(nil)
	for _, path := range []string{"/metrics", "/metrics.json", "/timeseries.json", "/hotspots.json"} {
		if rec := get(t, mux, path); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s with nil registry: status = %d, want 503", path, rec.Code)
		}
	}
}
