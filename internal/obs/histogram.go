package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution tracker. Observations are
// routed into the bucket whose upper bound first exceeds the value (the
// last bucket is an implicit +Inf overflow), and sum/min/max are kept
// exactly, so quantile estimates interpolate within one bucket. All
// updates are lock-free atomics; a nil *Histogram is a valid no-op
// instrument.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits; valid only when count > 0
	maxBits atomic.Uint64
}

// newHistogram builds a histogram over the given ascending upper
// bounds. A nil/empty slice falls back to TimeBuckets.
func newHistogram(boundaries []float64) *Histogram {
	if len(boundaries) == 0 {
		boundaries = TimeBuckets()
	}
	bounds := make([]float64, len(boundaries))
	copy(bounds, boundaries)
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// TimeBuckets returns the default latency boundaries in seconds:
// 1µs … ~100s in quarter-decade steps, suitable for everything from a
// single price lookup to a full-scale admission slot.
func TimeBuckets() []float64 {
	out := make([]float64, 0, 33)
	for e := -6.0; e <= 2.0; e += 0.25 {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// reset zeroes every bucket and the exact aggregates, returning the
// histogram to its freshly constructed state.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (zero for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is the JSON form of a histogram's state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot captures the histogram with estimated p50/p95/p99. The
// estimate interpolates linearly inside the bucket containing the
// quantile and clamps to the exact observed min/max, so single-value
// histograms report that value for every quantile.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	// Read bucket counts once; concurrent writers may advance the
	// histogram mid-snapshot, which at worst skews quantiles within the
	// snapshot by the in-flight observations.
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if total == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.Mean = s.Sum / float64(total)
	s.P50 = h.quantile(counts, total, 0.50, s.Min, s.Max)
	s.P95 = h.quantile(counts, total, 0.95, s.Min, s.Max)
	s.P99 = h.quantile(counts, total, 0.99, s.Min, s.Max)
	s.P999 = h.quantile(counts, total, 0.999, s.Min, s.Max)
	return s
}

// Quantile estimates one quantile of the live histogram. It is guarded
// against the degenerate cases: a nil or empty (zero-count) histogram
// returns 0 rather than NaN or a garbage bound, and q is clamped into
// [0, 1]. The SLO tracker and stats endpoints call this directly for
// tail quantiles (e.g. 0.999) without paying for a full snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	return h.quantile(counts, total, q, min, max)
}

// P999 is the guarded 99.9th-percentile accessor used by the SLO
// tracker.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// quantile estimates the q-quantile from bucket counts. rank counts
// from 1; the value interpolates within the bucket's [lower, upper)
// range by the rank's relative position.
func (h *Histogram) quantile(counts []int64, total int64, q, min, max float64) float64 {
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lower := min
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := max
			if i < len(h.bounds) && h.bounds[i] < upper {
				upper = h.bounds[i]
			}
			if lower < min {
				lower = min
			}
			if upper < lower {
				upper = lower
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return max
}
