package obs

import (
	"encoding/json"
	"io"
	"time"
)

// RegistrySnapshot is the expvar-style point-in-time view of a registry:
// every counter, gauge, histogram and phase by name. It is the payload
// of both WriteJSON (the live /metrics.json endpoint) and the run
// report's observability section.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Phases     []PhaseSnapshot              `json:"phases,omitempty"`
	TimeSeries map[string]SeriesSnapshot    `json:"timeseries,omitempty"`
	TopK       map[string]TopKSnapshot      `json:"topk,omitempty"`
}

// Snapshot captures the registry. Safe to call concurrently with
// instrument updates; a nil registry yields the zero snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	if r == nil {
		return RegistrySnapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	phases := make(map[string]*Phase, len(r.phases))
	for k, v := range r.phases {
		phases[k] = v
	}
	topks := make(map[string]*TopK, len(r.topks))
	for k, v := range r.topks {
		topks[k] = v
	}
	sampler := r.sampler
	r.mu.Unlock()

	snap := RegistrySnapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	for _, name := range sortedKeys(phases) {
		p := phases[name]
		snap.Phases = append(snap.Phases, PhaseSnapshot{
			Name:         name,
			Count:        p.count.Load(),
			TotalSeconds: time.Duration(p.totalNs.Load()).Seconds(),
		})
	}
	if len(topks) > 0 {
		snap.TopK = make(map[string]TopKSnapshot, len(topks))
		for k, t := range topks {
			snap.TopK[k] = t.Snapshot()
		}
	}
	snap.TimeSeries = sampler.Snapshot()
	return snap
}

// WriteJSON writes the current snapshot as indented JSON — the
// expvar-style dump served at /metrics.json. A nil registry writes an
// empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
