package obs

import (
	"sync"
	"testing"
)

func TestSeriesRecordAndSnapshot(t *testing.T) {
	r := New()
	sp := r.Sampler(4)
	s := sp.Series("slot.accepted")
	if sp.Series("slot.accepted") != s {
		t.Fatal("same name should return the same series")
	}
	for i := 0; i < 3; i++ {
		s.Record(int64(i), float64(10*i))
	}
	snap := s.Snapshot()
	if snap.Capacity != 4 || snap.Total != 3 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Slots) != 3 || snap.Slots[0] != 0 || snap.Slots[2] != 2 {
		t.Fatalf("slots = %v", snap.Slots)
	}
	if snap.Values[1] != 10 || snap.Last() != 20 {
		t.Fatalf("values = %v, last %v", snap.Values, snap.Last())
	}
}

func TestSeriesRingOverwrite(t *testing.T) {
	s := newSeries(3)
	for i := 0; i < 7; i++ {
		s.Record(int64(i), float64(i))
	}
	snap := s.Snapshot()
	if snap.Total != 7 || len(snap.Slots) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Retains the newest three samples, oldest first.
	want := []int64{4, 5, 6}
	for i, w := range want {
		if snap.Slots[i] != w || snap.Values[i] != float64(w) {
			t.Fatalf("retained = %v/%v, want slots %v", snap.Slots, snap.Values, want)
		}
	}
	if s.Len() != 3 || s.Total() != 7 {
		t.Fatalf("len/total = %d/%d", s.Len(), s.Total())
	}
}

// TestSeriesExactlyFull pins the boundary the ring is most likely to
// get wrong: exactly capacity samples recorded, so head has wrapped to
// zero but nothing has been dropped yet. Every sample must come back,
// oldest first, and the very next Record must overwrite only the oldest.
func TestSeriesExactlyFull(t *testing.T) {
	s := newSeries(4)
	for i := 0; i < 4; i++ {
		s.Record(int64(i), float64(100+i))
	}
	snap := s.Snapshot()
	if snap.Total != 4 || len(snap.Slots) != 4 {
		t.Fatalf("exactly-full snapshot = %+v", snap)
	}
	for i := 0; i < 4; i++ {
		if snap.Slots[i] != int64(i) || snap.Values[i] != float64(100+i) {
			t.Fatalf("exactly-full retained = %v/%v, want 0..3 in order", snap.Slots, snap.Values)
		}
	}
	if snap.Last() != 103 {
		t.Fatalf("last = %v, want 103", snap.Last())
	}
	// One more sample: slot 0 drops, 1..4 remain, still oldest first.
	s.Record(4, 104)
	snap = s.Snapshot()
	if snap.Total != 5 || len(snap.Slots) != 4 || snap.Slots[0] != 1 || snap.Slots[3] != 4 {
		t.Fatalf("post-wrap snapshot = %+v", snap)
	}
}

func TestNilSamplerAndSeries(t *testing.T) {
	var r *Registry
	sp := r.Sampler(16)
	if sp != nil {
		t.Fatal("nil registry must hand out a nil sampler")
	}
	s := sp.Series("x")
	s.Record(1, 2)
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("nil series must stay empty")
	}
	if got := s.Snapshot(); got.Capacity != 0 || got.Total != 0 {
		t.Fatalf("nil series snapshot = %+v", got)
	}
	if sp.Snapshot() != nil {
		t.Fatal("nil sampler snapshot must be nil")
	}
	if (SeriesSnapshot{}).Last() != 0 {
		t.Fatal("empty snapshot Last must be 0")
	}
}

func TestSamplerCapacityFixedAtCreation(t *testing.T) {
	r := New()
	sp := r.Sampler(2)
	if r.Sampler(999) != sp {
		t.Fatal("second Sampler call must reuse the first sampler")
	}
	if got := sp.Series("a").Snapshot().Capacity; got != 2 {
		t.Fatalf("capacity = %d, want 2", got)
	}
	if got := New().Sampler(0).Series("b").Snapshot().Capacity; got != DefaultSeriesCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultSeriesCapacity)
	}
}

func TestRegistrySnapshotIncludesTimeSeries(t *testing.T) {
	r := New()
	r.Sampler(8).Series("slot.revenue_cum").Record(0, 1.5)
	snap := r.Snapshot()
	ts, ok := snap.TimeSeries["slot.revenue_cum"]
	if !ok || ts.Last() != 1.5 {
		t.Fatalf("snapshot timeseries = %+v", snap.TimeSeries)
	}
	if New().Snapshot().TimeSeries != nil {
		t.Fatal("registry without series must snapshot nil timeseries")
	}
}

// TestSeriesRecordAllocs is the acceptance check that per-slot sampling
// is allocation-free on the hot path.
func TestSeriesRecordAllocs(t *testing.T) {
	r := New()
	sp := r.Sampler(64)
	a, b := sp.Series("slot.accepted"), sp.Series("slot.wall_seconds")
	g := r.Gauge("netstate.depleted_sats")
	slot := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		a.Record(slot, 1)
		b.Record(slot, 0.25)
		g.Set(3)
		slot++
	})
	if allocs != 0 {
		t.Fatalf("per-slot sampling allocated %v times per slot, want 0", allocs)
	}
	// The disabled (nil) path must also stay allocation-free.
	var nilSeries *Series
	allocs = testing.AllocsPerRun(1000, func() { nilSeries.Record(1, 2) })
	if allocs != 0 {
		t.Fatalf("nil series allocated %v times per record, want 0", allocs)
	}
}

// BenchmarkSeriesRecord proves the per-slot hot path is allocation-free
// at benchmark rigor (run with -benchmem: 0 allocs/op).
func BenchmarkSeriesRecord(b *testing.B) {
	r := New()
	s := r.Sampler(4096).Series("slot.accepted")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(int64(i), float64(i))
	}
	if testing.AllocsPerRun(100, func() { s.Record(1, 1) }) != 0 {
		b.Fatal("Record allocated")
	}
}

// TestSeriesConcurrent exercises Record against Snapshot under -race.
func TestSeriesConcurrent(t *testing.T) {
	r := New()
	sp := r.Sampler(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := sp.Series("shared")
			for i := 0; i < 500; i++ {
				s.Record(int64(i), float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = sp.Snapshot()
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := sp.Series("shared").Total(); got != 4*500 {
		t.Fatalf("total = %d, want %d", got, 4*500)
	}
}

func TestRegistryReset(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(9)
	g := r.Gauge("g")
	g.Set(4.5)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(10)
	r.StartPhase("p").End()
	s := r.Sampler(4).Series("ts")
	s.Record(0, 1)

	r.Reset()

	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("counter/gauge after reset = %d/%v", c.Value(), g.Value())
	}
	hs := h.Snapshot()
	if hs.Count != 0 || hs.Sum != 0 {
		t.Fatalf("histogram after reset = %+v", hs)
	}
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatalf("series after reset: len %d total %d", s.Len(), s.Total())
	}
	snap := r.Snapshot()
	if len(snap.Phases) != 1 || snap.Phases[0].Count != 0 || snap.Phases[0].TotalSeconds != 0 {
		t.Fatalf("phases after reset = %+v", snap.Phases)
	}

	// Handles stay live: instruments attached before the reset keep
	// recording into the same registry afterwards.
	c.Inc()
	h.Observe(1.5)
	s.Record(7, 7)
	if c.Value() != 1 || h.Count() != 1 || s.Total() != 1 {
		t.Fatalf("instruments dead after reset: %d/%d/%d", c.Value(), h.Count(), s.Total())
	}
	if got := s.Snapshot().Slots[0]; got != 7 {
		t.Fatalf("series restarted at slot %d, want 7", got)
	}

	// Reset on a nil registry is a no-op.
	var nilReg *Registry
	nilReg.Reset()
}
