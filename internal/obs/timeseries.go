package obs

import "sync"

// DefaultSeriesCapacity bounds a series when the caller does not know
// the horizon up front.
const DefaultSeriesCapacity = 4096

// Series is one named metric's fixed-capacity ring buffer of
// (slot, value) samples — the building block of the per-slot telemetry
// behind /timeseries.json and the run report's timeseries section.
// Capacity is fixed at creation, so recording never allocates: once the
// ring is full the oldest sample is overwritten and Dropped grows. A nil
// *Series is a valid no-op instrument.
type Series struct {
	mu    sync.Mutex
	slots []int64
	vals  []float64
	head  int   // next write position
	n     int   // retained samples, <= cap
	total int64 // samples ever recorded
}

// newSeries builds a series with the given capacity (DefaultSeriesCapacity
// when non-positive).
func newSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Series{
		slots: make([]int64, capacity),
		vals:  make([]float64, capacity),
	}
}

// Record appends one sample. Allocation-free; no-op on a nil series.
func (s *Series) Record(slot int64, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.slots[s.head] = slot
	s.vals[s.head] = v
	s.head++
	if s.head == len(s.slots) {
		s.head = 0
	}
	if s.n < len(s.slots) {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// Len returns the number of retained samples (zero for a nil series).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Total returns the number of samples ever recorded, including those the
// ring has since overwritten.
func (s *Series) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// reset discards every sample, keeping the ring's capacity.
func (s *Series) reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.head, s.n, s.total = 0, 0, 0
	s.mu.Unlock()
}

// SeriesSnapshot is the JSON form of one series: the retained samples in
// recording order (oldest first).
type SeriesSnapshot struct {
	Capacity int `json:"capacity"`
	// Total counts samples ever recorded; Total - len(Slots) were dropped
	// by the ring.
	Total  int64     `json:"total"`
	Slots  []int64   `json:"slots,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// Last returns the most recent sample value, or 0 for an empty series.
func (s SeriesSnapshot) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Snapshot copies the retained samples oldest-first. Safe to call
// concurrently with Record; a nil series yields the zero snapshot.
func (s *Series) Snapshot() SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SeriesSnapshot{Capacity: len(s.slots), Total: s.total}
	if s.n == 0 {
		return snap
	}
	snap.Slots = make([]int64, s.n)
	snap.Values = make([]float64, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.slots)
	}
	for i := 0; i < s.n; i++ {
		j := start + i
		if j >= len(s.slots) {
			j -= len(s.slots)
		}
		snap.Slots[i] = s.slots[j]
		snap.Values[i] = s.vals[j]
	}
	return snap
}

// Sampler owns a registry's time series: named rings sharing one
// capacity, fed once per slot by sim.Run. A nil *Sampler hands out nil
// (no-op) series, so callers can wire sampling unconditionally.
type Sampler struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*Series
}

// Series returns the named series, creating it with the sampler's
// capacity on first use. Returns nil on a nil sampler.
func (sp *Sampler) Series(name string) *Series {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	s, ok := sp.series[name]
	if !ok {
		s = newSeries(sp.capacity)
		sp.series[name] = s
	}
	return s
}

// Snapshot captures every series by name. Nil samplers yield nil.
func (sp *Sampler) Snapshot() map[string]SeriesSnapshot {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	series := make(map[string]*Series, len(sp.series))
	for k, v := range sp.series {
		series[k] = v
	}
	sp.mu.Unlock()
	if len(series) == 0 {
		return nil
	}
	out := make(map[string]SeriesSnapshot, len(series))
	for k, s := range series {
		out[k] = s.Snapshot()
	}
	return out
}

// reset clears every series in place (handles stay valid).
func (sp *Sampler) reset() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, s := range sp.series {
		s.reset()
	}
}

// Sampler returns the registry's time-series sampler, creating it with
// the given per-series capacity on first use (later calls reuse the
// existing sampler and ignore the argument; non-positive capacities fall
// back to DefaultSeriesCapacity). Returns nil on a nil registry.
func (r *Registry) Sampler(capacity int) *Sampler {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sampler == nil {
		if capacity <= 0 {
			capacity = DefaultSeriesCapacity
		}
		r.sampler = &Sampler{capacity: capacity, series: make(map[string]*Series)}
	}
	return r.sampler
}
