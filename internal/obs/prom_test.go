package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sim.requests.total": "sim_requests_total",
		"slot.wall_seconds":  "slot_wall_seconds",
		"already_legal:name": "already_legal:name",
		"9starts.with.digit": "_9starts_with_digit",
		"space here-dash":    "space_here_dash",
		"café":               "caf_",
		"":                   "_",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePromGolden locks the text exposition format: family ordering,
// HELP/TYPE lines, name sanitization, label quoting and float rendering.
// Regenerate with `go test ./internal/obs -run Golden -update`.
func TestWritePromGolden(t *testing.T) {
	snap := RegistrySnapshot{
		Counters: map[string]int64{
			"sim.requests.total":       42,
			"graph.dijkstra.heap_pops": 1234,
		},
		Gauges: map[string]float64{
			"netstate.depleted_sats": 3,
			"energy.total_deficit_j": 1.25e6,
		},
		Histograms: map[string]HistogramSnapshot{
			"sim.slot_seconds": {Count: 10, Sum: 0.5, Min: 0.01, Max: 0.2, Mean: 0.05, P50: 0.04, P95: 0.18, P99: 0.2},
		},
		Phases: []PhaseSnapshot{
			{Name: "admission", Count: 1, TotalSeconds: 0.125},
			{Name: "metrics_sweep", Count: 2, TotalSeconds: 0.0625},
		},
		TimeSeries: map[string]SeriesSnapshot{
			"slot.congested_links": {Capacity: 4, Total: 2, Slots: []int64{0, 1}, Values: []float64{0, 5}},
		},
	}
	var buf bytes.Buffer
	if err := writeProm(&buf, snap); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition drifted from golden:\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePromLiveRegistry(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.StartPhase("p").End()
	r.Sampler(4).Series("slot.accepted").Record(3, 9)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_b counter\na_b 7\n",
		"# TYPE g gauge\ng 2.5\n",
		"h_count 1\n",
		`phase_spans_total{phase="p"} 1`,
		"# TYPE slot_accepted gauge\nslot_accepted 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A nil registry writes nothing.
	buf.Reset()
	var nilReg *Registry
	if err := nilReg.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err %v, %d bytes", err, buf.Len())
	}
}
