package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// DebugServer is the opt-in live-inspection endpoint behind the cmds'
// -debug-addr flag: net/http/pprof for CPU/heap/goroutine profiling of
// long full-scale runs, plus /metrics.json serving the registry
// snapshot. It binds eagerly (so a bad address fails fast) and serves
// in the background until Close. SetRegistry repoints the metrics
// endpoints at a different registry mid-flight — parallel experiment
// drivers use it to expose the most recently completed run.
type DebugServer struct {
	srv    *http.Server
	addr   string
	holder *regHolder
}

// regHolder is the swappable registry behind a live mux.
type regHolder struct {
	p atomic.Pointer[Registry]
}

func (h *regHolder) get() *Registry { return h.p.Load() }

// NewDebugMux builds the handler tree: /debug/pprof/*, /metrics.json
// (expvar-style snapshot), /metrics (Prometheus text exposition) and
// /timeseries.json (per-slot telemetry). Exposed separately so embedding
// applications can mount it on their own server.
func NewDebugMux(reg *Registry) *http.ServeMux {
	h := &regHolder{}
	h.p.Store(reg)
	return newDebugMux(h)
}

func newDebugMux(holder *regHolder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	withReg := func(serve func(w http.ResponseWriter, reg *Registry)) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			reg := holder.get()
			if reg == nil {
				http.Error(w, "no registry attached yet", http.StatusServiceUnavailable)
				return
			}
			serve(w, reg)
		}
	}
	mux.HandleFunc("/metrics.json", withReg(func(w http.ResponseWriter, reg *Registry) {
		serveBuffered(w, "application/json", reg.WriteJSON)
	}))
	mux.HandleFunc("/metrics", withReg(func(w http.ResponseWriter, reg *Registry) {
		serveBuffered(w, PromContentType, reg.WriteProm)
	}))
	mux.HandleFunc("/timeseries.json", withReg(func(w http.ResponseWriter, reg *Registry) {
		serveBuffered(w, "application/json", func(out io.Writer) error {
			ts := reg.Snapshot().TimeSeries
			if ts == nil {
				ts = map[string]SeriesSnapshot{}
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(ts)
		})
	}))
	mux.HandleFunc("/hotspots.json", withReg(func(w http.ResponseWriter, reg *Registry) {
		serveBuffered(w, "application/json", func(out io.Writer) error {
			tk := reg.Snapshot().TopK
			if tk == nil {
				tk = map[string]TopKSnapshot{}
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(tk)
		})
	}))
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		serveBuffered(w, "text/plain; charset=utf-8", func(out io.Writer) error {
			_, err := io.WriteString(out, debugIndex)
			return err
		})
	})
	return mux
}

// debugIndex is the plain-text landing page of the debug mux.
const debugIndex = `spacebooking debug server
  /metrics          Prometheus text exposition
  /metrics.json     registry snapshot
  /timeseries.json  per-slot telemetry
  /hotspots.json    top-K entity trackers
  /debug/pprof/     live profiles
`

// serveBuffered renders the whole body before touching the response, so
// a render failure becomes a clean 500 instead of an error message
// appended to a half-written 200 body (headers are committed by the
// first Write and cannot be revoked).
func serveBuffered(w http.ResponseWriter, contentType string, render func(io.Writer) error) {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client disconnected mid-response; there is no channel left
		// to report the failure on.
		return
	}
}

// StartDebugServer listens on addr (e.g. "localhost:6060") and serves
// the debug mux in the background. The returned server reports the
// bound address (useful with ":0") and is shut down with Close.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	holder := &regHolder{}
	holder.p.Store(reg)
	srv := &http.Server{
		Handler:           newDebugMux(holder),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(lis) //nolint:errcheck // always returns ErrServerClosed after Close
	return &DebugServer{srv: srv, addr: lis.Addr().String(), holder: holder}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.addr }

// SetRegistry atomically repoints the metrics endpoints at reg.
// In-flight requests finish against the registry they started with.
func (d *DebugServer) SetRegistry(reg *Registry) { d.holder.p.Store(reg) }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
