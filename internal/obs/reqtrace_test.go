package obs

import (
	"testing"
	"time"
)

func TestTraceRecSpans(t *testing.T) {
	epoch := time.Unix(100, 0)
	var rec TraceRec
	rec.Reset(epoch)

	i := rec.Begin("parse", epoch)
	rec.End(i, epoch.Add(2*time.Microsecond))
	j := rec.Begin("queue", epoch.Add(2*time.Microsecond))
	rec.End(j, epoch.Add(10*time.Microsecond))
	rec.Add("search", 10_000, 5_000)

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].StartNs != 0 || spans[0].EndNs != 2000 {
		t.Errorf("parse span = %+v", spans[0])
	}
	if spans[1].Name != "queue" || spans[1].DurNs() != 8000 {
		t.Errorf("queue span = %+v (dur %d)", spans[1], spans[1].DurNs())
	}
	if spans[2].Name != "search" || spans[2].StartNs != 10_000 || spans[2].EndNs != 15_000 {
		t.Errorf("search span = %+v", spans[2])
	}

	cp := rec.CopySpans()
	rec.Reset(epoch)
	if len(cp) != 3 || cp[0].Name != "parse" {
		t.Errorf("copy not independent of reset: %+v", cp)
	}
	if len(rec.Spans()) != 0 {
		t.Errorf("reset left %d spans", len(rec.Spans()))
	}
}

func TestTraceRecOpenSpanAndOverflow(t *testing.T) {
	epoch := time.Unix(0, 0)
	var rec TraceRec
	rec.Reset(epoch)
	i := rec.Begin("open", epoch.Add(time.Millisecond))
	spans := rec.Spans()
	if spans[0].EndNs != -1 || spans[0].DurNs() != 0 {
		t.Errorf("open span = %+v", spans[0])
	}
	rec.End(i, epoch.Add(2*time.Millisecond))
	// A clock that moves backwards clamps to the epoch instead of
	// recording negative offsets.
	if got := rec.SinceNs(epoch.Add(-time.Second)); got != 0 {
		t.Errorf("SinceNs before epoch = %d, want 0", got)
	}

	for k := 0; k < 2*MaxTraceSpans; k++ {
		rec.Begin("x", epoch)
	}
	if n := len(rec.Spans()); n != MaxTraceSpans {
		t.Errorf("overflowed recorder has %d spans, want %d", n, MaxTraceSpans)
	}
	if idx := rec.Begin("y", epoch); idx != -1 {
		t.Errorf("full recorder Begin = %d, want -1", idx)
	}
	rec.End(-1, epoch) // must not panic

	var nilRec *TraceRec
	nilRec.Reset(epoch)
	if nilRec.Begin("z", epoch) != -1 || len(nilRec.Spans()) != 0 || nilRec.CopySpans() != nil {
		t.Error("nil recorder is not a no-op")
	}
}

func TestTracePoolReuse(t *testing.T) {
	tp := NewTracePool()
	epoch := time.Unix(7, 0)
	r := tp.Get(epoch)
	r.Begin("a", epoch)
	tp.Put(r)
	r2 := tp.Get(epoch.Add(time.Second))
	if len(r2.Spans()) != 0 {
		t.Errorf("pooled recorder not reset: %d spans", len(r2.Spans()))
	}
	if !r2.Epoch().Equal(epoch.Add(time.Second)) {
		t.Errorf("epoch = %v", r2.Epoch())
	}
	tp.Put(nil) // must not panic

	var nilPool *TracePool
	if nilPool.Get(epoch) != nil {
		t.Error("nil pool Get != nil")
	}
}

func TestSamplePolicyHead(t *testing.T) {
	always := SamplePolicy{Rate: 1}
	never := SamplePolicy{Rate: 0}
	for id := uint64(0); id < 100; id++ {
		if !always.SampleHead(id) {
			t.Fatalf("rate 1 skipped id %d", id)
		}
		if never.SampleHead(id) {
			t.Fatalf("rate 0 sampled id %d", id)
		}
	}
	// A fractional rate is deterministic and lands near the target on a
	// large id range.
	p := SamplePolicy{Rate: 0.25}
	hits := 0
	for id := uint64(0); id < 10_000; id++ {
		if p.SampleHead(id) {
			hits++
		}
		if p.SampleHead(id) != p.SampleHead(id) {
			t.Fatal("sampling not deterministic")
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("rate 0.25 sampled %d of 10000", hits)
	}
}

func TestSamplePolicySlow(t *testing.T) {
	p := SamplePolicy{SlowNs: int64(25 * time.Millisecond)}
	if p.Slow(int64(24 * time.Millisecond)) {
		t.Error("24ms flagged slow")
	}
	if !p.Slow(int64(25 * time.Millisecond)) {
		t.Error("25ms not flagged slow")
	}
	if (SamplePolicy{}).Slow(1 << 60) {
		t.Error("disabled threshold flagged slow")
	}
}
