package obs

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestReportRoundTrip writes a populated report to disk, reads it back,
// and compares every section.
func TestReportRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("graph.dijkstra.heap_pops").Add(1234)
	reg.Counter("netstate.txn.commits").Add(56)
	reg.Gauge("sim.load").Set(0.5)
	reg.Histogram("sim.slot_seconds", []float64{0.001, 0.01, 0.1}).Observe(0.004)
	sp := reg.StartPhase("admission")
	sp.End()

	rep := NewReport("cearsim")
	rep.SetConfig("scale", "small")
	rep.SetConfig("algorithm", "CEAR")
	rep.SetConfig("seed", 101.0) // JSON numbers decode as float64
	rep.SetMetric("welfare_ratio", 0.8421)
	rep.SetMetric("rejected.no-path", 12)
	rep.Finish(reg)

	path := filepath.Join(t.TempDir(), "run.json")
	if err := WriteReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if got.Version != ReportVersion || got.Tool != "cearsim" {
		t.Fatalf("header = %d/%q", got.Version, got.Tool)
	}
	if !reflect.DeepEqual(got.Config, rep.Config) {
		t.Fatalf("config round-trip:\n got %#v\nwant %#v", got.Config, rep.Config)
	}
	if !reflect.DeepEqual(got.Metrics, rep.Metrics) {
		t.Fatalf("metrics round-trip:\n got %#v\nwant %#v", got.Metrics, rep.Metrics)
	}
	if !reflect.DeepEqual(got.Observability, rep.Observability) {
		t.Fatalf("observability round-trip:\n got %#v\nwant %#v", got.Observability, rep.Observability)
	}
}

func TestReadReportRejectsWrongVersion(t *testing.T) {
	_, err := ReadReport(strings.NewReader(`{"version": 999, "tool": "x"}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version mismatch", err)
	}
}

func TestReadReportFileMissing(t *testing.T) {
	if _, err := ReadReportFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}
