package obs

import "sync/atomic"

// SLOClass tracks one service-level objective as a good/bad event
// stream and derives an error-budget burn rate: the fraction of events
// that were bad, divided by the fraction the target allows. Burn 1.0
// means the budget is being spent exactly as fast as it accrues;
// above 1.0 the objective is being missed.
//
// The class registers three gauges — slo.<name>.burn_rate, .good and
// .bad — so the burn shows up in /metrics and run reports without any
// extra plumbing. Updates are lock-free; a nil *SLOClass is a valid
// no-op instrument.
type SLOClass struct {
	name      string
	objective float64 // seconds; 0 for event-based (non-latency) classes
	target    float64 // required good fraction, clamped below 1
	good      atomic.Int64
	bad       atomic.Int64
	gBurn     *Gauge
	gGood     *Gauge
	gBad      *Gauge
}

// NewSLOClass builds a class with the given latency objective (seconds;
// 0 for availability-style classes) and good-fraction target. Targets
// at or above 1 are clamped to 0.9999 so the burn rate stays finite.
// A nil registry yields a class that still counts but exports nothing.
func NewSLOClass(reg *Registry, name string, objectiveSeconds, target float64) *SLOClass {
	if target >= 1 {
		target = 0.9999
	}
	if target < 0 {
		target = 0
	}
	return &SLOClass{
		name:      name,
		objective: objectiveSeconds,
		target:    target,
		gBurn:     reg.Gauge("slo." + name + ".burn_rate"),
		gGood:     reg.Gauge("slo." + name + ".good"),
		gBad:      reg.Gauge("slo." + name + ".bad"),
	}
}

// Name returns the class name.
func (c *SLOClass) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Observe records one good or bad event and refreshes the gauges.
func (c *SLOClass) Observe(good bool) {
	if c == nil {
		return
	}
	if good {
		c.gGood.Set(float64(c.good.Add(1)))
	} else {
		c.gBad.Set(float64(c.bad.Add(1)))
	}
	c.gBurn.Set(c.burn(c.good.Load(), c.bad.Load()))
}

// ObserveLatency records one latency sample against the objective.
func (c *SLOClass) ObserveLatency(seconds float64) {
	if c == nil {
		return
	}
	c.Observe(seconds <= c.objective)
}

// burn computes the error-budget burn rate from event counts.
func (c *SLOClass) burn(good, bad int64) float64 {
	total := good + bad
	if total == 0 || bad == 0 {
		return 0
	}
	badFrac := float64(bad) / float64(total)
	return badFrac / (1 - c.target)
}

// SLOSnapshot is the JSON form of one class's state, used by /v1/stats
// and the run report's slo section (schema v3).
type SLOSnapshot struct {
	Name             string  `json:"name"`
	ObjectiveSeconds float64 `json:"objective_seconds,omitempty"`
	Target           float64 `json:"target"`
	Good             int64   `json:"good"`
	Bad              int64   `json:"bad"`
	GoodFraction     float64 `json:"good_fraction"`
	BurnRate         float64 `json:"burn_rate"`
}

// Snapshot captures the class. An event-free class reports a good
// fraction of 1 (no budget spent).
func (c *SLOClass) Snapshot() SLOSnapshot {
	if c == nil {
		return SLOSnapshot{}
	}
	good, bad := c.good.Load(), c.bad.Load()
	s := SLOSnapshot{
		Name:             c.name,
		ObjectiveSeconds: c.objective,
		Target:           c.target,
		Good:             good,
		Bad:              bad,
		GoodFraction:     1,
		BurnRate:         c.burn(good, bad),
	}
	if total := good + bad; total > 0 {
		s.GoodFraction = float64(good) / float64(total)
	}
	return s
}
