package cluster

import (
	"errors"
	"fmt"

	"spacebooking/internal/netstate"
	"spacebooking/internal/sim"
)

// Finish runs every shard engine's final sweep and merges the results.
// Call only after Done() — the shard loops must have exited so the
// engines are quiesced. A prepare-ledger leak on any shard is joined
// into the returned error (wrapping netstate.ErrPreparedLeak) while the
// merged result is still returned, so a serving layer can log the
// invariant violation without losing the run; any other engine error
// aborts the merge.
func (c *Cluster) Finish() (*sim.Result, error) {
	results := make([]*sim.Result, len(c.shards))
	var leakErr error
	for i, sh := range c.shards {
		res, err := sh.eng.Finish()
		if err != nil {
			if errors.Is(err, netstate.ErrPreparedLeak) && res != nil {
				leakErr = errors.Join(leakErr, fmt.Errorf("shard %d: %w", i, err))
			} else {
				return nil, fmt.Errorf("cluster: shard %d finish: %w", i, err)
			}
		}
		results[i] = res
	}
	if len(results) == 1 {
		// Single-shard passthrough: the bare engine's result, untouched.
		return results[0], leakErr
	}
	return c.merge(results), leakErr
}

// merge combines per-shard results into one cluster-wide Result.
// Request-level metrics sum; the per-slot congestion/depletion sweeps
// re-run over each shard's state restricted to the resources that
// shard owns (the authoritative slices), so every link and battery is
// counted exactly once.
func (c *Cluster) merge(rs []*sim.Result) *sim.Result {
	horizon := c.prov.Horizon()
	out := &sim.Result{
		Algorithm:  rs[0].Algorithm,
		Rejections: make(map[string]int),
	}
	var totalHops, totalSlotPaths int
	var totalLatency float64
	arrived := make([]float64, horizon)
	accepted := make([]float64, horizon)
	for i, r := range rs {
		out.TotalRequests += r.TotalRequests
		out.Accepted += r.Accepted
		out.TotalValuation += r.TotalValuation
		out.AcceptedValuation += r.AcceptedValuation
		out.Revenue += r.Revenue
		for k, v := range r.Rejections {
			out.Rejections[k] += v
		}
		hops, paths, lat := c.shards[i].eng.PathTotals()
		totalHops += hops
		totalSlotPaths += paths
		totalLatency += lat
		arr, acc := c.shards[i].eng.ValuationPerSlot()
		for t := 0; t < horizon; t++ {
			arrived[t] += arr[t]
			accepted[t] += acc[t]
		}
	}
	if out.TotalValuation > 0 {
		out.WelfareRatio = out.AcceptedValuation / out.TotalValuation
	}
	if totalSlotPaths > 0 {
		out.AvgAcceptedHops = float64(totalHops) / float64(totalSlotPaths)
	}
	if out.Accepted > 0 {
		out.AvgAcceptedLatencyMs = totalLatency / float64(out.Accepted)
	}

	out.DepletedPerSlot = make([]int, horizon)
	out.CongestedPerSlot = make([]int, horizon)
	out.CumulativeWelfareRatio = make([]float64, horizon)
	rc := c.cfg.Run
	cumArr, cumAcc := 0.0, 0.0
	for t := 0; t < horizon; t++ {
		for i, sh := range c.shards {
			owner := i
			out.DepletedPerSlot[t] += sh.state.DepletedSatCountFunc(t, rc.DepletionThresholdFrac,
				func(sat int) bool { return c.part.SatOwner(sat) == owner })
			out.CongestedPerSlot[t] += sh.state.CongestedLinkCountFunc(t, rc.CongestionThresholdFrac,
				func(key netstate.LinkKey) bool { return c.part.LinkOwner(key) == owner })
		}
		cumArr += arrived[t]
		cumAcc += accepted[t]
		if cumArr > 0 {
			out.CumulativeWelfareRatio[t] = cumAcc / cumArr
		} else {
			out.CumulativeWelfareRatio[t] = 1
		}
	}
	return out
}

// ShardStats is one shard's row in the /v1/stats shard section.
type ShardStats struct {
	ID         int   `json:"id"`
	QueueDepth int   `json:"queue_depth"`
	Submitted  int64 `json:"submitted"`
	Accepted   int64 `json:"accepted"`
	Rejected   int64 `json:"rejected"`
	Prepared   int64 `json:"prepared"`
	Committed  int64 `json:"committed"`
	Aborted    int64 `json:"aborted"`
	CrossShard int64 `json:"cross_shard"`
	TokenShed  int64 `json:"token_shed"`
}

// Stats snapshots every shard's live counters.
func (c *Cluster) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = ShardStats{
			ID:         sh.id,
			QueueDepth: len(sh.in),
			Submitted:  sh.statSubmitted.Load(),
			Accepted:   sh.statAccepted.Load(),
			Rejected:   sh.statRejected.Load(),
			Prepared:   sh.statPrepared.Load(),
			Committed:  sh.statCommitted.Load(),
			Aborted:    sh.statAborted.Load(),
			CrossShard: sh.statCross.Load(),
			TokenShed:  sh.statTokenShed.Load(),
		}
	}
	return out
}
