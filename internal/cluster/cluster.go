package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
)

// Route outcomes the serving layer maps to HTTP statuses.
var (
	// ErrShardOverloaded is returned by Route when the target shard's
	// token bucket is dry (HTTP 429, reason "overloaded_shard").
	ErrShardOverloaded = errors.New("cluster: shard token bucket exhausted")
	// ErrQueueFull is returned by Submit when the shard's ingress queue
	// is full.
	ErrQueueFull = errors.New("cluster: shard queue full")
	// ErrIntakeClosed is returned by Submit after CloseIntake.
	ErrIntakeClosed = errors.New("cluster: intake closed")
)

// Config parameterises a shard cluster.
type Config struct {
	// Shards is the engine count; 1 (the default) is a passthrough
	// single-engine cluster, byte-identical to a bare sim.Engine.
	Shards int
	// Policy selects the routing policy.
	Policy Policy
	// Run is the engine configuration. Shard 0 keeps Run.Obs (and its
	// trace stream), so a single-shard cluster observes exactly like a
	// bare engine; higher shards run private registries and no engine
	// trace stream.
	Run sim.RunConfig
	// QueueDepth bounds each shard's ingress queue. Default 256.
	QueueDepth int
	// BatchSize caps how many queued items one shard pass runs
	// back-to-back. Default 32.
	BatchSize int
	// TokenRate/TokenBurst configure the per-shard token-bucket
	// admission (requests per second; burst defaults to the rate).
	// Zero rate disables the bucket.
	TokenRate  float64
	TokenBurst float64
	// Now is the wall clock for the token buckets. Default time.Now.
	Now func() time.Time
	// RunBatch is the per-shard work loop body: called on the shard's
	// goroutine with 1..BatchSize submitted items. It must drive
	// admissions through sh.Engine() only — that is the single-writer
	// contract the shard loop guarantees.
	RunBatch func(sh *Shard, items []any)
	// TestGate, when non-nil, stalls every shard loop before each batch
	// until a value (or close) arrives — deterministic drain and
	// backpressure tests only.
	TestGate chan struct{}
}

// Cluster is a set of shard engines behind a routing front end.
type Cluster struct {
	cfg  Config
	prov *topology.Provider
	part *Partition

	shards []*Shard
	rr     atomic.Uint64
	// nextCoord issues cluster-wide two-phase coordination ids.
	nextCoord atomic.Uint64

	// Cluster-wide counters in the main (shard 0) registry; nil-safe.
	ctrPrepared  *obs.Counter
	ctrCommitted *obs.Counter
	ctrAborted   *obs.Counter
	ctrCross     *obs.Counter
	// Anti-entropy: committed deltas broadcast to non-owner shards so
	// their optimistic views of foreign resources converge on reality
	// (best-effort; a full observe queue or a conflicting view drops
	// the update rather than blocking an admission).
	ctrObserved     *obs.Counter
	ctrObsDropped   *obs.Counter
	observeCapacity int

	// phase1 counts shard loops still consuming their ingress queue;
	// when the last one drains, allDrained releases every loop from its
	// remote-op serving phase, and done closes once all loops exit.
	phase1     sync.WaitGroup
	loopWG     sync.WaitGroup
	allDrained chan struct{}
	done       chan struct{}

	closeOnce sync.Once
	closed    atomic.Bool
}

// Shard is one single-writer engine loop plus its ingress and
// remote-operation queues. All engine/state access happens on the
// shard's goroutine (directly, or via remote ops other shards send).
type Shard struct {
	c     *Cluster
	id    int
	eng   *sim.Engine
	state *netstate.State
	reg   *obs.Registry

	in     chan any
	remote chan func()
	// observe receives committed deltas from peer shards (anti-entropy;
	// see Cluster.ctrObserved). Fire-and-forget: senders never block on
	// it, the shard loop drains it between batches.
	observe chan *fullDelta
	// pending holds remotely-prepared reservations by coordination id,
	// touched only on this shard's goroutine.
	pending map[uint64]*netstate.Prepared

	// Coordination scratch (shard-goroutine only).
	parts      []remoteDelta
	prepOrder  []int
	lastCross  bool
	obsConsBuf []netstate.Consumption

	// Stats (atomics: read by /v1/stats from handler goroutines).
	statSubmitted atomic.Int64
	statAccepted  atomic.Int64
	statRejected  atomic.Int64
	statPrepared  atomic.Int64
	statCommitted atomic.Int64
	statAborted   atomic.Int64
	statCross     atomic.Int64
	statTokenShed atomic.Int64

	// Per-shard counters in the main registry (nil-safe).
	ctrPrepared  *obs.Counter
	ctrCommitted *obs.Counter
	ctrAborted   *obs.Counter
	ctrCross     *obs.Counter

	tokens *tokenBucket
}

// remoteDelta is the slice of a prepared transaction owned by one
// remote shard: the link reservations and energy consumptions to pin
// on that shard's authoritative ledgers.
type remoteDelta struct {
	links []remoteLink
	cons  []netstate.Consumption
}

type remoteLink struct {
	key  netstate.LinkKey
	slot int
	rate float64
}

// fullDelta is a committed booking's complete pinned delta, broadcast
// to peer shards after commit so their optimistic views of resources
// they don't own track what actually got booked (without it, a shard's
// view of foreign links/batteries stays near-empty, prices stay low,
// and the budget-pruned search stops pruning — admission cost then
// grows with the shard count instead of staying flat). Receivers treat
// it as read-only.
type fullDelta struct {
	links []remoteLink
	cons  []netstate.Consumption
}

// New builds the partition and the shard engines. Loops do not run
// until Start.
func New(prov *topology.Provider, cfg Config) (*Cluster, error) {
	if prov == nil {
		return nil, fmt.Errorf("cluster: nil provider")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", cfg.Shards)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RunBatch == nil {
		return nil, fmt.Errorf("cluster: nil RunBatch")
	}
	part, err := NewPartition(prov, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		prov:       prov,
		part:       part,
		allDrained: make(chan struct{}),
		done:       make(chan struct{}),
	}
	mainReg := cfg.Run.Obs
	c.ctrPrepared = mainReg.Counter("cluster.prepared.total")
	c.ctrCommitted = mainReg.Counter("cluster.committed.total")
	c.ctrAborted = mainReg.Counter("cluster.aborted.total")
	c.ctrCross = mainReg.Counter("cluster.cross_shard.total")
	c.ctrObserved = mainReg.Counter("cluster.observed.total")
	c.ctrObsDropped = mainReg.Counter("cluster.observe_dropped.total")
	c.observeCapacity = cfg.QueueDepth

	now := cfg.Now()
	for i := 0; i < cfg.Shards; i++ {
		rc := cfg.Run
		if i > 0 {
			// Private registry, no shared trace stream, no shared search
			// scratch: everything a shard engine writes concurrently with
			// its peers must be its own.
			rc.Obs = obs.New()
			rc.Trace = nil
			rc.Scratch = nil
		}
		eng, err := sim.NewEngine(prov, rc)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d engine: %w", i, err)
		}
		sh := &Shard{
			c:       c,
			id:      i,
			eng:     eng,
			state:   eng.State(),
			reg:     rc.Obs,
			in:      make(chan any, cfg.QueueDepth),
			remote:  make(chan func(), cfg.Shards+1),
			observe: make(chan *fullDelta, c.observeCapacity),
			pending: make(map[uint64]*netstate.Prepared),
			parts:   make([]remoteDelta, cfg.Shards),
			tokens:  newTokenBucket(cfg.TokenRate, cfg.TokenBurst, now),
		}
		sh.ctrPrepared = mainReg.Counter(fmt.Sprintf("cluster.shard%d.prepared", i))
		sh.ctrCommitted = mainReg.Counter(fmt.Sprintf("cluster.shard%d.committed", i))
		sh.ctrAborted = mainReg.Counter(fmt.Sprintf("cluster.shard%d.aborted", i))
		sh.ctrCross = mainReg.Counter(fmt.Sprintf("cluster.shard%d.cross_shard", i))
		c.shards = append(c.shards, sh)
	}
	if cfg.Shards > 1 {
		// The two-phase protocol only exists with someone to coordinate
		// with; a single-shard cluster keeps the bit-identical
		// single-phase commit path.
		for _, sh := range c.shards {
			sh := sh
			sh.state.SetCommitInterceptor(sh.intercept)
		}
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return c.cfg.Shards }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Partition returns the resource-ownership map.
func (c *Cluster) Partition() *Partition { return c.part }

// Algorithm returns the engines' algorithm display name.
func (c *Cluster) Algorithm() string { return c.shards[0].eng.Algorithm() }

// QueuedTotal returns the summed ingress-queue depth across shards.
func (c *Cluster) QueuedTotal() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.in)
	}
	return n
}

// Start launches the shard loops and the drain watcher.
func (c *Cluster) Start() {
	c.phase1.Add(len(c.shards))
	c.loopWG.Add(len(c.shards))
	for _, sh := range c.shards {
		go sh.loop()
	}
	go func() {
		c.phase1.Wait()
		close(c.allDrained)
		c.loopWG.Wait()
		close(c.done)
	}()
}

// Route picks the target shard for a booking per the configured policy
// and charges its token bucket. ErrShardOverloaded means the caller
// should shed with reason "overloaded_shard".
func (c *Cluster) Route(src topology.Endpoint) (*Shard, error) {
	var sh *Shard
	switch {
	case len(c.shards) == 1:
		sh = c.shards[0]
	case c.cfg.Policy == LeastLoaded:
		sh = c.shards[0]
		best := len(sh.in)
		for _, cand := range c.shards[1:] {
			if d := len(cand.in); d < best {
				sh, best = cand, d
			}
		}
	case c.cfg.Policy == Affinity:
		sh = c.shards[c.part.Affinity(src)]
	default:
		sh = c.shards[int(c.rr.Add(1)-1)%len(c.shards)]
	}
	if !sh.tokens.allow(c.cfg.Now()) {
		sh.statTokenShed.Add(1)
		return nil, ErrShardOverloaded
	}
	return sh, nil
}

// CloseIntake stops accepting submissions and lets the shard loops
// drain. Safe to call more than once; the caller must serialise it
// against Submit (the serving layer's lifecycle lock does).
func (c *Cluster) CloseIntake() {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		for _, sh := range c.shards {
			close(sh.in)
		}
	})
}

// Done is closed when every shard loop has drained and exited; only
// then may Finish run.
func (c *Cluster) Done() <-chan struct{} { return c.done }

// ID returns the shard's index.
func (sh *Shard) ID() int { return sh.id }

// Engine returns the shard's engine. Only the shard goroutine (inside
// RunBatch) may call its admission methods.
func (sh *Shard) Engine() *sim.Engine { return sh.eng }

// Registry returns the shard's obs registry (the main registry for
// shard 0, a private one otherwise).
func (sh *Shard) Registry() *obs.Registry { return sh.reg }

// Depth returns the shard's current ingress-queue depth.
func (sh *Shard) Depth() int { return len(sh.in) }

// Submit enqueues one item for the shard loop without blocking.
func (sh *Shard) Submit(item any) error {
	if sh.c.closed.Load() {
		return ErrIntakeClosed
	}
	select {
	case sh.in <- item:
		sh.statSubmitted.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// NoteDecision records an admission outcome for the shard's stats.
func (sh *Shard) NoteDecision(accepted bool) {
	if accepted {
		sh.statAccepted.Add(1)
	} else {
		sh.statRejected.Add(1)
	}
}

// TakeCrossShard reports — and clears — whether the most recent
// admission on this shard ran the cross-shard protocol. Shard
// goroutine only, immediately after the Admit that may have set it.
func (sh *Shard) TakeCrossShard() bool {
	v := sh.lastCross
	sh.lastCross = false
	return v
}

// loop is the shard's single writer. Phase 1 batches ingress items
// through RunBatch, servicing remote two-phase operations between
// batches; once the ingress queue closes and drains, the loop keeps
// serving remote operations until every shard has drained (a peer's
// last coordinations may still need this shard's ledgers), then exits.
func (sh *Shard) loop() {
	c := sh.c
	defer c.loopWG.Done()
	phase1Done := false
	markDrained := func() {
		if !phase1Done {
			phase1Done = true
			c.phase1.Done()
		}
	}
	batch := make([]any, 0, c.cfg.BatchSize)
	for !phase1Done {
		select {
		case op := <-sh.remote:
			op()
		case d := <-sh.observe:
			sh.applyObserved(d)
		case item, ok := <-sh.in:
			if !ok {
				markDrained()
				break
			}
			if c.cfg.TestGate != nil {
				<-c.cfg.TestGate
			}
			batch = append(batch[:0], item)
		collect:
			for len(batch) < c.cfg.BatchSize {
				select {
				case more, ok2 := <-sh.in:
					if !ok2 {
						markDrained()
						break collect
					}
					batch = append(batch, more)
				default:
					break collect
				}
			}
			c.cfg.RunBatch(sh, batch)
		}
	}
	for {
		select {
		case op := <-sh.remote:
			op()
		case d := <-sh.observe:
			sh.applyObserved(d)
		case <-c.allDrained:
			// No coordinator can be in flight once every shard finished
			// phase 1 (remote calls are awaited inside RunBatch), but
			// drain any raced-in op before exiting.
			for {
				select {
				case op := <-sh.remote:
					op()
				case d := <-sh.observe:
					sh.applyObserved(d)
				default:
					return
				}
			}
		}
	}
}

// intercept is the commit interceptor installed on every shard state
// when Shards > 1: it receives the home shard's Prepared, splits its
// deltas by resource owner, and runs the two-phase protocol against
// the remote owners in ascending shard order. Runs on the home shard's
// goroutine, inside Admit.
func (sh *Shard) intercept(p *netstate.Prepared) error {
	c := sh.c
	sh.notePrepare(sh)

	// Split the pinned deltas by owner. The home state already holds
	// all of them (it is an optimistic full-constellation view); only
	// remote-owned slices are re-pinned on their authoritative shards.
	cross := false
	for i := range sh.parts {
		sh.parts[i].links = sh.parts[i].links[:0]
		sh.parts[i].cons = sh.parts[i].cons[:0]
	}
	p.EachLink(func(key netstate.LinkKey, slot int, rate float64) {
		if owner := c.part.LinkOwner(key); owner != sh.id {
			cross = true
			sh.parts[owner].links = append(sh.parts[owner].links, remoteLink{key: key, slot: slot, rate: rate})
		}
	})
	p.EachConsumption(func(cn netstate.Consumption) {
		if owner := c.part.SatOwner(cn.Sat); owner != sh.id {
			cross = true
			sh.parts[owner].cons = append(sh.parts[owner].cons, cn)
		}
	})
	if !cross {
		full := sh.captureDelta(p)
		p.Commit()
		sh.noteCommit(sh)
		sh.broadcast(full)
		return nil
	}

	sh.lastCross = true
	sh.statCross.Add(1)
	sh.ctrCross.Inc()
	c.ctrCross.Inc()
	cid := c.nextCoord.Add(1)

	// Prepare on every owning shard in ascending id order — the
	// deterministic lock order that keeps concurrent cross-shard
	// coordinations deadlock-free — aborting everything on the first
	// conflict.
	sh.prepOrder = sh.prepOrder[:0]
	for owner := 0; owner < len(c.shards); owner++ {
		d := &sh.parts[owner]
		if owner == sh.id || (len(d.links) == 0 && len(d.cons) == 0) {
			continue
		}
		err := sh.callRemote(owner, func(t *Shard) error { return t.prepareRemote(cid, d) })
		if err != nil {
			for _, done := range sh.prepOrder {
				sh.callRemote(done, func(t *Shard) error { t.finishRemote(cid, false); return nil })
			}
			p.Abort()
			sh.noteAbort(sh)
			return fmt.Errorf("shard %d rejected prepare: %v", owner, err)
		}
		sh.prepOrder = append(sh.prepOrder, owner)
	}

	// All owners pinned: commit everywhere, home last.
	for _, done := range sh.prepOrder {
		sh.callRemote(done, func(t *Shard) error { t.finishRemote(cid, true); return nil })
	}
	full := sh.captureDelta(p)
	p.Commit()
	sh.noteCommit(sh)
	sh.broadcast(full)
	return nil
}

// captureDelta copies a Prepared's complete pinned delta before Commit
// invalidates it, for the post-commit anti-entropy broadcast.
func (sh *Shard) captureDelta(p *netstate.Prepared) *fullDelta {
	if len(sh.c.shards) == 1 {
		return nil
	}
	d := &fullDelta{}
	p.EachLink(func(key netstate.LinkKey, slot int, rate float64) {
		d.links = append(d.links, remoteLink{key: key, slot: slot, rate: rate})
	})
	p.EachConsumption(func(cn netstate.Consumption) {
		d.cons = append(d.cons, cn)
	})
	return d
}

// broadcast fans a committed delta out to every peer shard,
// fire-and-forget: a peer whose observe queue is full misses this
// update (its view just stays a little staler — the next one may
// land). Never blocks, so it cannot deadlock with coordinations.
func (sh *Shard) broadcast(d *fullDelta) {
	if d == nil || (len(d.links) == 0 && len(d.cons) == 0) {
		return
	}
	for _, t := range sh.c.shards {
		if t == sh {
			continue
		}
		select {
		case t.observe <- d:
		default:
			sh.c.ctrObsDropped.Inc()
		}
	}
}

// applyObserved folds a peer's committed delta into this shard's
// optimistic view of the resources it does not own (the authoritative
// owned slices were already pinned through the two-phase protocol).
// The whole delta applies atomically or not at all: a conflict with
// this shard's own bookings drops the update — the views are
// best-effort by design, and over-optimism is what admission's
// prepare-time conflict check guards against. Runs on the shard
// goroutine. Prepare+Commit (rather than Txn.Commit) keeps the apply
// off the commit interceptor, which would loop the broadcast.
func (t *Shard) applyObserved(d *fullDelta) {
	c := t.c
	txn := t.state.Begin()
	for _, l := range d.links {
		if c.part.LinkOwner(l.key) == t.id {
			continue
		}
		if err := txn.ReserveLinkKey(l.key, l.slot, l.rate); err != nil {
			txn.Rollback()
			c.ctrObsDropped.Inc()
			return
		}
	}
	foreign := t.obsConsBuf[:0]
	for _, cn := range d.cons {
		if c.part.SatOwner(cn.Sat) != t.id {
			foreign = append(foreign, cn)
		}
	}
	t.obsConsBuf = foreign[:0]
	if err := txn.Consume(foreign); err != nil {
		txn.Rollback()
		c.ctrObsDropped.Inc()
		return
	}
	p, err := txn.Prepare()
	if err != nil {
		txn.Rollback()
		c.ctrObsDropped.Inc()
		return
	}
	p.Commit()
	c.ctrObserved.Inc()
}

// callRemote runs op on the target shard's goroutine and waits for its
// result, servicing this shard's own remote queue while blocked — two
// coordinating shards therefore make progress against each other
// instead of deadlocking. The remote channels are buffered to the
// shard count (each coordinator has at most one operation in flight),
// so the send below never blocks.
func (sh *Shard) callRemote(target int, op func(t *Shard) error) error {
	t := sh.c.shards[target]
	done := make(chan error, 1)
	t.remote <- func() { done <- op(t) }
	for {
		select {
		case err := <-done:
			return err
		case rop := <-sh.remote:
			rop()
		case d := <-sh.observe:
			sh.applyObserved(d)
		}
	}
}

// prepareRemote pins a coordinator's deltas on this (owning) shard's
// authoritative ledgers: reserve the links, apply the consumptions,
// and hold the result in the prepare ledger under the coordination id.
// Any over-subscription or infeasibility is the conflict that aborts
// the whole booking. Runs on this shard's goroutine via callRemote.
func (t *Shard) prepareRemote(cid uint64, d *remoteDelta) error {
	txn := t.state.Begin()
	for _, l := range d.links {
		if err := txn.ReserveLinkKey(l.key, l.slot, l.rate); err != nil {
			txn.Rollback()
			return err
		}
	}
	if err := txn.Consume(d.cons); err != nil {
		txn.Rollback()
		return err
	}
	p, err := txn.Prepare()
	if err != nil {
		txn.Rollback()
		return err
	}
	t.pending[cid] = p
	t.notePrepare(t)
	return nil
}

// finishRemote settles a remotely-prepared reservation. Runs on the
// owning shard's goroutine via callRemote.
func (t *Shard) finishRemote(cid uint64, commit bool) {
	p := t.pending[cid]
	if p == nil {
		return
	}
	delete(t.pending, cid)
	if commit {
		p.Commit()
		t.noteCommit(t)
	} else {
		p.Abort()
		t.noteAbort(t)
	}
}

func (sh *Shard) notePrepare(on *Shard) {
	on.statPrepared.Add(1)
	on.ctrPrepared.Inc()
	on.c.ctrPrepared.Inc()
}

func (sh *Shard) noteCommit(on *Shard) {
	on.statCommitted.Add(1)
	on.ctrCommitted.Inc()
	on.c.ctrCommitted.Inc()
}

func (sh *Shard) noteAbort(on *Shard) {
	on.statAborted.Add(1)
	on.ctrAborted.Inc()
	on.c.ctrAborted.Inc()
}
