// Package cluster shards the admission engine: N single-writer shard
// loops, each over its own full-constellation netstate.State, behind a
// router with pluggable policies. Resources (links, batteries) are
// partitioned by orbital plane; a shard's state is authoritative for
// the resources it owns and an optimistic local view for the rest.
// Bookings whose plans touch only owned resources commit locally;
// anything else runs the two-phase prepare/commit protocol against
// every owning shard, in ascending shard order, aborting on conflict.
package cluster

import (
	"fmt"
	"math"

	"spacebooking/internal/netstate"
	"spacebooking/internal/orbit"
	"spacebooking/internal/topology"
)

// Partition maps satellites (and hence links and batteries) to owning
// shards. Ownership is by contiguous orbital-plane ranges: satellites
// of one plane share ISL fabric and sweep the same ground track, so
// plane-local traffic stays shard-local — the LEO-geometry
// decomposition argued for in the related distributed-routing work.
type Partition struct {
	shards   int
	numSats  int
	satOwner []int32
	// Per-endpoint affinity shard, precomputed from longitude (ground
	// sites) or fleet index (EO satellites) so routing is a pure lookup.
	siteShard []int32
	eoShard   []int32
}

// NewPartition assigns every satellite of every shell to one of n
// shards by contiguous plane ranges (shell-major satellite ids,
// plane-major within a shell — see topology.NewProvider).
func NewPartition(prov *topology.Provider, n int) (*Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", n)
	}
	cfg := prov.Config()
	shells := append([]orbit.WalkerConfig{cfg.Walker}, cfg.ExtraShells...)
	totalPlanes := 0
	for _, sh := range shells {
		totalPlanes += sh.Planes
	}
	if n > totalPlanes {
		return nil, fmt.Errorf("cluster: %d shards exceed %d orbital planes", n, totalPlanes)
	}
	pt := &Partition{
		shards:   n,
		numSats:  prov.NumSats(),
		satOwner: make([]int32, prov.NumSats()),
	}
	sat, globalPlane := 0, 0
	for _, sh := range shells {
		for plane := 0; plane < sh.Planes; plane++ {
			owner := int32(globalPlane * n / totalPlanes)
			for idx := 0; idx < sh.SatsPerPlane; idx++ {
				pt.satOwner[sat] = owner
				sat++
			}
			globalPlane++
		}
	}
	if sat != prov.NumSats() {
		return nil, fmt.Errorf("cluster: plane walk covered %d of %d satellites", sat, prov.NumSats())
	}

	pt.siteShard = make([]int32, prov.NumSites())
	for i := range pt.siteShard {
		pt.siteShard[i] = int32(lonBucket(prov.SiteECEF(i).X, prov.SiteECEF(i).Y, n))
	}
	pt.eoShard = make([]int32, prov.NumEO())
	for i := range pt.eoShard {
		pt.eoShard[i] = int32(i % n)
	}
	return pt, nil
}

// lonBucket maps an ECEF position's longitude to one of n equal-width
// buckets — a pure function of fixed site coordinates, so
// region-affinity routing is deterministic regardless of GOMAXPROCS or
// request interleaving.
func lonBucket(x, y float64, n int) int {
	lon := math.Atan2(y, x) // [-π, π]
	b := int((lon + math.Pi) / (2 * math.Pi) * float64(n))
	if b >= n {
		b = n - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// NumShards returns the shard count.
func (pt *Partition) NumShards() int { return pt.shards }

// SatOwner returns the shard owning a satellite's battery.
func (pt *Partition) SatOwner(sat int) int { return int(pt.satOwner[sat]) }

// LinkOwner returns the shard owning a link's capacity ledger: the
// transmitting satellite's shard, or — for uplinks from ground/EO
// endpoints — the receiving satellite's. Every link in the system has
// at least one broadband-satellite endpoint.
func (pt *Partition) LinkOwner(key netstate.LinkKey) int {
	if from := key.From(); from < pt.numSats {
		return int(pt.satOwner[from])
	}
	if to := key.To(); to < pt.numSats {
		return int(pt.satOwner[to])
	}
	return 0
}

// Affinity returns the region-affinity shard of a request source
// endpoint: ground sites bucket by longitude, EO satellites by fleet
// index. Deterministic — the same endpoint always routes to the same
// shard.
func (pt *Partition) Affinity(src topology.Endpoint) int {
	switch src.Kind {
	case topology.EndpointSpace:
		if src.Index >= 0 && src.Index < len(pt.eoShard) {
			return int(pt.eoShard[src.Index])
		}
	case topology.EndpointGround:
		if src.Index >= 0 && src.Index < len(pt.siteShard) {
			return int(pt.siteShard[src.Index])
		}
	}
	return 0
}
