package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

var (
	provOnce   sync.Once
	sharedProv *topology.Provider
	provErr    error
)

func testProvider(t *testing.T) *topology.Provider {
	t.Helper()
	provOnce.Do(func() {
		cfg := topology.DefaultConfig(testEpoch)
		cfg.Walker.Planes = 8
		cfg.Walker.SatsPerPlane = 12
		cfg.Walker.PhasingF = 3
		cfg.Horizon = 48
		sharedProv, provErr = topology.NewProvider(cfg, testSites(), nil)
	})
	if provErr != nil {
		t.Fatal(provErr)
	}
	return sharedProv
}

func testSites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
		{ID: 2, LatDeg: 51.5, LonDeg: -0.1},   // London
		{ID: 3, LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
	}
}

func testPairs() []workload.Pair {
	ep := func(i int) topology.Endpoint {
		return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
	}
	return []workload.Pair{
		{Src: ep(0), Dst: ep(1)},
		{Src: ep(2), Dst: ep(3)},
		{Src: ep(0), Dst: ep(3)},
	}
}

func testRunConfig(t *testing.T, rate float64, seed int64) sim.RunConfig {
	t.Helper()
	wl := workload.DefaultConfig(48, testPairs(), seed)
	wl.ArrivalRatePerSlot = rate
	wl.Valuation = 1e8
	rc, err := sim.DefaultRunConfig(sim.AlgCEAR, wl)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// admitBatch is the canonical RunBatch for tests: drive each request
// through the shard's engine, exactly like the serving layer does.
func admitBatch(t *testing.T) func(sh *Shard, items []any) {
	return func(sh *Shard, items []any) {
		for _, it := range items {
			req := it.(workload.Request)
			d, err := sh.Engine().Admit(req)
			if err != nil {
				t.Errorf("shard %d: admit %d: %v", sh.ID(), req.ID, err)
				continue
			}
			sh.NoteDecision(d.Accepted)
		}
	}
}

// runCluster pushes every request through an n-shard cluster (routing by
// the given policy) and returns the merged result.
func runCluster(t *testing.T, n int, policy Policy, rc sim.RunConfig, reqs []workload.Request) (*Cluster, *sim.Result) {
	t.Helper()
	c, err := New(testProvider(t), Config{
		Shards:     n,
		Policy:     policy,
		Run:        rc,
		QueueDepth: len(reqs) + 1,
		BatchSize:  8,
		RunBatch:   admitBatch(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, req := range reqs {
		sh, err := c.Route(req.Src)
		if err != nil {
			t.Fatalf("route %d: %v", req.ID, err)
		}
		if err := sh.Submit(req); err != nil {
			t.Fatalf("submit %d: %v", req.ID, err)
		}
	}
	c.CloseIntake()
	select {
	case <-c.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cluster drain timed out")
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return c, res
}

func TestPartitionCoversEverySatellite(t *testing.T) {
	prov := testProvider(t)
	for _, n := range []int{1, 2, 4, 8} {
		pt, err := NewPartition(prov, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		counts := make([]int, n)
		prevOwner := 0
		for sat := 0; sat < prov.NumSats(); sat++ {
			o := pt.SatOwner(sat)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: sat %d owner %d outside [0,%d)", n, sat, o, n)
			}
			if o < prevOwner {
				t.Fatalf("n=%d: owners not contiguous at sat %d (%d after %d)", n, sat, o, prevOwner)
			}
			prevOwner = o
			counts[o]++
		}
		for i, cnt := range counts {
			if cnt == 0 {
				t.Errorf("n=%d: shard %d owns no satellites", n, i)
			}
		}
	}
	// More shards than planes is a configuration error, not a panic.
	if _, err := NewPartition(prov, 9); err == nil {
		t.Error("9 shards over 8 planes accepted")
	}
}

// TestSingleShardMatchesSimRun is the tentpole's seed-swept equivalence
// gate: a one-shard cluster (no interceptor, main registry, passthrough
// Finish) must reproduce sim.Run byte-for-byte on the same workload.
func TestSingleShardMatchesSimRun(t *testing.T) {
	for _, seed := range []int64{1, 1234, 77} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rc := testRunConfig(t, 3, seed)
			want, err := sim.Run(testProvider(t), rc)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := workload.Generate(rc.Workload)
			if err != nil {
				t.Fatal(err)
			}
			_, got := runCluster(t, 1, RoundRobin, testRunConfig(t, 3, seed), reqs)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("single-shard cluster diverged from sim.Run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestMultiShardClosedLoop runs seeded closed loops over 2 and 4 shards
// and checks the two-phase ledger reconciliation: every prepare settles
// (prepared == committed + aborted, no leak at Finish), the shard stats
// sum to the submitted workload, and the merged result is coherent.
func TestMultiShardClosedLoop(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			rc := testRunConfig(t, 4, 42)
			rc.Obs = obs.New() // real registry: the cluster.* counters must reconcile
			reqs, err := workload.Generate(rc.Workload)
			if err != nil {
				t.Fatal(err)
			}
			c, res := runCluster(t, n, RoundRobin, rc, reqs)

			if got := c.ctrPrepared.Value(); got != c.ctrCommitted.Value()+c.ctrAborted.Value() {
				t.Errorf("prepared %d != committed %d + aborted %d",
					got, c.ctrCommitted.Value(), c.ctrAborted.Value())
			}
			stats := c.Stats()
			if len(stats) != n {
				t.Fatalf("stats rows = %d, want %d", len(stats), n)
			}
			var submitted, decided, prepared, committed, aborted, cross int64
			for _, st := range stats {
				submitted += st.Submitted
				decided += st.Accepted + st.Rejected
				prepared += st.Prepared
				committed += st.Committed
				aborted += st.Aborted
				cross += st.CrossShard
				if st.QueueDepth != 0 {
					t.Errorf("shard %d queue depth %d after drain", st.ID, st.QueueDepth)
				}
			}
			if submitted != int64(len(reqs)) {
				t.Errorf("submitted = %d, want %d", submitted, len(reqs))
			}
			if decided != int64(len(reqs)) {
				t.Errorf("decided = %d, want %d", decided, len(reqs))
			}
			if prepared != c.ctrPrepared.Value() {
				t.Errorf("per-shard prepared sum %d != cluster counter %d", prepared, c.ctrPrepared.Value())
			}
			if prepared != committed+aborted {
				t.Errorf("per-shard: prepared %d != committed %d + aborted %d", prepared, committed, aborted)
			}
			// With several shards every admission runs through the prepare
			// ledger (local-only bookings prepare then commit), so at least
			// one prepare per accepted booking must have happened.
			if res.Accepted > 0 && prepared == 0 {
				t.Error("accepted bookings but no prepares in multi-shard mode")
			}
			if res.TotalRequests != len(reqs) {
				t.Errorf("merged total = %d, want %d", res.TotalRequests, len(reqs))
			}
			if res.Accepted > 0 && res.Revenue <= 0 {
				t.Error("accepted bookings but no revenue")
			}
			_ = cross
		})
	}
}

func TestRouterLeastLoadedPicksShallowerQueue(t *testing.T) {
	rc := testRunConfig(t, 1, 1)
	c, err := New(testProvider(t), Config{
		Shards:     2,
		Policy:     LeastLoaded,
		Run:        rc,
		QueueDepth: 8,
		RunBatch:   admitBatch(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loops not started: queue depths are fully controlled. Skew shard 0.
	for i := 0; i < 3; i++ {
		if err := c.Shard(0).Submit(workload.Request{}); err != nil {
			t.Fatal(err)
		}
	}
	src := topology.Endpoint{Kind: topology.EndpointGround, Index: 0}
	for i := 0; i < 5; i++ {
		sh, err := c.Route(src)
		if err != nil {
			t.Fatal(err)
		}
		if sh.ID() != 1 {
			t.Fatalf("route %d picked shard %d under skew, want 1 (depths: %d, %d)",
				i, sh.ID(), c.Shard(0).Depth(), c.Shard(1).Depth())
		}
	}
	// Equal depths tie to the lowest id.
	for i := 0; i < 3; i++ {
		if err := c.Shard(1).Submit(workload.Request{}); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := c.Route(src)
	if err != nil {
		t.Fatal(err)
	}
	if sh.ID() != 0 {
		t.Fatalf("tie routed to shard %d, want 0", sh.ID())
	}
}

// Region affinity must be a pure function of the source endpoint:
// identical verdicts from any number of concurrent callers, regardless
// of GOMAXPROCS.
func TestRouterAffinityDeterministic(t *testing.T) {
	rc := testRunConfig(t, 1, 1)
	c, err := New(testProvider(t), Config{
		Shards:   4,
		Policy:   Affinity,
		Run:      rc,
		RunBatch: admitBatch(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	endpoints := []topology.Endpoint{
		{Kind: topology.EndpointGround, Index: 0},
		{Kind: topology.EndpointGround, Index: 1},
		{Kind: topology.EndpointGround, Index: 2},
		{Kind: topology.EndpointGround, Index: 3},
	}
	want := make([]int, len(endpoints))
	for i, ep := range endpoints {
		sh, err := c.Route(ep)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sh.ID()
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, ep := range endpoints {
					sh, err := c.Route(ep)
					if err != nil {
						errs <- err
						return
					}
					if sh.ID() != want[i] {
						errs <- fmt.Errorf("endpoint %d routed to %d, want %d (GOMAXPROCS %d)",
							i, sh.ID(), want[i], procs)
						return
					}
				}
			}()
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		errs = nil
	}
	// NY and LA sit in different longitude buckets from London/Tokyo.
	if want[0] == want[3] && want[1] == want[2] && want[0] == want[1] {
		t.Errorf("all four sites on one shard: affinity buckets = %v", want)
	}
}

func TestTokenBucketShedsOverloadedShard(t *testing.T) {
	rc := testRunConfig(t, 1, 1)
	now := testEpoch
	c, err := New(testProvider(t), Config{
		Shards:     2,
		Policy:     RoundRobin,
		Run:        rc,
		TokenRate:  1, // 1 req/s, burst 1
		TokenBurst: 1,
		Now:        func() time.Time { return now }, // frozen: no refill
		RunBatch:   admitBatch(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := topology.Endpoint{Kind: topology.EndpointGround, Index: 0}
	// Two routes succeed (one token per shard), then every shard is dry.
	for i := 0; i < 2; i++ {
		if _, err := c.Route(src); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
	}
	shed := 0
	for i := 0; i < 4; i++ {
		_, err := c.Route(src)
		if !errors.Is(err, ErrShardOverloaded) {
			t.Fatalf("route with dry buckets: err = %v, want ErrShardOverloaded", err)
		}
		shed++
	}
	var counted int64
	for i := 0; i < 2; i++ {
		counted += c.Shard(i).statTokenShed.Load()
	}
	if counted != int64(shed) {
		t.Errorf("token_shed counters = %d, want %d", counted, shed)
	}
	// Advancing the clock refills the buckets.
	now = now.Add(2 * time.Second)
	if _, err := c.Route(src); err != nil {
		t.Fatalf("route after refill: %v", err)
	}
}

// TestPreparedLeakFailsLoudly: an interceptor that walks away from its
// Prepared must surface ErrPreparedLeak from the engine's Finish via
// the cluster.
func TestPreparedLeakFailsLoudly(t *testing.T) {
	rc := testRunConfig(t, 2, 7)
	reqs, err := workload.Generate(rc.Workload)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(testProvider(t), Config{
		Shards:     1,
		Run:        rc,
		QueueDepth: len(reqs) + 1,
		RunBatch:   admitBatch(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: leak every prepared reservation instead of settling it.
	c.Shard(0).state.SetCommitInterceptor(func(p *netstate.Prepared) error {
		return nil // neither Commit nor Abort: a leak
	})
	c.Start()
	accepted := false
	for _, req := range reqs {
		sh, err := c.Route(req.Src)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Submit(req); err != nil {
			t.Fatal(err)
		}
		accepted = true
	}
	if !accepted {
		t.Skip("empty workload")
	}
	c.CloseIntake()
	<-c.Done()
	res, err := c.Finish()
	if c.Shard(0).state.PreparedOutstanding() == 0 {
		t.Skip("no booking was accepted, nothing leaked")
	}
	if err == nil {
		t.Fatal("leaked prepares not reported by Finish")
	}
	if res == nil {
		t.Fatal("leak error must still carry the merged result")
	}
}
