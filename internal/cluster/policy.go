package cluster

import (
	"fmt"
	"sync"
	"time"
)

// Policy selects how the front end routes bookings to shards.
type Policy int

const (
	// RoundRobin spreads requests evenly regardless of load.
	RoundRobin Policy = iota
	// LeastLoaded picks the shard with the shallowest ingress queue
	// (ties to the lowest shard id).
	LeastLoaded
	// Affinity routes by the request's source region (site longitude
	// bucket / EO fleet index): deterministic, and it keeps one region's
	// contending requests on one shard's pricing view.
	Affinity
)

// ParsePolicy resolves a -router flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "round-robin", "rr":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "affinity", "region-affinity":
		return Affinity, nil
	}
	return 0, fmt.Errorf("cluster: unknown router policy %q (want round-robin, least-loaded or affinity)", s)
}

// String renders the flag form.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case Affinity:
		return "affinity"
	default:
		return "round-robin"
	}
}

// tokenBucket is a per-shard admission limiter: ratePerSec tokens
// refill continuously up to burst. A zero rate disables the bucket.
// Route calls arrive from many handler goroutines, so the bucket is
// mutex-guarded; the critical section is a few float operations.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(ratePerSec, burst float64, now time.Time) *tokenBucket {
	if ratePerSec <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = ratePerSec
	}
	return &tokenBucket{rate: ratePerSec, burst: burst, tokens: burst, last: now}
}

// allow consumes one token if available. Nil receivers (bucket
// disabled) always allow.
func (tb *tokenBucket) allow(now time.Time) bool {
	if tb == nil {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
