package orbit

import (
	"math"
	"testing"
	"time"

	"spacebooking/internal/geo"
)

func TestWalkerConfigValidate(t *testing.T) {
	valid := StarlinkShell1(testEpoch)
	tests := []struct {
		name    string
		mutate  func(*WalkerConfig)
		wantErr bool
	}{
		{"starlink shell 1", func(c *WalkerConfig) {}, false},
		{"zero planes", func(c *WalkerConfig) { c.Planes = 0 }, true},
		{"zero per plane", func(c *WalkerConfig) { c.SatsPerPlane = 0 }, true},
		{"negative altitude", func(c *WalkerConfig) { c.AltitudeKm = -1 }, true},
		{"phasing too large", func(c *WalkerConfig) { c.PhasingF = 22 }, true},
		{"zero epoch", func(c *WalkerConfig) { c.Epoch = time.Time{} }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWalkerDeltaStarlinkCount(t *testing.T) {
	sats, err := WalkerDelta(StarlinkShell1(testEpoch))
	if err != nil {
		t.Fatal(err)
	}
	if len(sats) != 1584 {
		t.Fatalf("got %d satellites, want 1584", len(sats))
	}
	// IDs are plane-major and dense.
	for i, s := range sats {
		if s.ID != i {
			t.Fatalf("satellite %d has ID %d", i, s.ID)
		}
		if s.Plane != i/72 || s.IndexInPlane != i%72 {
			t.Fatalf("satellite %d has plane %d idx %d", i, s.Plane, s.IndexInPlane)
		}
	}
}

func TestWalkerDeltaInvalidConfig(t *testing.T) {
	if _, err := WalkerDelta(WalkerConfig{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestWalkerDeltaGeometry(t *testing.T) {
	cfg := WalkerConfig{
		Planes: 4, SatsPerPlane: 8, AltitudeKm: 550,
		InclinationDeg: 53, PhasingF: 1, Epoch: testEpoch,
	}
	sats, err := WalkerDelta(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RAAN spacing is 360/planes.
	if got := sats[8].Elements.RAANDeg - sats[0].Elements.RAANDeg; got != 90 {
		t.Errorf("RAAN spacing = %v, want 90", got)
	}
	// In-plane anomaly spacing is 360/satsPerPlane.
	if got := sats[1].Elements.MeanAnomalyDeg - sats[0].Elements.MeanAnomalyDeg; got != 45 {
		t.Errorf("anomaly spacing = %v, want 45", got)
	}
	// Walker phase offset between adjacent planes is F*360/total.
	wantPhase := 1 * 360.0 / 32.0
	if got := sats[8].Elements.MeanAnomalyDeg - sats[0].Elements.MeanAnomalyDeg; math.Abs(got-wantPhase) > 1e-12 {
		t.Errorf("phase offset = %v, want %v", got, wantPhase)
	}
}

func TestWalkerIntraPlaneSpacingUniform(t *testing.T) {
	cfg := WalkerConfig{
		Planes: 3, SatsPerPlane: 12, AltitudeKm: 550,
		InclinationDeg: 53, PhasingF: 0, Epoch: testEpoch,
	}
	sats, err := WalkerDelta(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Distance between adjacent satellites in the same plane is the chord
	// of 30 degrees, identical for every adjacent pair.
	a := geo.EarthRadiusKm + 550
	wantChord := 2 * a * math.Sin(geo.DegToRad(30)/2)
	at := testEpoch.Add(13 * time.Minute)
	for i := 0; i < 11; i++ {
		d := sats[i].Elements.PositionECI(at).DistanceTo(sats[i+1].Elements.PositionECI(at))
		if math.Abs(d-wantChord) > 0.01 {
			t.Fatalf("pair %d-%d chord = %v, want %v", i, i+1, d, wantChord)
		}
	}
}

func TestWalkerAllSatellitesDistinct(t *testing.T) {
	sats, err := WalkerDelta(WalkerConfig{
		Planes: 6, SatsPerPlane: 10, AltitudeKm: 550,
		InclinationDeg: 53, PhasingF: 3, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sats {
		pi := sats[i].Elements.PositionECI(testEpoch)
		for j := i + 1; j < len(sats); j++ {
			if pi.DistanceTo(sats[j].Elements.PositionECI(testEpoch)) < 1 {
				t.Fatalf("satellites %d and %d nearly co-located", i, j)
			}
		}
	}
}
