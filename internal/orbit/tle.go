package orbit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"spacebooking/internal/geo"
)

// TLE holds a parsed two-line element set. Only the fields that drive
// two-body propagation are retained; drag and higher-order terms in the
// record are validated syntactically but ignored by the propagator.
type TLE struct {
	Name             string
	CatalogNumber    int
	IntlDesignator   string
	Elements         Elements
	MeanMotionRevDay float64
}

// tleChecksum computes the modulo-10 checksum of the first 68 characters
// of a TLE line: digits count as their value, '-' counts as 1, everything
// else as 0.
func tleChecksum(line string) int {
	sum := 0
	for _, r := range line[:68] {
		switch {
		case r >= '0' && r <= '9':
			sum += int(r - '0')
		case r == '-':
			sum++
		}
	}
	return sum % 10
}

func parseTLEFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseTLEEpoch decodes the TLE epoch field (YYDDD.DDDDDDDD).
func parseTLEEpoch(s string) (time.Time, error) {
	f, err := parseTLEFloat(s)
	if err != nil {
		return time.Time{}, fmt.Errorf("orbit: bad TLE epoch %q: %w", s, err)
	}
	yy := int(f / 1000)
	dayOfYear := f - float64(yy*1000)
	year := 2000 + yy
	if yy >= 57 { // TLE convention: 57-99 => 1957-1999
		year = 1900 + yy
	}
	base := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC)
	// Day-of-year is 1-based.
	return base.Add(time.Duration((dayOfYear - 1) * 24 * float64(time.Hour))), nil
}

// ParseTLE parses a two-line element set. The optional name line (line 0)
// may be empty. Checksums on both lines are verified.
func ParseTLE(name, line1, line2 string) (TLE, error) {
	var t TLE
	t.Name = strings.TrimSpace(name)

	if len(line1) < 69 || len(line2) < 69 {
		return t, fmt.Errorf("orbit: TLE lines must be at least 69 characters (got %d, %d)", len(line1), len(line2))
	}
	if line1[0] != '1' || line2[0] != '2' {
		return t, fmt.Errorf("orbit: TLE line numbers are %q and %q, want 1 and 2", line1[0], line2[0])
	}
	for i, line := range []string{line1, line2} {
		want := tleChecksum(line)
		got := int(line[68] - '0')
		if got != want {
			return t, fmt.Errorf("orbit: TLE line %d checksum mismatch: got %d, want %d", i+1, got, want)
		}
	}

	catNum, err := strconv.Atoi(strings.TrimSpace(line1[2:7]))
	if err != nil {
		return t, fmt.Errorf("orbit: bad catalog number: %w", err)
	}
	t.CatalogNumber = catNum
	t.IntlDesignator = strings.TrimSpace(line1[9:17])

	epoch, err := parseTLEEpoch(line1[18:32])
	if err != nil {
		return t, err
	}

	inc, err := parseTLEFloat(line2[8:16])
	if err != nil {
		return t, fmt.Errorf("orbit: bad inclination: %w", err)
	}
	raan, err := parseTLEFloat(line2[17:25])
	if err != nil {
		return t, fmt.Errorf("orbit: bad RAAN: %w", err)
	}
	eccRaw := strings.TrimSpace(line2[26:33])
	ecc, err := strconv.ParseFloat("0."+eccRaw, 64)
	if err != nil {
		return t, fmt.Errorf("orbit: bad eccentricity %q: %w", eccRaw, err)
	}
	argp, err := parseTLEFloat(line2[34:42])
	if err != nil {
		return t, fmt.Errorf("orbit: bad argument of perigee: %w", err)
	}
	ma, err := parseTLEFloat(line2[43:51])
	if err != nil {
		return t, fmt.Errorf("orbit: bad mean anomaly: %w", err)
	}
	mm, err := parseTLEFloat(line2[52:63])
	if err != nil {
		return t, fmt.Errorf("orbit: bad mean motion: %w", err)
	}
	if mm <= 0 {
		return t, fmt.Errorf("orbit: mean motion must be positive, got %v", mm)
	}
	t.MeanMotionRevDay = mm

	// Semi-major axis from mean motion: n [rad/s] = sqrt(mu/a^3).
	nRadS := mm * 2 * math.Pi / 86400
	a := math.Cbrt(geo.EarthMuKm3S2 / (nRadS * nRadS))

	t.Elements = Elements{
		SemiMajorKm:    a,
		Eccentricity:   ecc,
		InclinationDeg: inc,
		RAANDeg:        raan,
		ArgPerigeeDeg:  argp,
		MeanAnomalyDeg: ma,
		Epoch:          epoch,
	}
	return t, t.Elements.Validate()
}

// FormatTLE renders a TLE back into its two canonical 69-character lines
// (name line excluded). Drag terms are zeroed. The output round-trips
// through ParseTLE.
func FormatTLE(t TLE) (line1, line2 string) {
	epochYear := t.Elements.Epoch.Year() % 100
	startOfYear := time.Date(t.Elements.Epoch.Year(), time.January, 1, 0, 0, 0, 0, time.UTC)
	dayOfYear := t.Elements.Epoch.Sub(startOfYear).Hours()/24 + 1

	mm := t.MeanMotionRevDay
	if mm == 0 {
		mm = 86400 / t.Elements.PeriodSeconds()
	}

	eccDigits := int(math.Round(t.Elements.Eccentricity * 1e7))
	if eccDigits > 9999999 {
		eccDigits = 9999999
	}

	l1 := fmt.Sprintf("1 %05dU %-8s %02d%012.8f  .00000000  00000-0  00000-0 0  999",
		t.CatalogNumber, t.IntlDesignator, epochYear, dayOfYear)
	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f    0",
		t.CatalogNumber,
		t.Elements.InclinationDeg,
		geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(t.Elements.RAANDeg))),
		eccDigits,
		geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(t.Elements.ArgPerigeeDeg))),
		geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(t.Elements.MeanAnomalyDeg))),
		mm)

	l1 = l1[:68] + strconv.Itoa(tleChecksum(l1[:68]+"0"))
	l2 = l2[:68] + strconv.Itoa(tleChecksum(l2[:68]+"0"))
	return l1, l2
}

// ParseTLEFile reads a stream of TLE records. Records may be 2-line
// (bare) or 3-line (preceded by a name line). Blank lines are skipped.
func ParseTLEFile(r io.Reader) ([]TLE, error) {
	scanner := bufio.NewScanner(r)
	var lines []string
	for scanner.Scan() {
		line := strings.TrimRight(scanner.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		lines = append(lines, line)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("orbit: reading TLE stream: %w", err)
	}

	var out []TLE
	for i := 0; i < len(lines); {
		name := ""
		if !strings.HasPrefix(lines[i], "1 ") {
			name = lines[i]
			i++
		}
		if i+1 >= len(lines) {
			return nil, fmt.Errorf("orbit: truncated TLE record at line %d", i+1)
		}
		t, err := ParseTLE(name, lines[i], lines[i+1])
		if err != nil {
			return nil, fmt.Errorf("orbit: record ending at line %d: %w", i+2, err)
		}
		out = append(out, t)
		i += 2
	}
	return out, nil
}
