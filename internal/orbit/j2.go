package orbit

import (
	"math"
	"time"

	"spacebooking/internal/geo"
)

// J2 is the Earth's dominant oblateness coefficient.
const J2 = 1.08262668e-3

// J2Rates returns the secular drift rates caused by Earth oblateness, in
// radians per second: nodal regression (RAAN), apsidal rotation
// (argument of perigee) and the mean-anomaly rate correction. These are
// the standard first-order secular expressions; short-period J2
// oscillations are not modelled.
func (e Elements) J2Rates() (raanDot, argpDot, meanAnomalyDot float64) {
	a := e.SemiMajorKm
	ecc := e.Eccentricity
	inc := geo.DegToRad(e.InclinationDeg)
	n := e.MeanMotionRadS()
	p := a * (1 - ecc*ecc)
	factor := 1.5 * J2 * n * (geo.EarthRadiusKm / p) * (geo.EarthRadiusKm / p)
	cosI := math.Cos(inc)
	sinI2 := math.Sin(inc) * math.Sin(inc)

	raanDot = -factor * cosI
	argpDot = factor * (2 - 2.5*sinI2)
	meanAnomalyDot = factor * math.Sqrt(1-ecc*ecc) * (1 - 1.5*sinI2)
	return raanDot, argpDot, meanAnomalyDot
}

// AtEpochJ2 returns a copy of the elements advanced to newEpoch with J2
// secular drift applied to RAAN, argument of perigee and mean anomaly.
// Use it to re-anchor a constellation for simulations that span days —
// within the paper's 384-minute horizon the drift is negligible (<1.4°
// of RAAN for the 550 km / 53° shell), which is why the per-slot
// propagator stays two-body.
func (e Elements) AtEpochJ2(newEpoch time.Time) Elements {
	dt := newEpoch.Sub(e.Epoch).Seconds()
	raanDot, argpDot, maDot := e.J2Rates()

	out := e
	out.Epoch = newEpoch
	out.RAANDeg = geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(e.RAANDeg) + raanDot*dt))
	out.ArgPerigeeDeg = geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(e.ArgPerigeeDeg) + argpDot*dt))
	out.MeanAnomalyDeg = geo.RadToDeg(geo.WrapTwoPi(
		geo.DegToRad(e.MeanAnomalyDeg) + (e.MeanMotionRadS()+maDot)*dt))
	return out
}

// NodalPrecessionDegPerDay returns the RAAN drift in degrees per day —
// the quantity mission designers quote (a sun-synchronous orbit needs
// +0.9856°/day).
func (e Elements) NodalPrecessionDegPerDay() float64 {
	raanDot, _, _ := e.J2Rates()
	return geo.RadToDeg(raanDot) * 86400
}
