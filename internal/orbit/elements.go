// Package orbit implements the orbital-mechanics substrate of the LSN
// simulator: Keplerian element propagation, Walker-Delta constellation
// generation (the Starlink Shell-I geometry used in the paper), a TLE
// codec, and a synthetic sun-synchronous Earth-observation fleet that
// stands in for the Planet Labs constellation in offline environments.
package orbit

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spacebooking/internal/geo"
)

// Elements is a set of classical Keplerian orbital elements referenced to
// an epoch. Angles are degrees to match operator-facing conventions (TLEs,
// FCC filings); they are converted internally.
type Elements struct {
	SemiMajorKm    float64
	Eccentricity   float64
	InclinationDeg float64
	RAANDeg        float64
	ArgPerigeeDeg  float64
	MeanAnomalyDeg float64
	Epoch          time.Time
}

// Validate reports whether the element set describes a physically
// propagatable orbit.
func (e Elements) Validate() error {
	switch {
	case e.SemiMajorKm <= geo.EarthRadiusKm:
		return fmt.Errorf("orbit: semi-major axis %.1f km is inside the Earth", e.SemiMajorKm)
	case e.Eccentricity < 0 || e.Eccentricity >= 1:
		return fmt.Errorf("orbit: eccentricity %v outside [0,1)", e.Eccentricity)
	case e.InclinationDeg < 0 || e.InclinationDeg > 180:
		return fmt.Errorf("orbit: inclination %v outside [0,180]", e.InclinationDeg)
	case e.Epoch.IsZero():
		return errors.New("orbit: zero epoch")
	}
	return nil
}

// MeanMotionRadS returns the mean motion n = sqrt(mu/a^3) in rad/s.
func (e Elements) MeanMotionRadS() float64 {
	a := e.SemiMajorKm
	return math.Sqrt(geo.EarthMuKm3S2 / (a * a * a))
}

// PeriodSeconds returns the orbital period in seconds.
func (e Elements) PeriodSeconds() float64 {
	return 2 * math.Pi / e.MeanMotionRadS()
}

// solveKepler solves Kepler's equation M = E - e sinE for the eccentric
// anomaly E using Newton iteration. For the near-circular orbits in this
// simulator it converges in 2-3 iterations.
func solveKepler(meanAnomaly, ecc float64) float64 {
	ea := meanAnomaly
	if ecc > 0.8 {
		ea = math.Pi
	}
	for i := 0; i < 20; i++ {
		f := ea - ecc*math.Sin(ea) - meanAnomaly
		fp := 1 - ecc*math.Cos(ea)
		delta := f / fp
		ea -= delta
		if math.Abs(delta) < 1e-12 {
			break
		}
	}
	return ea
}

// PositionECI propagates the elements to time t under two-body dynamics
// and returns the ECI position in kilometres.
//
// J2 nodal regression is deliberately not modelled: over the paper's
// 384-minute horizon the RAAN of a 550 km / 53° orbit drifts by less than
// 1.4°, which does not change any +Grid neighbour relation or visibility
// outcome at the 1-minute slot granularity.
func (e Elements) PositionECI(t time.Time) geo.Vec3 {
	dt := t.Sub(e.Epoch).Seconds()
	meanAnomaly := geo.WrapTwoPi(geo.DegToRad(e.MeanAnomalyDeg) + e.MeanMotionRadS()*dt)

	ea := solveKepler(meanAnomaly, e.Eccentricity)
	sinEA, cosEA := math.Sincos(ea)

	// True anomaly and radius.
	nu := math.Atan2(math.Sqrt(1-e.Eccentricity*e.Eccentricity)*sinEA, cosEA-e.Eccentricity)
	r := e.SemiMajorKm * (1 - e.Eccentricity*cosEA)

	// Position in the perifocal frame.
	sinNu, cosNu := math.Sincos(nu)
	perifocal := geo.Vec3{X: r * cosNu, Y: r * sinNu}

	// Rotate perifocal -> ECI: Rz(RAAN) Rx(inc) Rz(argPerigee).
	return perifocal.
		RotateZ(geo.DegToRad(e.ArgPerigeeDeg)).
		RotateX(geo.DegToRad(e.InclinationDeg)).
		RotateZ(geo.DegToRad(e.RAANDeg))
}

// VelocityECI returns the two-body ECI velocity (km/s) at time t, via a
// small symmetric finite difference. The simulator itself only needs
// positions; velocity supports the doppler/contact-time utilities.
func (e Elements) VelocityECI(t time.Time) geo.Vec3 {
	const h = 50 * time.Millisecond
	p1 := e.PositionECI(t.Add(-h))
	p2 := e.PositionECI(t.Add(h))
	return p2.Sub(p1).Scale(1 / (2 * h.Seconds()))
}

// Satellite is a named satellite with orbital elements and an index that
// is stable within its constellation.
type Satellite struct {
	ID           int
	Name         string
	Plane        int // orbital plane index within its constellation, -1 if n/a
	IndexInPlane int
	Elements     Elements
}
