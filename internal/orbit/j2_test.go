package orbit

import (
	"math"
	"testing"
	"time"

	"spacebooking/internal/geo"
)

func TestNodalPrecessionKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		altKm   float64
		incDeg  float64
		wantDeg float64 // degrees/day
		tol     float64
	}{
		// Classic textbook values.
		{"ISS-like (400 km, 51.6°)", 400, 51.6, -4.98, 0.15},
		{"Starlink shell (550 km, 53°)", 550, 53, -4.6, 0.2},
		{"polar (800 km, 90°)", 800, 90, 0, 1e-9},
		// Sun-synchronous: designed for +0.9856°/day.
		{"SSO (500 km)", 500, ssoInclinationDeg(500), 0.9856, 0.02},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := Elements{
				SemiMajorKm:    geo.EarthRadiusKm + tt.altKm,
				InclinationDeg: tt.incDeg,
				Epoch:          testEpoch,
			}
			got := e.NodalPrecessionDegPerDay()
			if math.Abs(got-tt.wantDeg) > tt.tol {
				t.Errorf("precession = %v deg/day, want %v ± %v", got, tt.wantDeg, tt.tol)
			}
		})
	}
}

func TestJ2RatesSigns(t *testing.T) {
	// Prograde orbits regress (negative RAAN rate); retrograde orbits
	// precess forward. Apsidal rotation is positive below the critical
	// inclination (63.4°) and negative above it.
	prograde := Elements{SemiMajorKm: 7000, InclinationDeg: 30, Epoch: testEpoch}
	retrograde := Elements{SemiMajorKm: 7000, InclinationDeg: 120, Epoch: testEpoch}
	raanP, argpP, maP := prograde.J2Rates()
	raanR, _, _ := retrograde.J2Rates()
	if raanP >= 0 {
		t.Errorf("prograde RAAN rate = %v, want negative", raanP)
	}
	if raanR <= 0 {
		t.Errorf("retrograde RAAN rate = %v, want positive", raanR)
	}
	if argpP <= 0 {
		t.Errorf("apsidal rate below critical inclination = %v, want positive", argpP)
	}
	if maP <= 0 {
		t.Errorf("mean anomaly correction = %v, want positive at low inclination", maP)
	}
	critical := Elements{SemiMajorKm: 7000, InclinationDeg: 63.4349, Epoch: testEpoch}
	if _, argpC, _ := critical.J2Rates(); math.Abs(argpC) > 1e-9 {
		t.Errorf("apsidal rate at the critical inclination = %v, want ~0", argpC)
	}
}

func TestAtEpochJ2(t *testing.T) {
	e := circular550(53, 100, 0)
	oneDay := e.AtEpochJ2(testEpoch.Add(24 * time.Hour))
	if oneDay.Epoch != testEpoch.Add(24*time.Hour) {
		t.Error("epoch not advanced")
	}
	drift := oneDay.RAANDeg - e.RAANDeg
	// ~-4.6 degrees of nodal regression per day (mod 360).
	if drift > 0 {
		drift -= 360
	}
	if math.Abs(drift-e.NodalPrecessionDegPerDay()) > 0.01 {
		t.Errorf("RAAN drift = %v, want %v", drift, e.NodalPrecessionDegPerDay())
	}
	// Inclination, shape and size are untouched by secular J2.
	if oneDay.SemiMajorKm != e.SemiMajorKm || oneDay.InclinationDeg != e.InclinationDeg ||
		oneDay.Eccentricity != e.Eccentricity {
		t.Error("J2 secular drift must not change a, e, i")
	}
	// Zero elapsed time is the identity (modulo angle wrapping).
	same := e.AtEpochJ2(testEpoch)
	if math.Abs(same.RAANDeg-e.RAANDeg) > 1e-9 {
		t.Errorf("zero-dt advance changed RAAN: %v -> %v", e.RAANDeg, same.RAANDeg)
	}
}

func TestJ2DriftNegligibleOverPaperHorizon(t *testing.T) {
	// The design claim in the propagator doc: < 1.4° RAAN drift over the
	// 384-minute evaluation horizon for the Starlink shell.
	e := circular550(53, 0, 0)
	drifted := e.AtEpochJ2(testEpoch.Add(384 * time.Minute))
	drift := math.Abs(drifted.RAANDeg - 0)
	if drift > 360-1.4 {
		drift = 360 - drift
	}
	if drift > 1.4 {
		t.Errorf("RAAN drift over 384 min = %v°, design doc claims < 1.4°", drift)
	}
}
