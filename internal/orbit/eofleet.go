package orbit

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"spacebooking/internal/geo"
)

// EOFleetConfig parameterises the synthetic Earth-observation fleet that
// substitutes for the 223 Planet Labs satellites the paper pulls from
// Space-Track. The defaults mirror the real fleet's gross orbit geometry:
// sun-synchronous, 475-525 km, morning/afternoon crossing planes.
type EOFleetConfig struct {
	Count         int
	MinAltitudeKm float64
	MaxAltitudeKm float64
	Seed          int64
	Epoch         time.Time
}

// DefaultEOFleetConfig returns the paper-scale fleet: 223 satellites.
func DefaultEOFleetConfig(epoch time.Time) EOFleetConfig {
	return EOFleetConfig{
		Count:         223,
		MinAltitudeKm: 475,
		MaxAltitudeKm: 525,
		Seed:          1,
		Epoch:         epoch,
	}
}

// ssoInclinationDeg returns the inclination that makes an orbit at the
// given altitude sun-synchronous (J2 nodal precession of 360°/year).
func ssoInclinationDeg(altKm float64) float64 {
	const (
		j2          = 1.08262668e-3
		precessRadS = 2 * math.Pi / (365.2422 * 86400)
	)
	a := geo.EarthRadiusKm + altKm
	n := math.Sqrt(geo.EarthMuKm3S2 / (a * a * a))
	cosI := -2 * precessRadS * a * a / (3 * j2 * n * geo.EarthRadiusKm * geo.EarthRadiusKm)
	if cosI < -1 {
		cosI = -1
	}
	return geo.RadToDeg(math.Acos(cosI))
}

// SyntheticEOFleet generates a deterministic sun-synchronous
// Earth-observation fleet. Satellites are spread across a handful of
// local-time planes (as real imaging constellations are) and uniformly
// phased within each plane, with small random jitter so that no two
// satellites are artificially co-located.
func SyntheticEOFleet(cfg EOFleetConfig) ([]Satellite, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("orbit: EO fleet count must be positive, got %d", cfg.Count)
	}
	if cfg.MinAltitudeKm <= 0 || cfg.MaxAltitudeKm < cfg.MinAltitudeKm {
		return nil, fmt.Errorf("orbit: bad EO altitude band [%v,%v]", cfg.MinAltitudeKm, cfg.MaxAltitudeKm)
	}
	if cfg.Epoch.IsZero() {
		return nil, fmt.Errorf("orbit: zero epoch")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	const planes = 6
	sats := make([]Satellite, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		plane := i % planes
		alt := cfg.MinAltitudeKm + rng.Float64()*(cfg.MaxAltitudeKm-cfg.MinAltitudeKm)
		raan := float64(plane)*(360.0/planes) + rng.Float64()*4 - 2
		perPlane := (cfg.Count + planes - 1) / planes
		ma := float64(i/planes)*(360.0/float64(perPlane)) + rng.Float64()*3

		sats = append(sats, Satellite{
			ID:           i,
			Name:         fmt.Sprintf("EO-%03d", i),
			Plane:        plane,
			IndexInPlane: i / planes,
			Elements: Elements{
				SemiMajorKm:    geo.EarthRadiusKm + alt,
				Eccentricity:   0.0002 * rng.Float64(),
				InclinationDeg: ssoInclinationDeg(alt),
				RAANDeg:        geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(raan))),
				ArgPerigeeDeg:  rng.Float64() * 360,
				MeanAnomalyDeg: geo.RadToDeg(geo.WrapTwoPi(geo.DegToRad(ma))),
				Epoch:          cfg.Epoch,
			},
		})
	}
	return sats, nil
}

// FleetTLEs renders a fleet as TLE records (useful for interoperability
// tests and to exercise the codec the way a Space-Track download would).
func FleetTLEs(sats []Satellite) []TLE {
	out := make([]TLE, 0, len(sats))
	for i, s := range sats {
		out = append(out, TLE{
			Name:             s.Name,
			CatalogNumber:    50000 + i,
			IntlDesignator:   fmt.Sprintf("24%03dA", i%1000),
			Elements:         s.Elements,
			MeanMotionRevDay: 86400 / s.Elements.PeriodSeconds(),
		})
	}
	return out
}
