package orbit

import (
	"fmt"
	"time"

	"spacebooking/internal/geo"
)

// WalkerConfig describes a Walker-Delta constellation i:t/p/f — the
// geometry used by Starlink Shell I (53°: 1584/22/17 at 550 km) and most
// proposed broadband shells.
type WalkerConfig struct {
	Planes         int
	SatsPerPlane   int
	AltitudeKm     float64
	InclinationDeg float64
	// PhasingF is the Walker phasing factor f in [0, Planes). Adjacent
	// planes are phase-offset by f * 360 / (Planes*SatsPerPlane) degrees
	// of mean anomaly.
	PhasingF int
	Epoch    time.Time
}

// Validate reports whether the configuration can produce a constellation.
func (c WalkerConfig) Validate() error {
	switch {
	case c.Planes <= 0:
		return fmt.Errorf("orbit: planes must be positive, got %d", c.Planes)
	case c.SatsPerPlane <= 0:
		return fmt.Errorf("orbit: satsPerPlane must be positive, got %d", c.SatsPerPlane)
	case c.AltitudeKm <= 0:
		return fmt.Errorf("orbit: altitude must be positive, got %v", c.AltitudeKm)
	case c.PhasingF < 0 || c.PhasingF >= c.Planes:
		return fmt.Errorf("orbit: phasing factor %d outside [0,%d)", c.PhasingF, c.Planes)
	case c.Epoch.IsZero():
		return fmt.Errorf("orbit: zero epoch")
	}
	return nil
}

// Total returns the number of satellites in the constellation.
func (c WalkerConfig) Total() int { return c.Planes * c.SatsPerPlane }

// StarlinkShell1 returns the configuration of SpaceX Starlink Shell I as
// filed with the FCC and used in the paper's evaluation: 22 planes of 72
// satellites at 550 km and 53° inclination.
func StarlinkShell1(epoch time.Time) WalkerConfig {
	return WalkerConfig{
		Planes:         22,
		SatsPerPlane:   72,
		AltitudeKm:     550,
		InclinationDeg: 53,
		PhasingF:       17,
		Epoch:          epoch,
	}
}

// WalkerDelta generates the satellites of a Walker-Delta constellation.
// Satellite IDs are assigned plane-major: id = plane*SatsPerPlane + slot.
func WalkerDelta(c WalkerConfig) ([]Satellite, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	total := c.Total()
	sats := make([]Satellite, 0, total)
	a := geo.EarthRadiusKm + c.AltitudeKm
	raanStep := 360.0 / float64(c.Planes)
	maStep := 360.0 / float64(c.SatsPerPlane)
	phaseStep := float64(c.PhasingF) * 360.0 / float64(total)

	for p := 0; p < c.Planes; p++ {
		for s := 0; s < c.SatsPerPlane; s++ {
			id := p*c.SatsPerPlane + s
			sats = append(sats, Satellite{
				ID:           id,
				Name:         fmt.Sprintf("SHELL-P%02dS%02d", p, s),
				Plane:        p,
				IndexInPlane: s,
				Elements: Elements{
					SemiMajorKm:    a,
					Eccentricity:   0,
					InclinationDeg: c.InclinationDeg,
					RAANDeg:        float64(p) * raanStep,
					ArgPerigeeDeg:  0,
					MeanAnomalyDeg: float64(s)*maStep + float64(p)*phaseStep,
					Epoch:          c.Epoch,
				},
			})
		}
	}
	return sats, nil
}
