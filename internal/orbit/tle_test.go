package orbit

import (
	"math"
	"strings"
	"testing"

	"spacebooking/internal/geo"
)

// A real ISS TLE (epoch 2008-09-20), the canonical test vector used by
// most TLE implementations.
const (
	issName  = "ISS (ZARYA)"
	issLine1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	issLine2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
)

func TestParseTLEISS(t *testing.T) {
	tle, err := ParseTLE(issName, issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	if tle.Name != issName {
		t.Errorf("name = %q", tle.Name)
	}
	if tle.CatalogNumber != 25544 {
		t.Errorf("catalog = %d, want 25544", tle.CatalogNumber)
	}
	if tle.IntlDesignator != "98067A" {
		t.Errorf("designator = %q", tle.IntlDesignator)
	}
	e := tle.Elements
	if math.Abs(e.InclinationDeg-51.6416) > 1e-9 {
		t.Errorf("inclination = %v", e.InclinationDeg)
	}
	if math.Abs(e.RAANDeg-247.4627) > 1e-9 {
		t.Errorf("RAAN = %v", e.RAANDeg)
	}
	if math.Abs(e.Eccentricity-0.0006703) > 1e-12 {
		t.Errorf("ecc = %v", e.Eccentricity)
	}
	if math.Abs(e.ArgPerigeeDeg-130.5360) > 1e-9 {
		t.Errorf("argp = %v", e.ArgPerigeeDeg)
	}
	if math.Abs(e.MeanAnomalyDeg-325.0288) > 1e-9 {
		t.Errorf("ma = %v", e.MeanAnomalyDeg)
	}
	// 15.72 rev/day corresponds to a ~6730 km semi-major axis.
	if math.Abs(e.SemiMajorKm-6730) > 10 {
		t.Errorf("semi-major = %v, want ~6730", e.SemiMajorKm)
	}
	// Epoch: day 264.51782528 of 2008.
	if e.Epoch.Year() != 2008 || e.Epoch.YearDay() != 264 {
		t.Errorf("epoch = %v", e.Epoch)
	}
}

func TestParseTLEErrors(t *testing.T) {
	tests := []struct {
		name         string
		line1, line2 string
	}{
		{"short lines", "1 25544U", "2 25544"},
		{"swapped lines", issLine2, issLine1},
		{"bad checksum line1", issLine1[:68] + "0", issLine2},
		{"bad checksum line2", issLine1, issLine2[:68] + "0"},
		{"corrupt inclination", issLine1, issLine2[:8] + "xx.xxxx" + issLine2[15:]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseTLE("X", tt.line1, tt.line2); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestTLEChecksumOfKnownLines(t *testing.T) {
	if got := tleChecksum(issLine1); got != 7 {
		t.Errorf("line1 checksum = %d, want 7", got)
	}
	if got := tleChecksum(issLine2); got != 7 {
		t.Errorf("line2 checksum = %d, want 7", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	fleet, err := SyntheticEOFleet(EOFleetConfig{
		Count: 25, MinAltitudeKm: 475, MaxAltitudeKm: 525, Seed: 7, Epoch: testEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tle := range FleetTLEs(fleet) {
		l1, l2 := FormatTLE(tle)
		if len(l1) != 69 || len(l2) != 69 {
			t.Fatalf("formatted lines have lengths %d, %d, want 69", len(l1), len(l2))
		}
		back, err := ParseTLE(tle.Name, l1, l2)
		if err != nil {
			t.Fatalf("round-trip parse: %v\n%s\n%s", err, l1, l2)
		}
		if math.Abs(back.Elements.InclinationDeg-tle.Elements.InclinationDeg) > 1e-3 {
			t.Errorf("inclination drifted: %v -> %v", tle.Elements.InclinationDeg, back.Elements.InclinationDeg)
		}
		if math.Abs(back.Elements.SemiMajorKm-tle.Elements.SemiMajorKm) > 0.5 {
			t.Errorf("semi-major drifted: %v -> %v", tle.Elements.SemiMajorKm, back.Elements.SemiMajorKm)
		}
		if math.Abs(back.Elements.Eccentricity-tle.Elements.Eccentricity) > 1e-6 {
			t.Errorf("eccentricity drifted: %v -> %v", tle.Elements.Eccentricity, back.Elements.Eccentricity)
		}
		// Position agreement at epoch within a kilometre.
		p0 := tle.Elements.PositionECI(testEpoch)
		p1 := back.Elements.PositionECI(testEpoch)
		if p0.DistanceTo(p1) > 1.0 {
			t.Errorf("position drifted %v km after round trip", p0.DistanceTo(p1))
		}
	}
}

func TestParseTLEFileThreeLineAndTwoLine(t *testing.T) {
	input := issName + "\n" + issLine1 + "\n" + issLine2 + "\n\n" +
		issLine1 + "\n" + issLine2 + "\n"
	tles, err := ParseTLEFile(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tles) != 2 {
		t.Fatalf("got %d records, want 2", len(tles))
	}
	if tles[0].Name != issName {
		t.Errorf("first record name = %q", tles[0].Name)
	}
	if tles[1].Name != "" {
		t.Errorf("second record name = %q, want empty", tles[1].Name)
	}
}

func TestParseTLEFileTruncated(t *testing.T) {
	if _, err := ParseTLEFile(strings.NewReader(issName + "\n" + issLine1)); err == nil {
		t.Error("expected error for truncated record")
	}
}

func TestSyntheticEOFleetProperties(t *testing.T) {
	cfg := DefaultEOFleetConfig(testEpoch)
	fleet, err := SyntheticEOFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 223 {
		t.Fatalf("fleet size = %d, want 223", len(fleet))
	}
	for _, s := range fleet {
		alt := s.Elements.SemiMajorKm - geo.EarthRadiusKm
		if alt < 475 || alt > 525 {
			t.Errorf("%s altitude %v outside [475,525]", s.Name, alt)
		}
		// Sun-synchronous inclinations at these altitudes are ~97.2-97.5°.
		if s.Elements.InclinationDeg < 96.5 || s.Elements.InclinationDeg > 98.5 {
			t.Errorf("%s inclination %v not sun-synchronous", s.Name, s.Elements.InclinationDeg)
		}
		if err := s.Elements.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSyntheticEOFleetDeterministic(t *testing.T) {
	cfg := DefaultEOFleetConfig(testEpoch)
	a, err := SyntheticEOFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticEOFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Elements != b[i].Elements {
			t.Fatalf("fleet not deterministic at index %d", i)
		}
	}
}

func TestSyntheticEOFleetConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  EOFleetConfig
	}{
		{"zero count", EOFleetConfig{Count: 0, MinAltitudeKm: 475, MaxAltitudeKm: 525, Epoch: testEpoch}},
		{"inverted band", EOFleetConfig{Count: 5, MinAltitudeKm: 525, MaxAltitudeKm: 475, Epoch: testEpoch}},
		{"zero epoch", EOFleetConfig{Count: 5, MinAltitudeKm: 475, MaxAltitudeKm: 525}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SyntheticEOFleet(tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSSOInclinationMonotonic(t *testing.T) {
	// SSO inclination grows with altitude in the LEO band.
	last := 0.0
	for alt := 400.0; alt <= 800; alt += 50 {
		inc := ssoInclinationDeg(alt)
		if inc <= last {
			t.Fatalf("SSO inclination not increasing at %v km: %v <= %v", alt, inc, last)
		}
		last = inc
	}
}
