package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spacebooking/internal/geo"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func circular550(inclDeg, raanDeg, maDeg float64) Elements {
	return Elements{
		SemiMajorKm:    geo.EarthRadiusKm + 550,
		Eccentricity:   0,
		InclinationDeg: inclDeg,
		RAANDeg:        raanDeg,
		ArgPerigeeDeg:  0,
		MeanAnomalyDeg: maDeg,
		Epoch:          testEpoch,
	}
}

func TestElementsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Elements)
		wantErr bool
	}{
		{"valid", func(e *Elements) {}, false},
		{"inside earth", func(e *Elements) { e.SemiMajorKm = 6000 }, true},
		{"negative ecc", func(e *Elements) { e.Eccentricity = -0.1 }, true},
		{"hyperbolic", func(e *Elements) { e.Eccentricity = 1.0 }, true},
		{"bad inclination", func(e *Elements) { e.InclinationDeg = 181 }, true},
		{"zero epoch", func(e *Elements) { e.Epoch = time.Time{} }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := circular550(53, 0, 0)
			tt.mutate(&e)
			if err := e.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPeriodAt550km(t *testing.T) {
	e := circular550(53, 0, 0)
	// The paper states 96 minutes for the 550 km shell.
	gotMin := e.PeriodSeconds() / 60
	if math.Abs(gotMin-95.6) > 0.5 {
		t.Errorf("period = %.2f min, want ~95.6", gotMin)
	}
}

func TestPositionRadiusConstantForCircularOrbit(t *testing.T) {
	e := circular550(53, 40, 10)
	want := e.SemiMajorKm
	for i := 0; i < 200; i++ {
		p := e.PositionECI(testEpoch.Add(time.Duration(i) * time.Minute))
		if math.Abs(p.Norm()-want) > 1e-6 {
			t.Fatalf("slot %d: radius %.9f, want %.9f", i, p.Norm(), want)
		}
	}
}

func TestPositionPeriodicity(t *testing.T) {
	e := circular550(53, 120, 77)
	p0 := e.PositionECI(testEpoch)
	period := time.Duration(e.PeriodSeconds() * float64(time.Second))
	p1 := e.PositionECI(testEpoch.Add(period))
	if p0.DistanceTo(p1) > 0.01 {
		t.Errorf("position after one period differs by %.4f km", p0.DistanceTo(p1))
	}
}

func TestPositionInclinationBoundsLatitude(t *testing.T) {
	// A 53° inclined orbit never exceeds |z| = a*sin(53°).
	e := circular550(53, 0, 0)
	maxZ := e.SemiMajorKm * math.Sin(geo.DegToRad(53))
	for i := 0; i < 400; i++ {
		p := e.PositionECI(testEpoch.Add(time.Duration(i) * time.Minute))
		if math.Abs(p.Z) > maxZ+1e-6 {
			t.Fatalf("slot %d: |z| = %v exceeds max %v", i, math.Abs(p.Z), maxZ)
		}
	}
}

func TestEquatorialOrbitStaysInPlane(t *testing.T) {
	e := circular550(0, 0, 0)
	for i := 0; i < 100; i++ {
		p := e.PositionECI(testEpoch.Add(time.Duration(i) * time.Minute))
		if math.Abs(p.Z) > 1e-9 {
			t.Fatalf("equatorial orbit left the plane: z = %v", p.Z)
		}
	}
}

func TestSolveKeplerIdentity(t *testing.T) {
	f := func(m, e float64) bool {
		mean := math.Mod(math.Abs(m), 2*math.Pi)
		ecc := math.Mod(math.Abs(e), 0.9)
		if math.IsNaN(mean) || math.IsNaN(ecc) {
			return true
		}
		ea := solveKepler(mean, ecc)
		back := ea - ecc*math.Sin(ea)
		return math.Abs(back-mean) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEccentricOrbitApsides(t *testing.T) {
	e := Elements{
		SemiMajorKm:    8000,
		Eccentricity:   0.2,
		InclinationDeg: 30,
		Epoch:          testEpoch,
	}
	// Sample one period finely and check min/max radii against a(1±e).
	period := e.PeriodSeconds()
	minR, maxR := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		p := e.PositionECI(testEpoch.Add(time.Duration(float64(i) / 2000 * period * float64(time.Second))))
		r := p.Norm()
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if math.Abs(minR-8000*0.8) > 1 {
		t.Errorf("perigee = %v, want %v", minR, 8000*0.8)
	}
	if math.Abs(maxR-8000*1.2) > 1 {
		t.Errorf("apogee = %v, want %v", maxR, 8000*1.2)
	}
}

func TestVelocityMagnitudeCircular(t *testing.T) {
	e := circular550(53, 0, 0)
	v := e.VelocityECI(testEpoch.Add(17 * time.Minute))
	want := math.Sqrt(geo.EarthMuKm3S2 / e.SemiMajorKm) // vis-viva, circular
	if math.Abs(v.Norm()-want) > 0.01 {
		t.Errorf("speed = %v km/s, want %v", v.Norm(), want)
	}
}

func TestVelocityPerpendicularToRadiusCircular(t *testing.T) {
	e := circular550(53, 10, 20)
	at := testEpoch.Add(31 * time.Minute)
	p := e.PositionECI(at)
	v := e.VelocityECI(at)
	cosAngle := p.Dot(v) / (p.Norm() * v.Norm())
	if math.Abs(cosAngle) > 1e-3 {
		t.Errorf("radius-velocity angle cosine = %v, want ~0", cosAngle)
	}
}

// Property: two-body propagation conserves specific orbital energy
// (vis-viva): v^2/2 - mu/r == -mu/(2a) at every sampled time.
func TestVisVivaEnergyConserved(t *testing.T) {
	orbits := []Elements{
		circular550(53, 10, 20),
		{SemiMajorKm: 7500, Eccentricity: 0.1, InclinationDeg: 63.4, RAANDeg: 45, ArgPerigeeDeg: 90, MeanAnomalyDeg: 12, Epoch: testEpoch},
		{SemiMajorKm: 9000, Eccentricity: 0.3, InclinationDeg: 28.5, Epoch: testEpoch},
	}
	for oi, e := range orbits {
		want := -geo.EarthMuKm3S2 / (2 * e.SemiMajorKm)
		for i := 0; i < 50; i++ {
			at := testEpoch.Add(time.Duration(i) * 7 * time.Minute)
			r := e.PositionECI(at).Norm()
			v := e.VelocityECI(at).Norm()
			got := v*v/2 - geo.EarthMuKm3S2/r
			// The finite-difference velocity carries ~1e-6 relative error.
			if math.Abs(got-want) > 5e-3*math.Abs(want) {
				t.Fatalf("orbit %d sample %d: energy %v, want %v", oi, i, got, want)
			}
		}
	}
}

// Property: angular momentum direction is fixed (orbital plane does not
// precess under two-body dynamics).
func TestAngularMomentumDirectionFixed(t *testing.T) {
	e := Elements{SemiMajorKm: 7000, Eccentricity: 0.05, InclinationDeg: 75, RAANDeg: 120, Epoch: testEpoch}
	h0 := e.PositionECI(testEpoch).Cross(e.VelocityECI(testEpoch)).Unit()
	for i := 1; i < 30; i++ {
		at := testEpoch.Add(time.Duration(i) * 11 * time.Minute)
		h := e.PositionECI(at).Cross(e.VelocityECI(at)).Unit()
		if h.Sub(h0).Norm() > 1e-4 {
			t.Fatalf("sample %d: orbital plane drifted by %v", i, h.Sub(h0).Norm())
		}
	}
}
