package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Record{Kind: KindRunInfo, Algorithm: "CEAR", Scale: "small", Rate: 2, Seed: 101})
	w.Emit(Record{Kind: KindDecision, RequestID: 1, Arrival: 5, Start: 5, End: 9,
		RateMbps: 1250, Valuation: 1e8, Accepted: true, Price: 42.5, TotalHops: 12})
	w.Emit(Record{Kind: KindDecision, RequestID: 2, Accepted: false, Reason: "no feasible path at slot 6"})
	w.Emit(Record{Kind: KindSnapshot, Slot: 10, Depleted: 3, Congested: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].Kind != KindRunInfo || records[0].Algorithm != "CEAR" {
		t.Errorf("run info = %+v", records[0])
	}
	if records[1].Price != 42.5 || !records[1].Accepted || records[1].TotalHops != 12 {
		t.Errorf("decision = %+v", records[1])
	}
	if records[2].Accepted || records[2].Reason == "" {
		t.Errorf("rejection = %+v", records[2])
	}
	if records[3].Depleted != 3 {
		t.Errorf("snapshot = %+v", records[3])
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON should error")
	}
	records, err := Read(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Errorf("blank lines produced %d records", len(records))
	}
}

func TestWriterErrorSticks(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < 100; i++ {
		w.Emit(Record{Kind: KindDecision, RequestID: i})
	}
	if err := w.Flush(); err == nil {
		t.Error("expected sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSummarize(t *testing.T) {
	records := []Record{
		{Kind: KindRunInfo},
		{Kind: KindDecision, Accepted: true, Price: 10},
		{Kind: KindDecision, Accepted: true, Price: 5},
		{Kind: KindDecision, Accepted: false, Reason: "no-path"},
		{Kind: KindDecision, Accepted: false, Reason: "no-path"},
		{Kind: KindDecision, Accepted: false, Reason: "priced-out"},
		{Kind: KindSnapshot, Slot: 1},
	}
	s := Summarize(records)
	if s.Total != 5 || s.Accepted != 2 || s.Rejected != 3 {
		t.Errorf("summary counts = %+v", s)
	}
	if s.Revenue != 15 {
		t.Errorf("revenue = %v", s.Revenue)
	}
	if s.ByReason["no-path"] != 2 || s.ByReason["priced-out"] != 1 {
		t.Errorf("by reason = %v", s.ByReason)
	}
	if s.Snapshots != 1 {
		t.Errorf("snapshots = %d", s.Snapshots)
	}
}
