package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Record{Kind: KindRunInfo, Algorithm: "CEAR", Scale: "small", Rate: 2, Seed: 101})
	w.Emit(Record{Kind: KindDecision, RequestID: 1, Arrival: 5, Start: 5, End: 9,
		RateMbps: 1250, Valuation: 1e8, Accepted: true, Price: 42.5, TotalHops: 12})
	w.Emit(Record{Kind: KindDecision, RequestID: 2, Accepted: false, Reason: "no feasible path at slot 6"})
	w.Emit(Record{Kind: KindSnapshot, Slot: 10, Depleted: 3, Congested: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].Kind != KindRunInfo || records[0].Algorithm != "CEAR" {
		t.Errorf("run info = %+v", records[0])
	}
	if records[1].Price != 42.5 || !records[1].Accepted || records[1].TotalHops != 12 {
		t.Errorf("decision = %+v", records[1])
	}
	if records[2].Accepted || records[2].Reason == "" {
		t.Errorf("rejection = %+v", records[2])
	}
	if records[3].Depleted != 3 {
		t.Errorf("snapshot = %+v", records[3])
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON should error")
	}
	records, err := Read(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Errorf("blank lines produced %d records", len(records))
	}
}

func TestWriterErrorSticks(t *testing.T) {
	w := NewWriter(failWriter{})
	var first error
	for i := 0; i < 200; i++ {
		err := w.Emit(Record{Kind: KindDecision, RequestID: i})
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		} else if err != first {
			t.Fatalf("later Emit returned a different error: %v vs %v", err, first)
		}
	}
	if first == nil {
		t.Fatal("Emit never surfaced the write error")
	}
	if err := w.Err(); err != first {
		t.Errorf("Err() = %v, want the sticky %v", err, first)
	}
	if err := w.Flush(); err != first {
		t.Errorf("Flush() = %v, want the sticky %v", err, first)
	}
	if err := w.Close(); err != first {
		t.Errorf("Close() = %v, want the sticky %v", err, first)
	}
}

func TestWriterEmitSurfacesBufferedError(t *testing.T) {
	// A small record fits bufio's buffer, so the first Emits succeed; the
	// error must still surface from a later Emit or at the latest Close —
	// a caller checking only Close sees the mid-run failure.
	w := NewWriter(failWriter{})
	w.Emit(Record{Kind: KindSnapshot, Slot: 1})
	if err := w.Close(); err == nil {
		t.Error("Close swallowed the write error")
	}
}

func TestWriterCloseClosesUnderlying(t *testing.T) {
	var buf bytes.Buffer
	cw := &closeWriter{w: &buf}
	w := NewWriter(cw)
	if err := w.Emit(Record{Kind: KindSnapshot, Slot: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !cw.closed {
		t.Error("Close did not close the underlying writer")
	}
	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Slot != 3 {
		t.Errorf("records after Close = %+v", records)
	}
}

func TestWriterCloseReturnsCloseError(t *testing.T) {
	w := NewWriter(&closeWriter{w: &bytes.Buffer{}, closeErr: errors.New("fsync lost")})
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "fsync lost") {
		t.Errorf("Close() = %v, want the underlying close error", err)
	}
}

// TestWriterShortWrite pins the short-write path: an underlying writer
// that accepts only part of each buffer (a filling disk, a throttled
// pipe) must surface io.ErrShortWrite through the usual sticky-error
// contract rather than silently dropping the tail of the trace.
func TestWriterShortWrite(t *testing.T) {
	w := NewWriter(shortWriter{})
	var err error
	for i := 0; i < 5000 && err == nil; i++ {
		err = w.Emit(Record{Kind: KindRequest, RequestID: i, Class: "web"})
	}
	if err == nil {
		err = w.Flush()
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write surfaced as %v, want io.ErrShortWrite", err)
	}
	if got := w.Err(); !errors.Is(got, io.ErrShortWrite) {
		t.Errorf("Err() = %v, want the sticky short-write error", got)
	}
	if got := w.Close(); got != w.Err() {
		t.Errorf("Close() = %v, want the sticky %v", got, w.Err())
	}
}

// TestWriterCloseAfterErrorStillClosesUnderlying: once a write error is
// sticky, Close must still close the underlying file — returning the
// original error, not leaking the descriptor.
func TestWriterCloseAfterErrorStillClosesUnderlying(t *testing.T) {
	cw := &closeWriter{w: failWriter{}}
	w := NewWriter(cw)
	w.Emit(Record{Kind: KindSnapshot, Slot: 1})
	err := w.Close()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close() = %v, want the underlying write error", err)
	}
	if !cw.closed {
		t.Error("Close left the underlying writer open after a write error")
	}
	if w.Err() != err {
		t.Errorf("Err() = %v, want the error Close returned", w.Err())
	}
}

// TestRequestRecordRoundTrip pins the KindRequest wire format the replay
// path depends on: endpoints, class, spec name and the float demand
// fields must all survive a JSONL round trip exactly (Go's shortest-
// representation float marshaling makes this lossless).
func TestRequestRecordRoundTrip(t *testing.T) {
	in := []Record{
		{Kind: KindRunInfo, Algorithm: "CEAR", Scale: "small", Rate: 2, Seed: 101, Spec: "flash-crowd"},
		{Kind: KindRequest, RequestID: 1, Arrival: 3, Start: 4, End: 9,
			RateMbps: 1250.0625, Valuation: 2.3e9,
			SrcKind: "ground", SrcIndex: 2, DstKind: "space", DstIndex: 17, Class: "eo"},
		{Kind: KindRequest, RequestID: 2, RateMbps: 0.1, SrcKind: "ground", DstKind: "ground", DstIndex: 1},
		{Kind: KindDecision, RequestID: 1, Accepted: true, Price: 12.5},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range in {
		if err := w.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", in, out)
	}
	s := Summarize(out)
	if s.Requests != 2 {
		t.Errorf("Summarize counted %d request records, want 2", s.Requests)
	}
	if s.Total != 1 || s.Accepted != 1 {
		t.Errorf("request records leaked into decision counts: %+v", s)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// shortWriter accepts half of every non-trivial write and reports no
// error, which bufio must turn into io.ErrShortWrite.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) {
	if len(p) < 2 {
		return len(p), nil
	}
	return len(p) / 2, nil
}

type closeWriter struct {
	w        io.Writer
	closed   bool
	closeErr error
}

func (c *closeWriter) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *closeWriter) Close() error                { c.closed = true; return c.closeErr }

func TestSummarize(t *testing.T) {
	records := []Record{
		{Kind: KindRunInfo},
		{Kind: KindDecision, Accepted: true, Price: 10},
		{Kind: KindDecision, Accepted: true, Price: 5},
		{Kind: KindDecision, Accepted: false, Reason: "no-path"},
		{Kind: KindDecision, Accepted: false, Reason: "no-path"},
		{Kind: KindDecision, Accepted: false, Reason: "priced-out"},
		{Kind: KindSnapshot, Slot: 1},
	}
	s := Summarize(records)
	if s.Total != 5 || s.Accepted != 2 || s.Rejected != 3 {
		t.Errorf("summary counts = %+v", s)
	}
	if s.Revenue != 15 {
		t.Errorf("revenue = %v", s.Revenue)
	}
	if s.ByReason["no-path"] != 2 || s.ByReason["priced-out"] != 1 {
		t.Errorf("by reason = %v", s.ByReason)
	}
	if s.Snapshots != 1 {
		t.Errorf("snapshots = %d", s.Snapshots)
	}
}
