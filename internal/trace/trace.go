// Package trace provides a structured event log for simulation runs:
// one JSON line per admission decision plus periodic network snapshots.
// Operators (and the repository's own debugging sessions) use it to
// answer questions the aggregate metrics cannot — "which pair's requests
// were priced out around minute 200?", "which satellites carried that
// burst?".
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind labels a trace record.
type EventKind string

// Record kinds.
const (
	// KindDecision records one request's admission outcome.
	KindDecision EventKind = "decision"
	// KindSnapshot records periodic network health.
	KindSnapshot EventKind = "snapshot"
	// KindRunInfo records run metadata (first line of every trace).
	KindRunInfo EventKind = "run_info"
	// KindRequest records one admitted request's full input (endpoints,
	// window, demand, valuation, class) — the record replay reconstructs
	// the stream from. Emitted before the matching KindDecision when a
	// run records with sim.RunConfig.RecordRequests.
	KindRequest EventKind = "request"
)

// Record is one trace line. Fields are a union across kinds; unused
// fields are omitted from the JSON.
type Record struct {
	Kind EventKind `json:"kind"`

	// Run metadata (KindRunInfo).
	Algorithm string  `json:"algorithm,omitempty"`
	Scale     string  `json:"scale,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// Spec names the scenario spec that drove the run (empty for the
	// flat paper workload); replays echo the recorded name.
	Spec string `json:"spec,omitempty"`

	// Decision fields (KindDecision), shared by KindRequest.
	RequestID int     `json:"request_id,omitempty"`
	Arrival   int     `json:"arrival_slot,omitempty"`
	Start     int     `json:"start_slot,omitempty"`
	End       int     `json:"end_slot,omitempty"`
	RateMbps  float64 `json:"rate_mbps,omitempty"`
	Valuation float64 `json:"valuation,omitempty"`
	Accepted  bool    `json:"accepted"`
	Price     float64 `json:"price,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	TotalHops int     `json:"total_hops,omitempty"`

	// Request fields (KindRequest): the endpoints and class that,
	// together with the shared window/demand fields above, reconstruct
	// the exact workload.Request for replay. Kinds are "ground" or
	// "space"; a zero index is omitted from the JSON and recovered as 0
	// on read.
	SrcKind  string `json:"src_kind,omitempty"`
	SrcIndex int    `json:"src_index,omitempty"`
	DstKind  string `json:"dst_kind,omitempty"`
	DstIndex int    `json:"dst_index,omitempty"`
	Class    string `json:"class,omitempty"`

	// Snapshot fields (KindSnapshot).
	Slot      int `json:"slot,omitempty"`
	Depleted  int `json:"depleted,omitempty"`
	Congested int `json:"congested,omitempty"`
}

// Writer emits trace records as JSON lines. It is safe for sequential
// use within one run; a mutex guards against accidental sharing.
//
// Errors are never dropped: Emit returns the write error immediately,
// the first error is sticky (later Emits return it unchanged without
// writing), and Flush/Close resurface it — so a caller that only
// checks Close still sees a mid-run disk-full.
type Writer struct {
	mu    sync.Mutex
	under io.Writer
	buf   *bufio.Writer
	err   error
}

// NewWriter wraps an io.Writer (file, pipe, buffer). If the writer is
// also an io.Closer, Close closes it after the final flush.
func NewWriter(w io.Writer) *Writer {
	return &Writer{under: w, buf: bufio.NewWriter(w)}
}

// Emit writes one record and returns any marshal or write error. After
// the first error all writes are no-ops returning that same error,
// which also resurfaces from Flush and Close.
func (w *Writer) Emit(r Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	data, err := json.Marshal(r)
	if err != nil {
		w.err = fmt.Errorf("trace: marshal: %w", err)
		return w.err
	}
	if _, err := w.buf.Write(data); err != nil {
		w.err = fmt.Errorf("trace: write: %w", err)
		return w.err
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		w.err = fmt.Errorf("trace: write: %w", err)
	}
	return w.err
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.buf.Flush(); err != nil {
		w.err = fmt.Errorf("trace: flush: %w", err)
	}
	return w.err
}

// Close flushes the buffer and closes the underlying writer (when it is
// an io.Closer), returning the first error from any stage. The sink is
// unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	flushErr := w.flushLocked()
	if c, ok := w.under.(io.Closer); ok {
		if err := c.Close(); err != nil && flushErr == nil {
			flushErr = fmt.Errorf("trace: close: %w", err)
			w.err = flushErr
		}
	}
	return flushErr
}

// Read parses a trace stream back into records, e.g. for analysis
// tooling and the package's own tests.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// Summary aggregates a decision trace for quick inspection.
type Summary struct {
	Total     int
	Accepted  int
	Rejected  int
	Revenue   float64
	ByReason  map[string]int
	Snapshots int
	// Requests counts KindRequest records (non-zero only for traces
	// recorded with request replay enabled).
	Requests int
}

// Summarize folds a record stream into counts.
func Summarize(records []Record) Summary {
	s := Summary{ByReason: make(map[string]int)}
	for _, r := range records {
		switch r.Kind {
		case KindDecision:
			s.Total++
			if r.Accepted {
				s.Accepted++
				s.Revenue += r.Price
			} else {
				s.Rejected++
				s.ByReason[r.Reason]++
			}
		case KindSnapshot:
			s.Snapshots++
		case KindRequest:
			s.Requests++
		}
	}
	return s
}
