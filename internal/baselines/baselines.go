// Package baselines implements the four comparison algorithms of §VI-A:
//
//   - SSP  — Single Shortest Path: min-hop routing, no resource awareness.
//   - ECARS — linear weighted routing over link congestion and satellite
//     battery level (congestion factor 0.3, energy factor 0.35).
//   - ERU  — ECARS plus link pruning once a satellite's battery discharge
//     exceeds an energy threshold (depth-of-discharge protection).
//   - ERA  — ECARS plus factor re-weighting (0.15/0.7) once the threshold
//     is exceeded, instead of pruning.
//
// None of them performs admission control or pricing: a request is
// accepted whenever a physically feasible path (bandwidth per constraint
// (7b), battery per constraint (7c)) exists in every active slot (§VI-B).
// Unlike CEAR they do not price resources, so they greedily drive
// satellites toward the battery-feasibility edge — producing the
// depleted-satellite counts of Fig. 7.
package baselines

import (
	"fmt"
	"math"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/router"
	"spacebooking/internal/workload"
)

// WeightOptions holds the linear-weight parameters shared by ECARS, ERU
// and ERA, with the paper's defaults.
type WeightOptions struct {
	// CongestionFactor and EnergyFactor weight link utilization and
	// battery depletion in the path metric (0.3 and 0.35 in §VI-A).
	CongestionFactor float64
	EnergyFactor     float64
	// OverCongestionFactor and OverEnergyFactor replace the factors for
	// satellites beyond the energy threshold (ERA only; 0.15 and 0.7).
	OverCongestionFactor float64
	OverEnergyFactor     float64
	// EnergyThresholdWMinPerMbit is the depth-of-discharge trigger of
	// ERU/ERA (5e-6 W·min/Mbit in §VI-A). A satellite is over-threshold
	// in a slot when its battery deficit exceeds this unit value scaled
	// by the per-slot ISL capacity; see DESIGN.md substitution #5.
	EnergyThresholdWMinPerMbit float64
}

// DefaultWeightOptions returns the paper's parameter values.
func DefaultWeightOptions() WeightOptions {
	return WeightOptions{
		CongestionFactor:           0.3,
		EnergyFactor:               0.35,
		OverCongestionFactor:       0.15,
		OverEnergyFactor:           0.7,
		EnergyThresholdWMinPerMbit: 5e-6,
	}
}

// Validate reports invalid weight settings.
func (o WeightOptions) Validate() error {
	if o.CongestionFactor < 0 || o.EnergyFactor < 0 ||
		o.CongestionFactor+o.EnergyFactor > 1 {
		return fmt.Errorf("baselines: congestion/energy factors (%v, %v) must be non-negative and sum to at most 1",
			o.CongestionFactor, o.EnergyFactor)
	}
	if o.OverCongestionFactor < 0 || o.OverEnergyFactor < 0 ||
		o.OverCongestionFactor+o.OverEnergyFactor > 1 {
		return fmt.Errorf("baselines: over-threshold factors (%v, %v) invalid",
			o.OverCongestionFactor, o.OverEnergyFactor)
	}
	if o.EnergyThresholdWMinPerMbit <= 0 {
		return fmt.Errorf("baselines: energy threshold must be positive, got %v", o.EnergyThresholdWMinPerMbit)
	}
	return nil
}

// mode selects the concrete baseline behaviour.
type mode int

const (
	modeSSP mode = iota + 1
	modeECARS
	modeERU
	modeERA
)

// Baseline is a feasibility-only admission algorithm with a pluggable
// path metric.
type Baseline struct {
	state *netstate.State
	mode  mode
	opts  WeightOptions
	// thresholdJ is the precomputed over-threshold deficit in joules.
	thresholdJ float64

	// Routing fast-path state, mirroring core.CEAR: the pooled search
	// scratch, a reusable consumption buffer, and cost/transit functions
	// bound once at construction (method values reading curSlot/curRate,
	// so the slot loop allocates no closures).
	scratch   *netstate.SearchScratch
	consBuf   []netstate.Consumption
	generic   bool
	edgeFn    netstate.EdgeCostFunc
	transitFn graph.TransitCostFunc
	curSlot   int
	curRate   float64
	slotSec   float64
	ecfg      netstate.EnergyConfig
	numSats   int
}

var _ router.Algorithm = (*Baseline)(nil)

func newBaseline(state *netstate.State, m mode, opts WeightOptions) (*Baseline, error) {
	if state == nil {
		return nil, fmt.Errorf("baselines: nil state")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := state.Provider().Config()
	// θ [W·min/Mbit] × 60 [J per W·min] × per-slot ISL capacity [Mbit].
	thresholdJ := opts.EnergyThresholdWMinPerMbit * 60 * cfg.ISLCapacityMbps * cfg.SlotSeconds
	b := &Baseline{
		state:      state,
		mode:       m,
		opts:       opts,
		thresholdJ: thresholdJ,
		scratch:    netstate.NewSearchScratch(),
		slotSec:    cfg.SlotSeconds,
		ecfg:       state.EnergyConfig(),
		numSats:    state.Provider().NumSats(),
	}
	b.edgeFn = b.edgeWeight
	b.transitFn = b.transitWeight
	return b, nil
}

// SetGenericSearch routes this baseline through the reference
// implementation (netstate.View plus the generic graph searches)
// instead of the flat fast path. The two produce identical decisions.
func (b *Baseline) SetGenericSearch(generic bool) { b.generic = generic }

// SetScratch replaces the baseline's private search scratch with a
// shared (e.g. pooled) one. Nil is ignored.
func (b *Baseline) SetScratch(sc *netstate.SearchScratch) {
	if sc != nil {
		b.scratch = sc
	}
}

// NewSSP builds the Single Shortest Path baseline.
func NewSSP(state *netstate.State) (*Baseline, error) {
	return newBaseline(state, modeSSP, DefaultWeightOptions())
}

// NewECARS builds the Energy and Capacity Aware Routing baseline.
func NewECARS(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeECARS, opts)
}

// NewERU builds the Energy Routing Pruning baseline.
func NewERU(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeERU, opts)
}

// NewERA builds the Energy Routing Penalty baseline.
func NewERA(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeERA, opts)
}

// Name implements router.Algorithm.
func (b *Baseline) Name() string {
	switch b.mode {
	case modeSSP:
		return "SSP"
	case modeECARS:
		return "ECARS"
	case modeERU:
		return "ERU"
	case modeERA:
		return "ERA"
	default:
		return "UNKNOWN"
	}
}

// State exposes the resource state for metric collection.
func (b *Baseline) State() *netstate.State { return b.state }

// overThreshold reports whether a satellite's battery discharge exceeds
// the ERU/ERA trigger in the slot.
func (b *Baseline) overThreshold(sat, slot int) bool {
	return b.state.Battery(sat).DeficitAt(slot) > b.thresholdJ
}

// hopBias is the residual weight that keeps paths short: what remains of
// the unit hop weight after the congestion and energy factors.
func (o WeightOptions) hopBias() float64 {
	return 1 - o.CongestionFactor - o.EnergyFactor
}

// transitWeight is every baseline's node transit cost for the current
// (curSlot, curRate): the physical battery-feasibility mask (constraint
// (7c)) composed with the mode's energy weight. Bound once as
// b.transitFn. No algorithm may route through a satellite whose battery
// cannot carry the traffic; ERU additionally prunes over-threshold
// satellites outright, checked before the mask (so its deficit-walk
// counts match the original closure composition).
func (b *Baseline) transitWeight(node int, in, out graph.EdgeClass) float64 {
	if b.mode == modeERU && b.overThreshold(node, b.curSlot) {
		return math.Inf(1)
	}
	joules := b.ecfg.TransitEnergyJ(in, out, b.curRate, b.slotSec)
	if !b.state.Battery(node).Feasible(b.curSlot, joules) {
		return math.Inf(1)
	}
	switch b.mode {
	case modeSSP:
		// Min-hop: the physical mask only.
		return 0
	case modeERA:
		ef := b.opts.EnergyFactor
		if b.overThreshold(node, b.curSlot) {
			ef = b.opts.OverEnergyFactor
		}
		return ef * b.state.Battery(node).UtilizationAt(b.curSlot)
	default: // ECARS and ERU share the linear energy weight.
		return b.opts.EnergyFactor * b.state.Battery(node).UtilizationAt(b.curSlot)
	}
}

// edgeWeight is the per-edge cost of this baseline for the current
// slot. Bound once as b.edgeFn.
func (b *Baseline) edgeWeight(key netstate.LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
	switch b.mode {
	case modeSSP:
		return 1
	case modeERA:
		cf, bias := b.opts.CongestionFactor, b.opts.hopBias()
		if from := key.From(); from < b.numSats && b.overThreshold(from, b.curSlot) {
			cf = b.opts.OverCongestionFactor
			bias = 1 - b.opts.OverCongestionFactor - b.opts.OverEnergyFactor
		}
		return cf*utilization + bias
	default: // ECARS and ERU share the linear edge weight.
		return b.opts.CongestionFactor*utilization + b.opts.hopBias()
	}
}

// Handle implements the feasibility-only admission shared by all
// baselines: find this algorithm's path in every active slot; if all
// exist, reserve bandwidth and consume (clamped) energy; otherwise
// reject without side effects.
func (b *Baseline) Handle(req workload.Request) (router.Decision, error) {
	if err := req.Validate(b.state.Provider().Horizon()); err != nil {
		return router.Decision{}, fmt.Errorf("baselines: %w", err)
	}

	plan := router.Plan{Paths: make([]router.SlotPath, 0, req.DurationSlots())}

	// Commit-as-you-go inside a transaction, mirroring CEAR: each slot's
	// search observes the request's own earlier consumption, and any
	// failure rolls the whole request back.
	txn := b.state.Begin()
	for slot := req.StartSlot; slot <= req.EndSlot; slot++ {
		b.curRate = req.RateAt(slot)
		b.curSlot = slot

		var path graph.Path
		var ok bool
		var sv netstate.SlotView
		var consumptions []netstate.Consumption
		if b.generic {
			view, err := netstate.NewView(b.state, slot, req.Src, req.Dst, b.curRate, b.edgeFn)
			if err != nil {
				txn.Rollback()
				return router.Decision{}, fmt.Errorf("baselines: request %d slot %d: %w", req.ID, slot, err)
			}
			path, ok = graph.ShortestPath(view, view.SrcNode(), view.DstNode(), b.transitFn)
			if ok {
				consumptions = view.PathConsumptions(path)
			}
			sv = view
		} else {
			view, err := b.scratch.BuildView(b.state, slot, req.Src, req.Dst, b.curRate, b.edgeFn)
			if err != nil {
				txn.Rollback()
				return router.Decision{}, fmt.Errorf("baselines: request %d slot %d: %w", req.ID, slot, err)
			}
			// Baselines do no admission pricing, so there is no budget
			// to prune against.
			path, ok, _ = view.Search(b.transitFn, 0, 0, math.Inf(1))
			if ok {
				b.consBuf = view.AppendConsumptions(path, b.consBuf)
				consumptions = b.consBuf
			}
			sv = view
		}
		if !ok {
			txn.Rollback()
			return router.Decision{
				Reason: fmt.Sprintf("no feasible path at slot %d", slot),
			}, nil
		}
		plan.Paths = append(plan.Paths, router.SlotPath{Slot: slot, Path: path})

		// A path can transit one satellite in two roles whose energy
		// draws are individually feasible but jointly not (the transit
		// mask checks them independently); trial the slot as a whole.
		if err := b.state.TrialConsume(consumptions); err != nil {
			txn.Rollback()
			return router.Decision{
				Reason: fmt.Sprintf("energy infeasible at slot %d: %v", slot, err),
			}, nil
		}
		if err := txn.ReservePath(sv, path); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("baselines: request %d commit: %w", req.ID, err)
		}
		if err := txn.Consume(consumptions); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("baselines: request %d energy commit: %w", req.ID, err)
		}
	}

	if err := txn.Commit(); err != nil {
		return router.Decision{
			Reason: fmt.Sprintf("cross-shard conflict: %v", err),
		}, nil
	}
	return router.Decision{Accepted: true, Plan: plan}, nil
}
