// Package baselines implements the four comparison algorithms of §VI-A:
//
//   - SSP  — Single Shortest Path: min-hop routing, no resource awareness.
//   - ECARS — linear weighted routing over link congestion and satellite
//     battery level (congestion factor 0.3, energy factor 0.35).
//   - ERU  — ECARS plus link pruning once a satellite's battery discharge
//     exceeds an energy threshold (depth-of-discharge protection).
//   - ERA  — ECARS plus factor re-weighting (0.15/0.7) once the threshold
//     is exceeded, instead of pruning.
//
// None of them performs admission control or pricing: a request is
// accepted whenever a physically feasible path (bandwidth per constraint
// (7b), battery per constraint (7c)) exists in every active slot (§VI-B).
// Unlike CEAR they do not price resources, so they greedily drive
// satellites toward the battery-feasibility edge — producing the
// depleted-satellite counts of Fig. 7.
package baselines

import (
	"fmt"
	"math"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/router"
	"spacebooking/internal/workload"
)

// WeightOptions holds the linear-weight parameters shared by ECARS, ERU
// and ERA, with the paper's defaults.
type WeightOptions struct {
	// CongestionFactor and EnergyFactor weight link utilization and
	// battery depletion in the path metric (0.3 and 0.35 in §VI-A).
	CongestionFactor float64
	EnergyFactor     float64
	// OverCongestionFactor and OverEnergyFactor replace the factors for
	// satellites beyond the energy threshold (ERA only; 0.15 and 0.7).
	OverCongestionFactor float64
	OverEnergyFactor     float64
	// EnergyThresholdWMinPerMbit is the depth-of-discharge trigger of
	// ERU/ERA (5e-6 W·min/Mbit in §VI-A). A satellite is over-threshold
	// in a slot when its battery deficit exceeds this unit value scaled
	// by the per-slot ISL capacity; see DESIGN.md substitution #5.
	EnergyThresholdWMinPerMbit float64
}

// DefaultWeightOptions returns the paper's parameter values.
func DefaultWeightOptions() WeightOptions {
	return WeightOptions{
		CongestionFactor:           0.3,
		EnergyFactor:               0.35,
		OverCongestionFactor:       0.15,
		OverEnergyFactor:           0.7,
		EnergyThresholdWMinPerMbit: 5e-6,
	}
}

// Validate reports invalid weight settings.
func (o WeightOptions) Validate() error {
	if o.CongestionFactor < 0 || o.EnergyFactor < 0 ||
		o.CongestionFactor+o.EnergyFactor > 1 {
		return fmt.Errorf("baselines: congestion/energy factors (%v, %v) must be non-negative and sum to at most 1",
			o.CongestionFactor, o.EnergyFactor)
	}
	if o.OverCongestionFactor < 0 || o.OverEnergyFactor < 0 ||
		o.OverCongestionFactor+o.OverEnergyFactor > 1 {
		return fmt.Errorf("baselines: over-threshold factors (%v, %v) invalid",
			o.OverCongestionFactor, o.OverEnergyFactor)
	}
	if o.EnergyThresholdWMinPerMbit <= 0 {
		return fmt.Errorf("baselines: energy threshold must be positive, got %v", o.EnergyThresholdWMinPerMbit)
	}
	return nil
}

// mode selects the concrete baseline behaviour.
type mode int

const (
	modeSSP mode = iota + 1
	modeECARS
	modeERU
	modeERA
)

// Baseline is a feasibility-only admission algorithm with a pluggable
// path metric.
type Baseline struct {
	state *netstate.State
	mode  mode
	opts  WeightOptions
	// thresholdJ is the precomputed over-threshold deficit in joules.
	thresholdJ float64
}

var _ router.Algorithm = (*Baseline)(nil)

func newBaseline(state *netstate.State, m mode, opts WeightOptions) (*Baseline, error) {
	if state == nil {
		return nil, fmt.Errorf("baselines: nil state")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := state.Provider().Config()
	// θ [W·min/Mbit] × 60 [J per W·min] × per-slot ISL capacity [Mbit].
	thresholdJ := opts.EnergyThresholdWMinPerMbit * 60 * cfg.ISLCapacityMbps * cfg.SlotSeconds
	return &Baseline{state: state, mode: m, opts: opts, thresholdJ: thresholdJ}, nil
}

// NewSSP builds the Single Shortest Path baseline.
func NewSSP(state *netstate.State) (*Baseline, error) {
	return newBaseline(state, modeSSP, DefaultWeightOptions())
}

// NewECARS builds the Energy and Capacity Aware Routing baseline.
func NewECARS(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeECARS, opts)
}

// NewERU builds the Energy Routing Pruning baseline.
func NewERU(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeERU, opts)
}

// NewERA builds the Energy Routing Penalty baseline.
func NewERA(state *netstate.State, opts WeightOptions) (*Baseline, error) {
	return newBaseline(state, modeERA, opts)
}

// Name implements router.Algorithm.
func (b *Baseline) Name() string {
	switch b.mode {
	case modeSSP:
		return "SSP"
	case modeECARS:
		return "ECARS"
	case modeERU:
		return "ERU"
	case modeERA:
		return "ERA"
	default:
		return "UNKNOWN"
	}
}

// State exposes the resource state for metric collection.
func (b *Baseline) State() *netstate.State { return b.state }

// overThreshold reports whether a satellite's battery discharge exceeds
// the ERU/ERA trigger in the slot.
func (b *Baseline) overThreshold(sat, slot int) bool {
	return b.state.Battery(sat).DeficitAt(slot) > b.thresholdJ
}

// hopBias is the residual weight that keeps paths short: what remains of
// the unit hop weight after the congestion and energy factors.
func (o WeightOptions) hopBias() float64 {
	return 1 - o.CongestionFactor - o.EnergyFactor
}

// feasibleTransit reports +Inf when the satellite physically cannot host
// the role-dependent energy of this slot (constraint (7c)); otherwise it
// returns 0. Every baseline composes its own weight on top of this mask:
// no algorithm may route through a satellite whose battery cannot carry
// the traffic.
func (b *Baseline) feasibleTransit(slot int, rateMbps float64) graph.TransitCostFunc {
	slotSec := b.state.Provider().Config().SlotSeconds
	ecfg := b.state.EnergyConfig()
	return func(node int, in, out graph.EdgeClass) float64 {
		joules := ecfg.TransitEnergyJ(in, out, rateMbps, slotSec)
		if !b.state.Battery(node).Feasible(slot, joules) {
			return math.Inf(1)
		}
		return 0
	}
}

// search finds this baseline's preferred path for one slot's view.
func (b *Baseline) search(view *netstate.View, slot int, rateMbps float64) (graph.Path, bool) {
	mask := b.feasibleTransit(slot, rateMbps)
	var transit graph.TransitCostFunc
	switch b.mode {
	case modeSSP:
		// Min-hop: unit edge costs with the physical mask only.
		transit = mask
	case modeECARS:
		transit = func(node int, in, out graph.EdgeClass) float64 {
			if m := mask(node, in, out); math.IsInf(m, 1) {
				return m
			}
			return b.opts.EnergyFactor * b.state.Battery(node).UtilizationAt(slot)
		}
	case modeERU:
		transit = func(node int, in, out graph.EdgeClass) float64 {
			if b.overThreshold(node, slot) {
				return math.Inf(1)
			}
			if m := mask(node, in, out); math.IsInf(m, 1) {
				return m
			}
			return b.opts.EnergyFactor * b.state.Battery(node).UtilizationAt(slot)
		}
	case modeERA:
		transit = func(node int, in, out graph.EdgeClass) float64 {
			if m := mask(node, in, out); math.IsInf(m, 1) {
				return m
			}
			ef := b.opts.EnergyFactor
			if b.overThreshold(node, slot) {
				ef = b.opts.OverEnergyFactor
			}
			return ef * b.state.Battery(node).UtilizationAt(slot)
		}
	default:
		return graph.Path{}, false
	}
	return graph.ShortestPath(view, view.SrcNode(), view.DstNode(), transit)
}

// edgeCost builds the per-slot edge cost function of this baseline.
func (b *Baseline) edgeCost(slot int) netstate.EdgeCostFunc {
	switch b.mode {
	case modeSSP:
		return func(netstate.LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 }
	case modeERA:
		return func(key netstate.LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
			cf, bias := b.opts.CongestionFactor, b.opts.hopBias()
			if from := key.From(); from < b.state.Provider().NumSats() && b.overThreshold(from, slot) {
				cf = b.opts.OverCongestionFactor
				bias = 1 - b.opts.OverCongestionFactor - b.opts.OverEnergyFactor
			}
			return cf*utilization + bias
		}
	default: // ECARS and ERU share the linear edge weight.
		return func(key netstate.LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
			return b.opts.CongestionFactor*utilization + b.opts.hopBias()
		}
	}
}

// Handle implements the feasibility-only admission shared by all
// baselines: find this algorithm's path in every active slot; if all
// exist, reserve bandwidth and consume (clamped) energy; otherwise
// reject without side effects.
func (b *Baseline) Handle(req workload.Request) (router.Decision, error) {
	if err := req.Validate(b.state.Provider().Horizon()); err != nil {
		return router.Decision{}, fmt.Errorf("baselines: %w", err)
	}

	plan := router.Plan{Paths: make([]router.SlotPath, 0, req.DurationSlots())}

	// Commit-as-you-go inside a transaction, mirroring CEAR: each slot's
	// search observes the request's own earlier consumption, and any
	// failure rolls the whole request back.
	txn := b.state.Begin()
	for slot := req.StartSlot; slot <= req.EndSlot; slot++ {
		demand := req.RateAt(slot)
		view, err := netstate.NewView(b.state, slot, req.Src, req.Dst, demand, b.edgeCost(slot))
		if err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("baselines: request %d slot %d: %w", req.ID, slot, err)
		}
		path, ok := b.search(view, slot, demand)
		if !ok {
			txn.Rollback()
			return router.Decision{
				Reason: fmt.Sprintf("no feasible path at slot %d", slot),
			}, nil
		}
		plan.Paths = append(plan.Paths, router.SlotPath{Slot: slot, Path: path})

		// A path can transit one satellite in two roles whose energy
		// draws are individually feasible but jointly not (the transit
		// mask checks them independently); trial the slot as a whole.
		consumptions := view.PathConsumptions(path)
		if err := b.state.TrialConsume(consumptions); err != nil {
			txn.Rollback()
			return router.Decision{
				Reason: fmt.Sprintf("energy infeasible at slot %d: %v", slot, err),
			}, nil
		}
		if err := txn.ReservePath(view, path); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("baselines: request %d commit: %w", req.ID, err)
		}
		if err := txn.Consume(consumptions); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("baselines: request %d energy commit: %w", req.ID, err)
		}
	}

	txn.Commit()
	return router.Decision{Accepted: true, Plan: plan}, nil
}
