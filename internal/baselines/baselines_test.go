package baselines

import (
	"math"
	"strings"
	"testing"
	"time"

	"spacebooking/internal/graph"
	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/router"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func groundEP(i int) topology.Endpoint {
	return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
}

// newBaselineState builds the strict-battery state baselines run on:
// like CEAR they must respect constraint (7c).
func newBaselineState(t *testing.T) *netstate.State {
	t.Helper()
	cfg := topology.DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 40
	prov, err := topology.NewProvider(cfg, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	state, err := netstate.New(prov, netstate.DefaultEnergyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

func routableRequest(t *testing.T, state *netstate.State, id int, rate float64, durSlots int) workload.Request {
	t.Helper()
	prov := state.Provider()
	for start := 0; start+durSlots <= prov.Horizon(); start++ {
		ok := true
		for slot := start; slot < start+durSlots; slot++ {
			sv, err := prov.VisibleSats(groundEP(0), slot)
			if err != nil {
				t.Fatal(err)
			}
			dv, err := prov.VisibleSats(groundEP(1), slot)
			if err != nil {
				t.Fatal(err)
			}
			if len(sv) == 0 || len(dv) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return workload.Request{
				ID: id, Src: groundEP(0), Dst: groundEP(1),
				ArrivalSlot: start, StartSlot: start, EndSlot: start + durSlots - 1,
				RateMbps: rate, Valuation: 2.3e9,
			}
		}
	}
	t.Skip("no routable window")
	return workload.Request{}
}

func allBaselines(t *testing.T, state *netstate.State) []router.Algorithm {
	t.Helper()
	ssp, err := NewSSP(state)
	if err != nil {
		t.Fatal(err)
	}
	ecars, err := NewECARS(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	eru, err := NewERU(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	era, err := NewERA(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	return []router.Algorithm{ssp, ecars, eru, era}
}

func TestWeightOptionsValidate(t *testing.T) {
	if err := DefaultWeightOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*WeightOptions)
	}{
		{"negative congestion", func(o *WeightOptions) { o.CongestionFactor = -0.1 }},
		{"factors exceed 1", func(o *WeightOptions) { o.CongestionFactor = 0.8; o.EnergyFactor = 0.5 }},
		{"negative over-energy", func(o *WeightOptions) { o.OverEnergyFactor = -1 }},
		{"over factors exceed 1", func(o *WeightOptions) { o.OverCongestionFactor = 0.6; o.OverEnergyFactor = 0.6 }},
		{"zero threshold", func(o *WeightOptions) { o.EnergyThresholdWMinPerMbit = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultWeightOptions()
			tt.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSSP(nil); err == nil {
		t.Error("nil state should error")
	}
	state := newBaselineState(t)
	bad := DefaultWeightOptions()
	bad.EnergyThresholdWMinPerMbit = -1
	if _, err := NewECARS(state, bad); err == nil {
		t.Error("bad options should error")
	}
}

func TestNames(t *testing.T) {
	state := newBaselineState(t)
	want := []string{"SSP", "ECARS", "ERU", "ERA"}
	for i, alg := range allBaselines(t, state) {
		if alg.Name() != want[i] {
			t.Errorf("name = %q, want %q", alg.Name(), want[i])
		}
	}
}

func TestAllBaselinesAcceptOnEmptyNetwork(t *testing.T) {
	for _, name := range []string{"SSP", "ECARS", "ERU", "ERA"} {
		t.Run(name, func(t *testing.T) {
			state := newBaselineState(t)
			var alg router.Algorithm
			for _, a := range allBaselines(t, state) {
				if a.Name() == name {
					alg = a
				}
			}
			// One slot: ERU's 360 J threshold would otherwise prune the
			// satellites loaded by the request's own earlier slots —
			// faithful but not what this test is about.
			req := routableRequest(t, state, 1, 1000, 1)
			d, err := alg.Handle(req)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Accepted {
				t.Fatalf("%s rejected on empty network: %s", name, d.Reason)
			}
			if d.Price != 0 {
				t.Errorf("%s quoted price %v, baselines are free", name, d.Price)
			}
			if len(d.Plan.Paths) != req.DurationSlots() {
				t.Errorf("plan paths = %d", len(d.Plan.Paths))
			}
			if state.NumActiveLinks() == 0 {
				t.Error("no reservations recorded")
			}
		})
	}
}

func TestSSPPicksMinHop(t *testing.T) {
	state := newBaselineState(t)
	ssp, err := NewSSP(state)
	if err != nil {
		t.Fatal(err)
	}
	req := routableRequest(t, state, 1, 500, 1)
	d, err := ssp.Handle(req)
	if err != nil || !d.Accepted {
		t.Fatalf("%v %v", err, d.Reason)
	}
	// Recompute the min-hop path on a fresh view with the same demand and
	// verify SSP's path has the same hop count. (Bandwidth reserved by
	// the accept does not saturate any link at 500 Mbps.)
	view, err := netstate.NewView(state, req.StartSlot, req.Src, req.Dst, req.RateMbps,
		func(netstate.LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.MinHopPath(view, view.SrcNode(), view.DstNode())
	if !ok {
		t.Fatal("no min-hop path")
	}
	if d.Plan.Paths[0].Path.Hops() != p.Hops() {
		t.Errorf("SSP hops = %d, min-hop = %d", d.Plan.Paths[0].Path.Hops(), p.Hops())
	}
}

func TestBaselineRejectsWhenNoPath(t *testing.T) {
	state := newBaselineState(t)
	ssp, err := NewSSP(state)
	if err != nil {
		t.Fatal(err)
	}
	req := routableRequest(t, state, 1, 3000, 1)
	prov := state.Provider()
	vis, err := prov.VisibleSats(req.Src, req.StartSlot)
	if err != nil {
		t.Fatal(err)
	}
	srcGID := prov.GlobalID(req.Src)
	for _, sat := range vis {
		if err := state.ReserveLink(netstate.MakeLinkKey(srcGID, sat), req.StartSlot, 3500); err != nil {
			t.Fatal(err)
		}
	}
	linksBefore := state.NumActiveLinks()
	d, err := ssp.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("accepted with saturated access links")
	}
	if !strings.Contains(d.Reason, "no feasible path") {
		t.Errorf("reason = %q", d.Reason)
	}
	if state.NumActiveLinks() != linksBefore {
		t.Error("rejection mutated state")
	}
}

func TestBaselinesStopAtEnergyFeasibilityEdge(t *testing.T) {
	// Baselines greedily accept until the physical constraints bind, but
	// never past them: batteries must stay within [0, capacity] even
	// under absurd load (constraint (7c) is part of the problem, not a
	// CEAR feature).
	state := newBaselineState(t)
	ssp, err := NewSSP(state)
	if err != nil {
		t.Fatal(err)
	}
	base := routableRequest(t, state, 0, 2000, 5)
	accepted := 0
	for i := 0; i < 30; i++ {
		req := base
		req.ID = i
		d, err := ssp.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			accepted++
		}
	}
	if accepted < 2 {
		t.Fatalf("accepted only %d requests", accepted)
	}
	// Batteries never report below empty even under absurd load.
	for sat := 0; sat < state.Provider().NumSats(); sat++ {
		b := state.Battery(sat)
		for slot := 0; slot < state.Provider().Horizon(); slot++ {
			if b.LevelAt(slot) < -1e-9 {
				t.Fatalf("clamped battery %d below empty at slot %d", sat, slot)
			}
		}
	}
}

func TestOverThresholdDetection(t *testing.T) {
	state := newBaselineState(t)
	b, err := NewERU(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Threshold: 5e-6 W·min/Mbit * 60 J * 20000 Mbps * 60 s = 360 J.
	if math.Abs(b.thresholdJ-360) > 1e-9 {
		t.Fatalf("thresholdJ = %v, want 360", b.thresholdJ)
	}
	if b.overThreshold(0, 0) {
		t.Error("fresh satellite reported over threshold")
	}
	bat := state.Battery(0)
	if err := bat.Consume(0, 500+bat.SolarRemainingAt(0)); err != nil {
		t.Fatal(err)
	}
	if !b.overThreshold(0, 0) {
		t.Errorf("deficit %v J should exceed threshold", bat.DeficitAt(0))
	}
}

func TestERUPrunesOverThresholdSatellites(t *testing.T) {
	state := newBaselineState(t)
	eru, err := NewERU(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	req := routableRequest(t, state, 1, 1000, 1)
	d, err := eru.Handle(req)
	if err != nil || !d.Accepted {
		t.Fatalf("setup: %v %v", err, d.Reason)
	}
	// All transited satellites now carry deficits if the slot was dark;
	// force one well over threshold and re-route: the pruned satellite
	// must not appear.
	relay := d.Plan.Paths[0].Path.Nodes[1]
	bat := state.Battery(relay)
	if err := bat.Consume(req.StartSlot, 5000+bat.SolarRemainingAt(req.StartSlot)); err != nil {
		t.Fatal(err)
	}
	if !eru.overThreshold(relay, req.StartSlot) {
		t.Fatal("relay not over threshold after drain")
	}
	req2 := req
	req2.ID = 2
	d2, err := eru.Handle(req2)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Accepted {
		return // pruning made the request infeasible; acceptable ERU behaviour
	}
	for _, n := range d2.Plan.Paths[0].Path.Nodes[1 : len(d2.Plan.Paths[0].Path.Nodes)-1] {
		if n == relay {
			t.Error("ERU routed through a pruned satellite")
		}
	}
}

func TestERAReweightsOverThresholdSatellites(t *testing.T) {
	state := newBaselineState(t)
	era, err := NewERA(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Drain satellite 5 over threshold at slot 0 and compare its edge
	// cost with a fresh satellite's.
	bat := state.Battery(5)
	if err := bat.Consume(0, 5000+bat.SolarRemainingAt(0)); err != nil {
		t.Fatal(err)
	}
	era.curSlot = 0
	cost := era.edgeFn
	over := cost(netstate.MakeLinkKey(5, 6), graph.ClassISL, 20000, 0.5)
	fresh := cost(netstate.MakeLinkKey(7, 8), graph.ClassISL, 20000, 0.5)
	// Over threshold: 0.15*0.5 + (1-0.15-0.7) = 0.225.
	// Fresh: 0.3*0.5 + 0.35 = 0.5.
	if math.Abs(over-0.225) > 1e-9 {
		t.Errorf("over-threshold edge cost = %v, want 0.225", over)
	}
	if math.Abs(fresh-0.5) > 1e-9 {
		t.Errorf("fresh edge cost = %v, want 0.5", fresh)
	}
}

func TestECARSEdgeCostLinear(t *testing.T) {
	state := newBaselineState(t)
	ecars, err := NewECARS(state, DefaultWeightOptions())
	if err != nil {
		t.Fatal(err)
	}
	ecars.curSlot = 0
	cost := ecars.edgeFn
	// 0.3*λ + 0.35 hop bias.
	if got := cost(netstate.MakeLinkKey(0, 1), graph.ClassISL, 20000, 0); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("cost at λ=0: %v, want 0.35", got)
	}
	if got := cost(netstate.MakeLinkKey(0, 1), graph.ClassISL, 20000, 1); math.Abs(got-0.65) > 1e-9 {
		t.Errorf("cost at λ=1: %v, want 0.65", got)
	}
}

func TestHandleArgumentErrors(t *testing.T) {
	state := newBaselineState(t)
	ssp, err := NewSSP(state)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ssp.Handle(workload.Request{Src: groundEP(0), Dst: groundEP(1), RateMbps: 0, EndSlot: 1}); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := ssp.Handle(workload.Request{Src: groundEP(0), Dst: groundEP(1), RateMbps: 10, StartSlot: 0, EndSlot: 9999}); err == nil {
		t.Error("bad window should error")
	}
}
