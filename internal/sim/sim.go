// Package sim orchestrates one simulation run of the paper's evaluation:
// it wires a dynamic-topology provider, a fresh resource state, one
// admission algorithm (CEAR or a baseline), and an online request
// sequence, then collects the metrics of §VI-A — social-welfare ratio,
// energy-depleted satellite counts, congested-link counts, and their
// time series.
package sim

import (
	"fmt"
	"strings"
	"time"

	"spacebooking/internal/adaptive"
	"spacebooking/internal/baselines"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/router"
	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

// AlgorithmKind selects the admission algorithm of a run.
type AlgorithmKind int

// Supported algorithms: the paper's five, plus CEAR's ablation variants.
const (
	AlgCEAR AlgorithmKind = iota + 1
	AlgSSP
	AlgECARS
	AlgERU
	AlgERA
	AlgCEARNoEnergy
	AlgCEARNoAdmission
	AlgCEARLinear
	// AlgCEARAdaptive is the §V-B extension: CEAR whose F1/F2 are
	// periodically re-derived from observed conditions, with a
	// moving-average load predictor (AoP-style).
	AlgCEARAdaptive
)

// String returns the display name.
func (k AlgorithmKind) String() string {
	switch k {
	case AlgCEAR:
		return "CEAR"
	case AlgSSP:
		return "SSP"
	case AlgECARS:
		return "ECARS"
	case AlgERU:
		return "ERU"
	case AlgERA:
		return "ERA"
	case AlgCEARNoEnergy:
		return "CEAR-NE"
	case AlgCEARNoAdmission:
		return "CEAR-AA"
	case AlgCEARLinear:
		return "CEAR-LIN"
	case AlgCEARAdaptive:
		return "CEAR-AD"
	default:
		return fmt.Sprintf("AlgorithmKind(%d)", int(k))
	}
}

// PaperAlgorithms returns the five algorithms compared in Figs. 6-8.
func PaperAlgorithms() []AlgorithmKind {
	return []AlgorithmKind{AlgCEAR, AlgSSP, AlgECARS, AlgERU, AlgERA}
}

// AllAlgorithms returns every supported kind, in declaration order.
func AllAlgorithms() []AlgorithmKind {
	out := make([]AlgorithmKind, 0, int(AlgCEARAdaptive))
	for k := AlgCEAR; k <= AlgCEARAdaptive; k++ {
		out = append(out, k)
	}
	return out
}

// AlgorithmNames returns the display names of every supported kind —
// the accepted inputs of ParseAlgorithm.
func AlgorithmNames() []string {
	kinds := AllAlgorithms()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// ParseAlgorithm maps a display name (case-insensitive) back to its
// kind. It is the inverse of AlgorithmKind.String and the single source
// of truth for the cmds' -alg flags.
func ParseAlgorithm(name string) (AlgorithmKind, error) {
	for _, k := range AllAlgorithms() {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown algorithm %q (want one of %s)",
		name, strings.Join(AlgorithmNames(), ", "))
}

// RunConfig parameterises one simulation run on a shared environment.
type RunConfig struct {
	Algorithm AlgorithmKind
	// Workload is the request-generation configuration (pairs included).
	Workload workload.Config
	// Energy holds the power-model constants.
	Energy netstate.EnergyConfig
	// Pricing configures CEAR (ignored by baselines).
	Pricing pricing.Params
	// MaxHops, when positive, applies CEAR's hop-limited search.
	MaxHops int
	// Weights configures the ECARS/ERU/ERA family (ignored otherwise).
	Weights baselines.WeightOptions
	// CongestionThresholdFrac and DepletionThresholdFrac define the
	// Fig. 7 metrics (0.1 and 0.2 in the paper).
	CongestionThresholdFrac float64
	DepletionThresholdFrac  float64
	// GenericSearch routes every algorithm through the reference
	// implementation (the Adjacency-interface views and generic graph
	// searches) instead of the flat CSR fast path. Decisions are
	// identical either way; the generic path exists for cross-checking.
	GenericSearch bool
	// PruneBudget enables budget pruning in CEAR's fast-path searches
	// (see core.Options.PruneBudget). Outcome-preserving.
	PruneBudget bool
	// Scratch, when non-nil, supplies the pooled search scratch for the
	// run's algorithm. The experiment scheduler sets it from a
	// sync.Pool; standalone runs may leave it nil.
	Scratch *netstate.SearchScratch
	// Trace, when non-nil, receives one structured record per admission
	// decision plus per-slot network snapshots.
	Trace *trace.Writer
	// Obs, when non-nil, collects phase timings, admission counters and
	// hot-path statistics for this run. The graph-search and energy
	// counters are threaded through the run's own State, so concurrent
	// runs with distinct registries never cross-count. Nil keeps every
	// instrumented path on its no-op (allocation-free) branch.
	Obs *obs.Registry
}

// DefaultRunConfig returns the paper's settings for one algorithm.
func DefaultRunConfig(alg AlgorithmKind, wl workload.Config) (RunConfig, error) {
	params, err := pricing.Derive(1, 1, 20, 10)
	if err != nil {
		return RunConfig{}, err
	}
	return RunConfig{
		Algorithm:               alg,
		Workload:                wl,
		Energy:                  netstate.DefaultEnergyConfig(),
		Pricing:                 params,
		Weights:                 baselines.DefaultWeightOptions(),
		CongestionThresholdFrac: 0.1,
		DepletionThresholdFrac:  0.2,
	}, nil
}

// Result collects everything a run produces.
type Result struct {
	Algorithm     string
	TotalRequests int
	Accepted      int
	// TotalValuation and AcceptedValuation aggregate ρ_i; their ratio is
	// the social-welfare ratio of Eq. (6) normalised by offered load.
	TotalValuation    float64
	AcceptedValuation float64
	// Revenue is Σ π_i, the operator utility (CEAR only; baselines 0).
	Revenue float64
	// WelfareRatio = AcceptedValuation / TotalValuation.
	WelfareRatio float64
	// DepletedPerSlot[t] counts satellites below the depletion threshold
	// at slot t under the final reservation state (Fig. 7 left).
	DepletedPerSlot []int
	// CongestedPerSlot[t] counts links with residual bandwidth below the
	// congestion threshold (Fig. 7 right).
	CongestedPerSlot []int
	// CumulativeWelfareRatio[t] is the welfare ratio over requests that
	// arrived in slots <= t (Fig. 8).
	CumulativeWelfareRatio []float64
	// AvgAcceptedHops is the mean per-slot path length of accepted plans.
	AvgAcceptedHops float64
	// AvgAcceptedLatencyMs is the mean one-way propagation latency of
	// accepted plans (the paper's low-latency motivation).
	AvgAcceptedLatencyMs float64
	// Rejections categorises rejection reasons.
	Rejections map[string]int
}

// MeanDepleted returns the time-average of DepletedPerSlot.
func (r *Result) MeanDepleted() float64 {
	if len(r.DepletedPerSlot) == 0 {
		return 0
	}
	sum := 0
	for _, v := range r.DepletedPerSlot {
		sum += v
	}
	return float64(sum) / float64(len(r.DepletedPerSlot))
}

// MeanCongested returns the time-average of CongestedPerSlot.
func (r *Result) MeanCongested() float64 {
	if len(r.CongestedPerSlot) == 0 {
		return 0
	}
	sum := 0
	for _, v := range r.CongestedPerSlot {
		sum += v
	}
	return float64(sum) / float64(len(r.CongestedPerSlot))
}

// buildAlgorithm constructs the algorithm and its backing state. Every
// algorithm runs on strict (non-clamping) batteries: constraint (7c) is
// part of the problem definition, not a CEAR feature — baselines must
// also operate within physically available energy.
func buildAlgorithm(prov *topology.Provider, rc RunConfig) (router.Algorithm, *netstate.State, error) {
	state, err := netstate.New(prov, rc.Energy, false)
	if err != nil {
		return nil, nil, err
	}
	state.SetObs(rc.Obs)
	cearOpts := core.Options{
		Pricing:          rc.Pricing,
		MaxHops:          rc.MaxHops,
		UseGenericSearch: rc.GenericSearch,
		PruneBudget:      rc.PruneBudget,
		Scratch:          rc.Scratch,
		Obs:              rc.Obs,
	}
	newBaselineAlg := func(alg *baselines.Baseline, err error) (router.Algorithm, *netstate.State, error) {
		if err != nil {
			return nil, nil, err
		}
		alg.SetGenericSearch(rc.GenericSearch)
		alg.SetScratch(rc.Scratch)
		return alg, state, nil
	}
	switch rc.Algorithm {
	case AlgCEAR:
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARNoEnergy:
		cearOpts.DisableEnergyPricing = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARNoAdmission:
		cearOpts.DisableAdmission = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARLinear:
		cearOpts.LinearPricing = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARAdaptive:
		acfg := adaptive.DefaultConfig(rc.Workload.ArrivalRatePerSlot)
		predictor, err := adaptive.NewMovingAverage(3)
		if err != nil {
			return nil, nil, err
		}
		acfg.Predictor = predictor
		acfg.InitialF1 = rc.Pricing.F1
		acfg.InitialF2 = rc.Pricing.F2
		acfg.MaxHops = rc.MaxHops
		acfg.UseGenericSearch = rc.GenericSearch
		acfg.PruneBudget = rc.PruneBudget
		acfg.Scratch = rc.Scratch
		acfg.Obs = rc.Obs
		alg, err := adaptive.New(state, acfg)
		return alg, state, err
	case AlgSSP:
		return newBaselineAlg(baselines.NewSSP(state))
	case AlgECARS:
		return newBaselineAlg(baselines.NewECARS(state, rc.Weights))
	case AlgERU:
		return newBaselineAlg(baselines.NewERU(state, rc.Weights))
	case AlgERA:
		return newBaselineAlg(baselines.NewERA(state, rc.Weights))
	default:
		return nil, nil, fmt.Errorf("sim: unknown algorithm kind %d", rc.Algorithm)
	}
}

// classifyReason maps a rejection reason to a stable category.
func classifyReason(reason string) string {
	switch {
	case strings.Contains(reason, "no feasible path"):
		return "no-path"
	case strings.Contains(reason, "exceeds valuation"):
		return "priced-out"
	case strings.Contains(reason, "energy infeasible"):
		return "energy-infeasible"
	default:
		return "other"
	}
}

// Run executes one complete simulation: generate the workload, process
// every request online, then sweep the final state for the per-slot
// metrics.
func Run(prov *topology.Provider, rc RunConfig) (*Result, error) {
	if prov == nil {
		return nil, fmt.Errorf("sim: nil provider")
	}
	if rc.CongestionThresholdFrac <= 0 || rc.DepletionThresholdFrac <= 0 {
		return nil, fmt.Errorf("sim: thresholds must be positive (congestion %v, depletion %v)",
			rc.CongestionThresholdFrac, rc.DepletionThresholdFrac)
	}
	wlSpan := rc.Obs.StartPhase("workload_generate")
	reqs, err := workload.Generate(rc.Workload)
	wlSpan.End()
	if err != nil {
		return nil, err
	}
	buildSpan := rc.Obs.StartPhase("state_build")
	alg, state, err := buildAlgorithm(prov, rc)
	buildSpan.End()
	if err != nil {
		return nil, err
	}

	horizon := prov.Horizon()
	res := &Result{
		Algorithm:     alg.Name(),
		TotalRequests: len(reqs),
		Rejections:    make(map[string]int),
	}
	// Per-arrival-slot aggregates for the cumulative welfare series.
	arrivedVal := make([]float64, horizon)
	acceptedVal := make([]float64, horizon)
	totalHops, totalSlotPaths := 0, 0
	totalLatency := 0.0

	if rc.Trace != nil {
		if err := rc.Trace.Emit(trace.Record{
			Kind:      trace.KindRunInfo,
			Algorithm: alg.Name(),
			Rate:      rc.Workload.ArrivalRatePerSlot,
			Seed:      rc.Workload.Seed,
		}); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}

	// Per-slot loop instrumentation: admitted/rejected-by-reason
	// counters, a wall-time histogram over arrival-slot groups (requests
	// are generated in arrival order), and the time-series sampler fed
	// exactly once per slot — including request-free slots, so every
	// series has one sample per horizon slot. All nil-safe; the clock is
	// only read and samples only recorded when a registry is attached.
	sampler := rc.Obs.Sampler(horizon)
	var (
		ctrTotal     = rc.Obs.Counter("sim.requests.total")
		ctrAccepted  = rc.Obs.Counter("sim.requests.accepted")
		histSlotTime = rc.Obs.Histogram("sim.slot_seconds", nil)
		tsAccepted   = sampler.Series("slot.accepted")
		tsRejected   = sampler.Series("slot.rejected")
		tsRevenue    = sampler.Series("slot.revenue_cum")
		tsWall       = sampler.Series("slot.wall_seconds")
		slotStart    time.Time
		curSlot      = -1
		slotAccepted int64
		slotRejected int64
	)
	// flushSlot emits one sample per series for a finished slot and
	// rewinds the per-slot accumulators. Request-free gap slots flush
	// with zero wall time and zero decision counts.
	flushSlot := func(slot int, wallSec float64) {
		s := int64(slot)
		tsAccepted.Record(s, float64(slotAccepted))
		tsRejected.Record(s, float64(slotRejected))
		tsRevenue.Record(s, res.Revenue)
		tsWall.Record(s, wallSec)
		slotAccepted, slotRejected = 0, 0
	}
	admSpan := rc.Obs.StartPhase("admission")
	for _, req := range reqs {
		if req.ArrivalSlot < 0 || req.ArrivalSlot >= horizon {
			return nil, fmt.Errorf("sim: request %d arrival slot %d outside horizon [0,%d)",
				req.ID, req.ArrivalSlot, horizon)
		}
		if rc.Obs != nil && req.ArrivalSlot != curSlot {
			now := time.Now()
			if curSlot >= 0 {
				wall := now.Sub(slotStart).Seconds()
				histSlotTime.Observe(wall)
				flushSlot(curSlot, wall)
			}
			for s := curSlot + 1; s < req.ArrivalSlot; s++ {
				flushSlot(s, 0)
			}
			slotStart, curSlot = now, req.ArrivalSlot
		}
		d, err := alg.Handle(req)
		if err != nil {
			return nil, fmt.Errorf("sim: request %d: %w", req.ID, err)
		}
		if rc.Trace != nil {
			if err := rc.Trace.Emit(trace.Record{
				Kind:      trace.KindDecision,
				RequestID: req.ID,
				Arrival:   req.ArrivalSlot,
				Start:     req.StartSlot,
				End:       req.EndSlot,
				RateMbps:  req.RateMbps,
				Valuation: req.Valuation,
				Accepted:  d.Accepted,
				Price:     d.Price,
				Reason:    d.Reason,
				TotalHops: d.Plan.TotalHops(),
			}); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
		}
		ctrTotal.Inc()
		res.TotalValuation += req.Valuation
		arrivedVal[req.ArrivalSlot] += req.Valuation
		if d.Accepted {
			ctrAccepted.Inc()
			slotAccepted++
			res.Accepted++
			res.AcceptedValuation += req.Valuation
			res.Revenue += d.Price
			acceptedVal[req.ArrivalSlot] += req.Valuation
			totalHops += d.Plan.TotalHops()
			totalSlotPaths += len(d.Plan.Paths)
			if lat, err := router.PlanLatencyMs(prov, req, d.Plan); err == nil {
				totalLatency += lat
			}
		} else {
			reason := classifyReason(d.Reason)
			if rc.Obs != nil {
				rc.Obs.Counter("sim.requests.rejected." + reason).Inc()
			}
			slotRejected++
			res.Rejections[reason]++
		}
	}
	if rc.Obs != nil {
		if curSlot >= 0 {
			wall := time.Since(slotStart).Seconds()
			histSlotTime.Observe(wall)
			flushSlot(curSlot, wall)
		}
		for s := curSlot + 1; s < horizon; s++ {
			flushSlot(s, 0)
		}
	}
	admSpan.End()

	if res.TotalValuation > 0 {
		res.WelfareRatio = res.AcceptedValuation / res.TotalValuation
	}
	if totalSlotPaths > 0 {
		res.AvgAcceptedHops = float64(totalHops) / float64(totalSlotPaths)
	}
	if res.Accepted > 0 {
		res.AvgAcceptedLatencyMs = totalLatency / float64(res.Accepted)
	}

	sweepSpan := rc.Obs.StartPhase("metrics_sweep")
	res.DepletedPerSlot = make([]int, horizon)
	res.CongestedPerSlot = make([]int, horizon)
	res.CumulativeWelfareRatio = make([]float64, horizon)
	// Sweep-side telemetry: the Fig. 7/8 trajectories under the final
	// reservation state, one sample per slot, plus end-of-run gauges
	// (each gauge's last write is the final-slot level).
	var (
		tsDepleted  = sampler.Series("slot.depleted_sats")
		tsCongested = sampler.Series("slot.congested_links")
		tsDeficit   = sampler.Series("slot.energy_deficit_j")
		tsWelfare   = sampler.Series("slot.welfare_cum")
		gDepleted   = rc.Obs.Gauge("netstate.depleted_sats")
		gCongested  = rc.Obs.Gauge("netstate.congested_links")
		gDeficit    = rc.Obs.Gauge("energy.total_deficit_j")
	)
	cumArrived, cumAccepted := 0.0, 0.0
	for t := 0; t < horizon; t++ {
		res.DepletedPerSlot[t] = state.DepletedSatCount(t, rc.DepletionThresholdFrac)
		res.CongestedPerSlot[t] = state.CongestedLinkCount(t, rc.CongestionThresholdFrac)
		cumArrived += arrivedVal[t]
		cumAccepted += acceptedVal[t]
		if cumArrived > 0 {
			res.CumulativeWelfareRatio[t] = cumAccepted / cumArrived
		} else {
			res.CumulativeWelfareRatio[t] = 1
		}
		if rc.Obs != nil {
			deficit := state.EnergyDeficitJ(t)
			tsDepleted.Record(int64(t), float64(res.DepletedPerSlot[t]))
			tsCongested.Record(int64(t), float64(res.CongestedPerSlot[t]))
			tsDeficit.Record(int64(t), deficit)
			tsWelfare.Record(int64(t), res.CumulativeWelfareRatio[t])
			gDepleted.Set(float64(res.DepletedPerSlot[t]))
			gCongested.Set(float64(res.CongestedPerSlot[t]))
			gDeficit.Set(deficit)
		}
		if rc.Trace != nil {
			if err := rc.Trace.Emit(trace.Record{
				Kind:      trace.KindSnapshot,
				Slot:      t,
				Depleted:  res.DepletedPerSlot[t],
				Congested: res.CongestedPerSlot[t],
			}); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
		}
	}
	sweepSpan.End()
	if rc.Trace != nil {
		if err := rc.Trace.Flush(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return res, nil
}
