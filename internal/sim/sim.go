// Package sim orchestrates one simulation run of the paper's evaluation:
// it wires a dynamic-topology provider, a fresh resource state, one
// admission algorithm (CEAR or a baseline), and an online request
// sequence, then collects the metrics of §VI-A — social-welfare ratio,
// energy-depleted satellite counts, congested-link counts, and their
// time series.
package sim

import (
	"context"
	"fmt"
	"strings"

	"spacebooking/internal/adaptive"
	"spacebooking/internal/baselines"
	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/router"
	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

// AlgorithmKind selects the admission algorithm of a run.
type AlgorithmKind int

// Supported algorithms: the paper's five, plus CEAR's ablation variants.
const (
	AlgCEAR AlgorithmKind = iota + 1
	AlgSSP
	AlgECARS
	AlgERU
	AlgERA
	AlgCEARNoEnergy
	AlgCEARNoAdmission
	AlgCEARLinear
	// AlgCEARAdaptive is the §V-B extension: CEAR whose F1/F2 are
	// periodically re-derived from observed conditions, with a
	// moving-average load predictor (AoP-style).
	AlgCEARAdaptive
)

// String returns the display name.
func (k AlgorithmKind) String() string {
	switch k {
	case AlgCEAR:
		return "CEAR"
	case AlgSSP:
		return "SSP"
	case AlgECARS:
		return "ECARS"
	case AlgERU:
		return "ERU"
	case AlgERA:
		return "ERA"
	case AlgCEARNoEnergy:
		return "CEAR-NE"
	case AlgCEARNoAdmission:
		return "CEAR-AA"
	case AlgCEARLinear:
		return "CEAR-LIN"
	case AlgCEARAdaptive:
		return "CEAR-AD"
	default:
		return fmt.Sprintf("AlgorithmKind(%d)", int(k))
	}
}

// PaperAlgorithms returns the five algorithms compared in Figs. 6-8.
func PaperAlgorithms() []AlgorithmKind {
	return []AlgorithmKind{AlgCEAR, AlgSSP, AlgECARS, AlgERU, AlgERA}
}

// AllAlgorithms returns every supported kind, in declaration order.
func AllAlgorithms() []AlgorithmKind {
	out := make([]AlgorithmKind, 0, int(AlgCEARAdaptive))
	for k := AlgCEAR; k <= AlgCEARAdaptive; k++ {
		out = append(out, k)
	}
	return out
}

// AlgorithmNames returns the display names of every supported kind —
// the accepted inputs of ParseAlgorithm.
func AlgorithmNames() []string {
	kinds := AllAlgorithms()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// ParseAlgorithm maps a display name (case-insensitive) back to its
// kind. It is the inverse of AlgorithmKind.String and the single source
// of truth for the cmds' -alg flags.
func ParseAlgorithm(name string) (AlgorithmKind, error) {
	for _, k := range AllAlgorithms() {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown algorithm %q (want one of %s)",
		name, strings.Join(AlgorithmNames(), ", "))
}

// RunConfig parameterises one simulation run on a shared environment.
type RunConfig struct {
	Algorithm AlgorithmKind
	// Workload is the request-generation configuration (pairs included).
	Workload workload.Config
	// Energy holds the power-model constants.
	Energy netstate.EnergyConfig
	// Pricing configures CEAR (ignored by baselines).
	Pricing pricing.Params
	// MaxHops, when positive, applies CEAR's hop-limited search.
	MaxHops int
	// Weights configures the ECARS/ERU/ERA family (ignored otherwise).
	Weights baselines.WeightOptions
	// CongestionThresholdFrac and DepletionThresholdFrac define the
	// Fig. 7 metrics (0.1 and 0.2 in the paper).
	CongestionThresholdFrac float64
	DepletionThresholdFrac  float64
	// GenericSearch routes every algorithm through the reference
	// implementation (the Adjacency-interface views and generic graph
	// searches) instead of the flat CSR fast path. Decisions are
	// identical either way; the generic path exists for cross-checking.
	GenericSearch bool
	// PruneBudget enables budget pruning in CEAR's fast-path searches
	// (see core.Options.PruneBudget). Outcome-preserving.
	PruneBudget bool
	// Scratch, when non-nil, supplies the pooled search scratch for the
	// run's algorithm. The experiment scheduler sets it from a
	// sync.Pool; standalone runs may leave it nil.
	Scratch *netstate.SearchScratch
	// Trace, when non-nil, receives one structured record per admission
	// decision plus per-slot network snapshots.
	Trace *trace.Writer
	// RecordRequests additionally emits one KindRequest record per
	// admitted request (before its decision), making the trace a
	// complete, replayable recording of the run. No-op without Trace.
	RecordRequests bool
	// SpecName labels the run's workload source in the trace run_info
	// record — the scenario spec name, or empty for the flat paper
	// workload. Replays echo the recorded name so a recording and its
	// replay produce byte-identical traces.
	SpecName string
	// Source, when non-nil, supplies the online request stream instead
	// of generating it from Workload — the hook the scenario engine and
	// trace replay plug into. Workload still configures the algorithm
	// (adaptive predictor rate) and booking defaults.
	Source workload.Source
	// Obs, when non-nil, collects phase timings, admission counters and
	// hot-path statistics for this run. The graph-search and energy
	// counters are threaded through the run's own State, so concurrent
	// runs with distinct registries never cross-count. Nil keeps every
	// instrumented path on its no-op (allocation-free) branch.
	Obs *obs.Registry
	// HotspotK, when positive (and Obs is set), enables per-entity
	// hot-spot attribution with K-entry trackers: congestion rejections
	// per link, depletion rejections per battery, committed link
	// utilization and battery depth-of-discharge, and accept/reject
	// counts per source cell. Zero keeps every attribution site on its
	// single-branch disabled path.
	HotspotK int
}

// DefaultRunConfig returns the paper's settings for one algorithm.
func DefaultRunConfig(alg AlgorithmKind, wl workload.Config) (RunConfig, error) {
	params, err := pricing.Derive(1, 1, 20, 10)
	if err != nil {
		return RunConfig{}, err
	}
	return RunConfig{
		Algorithm:               alg,
		Workload:                wl,
		Energy:                  netstate.DefaultEnergyConfig(),
		Pricing:                 params,
		Weights:                 baselines.DefaultWeightOptions(),
		CongestionThresholdFrac: 0.1,
		DepletionThresholdFrac:  0.2,
	}, nil
}

// Result collects everything a run produces.
type Result struct {
	Algorithm     string
	TotalRequests int
	Accepted      int
	// TotalValuation and AcceptedValuation aggregate ρ_i; their ratio is
	// the social-welfare ratio of Eq. (6) normalised by offered load.
	TotalValuation    float64
	AcceptedValuation float64
	// Revenue is Σ π_i, the operator utility (CEAR only; baselines 0).
	Revenue float64
	// WelfareRatio = AcceptedValuation / TotalValuation.
	WelfareRatio float64
	// DepletedPerSlot[t] counts satellites below the depletion threshold
	// at slot t under the final reservation state (Fig. 7 left).
	DepletedPerSlot []int
	// CongestedPerSlot[t] counts links with residual bandwidth below the
	// congestion threshold (Fig. 7 right).
	CongestedPerSlot []int
	// CumulativeWelfareRatio[t] is the welfare ratio over requests that
	// arrived in slots <= t (Fig. 8).
	CumulativeWelfareRatio []float64
	// AvgAcceptedHops is the mean per-slot path length of accepted plans.
	AvgAcceptedHops float64
	// AvgAcceptedLatencyMs is the mean one-way propagation latency of
	// accepted plans (the paper's low-latency motivation).
	AvgAcceptedLatencyMs float64
	// Rejections categorises rejection reasons.
	Rejections map[string]int
}

// MeanDepleted returns the time-average of DepletedPerSlot.
func (r *Result) MeanDepleted() float64 {
	if len(r.DepletedPerSlot) == 0 {
		return 0
	}
	sum := 0
	for _, v := range r.DepletedPerSlot {
		sum += v
	}
	return float64(sum) / float64(len(r.DepletedPerSlot))
}

// MeanCongested returns the time-average of CongestedPerSlot.
func (r *Result) MeanCongested() float64 {
	if len(r.CongestedPerSlot) == 0 {
		return 0
	}
	sum := 0
	for _, v := range r.CongestedPerSlot {
		sum += v
	}
	return float64(sum) / float64(len(r.CongestedPerSlot))
}

// buildAlgorithm constructs the algorithm and its backing state. Every
// algorithm runs on strict (non-clamping) batteries: constraint (7c) is
// part of the problem definition, not a CEAR feature — baselines must
// also operate within physically available energy.
func buildAlgorithm(prov *topology.Provider, rc RunConfig) (router.Algorithm, *netstate.State, error) {
	state, err := netstate.New(prov, rc.Energy, false)
	if err != nil {
		return nil, nil, err
	}
	state.SetObs(rc.Obs)
	cearOpts := core.Options{
		Pricing:          rc.Pricing,
		MaxHops:          rc.MaxHops,
		UseGenericSearch: rc.GenericSearch,
		PruneBudget:      rc.PruneBudget,
		Scratch:          rc.Scratch,
		Obs:              rc.Obs,
	}
	newBaselineAlg := func(alg *baselines.Baseline, err error) (router.Algorithm, *netstate.State, error) {
		if err != nil {
			return nil, nil, err
		}
		alg.SetGenericSearch(rc.GenericSearch)
		alg.SetScratch(rc.Scratch)
		return alg, state, nil
	}
	switch rc.Algorithm {
	case AlgCEAR:
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARNoEnergy:
		cearOpts.DisableEnergyPricing = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARNoAdmission:
		cearOpts.DisableAdmission = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARLinear:
		cearOpts.LinearPricing = true
		alg, err := core.New(state, cearOpts)
		return alg, state, err
	case AlgCEARAdaptive:
		acfg := adaptive.DefaultConfig(rc.Workload.ArrivalRatePerSlot)
		predictor, err := adaptive.NewMovingAverage(3)
		if err != nil {
			return nil, nil, err
		}
		acfg.Predictor = predictor
		acfg.InitialF1 = rc.Pricing.F1
		acfg.InitialF2 = rc.Pricing.F2
		acfg.MaxHops = rc.MaxHops
		acfg.UseGenericSearch = rc.GenericSearch
		acfg.PruneBudget = rc.PruneBudget
		acfg.Scratch = rc.Scratch
		acfg.Obs = rc.Obs
		alg, err := adaptive.New(state, acfg)
		return alg, state, err
	case AlgSSP:
		return newBaselineAlg(baselines.NewSSP(state))
	case AlgECARS:
		return newBaselineAlg(baselines.NewECARS(state, rc.Weights))
	case AlgERU:
		return newBaselineAlg(baselines.NewERU(state, rc.Weights))
	case AlgERA:
		return newBaselineAlg(baselines.NewERA(state, rc.Weights))
	default:
		return nil, nil, fmt.Errorf("sim: unknown algorithm kind %d", rc.Algorithm)
	}
}

// classifyReason maps a rejection reason to a stable category.
func classifyReason(reason string) string {
	switch {
	case strings.Contains(reason, "no feasible path"):
		return "no-path"
	case strings.Contains(reason, "exceeds valuation"):
		return "priced-out"
	case strings.Contains(reason, "energy infeasible"):
		return "energy-infeasible"
	case strings.Contains(reason, "cross-shard conflict"):
		return "conflict"
	default:
		return "other"
	}
}

// Run executes one complete simulation: generate the workload, process
// every request online, then sweep the final state for the per-slot
// metrics. It is RunContext with a background context.
func Run(prov *topology.Provider, rc RunConfig) (*Result, error) {
	return RunContext(context.Background(), prov, rc)
}

// RunContext is Run with cooperative cancellation: the admission loop
// checks ctx between requests and returns ctx's error as soon as it is
// cancelled, so a serving daemon (or Ctrl-C on cearsim) can stop a run
// mid-stream without waiting for the horizon to play out.
//
// The whole admission path is the shared Engine — RunContext is nothing
// but "generate, Admit in a loop, Finish", so batch simulation and the
// online booking server cannot diverge.
func RunContext(ctx context.Context, prov *topology.Provider, rc RunConfig) (*Result, error) {
	src := rc.Source
	if src == nil {
		wlSpan := rc.Obs.StartPhase("workload_generate")
		reqs, err := workload.Generate(rc.Workload)
		wlSpan.End()
		if err != nil {
			return nil, err
		}
		src = workload.NewSliceSource(reqs)
	}
	eng, err := NewEngine(prov, rc)
	if err != nil {
		return nil, err
	}
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run cancelled at request %d: %w", req.ID, err)
		}
		if _, err := eng.Admit(req); err != nil {
			return nil, err
		}
	}
	return eng.Finish()
}
