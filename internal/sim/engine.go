package sim

import (
	"fmt"
	"time"

	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/router"
	"spacebooking/internal/topology"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

// Engine is the resident admission engine shared by the batch simulator
// (Run) and the online booking server (internal/server): one algorithm,
// one mutable resource state, requests admitted one at a time in
// arrival-slot order. Factoring it out of Run guarantees the two paths
// cannot fork — a request stream produces identical decisions, prices
// and committed state whether it is replayed by Run or served online.
//
// An Engine is single-writer: Admit and Finish must be called from one
// goroutine (the server funnels its batches onto a dedicated engine
// goroutine for exactly this reason). Arrival slots must be
// non-decreasing, mirroring the paper's online model.
type Engine struct {
	prov    *topology.Provider
	rc      RunConfig
	alg     router.Algorithm
	state   *netstate.State
	horizon int

	res         *Result
	arrivedVal  []float64
	acceptedVal []float64

	totalHops      int
	totalSlotPaths int
	totalLatency   float64

	// Per-slot observability accumulators (see the flush logic in Run
	// before the refactor): one sample per horizon slot on every series,
	// request-free gap slots included.
	sampler      *obs.Sampler
	ctrTotal     *obs.Counter
	ctrAccepted  *obs.Counter
	histSlotTime *obs.Histogram
	tsAccepted   *obs.Series
	tsRejected   *obs.Series
	tsRevenue    *obs.Series
	tsWall       *obs.Series
	slotStart    time.Time
	curSlot      int
	slotAccepted int64
	slotRejected int64

	// Hot-spot attribution (nil / false unless RunConfig.HotspotK > 0):
	// acceptance/rejection trackers keyed by source cell, plus the
	// aggregate rejection counters the per-entity trackers reconcile
	// against exactly (see Admit's rejection branch).
	hotEnabled      bool
	hotSrcAccepted  *obs.TopK
	hotSrcRejected  *obs.TopK
	ctrRejCongested *obs.Counter
	ctrRejDepleted  *obs.Counter

	admSpan    obs.Span
	admStarted bool
	finished   bool
}

// NewEngine builds the algorithm and its backing state and prepares the
// admission accumulators. The RunConfig's Workload is used only for
// algorithm configuration (e.g. the adaptive predictor's arrival rate)
// and trace metadata — the engine never generates requests itself.
func NewEngine(prov *topology.Provider, rc RunConfig) (*Engine, error) {
	if prov == nil {
		return nil, fmt.Errorf("sim: nil provider")
	}
	if rc.CongestionThresholdFrac <= 0 || rc.DepletionThresholdFrac <= 0 {
		return nil, fmt.Errorf("sim: thresholds must be positive (congestion %v, depletion %v)",
			rc.CongestionThresholdFrac, rc.DepletionThresholdFrac)
	}
	buildSpan := rc.Obs.StartPhase("state_build")
	alg, state, err := buildAlgorithm(prov, rc)
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	horizon := prov.Horizon()
	e := &Engine{
		prov:    prov,
		rc:      rc,
		alg:     alg,
		state:   state,
		horizon: horizon,
		res: &Result{
			Algorithm:  alg.Name(),
			Rejections: make(map[string]int),
		},
		arrivedVal:  make([]float64, horizon),
		acceptedVal: make([]float64, horizon),
		curSlot:     -1,
	}
	e.sampler = rc.Obs.Sampler(horizon)
	e.ctrTotal = rc.Obs.Counter("sim.requests.total")
	e.ctrAccepted = rc.Obs.Counter("sim.requests.accepted")
	if rc.HotspotK > 0 && rc.Obs != nil {
		state.EnableHotspots(rc.Obs, rc.HotspotK)
		e.hotEnabled = state.HotspotsEnabled()
		e.hotSrcAccepted = rc.Obs.TopK("sim.hotspots.src_accepted", rc.HotspotK, obs.TopKSum)
		e.hotSrcRejected = rc.Obs.TopK("sim.hotspots.src_rejected", rc.HotspotK, obs.TopKSum)
		e.hotSrcAccepted.SetLabeler(srcCellLabel)
		e.hotSrcRejected.SetLabeler(srcCellLabel)
		e.ctrRejCongested = rc.Obs.Counter("sim.requests.rejected_congested")
		e.ctrRejDepleted = rc.Obs.Counter("sim.requests.rejected_depleted")
	}
	e.histSlotTime = rc.Obs.Histogram("sim.slot_seconds", nil)
	e.tsAccepted = e.sampler.Series("slot.accepted")
	e.tsRejected = e.sampler.Series("slot.rejected")
	e.tsRevenue = e.sampler.Series("slot.revenue_cum")
	e.tsWall = e.sampler.Series("slot.wall_seconds")

	if rc.Trace != nil {
		if err := rc.Trace.Emit(trace.Record{
			Kind:      trace.KindRunInfo,
			Algorithm: alg.Name(),
			Rate:      rc.Workload.ArrivalRatePerSlot,
			Seed:      rc.Workload.Seed,
			Spec:      rc.SpecName,
		}); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return e, nil
}

// Algorithm returns the display name of the engine's algorithm.
func (e *Engine) Algorithm() string { return e.alg.Name() }

// EnableTraceDetail attaches the sub-phase wall-time counters (search,
// pricing and commit nanoseconds) to the engine's state so a serving
// layer can read per-request deltas around Admit. No-op without an
// observed RunConfig. Must be called before admissions start: the
// handles are plain fields of the single-writer state.
func (e *Engine) EnableTraceDetail() { e.state.EnableTraceDetail(e.rc.Obs) }

// Horizon returns the number of slots in the engine's topology.
func (e *Engine) Horizon() int { return e.horizon }

// State exposes the engine's resource state. The cluster layer uses it
// to install the two-phase commit interceptor and to run the
// ownership-filtered metric sweeps; the single-writer contract extends
// to everything done through it.
func (e *Engine) State() *netstate.State { return e.state }

// ValuationPerSlot returns the per-slot arrived and accepted valuation
// accumulators (shared slices, read-only for callers). The cluster sums
// them across shards to rebuild the cumulative welfare trajectory.
func (e *Engine) ValuationPerSlot() (arrived, accepted []float64) {
	return e.arrivedVal, e.acceptedVal
}

// PathTotals returns the accepted-plan path accumulators — total hops,
// total per-slot paths and total one-way latency in ms — for merging
// shard results.
func (e *Engine) PathTotals() (hops, slotPaths int, latencyMs float64) {
	return e.totalHops, e.totalSlotPaths, e.totalLatency
}

// CurrentSlot returns the most recent arrival slot admitted (-1 before
// the first admission).
func (e *Engine) CurrentSlot() int { return e.curSlot }

// Accepted returns the number of accepted requests so far.
func (e *Engine) Accepted() int { return e.res.Accepted }

// Total returns the number of requests admitted (accepted or rejected)
// so far.
func (e *Engine) Total() int { return e.res.TotalRequests }

// Revenue returns the cumulative operator revenue Σ π_i so far.
func (e *Engine) Revenue() float64 { return e.res.Revenue }

// flushSlot emits one sample per series for a finished slot and rewinds
// the per-slot accumulators. Request-free gap slots flush with zero
// wall time and zero decision counts.
func (e *Engine) flushSlot(slot int, wallSec float64) {
	s := int64(slot)
	e.tsAccepted.Record(s, float64(e.slotAccepted))
	e.tsRejected.Record(s, float64(e.slotRejected))
	e.tsRevenue.Record(s, e.res.Revenue)
	e.tsWall.Record(s, wallSec)
	e.slotAccepted, e.slotRejected = 0, 0
}

// Admit processes one online request: it is priced, admitted or
// rejected irrevocably, and every accumulator (result metrics, trace,
// obs counters and per-slot series) is advanced. Errors indicate
// internal failures or protocol violations (out-of-horizon or
// out-of-order arrival slots), never rejections.
func (e *Engine) Admit(req workload.Request) (router.Decision, error) {
	if e.finished {
		return router.Decision{}, fmt.Errorf("sim: engine already finished")
	}
	if req.ArrivalSlot < 0 || req.ArrivalSlot >= e.horizon {
		return router.Decision{}, fmt.Errorf("sim: request %d arrival slot %d outside horizon [0,%d)",
			req.ID, req.ArrivalSlot, e.horizon)
	}
	if req.ArrivalSlot < e.curSlot {
		return router.Decision{}, fmt.Errorf("sim: request %d arrival slot %d precedes current slot %d (arrivals must be non-decreasing)",
			req.ID, req.ArrivalSlot, e.curSlot)
	}
	if e.rc.Obs != nil {
		if !e.admStarted {
			e.admStarted = true
			e.admSpan = e.rc.Obs.StartPhase("admission")
		}
		if req.ArrivalSlot != e.curSlot {
			now := time.Now()
			if e.curSlot >= 0 {
				wall := now.Sub(e.slotStart).Seconds()
				e.histSlotTime.Observe(wall)
				e.flushSlot(e.curSlot, wall)
			}
			for s := e.curSlot + 1; s < req.ArrivalSlot; s++ {
				e.flushSlot(s, 0)
			}
			e.slotStart = now
		}
	}
	e.curSlot = req.ArrivalSlot

	if e.rc.Trace != nil && e.rc.RecordRequests {
		if err := e.rc.Trace.Emit(trace.Record{
			Kind:      trace.KindRequest,
			RequestID: req.ID,
			Arrival:   req.ArrivalSlot,
			Start:     req.StartSlot,
			End:       req.EndSlot,
			RateMbps:  req.RateMbps,
			Valuation: req.Valuation,
			SrcKind:   endpointKindName(req.Src.Kind),
			SrcIndex:  req.Src.Index,
			DstKind:   endpointKindName(req.Dst.Kind),
			DstIndex:  req.Dst.Index,
			Class:     req.Class,
		}); err != nil {
			return router.Decision{}, fmt.Errorf("sim: %w", err)
		}
	}

	if e.hotEnabled {
		e.state.BeginBlame()
	}
	d, err := e.alg.Handle(req)
	if err != nil {
		return router.Decision{}, fmt.Errorf("sim: request %d: %w", req.ID, err)
	}
	if e.rc.Trace != nil {
		if err := e.rc.Trace.Emit(trace.Record{
			Kind:      trace.KindDecision,
			RequestID: req.ID,
			Arrival:   req.ArrivalSlot,
			Start:     req.StartSlot,
			End:       req.EndSlot,
			RateMbps:  req.RateMbps,
			Valuation: req.Valuation,
			Accepted:  d.Accepted,
			Price:     d.Price,
			Reason:    d.Reason,
			TotalHops: d.Plan.TotalHops(),
		}); err != nil {
			return router.Decision{}, fmt.Errorf("sim: %w", err)
		}
	}
	e.ctrTotal.Inc()
	if req.Class != "" && e.rc.Obs != nil {
		e.rc.Obs.Counter("sim.class." + req.Class + ".total").Inc()
		if d.Accepted {
			e.rc.Obs.Counter("sim.class." + req.Class + ".accepted").Inc()
		}
	}
	e.res.TotalRequests++
	e.res.TotalValuation += req.Valuation
	e.arrivedVal[req.ArrivalSlot] += req.Valuation
	if d.Accepted {
		e.ctrAccepted.Inc()
		e.slotAccepted++
		e.res.Accepted++
		e.res.AcceptedValuation += req.Valuation
		e.res.Revenue += d.Price
		e.acceptedVal[req.ArrivalSlot] += req.Valuation
		e.totalHops += d.Plan.TotalHops()
		e.totalSlotPaths += len(d.Plan.Paths)
		if lat, err := router.PlanLatencyMs(e.prov, req, d.Plan); err == nil {
			e.totalLatency += lat
		}
		if e.hotEnabled {
			e.hotSrcAccepted.Add(srcCellKey(req.Src), 1)
		}
	} else {
		reason := classifyReason(d.Reason)
		if e.rc.Obs != nil {
			e.rc.Obs.Counter("sim.requests.rejected." + reason).Inc()
		}
		e.slotRejected++
		e.res.Rejections[reason]++
		if e.hotEnabled {
			e.hotSrcRejected.Add(srcCellKey(req.Src), 1)
			// AttributeRejection and these counters move in lockstep: the
			// per-entity tracker and the matching aggregate counter are
			// incremented for exactly the same rejections, so tracker
			// totals reconcile against the counters with no slack.
			congested, depleted := e.state.AttributeRejection(reason == "energy-infeasible")
			if congested {
				e.ctrRejCongested.Inc()
			}
			if depleted {
				e.ctrRejDepleted.Inc()
			}
		}
	}
	return d, nil
}

// endpointKindName renders an endpoint kind for trace records; the
// scenario replay loader inverts it.
func endpointKindName(k topology.EndpointKind) string {
	if k == topology.EndpointSpace {
		return "space"
	}
	return "ground"
}

// srcCellKey packs a request source endpoint (ground site or EO
// satellite) into a top-K tracker key.
func srcCellKey(src topology.Endpoint) uint64 {
	return uint64(src.Kind)<<32 | uint64(uint32(src.Index))
}

// srcCellLabel renders a source-cell key as "site<N>" or "eo<N>".
func srcCellLabel(key uint64) string {
	idx := int(uint32(key))
	if topology.EndpointKind(key>>32) == topology.EndpointSpace {
		return fmt.Sprintf("eo%d", idx)
	}
	return fmt.Sprintf("site%d", idx)
}

// Finish closes the admission stream: trailing per-slot samples are
// flushed, the final reservation state is swept for the Fig. 7/8
// per-slot metrics, and the completed Result is returned. The engine
// must not be used after Finish.
func (e *Engine) Finish() (*Result, error) {
	if e.finished {
		return nil, fmt.Errorf("sim: engine already finished")
	}
	e.finished = true
	rc, res, state := e.rc, e.res, e.state
	if rc.Obs != nil {
		if e.curSlot >= 0 && e.admStarted {
			wall := time.Since(e.slotStart).Seconds()
			e.histSlotTime.Observe(wall)
			e.flushSlot(e.curSlot, wall)
		}
		for s := e.curSlot + 1; s < e.horizon; s++ {
			e.flushSlot(s, 0)
		}
	}
	if e.admStarted {
		e.admSpan.End()
	}

	if res.TotalValuation > 0 {
		res.WelfareRatio = res.AcceptedValuation / res.TotalValuation
	}
	if e.totalSlotPaths > 0 {
		res.AvgAcceptedHops = float64(e.totalHops) / float64(e.totalSlotPaths)
	}
	if res.Accepted > 0 {
		res.AvgAcceptedLatencyMs = e.totalLatency / float64(res.Accepted)
	}

	sweepSpan := rc.Obs.StartPhase("metrics_sweep")
	horizon := e.horizon
	res.DepletedPerSlot = make([]int, horizon)
	res.CongestedPerSlot = make([]int, horizon)
	res.CumulativeWelfareRatio = make([]float64, horizon)
	// Sweep-side telemetry: the Fig. 7/8 trajectories under the final
	// reservation state, one sample per slot, plus end-of-run gauges
	// (each gauge's last write is the final-slot level).
	var (
		tsDepleted  = e.sampler.Series("slot.depleted_sats")
		tsCongested = e.sampler.Series("slot.congested_links")
		tsDeficit   = e.sampler.Series("slot.energy_deficit_j")
		tsWelfare   = e.sampler.Series("slot.welfare_cum")
		gDepleted   = rc.Obs.Gauge("netstate.depleted_sats")
		gCongested  = rc.Obs.Gauge("netstate.congested_links")
		gDeficit    = rc.Obs.Gauge("energy.total_deficit_j")
	)
	cumArrived, cumAccepted := 0.0, 0.0
	for t := 0; t < horizon; t++ {
		res.DepletedPerSlot[t] = state.DepletedSatCount(t, rc.DepletionThresholdFrac)
		res.CongestedPerSlot[t] = state.CongestedLinkCount(t, rc.CongestionThresholdFrac)
		cumArrived += e.arrivedVal[t]
		cumAccepted += e.acceptedVal[t]
		if cumArrived > 0 {
			res.CumulativeWelfareRatio[t] = cumAccepted / cumArrived
		} else {
			res.CumulativeWelfareRatio[t] = 1
		}
		if rc.Obs != nil {
			deficit := state.EnergyDeficitJ(t)
			tsDepleted.Record(int64(t), float64(res.DepletedPerSlot[t]))
			tsCongested.Record(int64(t), float64(res.CongestedPerSlot[t]))
			tsDeficit.Record(int64(t), deficit)
			tsWelfare.Record(int64(t), res.CumulativeWelfareRatio[t])
			gDepleted.Set(float64(res.DepletedPerSlot[t]))
			gCongested.Set(float64(res.CongestedPerSlot[t]))
			gDeficit.Set(deficit)
		}
		if rc.Trace != nil {
			if err := rc.Trace.Emit(trace.Record{
				Kind:      trace.KindSnapshot,
				Slot:      t,
				Depleted:  res.DepletedPerSlot[t],
				Congested: res.CongestedPerSlot[t],
			}); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
		}
	}
	sweepSpan.End()
	if rc.Trace != nil {
		if err := rc.Trace.Flush(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	// Prepare-ledger leak invariant: every two-phase reservation must be
	// committed or aborted by the end of the run. The completed result is
	// returned alongside the error so a serving layer can log the leak
	// and keep the sweep, while tests fail loudly (errors.Is on
	// netstate.ErrPreparedLeak).
	if err := state.CheckPreparedDrained(); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	return res, nil
}
