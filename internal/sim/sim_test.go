package sim

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/trace"

	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

// sharedProvider is built once: provider construction dominates test time.
var (
	provOnce   sync.Once
	sharedProv *topology.Provider
	provErr    error
)

func testProvider(t *testing.T) *topology.Provider {
	t.Helper()
	provOnce.Do(func() {
		cfg := topology.DefaultConfig(testEpoch)
		cfg.Walker.Planes = 8
		cfg.Walker.SatsPerPlane = 12
		cfg.Walker.PhasingF = 3
		cfg.Horizon = 60
		sharedProv, provErr = topology.NewProvider(cfg, testSites(), nil)
	})
	if provErr != nil {
		t.Fatal(provErr)
	}
	return sharedProv
}

func testSites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
		{ID: 2, LatDeg: 51.5, LonDeg: -0.1},   // London
		{ID: 3, LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
	}
}

func testPairs() []workload.Pair {
	ep := func(i int) topology.Endpoint {
		return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
	}
	return []workload.Pair{
		{Src: ep(0), Dst: ep(1)},
		{Src: ep(2), Dst: ep(3)},
		{Src: ep(0), Dst: ep(3)},
	}
}

func testWorkload(rate float64, seed int64) workload.Config {
	cfg := workload.DefaultConfig(60, testPairs(), seed)
	cfg.ArrivalRatePerSlot = rate
	return cfg
}

func runOne(t *testing.T, alg AlgorithmKind, rate float64, seed int64) *Result {
	t.Helper()
	prov := testProvider(t)
	rc, err := DefaultRunConfig(alg, testWorkload(rate, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prov, rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAlgorithmKindString(t *testing.T) {
	tests := map[AlgorithmKind]string{
		AlgCEAR: "CEAR", AlgSSP: "SSP", AlgECARS: "ECARS",
		AlgERU: "ERU", AlgERA: "ERA",
		AlgCEARNoEnergy: "CEAR-NE", AlgCEARNoAdmission: "CEAR-AA",
		AlgCEARLinear:     "CEAR-LIN",
		AlgCEARAdaptive:   "CEAR-AD",
		AlgorithmKind(99): "AlgorithmKind(99)",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if len(PaperAlgorithms()) != 5 {
		t.Error("paper comparison is five algorithms")
	}
}

func TestParseAlgorithm(t *testing.T) {
	// Round-trip: every kind parses back from its display name.
	for _, k := range AllAlgorithms() {
		got, err := ParseAlgorithm(k.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", k.String(), got, k)
		}
	}
	// Case-insensitive.
	for in, want := range map[string]AlgorithmKind{
		"cear": AlgCEAR, "Ssp": AlgSSP, "cear-ne": AlgCEARNoEnergy, "CEAR-ad": AlgCEARAdaptive,
	} {
		if got, err := ParseAlgorithm(in); err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// Unknown names error and name the valid set.
	if _, err := ParseAlgorithm("DIJKSTRA"); err == nil {
		t.Error("unknown algorithm should error")
	} else if !strings.Contains(err.Error(), "CEAR-AD") {
		t.Errorf("error %q should list the valid names", err)
	}
	if got := len(AlgorithmNames()); got != len(AllAlgorithms()) {
		t.Errorf("AlgorithmNames has %d entries, want %d", got, len(AllAlgorithms()))
	}
}

// TestParseAlgorithmRejections pins every rejection path: near-misses,
// whitespace, embedded valid names and the empty string must all fail
// with an error that echoes the offending input and the valid set.
func TestParseAlgorithmRejections(t *testing.T) {
	for _, in := range []string{
		"",           // empty
		" ",          // blank
		"CEAR ",      // trailing space (no trimming — flags arrive exact)
		" CEAR",      // leading space
		"CEARX",      // valid prefix, junk suffix
		"CEAR-",      // dangling variant separator
		"CEAR-NE-AD", // two variants glued together
		"SSP,ECARS",  // list instead of one name
		"cear_ne",    // wrong separator
		"0",          // numeric kind is not an accepted spelling
		"AlgCEAR",    // Go identifier, not display name
		"CEAR\n",     // trailing newline
	} {
		got, err := ParseAlgorithm(in)
		if err == nil {
			t.Errorf("ParseAlgorithm(%q) = %v, want error", in, got)
			continue
		}
		if got != 0 {
			t.Errorf("ParseAlgorithm(%q) kind = %v, want zero on error", in, got)
		}
		if !strings.Contains(err.Error(), strconv.Quote(in)) {
			t.Errorf("ParseAlgorithm(%q) error %q should echo the input", in, err)
		}
		if !strings.Contains(err.Error(), "CEAR, SSP") {
			t.Errorf("ParseAlgorithm(%q) error %q should list the valid names", in, err)
		}
	}
}

func TestRunWithObservability(t *testing.T) {
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	rc.Obs = reg
	res, err := Run(prov, rc)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["sim.requests.total"]; got != int64(res.TotalRequests) {
		t.Errorf("sim.requests.total = %d, want %d", got, res.TotalRequests)
	}
	if got := snap.Counters["sim.requests.accepted"]; got != int64(res.Accepted) {
		t.Errorf("sim.requests.accepted = %d, want %d", got, res.Accepted)
	}
	for reason, n := range res.Rejections {
		if got := snap.Counters["sim.requests.rejected."+reason]; got != int64(n) {
			t.Errorf("rejected.%s counter = %d, want %d", reason, got, n)
		}
	}
	if snap.Counters["core.admission.evaluations"] != int64(res.TotalRequests) {
		t.Errorf("core evaluations = %d, want %d",
			snap.Counters["core.admission.evaluations"], res.TotalRequests)
	}
	for _, name := range []string{
		"graph.dijkstra.heap_pops", "graph.edge_relaxations",
		"netstate.txn.commits", "pricing.lut_lookups",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	phases := make(map[string]obs.PhaseSnapshot, len(snap.Phases))
	for _, p := range snap.Phases {
		phases[p.Name] = p
	}
	for _, name := range []string{"workload_generate", "state_build", "admission", "metrics_sweep"} {
		p, ok := phases[name]
		if !ok || p.Count == 0 {
			t.Errorf("phase %s missing or never timed: %+v", name, p)
		}
	}
	slotHist, ok := snap.Histograms["sim.slot_seconds"]
	if !ok {
		t.Fatal("sim.slot_seconds histogram missing")
	}
	// One observation per slot that received at least one request, so
	// the count is positive and bounded by the horizon.
	if slotHist.Count <= 0 || slotHist.Count > int64(prov.Horizon()) {
		t.Errorf("slot histogram count = %d, want within (0, %d]", slotHist.Count, prov.Horizon())
	}

	// The per-slot sampler records exactly one sample per horizon slot
	// for every series, and the series agree with the result's own
	// trajectories and totals.
	horizon := prov.Horizon()
	for _, name := range []string{
		"slot.accepted", "slot.rejected", "slot.revenue_cum", "slot.wall_seconds",
		"slot.depleted_sats", "slot.congested_links", "slot.energy_deficit_j", "slot.welfare_cum",
	} {
		ts, ok := snap.TimeSeries[name]
		if !ok {
			t.Fatalf("time series %s missing (have %v)", name, len(snap.TimeSeries))
		}
		if ts.Total != int64(horizon) || len(ts.Slots) != horizon {
			t.Errorf("%s: %d samples over %d slots, want one per slot (horizon %d)",
				name, ts.Total, len(ts.Slots), horizon)
		}
		for i, s := range ts.Slots {
			if s != int64(i) {
				t.Fatalf("%s: sample %d at slot %d, want %d", name, i, s, i)
			}
		}
	}
	sumSeries := func(name string) float64 {
		total := 0.0
		for _, v := range snap.TimeSeries[name].Values {
			total += v
		}
		return total
	}
	if got := sumSeries("slot.accepted"); got != float64(res.Accepted) {
		t.Errorf("slot.accepted sums to %v, want %d", got, res.Accepted)
	}
	if got := sumSeries("slot.rejected"); got != float64(res.TotalRequests-res.Accepted) {
		t.Errorf("slot.rejected sums to %v, want %d", got, res.TotalRequests-res.Accepted)
	}
	revSeries := snap.TimeSeries["slot.revenue_cum"]
	if got := revSeries.Last(); math.Abs(got-res.Revenue) > 1e-9*(1+math.Abs(res.Revenue)) {
		t.Errorf("slot.revenue_cum ends at %v, want %v", got, res.Revenue)
	}
	for i := 1; i < len(revSeries.Values); i++ {
		if revSeries.Values[i] < revSeries.Values[i-1] {
			t.Fatalf("cumulative revenue decreased at slot %d", i)
		}
	}
	for t2 := 0; t2 < horizon; t2++ {
		if got := snap.TimeSeries["slot.depleted_sats"].Values[t2]; got != float64(res.DepletedPerSlot[t2]) {
			t.Fatalf("slot.depleted_sats[%d] = %v, want %d", t2, got, res.DepletedPerSlot[t2])
		}
		if got := snap.TimeSeries["slot.congested_links"].Values[t2]; got != float64(res.CongestedPerSlot[t2]) {
			t.Fatalf("slot.congested_links[%d] = %v, want %d", t2, got, res.CongestedPerSlot[t2])
		}
		if got := snap.TimeSeries["slot.welfare_cum"].Values[t2]; got != res.CumulativeWelfareRatio[t2] {
			t.Fatalf("slot.welfare_cum[%d] = %v, want %v", t2, got, res.CumulativeWelfareRatio[t2])
		}
	}
	// End-of-run gauges mirror the final slot of their series.
	if got := snap.Gauges["netstate.depleted_sats"]; got != float64(res.DepletedPerSlot[horizon-1]) {
		t.Errorf("netstate.depleted_sats gauge = %v, want %d", got, res.DepletedPerSlot[horizon-1])
	}
	if got := snap.Gauges["netstate.congested_links"]; got != float64(res.CongestedPerSlot[horizon-1]) {
		t.Errorf("netstate.congested_links gauge = %v, want %d", got, res.CongestedPerSlot[horizon-1])
	}
	if snap.TimeSeries["slot.energy_deficit_j"].Last() != snap.Gauges["energy.total_deficit_j"] {
		t.Errorf("energy deficit gauge/series disagree")
	}

	// Instruments are threaded through each run's own state, so a second
	// uninstrumented run leaves the first run's counters untouched.
	pops := snap.Counters["graph.dijkstra.heap_pops"]
	rc.Obs = nil
	if _, err := Run(prov, rc); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("graph.dijkstra.heap_pops").Value(); got != pops {
		t.Errorf("heap pops moved from %d to %d after an uninstrumented run", pops, got)
	}
}

// TestSequentialRunsWithResetAreIndependent is the regression test for
// Registry.Reset: two identical runs on one registry, reset in between,
// must produce identical snapshots — without the reset, counters and
// time series from the first run would bleed into the second's report.
func TestSequentialRunsWithResetAreIndependent(t *testing.T) {
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	rc.Obs = reg

	if _, err := Run(prov, rc); err != nil {
		t.Fatal(err)
	}
	first := reg.Snapshot()
	reg.Reset()
	if _, err := Run(prov, rc); err != nil {
		t.Fatal(err)
	}
	second := reg.Snapshot()

	if first.Counters["sim.requests.total"] == 0 {
		t.Fatal("instrumented run recorded nothing")
	}
	for _, name := range []string{"sim.requests.total", "sim.requests.accepted", "netstate.txn.commits"} {
		if first.Counters[name] != second.Counters[name] {
			t.Errorf("counter %s bleeds across reset: first %d, second %d",
				name, first.Counters[name], second.Counters[name])
		}
	}
	ts1, ts2 := first.TimeSeries["slot.accepted"], second.TimeSeries["slot.accepted"]
	if ts1.Total != int64(prov.Horizon()) || ts2.Total != ts1.Total {
		t.Errorf("slot.accepted totals %d/%d, want %d each (no accumulation)",
			ts1.Total, ts2.Total, prov.Horizon())
	}
	if first.Histograms["sim.slot_seconds"].Count != second.Histograms["sim.slot_seconds"].Count {
		t.Errorf("slot histogram bleeds across reset: %d vs %d",
			first.Histograms["sim.slot_seconds"].Count, second.Histograms["sim.slot_seconds"].Count)
	}
}

// TestConcurrentRunsNeverCrossCount is the regression test for the old
// package-global instrument hooks: graph/energy counters attached
// atomically, so concurrent runs overwrote each other's attachment and
// one run's teardown (which fired even for uninstrumented runs)
// clobbered another's counters mid-flight. With handles threaded through
// each run's State, concurrent runs over one shared Provider — some
// instrumented, some not — must each count exactly what the same run
// counts alone.
func TestConcurrentRunsNeverCrossCount(t *testing.T) {
	prov := testProvider(t)
	type job struct {
		alg  AlgorithmKind
		seed int64
		obs  bool
	}
	// Four instrumented runs plus two uninstrumented ones interleaved:
	// under the global-hook design the uninstrumented runs' teardown
	// detached everyone's counters.
	jobs := []job{
		{AlgCEAR, 42, true},
		{AlgSSP, 42, true},
		{AlgCEAR, 7, true},
		{AlgECARS, 42, true},
		{AlgCEAR, 42, false},
		{AlgERA, 7, false},
	}

	// Sequential baseline: what each instrumented run counts on its own.
	want := make([]map[string]int64, len(jobs))
	for i, j := range jobs {
		if !j.obs {
			continue
		}
		rc, err := DefaultRunConfig(j.alg, testWorkload(2, j.seed))
		if err != nil {
			t.Fatal(err)
		}
		rc.Obs = obs.New()
		if _, err := Run(prov, rc); err != nil {
			t.Fatal(err)
		}
		want[i] = rc.Obs.Snapshot().Counters
	}

	regs := make([]*obs.Registry, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		rc, err := DefaultRunConfig(j.alg, testWorkload(2, j.seed))
		if err != nil {
			t.Fatal(err)
		}
		if j.obs {
			regs[i] = obs.New()
			rc.Obs = regs[i]
		}
		wg.Add(1)
		go func(i int, rc RunConfig) {
			defer wg.Done()
			_, errs[i] = Run(prov, rc)
		}(i, rc)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	for i, reg := range regs {
		if reg == nil {
			continue
		}
		got := reg.Snapshot().Counters
		for _, name := range []string{
			"graph.dijkstra.heap_pops", "graph.edge_relaxations",
			"energy.deficit_walks", "energy.consumptions",
			"sim.requests.total", "netstate.txn.commits",
		} {
			if got[name] != want[i][name] {
				t.Errorf("run %d counter %s = %d concurrent, %d sequential",
					i, name, got[name], want[i][name])
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, rc); err == nil {
		t.Error("nil provider should error")
	}
	bad := rc
	bad.CongestionThresholdFrac = 0
	if _, err := Run(prov, bad); err == nil {
		t.Error("zero threshold should error")
	}
	bad = rc
	bad.Algorithm = AlgorithmKind(0)
	if _, err := Run(prov, bad); err == nil {
		t.Error("unknown algorithm should error")
	}
	bad = rc
	bad.Workload.Pairs = nil
	if _, err := Run(prov, bad); err == nil {
		t.Error("bad workload should error")
	}
}

func TestRunAllAlgorithmsProduceSaneResults(t *testing.T) {
	for _, alg := range []AlgorithmKind{AlgCEAR, AlgSSP, AlgECARS, AlgERU, AlgERA, AlgCEARNoEnergy, AlgCEARNoAdmission, AlgCEARLinear, AlgCEARAdaptive} {
		t.Run(alg.String(), func(t *testing.T) {
			res := runOne(t, alg, 2, 42)
			if res.Algorithm != alg.String() {
				t.Errorf("result algorithm = %q", res.Algorithm)
			}
			if res.TotalRequests == 0 {
				t.Fatal("no requests generated")
			}
			if res.WelfareRatio < 0 || res.WelfareRatio > 1 {
				t.Errorf("welfare ratio %v outside [0,1]", res.WelfareRatio)
			}
			if res.Accepted == 0 && alg != AlgERU {
				t.Errorf("%s accepted nothing", alg)
			}
			if got := len(res.DepletedPerSlot); got != 60 {
				t.Errorf("depleted series length %d", got)
			}
			if got := len(res.CongestedPerSlot); got != 60 {
				t.Errorf("congested series length %d", got)
			}
			if got := len(res.CumulativeWelfareRatio); got != 60 {
				t.Errorf("welfare series length %d", got)
			}
			for tt, v := range res.CumulativeWelfareRatio {
				if v < 0 || v > 1 {
					t.Fatalf("cumulative welfare %v at slot %d", v, tt)
				}
			}
			accVal := res.AcceptedValuation
			if accVal > res.TotalValuation {
				t.Error("accepted valuation exceeds total")
			}
			rejected := 0
			for _, n := range res.Rejections {
				rejected += n
			}
			if res.Accepted+rejected != res.TotalRequests {
				t.Errorf("accepted %d + rejected %d != total %d", res.Accepted, rejected, res.TotalRequests)
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a := runOne(t, AlgCEAR, 2, 7)
	b := runOne(t, AlgCEAR, 2, 7)
	if a.Accepted != b.Accepted || a.WelfareRatio != b.WelfareRatio || a.Revenue != b.Revenue {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestCEAROutperformsSSPUnderSaturation(t *testing.T) {
	// Under heavy load on few pairs, CEAR's admission control and
	// balanced routing must match or beat SSP's greedy min-hop welfare —
	// the headline ordering of Fig. 6.
	cear := runOne(t, AlgCEAR, 8, 3)
	ssp := runOne(t, AlgSSP, 8, 3)
	if cear.WelfareRatio < ssp.WelfareRatio-0.02 {
		t.Errorf("CEAR welfare %v below SSP %v under saturation", cear.WelfareRatio, ssp.WelfareRatio)
	}
}

func TestCEARRevenueOnlyForCEAR(t *testing.T) {
	ssp := runOne(t, AlgSSP, 2, 5)
	if ssp.Revenue != 0 {
		t.Errorf("SSP revenue = %v, baselines charge nothing", ssp.Revenue)
	}
}

func TestCEARKeepsBatteriesHealthierThanSSP(t *testing.T) {
	cear := runOne(t, AlgCEAR, 8, 11)
	ssp := runOne(t, AlgSSP, 8, 11)
	if cear.MeanDepleted() > ssp.MeanDepleted()+0.5 {
		t.Errorf("CEAR mean depleted %v worse than SSP %v", cear.MeanDepleted(), ssp.MeanDepleted())
	}
}

func TestWelfareDecreasesWithArrivalRate(t *testing.T) {
	// More offered load with the same capacity must not increase the
	// welfare *ratio* (Fig. 6's downward trend) — allow small noise.
	low := runOne(t, AlgCEAR, 1, 9)
	high := runOne(t, AlgCEAR, 10, 9)
	if high.WelfareRatio > low.WelfareRatio+0.05 {
		t.Errorf("welfare ratio rose with load: %v (rate 1) -> %v (rate 10)",
			low.WelfareRatio, high.WelfareRatio)
	}
}

func TestRunWithTrace(t *testing.T) {
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rc.Trace = trace.NewWriter(&buf)
	res, err := Run(prov, rc)
	if err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	summary := trace.Summarize(records)
	if summary.Total != res.TotalRequests {
		t.Errorf("trace decisions %d != requests %d", summary.Total, res.TotalRequests)
	}
	if summary.Accepted != res.Accepted {
		t.Errorf("trace accepted %d != %d", summary.Accepted, res.Accepted)
	}
	if math.Abs(summary.Revenue-res.Revenue) > 1e-6 {
		t.Errorf("trace revenue %v != %v", summary.Revenue, res.Revenue)
	}
	if summary.Snapshots != prov.Horizon() {
		t.Errorf("snapshots %d != horizon %d", summary.Snapshots, prov.Horizon())
	}
	if records[0].Kind != trace.KindRunInfo || records[0].Algorithm != "CEAR" {
		t.Errorf("first record = %+v", records[0])
	}
}

func TestCheckAssumptions(t *testing.T) {
	prov := testProvider(t)
	params, err := pricing.Derive(1, 1, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := netstate.DefaultEnergyConfig()

	if _, err := CheckAssumptions(nil, params, ecfg, nil); err == nil {
		t.Error("nil provider should error")
	}

	// The paper's evaluation workload violates the assumptions by design
	// (valuations far above n𝕋F1+n𝕋F2=400, demands above c_min/log2μ).
	reqs, err := workload.Generate(testWorkload(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckAssumptions(prov, params, ecfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != len(reqs) {
		t.Errorf("total = %d", rep.Total)
	}
	if rep.Compliant() {
		t.Error("the default workload should violate the assumptions (the paper says so)")
	}
	if rep.ValuationTooHigh != len(reqs) {
		t.Errorf("valuation-high = %d, want all %d (ρ=1e8 >> 400)", rep.ValuationTooHigh, len(reqs))
	}
	if rep.DemandTooLarge != len(reqs) {
		t.Errorf("demand-large = %d, want all (500-2000 Mbps > 4000/log2(402))", rep.DemandTooLarge)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}

	// A theory-compliant request: tiny demand, valuation inside the band.
	tiny := []workload.Request{{
		ID: 1, Src: reqs[0].Src, Dst: reqs[0].Dst,
		StartSlot: 0, EndSlot: 0, RateMbps: 0.0001, Valuation: 399,
	}}
	rep2, err := CheckAssumptions(prov, params, ecfg, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Compliant() {
		t.Errorf("tiny request should comply: %s", rep2)
	}
	if rep2.String() == "" || rep2.Total != 1 {
		t.Errorf("report = %+v", rep2)
	}

	// Invalid request surfaces an error.
	bad := []workload.Request{{ID: 2, Src: reqs[0].Src, Dst: reqs[0].Dst, StartSlot: 0, EndSlot: 9999, RateMbps: 1, Valuation: 1}}
	if _, err := CheckAssumptions(prov, params, ecfg, bad); err == nil {
		t.Error("invalid request should error")
	}
}

func TestLatencyMetricPlausible(t *testing.T) {
	res := runOne(t, AlgCEAR, 2, 42)
	if res.Accepted == 0 {
		t.Skip("nothing accepted")
	}
	// LEO paths: one up-leg + a few ISL hops + one down-leg. Plausible
	// one-way propagation latency is 3-150 ms.
	if res.AvgAcceptedLatencyMs < 3 || res.AvgAcceptedLatencyMs > 150 {
		t.Errorf("avg latency = %v ms, implausible for LEO", res.AvgAcceptedLatencyMs)
	}
}
