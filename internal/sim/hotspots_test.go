package sim

import (
	"reflect"
	"testing"

	"spacebooking/internal/obs"
)

// runHotspots runs one instrumented simulation with per-entity
// attribution enabled and returns the registry snapshot.
func runHotspots(t *testing.T, rate float64, seed int64, k int) obs.RegistrySnapshot {
	t.Helper()
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(rate, seed))
	if err != nil {
		t.Fatal(err)
	}
	rc.Obs = obs.New()
	rc.HotspotK = k
	if _, err := Run(prov, rc); err != nil {
		t.Fatal(err)
	}
	return rc.Obs.Snapshot()
}

// TestHotspotAttributionSumsExactly is the acceptance test for the
// attribution layer: swept across seeds and loads, the per-link
// congestion-rejection tracker total must equal the aggregate
// rejected_congested counter EXACTLY, and likewise per-battery
// depletion rejections against rejected_depleted — the tracker and the
// counter are incremented in lockstep for the same rejections, and the
// space-saving sketch never loses or duplicates mass under eviction.
func TestHotspotAttributionSumsExactly(t *testing.T) {
	cases := []struct {
		rate float64
		seed int64
		k    int
	}{
		{2, 42, 32},
		{8, 3, 32},
		{8, 7, 4}, // tiny K forces evictions; totals must still reconcile
		{10, 11, 8},
		{10, 101, 2},
	}
	sawRejections := false
	sawCongested := false
	for _, tc := range cases {
		snap := runHotspots(t, tc.rate, tc.seed, tc.k)
		ctr := snap.Counters

		linkRej, ok := snap.TopK["netstate.hotspots.link_rejections"]
		if !ok {
			t.Fatalf("rate %g seed %d: link_rejections tracker missing (topk = %v)", tc.rate, tc.seed, snap.TopK)
		}
		batRej := snap.TopK["energy.hotspots.battery_rejections"]
		if got, want := linkRej.Total, float64(ctr["sim.requests.rejected_congested"]); got != want {
			t.Errorf("rate %g seed %d k %d: per-link rejection total %v != rejected_congested %v",
				tc.rate, tc.seed, tc.k, got, want)
		}
		if got, want := batRej.Total, float64(ctr["sim.requests.rejected_depleted"]); got != want {
			t.Errorf("rate %g seed %d k %d: per-battery rejection total %v != rejected_depleted %v",
				tc.rate, tc.seed, tc.k, got, want)
		}

		// Entry sums equal the totals even after evictions (sum mode).
		for _, name := range []string{
			"netstate.hotspots.link_rejections",
			"energy.hotspots.battery_rejections",
			"sim.hotspots.src_accepted",
			"sim.hotspots.src_rejected",
		} {
			tk := snap.TopK[name]
			var sum float64
			for _, e := range tk.Entries {
				sum += e.Value
			}
			if sum != tk.Total {
				t.Errorf("rate %g seed %d k %d: %s entries sum %v != total %v",
					tc.rate, tc.seed, tc.k, name, sum, tk.Total)
			}
			if len(tk.Entries) > tc.k {
				t.Errorf("%s holds %d entries, cap is %d", name, len(tk.Entries), tc.k)
			}
		}

		// Source-cell trackers count every decision exactly once.
		accepted := float64(ctr["sim.requests.accepted"])
		rejected := float64(ctr["sim.requests.total"]) - accepted
		if got := snap.TopK["sim.hotspots.src_accepted"].Total; got != accepted {
			t.Errorf("rate %g seed %d: src_accepted total %v != accepted %v", tc.rate, tc.seed, got, accepted)
		}
		if got := snap.TopK["sim.hotspots.src_rejected"].Total; got != rejected {
			t.Errorf("rate %g seed %d: src_rejected total %v != rejected %v", tc.rate, tc.seed, got, rejected)
		}
		// Attribution classifies a subset of rejections: never more than
		// the rejections themselves.
		if linkRej.Total+batRej.Total > rejected {
			t.Errorf("rate %g seed %d: attributed %v+%v rejections out of %v total",
				tc.rate, tc.seed, linkRej.Total, batRej.Total, rejected)
		}
		if rejected > 0 {
			sawRejections = true
		}
		if linkRej.Total > 0 {
			sawCongested = true
		}
	}
	if !sawRejections {
		t.Fatal("sweep produced no rejections at all; the exactness claim was never exercised")
	}
	if !sawCongested {
		t.Error("sweep never attributed a congestion rejection; raise the load so the gate is live")
	}
}

// TestHotspotAttributionDeterministic pins that two runs with the same
// seed produce byte-identical hot-spot rankings.
func TestHotspotAttributionDeterministic(t *testing.T) {
	a := runHotspots(t, 8, 3, 16)
	b := runHotspots(t, 8, 3, 16)
	if !reflect.DeepEqual(a.TopK, b.TopK) {
		t.Fatalf("same seed produced different hotspot snapshots:\n%v\nvs\n%v", a.TopK, b.TopK)
	}
}

// TestHotspotsDisabledByDefault pins the opt-in contract: HotspotK
// zero must create no trackers and no attribution counters.
func TestHotspotsDisabledByDefault(t *testing.T) {
	snap := runHotspots(t, 2, 42, 0)
	if snap.TopK != nil {
		t.Fatalf("HotspotK=0 created trackers: %v", snap.TopK)
	}
	for _, name := range []string{"sim.requests.rejected_congested", "sim.requests.rejected_depleted"} {
		if _, ok := snap.Counters[name]; ok {
			t.Errorf("HotspotK=0 created counter %s", name)
		}
	}
}

// TestHotspotLevelsWithinBounds checks the max-mode level trackers:
// link utilization and battery depth-of-discharge are fractions.
func TestHotspotLevelsWithinBounds(t *testing.T) {
	snap := runHotspots(t, 8, 3, 16)
	for _, name := range []string{"netstate.hotspots.link_util", "energy.hotspots.battery_dod"} {
		tk, ok := snap.TopK[name]
		if !ok {
			t.Fatalf("tracker %s missing", name)
		}
		if tk.Mode != "max" {
			t.Errorf("%s mode = %q, want max", name, tk.Mode)
		}
		for _, e := range tk.Entries {
			if e.Value < 0 || e.Value > 1 {
				t.Errorf("%s entry %s = %v outside [0,1]", name, e.Label, e.Value)
			}
		}
	}
	// Committed traffic must have been observed on at least one link.
	if len(snap.TopK["netstate.hotspots.link_util"].Entries) == 0 {
		t.Error("no link utilization observed despite accepted bookings")
	}
}
