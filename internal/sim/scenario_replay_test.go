package sim

import (
	"bytes"
	"reflect"
	"testing"

	"spacebooking/internal/obs"
	"spacebooking/internal/scenario"
	"spacebooking/internal/trace"
	"spacebooking/internal/workload"
)

// replaySpec is a three-class scenario exercising every arrival process
// plus a mid-run flash crowd, so the record/replay gate covers the full
// request-mix surface, not just the Poisson happy path.
func replaySpec(seed int64) scenario.Spec {
	return scenario.Spec{
		Version: scenario.SpecVersion,
		Name:    "replay-e2e",
		Seed:    seed,
		Classes: []scenario.Class{
			{
				Name:    "web",
				Arrival: scenario.ArrivalSpec{Process: scenario.ProcessPoisson, RatePerSlot: 1.5},
				Mix: scenario.MixSpec{MinDurationSlots: 1, MaxDurationSlots: 6,
					MinRateMbps: 500, MaxRateMbps: 2000, MeanRateMbps: 1250},
				Pairs: []int{0, 1},
			},
			{
				Name:    "bulk",
				Arrival: scenario.ArrivalSpec{Process: scenario.ProcessGamma, RatePerSlot: 1, Shape: 2},
				Mix: scenario.MixSpec{MinDurationSlots: 4, MaxDurationSlots: 12,
					MinRateMbps: 1000, MaxRateMbps: 4000, MeanRateMbps: 2000, Valuation: 5e7},
			},
			{
				Name:    "eo",
				Arrival: scenario.ArrivalSpec{Process: scenario.ProcessWeibull, RatePerSlot: 0.5, Shape: 0.8},
				Mix: scenario.MixSpec{MinDurationSlots: 1, MaxDurationSlots: 3,
					MinRateMbps: 2000, MaxRateMbps: 8000, MeanRateMbps: 4000},
				Pairs: []int{2},
			},
		},
		Events: []scenario.Event{
			{Kind: scenario.EventFlashCrowd, StartSlot: 20, EndSlot: 35, Factor: 3, Classes: []string{"web"}},
		},
	}
}

func replayBinding() scenario.Binding {
	return scenario.Binding{
		Horizon:          60,
		Pairs:            testPairs(),
		Sites:            testSites(),
		DefaultValuation: 1e8,
	}
}

// recordedRun executes one traced run with request recording on and
// returns the Result plus the raw JSONL trace bytes.
func recordedRun(t *testing.T, src workload.Source, specName string, seed int64) (*Result, []byte) {
	t.Helper()
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(3, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	rc.Trace = tw
	rc.RecordRequests = true
	rc.SpecName = specName
	rc.Source = src
	res, err := Run(prov, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestScenarioRecordReplayByteIdentical is the PR's acceptance gate for
// the batch path: a spec-driven run recorded to a request trace, then
// replayed from that trace, must reproduce the decisions, prices and
// final Result byte-for-byte — across seeds. Byte equality of the two
// JSONL traces covers every decision record (accept/reject, price,
// reason, hops); DeepEqual on the Results covers the committed state.
func TestScenarioRecordReplayByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		spec := replaySpec(seed)
		gen, err := scenario.NewGenerator(spec, replayBinding())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		recRes, recTrace := recordedRun(t, gen, spec.Name, seed)
		if recRes.TotalRequests == 0 {
			t.Fatalf("seed %d: scenario produced no requests", seed)
		}

		records, err := trace.Read(bytes.NewReader(recTrace))
		if err != nil {
			t.Fatalf("seed %d: reading recorded trace: %v", seed, err)
		}
		reqs, name, err := scenario.RequestsFromTrace(records)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if name != spec.Name {
			t.Fatalf("seed %d: trace carries spec %q, want %q", seed, name, spec.Name)
		}
		if len(reqs) != recRes.TotalRequests {
			t.Fatalf("seed %d: trace has %d requests, run admitted %d", seed, len(reqs), recRes.TotalRequests)
		}

		repRes, repTrace := recordedRun(t, workload.NewSliceSource(reqs), name, seed)
		if !reflect.DeepEqual(recRes, repRes) {
			t.Fatalf("seed %d: replay Result diverges:\nrecord: %+v\nreplay: %+v", seed, recRes, repRes)
		}
		if !bytes.Equal(recTrace, repTrace) {
			t.Fatalf("seed %d: replay trace is not byte-identical (%d vs %d bytes)",
				seed, len(recTrace), len(repTrace))
		}
	}
}

// TestScenarioClassCountersTracked: per-class admission counters appear
// when arrivals carry a class and an observability registry is present.
func TestScenarioClassCountersTracked(t *testing.T) {
	spec := replaySpec(5)
	gen, err := scenario.NewGenerator(spec, replayBinding())
	if err != nil {
		t.Fatal(err)
	}
	prov := testProvider(t)
	rc, err := DefaultRunConfig(AlgCEAR, testWorkload(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	rc.Obs = reg
	rc.Source = gen
	res, err := Run(prov, rc)
	if err != nil {
		t.Fatal(err)
	}
	var classTotal int64
	for _, cls := range []string{"web", "bulk", "eo"} {
		n := reg.Counter("sim.class." + cls + ".total").Value()
		if n == 0 {
			t.Errorf("class %q saw no arrivals", cls)
		}
		classTotal += n
	}
	if classTotal != int64(res.TotalRequests) {
		t.Errorf("class counters sum to %d, run total is %d", classTotal, res.TotalRequests)
	}
}
