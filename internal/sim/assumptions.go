package sim

import (
	"fmt"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/pricing"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// AssumptionReport quantifies how a workload relates to the competitive
// analysis' Assumptions 1–2 (§V of the paper). The theory requires every
// request's valuation within [n𝕋·max(δ,ΣΩ), n𝕋F1+n𝕋F2] and its demand
// small relative to link and battery capacities; the paper's own
// evaluation deliberately exceeds these (§V-B), so the report is
// diagnostic, not a gate.
type AssumptionReport struct {
	Total int
	// ValuationTooHigh counts requests with ρ > n𝕋F1 + n𝕋F2.
	ValuationTooHigh int
	// ValuationTooLow counts requests with ρ below Assumption 1's floor.
	ValuationTooLow int
	// DemandTooLarge counts requests whose per-slot demand exceeds
	// Assumption 2's bound c_min / log2(μ1).
	DemandTooLarge int
	// EnergyTooLarge counts requests whose worst-case per-request energy
	// exceeds Assumption 2's bound ϖ_min / log2(μ2).
	EnergyTooLarge int
}

// Compliant reports whether every request satisfies both assumptions.
func (r AssumptionReport) Compliant() bool {
	return r.ValuationTooHigh == 0 && r.ValuationTooLow == 0 &&
		r.DemandTooLarge == 0 && r.EnergyTooLarge == 0
}

// String summarises the report.
func (r AssumptionReport) String() string {
	if r.Compliant() {
		return fmt.Sprintf("all %d requests satisfy Assumptions 1-2", r.Total)
	}
	return fmt.Sprintf("%d requests: valuation high/low %d/%d, demand over bound %d, energy over bound %d",
		r.Total, r.ValuationTooHigh, r.ValuationTooLow, r.DemandTooLarge, r.EnergyTooLarge)
}

// CheckAssumptions evaluates Assumptions 1 and 2 for a request set under
// the given pricing parameters and network constants. Energy per request
// uses the worst-case role (USL receive + USL transmit) so the check is
// conservative.
func CheckAssumptions(prov *topology.Provider, params pricing.Params, energyCfg netstate.EnergyConfig, reqs []workload.Request) (AssumptionReport, error) {
	if prov == nil {
		return AssumptionReport{}, fmt.Errorf("sim: nil provider")
	}
	cfg := prov.Config()
	minLinkCap := cfg.USLCapacityMbps
	if cfg.ISLCapacityMbps < minLinkCap {
		minLinkCap = cfg.ISLCapacityMbps
	}
	demandBound := params.DemandBound(minLinkCap)
	energyBound := params.EnergyBound(energyCfg.BatteryCapacityJ)
	nt := float64(params.MaxHops) * float64(params.MaxDurationSlots)

	var rep AssumptionReport
	for _, r := range reqs {
		if err := r.Validate(prov.Horizon()); err != nil {
			return rep, err
		}
		rep.Total++

		// Worst-case per-request energy on one satellite: USL in and out
		// in every active slot.
		totalEnergy := 0.0
		peak := 0.0
		for t := r.StartSlot; t <= r.EndSlot; t++ {
			d := r.RateAt(t)
			if d > peak {
				peak = d
			}
			totalEnergy += energyCfg.TransitEnergyJ(graph.ClassUSL, graph.ClassUSL, d, cfg.SlotSeconds)
		}

		if r.Valuation > params.MaxValuation() {
			rep.ValuationTooHigh++
		}
		floor := nt * peak
		if e := nt * totalEnergy; e > floor {
			floor = e
		}
		if r.Valuation < floor {
			rep.ValuationTooLow++
		}
		if peak > demandBound {
			rep.DemandTooLarge++
		}
		if totalEnergy > energyBound {
			rep.EnergyTooLarge++
		}
	}
	return rep, nil
}
