// Package buildinfo exposes the module version and VCS revision baked
// into the binary by the Go toolchain, for the commands' shared
// -version flag. It has no configuration and no dependencies beyond
// runtime/debug, so every command can print an identical version line.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// read is swapped out by tests; production always reads the real build
// info.
var read = debug.ReadBuildInfo

// Info is the subset of the binary's build metadata the commands print.
type Info struct {
	// Version is the main module version ("(devel)" for non-tagged
	// builds, "unknown" when build info is unavailable).
	Version string
	// Revision is the VCS commit hash, suffixed with "+dirty" when the
	// working tree had local modifications; empty when the binary was
	// built outside a checkout.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Read collects the binary's build metadata. It never fails: missing
// pieces degrade to "unknown"/empty rather than errors, because
// -version must work on stripped and go-run binaries too.
func Read() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := read()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" && dirty {
		revision += "+dirty"
	}
	info.Revision = revision
	return info
}

// String renders the conventional one-line form:
// "<tool> <version> (<revision>) <goversion>".
func (i Info) String() string {
	if i.Revision == "" {
		return fmt.Sprintf("%s %s", i.Version, i.GoVersion)
	}
	return fmt.Sprintf("%s (%s) %s", i.Version, i.Revision, i.GoVersion)
}

// Line returns the version line for one named tool.
func Line(tool string) string {
	return fmt.Sprintf("%s %s", tool, Read().String())
}
