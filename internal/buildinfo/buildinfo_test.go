package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// withBuildInfo swaps the build-info reader for the test's lifetime.
func withBuildInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func TestReadUnavailable(t *testing.T) {
	withBuildInfo(t, nil, false)
	info := Read()
	if info.Version != "unknown" {
		t.Errorf("Version = %q, want unknown", info.Version)
	}
	if info.Revision != "" {
		t.Errorf("Revision = %q, want empty", info.Revision)
	}
	if info.GoVersion == "" {
		t.Error("GoVersion empty, want runtime fallback")
	}
	if s := info.String(); !strings.Contains(s, "unknown") || strings.Contains(s, "()") {
		t.Errorf("String() = %q, want version without empty revision parens", s)
	}
}

func TestReadDirtyRevision(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abc123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	info := Read()
	if info.Version != "v1.2.3" {
		t.Errorf("Version = %q, want v1.2.3", info.Version)
	}
	if info.Revision != "abc123+dirty" {
		t.Errorf("Revision = %q, want abc123+dirty", info.Revision)
	}
	want := "v1.2.3 (abc123+dirty) go1.24.0"
	if got := info.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLine(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "(devel)"},
	}, true)
	if got, want := Line("spaced"), "spaced (devel) go1.24.0"; got != want {
		t.Errorf("Line() = %q, want %q", got, want)
	}
}

// TestReadReal exercises the production reader: under `go test` build
// info is available, so fields must be populated without panicking.
func TestReadReal(t *testing.T) {
	info := Read()
	if info.GoVersion == "" {
		t.Error("GoVersion empty under go test")
	}
	if info.Version == "" {
		t.Error("Version empty, want at least a placeholder")
	}
}
