// Package core implements CEAR — the Congestion and Energy-Aware pricing
// and resource Reservation algorithm of the paper (Algorithm 1).
//
// For each online request, CEAR prices every resource with the current
// network state: link bandwidth at (μ1^λ_e − 1) per Mbps (Eq. (10)) and
// satellite battery deficit at (μ2^λ_s − 1) per joule (Eq. (11)), where a
// consumption's deficit is priced over every future slot it persists
// into (Eq. (12)). It then finds the min-price per-slot paths, accepts
// the request iff the total plan price does not exceed the user's
// valuation ρ_i, and commits the reservations.
package core

import (
	"fmt"
	"math"
	"time"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/router"
	"spacebooking/internal/workload"
)

// Options configures CEAR and its ablation variants.
type Options struct {
	// Pricing holds μ1/μ2 and the conservativeness parameters.
	Pricing pricing.Params
	// MaxHops, when positive, routes with the hop-limited search (the
	// paper's n); zero uses unbounded Dijkstra, which is faster and — on
	// LEO grids, where price grows with hops — yields the same paths in
	// practice.
	MaxHops int

	// DisableEnergyPricing zeroes the energy term of Eq. (12) while
	// keeping battery feasibility (ablation "CEAR-NE").
	DisableEnergyPricing bool
	// DisableAdmission accepts every feasible plan regardless of price
	// (ablation "CEAR-AA": pricing only steers routing).
	DisableAdmission bool
	// LinearPricing replaces the exponential price μ^λ − 1 with the
	// linear (μ−1)·λ (ablation "CEAR-LIN").
	LinearPricing bool

	// UseGenericSearch routes through the reference implementation — the
	// Adjacency-interface netstate.View and the generic graph searches —
	// instead of the flat CSR fast path. The two produce byte-identical
	// decisions (asserted by the repo's equivalence tests); the generic
	// path exists for cross-checking and debugging, not production runs.
	UseGenericSearch bool
	// PruneBudget enables budget pruning in the fast-path searches: a
	// search label whose accumulated plan price already exceeds the
	// request's valuation is abandoned, since admission would reject any
	// completion through it. Pruning is exact — accept/reject outcomes,
	// accepted plans and committed state are identical with it on or
	// off; only the rejection reason may say "priced out" where an
	// unpruned run would have finished the search first. Ignored by the
	// generic search and when DisableAdmission is set.
	PruneBudget bool
	// Scratch supplies the pooled search scratch the fast path runs on.
	// Nil allocates a private one; the experiment scheduler passes a
	// pooled scratch so parallel runs reuse warm arrays.
	Scratch *netstate.SearchScratch

	// Obs, when non-nil, attaches admission counters and histograms
	// (evaluations, accept/reject, slot searches, price lookups) to the
	// registry. Nil leaves the instrumentation on its no-op fast path.
	Obs *obs.Registry
}

// CEAR is the online pricing and reservation algorithm. It owns a
// strict-mode (non-clamping) resource state: constraint (7c) is enforced.
type CEAR struct {
	state *netstate.State
	opts  Options
	// fast is the table-backed price evaluator; the deficit-pricing
	// inner loop calls it once per persisted slot.
	fast *pricing.FastPricer

	// Epoch-stamped transit-cost cache, reused across searches to avoid
	// per-slot map allocation: one entry per (satellite, in, out) role.
	cacheVals  []float64
	cacheEpoch []uint32
	epoch      uint32

	// Routing fast-path state: the pooled search scratch, a reusable
	// consumption buffer, and the cost/transit functions bound once at
	// construction (method values, so the per-slot loop allocates no
	// closures; they read curDemand/curSlot set before each search).
	scratch   *netstate.SearchScratch
	consBuf   []netstate.Consumption
	edgeFn    netstate.EdgeCostFunc
	transitFn graph.TransitCostFunc
	curDemand float64
	curSlot   int
	slotSec   float64
	energyCfg netstate.EnergyConfig

	// Observability handles; all nil (no-op) without Options.Obs.
	ctrEvaluations *obs.Counter
	ctrAccepted    *obs.Counter
	ctrRejected    *obs.Counter
	ctrSlotSearch  *obs.Counter
	histPlanPrice  *obs.Histogram
	// instr is the state's shared graph-instrument handle, cached so
	// the pricing walk can check PricingNanos without a method call per
	// cache miss. EnableTraceDetail mutates the pointed-to struct, so a
	// handle cached before enablement still sees the counters.
	instr *graph.Instruments
}

var _ router.Algorithm = (*CEAR)(nil)

// New builds a CEAR instance over the given resource state. The state
// must use strict (non-clamping) batteries; CEAR never drives a battery
// below empty.
func New(state *netstate.State, opts Options) (*CEAR, error) {
	if state == nil {
		return nil, fmt.Errorf("core: nil state")
	}
	if err := opts.Pricing.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxHops < 0 {
		return nil, fmt.Errorf("core: negative max hops %d", opts.MaxHops)
	}
	slots := state.Provider().NumSats() * 16
	c := &CEAR{
		state:      state,
		opts:       opts,
		fast:       opts.Pricing.Fast(),
		cacheVals:  make([]float64, slots),
		cacheEpoch: make([]uint32, slots),
		scratch:    opts.Scratch,
		slotSec:    state.Provider().Config().SlotSeconds,
		energyCfg:  state.EnergyConfig(),
	}
	if c.scratch == nil {
		c.scratch = netstate.NewSearchScratch()
	}
	c.edgeFn = c.priceEdgeCost
	c.transitFn = c.priceTransit
	if reg := opts.Obs; reg != nil {
		c.ctrEvaluations = reg.Counter("core.admission.evaluations")
		c.ctrAccepted = reg.Counter("core.admission.accepted")
		c.ctrRejected = reg.Counter("core.admission.rejected")
		c.ctrSlotSearch = reg.Counter("core.slot_searches")
		c.histPlanPrice = reg.Histogram("core.plan_price", PriceBuckets())
		c.fast.Instrument(reg.Counter("pricing.lut_lookups"))
		state.SetObs(reg)
	}
	c.instr = state.GraphInstruments()
	return c, nil
}

// PriceBuckets returns histogram boundaries for plan prices: decade
// steps from 1e-3 to 1e12, spanning idle-network epsilon prices through
// the paper's 2.3e9 valuations.
func PriceBuckets() []float64 {
	out := make([]float64, 0, 16)
	for e := -3; e <= 12; e++ {
		out = append(out, math.Pow(10, float64(e)))
	}
	return out
}

// Name implements router.Algorithm.
func (c *CEAR) Name() string {
	switch {
	case c.opts.DisableEnergyPricing:
		return "CEAR-NE"
	case c.opts.DisableAdmission:
		return "CEAR-AA"
	case c.opts.LinearPricing:
		return "CEAR-LIN"
	default:
		return "CEAR"
	}
}

// State exposes the resource state for metric collection.
func (c *CEAR) State() *netstate.State { return c.state }

// congestionUnitPrice returns the bandwidth price per Mbps at the given
// utilization: σ_e/c_e per Eq. (10), or its linear ablation.
func (c *CEAR) congestionUnitPrice(lambda float64) float64 {
	if c.opts.LinearPricing {
		return (c.opts.Pricing.Mu1 - 1) * lambda
	}
	return c.fast.CongestionUnitCost(lambda)
}

// energyUnitPrice returns the battery price per joule of deficit at the
// given utilization: σ_s/ϖ_s per Eq. (11), or its linear ablation.
func (c *CEAR) energyUnitPrice(lambda float64) float64 {
	if c.opts.LinearPricing {
		return (c.opts.Pricing.Mu2 - 1) * lambda
	}
	return c.fast.EnergyUnitCost(lambda)
}

// energyTransitCost prices the energy a satellite would spend carrying
// the request in one slot: Σ_{t ≥ T_a} price(λ_s(t)) · Ω̄_s(T_a, t, i),
// the second term of Eq. (12) for one (satellite, slot). Returns +Inf if
// the consumption alone would breach constraint (7c).
func (c *CEAR) energyTransitCost(sat, slot int, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	// Pricing wall time for the serving layer's phase breakdown; the
	// counter is nil (one branch, no clock reads) unless trace detail
	// is enabled. Timed here — on the transit-cache miss path — so hits
	// cost nothing.
	if in := c.instr; in != nil && in.PricingNanos != nil {
		defer pricingTimer(in.PricingNanos, time.Now())
	}
	b := c.state.Battery(sat)
	capJ := b.CapacityJ()
	cost := 0.0
	feasible := true
	b.VisitDeficit(slot, joules, func(t int, outstanding float64) bool {
		if b.DeficitAt(t)+outstanding > capJ*(1+1e-12) {
			feasible = false
			return false
		}
		if !c.opts.DisableEnergyPricing {
			cost += c.energyUnitPrice(b.UtilizationAt(t)) * outstanding
		}
		return true
	})
	if !feasible {
		c.state.NoteDepletedSat(sat)
		return math.Inf(1)
	}
	return cost
}

// pricingTimer accumulates elapsed pricing-walk wall time; the deferred
// form captures the start at the defer statement.
func pricingTimer(c *obs.Counter, t0 time.Time) {
	c.Add(time.Since(t0).Nanoseconds())
}

// hopEpsilon breaks price ties toward shorter paths: on an idle
// network every exponential price is exactly zero (μ^0 − 1), and
// without a tie-break the min-price "plan" could be an arbitrarily
// long walk that wastes bandwidth and energy network-wide. The value
// is small enough to never override a real price difference.
const hopEpsilon = 1e-6

// priceEdgeCost is the per-edge congestion price of Eq. (10) for the
// current slot's demand (curDemand). Bound once as c.edgeFn so the slot
// loop passes it without allocating a closure per slot.
func (c *CEAR) priceEdgeCost(key netstate.LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
	return c.congestionUnitPrice(utilization)*c.curDemand + hopEpsilon
}

// priceTransit is the memoised role-dependent energy transit cost for
// the current (slot, demand): the epoch-stamped cache holds one entry
// per (satellite, in, out) role and is invalidated by bumping c.epoch
// before each search. Bound once as c.transitFn.
func (c *CEAR) priceTransit(node int, in, out graph.EdgeClass) float64 {
	key := node*16 + int(in)*4 + int(out)
	if c.cacheEpoch[key] == c.epoch {
		return c.cacheVals[key]
	}
	joules := c.energyCfg.TransitEnergyJ(in, out, c.curDemand, c.slotSec)
	v := c.energyTransitCost(node, c.curSlot, joules)
	c.cacheVals[key] = v
	c.cacheEpoch[key] = c.epoch
	return v
}

// Handle implements Algorithm 1 for one online request.
func (c *CEAR) Handle(req workload.Request) (router.Decision, error) {
	if err := req.Validate(c.state.Provider().Horizon()); err != nil {
		return router.Decision{}, fmt.Errorf("core: %w", err)
	}
	c.ctrEvaluations.Inc()

	totalPrice := 0.0
	plan := router.Plan{Paths: make([]router.SlotPath, 0, req.DurationSlots())}

	// Budget pruning hands the searches the admission threshold so they
	// can abandon provably-rejected work early; +Inf disables it.
	budgetLimit := math.Inf(1)
	if c.opts.PruneBudget && !c.opts.DisableAdmission {
		budgetLimit = req.Valuation
	}

	// Lines 1-5 of Algorithm 1, with one practical refinement: slots are
	// priced, searched and committed in order inside a transaction, so
	// each slot's search observes the request's *own* earlier slots'
	// consumption (the paper prices all slots against the pre-request
	// state, which under the evaluation's assumption-violating valuations
	// can produce jointly energy-infeasible plans — see DESIGN.md). If
	// any slot is unroutable or the total price exceeds ρ_i, the
	// transaction rolls back and the network is untouched.
	txn := c.state.Begin()
	for slot := req.StartSlot; slot <= req.EndSlot; slot++ {
		c.curDemand = req.RateAt(slot)
		c.curSlot = slot
		// Invalidate the per-search transit cache.
		c.epoch++

		c.ctrSlotSearch.Inc()
		var path graph.Path
		var ok, pruned bool
		var sv netstate.SlotView
		var consumptions []netstate.Consumption
		if c.opts.UseGenericSearch {
			view, err := netstate.NewView(c.state, slot, req.Src, req.Dst, c.curDemand, c.edgeFn)
			if err != nil {
				txn.Rollback()
				return router.Decision{}, fmt.Errorf("core: request %d slot %d: %w", req.ID, slot, err)
			}
			if c.opts.MaxHops > 0 {
				path, ok = graph.ShortestPathHopLimited(view, view.SrcNode(), view.DstNode(), c.opts.MaxHops, c.transitFn)
			} else {
				path, ok = graph.ShortestPath(view, view.SrcNode(), view.DstNode(), c.transitFn)
			}
			if ok {
				consumptions = view.PathConsumptions(path)
			}
			sv = view
		} else {
			view, err := c.scratch.BuildView(c.state, slot, req.Src, req.Dst, c.curDemand, c.edgeFn)
			if err != nil {
				txn.Rollback()
				return router.Decision{}, fmt.Errorf("core: request %d slot %d: %w", req.ID, slot, err)
			}
			path, ok, pruned = view.Search(c.transitFn, c.opts.MaxHops, totalPrice, budgetLimit)
			if ok {
				c.consBuf = view.AppendConsumptions(path, c.consBuf)
				consumptions = c.consBuf
			}
			sv = view
		}
		if !ok {
			txn.Rollback()
			c.ctrRejected.Inc()
			if pruned {
				// Budget pruning proved every completion of this slot's
				// search exceeds the valuation; classify as priced out,
				// not unroutable.
				return router.Decision{
					Reason: fmt.Sprintf("plan price exceeds valuation %.3g (budget-pruned at slot %d)", req.Valuation, slot),
				}, nil
			}
			return router.Decision{
				Reason: fmt.Sprintf("no feasible path at slot %d", slot),
			}, nil
		}
		totalPrice += path.Cost
		plan.Paths = append(plan.Paths, router.SlotPath{Slot: slot, Path: path})

		// The transit mask checks each (satellite, role) consumption
		// independently, but a path may visit one satellite in two roles
		// (e.g. ingress and egress gateway of the same slot) whose
		// consumptions are individually feasible yet jointly not — trial
		// the slot as a whole before committing.
		if err := c.state.TrialConsume(consumptions); err != nil {
			txn.Rollback()
			c.ctrRejected.Inc()
			return router.Decision{
				Reason: fmt.Sprintf("energy infeasible at slot %d: %v", slot, err),
			}, nil
		}

		// Lines 7-16: reserve this slot's bandwidth and apply its energy
		// consumption so the next slot's search prices the updated state.
		if err := txn.ReservePath(sv, path); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("core: request %d commit: %w", req.ID, err)
		}
		if err := txn.Consume(consumptions); err != nil {
			txn.Rollback()
			return router.Decision{}, fmt.Errorf("core: request %d energy commit (slot %d, path %v): %w",
				req.ID, slot, path.Nodes, err)
		}
	}

	// Line 6: admission control — compare the plan price with ρ_i.
	c.histPlanPrice.Observe(totalPrice)
	if !c.opts.DisableAdmission && totalPrice > req.Valuation {
		txn.Rollback()
		c.ctrRejected.Inc()
		return router.Decision{
			Price:  totalPrice,
			Reason: fmt.Sprintf("plan price %.3g exceeds valuation %.3g", totalPrice, req.Valuation),
			Plan:   plan,
		}, nil
	}

	// Commit is infallible single-writer; under a cluster interceptor it
	// runs the two-phase protocol, and a conflict on another shard's
	// authoritative ledger turns the admission into a rejection.
	if err := txn.Commit(); err != nil {
		c.ctrRejected.Inc()
		return router.Decision{
			Price:  totalPrice,
			Reason: fmt.Sprintf("cross-shard conflict: %v", err),
			Plan:   plan,
		}, nil
	}
	c.ctrAccepted.Inc()
	return router.Decision{
		Accepted: true,
		Price:    totalPrice,
		Plan:     plan,
	}, nil
}
