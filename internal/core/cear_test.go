package core

import (
	"strings"
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/pricing"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func testSites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
	}
}

func groundEP(i int) topology.Endpoint {
	return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
}

// newTestStack builds a small provider + strict state. Battery capacity
// can be overridden to force energy scarcity.
func newTestStack(t *testing.T, batteryCapJ float64) *netstate.State {
	t.Helper()
	cfg := topology.DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 40
	prov, err := topology.NewProvider(cfg, testSites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := netstate.DefaultEnergyConfig()
	if batteryCapJ > 0 {
		ecfg.BatteryCapacityJ = batteryCapJ
	}
	state, err := netstate.New(prov, ecfg, false)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

func paperPricing(t *testing.T) pricing.Params {
	t.Helper()
	p, err := pricing.Derive(1, 1, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newCEAR(t *testing.T, state *netstate.State, opts Options) *CEAR {
	t.Helper()
	if opts.Pricing == (pricing.Params{}) {
		opts.Pricing = paperPricing(t)
	}
	c, err := New(state, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// routableRequest returns a request between the two cities in a window
// where both endpoints have coverage.
func routableRequest(t *testing.T, state *netstate.State, id int, rate float64, durSlots int) workload.Request {
	t.Helper()
	prov := state.Provider()
	for start := 0; start+durSlots <= prov.Horizon(); start++ {
		ok := true
		for slot := start; slot < start+durSlots; slot++ {
			sv, err := prov.VisibleSats(groundEP(0), slot)
			if err != nil {
				t.Fatal(err)
			}
			dv, err := prov.VisibleSats(groundEP(1), slot)
			if err != nil {
				t.Fatal(err)
			}
			if len(sv) == 0 || len(dv) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return workload.Request{
				ID: id, Src: groundEP(0), Dst: groundEP(1),
				ArrivalSlot: start, StartSlot: start, EndSlot: start + durSlots - 1,
				RateMbps: rate, Valuation: 2.3e9,
			}
		}
	}
	t.Skip("no routable window found")
	return workload.Request{}
}

func TestNewErrors(t *testing.T) {
	state := newTestStack(t, 0)
	if _, err := New(nil, Options{Pricing: paperPricing(t)}); err == nil {
		t.Error("nil state should error")
	}
	if _, err := New(state, Options{}); err == nil {
		t.Error("zero pricing should error")
	}
	if _, err := New(state, Options{Pricing: paperPricing(t), MaxHops: -1}); err == nil {
		t.Error("negative max hops should error")
	}
}

func TestNameVariants(t *testing.T) {
	state := newTestStack(t, 0)
	tests := []struct {
		opts Options
		want string
	}{
		{Options{}, "CEAR"},
		{Options{DisableEnergyPricing: true}, "CEAR-NE"},
		{Options{DisableAdmission: true}, "CEAR-AA"},
		{Options{LinearPricing: true}, "CEAR-LIN"},
	}
	for _, tt := range tests {
		c := newCEAR(t, state, tt.opts)
		if got := c.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestHandleArgumentErrors(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	bad := workload.Request{ID: 1, Src: groundEP(0), Dst: groundEP(1), StartSlot: 0, EndSlot: 0, RateMbps: 0}
	if _, err := c.Handle(bad); err == nil {
		t.Error("zero rate should error")
	}
	bad = workload.Request{ID: 1, Src: groundEP(0), Dst: groundEP(1), StartSlot: 5, EndSlot: 4, RateMbps: 100}
	if _, err := c.Handle(bad); err == nil {
		t.Error("inverted window should error")
	}
	bad = workload.Request{ID: 1, Src: groundEP(0), Dst: groundEP(1), StartSlot: 0, EndSlot: 9999, RateMbps: 100}
	if _, err := c.Handle(bad); err == nil {
		t.Error("window beyond horizon should error")
	}
}

func TestFirstRequestAcceptedAtZeroPrice(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 800, 3)
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("first request rejected: %s", d.Reason)
	}
	// Fresh network: the first slot is priced at zero (every utilization
	// is zero); later slots see only the request's own small footprint,
	// so the total price is negligible against any realistic valuation.
	if d.Price > 1e6 {
		t.Errorf("price = %v, want negligible on an empty network", d.Price)
	}
	if len(d.Plan.Paths) != req.DurationSlots() {
		t.Errorf("plan has %d paths, want %d", len(d.Plan.Paths), req.DurationSlots())
	}
	for _, sp := range d.Plan.Paths {
		if sp.Path.Hops() < 2 {
			t.Errorf("slot %d path too short: %d hops", sp.Slot, sp.Path.Hops())
		}
	}
}

func TestAcceptReservesResources(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 1000, 2)
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if state.NumActiveLinks() == 0 {
		t.Error("no links were reserved")
	}
	// Energy was consumed on the transited satellites.
	totalDeficitOrSolarUse := 0.0
	for sat := 0; sat < state.Provider().NumSats(); sat++ {
		b := state.Battery(sat)
		for slot := req.StartSlot; slot <= req.EndSlot; slot++ {
			totalDeficitOrSolarUse += b.DeficitAt(slot)
		}
	}
	// Either batteries show deficits or solar absorbed it; check the
	// stronger condition on a dark slot if one exists on the path.
	sp := d.Plan.Paths[0]
	sat := sp.Path.Nodes[1]
	if sat >= state.Provider().NumSats() {
		t.Fatalf("unexpected node %d", sat)
	}
	spent := state.Battery(sat).SolarRemainingAt(sp.Slot) + state.Battery(sat).DeficitAt(sp.Slot)
	_ = spent // battery state queried without panic is the key check here
}

func TestSecondRequestPaysPositivePrice(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	first := routableRequest(t, state, 1, 2000, 4)
	d1, err := c.Handle(first)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Accepted {
		t.Fatalf("first rejected: %s", d1.Reason)
	}
	second := first
	second.ID = 2
	d2, err := c.Handle(second)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Accepted {
		t.Fatalf("second rejected: %s", d2.Reason)
	}
	if d2.Price <= 0 {
		t.Errorf("second identical request price = %v, want > 0 (resources now utilised)", d2.Price)
	}
}

func TestAdmissionRejectsLowValuation(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	first := routableRequest(t, state, 1, 2000, 4)
	if d, err := c.Handle(first); err != nil || !d.Accepted {
		t.Fatalf("setup request failed: %v %v", err, d.Reason)
	}
	linksBefore := state.NumActiveLinks()

	cheap := first
	cheap.ID = 2
	cheap.Valuation = 1e-9 // below any positive price
	d, err := c.Handle(cheap)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("low-valuation request accepted despite positive price")
	}
	if !strings.Contains(d.Reason, "exceeds valuation") {
		t.Errorf("reason = %q", d.Reason)
	}
	// Rejection must not mutate state.
	if state.NumActiveLinks() != linksBefore {
		t.Error("rejected request changed link state")
	}
}

func TestDisableAdmissionAcceptsAnyFeasible(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{DisableAdmission: true})
	first := routableRequest(t, state, 1, 2000, 4)
	if d, err := c.Handle(first); err != nil || !d.Accepted {
		t.Fatalf("setup: %v %v", err, d.Reason)
	}
	cheap := first
	cheap.ID = 2
	cheap.Valuation = 1e-9
	d, err := c.Handle(cheap)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Errorf("CEAR-AA rejected a feasible request: %s", d.Reason)
	}
}

func TestRejectWhenNoPath(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 3000, 1)
	// Saturate all USLs from the source in the request's slot.
	prov := state.Provider()
	vis, err := prov.VisibleSats(req.Src, req.StartSlot)
	if err != nil {
		t.Fatal(err)
	}
	srcGID := prov.GlobalID(req.Src)
	for _, sat := range vis {
		key := netstate.MakeLinkKey(srcGID, sat)
		if err := state.ReserveLink(key, req.StartSlot, 3500); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("request accepted with saturated access links")
	}
	if !strings.Contains(d.Reason, "no feasible path") {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestEnergyFeasibilityBlocksTinyBatteries(t *testing.T) {
	// 100 J batteries cannot carry a 2000 Mbps relay slot (6750 J), so no
	// transit is feasible anywhere.
	state := newTestStack(t, 100)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 2000, 2)
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("request accepted despite infeasible battery capacity")
	}
}

func TestPricesNonDecreasingUnderLoad(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	base := routableRequest(t, state, 0, 1500, 3)
	lastPrice := -1.0
	for i := 0; i < 5; i++ {
		req := base
		req.ID = i
		d, err := c.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Accepted {
			break // network saturated; fine
		}
		if d.Price < lastPrice {
			t.Fatalf("price decreased under monotone load: %v after %v", d.Price, lastPrice)
		}
		lastPrice = d.Price
	}
	if lastPrice <= 0 {
		t.Error("prices never became positive under repeated identical load")
	}
}

func TestHopLimitedSearchWorks(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{MaxHops: 20})
	req := routableRequest(t, state, 1, 800, 2)
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	for _, sp := range d.Plan.Paths {
		if sp.Path.Hops() > 20 {
			t.Errorf("path exceeds hop limit: %d", sp.Path.Hops())
		}
	}
}

func TestLinearPricingAblationStillRoutes(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{LinearPricing: true})
	req := routableRequest(t, state, 1, 1000, 2)
	d, err := c.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
}

// Invariant: whatever CEAR does, constraint (7b) and (7c) hold: no link
// over capacity, no battery below empty.
func TestInvariantsUnderSaturatingLoad(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	base := routableRequest(t, state, 0, 2000, 5)
	accepted := 0
	for i := 0; i < 40; i++ {
		req := base
		req.ID = i
		d, err := c.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("nothing accepted")
	}
	prov := state.Provider()
	for sat := 0; sat < prov.NumSats(); sat++ {
		b := state.Battery(sat)
		for slot := 0; slot < prov.Horizon(); slot++ {
			if b.LevelAt(slot) < -1e-6 {
				t.Fatalf("battery %d below empty at slot %d", sat, slot)
			}
		}
	}
	// Link over-capacity would have errored inside ReserveLink already;
	// NumActiveLinks just confirms reservations happened.
	if state.NumActiveLinks() == 0 {
		t.Fatal("no active links after accepted requests")
	}
	t.Logf("accepted %d/40 saturating requests", accepted)
}

func TestEnergyPricingSteersAwayFromDepletedSatellites(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 1000, 1)
	// Route once to discover the natural path.
	d1, err := c.Handle(req)
	if err != nil || !d1.Accepted {
		t.Fatalf("setup: %v %v", err, d1.Reason)
	}
	// Drain a mid-path satellite's battery to ~95% deficit.
	path := d1.Plan.Paths[0].Path
	if path.Hops() < 3 {
		t.Skip("path too short to have a relay")
	}
	relay := path.Nodes[2]
	b := state.Battery(relay)
	drain := b.CapacityJ()*0.95 - b.DeficitAt(req.StartSlot)
	if drain > 0 {
		// Consume enough to create a standing deficit at the slot.
		if err := b.Consume(req.StartSlot, drain+b.SolarRemainingAt(req.StartSlot)); err != nil {
			t.Skipf("could not drain battery: %v", err)
		}
	}
	req2 := req
	req2.ID = 2
	d2, err := c.Handle(req2)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Accepted {
		t.Skipf("second request rejected: %s", d2.Reason)
	}
	for _, n := range d2.Plan.Paths[0].Path.Nodes {
		if n == relay {
			// Using the drained relay is allowed only if it was truly
			// the cheapest option; with exponential pricing at λ≈0.95
			// that is implausible when alternatives exist.
			t.Logf("warning: second path reused drained relay %d", relay)
		}
	}
}

func TestHandleRateVector(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	base := routableRequest(t, state, 1, 1000, 3)
	base.RateVector = []float64{400, 1800, 900}
	base.RateMbps = 0 // vector takes precedence; flat value unused
	d, err := c.Handle(base)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	// Each slot must have reserved exactly its vector entry on the first
	// hop's link.
	for i, sp := range d.Plan.Paths {
		view := sp.Path
		key := netstate.MakeLinkKey(
			state.Provider().GlobalID(base.Src), view.Nodes[1])
		if got := state.LinkUsedMbps(key, sp.Slot); got != base.RateVector[i] {
			t.Errorf("slot %d reserved %v, want %v", sp.Slot, got, base.RateVector[i])
		}
	}
}

func TestHandleRejectsBadVector(t *testing.T) {
	state := newTestStack(t, 0)
	c := newCEAR(t, state, Options{})
	req := routableRequest(t, state, 1, 1000, 3)
	req.RateVector = []float64{100} // wrong length
	if _, err := c.Handle(req); err == nil {
		t.Error("bad vector length should error")
	}
}
