// Package experiment schedules matrices of simulation runs over a
// shared, read-only topology Provider.
//
// The scheduler exists because one paper figure is never one run: Fig. 6
// alone is |algorithms| x |rates| x |seeds| independent simulations. Each
// run owns its State, its workload RNG and (optionally) its own obs
// registry, so the jobs are embarrassingly parallel once the Provider's
// visibility tables are frozen (topology.Provider.Freeze). The scheduler
// fans jobs across a bounded worker pool and hands back results in
// matrix order, so callers see exactly the output a sequential triple
// loop would have produced.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
)

// scratchPool recycles routing search scratches across jobs. This is the
// only sync.Pool boundary of the fast path: within a run the scratch is
// single-owner (plain fields, no synchronisation); here, where worker
// goroutines start and finish runs, pooling lets a worker's next job
// inherit warm arrays instead of re-growing them from zero.
var scratchPool = sync.Pool{
	New: func() any { return netstate.NewSearchScratch() },
}

// Job identifies one cell of an experiment matrix.
type Job struct {
	Algorithm sim.AlgorithmKind
	// Rate is the offered load in requests per slot (0 when the sweep
	// dimension is something other than arrival rate).
	Rate float64
	Seed int64
	// Key optionally tags the job for callers that sweep a non-rate
	// dimension (e.g. "energy"/"congestion" in Fig. 7, or a valuation
	// distribution name in Fig. 9).
	Key string
}

// String renders the job for progress logs.
func (j Job) String() string {
	s := j.Algorithm.String()
	if j.Key != "" {
		s += "/" + j.Key
	}
	if j.Rate > 0 {
		s += fmt.Sprintf(" rate=%g", j.Rate)
	}
	return fmt.Sprintf("%s seed=%d", s, j.Seed)
}

// Matrix is the common algorithm x rate x seed cross product.
type Matrix struct {
	Algorithms []sim.AlgorithmKind
	Rates      []float64
	Seeds      []int64
}

// Jobs expands the matrix in stable algorithm-major order: for each
// algorithm, each rate, each seed. This is the iteration order of the
// sequential triple loops the scheduler replaces, so result slices line
// up position-for-position with the old code paths.
func (m Matrix) Jobs() []Job {
	out := make([]Job, 0, len(m.Algorithms)*len(m.Rates)*len(m.Seeds))
	for _, alg := range m.Algorithms {
		for _, rate := range m.Rates {
			for _, seed := range m.Seeds {
				out = append(out, Job{Algorithm: alg, Rate: rate, Seed: seed})
			}
		}
	}
	return out
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the input slice; Run returns
	// results sorted by it.
	Index int
	Job   Job
	Res   *sim.Result
	// Obs is the registry the run collected into (nil unless the job
	// was observed).
	Obs *obs.Registry
	Err error
}

// Config parameterises a scheduler invocation.
type Config struct {
	// Parallelism bounds concurrent runs; <= 0 means GOMAXPROCS.
	Parallelism int
	// Observe gives each job whose RunConfig has a nil Obs its own
	// fresh registry, so parallel runs never share counters.
	Observe bool
	// NewRunConfig builds the RunConfig for job i. It is called from
	// worker goroutines and must not mutate shared state.
	NewRunConfig func(i int, j Job) (sim.RunConfig, error)
	// OnResult, when non-nil, is invoked once per completed job, in
	// completion order, from at most one goroutine at a time. Use it
	// for progress logging or streaming sinks.
	OnResult func(Result)
}

// Run executes every job on the shared provider and returns the results
// in input (matrix) order. Individual job failures do not cancel the
// remaining jobs; the returned error is the first failure in matrix
// order, and every Result carries its own Err.
func Run(prov *topology.Provider, jobs []Job, cfg Config) ([]Result, error) {
	if prov == nil {
		return nil, fmt.Errorf("experiment: nil provider")
	}
	if cfg.NewRunConfig == nil {
		return nil, fmt.Errorf("experiment: nil NewRunConfig")
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		resultMu sync.Mutex // serialises OnResult
	)
	jobCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				results[i] = runOne(prov, i, jobs[i], cfg)
				if cfg.OnResult != nil {
					resultMu.Lock()
					cfg.OnResult(results[i])
					resultMu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("experiment: job %d (%s): %w", i, jobs[i], results[i].Err)
		}
	}
	return results, nil
}

func runOne(prov *topology.Provider, i int, j Job, cfg Config) Result {
	rc, err := cfg.NewRunConfig(i, j)
	if err != nil {
		return Result{Index: i, Job: j, Err: err}
	}
	if cfg.Observe && rc.Obs == nil {
		rc.Obs = obs.New()
	}
	if rc.Scratch == nil {
		sc := scratchPool.Get().(*netstate.SearchScratch)
		rc.Scratch = sc
		defer scratchPool.Put(sc)
	}
	res, err := sim.Run(prov, rc)
	return Result{Index: i, Job: j, Res: res, Obs: rc.Obs, Err: err}
}
