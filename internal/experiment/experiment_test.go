package experiment

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/sim"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

// sharedProvider is built once: provider construction dominates test time.
var (
	provOnce   sync.Once
	sharedProv *topology.Provider
	provErr    error
)

func testProvider(t *testing.T) *topology.Provider {
	t.Helper()
	provOnce.Do(func() {
		cfg := topology.DefaultConfig(testEpoch)
		cfg.Walker.Planes = 8
		cfg.Walker.SatsPerPlane = 12
		cfg.Walker.PhasingF = 3
		cfg.Horizon = 60
		cfg.PrecomputeVisibility = true
		sharedProv, provErr = topology.NewProvider(cfg, testSites(), nil)
	})
	if provErr != nil {
		t.Fatal(provErr)
	}
	return sharedProv
}

func testSites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
		{ID: 2, LatDeg: 51.5, LonDeg: -0.1},   // London
		{ID: 3, LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
	}
}

func testPairs() []workload.Pair {
	ep := func(i int) topology.Endpoint {
		return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
	}
	return []workload.Pair{
		{Src: ep(0), Dst: ep(1)},
		{Src: ep(2), Dst: ep(3)},
		{Src: ep(0), Dst: ep(3)},
	}
}

func defaultBuilder(t *testing.T) func(int, Job) (sim.RunConfig, error) {
	t.Helper()
	return func(_ int, j Job) (sim.RunConfig, error) {
		wl := workload.DefaultConfig(60, testPairs(), j.Seed)
		wl.ArrivalRatePerSlot = j.Rate
		return sim.DefaultRunConfig(j.Algorithm, wl)
	}
}

func TestMatrixJobsStableOrder(t *testing.T) {
	m := Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
		Rates:      []float64{0.5, 1},
		Seeds:      []int64{42, 7},
	}
	jobs := m.Jobs()
	want := []Job{
		{Algorithm: sim.AlgCEAR, Rate: 0.5, Seed: 42},
		{Algorithm: sim.AlgCEAR, Rate: 0.5, Seed: 7},
		{Algorithm: sim.AlgCEAR, Rate: 1, Seed: 42},
		{Algorithm: sim.AlgCEAR, Rate: 1, Seed: 7},
		{Algorithm: sim.AlgSSP, Rate: 0.5, Seed: 42},
		{Algorithm: sim.AlgSSP, Rate: 0.5, Seed: 7},
		{Algorithm: sim.AlgSSP, Rate: 1, Seed: 42},
		{Algorithm: sim.AlgSSP, Rate: 1, Seed: 7},
	}
	if !reflect.DeepEqual(jobs, want) {
		t.Fatalf("Jobs() order:\n got %v\nwant %v", jobs, want)
	}
}

// TestParallelMatchesSequential is the scheduler's core contract: the
// same matrix run with Parallelism 1 and Parallelism 8 yields identical
// per-cell results.
func TestParallelMatchesSequential(t *testing.T) {
	prov := testProvider(t)
	jobs := Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgECARS},
		Rates:      []float64{1},
		Seeds:      []int64{42, 7},
	}.Jobs()

	seq, err := Run(prov, jobs, Config{Parallelism: 1, NewRunConfig: defaultBuilder(t)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(prov, jobs, Config{Parallelism: 8, NewRunConfig: defaultBuilder(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("result lengths: seq=%d par=%d want %d", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Index != i || par[i].Index != i {
			t.Fatalf("cell %d: results out of matrix order (seq=%d par=%d)", i, seq[i].Index, par[i].Index)
		}
		if !reflect.DeepEqual(seq[i].Res, par[i].Res) {
			t.Errorf("cell %d (%s): parallel result differs from sequential", i, jobs[i])
		}
	}
}

// TestObserveGivesDistinctRegistries: with Observe set, every job gets
// its own registry and the run's counters land there.
func TestObserveGivesDistinctRegistries(t *testing.T) {
	prov := testProvider(t)
	jobs := Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
		Rates:      []float64{1},
		Seeds:      []int64{42},
	}.Jobs()
	results, err := Run(prov, jobs, Config{Parallelism: 2, Observe: true, NewRunConfig: defaultBuilder(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Obs == nil {
			t.Fatalf("job %s: Observe set but Obs nil", r.Job)
		}
		snap := r.Obs.Snapshot()
		total, ok := snap.Counters["sim.requests.total"]
		if !ok || total != int64(r.Res.TotalRequests) {
			t.Errorf("job %s: registry total=%d (ok=%v) want %d", r.Job, total, ok, r.Res.TotalRequests)
		}
	}
	for i := range results {
		for k := i + 1; k < len(results); k++ {
			if results[i].Obs == results[k].Obs {
				t.Fatalf("jobs %d and %d share a registry", i, k)
			}
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	prov := testProvider(t)
	jobs := Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP},
		Rates:      []float64{1},
		Seeds:      []int64{42},
	}.Jobs()
	boom := errors.New("builder refused")
	results, err := Run(prov, jobs, Config{
		Parallelism: 2,
		NewRunConfig: func(i int, j Job) (sim.RunConfig, error) {
			if j.Algorithm == sim.AlgSSP {
				return sim.RunConfig{}, boom
			}
			return defaultBuilder(t)(i, j)
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	// The non-failing job still completed.
	if results[0].Err != nil || results[0].Res == nil {
		t.Fatalf("healthy job should have run: %+v", results[0])
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("failing job Err = %v", results[1].Err)
	}
}

func TestRunValidation(t *testing.T) {
	prov := testProvider(t)
	if _, err := Run(nil, nil, Config{NewRunConfig: defaultBuilder(t)}); err == nil {
		t.Error("nil provider should error")
	}
	if _, err := Run(prov, nil, Config{}); err == nil {
		t.Error("nil NewRunConfig should error")
	}
	results, err := Run(prov, nil, Config{NewRunConfig: defaultBuilder(t)})
	if err != nil || len(results) != 0 {
		t.Errorf("empty job list: results=%v err=%v", results, err)
	}
}

func TestOnResultSerialised(t *testing.T) {
	prov := testProvider(t)
	jobs := Matrix{
		Algorithms: []sim.AlgorithmKind{sim.AlgCEAR, sim.AlgSSP, sim.AlgECARS, sim.AlgERA},
		Rates:      []float64{1},
		Seeds:      []int64{42},
	}.Jobs()
	var (
		mu   sync.Mutex
		seen []int
	)
	_, err := Run(prov, jobs, Config{
		Parallelism:  4,
		NewRunConfig: defaultBuilder(t),
		OnResult: func(r Result) {
			// The scheduler already serialises OnResult; the mutex here
			// only guards against regressions (would trip -race).
			mu.Lock()
			seen = append(seen, r.Index)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(jobs))
	}
}
