// Package offline estimates the offline optimum of Definition 1 for
// empirical competitive-ratio reporting.
//
// The exact offline problem is an NP-hard integer program; with no LP
// solver in the standard library we report a *greedy* offline welfare:
// requests sorted by valuation (ties broken by smaller resource
// footprint), admitted with feasibility-only routing on a fresh network.
// The greedy value lower-bounds OPT, so ratios computed against it are
// optimistic lower bounds on the true empirical competitive ratio — see
// EXPERIMENTS.md.
package offline

import (
	"fmt"
	"math"
	"sort"

	"spacebooking/internal/graph"
	"spacebooking/internal/netstate"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// Result summarises a greedy offline run.
type Result struct {
	Welfare       float64
	Accepted      int
	TotalRequests int
}

// Greedy computes the offline greedy welfare over a fresh resource state
// built from the provider and energy configuration (strict batteries:
// the offline algorithm is also bandwidth- and energy-constrained, per
// Lemma 3).
func Greedy(prov *topology.Provider, energyCfg netstate.EnergyConfig, reqs []workload.Request) (Result, error) {
	if prov == nil {
		return Result{}, fmt.Errorf("offline: nil provider")
	}
	state, err := netstate.New(prov, energyCfg, false)
	if err != nil {
		return Result{}, err
	}

	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	footprint := func(r workload.Request) float64 {
		return r.RateMbps * float64(r.DurationSlots())
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Valuation != rb.Valuation {
			return ra.Valuation > rb.Valuation
		}
		return footprint(ra) < footprint(rb)
	})

	res := Result{TotalRequests: len(reqs)}
	for _, idx := range order {
		ok, err := tryAdmit(state, reqs[idx])
		if err != nil {
			return Result{}, err
		}
		if ok {
			res.Accepted++
			res.Welfare += reqs[idx].Valuation
		}
	}
	return res, nil
}

// tryAdmit routes the request min-hop with energy feasibility and
// commits it if every active slot is routable.
func tryAdmit(state *netstate.State, req workload.Request) (bool, error) {
	if req.StartSlot < 0 || req.EndSlot < req.StartSlot || req.EndSlot >= state.Provider().Horizon() {
		return false, fmt.Errorf("offline: request %d window [%d,%d] invalid", req.ID, req.StartSlot, req.EndSlot)
	}
	unit := func(netstate.LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 }
	slotSec := state.Provider().Config().SlotSeconds
	energyCfg := state.EnergyConfig()

	var views []*netstate.View
	var paths []graph.Path
	var consumptions []netstate.Consumption
	for slot := req.StartSlot; slot <= req.EndSlot; slot++ {
		view, err := netstate.NewView(state, slot, req.Src, req.Dst, req.RateMbps, unit)
		if err != nil {
			return false, err
		}
		// Energy feasibility as a transit mask: a satellite that cannot
		// host this slot's consumption is blocked.
		transit := func(node int, in, out graph.EdgeClass) float64 {
			joules := energyCfg.TransitEnergyJ(in, out, req.RateMbps, slotSec)
			if !state.Battery(node).Feasible(slot, joules) {
				return math.Inf(1)
			}
			return 0
		}
		path, ok := graph.ShortestPath(view, view.SrcNode(), view.DstNode(), transit)
		if !ok {
			return false, nil
		}
		views = append(views, view)
		paths = append(paths, path)
		consumptions = append(consumptions, view.PathConsumptions(path)...)
	}
	if err := state.TrialConsume(consumptions); err != nil {
		return false, nil //nolint:nilerr // joint infeasibility is a rejection, not a failure
	}
	for i, view := range views {
		if err := view.ReservePathBandwidth(paths[i]); err != nil {
			return false, err
		}
	}
	if err := state.Consume(consumptions); err != nil {
		return false, err
	}
	return true, nil
}
