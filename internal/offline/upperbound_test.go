package offline

import (
	"testing"

	"spacebooking/internal/netstate"
	"spacebooking/internal/workload"
)

func TestCutUpperBoundErrors(t *testing.T) {
	if _, err := CutUpperBound(nil, nil); err == nil {
		t.Error("nil provider should error")
	}
	prov := testProvider(t)
	bad := []workload.Request{{ID: 0, Src: groundEP(0), Dst: groundEP(1), StartSlot: 0, EndSlot: 9999, RateMbps: 1, Valuation: 1}}
	if _, err := CutUpperBound(prov, bad); err == nil {
		t.Error("invalid request should error")
	}
}

func TestCutUpperBoundEmpty(t *testing.T) {
	prov := testProvider(t)
	ub, err := CutUpperBound(prov, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ub != 0 {
		t.Errorf("empty workload UB = %v", ub)
	}
}

func TestCutUpperBoundDominatesGreedy(t *testing.T) {
	// The certified upper bound must be >= the greedy lower estimate on
	// any workload — that is the bracket property.
	prov := testProvider(t)
	pairs := []workload.Pair{{Src: groundEP(0), Dst: groundEP(1)}}
	for _, rate := range []float64{0.5, 2, 5} {
		cfg := workload.DefaultConfig(prov.Horizon(), pairs, 13)
		cfg.ArrivalRatePerSlot = rate
		reqs, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Greedy(prov, netstate.DefaultEnergyConfig(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := CutUpperBound(prov, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if ub < greedy.Welfare {
			t.Errorf("rate %v: UB %v below greedy welfare %v", rate, ub, greedy.Welfare)
		}
		// And it must never exceed the total offered valuation... it can,
		// actually, when pools are large — clamp check: the knapsack per
		// pool is bounded by the pool's offered valuation, so UB <= total.
		total := 0.0
		for _, r := range reqs {
			total += r.Valuation
		}
		if ub > total+1e-6 {
			t.Errorf("rate %v: UB %v exceeds total valuation %v", rate, ub, total)
		}
	}
}

func TestCutUpperBoundTightWhenAccessBound(t *testing.T) {
	// Construct a scenario where the access cut is exactly the
	// bottleneck: a single slot, requests each needing the full USL
	// capacity of the only visible satellite.
	prov := testProvider(t)
	slot := -1
	var nVis int
	for s := 0; s < prov.Horizon(); s++ {
		sv, err := prov.VisibleSats(groundEP(0), s)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := prov.VisibleSats(groundEP(1), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(sv) > 0 && len(dv) > 0 {
			slot, nVis = s, len(sv)
			break
		}
	}
	if slot < 0 {
		t.Skip("no routable slot")
	}
	// Each request consumes a full USL (4000 Mbps); the src pool at this
	// slot supports at most nVis of them (summed over the horizon the
	// pool is bigger, but all requests target one slot... the bound
	// integrates over the horizon, so here it is loose by design — just
	// verify soundness: UB >= what is actually feasible).
	var reqs []workload.Request
	for i := 0; i < 3*nVis; i++ {
		reqs = append(reqs, workload.Request{
			ID: i, Src: groundEP(0), Dst: groundEP(1),
			StartSlot: slot, EndSlot: slot, RateMbps: 4000, Valuation: 100,
		})
	}
	ub, err := CutUpperBound(prov, reqs)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(prov, netstate.DefaultEnergyConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ub < greedy.Welfare {
		t.Errorf("UB %v below achievable %v", ub, greedy.Welfare)
	}
}
