package offline

import (
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func testProvider(t *testing.T) *topology.Provider {
	t.Helper()
	cfg := topology.DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 40
	prov, err := topology.NewProvider(cfg, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prov
}

func groundEP(i int) topology.Endpoint {
	return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
}

func TestGreedyErrors(t *testing.T) {
	if _, err := Greedy(nil, netstate.DefaultEnergyConfig(), nil); err == nil {
		t.Error("nil provider should error")
	}
	prov := testProvider(t)
	bad := []workload.Request{{ID: 0, Src: groundEP(0), Dst: groundEP(1), StartSlot: 0, EndSlot: 9999, RateMbps: 100, Valuation: 1}}
	if _, err := Greedy(prov, netstate.DefaultEnergyConfig(), bad); err == nil {
		t.Error("invalid window should error")
	}
}

func TestGreedyEmptyWorkload(t *testing.T) {
	prov := testProvider(t)
	res, err := Greedy(prov, netstate.DefaultEnergyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != 0 || res.Accepted != 0 || res.TotalRequests != 0 {
		t.Errorf("empty workload result = %+v", res)
	}
}

func TestGreedyPrefersHighValuations(t *testing.T) {
	prov := testProvider(t)
	// Two conflicting requests that both saturate the same access link
	// (one visible satellite path each slot can carry only one 3000 Mbps
	// flow over a 4000 Mbps USL): greedy must pick the high-valuation one.
	// Find a slot where src sees satellites.
	slot := -1
	for s := 0; s < prov.Horizon(); s++ {
		sv, err := prov.VisibleSats(groundEP(0), s)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := prov.VisibleSats(groundEP(1), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(sv) > 0 && len(dv) > 0 {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Skip("no routable slot")
	}
	reqs := []workload.Request{
		{ID: 0, Src: groundEP(0), Dst: groundEP(1), ArrivalSlot: slot, StartSlot: slot, EndSlot: slot, RateMbps: 3000, Valuation: 1},
		{ID: 1, Src: groundEP(0), Dst: groundEP(1), ArrivalSlot: slot, StartSlot: slot, EndSlot: slot, RateMbps: 3000, Valuation: 100},
	}
	res, err := Greedy(prov, netstate.DefaultEnergyConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("greedy accepted nothing")
	}
	// The high-valuation request must be in the accepted welfare.
	if res.Welfare < 100 {
		t.Errorf("welfare = %v, the valuation-100 request must be served first", res.Welfare)
	}
}

func TestGreedyUpperBoundsOnlineOnSameWorkload(t *testing.T) {
	// The offline greedy sees the whole sequence sorted by value, so with
	// equal valuations it accepts at least as much as the count any
	// feasibility-only online algorithm can accept... not in general, but
	// it must at minimum accept a non-trivial share of a light workload.
	prov := testProvider(t)
	pairs := []workload.Pair{{Src: groundEP(0), Dst: groundEP(1)}}
	cfg := workload.DefaultConfig(prov.Horizon(), pairs, 5)
	cfg.ArrivalRatePerSlot = 1
	reqs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(prov, netstate.DefaultEnergyConfig(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests != len(reqs) {
		t.Errorf("total = %d, want %d", res.TotalRequests, len(reqs))
	}
	if res.Accepted == 0 {
		t.Error("offline greedy accepted nothing on a light workload")
	}
	if res.Welfare != float64(res.Accepted)*2.3e9 {
		t.Errorf("welfare %v inconsistent with accepted %d", res.Welfare, res.Accepted)
	}
}
