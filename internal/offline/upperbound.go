package offline

import (
	"fmt"
	"sort"

	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// CutUpperBound computes a *certified* upper bound on the offline
// optimal welfare (Definition 1), complementing the greedy lower
// estimate: together they bracket the unknown OPT.
//
// The bound relaxes the problem to its access-link capacity cut. Every
// accepted request R_i must move δ_i(T) through a user-satellite link of
// its source endpoint and one of its destination endpoint in every
// active slot, so it consumes
//
//	w_i = Σ_{T∈[st_i,ed_i]} δ_i(T)
//
// capacity units from each of its two endpoint "pools", where pool e has
// total capacity Σ_T (USL capacity × number of satellites visible to e
// at T). Relaxing everything else (ISLs, energy, integrality, per-slot
// structure) leaves |E| fractional knapsacks; the fractional knapsack
// optimum of each pool upper-bounds the valuation OPT can route through
// that pool, and since every accepted request is counted in exactly two
// pools,
//
//	OPT ≤ (Σ_e knapsack_e) / 2.
//
// The bound is loose under energy scarcity (it ignores batteries
// entirely) but is sound for any workload.
func CutUpperBound(prov *topology.Provider, reqs []workload.Request) (float64, error) {
	if prov == nil {
		return 0, fmt.Errorf("offline: nil provider")
	}
	uslCap := prov.Config().USLCapacityMbps

	// Group requests by endpoint (keyed by global ID).
	type item struct {
		valuation float64
		weight    float64 // Mbps-slots drawn from the pool
	}
	pools := make(map[int][]item)
	poolCapacity := make(map[int]float64)

	ensurePool := func(ep topology.Endpoint) (int, error) {
		gid := prov.GlobalID(ep)
		if _, ok := poolCapacity[gid]; !ok {
			total := 0.0
			for t := 0; t < prov.Horizon(); t++ {
				vis, err := prov.VisibleSats(ep, t)
				if err != nil {
					return 0, err
				}
				total += uslCap * float64(len(vis))
			}
			poolCapacity[gid] = total
		}
		return gid, nil
	}

	for _, r := range reqs {
		if err := r.Validate(prov.Horizon()); err != nil {
			return 0, err
		}
		weight := 0.0
		for t := r.StartSlot; t <= r.EndSlot; t++ {
			weight += r.RateAt(t)
		}
		for _, ep := range []topology.Endpoint{r.Src, r.Dst} {
			gid, err := ensurePool(ep)
			if err != nil {
				return 0, err
			}
			pools[gid] = append(pools[gid], item{valuation: r.Valuation, weight: weight})
		}
	}

	// Fractional knapsack per pool: sort by value density, fill greedily.
	total := 0.0
	for gid, items := range pools {
		capacity := poolCapacity[gid]
		sort.Slice(items, func(a, b int) bool {
			da := items[a].valuation / items[a].weight
			db := items[b].valuation / items[b].weight
			return da > db
		})
		remaining := capacity
		for _, it := range items {
			if remaining <= 0 {
				break
			}
			if it.weight <= remaining {
				total += it.valuation
				remaining -= it.weight
			} else {
				total += it.valuation * remaining / it.weight
				remaining = 0
			}
		}
	}
	return total / 2, nil
}
