package adaptive

import (
	"math"
	"testing"
	"time"

	"spacebooking/internal/grid"
	"spacebooking/internal/netstate"
	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

var testEpoch = time.Date(2026, time.July, 5, 0, 0, 0, 0, time.UTC)

func groundEP(i int) topology.Endpoint {
	return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
}

func newTestState(t *testing.T) *netstate.State {
	t.Helper()
	cfg := topology.DefaultConfig(testEpoch)
	cfg.Walker.Planes = 8
	cfg.Walker.SatsPerPlane = 12
	cfg.Walker.PhasingF = 3
	cfg.Horizon = 96
	cfg.MinElevationDeg = 10
	prov, err := topology.NewProvider(cfg, []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	state, err := netstate.New(prov, netstate.DefaultEnergyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero window", func(c *Config) { c.WindowSlots = 0 }},
		{"zero F1", func(c *Config) { c.InitialF1 = 0 }},
		{"bad band", func(c *Config) { c.MinF = 4; c.MaxF = 2 }},
		{"step below 1", func(c *Config) { c.Step = 0.9 }},
		{"bad priced-out target", func(c *Config) { c.PricedOutTarget = 1.5 }},
		{"bad depletion target", func(c *Config) { c.DepletionTargetFrac = -0.1 }},
		{"negative nominal", func(c *Config) { c.NominalRatePerSlot = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(2)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, DefaultConfig(2)); err == nil {
		t.Error("nil state should error")
	}
	state := newTestState(t)
	bad := DefaultConfig(2)
	bad.WindowSlots = -1
	if _, err := New(state, bad); err == nil {
		t.Error("bad config should error")
	}
}

func TestControllerProcessesWorkload(t *testing.T) {
	state := newTestState(t)
	cfg := DefaultConfig(2)
	ctrl, err := New(state, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "CEAR-AD" {
		t.Errorf("name = %q", ctrl.Name())
	}
	pairs := []workload.Pair{{Src: groundEP(0), Dst: groundEP(1)}}
	wl := workload.DefaultConfig(96, pairs, 3)
	wl.ArrivalRatePerSlot = 3
	wl.Valuation = 1e8
	reqs, err := workload.Generate(wl)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, r := range reqs {
		d, err := ctrl.Handle(r)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("adaptive controller accepted nothing")
	}
	f1, f2 := ctrl.Params()
	if f1 < cfg.MinF || f1 > cfg.MaxF || f2 < cfg.MinF || f2 > cfg.MaxF {
		t.Errorf("parameters escaped the clamp band: F1=%v F2=%v", f1, f2)
	}
	t.Logf("final F1=%.3f F2=%.3f, %d adjustments, %d/%d accepted",
		f1, f2, len(ctrl.Adjustments()), accepted, len(reqs))
}

func TestControllerRelaxesWhenPricedOut(t *testing.T) {
	state := newTestState(t)
	cfg := DefaultConfig(2)
	cfg.WindowSlots = 4
	ctrl, err := New(state, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed requests whose valuation is below any non-trivial price: after
	// the first few acceptances on the fresh network, everything is
	// priced out, so the controller must relax F toward MinF.
	for slot := 0; slot < 60; slot++ {
		for k := 0; k < 3; k++ {
			req := workload.Request{
				ID: slot*10 + k, Src: groundEP(0), Dst: groundEP(1),
				ArrivalSlot: slot, StartSlot: slot, EndSlot: slot,
				RateMbps: 1500, Valuation: 10, // far below any positive price
			}
			if _, err := ctrl.Handle(req); err != nil {
				t.Fatal(err)
			}
		}
	}
	f1, _ := ctrl.Params()
	if f1 >= cfg.InitialF1 {
		t.Errorf("F1 = %v, expected relaxation below initial %v", f1, cfg.InitialF1)
	}
	if len(ctrl.Adjustments()) == 0 {
		t.Error("no adjustments recorded")
	}
}

func TestControllerTightensOnDepletion(t *testing.T) {
	state := newTestState(t)
	cfg := DefaultConfig(2)
	cfg.WindowSlots = 4
	cfg.DepletionTargetFrac = 0.05
	ctrl, err := New(state, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Manually drain 20% of the fleet so the depletion trigger fires at
	// the first window boundary.
	numSats := state.Provider().NumSats()
	for sat := 0; sat < numSats/5; sat++ {
		b := state.Battery(sat)
		drain := b.CapacityJ() * 0.95
		for slot := 0; slot < 10; slot++ {
			drain += b.SolarRemainingAt(slot)
		}
		if err := b.Consume(0, drain); err != nil {
			// Close to the edge is fine too.
			continue
		}
	}
	// Two windows of light traffic to trigger adaptation.
	for slot := 0; slot < 12; slot++ {
		req := workload.Request{
			ID: slot, Src: groundEP(0), Dst: groundEP(1),
			ArrivalSlot: slot, StartSlot: slot, EndSlot: slot,
			RateMbps: 100, Valuation: 1e8,
		}
		if _, err := ctrl.Handle(req); err != nil {
			t.Fatal(err)
		}
	}
	_, f2 := ctrl.Params()
	if f2 <= cfg.InitialF2 {
		t.Errorf("F2 = %v, expected tightening above initial %v", f2, cfg.InitialF2)
	}
}

func TestMovingAveragePredictor(t *testing.T) {
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("k=0 should error")
	}
	m, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PredictLoad(0); got != 0 {
		t.Errorf("empty predictor = %v", got)
	}
	m.Observe(2)
	m.Observe(4)
	if got := m.PredictLoad(0); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
	m.Observe(6)
	m.Observe(8) // evicts the 2
	if got := m.PredictLoad(0); got != 6 {
		t.Errorf("windowed mean = %v, want 6", got)
	}
}

func TestPredictorScalesParameters(t *testing.T) {
	state := newTestState(t)
	ma, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1) // nominal 1 req/slot
	cfg.WindowSlots = 4
	cfg.Predictor = ma
	ctrl, err := New(state, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offer 5 req/slot — 5x nominal — so after the first window the
	// prediction far exceeds nominal and both parameters scale up.
	for slot := 0; slot < 12; slot++ {
		for k := 0; k < 5; k++ {
			req := workload.Request{
				ID: slot*10 + k, Src: groundEP(0), Dst: groundEP(1),
				ArrivalSlot: slot, StartSlot: slot, EndSlot: slot,
				RateMbps: 100, Valuation: 1e12, // never priced out
			}
			if _, err := ctrl.Handle(req); err != nil {
				t.Fatal(err)
			}
		}
	}
	f1, f2 := ctrl.Params()
	if f1 <= cfg.InitialF1 || f2 <= cfg.InitialF2 {
		t.Errorf("parameters not scaled up under 5x predicted load: F1=%v F2=%v", f1, f2)
	}
}

func TestClampF(t *testing.T) {
	if got := clampF(5, 1, 4); got != 4 {
		t.Errorf("clamp high = %v", got)
	}
	if got := clampF(0.1, 1, 4); got != 1 {
		t.Errorf("clamp low = %v", got)
	}
	if got := clampF(2, 1, 4); got != 2 {
		t.Errorf("clamp mid = %v", got)
	}
	if !math.IsNaN(clampF(math.NaN(), 1, 4)) {
		// NaN passes through both comparisons; documents the behaviour.
		t.Log("NaN clamps to NaN")
	}
}
