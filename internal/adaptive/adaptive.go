// Package adaptive implements the paper's §V-B practical parameter
// setting as a runnable controller: the LSN operator periodically
// re-derives the conservativeness parameters F1/F2 from observed network
// conditions, optionally guided by a traffic predictor in the style of
// the Algorithm-with-Predictions (AoP) framework the paper names as
// future work.
//
// The control rule instantiates the paper's guidance ("monitor the
// historical minimum and maximum demand ... periodically update F1 and
// F2 based on historical trends to maximize the actual achievable social
// welfare"):
//
//   - if too many requests were priced out in the last window, pricing
//     is too conservative → decrease F1 and F2;
//   - if battery depletion exceeds its target, the network is being
//     drained → increase F2 (conserve energy for the future);
//   - a load prediction above nominal scales both parameters up in
//     anticipation (reserve headroom for the predicted wave), and vice
//     versa.
//
// Parameters move multiplicatively and are clamped to [MinF, MaxF], so a
// bad predictor can only degrade performance within a bounded band —
// mirroring AoP's bounded-robustness property.
package adaptive

import (
	"fmt"

	"spacebooking/internal/core"
	"spacebooking/internal/netstate"
	"spacebooking/internal/obs"
	"spacebooking/internal/pricing"
	"spacebooking/internal/router"
	"spacebooking/internal/workload"
)

// Predictor forecasts the offered load (requests per slot) of the next
// adjustment window. Implementations may use any signal; the controller
// treats the forecast as advisory.
type Predictor interface {
	// PredictLoad returns the expected requests/slot for the window
	// starting at the given slot.
	PredictLoad(windowStart int) float64
}

// MovingAverage is the simplest useful Predictor: the mean observed
// arrival rate over the last k windows.
type MovingAverage struct {
	k       int
	history []float64
}

// NewMovingAverage builds a k-window moving-average predictor.
func NewMovingAverage(k int) (*MovingAverage, error) {
	if k <= 0 {
		return nil, fmt.Errorf("adaptive: window count must be positive, got %d", k)
	}
	return &MovingAverage{k: k}, nil
}

// Observe records a completed window's realised requests/slot.
func (m *MovingAverage) Observe(ratePerSlot float64) {
	m.history = append(m.history, ratePerSlot)
	if len(m.history) > m.k {
		m.history = m.history[len(m.history)-m.k:]
	}
}

// PredictLoad implements Predictor.
func (m *MovingAverage) PredictLoad(int) float64 {
	if len(m.history) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range m.history {
		sum += v
	}
	return sum / float64(len(m.history))
}

// Config parameterises the controller.
type Config struct {
	// WindowSlots is the adjustment period (how often F1/F2 are
	// re-derived).
	WindowSlots int
	// InitialF1 and InitialF2 seed the parameters (paper default: 1).
	InitialF1 float64
	InitialF2 float64
	// MinF and MaxF clamp both parameters.
	MinF float64
	MaxF float64
	// Step is the multiplicative adjustment per trigger (e.g. 1.5).
	Step float64
	// PricedOutTarget is the tolerated fraction of priced-out rejections
	// per window before pricing is relaxed.
	PricedOutTarget float64
	// DepletionTargetFrac is the tolerated fraction of depleted
	// satellites (battery < 20%) before energy pricing is tightened.
	DepletionTargetFrac float64
	// NominalRatePerSlot anchors the predictor scaling; a prediction of
	// exactly this load leaves the parameters unchanged.
	NominalRatePerSlot float64
	// MaxHops is forwarded to the inner CEAR.
	MaxHops int
	// UseGenericSearch, PruneBudget and Scratch are forwarded to the
	// inner CEAR's routing options (see core.Options). One Scratch is
	// shared by every rebuilt inner instance, so re-derivations keep the
	// warm search arrays.
	UseGenericSearch bool
	PruneBudget      bool
	Scratch          *netstate.SearchScratch
	// Predictor is optional; nil disables the AoP term.
	Predictor Predictor
	// Obs is forwarded to the inner CEAR (nil disables instrumentation).
	Obs *obs.Registry
}

// DefaultConfig returns a reasonable controller setup for the paper's
// workloads.
func DefaultConfig(nominalRate float64) Config {
	return Config{
		WindowSlots:         16,
		InitialF1:           1,
		InitialF2:           1,
		MinF:                0.25,
		MaxF:                16,
		Step:                1.5,
		PricedOutTarget:     0.3,
		DepletionTargetFrac: 0.1,
		NominalRatePerSlot:  nominalRate,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WindowSlots <= 0:
		return fmt.Errorf("adaptive: window must be positive, got %d", c.WindowSlots)
	case c.InitialF1 <= 0 || c.InitialF2 <= 0:
		return fmt.Errorf("adaptive: initial F must be positive (%v, %v)", c.InitialF1, c.InitialF2)
	case c.MinF <= 0 || c.MaxF < c.MinF:
		return fmt.Errorf("adaptive: bad F band [%v, %v]", c.MinF, c.MaxF)
	case c.Step <= 1:
		return fmt.Errorf("adaptive: step must exceed 1, got %v", c.Step)
	case c.PricedOutTarget < 0 || c.PricedOutTarget > 1:
		return fmt.Errorf("adaptive: priced-out target %v outside [0,1]", c.PricedOutTarget)
	case c.DepletionTargetFrac < 0 || c.DepletionTargetFrac > 1:
		return fmt.Errorf("adaptive: depletion target %v outside [0,1]", c.DepletionTargetFrac)
	case c.NominalRatePerSlot < 0:
		return fmt.Errorf("adaptive: negative nominal rate %v", c.NominalRatePerSlot)
	}
	return nil
}

// Controller wraps CEAR with periodic F1/F2 re-derivation. It implements
// router.Algorithm and owns the same resource state across re-derivations
// (only the pricing parameters change).
type Controller struct {
	state *netstate.State
	cfg   Config
	inner *core.CEAR

	f1, f2      float64
	windowStart int

	// Window statistics.
	arrived   int
	pricedOut int

	// AdjustmentLog records every re-derivation for inspection.
	adjustments []Adjustment
}

// Adjustment is one recorded parameter change.
type Adjustment struct {
	Slot   int
	F1, F2 float64
	Reason string
}

var _ router.Algorithm = (*Controller)(nil)

// New builds the controller over a strict-battery state.
func New(state *netstate.State, cfg Config) (*Controller, error) {
	if state == nil {
		return nil, fmt.Errorf("adaptive: nil state")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{state: state, cfg: cfg, f1: cfg.InitialF1, f2: cfg.InitialF2}
	if c.cfg.Scratch == nil {
		// Pin one scratch now so every rebuilt inner CEAR reuses the
		// same warm search arrays across re-derivations.
		c.cfg.Scratch = netstate.NewSearchScratch()
	}
	if err := c.rebuild(); err != nil {
		return nil, err
	}
	return c, nil
}

// Name implements router.Algorithm.
func (c *Controller) Name() string { return "CEAR-AD" }

// Params returns the currently active F1 and F2.
func (c *Controller) Params() (f1, f2 float64) { return c.f1, c.f2 }

// Adjustments returns the re-derivation history (do not modify).
func (c *Controller) Adjustments() []Adjustment { return c.adjustments }

// rebuild re-derives μ1/μ2 from the current F1/F2 and swaps the inner
// CEAR (sharing the same resource state).
func (c *Controller) rebuild() error {
	params, err := pricing.Derive(c.f1, c.f2, 20, 10)
	if err != nil {
		return err
	}
	inner, err := core.New(c.state, core.Options{
		Pricing:          params,
		MaxHops:          c.cfg.MaxHops,
		UseGenericSearch: c.cfg.UseGenericSearch,
		PruneBudget:      c.cfg.PruneBudget,
		Scratch:          c.cfg.Scratch,
		Obs:              c.cfg.Obs,
	})
	if err != nil {
		return err
	}
	c.inner = inner
	return nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// adapt closes one window and re-derives the parameters.
func (c *Controller) adapt(nowSlot int) error {
	reason := ""

	// Relax pricing if it rejected too aggressively.
	if c.arrived > 0 {
		frac := float64(c.pricedOut) / float64(c.arrived)
		if frac > c.cfg.PricedOutTarget {
			c.f1 /= c.cfg.Step
			c.f2 /= c.cfg.Step
			reason += fmt.Sprintf("priced-out %.0f%%>target; ", 100*frac)
		}
	}

	// Tighten energy pricing if the fleet is draining.
	prevSlot := nowSlot - 1
	if prevSlot >= 0 && prevSlot < c.state.Provider().Horizon() {
		depleted := c.state.DepletedSatCount(prevSlot, 0.2)
		fracDepleted := float64(depleted) / float64(c.state.Provider().NumSats())
		if fracDepleted > c.cfg.DepletionTargetFrac {
			c.f2 *= c.cfg.Step
			reason += fmt.Sprintf("depleted %.0f%%>target; ", 100*fracDepleted)
		}
	}

	// AoP term: scale toward the predicted load.
	if c.cfg.Predictor != nil && c.cfg.NominalRatePerSlot > 0 {
		if ma, ok := c.cfg.Predictor.(*MovingAverage); ok {
			ma.Observe(float64(c.arrived) / float64(c.cfg.WindowSlots))
		}
		predicted := c.cfg.Predictor.PredictLoad(nowSlot)
		if predicted > 0 {
			scale := predicted / c.cfg.NominalRatePerSlot
			switch {
			case scale > 1.25:
				c.f1 *= c.cfg.Step
				c.f2 *= c.cfg.Step
				reason += fmt.Sprintf("predicted load %.2fx nominal; ", scale)
			case scale < 0.75:
				c.f1 /= c.cfg.Step
				c.f2 /= c.cfg.Step
				reason += fmt.Sprintf("predicted load %.2fx nominal; ", scale)
			}
		}
	}

	c.f1 = clampF(c.f1, c.cfg.MinF, c.cfg.MaxF)
	c.f2 = clampF(c.f2, c.cfg.MinF, c.cfg.MaxF)
	c.arrived, c.pricedOut = 0, 0
	c.windowStart = nowSlot

	if reason == "" {
		return nil // no change, keep the inner CEAR as-is
	}
	c.adjustments = append(c.adjustments, Adjustment{Slot: nowSlot, F1: c.f1, F2: c.f2, Reason: reason})
	return c.rebuild()
}

// Handle implements router.Algorithm: window bookkeeping around the
// inner CEAR.
func (c *Controller) Handle(req workload.Request) (router.Decision, error) {
	for req.ArrivalSlot >= c.windowStart+c.cfg.WindowSlots {
		if err := c.adapt(c.windowStart + c.cfg.WindowSlots); err != nil {
			return router.Decision{}, err
		}
	}
	d, err := c.inner.Handle(req)
	if err != nil {
		return router.Decision{}, err
	}
	c.arrived++
	if !d.Accepted && isPricedOut(d.Reason) {
		c.pricedOut++
	}
	return d, nil
}

func isPricedOut(reason string) bool {
	return len(reason) >= 10 && reason[:10] == "plan price"
}
