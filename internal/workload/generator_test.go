package workload

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// drain pulls every request out of a fresh Generator.
func drain(t *testing.T, cfg Config) []Request {
	t.Helper()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	var out []Request
	for {
		req, ok := gen.Next()
		if !ok {
			return out
		}
		out = append(out, req)
	}
}

// TestGeneratorMatchesGenerate pins the streaming path to the batch
// path: same config, same seed, byte-identical sequence.
func TestGeneratorMatchesGenerate(t *testing.T) {
	cfg := DefaultConfig(64, testPairs(), 7)
	profile, err := DiurnalProfile(32, 0.5)
	if err != nil {
		t.Fatalf("DiurnalProfile: %v", err)
	}
	for name, c := range map[string]Config{
		"flat":    cfg,
		"diurnal": func() Config { c := cfg; c.RateProfile = profile; return c }(),
	} {
		t.Run(name, func(t *testing.T) {
			batch, err := Generate(c)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			streamed := drain(t, c)
			if len(batch) == 0 {
				t.Fatal("empty workload; test needs arrivals")
			}
			if !reflect.DeepEqual(batch, streamed) {
				t.Fatalf("streamed sequence diverges from Generate (%d vs %d requests)",
					len(streamed), len(batch))
			}
		})
	}
}

// TestGeneratorInvalidConfig mirrors Generate's validation.
func TestGeneratorInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(64, testPairs(), 7)
	cfg.Horizon = 0
	if _, err := NewGenerator(cfg); err == nil {
		t.Fatal("NewGenerator accepted zero horizon")
	}
}

// TestGeneratorDeterministicAcrossGOMAXPROCS guards the streaming
// refactor against accidental scheduling or parallelism dependence: the
// sequence must be a pure function of the config, whatever GOMAXPROCS
// is and whichever goroutine drains the stream.
func TestGeneratorDeterministicAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, seed := range []int64{7, 42, 1001} {
		cfg := DefaultConfig(96, testPairs(), seed)
		reference, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		for _, procs := range []int{1, 2, max(4, orig)} {
			runtime.GOMAXPROCS(procs)
			// Drain several independent generators concurrently; each must
			// reproduce the reference sequence exactly.
			const workers = 4
			results := make([][]Request, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gen, err := NewGenerator(cfg)
					if err != nil {
						return // checked via nil result below
					}
					var out []Request
					for {
						req, ok := gen.Next()
						if !ok {
							break
						}
						out = append(out, req)
					}
					results[w] = out
				}(w)
			}
			wg.Wait()
			for w, got := range results {
				if got == nil {
					t.Fatalf("seed %d GOMAXPROCS=%d worker %d: generator construction failed", seed, procs, w)
				}
				if !reflect.DeepEqual(got, reference) {
					t.Fatalf("seed %d GOMAXPROCS=%d worker %d: sequence diverges from reference", seed, procs, w)
				}
			}
		}
	}
}
