// Package workload generates the online request sequence of §VI-A:
// Poisson arrivals over ten randomly chosen source–destination pairs,
// durations uniform in [1,10] minutes, rates following a truncated
// exponential on [500, 2000] Mbps calibrated to the paper's 1250 Mbps
// mean, and a constant valuation per request.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spacebooking/internal/topology"
)

// Request is one online data-transfer request R_i of §III-B: a tuple of
// source, destination, per-slot rate demand, active window and valuation.
type Request struct {
	ID          int
	Src         topology.Endpoint
	Dst         topology.Endpoint
	ArrivalSlot int
	// StartSlot and EndSlot delimit the active window [st_i, ed_i],
	// inclusive on both ends.
	StartSlot int
	EndSlot   int
	// RateMbps is the per-slot demand δ_i(T) when RateVector is nil.
	// The paper's evaluation workload uses flat demands.
	RateMbps float64
	// RateVector optionally overrides the demand per active slot:
	// RateVector[k] is the demand at slot StartSlot+k. When set, its
	// length must equal DurationSlots() and every entry must be
	// positive.
	RateVector []float64
	Valuation  float64
	// Class labels the client class a scenario spec generated this
	// request under (empty for the paper's single-class workload). It
	// never influences admission — it exists for per-class observability
	// counters and trace attribution.
	Class string
}

// Source streams an online request sequence one arrival at a time, in
// non-decreasing arrival-slot order. Generator implements it, as do the
// scenario-spec generator and the trace replay source; sim.RunConfig
// accepts any Source in place of the built-in workload generation.
type Source interface {
	// Next returns the next request in arrival order; ok is false once
	// the sequence is exhausted.
	Next() (req Request, ok bool)
}

// SliceSource replays a fixed request sequence — the Source used by
// trace replay and by callers that materialise a workload up front.
type SliceSource struct {
	reqs []Request
	pos  int
}

// NewSliceSource wraps an already-ordered request slice. The slice is
// not copied; callers must not mutate it while the source is draining.
func NewSliceSource(reqs []Request) *SliceSource {
	return &SliceSource{reqs: reqs}
}

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	req := s.reqs[s.pos]
	s.pos++
	return req, true
}

// RateAt returns the demand δ_i(T) for an active slot. Callers must
// only ask about slots within [StartSlot, EndSlot].
func (r Request) RateAt(slot int) float64 {
	if r.RateVector == nil {
		return r.RateMbps
	}
	k := slot - r.StartSlot
	if k < 0 || k >= len(r.RateVector) {
		return 0
	}
	return r.RateVector[k]
}

// PeakRate returns the maximum per-slot demand.
func (r Request) PeakRate() float64 {
	if r.RateVector == nil {
		return r.RateMbps
	}
	peak := 0.0
	for _, v := range r.RateVector {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Validate reports whether the request is structurally sound for a
// horizon of the given length.
func (r Request) Validate(horizon int) error {
	if r.StartSlot < 0 || r.EndSlot < r.StartSlot || r.EndSlot >= horizon {
		return fmt.Errorf("workload: request %d window [%d,%d] outside horizon [0,%d)",
			r.ID, r.StartSlot, r.EndSlot, horizon)
	}
	if r.RateVector != nil {
		if len(r.RateVector) != r.DurationSlots() {
			return fmt.Errorf("workload: request %d rate vector length %d != duration %d",
				r.ID, len(r.RateVector), r.DurationSlots())
		}
		for k, v := range r.RateVector {
			if v <= 0 || math.IsNaN(v) {
				return fmt.Errorf("workload: request %d rate vector entry %d invalid: %v", r.ID, k, v)
			}
		}
		return nil
	}
	if r.RateMbps <= 0 || math.IsNaN(r.RateMbps) {
		return fmt.Errorf("workload: request %d has invalid rate %v", r.ID, r.RateMbps)
	}
	return nil
}

// DurationSlots returns the number of active slots.
func (r Request) DurationSlots() int { return r.EndSlot - r.StartSlot + 1 }

// Active reports κ(T, i): whether the request is active in the slot.
func (r Request) Active(slot int) bool { return slot >= r.StartSlot && slot <= r.EndSlot }

// Pair is a reusable source–destination endpoint pair.
type Pair struct {
	Src topology.Endpoint
	Dst topology.Endpoint
}

// Config parameterises request generation.
type Config struct {
	// ArrivalRatePerSlot is the Poisson arrival rate (requests/minute in
	// the paper, with 1-minute slots).
	ArrivalRatePerSlot float64
	// MinDurationSlots and MaxDurationSlots bound the uniform duration.
	MinDurationSlots int
	MaxDurationSlots int
	// MinRateMbps, MaxRateMbps and MeanRateMbps parameterise the
	// truncated-exponential demand distribution.
	MinRateMbps  float64
	MaxRateMbps  float64
	MeanRateMbps float64
	// Valuation is ρ_i, constant across requests as in §VI-A.
	Valuation float64
	// Horizon is the number of slots over which arrivals occur.
	Horizon int
	// Pairs are the candidate source–destination pairs; each request
	// picks one uniformly.
	Pairs []Pair
	// Seed drives the deterministic generator.
	Seed int64
	// RateProfile optionally modulates the arrival rate over time: the
	// effective rate at slot t is ArrivalRatePerSlot ×
	// RateProfile[t % len(RateProfile)]. Entries must be non-negative.
	// Nil means a flat Poisson process (the paper's workload).
	RateProfile []float64
}

// DefaultConfig returns the paper's default workload over the given
// pairs: 10 requests/minute, durations 1-10 min, rates 500-2000 Mbps with
// mean 1250, valuation 2.3e9.
func DefaultConfig(horizon int, pairs []Pair, seed int64) Config {
	return Config{
		ArrivalRatePerSlot: 10,
		MinDurationSlots:   1,
		MaxDurationSlots:   10,
		MinRateMbps:        500,
		MaxRateMbps:        2000,
		MeanRateMbps:       1250,
		Valuation:          2.3e9,
		Horizon:            horizon,
		Pairs:              pairs,
		Seed:               seed,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ArrivalRatePerSlot <= 0:
		return fmt.Errorf("workload: arrival rate must be positive, got %v", c.ArrivalRatePerSlot)
	case c.MinDurationSlots <= 0 || c.MaxDurationSlots < c.MinDurationSlots:
		return fmt.Errorf("workload: bad duration range [%d,%d]", c.MinDurationSlots, c.MaxDurationSlots)
	case c.MinRateMbps <= 0 || c.MaxRateMbps < c.MinRateMbps:
		return fmt.Errorf("workload: bad rate range [%v,%v]", c.MinRateMbps, c.MaxRateMbps)
	case c.MeanRateMbps < c.MinRateMbps || c.MeanRateMbps > c.MaxRateMbps:
		return fmt.Errorf("workload: mean rate %v outside [%v,%v]", c.MeanRateMbps, c.MinRateMbps, c.MaxRateMbps)
	case c.Valuation <= 0:
		return fmt.Errorf("workload: valuation must be positive, got %v", c.Valuation)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: horizon must be positive, got %d", c.Horizon)
	case len(c.Pairs) == 0:
		return fmt.Errorf("workload: no source-destination pairs")
	}
	for i, m := range c.RateProfile {
		if m < 0 || math.IsNaN(m) {
			return fmt.Errorf("workload: rate profile entry %d invalid: %v", i, m)
		}
	}
	return nil
}

// DiurnalProfile builds a sinusoidal rate profile with the given period
// (slots) and relative amplitude in [0,1): multiplier
// 1 + amplitude·sin(2πt/period). A 1440-slot period models a daily cycle
// at 1-minute slots.
func DiurnalProfile(periodSlots int, amplitude float64) ([]float64, error) {
	if periodSlots <= 0 {
		return nil, fmt.Errorf("workload: period must be positive, got %d", periodSlots)
	}
	if amplitude < 0 || amplitude >= 1 {
		return nil, fmt.Errorf("workload: amplitude %v outside [0,1)", amplitude)
	}
	out := make([]float64, periodSlots)
	for t := range out {
		out[t] = 1 + amplitude*math.Sin(2*math.Pi*float64(t)/float64(periodSlots))
	}
	return out, nil
}

// Generator streams the request sequence of Generate one request at a
// time: same configuration, same seed, byte-identical requests in the
// same order, without materialising the whole workload up front. The
// booking server's load generator uses it to synthesise arrivals on the
// fly; Generate itself is a Generator drained to a slice, so the two
// can never diverge.
//
// A Generator is single-goroutine: its RNG is stateful and calls to
// Next must not race. The sequence is a pure function of the Config —
// it does not depend on wall-clock time, scheduling, or GOMAXPROCS.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	sampler truncExpSampler
	slot    int // next slot to draw arrivals for
	pending int // requests still to emit in the current slot
	id      int
}

// NewGenerator validates the config and positions the stream before the
// first request.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sampler: newTruncExpSampler(cfg.MinRateMbps, cfg.MaxRateMbps, cfg.MeanRateMbps),
	}, nil
}

// Next returns the next request in arrival order. ok is false once the
// horizon is exhausted.
func (g *Generator) Next() (req Request, ok bool) {
	for g.pending == 0 {
		if g.slot >= g.cfg.Horizon {
			return Request{}, false
		}
		rate := g.cfg.ArrivalRatePerSlot
		if len(g.cfg.RateProfile) > 0 {
			rate *= g.cfg.RateProfile[g.slot%len(g.cfg.RateProfile)]
		}
		if rate > 0 {
			g.pending = poisson(g.rng, rate)
		}
		g.slot++
	}
	g.pending--
	slot := g.slot - 1 // arrivals belong to the slot just drawn
	pair := g.cfg.Pairs[g.rng.Intn(len(g.cfg.Pairs))]
	dur := g.cfg.MinDurationSlots + g.rng.Intn(g.cfg.MaxDurationSlots-g.cfg.MinDurationSlots+1)
	end := slot + dur - 1
	if end >= g.cfg.Horizon {
		end = g.cfg.Horizon - 1
	}
	req = Request{
		ID:          g.id,
		Src:         pair.Src,
		Dst:         pair.Dst,
		ArrivalSlot: slot,
		StartSlot:   slot,
		EndSlot:     end,
		RateMbps:    g.sampler.sample(g.rng),
		Valuation:   g.cfg.Valuation,
	}
	g.id++
	return req, true
}

// Generate produces the full request sequence ordered by arrival slot
// (ties broken by generation order, matching the paper's assumption that
// requests are processed in arrival order). It is a drained Generator.
func Generate(cfg Config) ([]Request, error) {
	gen, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	expected := int(cfg.ArrivalRatePerSlot*float64(cfg.Horizon)) + 1
	requests := make([]Request, 0, expected)
	for {
		req, ok := gen.Next()
		if !ok {
			return requests, nil
		}
		requests = append(requests, req)
	}
}

// poisson samples a Poisson variate via Knuth's method; adequate for the
// λ ≤ 25 used in the evaluation.
func poisson(rng *rand.Rand, lambda float64) int {
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// truncExpSampler samples from an exponential distribution shifted to
// min and truncated at max, with its rate calibrated so the realised
// mean matches the target. The paper asks for mean 1250 on [500, 2000] —
// the exact midpoint, which a truncated exponential only reaches in the
// uniform (rate→0) limit; the calibration therefore degrades gracefully
// to near-uniform in that case.
type truncExpSampler struct {
	min, max float64
	rate     float64 // 0 means uniform fallback
}

// truncExpMean returns the mean of min + Exp(rate) truncated to
// [min, max].
func truncExpMean(min, max, rate float64) float64 {
	width := max - min
	x := rate * width
	if x < 1e-4 {
		// Series expansion: the closed form subtracts two ~1/x terms and
		// loses all precision for small x.
		return min + width*(0.5-x/12)
	}
	// E = 1/rate - width * e^{-x} / (1 - e^{-x}), shifted by min.
	return min + 1/rate + width*math.Exp(-x)/math.Expm1(-x)
}

func newTruncExpSampler(min, max, targetMean float64) truncExpSampler {
	mid := min + (max-min)/2
	if targetMean >= mid {
		// Midpoint or above is only reachable in the uniform limit.
		return truncExpSampler{min: min, max: max, rate: 0}
	}
	// Bisect the rate: mean decreases as rate grows.
	lo, hi := 1e-9, 1.0
	for truncExpMean(min, max, hi) > targetMean {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		midRate := (lo + hi) / 2
		if truncExpMean(min, max, midRate) > targetMean {
			lo = midRate
		} else {
			hi = midRate
		}
	}
	return truncExpSampler{min: min, max: max, rate: (lo + hi) / 2}
}

func (s truncExpSampler) sample(rng *rand.Rand) float64 {
	if s.rate == 0 {
		return s.min + rng.Float64()*(s.max-s.min)
	}
	// Inverse-CDF sampling of the truncated exponential.
	width := s.max - s.min
	u := rng.Float64()
	return s.min - math.Log(1-u*(1-math.Exp(-s.rate*width)))/s.rate
}

// RateSampler draws per-request demands from the paper's calibrated
// truncated-exponential distribution. It is the exported form of the
// sampler Generator uses internally, so the scenario engine's per-class
// demand mixes share one calibration (and one set of edge cases: a mean
// at or above the midpoint degrades gracefully to uniform).
type RateSampler struct {
	inner truncExpSampler
}

// NewRateSampler calibrates a sampler on [min, max] with the target
// mean. The bounds must satisfy 0 < min <= mean <= max.
func NewRateSampler(min, max, mean float64) (RateSampler, error) {
	switch {
	case min <= 0 || max < min:
		return RateSampler{}, fmt.Errorf("workload: bad rate range [%v,%v]", min, max)
	case mean < min || mean > max:
		return RateSampler{}, fmt.Errorf("workload: mean rate %v outside [%v,%v]", mean, min, max)
	}
	return RateSampler{inner: newTruncExpSampler(min, max, mean)}, nil
}

// Sample draws one demand using the caller's RNG.
func (s RateSampler) Sample(rng *rand.Rand) float64 { return s.inner.sample(rng) }

// RandomGroundPairs draws `count` distinct source–destination pairs of
// ground sites, weighted by site GDP weight when weights are present
// (mirroring demand concentration in economically active regions).
func RandomGroundPairs(numSites, count int, seed int64) ([]Pair, error) {
	if numSites < 2 {
		return nil, fmt.Errorf("workload: need at least 2 sites, got %d", numSites)
	}
	if count <= 0 {
		return nil, fmt.Errorf("workload: pair count must be positive, got %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, count)
	seen := make(map[[2]int]bool, count)
	for len(pairs) < count {
		a, b := rng.Intn(numSites), rng.Intn(numSites)
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		pairs = append(pairs, Pair{
			Src: topology.Endpoint{Kind: topology.EndpointGround, Index: a},
			Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: b},
		})
	}
	return pairs, nil
}
