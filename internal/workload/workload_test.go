package workload

import (
	"math"
	"math/rand"
	"testing"

	"spacebooking/internal/topology"
)

func testPairs() []Pair {
	return []Pair{
		{Src: topology.Endpoint{Kind: topology.EndpointGround, Index: 0},
			Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: 1}},
		{Src: topology.Endpoint{Kind: topology.EndpointGround, Index: 2},
			Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: 3}},
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(100, testPairs(), 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero rate", func(c *Config) { c.ArrivalRatePerSlot = 0 }},
		{"zero min duration", func(c *Config) { c.MinDurationSlots = 0 }},
		{"inverted durations", func(c *Config) { c.MaxDurationSlots = 0 }},
		{"zero min rate", func(c *Config) { c.MinRateMbps = 0 }},
		{"inverted rates", func(c *Config) { c.MaxRateMbps = 100 }},
		{"mean outside range", func(c *Config) { c.MeanRateMbps = 9999 }},
		{"zero valuation", func(c *Config) { c.Valuation = 0 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"no pairs", func(c *Config) { c.Pairs = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(100, testPairs(), 1)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := DefaultConfig(200, testPairs(), 42)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	// Expected count ~ rate * horizon = 2000; allow wide tolerance.
	if len(reqs) < 1500 || len(reqs) > 2500 {
		t.Errorf("generated %d requests, expected ~2000", len(reqs))
	}
	lastArrival := -1
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.ArrivalSlot < lastArrival {
			t.Fatal("requests not ordered by arrival")
		}
		lastArrival = r.ArrivalSlot
		if r.StartSlot != r.ArrivalSlot {
			t.Fatalf("request %d starts at %d but arrives at %d", i, r.StartSlot, r.ArrivalSlot)
		}
		if r.EndSlot < r.StartSlot || r.EndSlot >= cfg.Horizon {
			t.Fatalf("request %d window [%d,%d] invalid", i, r.StartSlot, r.EndSlot)
		}
		if d := r.DurationSlots(); d < 1 || d > 10 {
			t.Fatalf("request %d duration %d outside [1,10]", i, d)
		}
		if r.RateMbps < 500 || r.RateMbps > 2000 {
			t.Fatalf("request %d rate %v outside [500,2000]", i, r.RateMbps)
		}
		if r.Valuation != 2.3e9 {
			t.Fatalf("request %d valuation %v", i, r.Valuation)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(50, testPairs(), 7)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].RateMbps != b[i].RateMbps ||
			a[i].StartSlot != b[i].StartSlot || a[i].EndSlot != b[i].EndSlot ||
			a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			t.Fatalf("request %d differs between runs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].RateMbps != c[i].RateMbps || a[i].EndSlot != c[i].EndSlot {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestGenerateArrivalRateMatches(t *testing.T) {
	for _, rate := range []float64{5, 10, 25} {
		cfg := DefaultConfig(400, testPairs(), 3)
		cfg.ArrivalRatePerSlot = rate
		reqs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(reqs)) / 400
		if math.Abs(got-rate) > rate*0.1 {
			t.Errorf("rate %v: realised %v requests/slot", rate, got)
		}
	}
}

func TestGenerateMeanRateCalibrated(t *testing.T) {
	cfg := DefaultConfig(400, testPairs(), 11)
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range reqs {
		sum += r.RateMbps
	}
	mean := sum / float64(len(reqs))
	// 1250 is the uniform-limit mean; allow sampling noise.
	if math.Abs(mean-1250) > 40 {
		t.Errorf("mean rate = %v, want ~1250", mean)
	}
}

func TestTruncExpSamplerCalibration(t *testing.T) {
	tests := []struct {
		name   string
		target float64
	}{
		{"strongly skewed", 700},
		{"mildly skewed", 1000},
		{"midpoint (uniform limit)", 1250},
	}
	rng := rand.New(rand.NewSource(4))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := newTruncExpSampler(500, 2000, tt.target)
			sum := 0.0
			const n = 200000
			for i := 0; i < n; i++ {
				x := s.sample(rng)
				if x < 500 || x > 2000 {
					t.Fatalf("sample %v outside range", x)
				}
				sum += x
			}
			mean := sum / n
			if math.Abs(mean-tt.target) > 15 {
				t.Errorf("realised mean = %v, want %v", mean, tt.target)
			}
		})
	}
}

func TestTruncExpMeanLimits(t *testing.T) {
	// Rate -> 0 gives the midpoint.
	if got := truncExpMean(500, 2000, 1e-12); math.Abs(got-1250) > 1 {
		t.Errorf("uniform-limit mean = %v", got)
	}
	// Large rate concentrates near the minimum.
	if got := truncExpMean(500, 2000, 0.1); got > 520 {
		t.Errorf("high-rate mean = %v, want near 500", got)
	}
	// Mean is decreasing in rate.
	prev := truncExpMean(500, 2000, 1e-6)
	for _, r := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		m := truncExpMean(500, 2000, r)
		if m >= prev {
			t.Fatalf("mean not decreasing at rate %v", r)
		}
		prev = m
	}
}

func TestPoissonMeanAndVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, lambda := range []float64{1, 5, 25} {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := float64(poisson(rng, lambda))
			sum += k
			sumSq += k * k
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > lambda*0.05 {
			t.Errorf("λ=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > lambda*0.1 {
			t.Errorf("λ=%v: variance %v", lambda, variance)
		}
	}
}

func TestRandomGroundPairs(t *testing.T) {
	pairs, err := RandomGroundPairs(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.Src.Kind != topology.EndpointGround || p.Dst.Kind != topology.EndpointGround {
			t.Fatal("non-ground endpoint")
		}
		if p.Src.Index == p.Dst.Index {
			t.Fatal("self pair")
		}
		key := [2]int{p.Src.Index, p.Dst.Index}
		if seen[key] {
			t.Fatal("duplicate pair")
		}
		seen[key] = true
	}
	if _, err := RandomGroundPairs(1, 1, 1); err == nil {
		t.Error("too few sites should error")
	}
	if _, err := RandomGroundPairs(10, 0, 1); err == nil {
		t.Error("zero count should error")
	}
}

func TestRequestActive(t *testing.T) {
	r := Request{StartSlot: 5, EndSlot: 8}
	for slot, want := range map[int]bool{4: false, 5: true, 7: true, 8: true, 9: false} {
		if got := r.Active(slot); got != want {
			t.Errorf("Active(%d) = %v, want %v", slot, got, want)
		}
	}
	if r.DurationSlots() != 4 {
		t.Errorf("duration = %d", r.DurationSlots())
	}
}

func TestRequestRateAt(t *testing.T) {
	flat := Request{StartSlot: 5, EndSlot: 8, RateMbps: 700}
	for slot := 5; slot <= 8; slot++ {
		if got := flat.RateAt(slot); got != 700 {
			t.Errorf("flat RateAt(%d) = %v", slot, got)
		}
	}
	if flat.PeakRate() != 700 {
		t.Errorf("flat peak = %v", flat.PeakRate())
	}

	vec := Request{StartSlot: 5, EndSlot: 8, RateVector: []float64{100, 200, 300, 250}}
	want := map[int]float64{5: 100, 6: 200, 7: 300, 8: 250}
	for slot, w := range want {
		if got := vec.RateAt(slot); got != w {
			t.Errorf("vector RateAt(%d) = %v, want %v", slot, got, w)
		}
	}
	if vec.PeakRate() != 300 {
		t.Errorf("vector peak = %v", vec.PeakRate())
	}
	// Out-of-window queries on a vector request are zero, not panics.
	if vec.RateAt(4) != 0 || vec.RateAt(9) != 0 {
		t.Error("out-of-window vector rate should be 0")
	}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		req     Request
		wantErr bool
	}{
		{"valid flat", Request{StartSlot: 0, EndSlot: 3, RateMbps: 100}, false},
		{"valid vector", Request{StartSlot: 0, EndSlot: 2, RateVector: []float64{1, 2, 3}}, false},
		{"negative start", Request{StartSlot: -1, EndSlot: 3, RateMbps: 100}, true},
		{"inverted window", Request{StartSlot: 5, EndSlot: 4, RateMbps: 100}, true},
		{"beyond horizon", Request{StartSlot: 0, EndSlot: 99, RateMbps: 100}, true},
		{"zero flat rate", Request{StartSlot: 0, EndSlot: 3, RateMbps: 0}, true},
		{"NaN flat rate", Request{StartSlot: 0, EndSlot: 3, RateMbps: math.NaN()}, true},
		{"vector length mismatch", Request{StartSlot: 0, EndSlot: 2, RateVector: []float64{1, 2}}, true},
		{"vector zero entry", Request{StartSlot: 0, EndSlot: 1, RateVector: []float64{1, 0}}, true},
		{"vector NaN entry", Request{StartSlot: 0, EndSlot: 1, RateVector: []float64{1, math.NaN()}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.req.Validate(50); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDiurnalProfile(t *testing.T) {
	p, err := DiurnalProfile(96, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 96 {
		t.Fatalf("length = %d", len(p))
	}
	sum := 0.0
	for i, m := range p {
		if m < 0.5-1e-9 || m > 1.5+1e-9 {
			t.Fatalf("entry %d = %v outside [0.5,1.5]", i, m)
		}
		sum += m
	}
	// The sinusoid averages to 1 over a full period.
	if math.Abs(sum/96-1) > 1e-9 {
		t.Errorf("mean multiplier = %v, want 1", sum/96)
	}
	if _, err := DiurnalProfile(0, 0.5); err == nil {
		t.Error("zero period should error")
	}
	if _, err := DiurnalProfile(96, 1); err == nil {
		t.Error("amplitude 1 should error")
	}
	if _, err := DiurnalProfile(96, -0.1); err == nil {
		t.Error("negative amplitude should error")
	}
}

func TestGenerateWithRateProfile(t *testing.T) {
	cfg := DefaultConfig(400, testPairs(), 5)
	cfg.ArrivalRatePerSlot = 10
	// Half the slots are silent: only even slots produce arrivals.
	cfg.RateProfile = []float64{2, 0}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.ArrivalSlot%2 != 0 {
			t.Fatalf("request arrived in silent slot %d", r.ArrivalSlot)
		}
	}
	// Mean rate is preserved: 10 * mean(2,0) = 10 per slot overall.
	got := float64(len(reqs)) / 400
	if math.Abs(got-10) > 1.0 {
		t.Errorf("overall rate = %v, want ~10", got)
	}

	bad := cfg
	bad.RateProfile = []float64{1, -1}
	if _, err := Generate(bad); err == nil {
		t.Error("negative profile entry should error")
	}
}
