package workload_test

import (
	"fmt"

	"spacebooking/internal/topology"
	"spacebooking/internal/workload"
)

// Generate the paper's §VI-A workload over one source-destination pair:
// Poisson arrivals, durations uniform in [1,10] minutes, rates from the
// truncated-exponential demand distribution.
func ExampleGenerate() {
	pair := workload.Pair{
		Src: topology.Endpoint{Kind: topology.EndpointGround, Index: 0},
		Dst: topology.Endpoint{Kind: topology.EndpointGround, Index: 1},
	}
	cfg := workload.DefaultConfig(96, []workload.Pair{pair}, 42)
	cfg.ArrivalRatePerSlot = 1

	reqs, err := workload.Generate(cfg)
	if err != nil {
		panic(err)
	}
	r := reqs[0]
	fmt.Printf("first request: arrives slot %d, active [%d,%d], rate within [500,2000]: %v\n",
		r.ArrivalSlot, r.StartSlot, r.EndSlot, r.RateMbps >= 500 && r.RateMbps <= 2000)
	fmt.Printf("deterministic for a seed: %v\n", len(reqs) > 50)
	// Output:
	// first request: arrives slot 0, active [0,0], rate within [500,2000]: true
	// deterministic for a seed: true
}

// Per-slot demand vectors (the paper's δ_i(T)) drop into the same
// Request type.
func ExampleRequest_RateAt() {
	r := workload.Request{
		StartSlot: 10, EndSlot: 12,
		RateVector: []float64{800, 1500, 600},
	}
	for slot := 10; slot <= 12; slot++ {
		fmt.Printf("slot %d: %.0f Mbps\n", slot, r.RateAt(slot))
	}
	fmt.Printf("peak: %.0f Mbps\n", r.PeakRate())
	// Output:
	// slot 10: 800 Mbps
	// slot 11: 1500 Mbps
	// slot 12: 600 Mbps
	// peak: 1500 Mbps
}
