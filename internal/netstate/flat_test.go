package netstate

import (
	"math"
	"reflect"
	"testing"

	"spacebooking/internal/graph"
)

// TestBuildViewErrors mirrors TestNewViewErrors: the flat builder must
// reject exactly the inputs the generic constructor rejects.
func TestBuildViewErrors(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	sc := NewSearchScratch()
	if _, err := sc.BuildView(nil, 0, groundEP(0), groundEP(1), 100, hopCost); err == nil {
		t.Error("nil state should error")
	}
	if _, err := sc.BuildView(s, 0, groundEP(0), groundEP(1), 100, nil); err == nil {
		t.Error("nil cost should error")
	}
	if _, err := sc.BuildView(s, 0, groundEP(0), groundEP(1), 0, hopCost); err == nil {
		t.Error("zero demand should error")
	}
	if _, err := sc.BuildView(s, -1, groundEP(0), groundEP(1), 100, hopCost); err == nil {
		t.Error("bad slot should error")
	}
	if _, err := sc.BuildView(s, 0, groundEP(9), groundEP(1), 100, hopCost); err == nil {
		t.Error("bad endpoint should error")
	}
}

// TestFlatViewMirrorsGenericView checks node numbering, link keys and
// per-edge prices against the generic View on a live slot, then runs
// both search kernels on both representations and requires identical
// paths and consumption vectors. One scratch serves every comparison,
// so the test also covers epoch-stamped cache reuse across views.
func TestFlatViewMirrorsGenericView(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	sc := NewSearchScratch()

	transit := func(node int, in, out graph.EdgeClass) float64 {
		c := float64(node%5) * 0.25
		if in == graph.ClassUSL {
			c *= 2
		}
		return c
	}

	for trial := 0; trial < 3; trial++ {
		demand := 100 * float64(trial+1)
		gv, err := NewView(s, slot, groundEP(0), groundEP(1), demand, hopCost)
		if err != nil {
			t.Fatal(err)
		}
		fv, err := sc.BuildView(s, slot, groundEP(0), groundEP(1), demand, hopCost)
		if err != nil {
			t.Fatal(err)
		}
		if fv.N() != gv.N() || fv.SrcNode() != gv.SrcNode() || fv.DstNode() != gv.DstNode() {
			t.Fatalf("shape mismatch: flat (%d,%d,%d) vs generic (%d,%d,%d)",
				fv.N(), fv.SrcNode(), fv.DstNode(), gv.N(), gv.SrcNode(), gv.DstNode())
		}
		if fv.Slot() != gv.Slot() || fv.DemandMbps() != gv.DemandMbps() {
			t.Fatalf("slot/demand mismatch")
		}

		// Every edge the generic view offers must appear in the flat walk
		// with the same key and price.
		for node := 0; node < gv.N(); node++ {
			type edgeSeen struct {
				to    int
				class graph.EdgeClass
				cost  float64
				key   LinkKey
			}
			var want []edgeSeen
			gv.VisitNeighbors(node, func(e graph.Edge) bool {
				want = append(want, edgeSeen{e.To, e.Class, e.Cost, gv.LinkKeyFor(node, e.To)})
				return true
			})
			var got []edgeSeen
			fv.VisitNeighbors(node, func(e graph.Edge) bool {
				got = append(got, edgeSeen{e.To, e.Class, e.Cost, fv.LinkKeyFor(node, e.To)})
				return true
			})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d node %d: neighbor walks differ\ngeneric: %+v\nflat:    %+v",
					trial, node, want, got)
			}
		}

		for _, tr := range []graph.TransitCostFunc{nil, transit} {
			pw, okw := graph.ShortestPath(gv, gv.SrcNode(), gv.DstNode(), tr)
			pg, okg, pruned := fv.Search(tr, 0, 0, math.Inf(1))
			if pruned {
				t.Fatalf("trial %d: unbudgeted search reported pruning", trial)
			}
			if okw != okg || !reflect.DeepEqual(pw, pg) {
				t.Fatalf("trial %d: dijkstra diverged\ngeneric: ok=%v %+v\nflat:    ok=%v %+v",
					trial, okw, pw, okg, pg)
			}
			if okw {
				cw := gv.PathConsumptions(pw)
				cg := fv.AppendConsumptions(pg, nil)
				if !reflect.DeepEqual(cw, cg) {
					t.Fatalf("trial %d: consumptions diverged\ngeneric: %+v\nflat:    %+v", trial, cw, cg)
				}
			}

			for _, maxHops := range []int{2, 4, 8} {
				hw, okw := graph.ShortestPathHopLimited(gv, gv.SrcNode(), gv.DstNode(), maxHops, tr)
				hg, okg, pruned := fv.Search(tr, maxHops, 0, math.Inf(1))
				if pruned {
					t.Fatalf("trial %d: unbudgeted hop search reported pruning", trial)
				}
				if okw != okg || !reflect.DeepEqual(hw, hg) {
					t.Fatalf("trial %d cap %d: hop-limited diverged\ngeneric: ok=%v %+v\nflat:    ok=%v %+v",
						trial, maxHops, okw, hw, okg, hg)
				}
			}
		}
	}
}

// TestFlatSearchBudgetPruning pins the pruning contract on a live view:
// with a budget below the true path cost the search must report
// pruned=true and find nothing better, and with the budget exactly at
// the path cost it must return the same path as the unbudgeted search.
func TestFlatSearchBudgetPruning(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	sc := NewSearchScratch()
	fv, err := sc.BuildView(s, slot, groundEP(0), groundEP(1), 100, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxHops := range []int{0, 6} {
		free, ok, _ := fv.Search(nil, maxHops, 0, math.Inf(1))
		if !ok {
			t.Fatalf("maxHops %d: no baseline path", maxHops)
		}
		// With the budget exactly at the path cost the optimal path must
		// survive. The DP may still report pruned=true (it discards
		// non-optimal over-budget labels along the way); the flag only
		// carries meaning when the search fails.
		if p, ok, _ := fv.Search(nil, maxHops, 0, free.Cost); !ok || !reflect.DeepEqual(p, free) {
			t.Fatalf("maxHops %d: budget == cost must keep the path (ok=%v)", maxHops, ok)
		}
		if _, ok, pruned := fv.Search(nil, maxHops, 0, free.Cost/2); ok || !pruned {
			t.Fatalf("maxHops %d: budget below cost must prune (ok=%v pruned=%v)", maxHops, ok, pruned)
		}
		// budgetBase shifts the accumulated-price origin: an exhausted
		// base leaves no room for any edge.
		if _, ok, pruned := fv.Search(nil, maxHops, free.Cost, free.Cost); ok || !pruned {
			t.Fatalf("maxHops %d: exhausted base must prune (ok=%v pruned=%v)", maxHops, ok, pruned)
		}
	}
}
