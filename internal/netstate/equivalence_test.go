package netstate

import (
	"math"
	"testing"

	"spacebooking/internal/graph"
)

// materialize builds an explicit graph.Graph with the exact edges and
// costs the implicit View exposes.
func materialize(v *View) *graph.Graph {
	g := graph.New(v.N())
	for node := 0; node < v.N(); node++ {
		v.VisitNeighbors(node, func(e graph.Edge) bool {
			cost := e.Cost
			if math.IsInf(cost, 1) {
				return true // explicit graph simply omits masked edges
			}
			_ = g.AddEdge(node, e.To, e.Class, e.Payload, cost)
			return true
		})
	}
	return g
}

// TestViewEquivalentToExplicitGraph cross-validates the implicit
// adjacency against a materialized copy: identical shortest paths for
// several cost regimes, with and without transit costs.
func TestViewEquivalentToExplicitGraph(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))

	costFns := map[string]EdgeCostFunc{
		"unit": hopCost,
		"utilization-weighted": func(key LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
			return 1 + 100*utilization
		},
		"class-dependent": func(key LinkKey, class graph.EdgeClass, capacity, utilization float64) float64 {
			if class == graph.ClassUSL {
				return 7
			}
			return 2
		},
	}

	// Put some load on the network so utilization-based costs vary.
	srcGID := s.Provider().GlobalID(groundEP(0))
	vis, err := s.Provider().VisibleSats(groundEP(0), slot)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReserveLink(MakeLinkKey(srcGID, vis[0]), slot, 2000); err != nil {
		t.Fatal(err)
	}
	if err := s.ReserveLink(MakeLinkKey(vis[0], s.Provider().ISLNeighbors(vis[0])[0]), slot, 9000); err != nil {
		t.Fatal(err)
	}

	transits := map[string]graph.TransitCostFunc{
		"none": nil,
		"battery-weighted": func(node int, in, out graph.EdgeClass) float64 {
			return 3 * s.Battery(node).UtilizationAt(slot)
		},
	}

	for costName, costFn := range costFns {
		for transitName, transit := range transits {
			v, err := NewView(s, slot, groundEP(0), groundEP(1), 500, costFn)
			if err != nil {
				t.Fatal(err)
			}
			explicit := materialize(v)

			pImp, okImp := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), transit)
			pExp, okExp := graph.ShortestPath(explicit, v.SrcNode(), v.DstNode(), transit)
			if okImp != okExp {
				t.Fatalf("%s/%s: reachability differs (implicit %v, explicit %v)",
					costName, transitName, okImp, okExp)
			}
			if !okImp {
				continue
			}
			if math.Abs(pImp.Cost-pExp.Cost) > 1e-9 {
				t.Fatalf("%s/%s: cost differs: implicit %v, explicit %v",
					costName, transitName, pImp.Cost, pExp.Cost)
			}
			// Hop-limited search must agree too.
			hImp, okH1 := graph.ShortestPathHopLimited(v, v.SrcNode(), v.DstNode(), 20, transit)
			hExp, okH2 := graph.ShortestPathHopLimited(explicit, v.SrcNode(), v.DstNode(), 20, transit)
			if okH1 != okH2 || (okH1 && math.Abs(hImp.Cost-hExp.Cost) > 1e-9) {
				t.Fatalf("%s/%s: hop-limited results differ", costName, transitName)
			}
			// Min-hop as well.
			mImp, okM1 := graph.MinHopPath(v, v.SrcNode(), v.DstNode())
			mExp, okM2 := graph.MinHopPath(explicit, v.SrcNode(), v.DstNode())
			if okM1 != okM2 || (okM1 && mImp.Hops() != mExp.Hops()) {
				t.Fatalf("%s/%s: min-hop results differ", costName, transitName)
			}
		}
	}
}
