// Package netstate tracks the reservable resources of the LSN across the
// simulation horizon: per-slot, per-link bandwidth ledgers (constraint
// (7b) of the paper) and per-satellite battery ledgers (constraint (7c)),
// plus the congestion/depletion metrics reported in the paper's Fig. 7.
//
// It also provides View, an implicit graph over the per-slot LSN (static
// +Grid ISLs plus the request's user links) that the routing algorithms
// search without materialising adjacency lists.
package netstate

import (
	"fmt"
	"math"
	"sort"

	"spacebooking/internal/energy"
	"spacebooking/internal/graph"
	"spacebooking/internal/obs"
	"spacebooking/internal/topology"
)

// LinkKey identifies a directed link by the global node IDs of its two
// endpoints (see topology.Provider.GlobalID). Keys are stable across
// slots, so one ledger accumulates a link's reservations over time.
type LinkKey int64

// MakeLinkKey packs two global node IDs into a key.
func MakeLinkKey(from, to int) LinkKey {
	return LinkKey(int64(from)<<32 | int64(uint32(to)))
}

// From returns the transmitting node's global ID.
func (k LinkKey) From() int { return int(int64(k) >> 32) }

// To returns the receiving node's global ID.
func (k LinkKey) To() int { return int(uint32(int64(k))) }

// EnergyConfig holds the power model constants of §VI-A.
type EnergyConfig struct {
	// PanelWatts is the solar panel harvesting power (20 W).
	PanelWatts float64
	// BatteryCapacityJ is ϖ_s (117 kJ).
	BatteryCapacityJ float64
	// Unit energies in joules per megabyte, by link class and direction.
	ISLTxJPerMB float64
	ISLRxJPerMB float64
	USLTxJPerMB float64
	USLRxJPerMB float64
}

// DefaultEnergyConfig returns the paper's power constants.
func DefaultEnergyConfig() EnergyConfig {
	return EnergyConfig{
		PanelWatts:       20,
		BatteryCapacityJ: 117000,
		ISLTxJPerMB:      0.25,
		ISLRxJPerMB:      0.2,
		USLTxJPerMB:      1.0,
		USLRxJPerMB:      0.8,
	}
}

// Validate reports configuration errors.
func (c EnergyConfig) Validate() error {
	switch {
	case c.PanelWatts < 0:
		return fmt.Errorf("netstate: negative panel power %v", c.PanelWatts)
	case c.BatteryCapacityJ <= 0:
		return fmt.Errorf("netstate: battery capacity must be positive, got %v", c.BatteryCapacityJ)
	case c.ISLTxJPerMB < 0 || c.ISLRxJPerMB < 0 || c.USLTxJPerMB < 0 || c.USLRxJPerMB < 0:
		return fmt.Errorf("netstate: negative unit energy")
	}
	return nil
}

// rxUnitJPerMB returns the receive-side unit energy for a link class.
// ClassNone (path source side) costs nothing.
func (c EnergyConfig) rxUnitJPerMB(class graph.EdgeClass) float64 {
	switch class {
	case graph.ClassISL:
		return c.ISLRxJPerMB
	case graph.ClassUSL:
		return c.USLRxJPerMB
	default:
		return 0
	}
}

// txUnitJPerMB returns the transmit-side unit energy for a link class.
func (c EnergyConfig) txUnitJPerMB(class graph.EdgeClass) float64 {
	switch class {
	case graph.ClassISL:
		return c.ISLTxJPerMB
	case graph.ClassUSL:
		return c.USLTxJPerMB
	default:
		return 0
	}
}

// TransitEnergyJ implements Eq. (1): the per-slot energy a satellite
// consumes to carry rateMbps for slotSeconds, given the classes of its
// incoming and outgoing links. A relay (ISL in, ISL out) pays
// δ(ω_ISL_rx + ω_ISL_tx); an ingress gateway (USL in, ISL out) pays
// δ(ω_USL_rx + ω_ISL_tx); an egress gateway symmetrically; and the
// single-satellite src→s→dst case pays USL on both sides.
func (c EnergyConfig) TransitEnergyJ(in, out graph.EdgeClass, rateMbps, slotSeconds float64) float64 {
	megabytes := rateMbps * slotSeconds / 8
	return megabytes * (c.rxUnitJPerMB(in) + c.txUnitJPerMB(out))
}

// linkLedger tracks one directed link's reservations per slot.
type linkLedger struct {
	capacityMbps float64
	used         []float64
}

// State is the mutable resource state of one simulation run. It is not
// safe for concurrent use; each run owns its State.
type State struct {
	prov      *topology.Provider
	energyCfg EnergyConfig
	links     map[LinkKey]*linkLedger
	batteries []*energy.Battery
	instr     stateInstruments
	// txn is the snapshot/undo arena of the single open transaction;
	// see txnScratch.
	txn txnScratch
	// hot is the opt-in per-entity attribution state; see EnableHotspots.
	hot hotspots

	// Two-phase commit support (see prepare.go). All zero/nil — and the
	// single-phase path unchanged — until EnableTwoPhase or
	// SetCommitInterceptor is called.
	twoPhase  bool
	intercept CommitInterceptor
	// batVer counts mutations per battery; a Prepared whose battery is
	// unchanged since Prepare aborts by snapshot restore (bit-exact),
	// otherwise by step refund.
	batVer []uint64
	prep   prepareLedger
}

// stateInstruments caches the state's observability handles. All nil
// (no-op) until SetObs attaches a registry.
type stateInstruments struct {
	txnCommits    *obs.Counter
	txnRollbacks  *obs.Counter
	txnPrepares   *obs.Counter
	linkReserves  *obs.Counter
	trialConsumes *obs.Counter
	scratchReuses *obs.Counter
	// commitNanos accumulates wall time in the transaction commit path
	// (ReservePath + Consume). Nil — no clock reads — unless
	// EnableTraceDetail attaches it.
	commitNanos *obs.Counter
	// graph is handed to every search run over this state's Views;
	// energy is attached to every battery. Both are per-State handles —
	// this is what lets concurrent runs on a shared provider count into
	// their own registries.
	graph  *graph.Instruments
	energy *energy.Instruments
}

// SetObs attaches observability counters from the registry (nil is a
// no-op). Call before the run starts; the State is single-owner, so the
// handles are plain fields. The graph-search and battery instruments
// are built here too and threaded down explicitly: Views expose the
// graph handle to the searches, and every battery (including clones the
// trial paths make) carries the energy handle.
func (s *State) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.instr = stateInstruments{
		txnCommits:    reg.Counter("netstate.txn.commits"),
		txnRollbacks:  reg.Counter("netstate.txn.rollbacks"),
		txnPrepares:   reg.Counter("netstate.txn.prepares"),
		linkReserves:  reg.Counter("netstate.link.reservations"),
		trialConsumes: reg.Counter("netstate.trial_consumes"),
		scratchReuses: reg.Counter("netstate.scratch.reuses"),
		graph: &graph.Instruments{
			HeapPops:          reg.Counter("graph.dijkstra.heap_pops"),
			EdgeRelaxations:   reg.Counter("graph.edge_relaxations"),
			YenSpurIterations: reg.Counter("graph.yen.spur_iterations"),
			FastPathSearches:  reg.Counter("graph.fastpath.searches"),
			PrunedLabels:      reg.Counter("graph.fastpath.pruned_labels"),
		},
		energy: &energy.Instruments{
			DeficitWalks: reg.Counter("energy.deficit_walks"),
			Consumptions: reg.Counter("energy.consumptions"),
		},
	}
	for _, b := range s.batteries {
		b.Instrument(s.instr.energy)
	}
}

// GraphInstruments returns the search counters of this state (nil when
// no registry is attached). Views forward it to the searches.
func (s *State) GraphInstruments() *graph.Instruments { return s.instr.graph }

// EnableTraceDetail attaches the sub-phase wall-time counters — search,
// deficit-pricing and commit nanoseconds — that the serving layer's
// per-request phase breakdown reads as deltas around each admission.
// They are separate from SetObs because every timed site pays two clock
// reads per call: batch simulations and benchmarks never enable them.
// Requires SetObs to have attached the same registry first (the handles
// are fields of the instrument structs SetObs built, shared by pointer
// with live views and batteries); a nil registry or un-observed state
// is a no-op. Call before the run starts — the State is single-owner.
func (s *State) EnableTraceDetail(reg *obs.Registry) {
	if reg == nil || s.instr.graph == nil {
		return
	}
	// Names deliberately avoid "seconds": obsdiff's default wall-time
	// gates would otherwise treat these monotonic nano totals as
	// regression-gated quantities.
	s.instr.graph.SearchNanos = reg.Counter("graph.search.nanos")
	s.instr.graph.PricingNanos = reg.Counter("energy.pricing.nanos")
	s.instr.commitNanos = reg.Counter("netstate.commit.nanos")
}

// New builds the resource state: empty link ledgers and one battery per
// broadband satellite, with solar input derived from the satellite's
// sunlit profile. clampBatteries selects baseline-mode energy accounting
// (saturate at empty) versus CEAR's strict constraint (7c).
func New(prov *topology.Provider, energyCfg EnergyConfig, clampBatteries bool) (*State, error) {
	if prov == nil {
		return nil, fmt.Errorf("netstate: nil provider")
	}
	if err := energyCfg.Validate(); err != nil {
		return nil, err
	}
	s := &State{
		prov:      prov,
		energyCfg: energyCfg,
		links:     make(map[LinkKey]*linkLedger),
		batteries: make([]*energy.Battery, prov.NumSats()),
	}
	slotSec := prov.Config().SlotSeconds
	for sat := 0; sat < prov.NumSats(); sat++ {
		solar := energy.SolarInputVector(prov.SunlitVector(sat), energyCfg.PanelWatts, slotSec)
		b, err := energy.NewBattery(energyCfg.BatteryCapacityJ, solar, clampBatteries)
		if err != nil {
			return nil, fmt.Errorf("netstate: battery for satellite %d: %w", sat, err)
		}
		s.batteries[sat] = b
	}
	return s, nil
}

// Provider returns the topology provider backing this state.
func (s *State) Provider() *topology.Provider { return s.prov }

// EnergyConfig returns the power model constants.
func (s *State) EnergyConfig() EnergyConfig { return s.energyCfg }

// Battery returns the ledger of a satellite.
func (s *State) Battery(sat int) *energy.Battery { return s.batteries[sat] }

// linkCapacity derives a link's capacity from its endpoints: ISL between
// two satellites, USL otherwise.
func (s *State) linkCapacity(key LinkKey) float64 {
	cfg := s.prov.Config()
	if key.From() < s.prov.NumSats() && key.To() < s.prov.NumSats() {
		return cfg.ISLCapacityMbps
	}
	return cfg.USLCapacityMbps
}

// LinkCapacityMbps returns the capacity c_e of a link.
func (s *State) LinkCapacityMbps(key LinkKey) float64 { return s.linkCapacity(key) }

// LinkUsedMbps returns the bandwidth already reserved on a link in a slot.
func (s *State) LinkUsedMbps(key LinkKey, slot int) float64 {
	l := s.links[key]
	if l == nil || slot < 0 || slot >= len(l.used) {
		return 0
	}
	return l.used[slot]
}

// LinkUtilization returns λ_e(T) per Eq. (8): reserved bandwidth divided
// by capacity, in [0, 1] for feasible states.
func (s *State) LinkUtilization(key LinkKey, slot int) float64 {
	return s.LinkUsedMbps(key, slot) / s.linkCapacity(key)
}

// LinkResidualMbps returns the remaining reservable bandwidth of a link
// in a slot.
func (s *State) LinkResidualMbps(key LinkKey, slot int) float64 {
	return s.linkCapacity(key) - s.LinkUsedMbps(key, slot)
}

// ReserveLink reserves rateMbps on a link for one slot. It fails without
// side effects if the link would be over-subscribed.
func (s *State) ReserveLink(key LinkKey, slot int, rateMbps float64) error {
	if rateMbps <= 0 || math.IsNaN(rateMbps) {
		return fmt.Errorf("netstate: invalid reservation rate %v", rateMbps)
	}
	if slot < 0 || slot >= s.prov.Horizon() {
		return fmt.Errorf("netstate: slot %d outside horizon [0,%d)", slot, s.prov.Horizon())
	}
	cap := s.linkCapacity(key)
	l := s.links[key]
	if l == nil {
		l = &linkLedger{capacityMbps: cap, used: make([]float64, s.prov.Horizon())}
		s.links[key] = l
	}
	if l.used[slot]+rateMbps > cap*(1+1e-12) {
		return fmt.Errorf("netstate: link %d->%d over-subscribed at slot %d: %v + %v > %v",
			key.From(), key.To(), slot, l.used[slot], rateMbps, cap)
	}
	l.used[slot] += rateMbps
	s.instr.linkReserves.Inc()
	return nil
}

// NumActiveLinks returns the number of links with at least one
// reservation anywhere in the horizon.
func (s *State) NumActiveLinks() int { return len(s.links) }

// CongestedLinkCount counts links whose remaining bandwidth in the slot
// is below thresholdFrac of capacity — the paper's "congestion link
// number" metric with thresholdFrac = 0.1.
func (s *State) CongestedLinkCount(slot int, thresholdFrac float64) int {
	count := 0
	for _, l := range s.links {
		if slot < 0 || slot >= len(l.used) {
			continue
		}
		if l.capacityMbps-l.used[slot] < thresholdFrac*l.capacityMbps {
			count++
		}
	}
	return count
}

// DepletedSatCount counts satellites whose remaining battery at the end
// of the slot is below thresholdFrac of capacity — the paper's
// "energy-depleted satellites number" metric with thresholdFrac = 0.2.
func (s *State) DepletedSatCount(slot int, thresholdFrac float64) int {
	count := 0
	for _, b := range s.batteries {
		if b.LevelAt(slot) < thresholdFrac*b.CapacityJ() {
			count++
		}
	}
	return count
}

// EnergyDeficitJ returns the fleet-wide outstanding energy deficit at
// the end of the slot — the per-slot "energy debt" gauge of the
// telemetry layer. Allocation-free.
func (s *State) EnergyDeficitJ(slot int) float64 {
	return energy.SumDeficitJ(s.batteries, slot)
}

// CongestedLinkCountFunc is CongestedLinkCount restricted to links the
// filter accepts. A sharded cluster sweeps each shard's state over the
// links that shard owns, so the merged per-slot metric counts every
// link exactly once even though every shard tracks a full-constellation
// ledger.
func (s *State) CongestedLinkCountFunc(slot int, thresholdFrac float64, owned func(LinkKey) bool) int {
	count := 0
	for key, l := range s.links {
		if slot < 0 || slot >= len(l.used) || !owned(key) {
			continue
		}
		if l.capacityMbps-l.used[slot] < thresholdFrac*l.capacityMbps {
			count++
		}
	}
	return count
}

// DepletedSatCountFunc is DepletedSatCount restricted to satellites the
// filter accepts; the cluster-side complement of CongestedLinkCountFunc.
func (s *State) DepletedSatCountFunc(slot int, thresholdFrac float64, owned func(sat int) bool) int {
	count := 0
	for sat, b := range s.batteries {
		if !owned(sat) {
			continue
		}
		if b.LevelAt(slot) < thresholdFrac*b.CapacityJ() {
			count++
		}
	}
	return count
}

// EnergyDeficitJFunc sums the outstanding deficit over owned satellites
// only, for the cluster's merged energy-debt series.
func (s *State) EnergyDeficitJFunc(slot int, owned func(sat int) bool) float64 {
	total := 0.0
	for sat, b := range s.batteries {
		if owned(sat) {
			total += b.DeficitAt(slot)
		}
	}
	return total
}

// Consumption is one satellite energy draw: Joules consumed at Slot on
// satellite Sat.
type Consumption struct {
	Sat    int
	Slot   int
	Joules float64
}

// TrialConsume reports whether the batch of consumptions is jointly
// feasible (applied in slot order) without mutating any ledger. The
// admission algorithms use it to trial one slot's path as a whole before
// committing: a path can transit the same satellite in two roles whose
// draws are individually feasible but jointly not (constraint (7c)).
func (s *State) TrialConsume(consumptions []Consumption) error {
	s.instr.trialConsumes.Inc()
	// Fast path: when every consumption hits a distinct satellite (the
	// overwhelmingly common case — only a path that transits the same
	// satellite twice under different link classes produces duplicates),
	// a batch trial is just independent single trials, and a single
	// trial needs no battery clone: Battery.TrialConsume replicates
	// Consume's feasibility check and error construction exactly. Paths
	// are a few hops long, so the duplicate scan is a handful of
	// comparisons, not a map.
	dup := false
scan:
	for i := 1; i < len(consumptions); i++ {
		for j := 0; j < i; j++ {
			if consumptions[j].Sat == consumptions[i].Sat {
				dup = true
				break scan
			}
		}
	}
	if !dup {
		for _, c := range consumptions {
			if err := s.batteries[c.Sat].TrialConsume(c.Slot, c.Joules); err != nil {
				s.NoteDepletedSat(c.Sat)
				return fmt.Errorf("netstate: satellite %d: %w", c.Sat, err)
			}
		}
		return nil
	}
	// Slow path (duplicate satellites): the draws interact through one
	// ledger, so replay them in slot order on a clone.
	bySat := make(map[int][]Consumption)
	for _, c := range consumptions {
		bySat[c.Sat] = append(bySat[c.Sat], c)
	}
	for sat, cs := range bySat {
		clone := s.batteries[sat].Clone()
		sort.Slice(cs, func(i, j int) bool { return cs[i].Slot < cs[j].Slot })
		for _, c := range cs {
			if err := clone.Consume(c.Slot, c.Joules); err != nil {
				s.NoteDepletedSat(sat)
				return fmt.Errorf("netstate: satellite %d: %w", sat, err)
			}
		}
	}
	return nil
}

// Consume applies a batch of consumptions (in slot order per satellite).
// Callers that need atomicity must TrialConsume first; a mid-batch
// failure leaves earlier consumptions applied.
func (s *State) Consume(consumptions []Consumption) error {
	ordered := append([]Consumption(nil), consumptions...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Slot < ordered[j].Slot })
	for _, c := range ordered {
		if err := s.batteries[c.Sat].Consume(c.Slot, c.Joules); err != nil {
			return fmt.Errorf("netstate: satellite %d: %w", c.Sat, err)
		}
	}
	return nil
}
