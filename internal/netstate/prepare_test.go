package netstate

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"spacebooking/internal/graph"
)

// reserveSomething opens a transaction, reserves a routable path and
// consumes its energy, returning the open txn plus the touched path
// geometry for later inspection.
func reserveSomething(t *testing.T, s *State, rate float64) (*Txn, *View, graph.Path, int) {
	t.Helper()
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), rate, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route")
	}
	txn := s.Begin()
	if err := txn.ReservePath(v, p); err != nil {
		t.Fatal(err)
	}
	if err := txn.Consume(v.PathConsumptions(p)); err != nil {
		t.Fatal(err)
	}
	return txn, v, p, slot
}

// snapshotLedgers captures every link's use at slot plus every touched
// battery's full solar/deficit ledgers, for byte-exact comparison.
func snapshotLedgers(s *State, v *View, p graph.Path, slot int) map[string]float64 {
	out := map[string]float64{}
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		out[fmt.Sprintf("link/%v", key)] = s.LinkUsedMbps(key, slot)
	}
	for _, n := range p.Nodes[1 : len(p.Nodes)-1] {
		for tt := 0; tt < s.Provider().Horizon(); tt++ {
			out[fmt.Sprintf("def/%d/%d", n, tt)] = s.Battery(n).DeficitAt(tt)
			out[fmt.Sprintf("sol/%d/%d", n, tt)] = s.Battery(n).SolarRemainingAt(tt)
		}
	}
	return out
}

func diffLedgers(t *testing.T, got, want map[string]float64, context string) {
	t.Helper()
	for k, w := range want {
		if g := got[k]; g != w {
			t.Errorf("%s: %s = %v, want %v", context, k, g, w)
		}
	}
}

// Prepare followed by Commit must land on byte-identical ledgers to the
// single-phase Commit of the same reservation on a fresh state.
func TestPrepareCommitMatchesSinglePhase(t *testing.T) {
	single := newTestState(t, twoCitySites(), false)
	txn1, v1, p1, slot1 := reserveSomething(t, single, 500)
	if err := txn1.Commit(); err != nil {
		t.Fatal(err)
	}
	want := snapshotLedgers(single, v1, p1, slot1)

	two := newTestState(t, twoCitySites(), false)
	two.EnableTwoPhase()
	txn2, v2, p2, slot2 := reserveSomething(t, two, 500)
	if slot2 != slot1 {
		t.Fatalf("routable slots diverged: %d vs %d", slot1, slot2)
	}
	prep, err := txn2.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if two.PreparedOutstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", two.PreparedOutstanding())
	}
	prep.Commit()
	if two.PreparedOutstanding() != 0 {
		t.Fatalf("outstanding = %d after commit", two.PreparedOutstanding())
	}
	diffLedgers(t, snapshotLedgers(two, v2, p2, slot2), want, "prepare+commit vs single-phase")
}

// Prepare followed by Abort on an untouched state is the snapshot
// restore path: byte-identical to Rollback (pristine ledgers).
func TestPrepareAbortMatchesRollback(t *testing.T) {
	pristine := newTestState(t, twoCitySites(), false)
	_, vp, pp, slotp := reserveSomething(t, pristine, 750)
	// Roll the pristine state's txn back so it really is pristine.
	want := func() map[string]float64 {
		s := newTestState(t, twoCitySites(), false)
		txn, v, p, slot := reserveSomething(t, s, 750)
		txn.Rollback()
		_ = v
		_ = p
		_ = slot
		return snapshotLedgers(s, vp, pp, slotp)
	}()

	s := newTestState(t, twoCitySites(), false)
	s.EnableTwoPhase()
	txn, v, p, slot := reserveSomething(t, s, 750)
	prep, err := txn.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	// While prepared, the deltas are pinned: the link shows the use.
	key := v.LinkKeyFor(p.Nodes[0], p.Nodes[1])
	if got := s.LinkUsedMbps(key, slot); got != 750 {
		t.Fatalf("pinned link use = %v, want 750", got)
	}
	prep.Abort()
	prep.Abort() // idempotent
	diffLedgers(t, snapshotLedgers(s, v, p, slot), want, "prepare+abort vs rollback")
	if s.PreparedOutstanding() != 0 {
		t.Fatalf("outstanding = %d after abort", s.PreparedOutstanding())
	}
}

// When another transaction commits on the same battery between Prepare
// and Abort, the abort must take the refund path: the interleaved
// commit survives exactly as it was made (its absorption walk ran
// against the pinned deltas, so its slot distribution may legitimately
// differ from a solo run), the aborted transaction's claim is fully
// released, and no deficit goes negative.
func TestPrepareAbortAfterInterleavedCommit(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	s.EnableTwoPhase()

	// Fresh per-slot solar baseline, for conservation accounting.
	fresh := newTestState(t, twoCitySites(), false)

	txnA, _, pA, _ := reserveSomething(t, s, 600)
	prep, err := txnA.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	sat := pA.Nodes[1]

	// Interleave: a second transaction consumes on a battery A touched,
	// and commits.
	txnB := s.Begin()
	if err := txnB.Consume([]Consumption{{Sat: sat, Slot: 2, Joules: 50}}); err != nil {
		t.Fatal(err)
	}
	if err := txnB.Commit(); err != nil {
		t.Fatal(err)
	}

	prep.Abort()

	// After the abort, the battery holds exactly txnB's 50 J claim: the
	// total solar absorbed across the horizon is txnB's 50 and nothing
	// of txnA's, and any outstanding per-slot deficit (debt txnB carried
	// until its absorption slot) never exceeds that claim or goes
	// negative.
	absorbed := 0.0
	for tt := 0; tt < s.Provider().Horizon(); tt++ {
		d := s.Battery(sat).DeficitAt(tt)
		if d < 0 || d > 50+1e-9 {
			t.Errorf("slot %d deficit %v outside [0, 50] after refund abort", tt, d)
		}
		absorbed += fresh.Battery(sat).SolarRemainingAt(tt) - s.Battery(sat).SolarRemainingAt(tt)
	}
	if math.Abs(absorbed-50) > 1e-6 {
		t.Errorf("net absorbed solar = %v J after abort, want txnB's 50", absorbed)
	}
}

func TestPrepareRequiresTwoPhase(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	txn := s.Begin()
	if _, err := txn.Prepare(); err == nil {
		t.Fatal("Prepare without EnableTwoPhase succeeded")
	}
	txn.Rollback()
}

func TestCheckPreparedDrained(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	s.EnableTwoPhase()
	if err := s.CheckPreparedDrained(); err != nil {
		t.Fatalf("fresh state: %v", err)
	}
	txn := s.Begin()
	if err := txn.Consume([]Consumption{{Sat: 0, Slot: 0, Joules: 10}}); err != nil {
		t.Fatal(err)
	}
	prep, err := txn.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	err = s.CheckPreparedDrained()
	if err == nil {
		t.Fatal("outstanding prepare not reported")
	}
	if !errors.Is(err, ErrPreparedLeak) {
		t.Fatalf("error %v does not wrap ErrPreparedLeak", err)
	}
	prep.Commit()
	prep.Commit() // idempotent
	if err := s.CheckPreparedDrained(); err != nil {
		t.Fatalf("after commit: %v", err)
	}
}

// An installed interceptor receives every Txn.Commit as a Prepared and
// its verdict is the commit's verdict.
func TestCommitInterceptor(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	var seen *Prepared
	s.SetCommitInterceptor(func(p *Prepared) error {
		seen = p
		p.Commit()
		return nil
	})
	if !s.TwoPhaseEnabled() {
		t.Fatal("interceptor did not enable two-phase mode")
	}
	txn, _, _, _ := reserveSomething(t, s, 400)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if seen == nil {
		t.Fatal("interceptor never called")
	}
	links := 0
	seen.EachLink(func(LinkKey, int, float64) { links++ })
	cons := 0
	seen.EachConsumption(func(Consumption) { cons++ })
	if links == 0 || cons == 0 {
		t.Fatalf("prepared carries %d links, %d consumptions", links, cons)
	}

	// A rejecting interceptor surfaces its error and must abort.
	s2 := newTestState(t, twoCitySites(), false)
	wantErr := errors.New("conflict")
	s2.SetCommitInterceptor(func(p *Prepared) error {
		p.Abort()
		return wantErr
	})
	txn2, v2, p2, slot2 := reserveSomething(t, s2, 400)
	if err := txn2.Commit(); !errors.Is(err, wantErr) {
		t.Fatalf("Commit error = %v, want %v", err, wantErr)
	}
	key := v2.LinkKeyFor(p2.Nodes[0], p2.Nodes[1])
	if got := s2.LinkUsedMbps(key, slot2); got != 0 {
		t.Fatalf("link use = %v after aborted commit", got)
	}
	if s2.PreparedOutstanding() != 0 {
		t.Fatalf("outstanding = %d", s2.PreparedOutstanding())
	}
}
