package netstate

import (
	"math"
	"testing"

	"spacebooking/internal/graph"
	"spacebooking/internal/grid"
	"spacebooking/internal/topology"
)

// hopCost is the simplest cost function: every feasible edge costs 1.
func hopCost(LinkKey, graph.EdgeClass, float64, float64) float64 { return 1 }

// twoCitySites returns two ground sites with solid coverage from a
// 53-degree shell.
func twoCitySites() []grid.Site {
	return []grid.Site{
		{ID: 0, LatDeg: 40.7, LonDeg: -74.0},  // New York
		{ID: 1, LatDeg: 34.1, LonDeg: -118.2}, // Los Angeles
	}
}

func groundEP(i int) topology.Endpoint {
	return topology.Endpoint{Kind: topology.EndpointGround, Index: i}
}

// findRoutableSlot returns a slot where both endpoints see satellites.
func findRoutableSlot(t *testing.T, s *State, src, dst topology.Endpoint) int {
	t.Helper()
	for slot := 0; slot < s.Provider().Horizon(); slot++ {
		sv, err := s.Provider().VisibleSats(src, slot)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := s.Provider().VisibleSats(dst, slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(sv) > 0 && len(dv) > 0 {
			return slot
		}
	}
	t.Skip("no slot with visibility for both endpoints")
	return -1
}

func TestNewViewErrors(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	if _, err := NewView(nil, 0, groundEP(0), groundEP(1), 100, hopCost); err == nil {
		t.Error("nil state should error")
	}
	if _, err := NewView(s, 0, groundEP(0), groundEP(1), 100, nil); err == nil {
		t.Error("nil cost should error")
	}
	if _, err := NewView(s, 0, groundEP(0), groundEP(1), 0, hopCost); err == nil {
		t.Error("zero demand should error")
	}
	if _, err := NewView(s, -1, groundEP(0), groundEP(1), 100, hopCost); err == nil {
		t.Error("bad slot should error")
	}
	if _, err := NewView(s, 0, groundEP(9), groundEP(1), 100, hopCost); err == nil {
		t.Error("bad endpoint should error")
	}
}

func TestViewStructure(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 100, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	numSats := s.Provider().NumSats()
	if v.N() != numSats+2 {
		t.Errorf("N = %d, want %d", v.N(), numSats+2)
	}
	if v.SrcNode() != numSats || v.DstNode() != numSats+1 {
		t.Errorf("src/dst nodes = %d/%d", v.SrcNode(), v.DstNode())
	}

	// Source neighbors are exactly the visible satellites, via USL edges.
	srcVis, err := s.Provider().VisibleSats(groundEP(0), slot)
	if err != nil {
		t.Fatal(err)
	}
	var fromSrc []int
	v.VisitNeighbors(v.SrcNode(), func(e graph.Edge) bool {
		if e.Class != graph.ClassUSL {
			t.Errorf("source edge class = %v, want USL", e.Class)
		}
		fromSrc = append(fromSrc, e.To)
		return true
	})
	if len(fromSrc) != len(srcVis) {
		t.Errorf("source degree = %d, want %d", len(fromSrc), len(srcVis))
	}

	// Destination is a sink.
	v.VisitNeighbors(v.DstNode(), func(graph.Edge) bool {
		t.Error("destination must have no outgoing edges")
		return false
	})

	// A satellite's neighbors are its ISL grid plus possibly the dst.
	sat := srcVis[0]
	islCount, uslCount := 0, 0
	v.VisitNeighbors(sat, func(e graph.Edge) bool {
		switch e.Class {
		case graph.ClassISL:
			islCount++
		case graph.ClassUSL:
			uslCount++
			if e.To != v.DstNode() {
				t.Errorf("satellite USL edge to %d, want dst node", e.To)
			}
		}
		return true
	})
	if islCount != len(s.Provider().ISLNeighbors(sat)) {
		t.Errorf("ISL degree = %d, want %d", islCount, len(s.Provider().ISLNeighbors(sat)))
	}
}

func TestViewEndToEndRouting(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 100, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route between New York and Los Angeles")
	}
	// Path must start at src, end at dst, with USL first and last hops.
	if p.Nodes[0] != v.SrcNode() || p.Nodes[len(p.Nodes)-1] != v.DstNode() {
		t.Errorf("path endpoints wrong: %v", p.Nodes)
	}
	if p.Edges[0].Class != graph.ClassUSL || p.Edges[len(p.Edges)-1].Class != graph.ClassUSL {
		t.Error("first/last hops must be USLs")
	}
	for _, e := range p.Edges[1 : len(p.Edges)-1] {
		if e.Class != graph.ClassISL {
			t.Error("interior hops must be ISLs")
		}
	}
}

func TestViewMasksSaturatedLinks(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	srcVis, err := s.Provider().VisibleSats(groundEP(0), slot)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the USL from the source site to the first visible satellite.
	srcGID := s.Provider().GlobalID(groundEP(0))
	key := MakeLinkKey(srcGID, srcVis[0])
	if err := s.ReserveLink(key, slot, 3950); err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 100, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	v.VisitNeighbors(v.SrcNode(), func(e graph.Edge) bool {
		if e.To == srcVis[0] && !math.IsInf(e.Cost, 1) {
			t.Error("saturated USL offered with finite cost")
		}
		return true
	})
	// A 4000-demand view masks every USL (capacity 4000, residual 50).
	v2, err := NewView(s, slot, groundEP(0), groundEP(1), 4000, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	v2.VisitNeighbors(v2.SrcNode(), func(e graph.Edge) bool {
		if e.To == srcVis[0] && !math.IsInf(e.Cost, 1) {
			t.Error("link with insufficient residual offered")
		}
		return true
	})
}

func TestViewPathConsumptions(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 800, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route")
	}
	cons := v.PathConsumptions(p)
	if len(cons) != len(p.Nodes)-2 {
		t.Fatalf("consumptions = %d, want %d (one per transited satellite)", len(cons), len(p.Nodes)-2)
	}
	cfg := DefaultEnergyConfig()
	slotSec := s.Provider().Config().SlotSeconds
	mb := 800 * slotSec / 8
	// Ingress gateway: USL rx + ISL tx (or USL tx if single-sat path).
	first := cons[0]
	if first.Slot != slot {
		t.Errorf("consumption slot = %d", first.Slot)
	}
	if len(cons) > 1 {
		wantIngress := mb * (cfg.USLRxJPerMB + cfg.ISLTxJPerMB)
		if math.Abs(first.Joules-wantIngress) > 1e-9 {
			t.Errorf("ingress energy = %v, want %v", first.Joules, wantIngress)
		}
		wantEgress := mb * (cfg.ISLRxJPerMB + cfg.USLTxJPerMB)
		last := cons[len(cons)-1]
		if math.Abs(last.Joules-wantEgress) > 1e-9 {
			t.Errorf("egress energy = %v, want %v", last.Joules, wantEgress)
		}
		wantRelay := mb * (cfg.ISLRxJPerMB + cfg.ISLTxJPerMB)
		for _, c := range cons[1 : len(cons)-1] {
			if math.Abs(c.Joules-wantRelay) > 1e-9 {
				t.Errorf("relay energy = %v, want %v", c.Joules, wantRelay)
			}
		}
	}
}

func TestViewReservePathBandwidth(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 500, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route")
	}
	if err := v.ReservePathBandwidth(p); err != nil {
		t.Fatal(err)
	}
	// Every link of the path now shows 500 Mbps used in this slot.
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		if got := s.LinkUsedMbps(key, slot); got != 500 {
			t.Errorf("link %d: used = %v, want 500", i, got)
		}
	}
	if s.NumActiveLinks() != len(p.Edges) {
		t.Errorf("active links = %d, want %d", s.NumActiveLinks(), len(p.Edges))
	}
}
