package netstate

import (
	"fmt"

	"spacebooking/internal/energy"
	"spacebooking/internal/graph"
)

// Txn is an undo log over a State, enabling commit-as-you-go request
// admission: an algorithm reserves bandwidth and consumes energy slot by
// slot — so each slot's path search sees the request's *own* earlier
// consumption and can route around satellites it has already loaded —
// and rolls everything back if a later slot proves unroutable or the
// total price exceeds the valuation.
type Txn struct {
	state *State
	// linkUndo records reservations to subtract on rollback.
	linkUndo []linkReservation
	// batterySnapshots holds pre-transaction clones of every battery the
	// transaction touched, restored wholesale on rollback.
	batterySnapshots map[int]*energy.Battery
	done             bool
}

type linkReservation struct {
	key  LinkKey
	slot int
	rate float64
}

// Begin starts a transaction. A State supports any number of sequential
// transactions; interleaving two open transactions on one State is a
// caller bug.
func (s *State) Begin() *Txn {
	return &Txn{state: s, batterySnapshots: make(map[int]*energy.Battery)}
}

// ReservePath reserves the view's demand on every link of the path in
// the view's slot, recording the reservations for rollback.
func (t *Txn) ReservePath(v *View, p graph.Path) error {
	if t.done {
		return fmt.Errorf("netstate: transaction already finished")
	}
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		if err := t.state.ReserveLink(key, v.Slot(), v.DemandMbps()); err != nil {
			return err
		}
		t.linkUndo = append(t.linkUndo, linkReservation{key: key, slot: v.Slot(), rate: v.DemandMbps()})
	}
	return nil
}

// Consume applies energy consumptions, snapshotting each touched battery
// first. On error the failed battery is left untouched (Consume is
// atomic per battery); previously applied consumptions remain until
// Rollback.
func (t *Txn) Consume(consumptions []Consumption) error {
	if t.done {
		return fmt.Errorf("netstate: transaction already finished")
	}
	for _, c := range consumptions {
		if _, ok := t.batterySnapshots[c.Sat]; !ok {
			t.batterySnapshots[c.Sat] = t.state.batteries[c.Sat].Clone()
		}
		if err := t.state.batteries[c.Sat].Consume(c.Slot, c.Joules); err != nil {
			return fmt.Errorf("netstate: satellite %d: %w", c.Sat, err)
		}
	}
	return nil
}

// Rollback undoes every reservation and restores every touched battery.
// Safe to call after a partial failure; idempotent.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.state.instr.txnRollbacks.Inc()
	for _, r := range t.linkUndo {
		t.state.unreserveLink(r.key, r.slot, r.rate)
	}
	for sat, snapshot := range t.batterySnapshots {
		t.state.batteries[sat] = snapshot
	}
}

// Commit finalises the transaction, dropping the undo log.
func (t *Txn) Commit() {
	if !t.done {
		t.state.instr.txnCommits.Inc()
	}
	t.done = true
}

// unreserveLink subtracts a prior reservation.
func (s *State) unreserveLink(key LinkKey, slot int, rateMbps float64) {
	l := s.links[key]
	if l == nil || slot < 0 || slot >= len(l.used) {
		return
	}
	l.used[slot] -= rateMbps
	if l.used[slot] < 0 {
		l.used[slot] = 0
	}
}
