package netstate

import (
	"fmt"
	"time"

	"spacebooking/internal/energy"
	"spacebooking/internal/graph"
	"spacebooking/internal/obs"
)

// SlotView is the part of a per-slot routing view the transaction layer
// needs to reserve a path's bandwidth. Both the generic *View and the
// fast path's *FlatView implement it.
type SlotView interface {
	LinkKeyFor(from, to int) LinkKey
	Slot() int
	DemandMbps() float64
}

var (
	_ SlotView = (*View)(nil)
	_ SlotView = (*FlatView)(nil)
)

// Txn is an undo log over a State, enabling commit-as-you-go request
// admission: an algorithm reserves bandwidth and consumes energy slot by
// slot — so each slot's path search sees the request's *own* earlier
// consumption and can route around satellites it has already loaded —
// and rolls everything back if a later slot proves unroutable or the
// total price exceeds the valuation.
//
// The undo log and battery snapshots live in a State-owned arena reused
// across transactions (a State supports one open transaction at a time,
// see Begin), so admitting a request allocates no transaction-layer
// memory once the arena is warm.
type Txn struct {
	state *State
	done  bool
}

type linkReservation struct {
	key  LinkKey
	slot int
	rate float64
}

// txnScratch is the State-owned working memory of the single open
// transaction: the link-undo log plus an epoch-stamped battery snapshot
// arena. Snapshot batteries are allocated once per satellite ever
// (lazily) and refilled in place via Battery.CopyFrom on later
// transactions; stamps mark which snapshots belong to the current epoch.
type txnScratch struct {
	linkUndo []linkReservation
	epoch    uint32
	stamps   []uint32
	snaps    []*energy.Battery
	touched  []int
	// dod records the (battery, slot) pairs the open transaction drew
	// from, for commit-time depth-of-discharge observation when hot-spot
	// tracking is enabled. Reused like the undo log.
	dod []dodPend
	// cons/steps record the transaction's energy consumptions and their
	// traced ledger mutations, only in two-phase mode (see prepare.go):
	// Prepare pins them so Abort can refund exactly, and the cluster's
	// coordinator replays them on the owning shards.
	cons  []consRecord
	steps []energy.ConsumeStep
}

// consRecord is one recorded energy consumption plus the index range of
// its traced steps within txnScratch.steps.
type consRecord struct {
	c        Consumption
	stepFrom int
	stepTo   int
}

// Begin starts a transaction. A State supports any number of sequential
// transactions; interleaving two open transactions on one State is a
// caller bug (and always was — the snapshot arena just depends on it).
// Begin must stay within the inlining budget: inlined at the admission
// call sites, the returned Txn is stack-allocated; the scratch reset
// lives in its own helper for exactly that reason.
func (s *State) Begin() *Txn {
	s.txn.begin(len(s.batteries))
	return &Txn{state: s}
}

// begin resets the scratch for a fresh transaction, reusing every
// previously grown buffer.
func (a *txnScratch) begin(numSats int) {
	a.linkUndo = a.linkUndo[:0]
	a.touched = a.touched[:0]
	a.dod = a.dod[:0]
	a.cons = a.cons[:0]
	a.steps = a.steps[:0]
	if len(a.stamps) != numSats {
		a.stamps = make([]uint32, numSats)
		a.snaps = make([]*energy.Battery, numSats)
		a.epoch = 0
	}
	a.epoch++
	if a.epoch == 0 {
		clearUint32(a.stamps)
		a.epoch = 1
	}
}

// ReservePath reserves the view's demand on every link of the path in
// the view's slot, recording the reservations for rollback.
func (t *Txn) ReservePath(v SlotView, p graph.Path) error {
	if t.done {
		return fmt.Errorf("netstate: transaction already finished")
	}
	if c := t.state.instr.commitNanos; c != nil {
		defer commitTimer(c, time.Now())
	}
	a := &t.state.txn
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		if err := t.state.ReserveLink(key, v.Slot(), v.DemandMbps()); err != nil {
			return err
		}
		a.linkUndo = append(a.linkUndo, linkReservation{key: key, slot: v.Slot(), rate: v.DemandMbps()})
	}
	return nil
}

// Consume applies energy consumptions, snapshotting each touched battery
// first. On error the failed battery is left untouched (Consume is
// atomic per battery); previously applied consumptions remain until
// Rollback.
func (t *Txn) Consume(consumptions []Consumption) error {
	if t.done {
		return fmt.Errorf("netstate: transaction already finished")
	}
	if c := t.state.instr.commitNanos; c != nil {
		defer commitTimer(c, time.Now())
	}
	a := &t.state.txn
	for _, c := range consumptions {
		if a.stamps[c.Sat] != a.epoch {
			b := t.state.batteries[c.Sat]
			if a.snaps[c.Sat] == nil {
				a.snaps[c.Sat] = b.Clone()
			} else {
				a.snaps[c.Sat].CopyFrom(b)
			}
			a.stamps[c.Sat] = a.epoch
			a.touched = append(a.touched, c.Sat)
		}
		if t.state.twoPhase {
			// Traced consumption: the mutation is byte-identical to
			// Consume's, plus a step log Prepare pins for exact release.
			from := len(a.steps)
			var err error
			a.steps, err = t.state.batteries[c.Sat].ConsumeTraced(c.Slot, c.Joules, a.steps)
			if err != nil {
				return fmt.Errorf("netstate: satellite %d: %w", c.Sat, err)
			}
			t.state.batVer[c.Sat]++
			a.cons = append(a.cons, consRecord{c: c, stepFrom: from, stepTo: len(a.steps)})
		} else if err := t.state.batteries[c.Sat].Consume(c.Slot, c.Joules); err != nil {
			return fmt.Errorf("netstate: satellite %d: %w", c.Sat, err)
		}
		if t.state.hot.enabled {
			a.dod = append(a.dod, dodPend{sat: c.Sat, slot: c.Slot})
		}
	}
	return nil
}

// ReserveLinkKey reserves rateMbps on one link in one slot, recording
// the reservation for rollback. The cluster's remote-prepare path uses
// it to pin a coordinator's link deltas on the owning shard, where no
// routing view exists to go through ReservePath.
func (t *Txn) ReserveLinkKey(key LinkKey, slot int, rateMbps float64) error {
	if t.done {
		return fmt.Errorf("netstate: transaction already finished")
	}
	if err := t.state.ReserveLink(key, slot, rateMbps); err != nil {
		return err
	}
	a := &t.state.txn
	a.linkUndo = append(a.linkUndo, linkReservation{key: key, slot: slot, rate: rateMbps})
	return nil
}

// Rollback undoes every reservation and restores every touched battery.
// Safe to call after a partial failure; idempotent.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.state.instr.txnRollbacks.Inc()
	a := &t.state.txn
	for _, r := range a.linkUndo {
		t.state.unreserveLink(r.key, r.slot, r.rate)
	}
	for _, sat := range a.touched {
		t.state.batteries[sat].CopyFrom(a.snaps[sat])
		if t.state.twoPhase {
			t.state.batVer[sat]++
		}
	}
}

// Commit finalises the transaction, dropping the undo log. With
// hot-spot tracking enabled it also feeds the level trackers from the
// committed reservations (post-commit link utilization and battery
// depth-of-discharge) — observation happens here, not during trials,
// so rolled-back state never reaches the trackers.
//
// When a commit interceptor is installed (SetCommitInterceptor), the
// transaction is instead turned into a Prepared handed to the
// interceptor, which must Commit or Abort it; its error (a cross-shard
// conflict in the cluster) is returned so the algorithm can convert the
// admission into a rejection. Without an interceptor Commit never
// fails, and the path is byte-identical to the pre-two-phase one.
func (t *Txn) Commit() error {
	if t.done {
		return nil
	}
	if ic := t.state.intercept; ic != nil {
		p, err := t.Prepare()
		if err != nil {
			return err
		}
		return ic(p)
	}
	t.done = true
	t.state.instr.txnCommits.Inc()
	t.state.observeCommit()
	return nil
}

// commitTimer accumulates elapsed commit-path wall time; the deferred
// form `defer commitTimer(c, time.Now())` captures the start at the
// defer statement and charges the counter at return.
func commitTimer(c *obs.Counter, t0 time.Time) {
	c.Add(time.Since(t0).Nanoseconds())
}

// unreserveLink subtracts a prior reservation.
func (s *State) unreserveLink(key LinkKey, slot int, rateMbps float64) {
	l := s.links[key]
	if l == nil || slot < 0 || slot >= len(l.used) {
		return
	}
	l.used[slot] -= rateMbps
	if l.used[slot] < 0 {
		l.used[slot] = 0
	}
}
