package netstate

import (
	"fmt"
	"math"

	"spacebooking/internal/graph"
	"spacebooking/internal/topology"
)

// EdgeCostFunc prices one candidate edge for the current request: the
// link identified by key has the given class, capacity and current
// utilization. Returning +Inf excludes the edge. Implementations supply
// each algorithm's routing metric (CEAR's exponential congestion price,
// ECARS's linear weight, SSP's unit hop cost, ...).
type EdgeCostFunc func(key LinkKey, class graph.EdgeClass, capacityMbps, utilization float64) float64

// View is the per-slot routing graph of one request: an implicit
// graph.Adjacency over the satellites plus two virtual endpoint nodes.
//
// Node numbering inside the search space: satellites occupy [0, NumSats),
// SrcNode() = NumSats, DstNode() = NumSats+1.
//
// Capacity feasibility (constraint (7b)) is enforced structurally: an
// edge whose residual bandwidth in this slot is below the request's
// demand is never offered to the search, implementing the all-or-nothing
// reservation semantics of §III-B.
type View struct {
	prov       *topology.Provider
	state      *State
	slot       int
	demandMbps float64
	cost       EdgeCostFunc

	src, dst   topology.Endpoint
	srcGID     int
	dstGID     int
	srcVisible []int
	dstVisible []bool // indexed by satellite
	dstVisList []int
	numSats    int
}

// NewView builds the routing view for one (request, slot) pair.
func NewView(state *State, slot int, src, dst topology.Endpoint, demandMbps float64, cost EdgeCostFunc) (*View, error) {
	if state == nil {
		return nil, fmt.Errorf("netstate: nil state")
	}
	if cost == nil {
		return nil, fmt.Errorf("netstate: nil cost function")
	}
	if demandMbps <= 0 {
		return nil, fmt.Errorf("netstate: demand must be positive, got %v", demandMbps)
	}
	prov := state.prov
	srcVis, err := prov.VisibleSats(src, slot)
	if err != nil {
		return nil, fmt.Errorf("netstate: source visibility: %w", err)
	}
	dstVis, err := prov.VisibleSats(dst, slot)
	if err != nil {
		return nil, fmt.Errorf("netstate: destination visibility: %w", err)
	}
	v := &View{
		prov:       prov,
		state:      state,
		slot:       slot,
		demandMbps: demandMbps,
		cost:       cost,
		src:        src,
		dst:        dst,
		srcGID:     prov.GlobalID(src),
		dstGID:     prov.GlobalID(dst),
		srcVisible: srcVis,
		dstVisible: make([]bool, prov.NumSats()),
		dstVisList: dstVis,
		numSats:    prov.NumSats(),
	}
	for _, sat := range dstVis {
		v.dstVisible[sat] = true
	}
	return v, nil
}

// N implements graph.Adjacency: satellites plus the two endpoint nodes.
func (v *View) N() int { return v.numSats + 2 }

// SrcNode returns the search-space node index of the request source.
func (v *View) SrcNode() int { return v.numSats }

// DstNode returns the search-space node index of the request destination.
func (v *View) DstNode() int { return v.numSats + 1 }

// Slot returns the slot this view prices.
func (v *View) Slot() int { return v.slot }

// DemandMbps returns the per-slot demand the view was built for.
func (v *View) DemandMbps() float64 { return v.demandMbps }

// globalID maps a search node to the provider's global node-ID space.
func (v *View) globalID(node int) int {
	switch node {
	case v.SrcNode():
		return v.srcGID
	case v.DstNode():
		return v.dstGID
	default:
		return node
	}
}

// LinkKeyFor returns the ledger key of the directed link between two
// search-space nodes.
func (v *View) LinkKeyFor(from, to int) LinkKey {
	return MakeLinkKey(v.globalID(from), v.globalID(to))
}

// priceEdge computes an edge's cost, masking capacity-infeasible links.
// Masked edges are reported to the blame scratch (pure observation —
// the returned cost is unchanged) so a congestion rejection can be
// attributed to the fullest link the search bounced off.
func (v *View) priceEdge(from, to int, class graph.EdgeClass) float64 {
	key := v.LinkKeyFor(from, to)
	capacity := v.state.linkCapacity(key)
	used := v.state.LinkUsedMbps(key, v.slot)
	if used+v.demandMbps > capacity*(1+1e-12) {
		v.state.noteBlockedLink(key, used/capacity)
		return math.Inf(1)
	}
	return v.cost(key, class, capacity, used/capacity)
}

// VisitNeighbors implements graph.Adjacency.
func (v *View) VisitNeighbors(node int, fn func(graph.Edge) bool) {
	switch {
	case node == v.SrcNode():
		for _, sat := range v.srcVisible {
			c := v.priceEdge(node, sat, graph.ClassUSL)
			if !fn(graph.Edge{To: sat, Class: graph.ClassUSL, Cost: c}) {
				return
			}
		}
	case node == v.DstNode():
		// Destination is a sink.
	default:
		for _, n := range v.prov.ISLNeighbors(node) {
			c := v.priceEdge(node, n, graph.ClassISL)
			if !fn(graph.Edge{To: n, Class: graph.ClassISL, Cost: c}) {
				return
			}
		}
		if v.dstVisible[node] {
			c := v.priceEdge(node, v.DstNode(), graph.ClassUSL)
			if !fn(graph.Edge{To: v.DstNode(), Class: graph.ClassUSL, Cost: c}) {
				return
			}
		}
	}
}

var _ graph.Adjacency = (*View)(nil)
var _ graph.Instrumented = (*View)(nil)

// Instruments implements graph.Instrumented: searches over this view
// count into the owning state's registry (nil when uninstrumented).
func (v *View) Instruments() *graph.Instruments { return v.state.GraphInstruments() }

// PathConsumptions converts a path found on this view into the list of
// per-satellite energy consumptions it implies in this slot, applying
// Eq. (1)'s role-dependent accounting via the incoming/outgoing link
// classes of each transited satellite.
func (v *View) PathConsumptions(p graph.Path) []Consumption {
	if len(p.Nodes) < 3 {
		return nil
	}
	slotSec := v.prov.Config().SlotSeconds
	out := make([]Consumption, 0, len(p.Nodes)-2)
	for i := 1; i < len(p.Nodes)-1; i++ {
		sat := p.Nodes[i]
		inClass := p.Edges[i-1].Class
		outClass := p.Edges[i].Class
		j := v.state.energyCfg.TransitEnergyJ(inClass, outClass, v.demandMbps, slotSec)
		if j > 0 {
			out = append(out, Consumption{Sat: sat, Slot: v.slot, Joules: j})
		}
	}
	return out
}

// ReservePathBandwidth reserves the request's demand on every link of the
// path in this view's slot. The search already masked infeasible links,
// so failures indicate a caller bug (e.g. double-committing a path).
func (v *View) ReservePathBandwidth(p graph.Path) error {
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		if err := v.state.ReserveLink(key, v.slot, v.demandMbps); err != nil {
			return err
		}
	}
	return nil
}
