package netstate

import (
	"strconv"

	"spacebooking/internal/obs"
)

// hotspots is the per-entity attribution state of one State: four
// bounded top-K trackers (hot links and batteries, by rejection count
// and by level) plus the per-request blame scratch the routing layer
// fills as it masks infeasible edges. Everything here runs on the
// single-writer admission goroutine, so blame capture is exact: the
// entity recorded for a rejection is the one the losing search actually
// hit, not a statistical guess.
type hotspots struct {
	enabled bool
	// linkRejections / batteryRejections are sum-mode trackers whose
	// totals reconcile exactly against the engine's aggregate
	// rejected_congested / rejected_depleted counters (see
	// AttributeRejection).
	linkRejections    *obs.TopK
	batteryRejections *obs.TopK
	// linkUtil / batteryDoD are max-mode level trackers fed at commit
	// time, so rolled-back trial state never pollutes them.
	linkUtil   *obs.TopK
	batteryDoD *obs.TopK

	// Per-request blame scratch, reset by BeginBlame. blameLink holds
	// the most-utilized link the request's searches found blocked;
	// blameSat the last satellite whose battery made an edge or trial
	// infeasible.
	blameLink     LinkKey
	blameLinkUtil float64
	blameLinkSet  bool
	blameSat      int
	blameSatSet   bool
}

// dodPend is one committed energy draw awaiting depth-of-discharge
// observation: battery sat after the consumption at slot.
type dodPend struct {
	sat  int
	slot int
}

// EnableHotspots attaches the per-entity top-K trackers, each bounded
// to k entries (k <= 0 disables). Like EnableTraceDetail this is
// opt-in and separate from SetObs: every admission then pays a few
// scalar stores on blocked edges and a short tracker scan per commit —
// nothing allocates. A nil registry is a no-op. Call before the run
// starts; the State is single-owner.
func (s *State) EnableHotspots(reg *obs.Registry, k int) {
	if reg == nil || k <= 0 {
		return
	}
	h := &s.hot
	h.enabled = true
	h.linkRejections = reg.TopK("netstate.hotspots.link_rejections", k, obs.TopKSum)
	h.linkUtil = reg.TopK("netstate.hotspots.link_util", k, obs.TopKMax)
	h.batteryRejections = reg.TopK("energy.hotspots.battery_rejections", k, obs.TopKSum)
	h.batteryDoD = reg.TopK("energy.hotspots.battery_dod", k, obs.TopKMax)
	h.linkRejections.SetLabeler(linkLabel)
	h.linkUtil.SetLabeler(linkLabel)
	h.batteryRejections.SetLabeler(satLabel)
	h.batteryDoD.SetLabeler(satLabel)
}

// HotspotsEnabled reports whether per-entity attribution is live.
func (s *State) HotspotsEnabled() bool { return s.hot.enabled }

func linkLabel(key uint64) string {
	k := LinkKey(key)
	return strconv.Itoa(k.From()) + "->" + strconv.Itoa(k.To())
}

func satLabel(key uint64) string {
	return "sat" + strconv.FormatUint(key, 10)
}

// BeginBlame resets the per-request blame scratch. The engine calls it
// before handing a request to the algorithm; the routing and energy
// layers then record which entities blocked the request as they go.
func (s *State) BeginBlame() {
	h := &s.hot
	h.blameLinkSet = false
	h.blameSatSet = false
}

// noteBlockedLink records a capacity-infeasible edge the search hit,
// keeping the most-utilized one: when a request is later rejected for
// congestion, the fullest link it bounced off is the blamed entity.
func (s *State) noteBlockedLink(key LinkKey, util float64) {
	h := &s.hot
	if !h.enabled {
		return
	}
	if !h.blameLinkSet || util > h.blameLinkUtil {
		h.blameLink = key
		h.blameLinkUtil = util
		h.blameLinkSet = true
	}
}

// NoteDepletedSat records a satellite whose battery made an edge or a
// trial consumption infeasible for the current request. The energy
// pricing layer calls it when a transit cost goes infinite; the trial
// paths call it on depletion errors.
func (s *State) NoteDepletedSat(sat int) {
	h := &s.hot
	if !h.enabled {
		return
	}
	h.blameSat = sat
	h.blameSatSet = true
}

// AttributeRejection charges the current request's rejection to the
// blamed entity and reports which tracker was fed. energyBlame steers
// ties: a rejection the engine classified as energy-infeasible prefers
// the battery; anything else prefers the blocked link, falling back to
// the battery when only energy pricing blocked the search. At most one
// of (congested, depleted) is true per call, so the trackers' totals
// sum exactly to the engine's aggregate rejection counters. No-op
// (false, false) when tracking is disabled or nothing was blamed.
func (s *State) AttributeRejection(energyBlame bool) (congested, depleted bool) {
	h := &s.hot
	if !h.enabled {
		return false, false
	}
	if energyBlame && h.blameSatSet {
		h.batteryRejections.Add(uint64(h.blameSat), 1)
		return false, true
	}
	if h.blameLinkSet {
		h.linkRejections.Add(uint64(h.blameLink), 1)
		return true, false
	}
	if h.blameSatSet {
		h.batteryRejections.Add(uint64(h.blameSat), 1)
		return false, true
	}
	return false, false
}

// observeCommit feeds the level trackers from a just-committed
// transaction: post-commit utilization of every reserved link, and
// post-commit depth-of-discharge of every (battery, slot) the
// transaction drew from. Commit-time observation keeps rolled-back
// trial state out of the max trackers.
func (s *State) observeCommit() {
	h := &s.hot
	if !h.enabled {
		return
	}
	a := &s.txn
	for i := range a.linkUndo {
		r := &a.linkUndo[i]
		h.linkUtil.Observe(uint64(r.key), s.LinkUtilization(r.key, r.slot))
	}
	for _, d := range a.dod {
		h.batteryDoD.Observe(uint64(d.sat), s.batteries[d.sat].UtilizationAt(d.slot))
	}
}

// observePrepared is observeCommit for a two-phase commit: the pinned
// deltas were detached from the txn arena at Prepare time, so the
// level trackers are fed from the Prepared's own copies when it
// finally commits.
func (s *State) observePrepared(p *Prepared) {
	h := &s.hot
	if !h.enabled {
		return
	}
	for i := range p.links {
		r := &p.links[i]
		h.linkUtil.Observe(uint64(r.key), s.LinkUtilization(r.key, r.slot))
	}
	for _, d := range p.dod {
		h.batteryDoD.Observe(uint64(d.sat), s.batteries[d.sat].UtilizationAt(d.slot))
	}
}
