package netstate

import (
	"math"
	"testing"

	"spacebooking/internal/graph"
)

func TestTxnCommitKeepsChanges(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 500, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route")
	}

	txn := s.Begin()
	if err := txn.ReservePath(v, p); err != nil {
		t.Fatal(err)
	}
	cons := v.PathConsumptions(p)
	if err := txn.Consume(cons); err != nil {
		t.Fatal(err)
	}
	txn.Commit()

	key := v.LinkKeyFor(p.Nodes[0], p.Nodes[1])
	if got := s.LinkUsedMbps(key, slot); got != 500 {
		t.Errorf("used = %v after commit", got)
	}
	// Battery state reflects the consumption (solar used or deficit).
	sat := p.Nodes[1]
	spent := (1200 - s.Battery(sat).SolarRemainingAt(slot)) + s.Battery(sat).DeficitAt(slot)
	if spent <= 0 && s.Provider().Sunlit(slot, sat) {
		t.Error("no energy accounted after commit")
	}
}

func TestTxnRollbackRestoresEverything(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 750, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := graph.ShortestPath(v, v.SrcNode(), v.DstNode(), nil)
	if !ok {
		t.Fatal("no route")
	}

	// Capture pre-state of every touched resource.
	type linkState struct {
		key  LinkKey
		used float64
	}
	var before []linkState
	for i := 0; i < len(p.Nodes)-1; i++ {
		key := v.LinkKeyFor(p.Nodes[i], p.Nodes[i+1])
		before = append(before, linkState{key, s.LinkUsedMbps(key, slot)})
	}
	batBefore := make(map[int][]float64)
	for _, n := range p.Nodes[1 : len(p.Nodes)-1] {
		var snap []float64
		for tt := 0; tt < s.Provider().Horizon(); tt++ {
			snap = append(snap, s.Battery(n).DeficitAt(tt), s.Battery(n).SolarRemainingAt(tt))
		}
		batBefore[n] = snap
	}

	txn := s.Begin()
	if err := txn.ReservePath(v, p); err != nil {
		t.Fatal(err)
	}
	if err := txn.Consume(v.PathConsumptions(p)); err != nil {
		t.Fatal(err)
	}
	txn.Rollback()

	for _, ls := range before {
		if got := s.LinkUsedMbps(ls.key, slot); got != ls.used {
			t.Errorf("link %v used = %v, want %v after rollback", ls.key, got, ls.used)
		}
	}
	for n, snap := range batBefore {
		i := 0
		for tt := 0; tt < s.Provider().Horizon(); tt++ {
			if got := s.Battery(n).DeficitAt(tt); got != snap[i] {
				t.Fatalf("sat %d deficit at %d = %v, want %v", n, tt, got, snap[i])
			}
			i++
			if got := s.Battery(n).SolarRemainingAt(tt); got != snap[i] {
				t.Fatalf("sat %d solar at %d = %v, want %v", n, tt, got, snap[i])
			}
			i++
		}
	}
}

func TestTxnRollbackIdempotent(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	txn := s.Begin()
	if err := txn.Consume([]Consumption{{Sat: 0, Slot: 0, Joules: 100}}); err != nil {
		t.Fatal(err)
	}
	txn.Rollback()
	txn.Rollback() // must not panic or double-restore
	if got := s.Battery(0).DeficitAt(0); got != 0 {
		t.Errorf("deficit = %v after double rollback", got)
	}
}

func TestTxnFinishedRejectsFurtherUse(t *testing.T) {
	s := newTestState(t, twoCitySites(), false)
	txn := s.Begin()
	txn.Commit()
	if err := txn.Consume([]Consumption{{Sat: 0, Slot: 0, Joules: 1}}); err == nil {
		t.Error("consume after commit should error")
	}
	slot := findRoutableSlot(t, s, groundEP(0), groundEP(1))
	v, err := NewView(s, slot, groundEP(0), groundEP(1), 100, hopCost)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.ReservePath(v, graph.Path{Nodes: []int{0, 1}, Edges: make([]graph.Edge, 1)}); err == nil {
		t.Error("reserve after commit should error")
	}
}

func TestTxnPartialFailureThenRollback(t *testing.T) {
	// Strict batteries: an infeasible consume fails mid-transaction; the
	// rollback must still restore the earlier successful consumptions.
	s := newTestState(t, twoCitySites(), false)
	capJ := s.Battery(3).CapacityJ()
	dark := -1
	for slot := 0; slot < s.Provider().Horizon(); slot++ {
		if !s.Provider().Sunlit(slot, 3) {
			dark = slot
			break
		}
	}
	if dark < 0 {
		t.Skip("satellite 3 never in umbra")
	}
	txn := s.Begin()
	if err := txn.Consume([]Consumption{{Sat: 3, Slot: dark, Joules: capJ * 0.9}}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Consume([]Consumption{{Sat: 3, Slot: dark, Joules: capJ * 0.5}}); err == nil {
		t.Fatal("expected infeasible consume to fail")
	}
	txn.Rollback()
	if got := s.Battery(3).DeficitAt(dark); got != 0 {
		t.Errorf("deficit = %v after rollback of partial failure", got)
	}
}

func TestUnreserveLinkClampsAtZero(t *testing.T) {
	s := newTestState(t, nil, false)
	key := MakeLinkKey(0, 1)
	if err := s.ReserveLink(key, 2, 100); err != nil {
		t.Fatal(err)
	}
	s.unreserveLink(key, 2, 500) // over-release clamps
	if got := s.LinkUsedMbps(key, 2); got != 0 {
		t.Errorf("used = %v, want 0", got)
	}
	s.unreserveLink(MakeLinkKey(5, 6), 0, 10) // unknown link: no-op
	s.unreserveLink(key, -1, 10)              // bad slot: no-op
	if math.IsNaN(s.LinkUsedMbps(key, 2)) {
		t.Error("ledger corrupted")
	}
}
